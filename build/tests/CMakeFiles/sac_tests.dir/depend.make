# Empty dependencies file for sac_tests.
# This may be replaced when dependencies are built.
