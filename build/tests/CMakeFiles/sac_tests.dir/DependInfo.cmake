
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/api_test.cc" "tests/CMakeFiles/sac_tests.dir/api_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/api_test.cc.o.d"
  "/root/repo/tests/baseline_test.cc" "tests/CMakeFiles/sac_tests.dir/baseline_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/baseline_test.cc.o.d"
  "/root/repo/tests/coverage_test.cc" "tests/CMakeFiles/sac_tests.dir/coverage_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/coverage_test.cc.o.d"
  "/root/repo/tests/engine_edge_test.cc" "tests/CMakeFiles/sac_tests.dir/engine_edge_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/engine_edge_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/sac_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/eval_edge_test.cc" "tests/CMakeFiles/sac_tests.dir/eval_edge_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/eval_edge_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/sac_tests.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/eval_test.cc.o.d"
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/sac_tests.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/fuzz_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/sac_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/sac_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/kernels_test.cc" "tests/CMakeFiles/sac_tests.dir/kernels_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/kernels_test.cc.o.d"
  "/root/repo/tests/loops_test.cc" "tests/CMakeFiles/sac_tests.dir/loops_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/loops_test.cc.o.d"
  "/root/repo/tests/misc_test.cc" "tests/CMakeFiles/sac_tests.dir/misc_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/misc_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/sac_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/planner_test.cc" "tests/CMakeFiles/sac_tests.dir/planner_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/planner_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/sac_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/rewrite_test.cc" "tests/CMakeFiles/sac_tests.dir/rewrite_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/rewrite_test.cc.o.d"
  "/root/repo/tests/rule15_test.cc" "tests/CMakeFiles/sac_tests.dir/rule15_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/rule15_test.cc.o.d"
  "/root/repo/tests/scalar_fn_test.cc" "tests/CMakeFiles/sac_tests.dir/scalar_fn_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/scalar_fn_test.cc.o.d"
  "/root/repo/tests/serialize_test.cc" "tests/CMakeFiles/sac_tests.dir/serialize_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/serialize_test.cc.o.d"
  "/root/repo/tests/shape_test.cc" "tests/CMakeFiles/sac_tests.dir/shape_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/shape_test.cc.o.d"
  "/root/repo/tests/sparse_test.cc" "tests/CMakeFiles/sac_tests.dir/sparse_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/sparse_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/sac_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/sac_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/thread_pool_test.cc" "tests/CMakeFiles/sac_tests.dir/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/thread_pool_test.cc.o.d"
  "/root/repo/tests/value_test.cc" "tests/CMakeFiles/sac_tests.dir/value_test.cc.o" "gcc" "tests/CMakeFiles/sac_tests.dir/value_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sac.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
