file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_kernels.dir/bench_abl_kernels.cc.o"
  "CMakeFiles/bench_abl_kernels.dir/bench_abl_kernels.cc.o.d"
  "bench_abl_kernels"
  "bench_abl_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
