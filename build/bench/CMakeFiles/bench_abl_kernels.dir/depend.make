# Empty dependencies file for bench_abl_kernels.
# This may be replaced when dependencies are built.
