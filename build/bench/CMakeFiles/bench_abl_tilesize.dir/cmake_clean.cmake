file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_tilesize.dir/bench_abl_tilesize.cc.o"
  "CMakeFiles/bench_abl_tilesize.dir/bench_abl_tilesize.cc.o.d"
  "bench_abl_tilesize"
  "bench_abl_tilesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_tilesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
