# Empty compiler generated dependencies file for bench_abl_tilesize.
# This may be replaced when dependencies are built.
