file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_coo_vs_tiled.dir/bench_abl_coo_vs_tiled.cc.o"
  "CMakeFiles/bench_abl_coo_vs_tiled.dir/bench_abl_coo_vs_tiled.cc.o.d"
  "bench_abl_coo_vs_tiled"
  "bench_abl_coo_vs_tiled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_coo_vs_tiled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
