# Empty dependencies file for bench_abl_coo_vs_tiled.
# This may be replaced when dependencies are built.
