# Empty compiler generated dependencies file for bench_fig4a_addition.
# This may be replaced when dependencies are built.
