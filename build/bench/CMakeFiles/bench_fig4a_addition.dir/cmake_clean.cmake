file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4a_addition.dir/bench_fig4a_addition.cc.o"
  "CMakeFiles/bench_fig4a_addition.dir/bench_fig4a_addition.cc.o.d"
  "bench_fig4a_addition"
  "bench_fig4a_addition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_addition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
