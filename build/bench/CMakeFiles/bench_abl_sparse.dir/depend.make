# Empty dependencies file for bench_abl_sparse.
# This may be replaced when dependencies are built.
