file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_sparse.dir/bench_abl_sparse.cc.o"
  "CMakeFiles/bench_abl_sparse.dir/bench_abl_sparse.cc.o.d"
  "bench_abl_sparse"
  "bench_abl_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
