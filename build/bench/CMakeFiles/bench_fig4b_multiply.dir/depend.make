# Empty dependencies file for bench_fig4b_multiply.
# This may be replaced when dependencies are built.
