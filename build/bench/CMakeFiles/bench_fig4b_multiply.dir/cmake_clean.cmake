file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_multiply.dir/bench_fig4b_multiply.cc.o"
  "CMakeFiles/bench_fig4b_multiply.dir/bench_fig4b_multiply.cc.o.d"
  "bench_fig4b_multiply"
  "bench_fig4b_multiply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_multiply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
