# Empty compiler generated dependencies file for bench_fig4c_factorization.
# This may be replaced when dependencies are built.
