file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4c_factorization.dir/bench_fig4c_factorization.cc.o"
  "CMakeFiles/bench_fig4c_factorization.dir/bench_fig4c_factorization.cc.o.d"
  "bench_fig4c_factorization"
  "bench_fig4c_factorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4c_factorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
