file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_reduceby.dir/bench_abl_reduceby.cc.o"
  "CMakeFiles/bench_abl_reduceby.dir/bench_abl_reduceby.cc.o.d"
  "bench_abl_reduceby"
  "bench_abl_reduceby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_reduceby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
