# Empty dependencies file for bench_abl_reduceby.
# This may be replaced when dependencies are built.
