# Empty dependencies file for recommender.
# This may be replaced when dependencies are built.
