file(REMOVE_RECURSE
  "CMakeFiles/recommender.dir/recommender.cpp.o"
  "CMakeFiles/recommender.dir/recommender.cpp.o.d"
  "recommender"
  "recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
