# Empty dependencies file for pagerank.
# This may be replaced when dependencies are built.
