file(REMOVE_RECURSE
  "CMakeFiles/pagerank.dir/pagerank.cpp.o"
  "CMakeFiles/pagerank.dir/pagerank.cpp.o.d"
  "pagerank"
  "pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
