# Empty dependencies file for smoothing.
# This may be replaced when dependencies are built.
