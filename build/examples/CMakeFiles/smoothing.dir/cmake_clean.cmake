file(REMOVE_RECURSE
  "CMakeFiles/smoothing.dir/smoothing.cpp.o"
  "CMakeFiles/smoothing.dir/smoothing.cpp.o.d"
  "smoothing"
  "smoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
