file(REMOVE_RECURSE
  "CMakeFiles/diablo_loops.dir/diablo_loops.cpp.o"
  "CMakeFiles/diablo_loops.dir/diablo_loops.cpp.o.d"
  "diablo_loops"
  "diablo_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
