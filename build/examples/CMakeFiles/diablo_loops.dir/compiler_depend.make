# Empty compiler generated dependencies file for diablo_loops.
# This may be replaced when dependencies are built.
