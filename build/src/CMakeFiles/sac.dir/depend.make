# Empty dependencies file for sac.
# This may be replaced when dependencies are built.
