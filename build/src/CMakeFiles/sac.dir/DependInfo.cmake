
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/algorithms.cc" "src/CMakeFiles/sac.dir/api/algorithms.cc.o" "gcc" "src/CMakeFiles/sac.dir/api/algorithms.cc.o.d"
  "/root/repo/src/api/sac.cc" "src/CMakeFiles/sac.dir/api/sac.cc.o" "gcc" "src/CMakeFiles/sac.dir/api/sac.cc.o.d"
  "/root/repo/src/baseline/block_matrix.cc" "src/CMakeFiles/sac.dir/baseline/block_matrix.cc.o" "gcc" "src/CMakeFiles/sac.dir/baseline/block_matrix.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/sac.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/sac.dir/common/logging.cc.o.d"
  "/root/repo/src/common/metrics.cc" "src/CMakeFiles/sac.dir/common/metrics.cc.o" "gcc" "src/CMakeFiles/sac.dir/common/metrics.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/sac.dir/common/status.cc.o" "gcc" "src/CMakeFiles/sac.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/sac.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/sac.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/comp/ast.cc" "src/CMakeFiles/sac.dir/comp/ast.cc.o" "gcc" "src/CMakeFiles/sac.dir/comp/ast.cc.o.d"
  "/root/repo/src/comp/eval.cc" "src/CMakeFiles/sac.dir/comp/eval.cc.o" "gcc" "src/CMakeFiles/sac.dir/comp/eval.cc.o.d"
  "/root/repo/src/comp/lexer.cc" "src/CMakeFiles/sac.dir/comp/lexer.cc.o" "gcc" "src/CMakeFiles/sac.dir/comp/lexer.cc.o.d"
  "/root/repo/src/comp/loops.cc" "src/CMakeFiles/sac.dir/comp/loops.cc.o" "gcc" "src/CMakeFiles/sac.dir/comp/loops.cc.o.d"
  "/root/repo/src/comp/parser.cc" "src/CMakeFiles/sac.dir/comp/parser.cc.o" "gcc" "src/CMakeFiles/sac.dir/comp/parser.cc.o.d"
  "/root/repo/src/comp/rewrite.cc" "src/CMakeFiles/sac.dir/comp/rewrite.cc.o" "gcc" "src/CMakeFiles/sac.dir/comp/rewrite.cc.o.d"
  "/root/repo/src/exec/scalar_fn.cc" "src/CMakeFiles/sac.dir/exec/scalar_fn.cc.o" "gcc" "src/CMakeFiles/sac.dir/exec/scalar_fn.cc.o.d"
  "/root/repo/src/la/jvmlike.cc" "src/CMakeFiles/sac.dir/la/jvmlike.cc.o" "gcc" "src/CMakeFiles/sac.dir/la/jvmlike.cc.o.d"
  "/root/repo/src/la/kernels.cc" "src/CMakeFiles/sac.dir/la/kernels.cc.o" "gcc" "src/CMakeFiles/sac.dir/la/kernels.cc.o.d"
  "/root/repo/src/la/sparse_tile.cc" "src/CMakeFiles/sac.dir/la/sparse_tile.cc.o" "gcc" "src/CMakeFiles/sac.dir/la/sparse_tile.cc.o.d"
  "/root/repo/src/la/tile.cc" "src/CMakeFiles/sac.dir/la/tile.cc.o" "gcc" "src/CMakeFiles/sac.dir/la/tile.cc.o.d"
  "/root/repo/src/planner/planner.cc" "src/CMakeFiles/sac.dir/planner/planner.cc.o" "gcc" "src/CMakeFiles/sac.dir/planner/planner.cc.o.d"
  "/root/repo/src/planner/planner_general.cc" "src/CMakeFiles/sac.dir/planner/planner_general.cc.o" "gcc" "src/CMakeFiles/sac.dir/planner/planner_general.cc.o.d"
  "/root/repo/src/planner/planner_groupby.cc" "src/CMakeFiles/sac.dir/planner/planner_groupby.cc.o" "gcc" "src/CMakeFiles/sac.dir/planner/planner_groupby.cc.o.d"
  "/root/repo/src/planner/shape.cc" "src/CMakeFiles/sac.dir/planner/shape.cc.o" "gcc" "src/CMakeFiles/sac.dir/planner/shape.cc.o.d"
  "/root/repo/src/runtime/engine.cc" "src/CMakeFiles/sac.dir/runtime/engine.cc.o" "gcc" "src/CMakeFiles/sac.dir/runtime/engine.cc.o.d"
  "/root/repo/src/runtime/value.cc" "src/CMakeFiles/sac.dir/runtime/value.cc.o" "gcc" "src/CMakeFiles/sac.dir/runtime/value.cc.o.d"
  "/root/repo/src/storage/io.cc" "src/CMakeFiles/sac.dir/storage/io.cc.o" "gcc" "src/CMakeFiles/sac.dir/storage/io.cc.o.d"
  "/root/repo/src/storage/sparse_tiled.cc" "src/CMakeFiles/sac.dir/storage/sparse_tiled.cc.o" "gcc" "src/CMakeFiles/sac.dir/storage/sparse_tiled.cc.o.d"
  "/root/repo/src/storage/tiled.cc" "src/CMakeFiles/sac.dir/storage/tiled.cc.o" "gcc" "src/CMakeFiles/sac.dir/storage/tiled.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
