file(REMOVE_RECURSE
  "libsac.a"
)
