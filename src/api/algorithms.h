// Convenience linear-algebra routines written *as comprehensions* and run
// through the SAC compiler -- exactly the queries of Sections 5-6. They
// exist so examples, tests and benchmarks share one set of query strings.
#ifndef SAC_API_ALGORITHMS_H_
#define SAC_API_ALGORITHMS_H_

#include "src/api/sac.h"

namespace sac::algo {

/// C = A + B (Section 5.1 plan).
Result<storage::TiledMatrix> Add(Sac* ctx, const storage::TiledMatrix& a,
                                 const storage::TiledMatrix& b);

/// C = A - B.
Result<storage::TiledMatrix> Sub(Sac* ctx, const storage::TiledMatrix& a,
                                 const storage::TiledMatrix& b);

/// C = A x B (group-by-join / SUMMA when enabled, 5.3 otherwise).
Result<storage::TiledMatrix> Multiply(Sac* ctx, const storage::TiledMatrix& a,
                                      const storage::TiledMatrix& b);

/// C = A x B^T, without materializing the transpose (the join simply uses
/// B's second index).
Result<storage::TiledMatrix> MultiplyBt(Sac* ctx,
                                        const storage::TiledMatrix& a,
                                        const storage::TiledMatrix& b);

/// C = A^T x B.
Result<storage::TiledMatrix> MultiplyAt(Sac* ctx,
                                        const storage::TiledMatrix& a,
                                        const storage::TiledMatrix& b);

/// C = A^T (Section 5.1 per-tile transpose).
Result<storage::TiledMatrix> Transpose(Sac* ctx,
                                       const storage::TiledMatrix& a);

/// v = row sums of A (Section 5.3 plan).
Result<storage::BlockVector> RowSums(Sac* ctx, const storage::TiledMatrix& a);

/// y = A x (Section 5.3 matrix-vector plan).
Result<storage::BlockVector> MatVec(Sac* ctx, const storage::TiledMatrix& a,
                                    const storage::BlockVector& x);

/// Sum of squares of all elements (total aggregation plan).
Result<double> FrobeniusSquared(Sac* ctx, const storage::TiledMatrix& a);

/// One gradient-descent step of matrix factorization (Section 6):
///   E = R - P Q^T;  P += gamma (2 E Q - lambda P);
///   Q += gamma (2 E^T P - lambda Q)
/// Every step is a comprehension compiled by the planner.
struct Factorization {
  storage::TiledMatrix p;
  storage::TiledMatrix q;
};
Result<Factorization> FactorizationStep(Sac* ctx,
                                        const storage::TiledMatrix& r,
                                        const Factorization& state,
                                        double gamma, double lambda);

}  // namespace sac::algo

#endif  // SAC_API_ALGORITHMS_H_
