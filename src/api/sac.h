// sac::Sac -- the public entry point of the library.
//
// Usage:
//   sac::Sac ctx;                                   // default cluster
//   auto A = ctx.RandomMatrix(2048, 2048, 256, 1);  // tiled, seeded
//   ctx.Bind("A", A);
//   ctx.Bind("B", ctx.RandomMatrix(2048, 2048, 256, 2));
//   ctx.BindScalar("n", 2048);
//   auto C = ctx.EvalTiled(
//       "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
//       "  kk == k, let v = a*b, group by (i,j) ]");
//
// Eval() parses, normalizes (Sections 2-3 rewrites), plans (Sections 4-5
// translation rules) and runs the query on the embedded DISC engine.
//
// Multi-tenant service (docs/SERVICE.md): Sac::OpenSession hands out
// sac::Session handles, each with its own bindings, metrics attribution
// and memory-budget slice. Queries from any number of sessions may run
// concurrently -- admission is gated by ClusterConfig::
// max_concurrent_queries and stage tasks are fair-scheduled across live
// queries. The Sac object itself and each individual Session are
// single-threaded surfaces (one client thread per handle); it is the
// *set* of sessions that may be driven from different threads at once.
#ifndef SAC_API_SAC_H_
#define SAC_API_SAC_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/analysis/analysis.h"
#include "src/common/status.h"
#include "src/planner/plan.h"
#include "src/planner/plan_cache.h"
#include "src/planner/planner.h"
#include "src/runtime/engine.h"
#include "src/storage/tiled.h"

namespace sac {

class Session;

class Sac {
 public:
  explicit Sac(runtime::ClusterConfig config = runtime::ClusterConfig(),
               planner::PlannerOptions options = planner::PlannerOptions());

  runtime::Engine& engine() { return *engine_; }
  planner::PlannerOptions& options() { return options_; }
  Metrics& metrics() { return engine_->metrics(); }
  StageRegistry& stages() { return engine_->stages(); }
  trace::Tracer& tracer() { return engine_->tracer(); }
  /// The compiled-plan cache shared by every session (set_capacity(0)
  /// disables it; the ablation benches use exactly that).
  planner::PlanCache& plan_cache() { return plan_cache_; }

  // ---- sessions (docs/SERVICE.md) ------------------------------------------
  /// Opens a client session: its own bindings namespace, its own Metrics
  /// sink (stage stats double-report into it), a fair-scheduled task
  /// queue on the shared pool, and a resident-byte slice enforced by the
  /// block store. The handle is single-threaded; different sessions may
  /// be driven from different threads concurrently. Destroying the
  /// handle closes its task queue (pending work migrates to the default
  /// queue); datasets it produced stay valid as long as someone holds
  /// them. `memory_budget_bytes` 0 = unlimited slice.
  std::unique_ptr<Session> OpenSession(const std::string& name,
                                       uint64_t memory_budget_bytes);
  /// Same, with the slice defaulted from ClusterConfig::
  /// session_memory_budget_bytes (env SAC_SESSION_MEM_BUDGET).
  std::unique_ptr<Session> OpenSession(const std::string& name);

  // ---- observability -------------------------------------------------------
  /// Clears totals, per-stage stats, trace buffers and accumulated shuffle
  /// predictions between measured runs.
  void ResetStats() {
    engine_->ResetStats();
    predicted_shuffle_bytes_.clear();
  }
  /// Predicted total shuffle bytes per ENGINE stage label ("join",
  /// "cogroup", "reduceByKey", ...), accumulated at compile time for every
  /// Eval/EvalLoop update whose extents the shape pass fully resolved.
  /// Comparable against the measured per-stage byte counters -- the
  /// `sac_prof predcheck` gate (docs/COST_MODEL.md) holds them within 2x.
  const std::map<std::string, double>& predicted_shuffle_bytes() const {
    return predicted_shuffle_bytes_;
  }
  /// Per-stage metrics table (see Engine::ReportString).
  std::string ReportString() const { return engine_->ReportString(); }
  /// Chrome trace-event JSON of everything traced so far.
  std::string ChromeTraceJson() const { return engine_->ChromeTraceJson(); }
  Status WriteChromeTrace(const std::string& path) const {
    return engine_->WriteChromeTrace(path);
  }
  /// Versioned profile JSON built from everything traced so far: stage
  /// tree with self/total/task time, critical-path attribution, joined
  /// per-stage counters and sampler time series (docs/PROFILING.md).
  /// `wall_ms_hint` anchors wall-clock percentages to an externally
  /// measured duration (0 = use the trace extent); `query` is echoed
  /// into the profile for identification.
  std::string ProfileJson(double wall_ms_hint = 0,
                          const std::string& query = "") const {
    return engine_->ProfileJson(wall_ms_hint, query);
  }
  Status WriteProfile(const std::string& path, double wall_ms_hint = 0,
                      const std::string& query = "") const {
    return engine_->WriteProfile(path, wall_ms_hint, query);
  }

  // ---- data ---------------------------------------------------------------
  /// Dense random tiled matrix, uniform in [lo, hi), deterministic per seed.
  Result<storage::TiledMatrix> RandomMatrix(int64_t rows, int64_t cols,
                                            int64_t block, uint64_t seed,
                                            double lo = 0.0, double hi = 10.0);
  /// Sparse random matrix (integer ratings), stored as dense tiles.
  Result<storage::TiledMatrix> RandomSparseMatrix(int64_t rows, int64_t cols,
                                                  int64_t block, uint64_t seed,
                                                  double density, int hi);
  Result<storage::BlockVector> RandomVector(int64_t size, int64_t block,
                                            uint64_t seed, double lo = 0.0,
                                            double hi = 1.0);
  Result<storage::TiledMatrix> MatrixFromLocal(const la::Tile& local,
                                               int64_t block);
  Result<la::Tile> ToLocal(const storage::TiledMatrix& m);
  Result<std::vector<double>> ToLocal(const storage::BlockVector& v);

  // ---- bindings -----------------------------------------------------------
  void Bind(const std::string& name, storage::TiledMatrix m);
  void Bind(const std::string& name, storage::BlockVector v);
  void Bind(const std::string& name, storage::CooMatrix c);
  void BindScalar(const std::string& name, double v);
  void BindScalar(const std::string& name, int64_t v);
  void BindLocal(const std::string& name, runtime::Value v);
  void Unbind(const std::string& name);
  const planner::Bindings& bindings() const { return binds_; }

  // ---- compile & run --------------------------------------------------------
  /// Parses and normalizes a query (exposed for inspection/tests).
  Result<comp::ExprPtr> ParseAndNormalize(const std::string& src);

  /// Compiles without running; inspect .strategy / .explanation.
  /// Always a fresh compile -- never consults the plan cache.
  Result<planner::CompiledQuery> Compile(const std::string& src);

  /// Compiles through the plan cache: a repeat of the same normalized
  /// source against the same binding shapes returns the cached plan
  /// without parsing or planning. Meters plan_cache_hits / _misses /
  /// _evictions on the engine Metrics. This is the compile path Eval
  /// uses; exposed for the service ablation bench and tests.
  Result<std::shared_ptr<const planner::CompiledQuery>> CompileCached(
      const std::string& src);

  /// Statically analyzes a query against the current bindings without
  /// running it: comprehension checks, plan verification and lint rules
  /// (see src/analysis/). Never executes engine operators.
  Result<analysis::AnalysisReport> Analyze(const std::string& src);

  /// Analyze() rendered as text: diagnostics (file:line:col format, the
  /// file labelled `<query>`) followed by strategy and symbolic plan.
  Result<std::string> Explain(const std::string& src);

  /// Compiles and runs. The symbolic plan is verified (analysis::
  /// VerifyPlan) before any engine operator executes, and the result's
  /// lineage is verified after -- both guard against planner/engine bugs,
  /// not user errors.
  Result<planner::QueryResult> Eval(const std::string& src);

  /// Eval expecting a tiled-matrix result.
  Result<storage::TiledMatrix> EvalTiled(const std::string& src);
  /// Eval expecting a block-vector result.
  Result<storage::BlockVector> EvalVector(const std::string& src);
  /// Eval expecting a scalar double (total aggregations).
  Result<double> EvalScalar(const std::string& src);

  /// DIABLO front end (see comp/loops.h): parses an imperative loop
  /// program, translates each loop nest to a comprehension, compiles and
  /// runs them in order, rebinding each target array. Targets must
  /// already be bound (their dimensions come from the binding). Returns
  /// one "target <- strategy" line per translated assignment.
  Result<std::vector<std::string>> EvalLoop(const std::string& src);

  /// Runs the loop program `iterations` times (the driver-level iteration
  /// of gradient-descent workloads like Figure 4c). Between runs the
  /// targets stay rebound, so lineage would grow linearly with the
  /// iteration count -- the auto-checkpointing below bounds it.
  Result<std::vector<std::string>> EvalLoopIterated(const std::string& src,
                                                    int iterations);

  // ---- fault tolerance ----------------------------------------------------
  /// Materializes the array to spill files and truncates its lineage
  /// (Engine::Checkpoint): recovery of a dropped partition then reads the
  /// spill file instead of recomputing the upstream chain. EvalLoop calls
  /// this automatically on in-loop targets every
  /// ClusterConfig::checkpoint_interval rebinds (0 disables).
  Status Checkpoint(const storage::TiledMatrix& m) {
    return engine_->Checkpoint(m.tiles);
  }
  Status Checkpoint(const storage::BlockVector& v) {
    return engine_->Checkpoint(v.blocks);
  }
  /// Checkpoints a bound tiled matrix or block vector by name.
  Status Checkpoint(const std::string& name);

  /// Runs the same query through the reference evaluator on collected
  /// inputs -- the oracle used by tests (small inputs only).
  Result<runtime::Value> ReferenceEval(const std::string& src);

 private:
  friend class Session;

  /// Folds the cost model's per-label shuffle prediction for a freshly
  /// compiled (or cache-hit) plan into `*predicted` (exact shapes only).
  void RecordPredictions(const planner::CompiledQuery& q,
                         const planner::Bindings& binds,
                         std::map<std::string, double>* predicted);

  /// ParseAndNormalize against an explicit binding namespace.
  Result<comp::ExprPtr> ParseAndNormalizeWith(const std::string& src,
                                              const planner::Bindings& binds);

  /// The shared compile path: plan-cache key -> lookup -> on miss, parse
  /// + plan + VerifyPlan + insert. Hit/miss/eviction counters are
  /// metered on the engine Metrics and, when non-null, on
  /// `session_metrics` too.
  Result<std::shared_ptr<const planner::CompiledQuery>> CompileCachedWith(
      const std::string& src, const planner::Bindings& binds,
      Metrics* session_metrics);

  /// The shared eval path behind Sac::Eval and Session::Eval: admission
  /// ticket -> Session::Scope -> cached compile -> run -> lineage
  /// verification.
  Result<planner::QueryResult> EvalImpl(
      const std::string& src, const planner::Bindings& binds,
      std::map<std::string, double>* predicted,
      const std::shared_ptr<runtime::Session>& session);

  std::unique_ptr<runtime::Engine> engine_;
  planner::PlannerOptions options_;
  planner::Bindings binds_;
  planner::PlanCache plan_cache_;
  std::map<std::string, double> predicted_shuffle_bytes_;
  // Rebind count per in-loop target, driving auto-checkpointing across
  // EvalLoop calls (driver iterations).
  std::unordered_map<std::string, int> loop_update_counts_;
};

/// One client's handle on a shared Sac service (docs/SERVICE.md): its
/// own bindings namespace and shuffle predictions, per-session metrics
/// attribution, a fair-scheduled task queue and a resident-byte slice.
/// NOT thread-safe -- one Session per client thread; concurrency comes
/// from driving *different* sessions from different threads. The handle
/// must not outlive the Sac that opened it, but datasets it returned
/// may (they hold shared_ptr state).
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return state_->id(); }
  const std::string& name() const { return state_->name(); }
  /// This session's metrics sink: every stage its queries ran, plus its
  /// admission and plan-cache events, double-report here.
  Metrics& metrics() { return state_->metrics(); }
  /// Bytes currently resident against this session's memory slice.
  uint64_t resident_bytes() const { return state_->memory().resident_bytes(); }
  uint64_t memory_budget_bytes() const { return state_->memory().budget(); }
  /// The underlying runtime session (tests / advanced embedding).
  const std::shared_ptr<runtime::Session>& state() const { return state_; }

  // ---- data (attributed to this session) -----------------------------------
  Result<storage::TiledMatrix> RandomMatrix(int64_t rows, int64_t cols,
                                            int64_t block, uint64_t seed,
                                            double lo = 0.0, double hi = 10.0);
  Result<storage::TiledMatrix> RandomSparseMatrix(int64_t rows, int64_t cols,
                                                  int64_t block, uint64_t seed,
                                                  double density, int hi);
  Result<storage::BlockVector> RandomVector(int64_t size, int64_t block,
                                            uint64_t seed, double lo = 0.0,
                                            double hi = 1.0);
  Result<storage::TiledMatrix> MatrixFromLocal(const la::Tile& local,
                                               int64_t block);
  Result<la::Tile> ToLocal(const storage::TiledMatrix& m);
  Result<std::vector<double>> ToLocal(const storage::BlockVector& v);

  // ---- bindings (this session's namespace only) ----------------------------
  void Bind(const std::string& name, storage::TiledMatrix m);
  void Bind(const std::string& name, storage::BlockVector v);
  void Bind(const std::string& name, storage::CooMatrix c);
  void BindScalar(const std::string& name, double v);
  void BindScalar(const std::string& name, int64_t v);
  void BindLocal(const std::string& name, runtime::Value v);
  void Unbind(const std::string& name);
  const planner::Bindings& bindings() const { return binds_; }

  // ---- compile & run -------------------------------------------------------
  /// Same contract as Sac::Eval, against this session's bindings, under
  /// this session's admission ticket, attribution and task queue.
  Result<planner::QueryResult> Eval(const std::string& src);
  Result<storage::TiledMatrix> EvalTiled(const std::string& src);
  Result<storage::BlockVector> EvalVector(const std::string& src);
  Result<double> EvalScalar(const std::string& src);

  /// Predicted shuffle bytes for queries evaluated through this session.
  const std::map<std::string, double>& predicted_shuffle_bytes() const {
    return predicted_shuffle_bytes_;
  }

 private:
  friend class Sac;
  Session(Sac* owner, std::shared_ptr<runtime::Session> state)
      : owner_(owner), state_(std::move(state)) {}

  Sac* owner_;
  std::shared_ptr<runtime::Session> state_;
  planner::Bindings binds_;
  std::map<std::string, double> predicted_shuffle_bytes_;
};

}  // namespace sac

#endif  // SAC_API_SAC_H_
