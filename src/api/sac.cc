#include "src/api/sac.h"

#include <cassert>

#include "src/comp/eval.h"
#include "src/comp/loops.h"
#include "src/comp/parser.h"
#include "src/comp/rewrite.h"

namespace sac {

using planner::Binding;
using planner::CompiledQuery;
using planner::QueryResult;
using runtime::Value;
using runtime::ValueVec;

Sac::Sac(runtime::ClusterConfig config, planner::PlannerOptions options)
    : engine_(std::make_unique<runtime::Engine>(config)),
      options_(options) {
  // The cost model plans against the engine's actual cluster shape --
  // engine_->config(), not the caller's `config`, so env-resolved fields
  // (memory budget, kernel backend) reach the planner too.
  options_.cluster = engine_->config();
}

void Sac::RecordPredictions(const CompiledQuery& q,
                            const planner::Bindings& binds,
                            std::map<std::string, double>* predicted) {
  if (q.plan == nullptr) return;
  const analysis::CostEstimate est = analysis::EstimateCost(
      analysis::PlanGraph::FromQuery(q, &binds, 0, engine_->config()));
  // Partial estimates under-count (unknown shapes predict 0 bytes), which
  // would trip the 2x gate spuriously -- record exact plans only.
  if (!est.exact) return;
  for (const auto& [label, bytes] : est.shuffle_by_engine_label) {
    (*predicted)[label] += bytes;
  }
}

Result<storage::TiledMatrix> Sac::RandomMatrix(int64_t rows, int64_t cols,
                                               int64_t block, uint64_t seed,
                                               double lo, double hi) {
  return storage::RandomTiled(engine_.get(), rows, cols, block, seed, lo, hi);
}

Result<storage::TiledMatrix> Sac::RandomSparseMatrix(int64_t rows,
                                                     int64_t cols,
                                                     int64_t block,
                                                     uint64_t seed,
                                                     double density, int hi) {
  return storage::RandomSparseTiled(engine_.get(), rows, cols, block, seed,
                                    density, hi);
}

Result<storage::BlockVector> Sac::RandomVector(int64_t size, int64_t block,
                                               uint64_t seed, double lo,
                                               double hi) {
  return storage::RandomBlockVector(engine_.get(), size, block, seed, lo, hi);
}

Result<storage::TiledMatrix> Sac::MatrixFromLocal(const la::Tile& local,
                                                  int64_t block) {
  return storage::FromLocal(engine_.get(), local, block);
}

Result<la::Tile> Sac::ToLocal(const storage::TiledMatrix& m) {
  return storage::ToLocal(engine_.get(), m);
}

Result<std::vector<double>> Sac::ToLocal(const storage::BlockVector& v) {
  return storage::ToLocalVector(engine_.get(), v);
}

void Sac::Bind(const std::string& name, storage::TiledMatrix m) {
  binds_[name] = Binding::Tiled(std::move(m));
}
void Sac::Bind(const std::string& name, storage::BlockVector v) {
  binds_[name] = Binding::Vector(std::move(v));
}
void Sac::Bind(const std::string& name, storage::CooMatrix c) {
  binds_[name] = Binding::Coo(std::move(c));
}
void Sac::BindScalar(const std::string& name, double v) {
  binds_[name] = Binding::Scalar(Value::Double(v));
}
void Sac::BindScalar(const std::string& name, int64_t v) {
  binds_[name] = Binding::Scalar(Value::Int(v));
}
void Sac::BindLocal(const std::string& name, Value v) {
  binds_[name] = Binding::Local(std::move(v));
}
void Sac::Unbind(const std::string& name) { binds_.erase(name); }

Result<comp::ExprPtr> Sac::ParseAndNormalizeWith(
    const std::string& src, const planner::Bindings& binds) {
  SAC_ASSIGN_OR_RETURN(comp::ExprPtr e, comp::Parse(src));
  return comp::Normalize(e, [&binds](const std::string& name) {
    auto it = binds.find(name);
    return it != binds.end() && it->second.kind != Binding::Kind::kScalar;
  });
}

Result<comp::ExprPtr> Sac::ParseAndNormalize(const std::string& src) {
  return ParseAndNormalizeWith(src, binds_);
}

Result<CompiledQuery> Sac::Compile(const std::string& src) {
  SAC_ASSIGN_OR_RETURN(comp::ExprPtr e, ParseAndNormalize(src));
  return planner::CompileQuery(e, binds_, options_);
}

Result<std::shared_ptr<const CompiledQuery>> Sac::CompileCachedWith(
    const std::string& src, const planner::Bindings& binds,
    Metrics* session_metrics) {
  // Key construction is cheap (no parse); skip it entirely when the
  // cache is disabled so the off-arm of the ablation measures the pure
  // compile path.
  const std::string key = plan_cache_.capacity() > 0
                              ? planner::PlanCacheKey(src, binds, options_)
                              : std::string();
  if (!key.empty()) {
    if (std::shared_ptr<const CompiledQuery> hit = plan_cache_.Lookup(key)) {
      engine_->metrics().AddPlanCacheHit();
      if (session_metrics != nullptr) session_metrics->AddPlanCacheHit();
      return hit;
    }
  }
  // Traced as a root span so the profiler's critical path accounts for
  // planner time, not just engine stages.
  Result<CompiledQuery> compiled = [&]() -> Result<CompiledQuery> {
    trace::ScopedSpan span(&engine_->tracer(), "compile", "compile");
    SAC_ASSIGN_OR_RETURN(comp::ExprPtr e, ParseAndNormalizeWith(src, binds));
    return planner::CompileQuery(e, binds, options_);
  }();
  SAC_RETURN_NOT_OK(compiled.status());
  auto q = std::make_shared<CompiledQuery>(std::move(compiled).value());
  // Catch planner bugs before any tile is materialized: the symbolic DAG
  // must satisfy the structural invariants (debug builds additionally
  // assert, but the check is cheap enough to keep on everywhere).
  // Cached plans were verified at insert time, so hits skip this.
  const Status plan_ok =
      analysis::VerifyPlan(analysis::PlanGraph::FromQuery(*q));
  assert(plan_ok.ok() && "compiled plan failed invariant verification");
  SAC_RETURN_NOT_OK(plan_ok);
  if (!key.empty()) {
    const size_t evicted = plan_cache_.Insert(key, q);
    engine_->metrics().AddPlanCacheMiss();
    if (evicted > 0) engine_->metrics().AddPlanCacheEvictions(evicted);
    if (session_metrics != nullptr) {
      session_metrics->AddPlanCacheMiss();
      if (evicted > 0) session_metrics->AddPlanCacheEvictions(evicted);
    }
  }
  return std::shared_ptr<const CompiledQuery>(std::move(q));
}

Result<std::shared_ptr<const CompiledQuery>> Sac::CompileCached(
    const std::string& src) {
  return CompileCachedWith(src, binds_, nullptr);
}

Result<analysis::AnalysisReport> Sac::Analyze(const std::string& src) {
  return analysis::AnalyzeQuery(src, binds_, options_,
                                engine_->config().memory_budget_bytes);
}

Result<std::string> Sac::Explain(const std::string& src) {
  SAC_ASSIGN_OR_RETURN(analysis::AnalysisReport report, Analyze(src));
  return report.Render("<query>");
}

Result<QueryResult> Sac::EvalImpl(
    const std::string& src, const planner::Bindings& binds,
    std::map<std::string, double>* predicted,
    const std::shared_ptr<runtime::Session>& session) {
  Metrics* session_metrics = session ? &session->metrics() : nullptr;
  // Admission first: blocks until a concurrency slot frees up. The
  // ticket covers compile + run, so live_queries() is an honest gauge of
  // everything between admission and result.
  runtime::AdmissionGate::Ticket ticket = engine_->AdmitQuery(session_metrics);
  // Datasets materialized below attribute to this session (metrics,
  // memory slice, task queue) via the thread-local current session.
  runtime::Session::Scope scope(session);
  SAC_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledQuery> q,
                       CompileCachedWith(src, binds, session_metrics));
  RecordPredictions(*q, binds, predicted);
  SAC_ASSIGN_OR_RETURN(QueryResult r, q->run(engine_.get()));
  // Post-run: the result's lineage and stage attributions must line up.
  switch (r.kind) {
    case QueryResult::Kind::kTiled:
      SAC_RETURN_NOT_OK(engine_->VerifyLineage(r.tiled.tiles));
      break;
    case QueryResult::Kind::kBlockVector:
      SAC_RETURN_NOT_OK(engine_->VerifyLineage(r.vec.blocks));
      break;
    case QueryResult::Kind::kValue:
      break;
  }
  return r;
}

Result<QueryResult> Sac::Eval(const std::string& src) {
  return EvalImpl(src, binds_, &predicted_shuffle_bytes_, nullptr);
}

Result<storage::TiledMatrix> Sac::EvalTiled(const std::string& src) {
  SAC_ASSIGN_OR_RETURN(QueryResult r, Eval(src));
  if (r.kind != QueryResult::Kind::kTiled) {
    return Status::InvalidArgument("query did not produce a tiled matrix");
  }
  return r.tiled;
}

Result<storage::BlockVector> Sac::EvalVector(const std::string& src) {
  SAC_ASSIGN_OR_RETURN(QueryResult r, Eval(src));
  if (r.kind != QueryResult::Kind::kBlockVector) {
    return Status::InvalidArgument("query did not produce a block vector");
  }
  return r.vec;
}

Result<double> Sac::EvalScalar(const std::string& src) {
  SAC_ASSIGN_OR_RETURN(QueryResult r, Eval(src));
  if (r.kind != QueryResult::Kind::kValue || !r.value.is_numeric()) {
    return Status::InvalidArgument("query did not produce a scalar");
  }
  return r.value.AsDouble();
}

Result<std::vector<std::string>> Sac::EvalLoop(const std::string& src) {
  // One admission ticket covers the whole loop program: each update
  // rebinds the target the next update reads, so interleaving another
  // query between updates buys nothing and the per-update compiles stay
  // uncached (plans change with the rebound shapes anyway).
  runtime::AdmissionGate::Ticket ticket = engine_->AdmitQuery();
  SAC_ASSIGN_OR_RETURN(comp::LoopStmtPtr prog, comp::ParseLoopProgram(src));
  SAC_ASSIGN_OR_RETURN(
      std::vector<comp::TranslatedUpdate> updates,
      comp::TranslateLoops(prog, [this](const std::string& name)
                               -> Result<std::vector<comp::ExprPtr>> {
        auto it = binds_.find(name);
        if (it == binds_.end()) {
          return Status::PlanError("loop target '" + name +
                                   "' is not bound (bind a matrix or "
                                   "vector of the output shape first)");
        }
        std::vector<comp::ExprPtr> dims;
        if (it->second.kind == planner::Binding::Kind::kTiled) {
          dims.push_back(comp::Expr::Int(it->second.tiled.rows));
          dims.push_back(comp::Expr::Int(it->second.tiled.cols));
        } else if (it->second.kind ==
                   planner::Binding::Kind::kBlockVector) {
          dims.push_back(comp::Expr::Int(it->second.vec.size));
        } else {
          return Status::PlanError("loop target '" + name +
                                   "' is not a distributed array");
        }
        return dims;
      }));
  std::vector<std::string> report;
  for (const comp::TranslatedUpdate& u : updates) {
    // Normalize + compile + run, then rebind the target.
    const planner::Bindings& binds = binds_;
    SAC_ASSIGN_OR_RETURN(
        comp::ExprPtr norm,
        comp::Normalize(u.query, [&binds](const std::string& name) {
          auto it = binds.find(name);
          return it != binds.end() &&
                 it->second.kind != planner::Binding::Kind::kScalar;
        }));
    Result<CompiledQuery> loop_compiled = [&] {
      trace::ScopedSpan span(&engine_->tracer(), "compile:" + u.target,
                             "compile");
      return planner::CompileQuery(norm, binds_, options_);
    }();
    SAC_RETURN_NOT_OK(loop_compiled.status());
    CompiledQuery q = std::move(loop_compiled).value();
    if (u.in_loop) {
      // Loop-body plans recompile and re-run every iteration; the
      // analyzer's cache rules (SAC-W02) key off this flag.
      for (const planner::PlanNodePtr& n : q.plan_nodes) n->in_loop = true;
    }
    SAC_RETURN_NOT_OK(analysis::VerifyPlan(analysis::PlanGraph::FromQuery(q)));
    RecordPredictions(q, binds_, &predicted_shuffle_bytes_);
    SAC_ASSIGN_OR_RETURN(QueryResult r, q.run(engine_.get()));
    switch (r.kind) {
      case QueryResult::Kind::kTiled:
        Bind(u.target, std::move(r.tiled));
        break;
      case QueryResult::Kind::kBlockVector:
        Bind(u.target, std::move(r.vec));
        break;
      default:
        return Status::RuntimeError("loop assignment produced a scalar");
    }
    if (u.in_loop) {
      // The rebound loop target is read again next iteration no matter
      // what: give its blocks admission priority so a tight memory
      // budget evicts one-shot intermediates before the loop state.
      auto bound = binds_.find(u.target);
      if (bound != binds_.end()) {
        const planner::Binding& b = bound->second;
        if (b.kind == planner::Binding::Kind::kTiled && b.tiled.tiles) {
          engine_->block_store().SetPriority(b.tiled.tiles.get(), true);
        } else if (b.kind == planner::Binding::Kind::kBlockVector &&
                   b.vec.blocks) {
          engine_->block_store().SetPriority(b.vec.blocks.get(), true);
        }
      }
    }
    // Auto-checkpoint: each rebind of an in-loop target stacks another
    // layer of lineage on top of the previous binding; every K-th rebind
    // we cut the chain (Spark's checkpoint() discipline for iterative
    // jobs). Counters persist across EvalLoop calls, so driver-level
    // iteration (EvalLoopIterated, the fig4c pattern) is covered too.
    const int interval = engine_->config().checkpoint_interval;
    if (interval > 0 && u.in_loop) {
      const int count = ++loop_update_counts_[u.target];
      if (count % interval == 0) {
        SAC_RETURN_NOT_OK(Checkpoint(u.target));
      }
    }
    report.push_back(u.target + " <- " +
                     planner::StrategyName(q.strategy) + ": " +
                     q.explanation);
  }
  return report;
}

Result<std::vector<std::string>> Sac::EvalLoopIterated(const std::string& src,
                                                       int iterations) {
  if (iterations < 1) {
    return Status::InvalidArgument("EvalLoopIterated needs iterations >= 1");
  }
  std::vector<std::string> report;
  for (int it = 0; it < iterations; ++it) {
    SAC_ASSIGN_OR_RETURN(std::vector<std::string> one, EvalLoop(src));
    if (it == 0) report = std::move(one);
  }
  return report;
}

Status Sac::Checkpoint(const std::string& name) {
  auto it = binds_.find(name);
  if (it == binds_.end()) {
    return Status::InvalidArgument("Checkpoint: '" + name + "' is not bound");
  }
  switch (it->second.kind) {
    case Binding::Kind::kTiled:
      return engine_->Checkpoint(it->second.tiled.tiles);
    case Binding::Kind::kBlockVector:
      return engine_->Checkpoint(it->second.vec.blocks);
    default:
      return Status::InvalidArgument("Checkpoint: '" + name +
                                     "' is not a distributed array");
  }
}

Result<Value> Sac::ReferenceEval(const std::string& src) {
  SAC_ASSIGN_OR_RETURN(comp::ExprPtr e, comp::Parse(src));
  comp::Evaluator ev;
  for (const auto& [name, b] : binds_) {
    switch (b.kind) {
      case Binding::Kind::kScalar:
      case Binding::Kind::kLocal:
        ev.Bind(name, b.value);
        break;
      case Binding::Kind::kTiled: {
        SAC_ASSIGN_OR_RETURN(ValueVec rows,
                             storage::SparsifyLocal(engine_.get(), b.tiled));
        ev.Bind(name, Value::List(std::move(rows)));
        break;
      }
      case Binding::Kind::kBlockVector: {
        SAC_ASSIGN_OR_RETURN(std::vector<double> vec,
                             storage::ToLocalVector(engine_.get(), b.vec));
        ValueVec rows;
        for (size_t i = 0; i < vec.size(); ++i) {
          rows.push_back(runtime::VPair(Value::Int(static_cast<int64_t>(i)),
                                        Value::Double(vec[i])));
        }
        ev.Bind(name, Value::List(std::move(rows)));
        break;
      }
      case Binding::Kind::kCoo: {
        SAC_ASSIGN_OR_RETURN(ValueVec rows,
                             engine_->Collect(b.coo.entries));
        ev.Bind(name, Value::List(std::move(rows)));
        break;
      }
    }
  }
  return ev.Eval(e);
}

// ---- sessions (docs/SERVICE.md) --------------------------------------------

std::unique_ptr<Session> Sac::OpenSession(const std::string& name,
                                          uint64_t memory_budget_bytes) {
  return std::unique_ptr<Session>(
      new Session(this, engine_->OpenSession(name, memory_budget_bytes)));
}

std::unique_ptr<Session> Sac::OpenSession(const std::string& name) {
  return OpenSession(name,
                     engine_->config().session_memory_budget_bytes);
}

Session::~Session() {
  // Retire this session's fair-scheduling queue; anything still pending
  // migrates to the default queue. The runtime::Session object itself
  // may outlive us -- datasets hold shared_ptr references to it.
  owner_->engine_->pool().CloseQueue(state_->queue());
}

Result<storage::TiledMatrix> Session::RandomMatrix(int64_t rows, int64_t cols,
                                                   int64_t block,
                                                   uint64_t seed, double lo,
                                                   double hi) {
  runtime::Session::Scope scope(state_);
  return owner_->RandomMatrix(rows, cols, block, seed, lo, hi);
}

Result<storage::TiledMatrix> Session::RandomSparseMatrix(
    int64_t rows, int64_t cols, int64_t block, uint64_t seed, double density,
    int hi) {
  runtime::Session::Scope scope(state_);
  return owner_->RandomSparseMatrix(rows, cols, block, seed, density, hi);
}

Result<storage::BlockVector> Session::RandomVector(int64_t size,
                                                   int64_t block,
                                                   uint64_t seed, double lo,
                                                   double hi) {
  runtime::Session::Scope scope(state_);
  return owner_->RandomVector(size, block, seed, lo, hi);
}

Result<storage::TiledMatrix> Session::MatrixFromLocal(const la::Tile& local,
                                                      int64_t block) {
  runtime::Session::Scope scope(state_);
  return owner_->MatrixFromLocal(local, block);
}

Result<la::Tile> Session::ToLocal(const storage::TiledMatrix& m) {
  runtime::Session::Scope scope(state_);
  return owner_->ToLocal(m);
}

Result<std::vector<double>> Session::ToLocal(const storage::BlockVector& v) {
  runtime::Session::Scope scope(state_);
  return owner_->ToLocal(v);
}

void Session::Bind(const std::string& name, storage::TiledMatrix m) {
  binds_[name] = Binding::Tiled(std::move(m));
}
void Session::Bind(const std::string& name, storage::BlockVector v) {
  binds_[name] = Binding::Vector(std::move(v));
}
void Session::Bind(const std::string& name, storage::CooMatrix c) {
  binds_[name] = Binding::Coo(std::move(c));
}
void Session::BindScalar(const std::string& name, double v) {
  binds_[name] = Binding::Scalar(Value::Double(v));
}
void Session::BindScalar(const std::string& name, int64_t v) {
  binds_[name] = Binding::Scalar(Value::Int(v));
}
void Session::BindLocal(const std::string& name, Value v) {
  binds_[name] = Binding::Local(std::move(v));
}
void Session::Unbind(const std::string& name) { binds_.erase(name); }

Result<QueryResult> Session::Eval(const std::string& src) {
  return owner_->EvalImpl(src, binds_, &predicted_shuffle_bytes_, state_);
}

Result<storage::TiledMatrix> Session::EvalTiled(const std::string& src) {
  SAC_ASSIGN_OR_RETURN(QueryResult r, Eval(src));
  if (r.kind != QueryResult::Kind::kTiled) {
    return Status::InvalidArgument("query did not produce a tiled matrix");
  }
  return r.tiled;
}

Result<storage::BlockVector> Session::EvalVector(const std::string& src) {
  SAC_ASSIGN_OR_RETURN(QueryResult r, Eval(src));
  if (r.kind != QueryResult::Kind::kBlockVector) {
    return Status::InvalidArgument("query did not produce a block vector");
  }
  return r.vec;
}

Result<double> Session::EvalScalar(const std::string& src) {
  SAC_ASSIGN_OR_RETURN(QueryResult r, Eval(src));
  if (r.kind != QueryResult::Kind::kValue || !r.value.is_numeric()) {
    return Status::InvalidArgument("query did not produce a scalar");
  }
  return r.value.AsDouble();
}

}  // namespace sac
