#include "src/api/algorithms.h"

namespace sac::algo {

using storage::BlockVector;
using storage::TiledMatrix;

namespace {

/// Runs a query with temporary bindings ("__a"/"__b" plus dims), cleaning
/// up afterwards.
class Scoped {
 public:
  explicit Scoped(Sac* ctx) : ctx_(ctx) {}
  ~Scoped() {
    for (const auto& n : names_) ctx_->Unbind(n);
  }
  void Bind(const std::string& n, TiledMatrix m) {
    ctx_->Bind(n, std::move(m));
    names_.push_back(n);
  }
  void Bind(const std::string& n, BlockVector v) {
    ctx_->Bind(n, std::move(v));
    names_.push_back(n);
  }
  void BindScalar(const std::string& n, int64_t v) {
    ctx_->BindScalar(n, v);
    names_.push_back(n);
  }

 private:
  Sac* ctx_;
  std::vector<std::string> names_;
};

}  // namespace

Result<TiledMatrix> Add(Sac* ctx, const TiledMatrix& a,
                        const TiledMatrix& b) {
  Scoped s(ctx);
  s.Bind("__a", a);
  s.Bind("__b", b);
  s.BindScalar("__n", a.rows);
  s.BindScalar("__m", a.cols);
  return ctx->EvalTiled(
      "tiled(__n,__m)[ ((i,j),x+y) | ((i,j),x) <- __a, ((ii,jj),y) <- __b,"
      " ii == i, jj == j ]");
}

Result<TiledMatrix> Sub(Sac* ctx, const TiledMatrix& a,
                        const TiledMatrix& b) {
  Scoped s(ctx);
  s.Bind("__a", a);
  s.Bind("__b", b);
  s.BindScalar("__n", a.rows);
  s.BindScalar("__m", a.cols);
  return ctx->EvalTiled(
      "tiled(__n,__m)[ ((i,j),x-y) | ((i,j),x) <- __a, ((ii,jj),y) <- __b,"
      " ii == i, jj == j ]");
}

Result<TiledMatrix> Multiply(Sac* ctx, const TiledMatrix& a,
                             const TiledMatrix& b) {
  Scoped s(ctx);
  s.Bind("__a", a);
  s.Bind("__b", b);
  s.BindScalar("__n", a.rows);
  s.BindScalar("__m", b.cols);
  return ctx->EvalTiled(
      "tiled(__n,__m)[ ((i,j),+/v) | ((i,k),x) <- __a, ((kk,j),y) <- __b,"
      " kk == k, let v = x*y, group by (i,j) ]");
}

Result<TiledMatrix> MultiplyBt(Sac* ctx, const TiledMatrix& a,
                               const TiledMatrix& b) {
  Scoped s(ctx);
  s.Bind("__a", a);
  s.Bind("__b", b);
  s.BindScalar("__n", a.rows);
  s.BindScalar("__m", b.rows);
  return ctx->EvalTiled(
      "tiled(__n,__m)[ ((i,j),+/v) | ((i,k),x) <- __a, ((j,kk),y) <- __b,"
      " kk == k, let v = x*y, group by (i,j) ]");
}

Result<TiledMatrix> MultiplyAt(Sac* ctx, const TiledMatrix& a,
                               const TiledMatrix& b) {
  Scoped s(ctx);
  s.Bind("__a", a);
  s.Bind("__b", b);
  s.BindScalar("__n", a.cols);
  s.BindScalar("__m", b.cols);
  return ctx->EvalTiled(
      "tiled(__n,__m)[ ((i,j),+/v) | ((k,i),x) <- __a, ((kk,j),y) <- __b,"
      " kk == k, let v = x*y, group by (i,j) ]");
}

Result<TiledMatrix> Transpose(Sac* ctx, const TiledMatrix& a) {
  Scoped s(ctx);
  s.Bind("__a", a);
  s.BindScalar("__n", a.rows);
  s.BindScalar("__m", a.cols);
  return ctx->EvalTiled("tiled(__m,__n)[ ((j,i),x) | ((i,j),x) <- __a ]");
}

Result<BlockVector> RowSums(Sac* ctx, const TiledMatrix& a) {
  Scoped s(ctx);
  s.Bind("__a", a);
  s.BindScalar("__n", a.rows);
  return ctx->EvalVector(
      "tiled(__n)[ (i, +/x) | ((i,j),x) <- __a, group by i ]");
}

Result<BlockVector> MatVec(Sac* ctx, const TiledMatrix& a,
                           const BlockVector& x) {
  Scoped s(ctx);
  s.Bind("__a", a);
  s.Bind("__x", x);
  s.BindScalar("__n", a.rows);
  return ctx->EvalVector(
      "tiled(__n)[ (i, +/c) | ((i,k),m) <- __a, (kk,v) <- __x, kk == k,"
      " let c = m*v, group by i ]");
}

Result<double> FrobeniusSquared(Sac* ctx, const TiledMatrix& a) {
  Scoped s(ctx);
  s.Bind("__a", a);
  return ctx->EvalScalar("+/[ x*x | ((i,j),x) <- __a ]");
}

Result<Factorization> FactorizationStep(Sac* ctx, const TiledMatrix& r,
                                        const Factorization& state,
                                        double gamma, double lambda) {
  // E = R - P Q^T (the product joins on Q's second index, so Q^T is never
  // materialized).
  SAC_ASSIGN_OR_RETURN(TiledMatrix pqt, MultiplyBt(ctx, state.p, state.q));
  SAC_ASSIGN_OR_RETURN(TiledMatrix e, Sub(ctx, r, pqt));
  // P' = (1 - gamma*lambda) P + 2 gamma (E Q)
  SAC_ASSIGN_OR_RETURN(TiledMatrix eq, Multiply(ctx, e, state.q));
  Scoped s(ctx);
  s.Bind("__p", state.p);
  s.Bind("__q", state.q);
  s.Bind("__eq", eq);
  s.BindScalar("__n", state.p.rows);
  s.BindScalar("__k", state.p.cols);
  ctx->BindScalar("__gl", 1.0 - gamma * lambda);
  ctx->BindScalar("__tg", 2.0 * gamma);
  SAC_ASSIGN_OR_RETURN(
      TiledMatrix p2,
      ctx->EvalTiled(
          "tiled(__n,__k)[ ((i,j), __gl*p + __tg*g) | ((i,j),p) <- __p,"
          " ((ii,jj),g) <- __eq, ii == i, jj == j ]"));
  // Q' = (1 - gamma*lambda) Q + 2 gamma (E^T P)
  SAC_ASSIGN_OR_RETURN(TiledMatrix etp, MultiplyAt(ctx, e, state.p));
  Scoped s2(ctx);
  s2.Bind("__etp", etp);
  s2.BindScalar("__m", state.q.rows);
  SAC_ASSIGN_OR_RETURN(
      TiledMatrix q2,
      ctx->EvalTiled(
          "tiled(__m,__k)[ ((i,j), __gl*q + __tg*g) | ((i,j),q) <- __q,"
          " ((ii,jj),g) <- __etp, ii == i, jj == j ]"));
  ctx->Unbind("__gl");
  ctx->Unbind("__tg");
  return Factorization{std::move(p2), std::move(q2)};
}

}  // namespace sac::algo
