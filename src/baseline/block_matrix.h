// The comparison baseline of Section 6: a faithful port of Spark
// MLlib.linalg's distributed BlockMatrix, running on the same DISC engine
// as SAC's generated plans so that differences come from the *library's*
// fixed execution strategy and kernels, not the substrate.
//
// Algorithmic fidelity to MLlib:
//  * add()      -- cogroup of the two block RDDs, per-key block addition
//                  (MLlib blockMap via cogroup).
//  * multiply() -- the simulateMultiply destination analysis: each A block
//                  (i,k) is flatMapped to every output column panel and
//                  each B block (k,j) to every output row panel, the two
//                  replicated streams are cogrouped by output coordinate,
//                  and matching k products are summed into the result
//                  block.
//  * transpose() -- per-block transpose with swapped coordinates (narrow).
//
// Kernel fidelity: all block-level math goes through la::jvmlike -- the
// generic, element-at-a-time, bounds-checked kernels that model MLlib's
// pure-JVM Breeze fallback, which is what the paper benchmarked against
// (see DESIGN.md substitution table).
#ifndef SAC_BASELINE_BLOCK_MATRIX_H_
#define SAC_BASELINE_BLOCK_MATRIX_H_

#include "src/common/status.h"
#include "src/runtime/engine.h"
#include "src/storage/tiled.h"

namespace sac::baseline {

using runtime::Engine;

/// MLlib-style BlockMatrix. Shares the tile layout of storage::TiledMatrix
/// so SAC and the baseline operate on identical data.
class BlockMatrix {
 public:
  BlockMatrix() = default;
  BlockMatrix(int64_t rows, int64_t cols, int64_t block,
              runtime::Dataset blocks)
      : rows_(rows), cols_(cols), block_(block), blocks_(std::move(blocks)) {}

  /// Wraps an existing tiled matrix (no copy; both views share tiles).
  static BlockMatrix FromTiled(const storage::TiledMatrix& m) {
    return BlockMatrix(m.rows, m.cols, m.block, m.tiles);
  }
  storage::TiledMatrix ToTiled() const {
    return storage::TiledMatrix{rows_, cols_, block_, blocks_};
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t block() const { return block_; }
  const runtime::Dataset& blocks() const { return blocks_; }

  /// this + other (cogroup + jvmlike block add).
  Result<BlockMatrix> Add(Engine* eng, const BlockMatrix& other) const;

  /// alpha*this + beta*other (cogroup + jvmlike axpby) -- the shape MLlib
  /// users write as a breeze expression over co-grouped blocks.
  Result<BlockMatrix> Axpby(Engine* eng, double alpha, double beta,
                            const BlockMatrix& other) const;

  /// this - other.
  Result<BlockMatrix> Sub(Engine* eng, const BlockMatrix& other) const {
    return Axpby(eng, 1.0, -1.0, other);
  }

  /// this x other via simulateMultiply-style replication + cogroup.
  Result<BlockMatrix> Multiply(Engine* eng, const BlockMatrix& other) const;

  /// Per-block transpose (narrow op).
  Result<BlockMatrix> Transpose(Engine* eng) const;

  /// alpha * this (narrow op through the jvmlike kernel layer).
  Result<BlockMatrix> Scale(Engine* eng, double alpha) const;

  /// Frobenius norm squared (for factorization convergence reporting).
  Result<double> FrobeniusSquared(Engine* eng) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t block_ = 0;
  runtime::Dataset blocks_;
};

/// One gradient-descent iteration of matrix factorization (Section 6,
/// third experiment) implemented purely with BlockMatrix operations:
///   E = R - P Qt;  P += gamma (2 E Q - lambda P);  Q += gamma (2 Et P - lambda Q)
struct FactorizationState {
  BlockMatrix p;
  BlockMatrix q;
};
Result<FactorizationState> FactorizationStep(Engine* eng,
                                             const BlockMatrix& r,
                                             const FactorizationState& state,
                                             double gamma, double lambda);

}  // namespace sac::baseline

#endif  // SAC_BASELINE_BLOCK_MATRIX_H_
