#include "src/baseline/block_matrix.h"

#include <unordered_map>
#include <vector>

#include "src/la/jvmlike.h"
#include "src/storage/tiled.h"

namespace sac::baseline {

using runtime::Dataset;
using runtime::Value;
using runtime::ValueVec;
using runtime::VInt;
using runtime::VPair;

namespace {

Status CheckSameLayout(const BlockMatrix& a, const BlockMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::InvalidArgument("BlockMatrix shape mismatch");
  }
  if (a.block() != b.block()) {
    return Status::InvalidArgument("BlockMatrix block-size mismatch");
  }
  return Status::OK();
}

}  // namespace

Result<BlockMatrix> BlockMatrix::Add(Engine* eng,
                                     const BlockMatrix& other) const {
  return Axpby(eng, 1.0, 1.0, other);
}

Result<BlockMatrix> BlockMatrix::Axpby(Engine* eng, double alpha, double beta,
                                       const BlockMatrix& other) const {
  SAC_RETURN_NOT_OK(CheckSameLayout(*this, other));
  // MLlib's add cogroups the two block RDDs (a full shuffle of both) and
  // adds per key; a block missing on one side counts as zeros.
  SAC_ASSIGN_OR_RETURN(Dataset cg, eng->CoGroup(blocks_, other.blocks_));
  const int64_t rows = rows_, cols = cols_, block = block_;
  SAC_ASSIGN_OR_RETURN(
      Dataset out,
      eng->Map(
          cg,
          [alpha, beta, rows, cols, block](const Value& row) {
            const ValueVec& as = row.At(1).At(0).AsList();
            const ValueVec& bs = row.At(1).At(1).AsList();
            const int64_t bi = row.At(0).At(0).AsInt();
            const int64_t bj = row.At(0).At(1).AsInt();
            const int64_t r = std::min(block, rows - bi * block);
            const int64_t c = std::min(block, cols - bj * block);
            la::Tile zero(r, c);
            const la::Tile& a = as.empty() ? zero : as[0].AsTile();
            const la::Tile& b = bs.empty() ? zero : bs[0].AsTile();
            la::Tile sum;
            la::jvmlike::TileAxpby(alpha, a, beta, b, &sum);
            return VPair(row.At(0), Value::TileVal(std::move(sum)));
          },
          "mllibBlockAdd"));
  return BlockMatrix(rows_, cols_, block_, out);
}

Result<BlockMatrix> BlockMatrix::Multiply(Engine* eng,
                                          const BlockMatrix& other) const {
  if (cols_ != other.rows()) {
    return Status::InvalidArgument("BlockMatrix inner dimension mismatch");
  }
  if (block_ != other.block()) {
    return Status::InvalidArgument("BlockMatrix block-size mismatch");
  }
  const int64_t out_rows = rows_, out_cols = other.cols();
  const int64_t block = block_;
  const int64_t out_gr = storage::CeilDiv(out_rows, block);
  const int64_t out_gc = storage::CeilDiv(out_cols, block);

  // simulateMultiply: A block (i,k) is needed by output blocks (i, *);
  // B block (k,j) by (*, j). Replicate accordingly (MLlib flatMaps with
  // the destination partition set; dense matrices need every panel).
  SAC_ASSIGN_OR_RETURN(
      Dataset as,
      eng->FlatMap(
          blocks_,
          [out_gc](const Value& row, ValueVec* out) {
            const int64_t i = row.At(0).At(0).AsInt();
            const int64_t k = row.At(0).At(1).AsInt();
            for (int64_t j = 0; j < out_gc; ++j) {
              out->push_back(VPair(runtime::VIdx2(i, j),
                                   VPair(VInt(k), row.At(1))));
            }
          },
          "mllibReplicateA"));
  SAC_ASSIGN_OR_RETURN(
      Dataset bs,
      eng->FlatMap(
          other.blocks_,
          [out_gr](const Value& row, ValueVec* out) {
            const int64_t k = row.At(0).At(0).AsInt();
            const int64_t j = row.At(0).At(1).AsInt();
            for (int64_t i = 0; i < out_gr; ++i) {
              out->push_back(VPair(runtime::VIdx2(i, j),
                                   VPair(VInt(k), row.At(1))));
            }
          },
          "mllibReplicateB"));
  SAC_ASSIGN_OR_RETURN(Dataset cg, eng->CoGroup(as, bs));
  SAC_ASSIGN_OR_RETURN(
      Dataset out,
      eng->FlatMap(
          cg,
          [out_rows, out_cols, block](const Value& row, ValueVec* outv) {
            const ValueVec& a_list = row.At(1).At(0).AsList();
            const ValueVec& b_list = row.At(1).At(1).AsList();
            if (a_list.empty() || b_list.empty()) return;
            std::unordered_map<int64_t, std::vector<const Value*>> b_by_k;
            for (const Value& bv : b_list) {
              b_by_k[bv.At(0).AsInt()].push_back(&bv);
            }
            const int64_t bi = row.At(0).At(0).AsInt();
            const int64_t bj = row.At(0).At(1).AsInt();
            la::Tile acc(std::min(block, out_rows - bi * block),
                         std::min(block, out_cols - bj * block));
            bool any = false;
            for (const Value& av : a_list) {
              auto it = b_by_k.find(av.At(0).AsInt());
              if (it == b_by_k.end()) continue;
              for (const Value* bv : it->second) {
                la::jvmlike::TileGemmAccum(av.At(1).AsTile(),
                                           bv->At(1).AsTile(), &acc);
                any = true;
              }
            }
            if (any) {
              outv->push_back(VPair(row.At(0), Value::TileVal(std::move(acc))));
            }
          },
          "mllibMultiply"));
  return BlockMatrix(out_rows, out_cols, block, out);
}

Result<BlockMatrix> BlockMatrix::Transpose(Engine* eng) const {
  SAC_ASSIGN_OR_RETURN(
      Dataset out,
      eng->Map(
          blocks_,
          [](const Value& row) {
            la::Tile t;
            la::jvmlike::TileTranspose(row.At(1).AsTile(), &t);
            return VPair(runtime::VTuple({row.At(0).At(1), row.At(0).At(0)}),
                         Value::TileVal(std::move(t)));
          },
          "mllibTranspose"));
  return BlockMatrix(cols_, rows_, block_, out);
}

Result<BlockMatrix> BlockMatrix::Scale(Engine* eng, double alpha) const {
  SAC_ASSIGN_OR_RETURN(
      Dataset out,
      eng->Map(
          blocks_,
          [alpha](const Value& row) {
            const la::Tile& t = row.At(1).AsTile();
            la::Tile s(t.rows(), t.cols());
            auto src = la::jvmlike::WrapConst(&t);
            auto dst = la::jvmlike::Wrap(&s);
            for (int64_t i = 0; i < t.rows(); ++i) {
              for (int64_t j = 0; j < t.cols(); ++j) {
                dst->Set(i, j, alpha * src->Get(i, j));
              }
            }
            return VPair(row.At(0), Value::TileVal(std::move(s)));
          },
          "mllibScale"));
  return BlockMatrix(rows_, cols_, block_, out);
}

Result<double> BlockMatrix::FrobeniusSquared(Engine* eng) const {
  SAC_ASSIGN_OR_RETURN(
      Dataset partials,
      eng->Map(
          blocks_,
          [](const Value& row) {
            const la::Tile& t = row.At(1).AsTile();
            double s = 0;
            for (int64_t i = 0; i < t.size(); ++i) {
              s += t.data()[i] * t.data()[i];
            }
            return Value::Double(s);
          },
          "frobenius"));
  SAC_ASSIGN_OR_RETURN(ValueVec rows, eng->Collect(partials));
  double total = 0;
  for (const Value& v : rows) total += v.AsDouble();
  return total;
}

Result<FactorizationState> FactorizationStep(Engine* eng,
                                             const BlockMatrix& r,
                                             const FactorizationState& state,
                                             double gamma, double lambda) {
  // E = R - P Qt
  SAC_ASSIGN_OR_RETURN(BlockMatrix qt, state.q.Transpose(eng));
  SAC_ASSIGN_OR_RETURN(BlockMatrix pqt, state.p.Multiply(eng, qt));
  SAC_ASSIGN_OR_RETURN(BlockMatrix e, r.Sub(eng, pqt));
  // P' = P + gamma (2 E Q - lambda P) = (1 - gamma lambda) P + 2 gamma (E Q)
  SAC_ASSIGN_OR_RETURN(BlockMatrix eq, e.Multiply(eng, state.q));
  SAC_ASSIGN_OR_RETURN(
      BlockMatrix p2, state.p.Axpby(eng, 1.0 - gamma * lambda, 2.0 * gamma, eq));
  // Q' = Q + gamma (2 Et P - lambda Q)
  SAC_ASSIGN_OR_RETURN(BlockMatrix et, e.Transpose(eng));
  SAC_ASSIGN_OR_RETURN(BlockMatrix etp, et.Multiply(eng, state.p));
  SAC_ASSIGN_OR_RETURN(
      BlockMatrix q2, state.q.Axpby(eng, 1.0 - gamma * lambda, 2.0 * gamma, etp));
  return FactorizationState{std::move(p2), std::move(q2)};
}

}  // namespace sac::baseline
