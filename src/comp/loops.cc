#include "src/comp/loops.h"

#include <sstream>

namespace sac::comp {

std::string LoopStmt::ToString(int indent) const {
  const std::string pad(indent * 2, ' ');
  std::ostringstream os;
  switch (kind) {
    case Kind::kFor:
      os << pad << "for " << var << " = " << lo->ToString() << ", "
         << hi->ToString() << " do\n"
         << body->ToString(indent + 1);
      break;
    case Kind::kSeq:
      os << pad << "{\n";
      for (const auto& s : stmts) os << s->ToString(indent + 1);
      os << pad << "}\n";
      break;
    case Kind::kAssign:
    case Kind::kUpdate: {
      os << pad << target << "[";
      for (size_t i = 0; i < indices.size(); ++i) {
        if (i) os << ",";
        os << indices[i]->ToString();
      }
      os << "]" << (kind == Kind::kAssign ? " := " : " += ")
         << rhs->ToString() << ";\n";
      break;
    }
  }
  return os.str();
}

namespace {

struct LoopCtx {
  std::string var;
  ExprPtr lo;
  ExprPtr hi;  // inclusive
};

/// Translates one innermost assignment under the enclosing loop nest.
Result<TranslatedUpdate> TranslateAssignment(
    const LoopStmt& stmt, const std::vector<LoopCtx>& loops,
    const DimsFn& dims) {
  SAC_ASSIGN_OR_RETURN(std::vector<ExprPtr> dim_args, dims(stmt.target));
  if (dim_args.size() != stmt.indices.size()) {
    return Status::PlanError(
        "assignment to '" + stmt.target + "' uses " +
        std::to_string(stmt.indices.size()) + " indices but the array has " +
        std::to_string(dim_args.size()) + " dimensions at " +
        stmt.pos.ToString());
  }

  std::vector<Qualifier> quals;
  for (const LoopCtx& l : loops) {
    // for v = lo, hi (inclusive) => v <- lo until hi+1
    ExprPtr hi1 =
        Expr::Binary(BinOp::kAdd, l.hi, Expr::Int(1, stmt.pos), stmt.pos);
    quals.push_back(Qualifier::Generator(
        Pattern::Var(l.var, stmt.pos),
        Expr::Call("until", {l.lo, hi1}, stmt.pos), stmt.pos));
  }

  ExprPtr head_key = stmt.indices.size() == 1
                         ? stmt.indices[0]
                         : Expr::Tuple(stmt.indices, stmt.pos);
  ExprPtr head_val = stmt.rhs;

  if (stmt.kind == LoopStmt::Kind::kUpdate) {
    // V[k] += rhs  =>  group by the index, sum the bag of rhs values.
    // When every index is a plain loop variable the group-by pattern uses
    // them directly (so the 5.3/5.4 rules can fire); otherwise the
    // key-expression sugar introduces fresh key variables.
    bool plain = true;
    for (const auto& ie : stmt.indices) {
      if (ie->kind != Expr::Kind::kVar) plain = false;
    }
    const std::string v = "v$loop";
    quals.push_back(Qualifier::Let(Pattern::Var(v, stmt.pos), stmt.rhs,
                                   stmt.pos));
    if (plain) {
      std::vector<PatternPtr> key_pats;
      for (const auto& ie : stmt.indices) {
        key_pats.push_back(Pattern::Var(ie->str_val, stmt.pos));
      }
      PatternPtr key_pat = key_pats.size() == 1
                               ? key_pats[0]
                               : Pattern::Tuple(std::move(key_pats), stmt.pos);
      quals.push_back(Qualifier::GroupBy(key_pat, nullptr, stmt.pos));
    } else {
      std::vector<PatternPtr> key_pats;
      std::vector<ExprPtr> key_vars;
      for (size_t i = 0; i < stmt.indices.size(); ++i) {
        const std::string kv = "k$loop" + std::to_string(i);
        key_pats.push_back(Pattern::Var(kv, stmt.pos));
        key_vars.push_back(Expr::Var(kv, stmt.pos));
      }
      PatternPtr key_pat = key_pats.size() == 1
                               ? key_pats[0]
                               : Pattern::Tuple(key_pats, stmt.pos);
      quals.push_back(Qualifier::GroupBy(key_pat, head_key, stmt.pos));
      head_key = key_vars.size() == 1 ? key_vars[0]
                                      : Expr::Tuple(key_vars, stmt.pos);
    }
    head_val = Expr::Reduce(ReduceOp::kSum, Expr::Var(v, stmt.pos),
                            stmt.pos);
  }

  ExprPtr comp = Expr::Comprehension(
      Expr::Tuple({head_key, head_val}, stmt.pos), std::move(quals),
      stmt.pos);
  TranslatedUpdate out;
  out.target = stmt.target;
  out.query = Expr::Build("tiled", comp, dim_args, stmt.pos);
  out.in_loop = !loops.empty();
  out.loop_depth = static_cast<int>(loops.size());
  return out;
}

Status TranslateRec(const LoopStmtPtr& stmt, std::vector<LoopCtx>* loops,
                    const DimsFn& dims,
                    std::vector<TranslatedUpdate>* out) {
  switch (stmt->kind) {
    case LoopStmt::Kind::kFor: {
      loops->push_back(LoopCtx{stmt->var, stmt->lo, stmt->hi});
      SAC_RETURN_NOT_OK(TranslateRec(stmt->body, loops, dims, out));
      loops->pop_back();
      return Status::OK();
    }
    case LoopStmt::Kind::kSeq:
      // Independent statements in a loop body become independent loop
      // nests (the DIABLO restriction: statements inside one nest must
      // not have loop-carried dependencies on each other).
      for (const auto& s : stmt->stmts) {
        SAC_RETURN_NOT_OK(TranslateRec(s, loops, dims, out));
      }
      return Status::OK();
    case LoopStmt::Kind::kAssign:
    case LoopStmt::Kind::kUpdate: {
      SAC_ASSIGN_OR_RETURN(TranslatedUpdate t,
                           TranslateAssignment(*stmt, *loops, dims));
      out->push_back(std::move(t));
      return Status::OK();
    }
  }
  return Status::PlanError("bad loop statement");
}

}  // namespace

Result<std::vector<TranslatedUpdate>> TranslateLoops(const LoopStmtPtr& prog,
                                                     const DimsFn& dims) {
  std::vector<TranslatedUpdate> out;
  std::vector<LoopCtx> loops;
  SAC_RETURN_NOT_OK(TranslateRec(prog, &loops, dims, &out));
  if (out.empty()) {
    return Status::PlanError("loop program contains no assignments");
  }
  return out;
}

}  // namespace sac::comp
