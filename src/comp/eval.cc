#include "src/comp/eval.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/la/tile.h"

namespace sac::comp {

using runtime::ValueEq;
using runtime::ValueHash;

namespace {

constexpr int64_t kMaxRange = 32 * 1024 * 1024;

Status ErrAt(Pos pos, const std::string& msg) {
  return Status::RuntimeError(msg + " at " + pos.ToString());
}

/// Insertion-ordered grouping of env snapshots by key.
struct Groups {
  std::unordered_map<Value, size_t, ValueHash, ValueEq> index;
  std::vector<Value> keys;
  // rows[group][var] in snapshot-var order.
  std::vector<std::vector<ValueVec>> rows;
};

}  // namespace

Status Evaluator::MatchPattern(const PatternPtr& p, const Value& v,
                               Env* env) {
  switch (p->kind) {
    case Pattern::Kind::kWildcard:
      return Status::OK();
    case Pattern::Kind::kVar:
      env->Bind(p->var, v);
      return Status::OK();
    case Pattern::Kind::kTuple: {
      if (!v.is_tuple() || v.TupleSize() != p->elems.size()) {
        return ErrAt(p->pos, "pattern " + p->ToString() +
                                 " does not match value " + v.ToString());
      }
      for (size_t i = 0; i < p->elems.size(); ++i) {
        SAC_RETURN_NOT_OK(MatchPattern(p->elems[i], v.At(i), env));
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

Result<ValueVec> Evaluator::Iterable(const Value& v, Pos pos) {
  if (v.is_list()) return v.AsList();
  if (v.is_tile()) {
    // Implicit sparsifier: a dense matrix iterates as ((i,j), v).
    const la::Tile& t = v.AsTile();
    ValueVec out;
    out.reserve(static_cast<size_t>(t.size()));
    for (int64_t i = 0; i < t.rows(); ++i) {
      for (int64_t j = 0; j < t.cols(); ++j) {
        out.push_back(runtime::VPair(runtime::VIdx2(i, j),
                                     runtime::VDouble(t.At(i, j))));
      }
    }
    return out;
  }
  return ErrAt(pos, "generator source is not iterable: " + v.ToString());
}

Result<Value> Evaluator::FoldReduce(ReduceOp op, const ValueVec& items,
                                    Pos pos) {
  switch (op) {
    case ReduceOp::kCount:
      return Value::Int(static_cast<int64_t>(items.size()));
    case ReduceOp::kConcat: {
      ValueVec out;
      for (const Value& v : items) {
        if (v.is_list()) {
          out.insert(out.end(), v.AsList().begin(), v.AsList().end());
        } else {
          out.push_back(v);
        }
      }
      return Value::List(std::move(out));
    }
    case ReduceOp::kAnd: {
      for (const Value& v : items) {
        if (!v.AsBool()) return Value::Bool(false);
      }
      return Value::Bool(true);
    }
    case ReduceOp::kOr: {
      for (const Value& v : items) {
        if (v.AsBool()) return Value::Bool(true);
      }
      return Value::Bool(false);
    }
    case ReduceOp::kAvg: {
      if (items.empty()) return ErrAt(pos, "avg/ of empty collection");
      double s = 0;
      for (const Value& v : items) s += v.AsDouble();
      return Value::Double(s / static_cast<double>(items.size()));
    }
    case ReduceOp::kMin:
    case ReduceOp::kMax: {
      if (items.empty()) {
        return ErrAt(pos, "min/max of empty collection");
      }
      Value best = items[0];
      for (size_t i = 1; i < items.size(); ++i) {
        const int c = items[i].Compare(best);
        if ((op == ReduceOp::kMin && c < 0) ||
            (op == ReduceOp::kMax && c > 0)) {
          best = items[i];
        }
      }
      return best;
    }
    case ReduceOp::kSum:
    case ReduceOp::kProd: {
      bool all_int = true;
      for (const Value& v : items) {
        if (!v.is_numeric()) {
          return ErrAt(pos, "numeric reduction over non-number " +
                                v.ToString());
        }
        if (!v.is_int()) all_int = false;
      }
      if (all_int) {
        int64_t acc = op == ReduceOp::kSum ? 0 : 1;
        for (const Value& v : items) {
          acc = op == ReduceOp::kSum ? acc + v.AsInt() : acc * v.AsInt();
        }
        return Value::Int(acc);
      }
      double acc = op == ReduceOp::kSum ? 0.0 : 1.0;
      for (const Value& v : items) {
        acc = op == ReduceOp::kSum ? acc + v.AsDouble() : acc * v.AsDouble();
      }
      return Value::Double(acc);
    }
  }
  return ErrAt(pos, "unknown reduction");
}

Result<Value> Evaluator::Eval(const ExprPtr& e) {
  Env env;
  return EvalWith(e, &env);
}

Result<Value> Evaluator::EvalWith(const ExprPtr& e, Env* env) {
  return EvalExpr(e, env);
}

Result<Value> Evaluator::EvalExpr(const ExprPtr& e, Env* env) {
  switch (e->kind) {
    case Expr::Kind::kIntLit:
      return Value::Int(e->int_val);
    case Expr::Kind::kDoubleLit:
      return Value::Double(e->double_val);
    case Expr::Kind::kBoolLit:
      return Value::Bool(e->bool_val);
    case Expr::Kind::kStringLit:
      return Value::Str(e->str_val);
    case Expr::Kind::kVar: {
      if (const Value* v = env->Lookup(e->str_val)) return *v;
      auto it = globals_.find(e->str_val);
      if (it != globals_.end()) return it->second;
      return ErrAt(e->pos, "unbound variable '" + e->str_val + "'");
    }
    case Expr::Kind::kTuple: {
      ValueVec elems;
      elems.reserve(e->children.size());
      for (const auto& c : e->children) {
        SAC_ASSIGN_OR_RETURN(Value v, EvalExpr(c, env));
        elems.push_back(std::move(v));
      }
      return Value::Tuple(std::move(elems));
    }
    case Expr::Kind::kBinary: {
      // Short-circuit logicals first.
      if (e->bin_op == BinOp::kAnd || e->bin_op == BinOp::kOr) {
        SAC_ASSIGN_OR_RETURN(Value l, EvalExpr(e->children[0], env));
        const bool lb = l.AsBool();
        if (e->bin_op == BinOp::kAnd && !lb) return Value::Bool(false);
        if (e->bin_op == BinOp::kOr && lb) return Value::Bool(true);
        SAC_ASSIGN_OR_RETURN(Value r, EvalExpr(e->children[1], env));
        return Value::Bool(r.AsBool());
      }
      SAC_ASSIGN_OR_RETURN(Value l, EvalExpr(e->children[0], env));
      SAC_ASSIGN_OR_RETURN(Value r, EvalExpr(e->children[1], env));
      switch (e->bin_op) {
        case BinOp::kEq:
          return Value::Bool(l.Equals(r));
        case BinOp::kNe:
          return Value::Bool(!l.Equals(r));
        case BinOp::kLt:
          return Value::Bool(l.Compare(r) < 0);
        case BinOp::kLe:
          return Value::Bool(l.Compare(r) <= 0);
        case BinOp::kGt:
          return Value::Bool(l.Compare(r) > 0);
        case BinOp::kGe:
          return Value::Bool(l.Compare(r) >= 0);
        default:
          break;
      }
      if (!l.is_numeric() || !r.is_numeric()) {
        return ErrAt(e->pos, "arithmetic on non-numbers: " + l.ToString() +
                                 " " + BinOpName(e->bin_op) + " " +
                                 r.ToString());
      }
      if (l.is_int() && r.is_int()) {
        const int64_t a = l.AsInt(), b = r.AsInt();
        switch (e->bin_op) {
          case BinOp::kAdd:
            return Value::Int(a + b);
          case BinOp::kSub:
            return Value::Int(a - b);
          case BinOp::kMul:
            return Value::Int(a * b);
          case BinOp::kDiv:
            if (b == 0) return ErrAt(e->pos, "integer division by zero");
            return Value::Int(a / b);
          case BinOp::kMod:
            if (b == 0) return ErrAt(e->pos, "integer modulo by zero");
            return Value::Int(a % b);
          default:
            break;
        }
      }
      const double a = l.AsDouble(), b = r.AsDouble();
      switch (e->bin_op) {
        case BinOp::kAdd:
          return Value::Double(a + b);
        case BinOp::kSub:
          return Value::Double(a - b);
        case BinOp::kMul:
          return Value::Double(a * b);
        case BinOp::kDiv:
          return Value::Double(a / b);
        case BinOp::kMod:
          return Value::Double(std::fmod(a, b));
        default:
          return ErrAt(e->pos, "bad binary operator");
      }
    }
    case Expr::Kind::kUnary: {
      SAC_ASSIGN_OR_RETURN(Value v, EvalExpr(e->children[0], env));
      if (e->un_op == UnOp::kNot) return Value::Bool(!v.AsBool());
      if (v.is_int()) return Value::Int(-v.AsInt());
      return Value::Double(-v.AsDouble());
    }
    case Expr::Kind::kCall:
      return EvalCall(e, env);
    case Expr::Kind::kIndex:
      return EvalIndex(e, env);
    case Expr::Kind::kReduce: {
      SAC_ASSIGN_OR_RETURN(Value v, EvalExpr(e->children[0], env));
      if (!v.is_list()) {
        return ErrAt(e->pos, "reduction over non-collection " + v.ToString());
      }
      return FoldReduce(e->reduce_op, v.AsList(), e->pos);
    }
    case Expr::Kind::kComprehension:
      return EvalComprehension(e, env);
    case Expr::Kind::kBuild:
      return EvalBuild(e, env);
    case Expr::Kind::kIf: {
      SAC_ASSIGN_OR_RETURN(Value c, EvalExpr(e->children[0], env));
      return EvalExpr(e->children[c.AsBool() ? 1 : 2], env);
    }
  }
  return ErrAt(e->pos, "unhandled expression kind");
}

Result<Value> Evaluator::EvalComprehension(const ExprPtr& e, Env* env) {
  ValueVec out;
  SAC_RETURN_NOT_OK(EvalSegment(e->quals, 0, e->children[0], env, {}, &out));
  return Value::List(std::move(out));
}

Status Evaluator::WalkRange(const std::vector<Qualifier>& quals, size_t start,
                            size_t stop, Env* env,
                            const std::function<Status(Env*)>& on_reach) {
  if (start == stop) return on_reach(env);
  const Qualifier& q = quals[start];
  switch (q.kind) {
    case Qualifier::Kind::kGenerator: {
      SAC_ASSIGN_OR_RETURN(Value src, EvalExpr(q.expr, env));
      SAC_ASSIGN_OR_RETURN(ValueVec items, Iterable(src, q.pos));
      for (const Value& item : items) {
        const size_t mark = env->Mark();
        SAC_RETURN_NOT_OK(MatchPattern(q.pattern, item, env));
        SAC_RETURN_NOT_OK(WalkRange(quals, start + 1, stop, env, on_reach));
        env->Reset(mark);
      }
      return Status::OK();
    }
    case Qualifier::Kind::kLet: {
      SAC_ASSIGN_OR_RETURN(Value v, EvalExpr(q.expr, env));
      const size_t mark = env->Mark();
      SAC_RETURN_NOT_OK(MatchPattern(q.pattern, v, env));
      SAC_RETURN_NOT_OK(WalkRange(quals, start + 1, stop, env, on_reach));
      env->Reset(mark);
      return Status::OK();
    }
    case Qualifier::Kind::kGuard: {
      SAC_ASSIGN_OR_RETURN(Value v, EvalExpr(q.expr, env));
      if (!v.is_bool()) {
        return ErrAt(q.pos, "guard is not boolean: " + v.ToString());
      }
      if (!v.AsBool()) return Status::OK();
      return WalkRange(quals, start + 1, stop, env, on_reach);
    }
    case Qualifier::Kind::kGroupBy:
      return Status::RuntimeError("internal: group-by inside WalkRange");
  }
  return Status::OK();
}

namespace {

/// Variables bound by generator/let patterns in quals[start, stop).
std::vector<std::string> SegmentBoundVars(const std::vector<Qualifier>& quals,
                                          size_t start, size_t stop) {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (size_t i = start; i < stop; ++i) {
    const Qualifier& q = quals[i];
    if (q.kind == Qualifier::Kind::kGenerator ||
        q.kind == Qualifier::Kind::kLet) {
      for (const auto& v : q.pattern->Vars()) {
        if (seen.insert(v).second) out.push_back(v);
      }
    }
  }
  return out;
}

/// The key value denoted by a (bound) group-by pattern.
Result<Value> PatternValue(const PatternPtr& p, const Env& env, Pos pos) {
  switch (p->kind) {
    case Pattern::Kind::kVar: {
      const Value* v = env.Lookup(p->var);
      if (!v) {
        return Status::RuntimeError("group-by key variable '" + p->var +
                                    "' unbound at " + pos.ToString());
      }
      return *v;
    }
    case Pattern::Kind::kWildcard:
      return Status::RuntimeError("wildcard in group-by key at " +
                                  pos.ToString());
    case Pattern::Kind::kTuple: {
      ValueVec elems;
      elems.reserve(p->elems.size());
      for (const auto& el : p->elems) {
        SAC_ASSIGN_OR_RETURN(Value v, PatternValue(el, env, pos));
        elems.push_back(std::move(v));
      }
      return Value::Tuple(std::move(elems));
    }
  }
  return Status::RuntimeError("bad pattern");
}

}  // namespace

Status Evaluator::EvalSegment(const std::vector<Qualifier>& quals,
                              size_t start, const ExprPtr& head, Env* env,
                              const std::vector<std::string>& liftable,
                              ValueVec* out) {
  size_t g = start;
  while (g < quals.size() && quals[g].kind != Qualifier::Kind::kGroupBy) ++g;
  if (g == quals.size()) {
    return WalkRange(quals, start, g, env, [&](Env* env2) -> Status {
      SAC_ASSIGN_OR_RETURN(Value v, EvalExpr(head, env2));
      out->push_back(std::move(v));
      return Status::OK();
    });
  }

  const Qualifier& gb = quals[g];
  // Variables a group-by lifts: everything bound earlier in this
  // comprehension (outer segments plus this one) minus the key variables.
  std::vector<std::string> bound = liftable;
  for (const auto& v : SegmentBoundVars(quals, start, g)) {
    if (std::find(bound.begin(), bound.end(), v) == bound.end()) {
      bound.push_back(v);
    }
  }
  const std::vector<std::string> key_vars = gb.pattern->Vars();
  std::vector<std::string> lifted;
  for (const auto& v : bound) {
    if (std::find(key_vars.begin(), key_vars.end(), v) == key_vars.end()) {
      lifted.push_back(v);
    }
  }

  Groups groups;
  SAC_RETURN_NOT_OK(WalkRange(quals, start, g, env, [&](Env* env2) -> Status {
    const size_t mark = env2->Mark();
    // `group by p : e` is sugar for `let p = e, group by p` (Section 3).
    if (gb.expr) {
      SAC_ASSIGN_OR_RETURN(Value kv, EvalExpr(gb.expr, env2));
      SAC_RETURN_NOT_OK(MatchPattern(gb.pattern, kv, env2));
    }
    SAC_ASSIGN_OR_RETURN(Value key, PatternValue(gb.pattern, *env2, gb.pos));
    auto it = groups.index.find(key);
    size_t slot;
    if (it == groups.index.end()) {
      slot = groups.keys.size();
      groups.index.emplace(key, slot);
      groups.keys.push_back(key);
      groups.rows.emplace_back(lifted.size());
    } else {
      slot = it->second;
    }
    for (size_t i = 0; i < lifted.size(); ++i) {
      const Value* v = env2->Lookup(lifted[i]);
      if (!v) {
        return Status::RuntimeError("lifted variable '" + lifted[i] +
                                    "' unbound at " + gb.pos.ToString());
      }
      groups.rows[slot][i].push_back(*v);
    }
    env2->Reset(mark);
    return Status::OK();
  }));

  for (size_t s = 0; s < groups.keys.size(); ++s) {
    const size_t mark = env->Mark();
    SAC_RETURN_NOT_OK(MatchPattern(gb.pattern, groups.keys[s], env));
    for (size_t i = 0; i < lifted.size(); ++i) {
      env->Bind(lifted[i], Value::List(std::move(groups.rows[s][i])));
    }
    SAC_RETURN_NOT_OK(EvalSegment(quals, g + 1, head, env, bound, out));
    env->Reset(mark);
  }
  return Status::OK();
}

Result<Value> Evaluator::EvalBuild(const ExprPtr& e, Env* env) {
  const std::string& b = e->str_val;
  SAC_ASSIGN_OR_RETURN(Value comp, EvalExpr(e->children[0], env));
  if (!comp.is_list()) {
    return ErrAt(e->pos, "builder over non-collection");
  }
  const ValueVec& items = comp.AsList();

  auto arg_int = [&](size_t i) -> Result<int64_t> {
    SAC_ASSIGN_OR_RETURN(Value v, EvalExpr(e->children[i + 1], env));
    return v.AsInt();
  };
  const size_t nargs = e->children.size() - 1;

  if (b == "rdd" || b == "list" || b == "bag") {
    return comp;
  }
  if (b == "set") {
    ValueVec out;
    std::unordered_set<Value, ValueHash, ValueEq> seen;
    for (const Value& v : items) {
      if (seen.insert(v).second) out.push_back(v);
    }
    return Value::List(std::move(out));
  }
  if ((b == "vector" || b == "array" || b == "tiled") && nargs == 1) {
    SAC_ASSIGN_OR_RETURN(int64_t n, arg_int(0));
    if (n < 0 || n > kMaxRange) return ErrAt(e->pos, "bad vector size");
    std::vector<double> dense(static_cast<size_t>(n), 0.0);
    for (const Value& item : items) {
      if (!item.is_tuple() || item.TupleSize() != 2) {
        return ErrAt(e->pos, "vector builder expects (i, v) pairs");
      }
      const int64_t i = item.At(0).AsInt();
      if (i < 0 || i >= n) continue;  // paper's builder guards i in range
      dense[static_cast<size_t>(i)] = item.At(1).AsDouble();
    }
    ValueVec out;
    out.reserve(dense.size());
    for (int64_t i = 0; i < n; ++i) {
      out.push_back(runtime::VPair(Value::Int(i), Value::Double(dense[i])));
    }
    return Value::List(std::move(out));
  }
  if ((b == "matrix" || b == "tiled") && nargs == 2) {
    SAC_ASSIGN_OR_RETURN(int64_t n, arg_int(0));
    SAC_ASSIGN_OR_RETURN(int64_t m, arg_int(1));
    if (n < 0 || m < 0 || n * m > kMaxRange) {
      return ErrAt(e->pos, "bad matrix size");
    }
    la::Tile t(n, m);
    for (const Value& item : items) {
      if (!item.is_tuple() || item.TupleSize() != 2 ||
          !item.At(0).is_tuple() || item.At(0).TupleSize() != 2) {
        return ErrAt(e->pos, "matrix builder expects ((i,j), v) pairs");
      }
      const int64_t i = item.At(0).At(0).AsInt();
      const int64_t j = item.At(0).At(1).AsInt();
      if (i < 0 || i >= n || j < 0 || j >= m) continue;
      t.Set(i, j, item.At(1).AsDouble());
    }
    return Value::TileVal(std::move(t));
  }
  return ErrAt(e->pos, "unknown builder '" + b + "' with " +
                           std::to_string(nargs) + " arguments");
}

Result<Value> Evaluator::EvalCall(const ExprPtr& e, Env* env) {
  const std::string& fn = e->str_val;
  ValueVec args;
  args.reserve(e->children.size());
  for (const auto& c : e->children) {
    SAC_ASSIGN_OR_RETURN(Value v, EvalExpr(c, env));
    args.push_back(std::move(v));
  }
  auto need = [&](size_t n) -> Status {
    if (args.size() != n) {
      return ErrAt(e->pos, fn + " expects " + std::to_string(n) +
                               " arguments");
    }
    return Status::OK();
  };
  if (fn == "until" || fn == "to") {
    SAC_RETURN_NOT_OK(need(2));
    const int64_t lo = args[0].AsInt();
    int64_t hi = args[1].AsInt();
    if (fn == "to") hi += 1;
    if (hi - lo > kMaxRange) return ErrAt(e->pos, "range too large");
    ValueVec out;
    out.reserve(static_cast<size_t>(std::max<int64_t>(0, hi - lo)));
    for (int64_t i = lo; i < hi; ++i) out.push_back(Value::Int(i));
    return Value::List(std::move(out));
  }
  if (fn == "list") {
    return Value::List(std::move(args));
  }
  if (fn == "length" || fn == "count" || fn == "size") {
    SAC_RETURN_NOT_OK(need(1));
    if (args[0].is_list()) {
      return Value::Int(static_cast<int64_t>(args[0].AsList().size()));
    }
    if (args[0].is_tile()) return Value::Int(args[0].AsTile().size());
    return ErrAt(e->pos, fn + " of non-collection");
  }
  if (fn == "sum") {
    SAC_RETURN_NOT_OK(need(1));
    if (!args[0].is_list()) return ErrAt(e->pos, "sum of non-collection");
    return FoldReduce(ReduceOp::kSum, args[0].AsList(), e->pos);
  }
  if (fn == "random") {
    SAC_RETURN_NOT_OK(need(0));
    return Value::Double(rng_.NextDouble());
  }
  if (fn == "abs") {
    SAC_RETURN_NOT_OK(need(1));
    if (args[0].is_int()) return Value::Int(std::abs(args[0].AsInt()));
    return Value::Double(std::fabs(args[0].AsDouble()));
  }
  if (fn == "sqrt" || fn == "exp" || fn == "log" || fn == "floor" ||
      fn == "ceil") {
    SAC_RETURN_NOT_OK(need(1));
    const double x = args[0].AsDouble();
    if (fn == "sqrt") return Value::Double(std::sqrt(x));
    if (fn == "exp") return Value::Double(std::exp(x));
    if (fn == "log") return Value::Double(std::log(x));
    if (fn == "floor") return Value::Double(std::floor(x));
    return Value::Double(std::ceil(x));
  }
  if (fn == "pow") {
    SAC_RETURN_NOT_OK(need(2));
    return Value::Double(std::pow(args[0].AsDouble(), args[1].AsDouble()));
  }
  if (fn == "min" || fn == "max") {
    SAC_RETURN_NOT_OK(need(2));
    const int c = args[0].Compare(args[1]);
    return (fn == "min") == (c <= 0) ? args[0] : args[1];
  }
  if (fn == "toDouble") {
    SAC_RETURN_NOT_OK(need(1));
    return Value::Double(args[0].AsDouble());
  }
  if (fn == "toInt") {
    SAC_RETURN_NOT_OK(need(1));
    return Value::Int(static_cast<int64_t>(args[0].AsDouble()));
  }
  return ErrAt(e->pos, "unknown function '" + fn + "'");
}

Result<Value> Evaluator::EvalIndex(const ExprPtr& e, Env* env) {
  SAC_ASSIGN_OR_RETURN(Value arr, EvalExpr(e->children[0], env));
  ValueVec idx;
  for (size_t i = 1; i < e->children.size(); ++i) {
    SAC_ASSIGN_OR_RETURN(Value v, EvalExpr(e->children[i], env));
    idx.push_back(std::move(v));
  }
  if (arr.is_tile()) {
    if (idx.size() != 2) return ErrAt(e->pos, "matrix needs two indices");
    const la::Tile& t = arr.AsTile();
    const int64_t i = idx[0].AsInt(), j = idx[1].AsInt();
    if (i < 0 || i >= t.rows() || j < 0 || j >= t.cols()) {
      return ErrAt(e->pos, "matrix index out of bounds");
    }
    return Value::Double(t.At(i, j));
  }
  if (arr.is_list()) {
    if (idx.size() != 1) return ErrAt(e->pos, "vector needs one index");
    // Association-list lookup on (key, value) pairs.
    const Value& key = idx[0];
    for (const Value& item : arr.AsList()) {
      if (item.is_tuple() && item.TupleSize() == 2 &&
          item.At(0).Equals(key)) {
        return item.At(1);
      }
    }
    return ErrAt(e->pos, "key " + key.ToString() + " not found");
  }
  return ErrAt(e->pos, "indexing non-array " + arr.ToString());
}

}  // namespace sac::comp
