#include "src/comp/lexer.h"

#include <cctype>
#include <cstdlib>

namespace sac::comp {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

Result<std::vector<Token>> Lex(const std::string& src) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1, col = 1;
  auto advance = [&](size_t n = 1) {
    for (size_t k = 0; k < n; ++k) {
      if (i < src.size() && src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto peek = [&](size_t k = 0) -> char {
    return i + k < src.size() ? src[i + k] : '\0';
  };
  // Both emit helpers run right after the token's characters have been
  // consumed, so the current (line, col) is the token's end position.
  auto emit = [&](TokKind kind, Pos pos, std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.pos = pos;
    t.end_pos = Pos{line, col};
    out.push_back(std::move(t));
  };
  auto emit_reduce = [&](ReduceOp op, Pos pos) {
    Token t;
    t.kind = TokKind::kReduce;
    t.reduce_op = op;
    t.pos = pos;
    t.end_pos = Pos{line, col};
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = peek();
    Pos pos{line, col};
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '#') {  // line comment
      while (i < src.size() && peek() != '\n') advance();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      bool is_double = false;
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_double = true;
        advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      }
      if (peek() == 'e' || peek() == 'E') {
        size_t save = i;
        advance();
        if (peek() == '+' || peek() == '-') advance();
        if (std::isdigit(static_cast<unsigned char>(peek()))) {
          is_double = true;
          while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
        } else {
          i = save;  // 'e' belongs to a following identifier
        }
      }
      std::string text = src.substr(start, i - start);
      Token t;
      t.pos = pos;
      t.end_pos = Pos{line, col};
      t.text = text;
      if (is_double) {
        t.kind = TokKind::kDouble;
        t.double_val = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = TokKind::kInt;
        t.int_val = std::strtoll(text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (IsIdentChar(peek())) advance();
      std::string text = src.substr(start, i - start);
      // Named reductions `min/ max/ avg/ count/` (no space before '/').
      if (peek() == '/') {
        ReduceOp op;
        bool is_reduce = true;
        if (text == "min") {
          op = ReduceOp::kMin;
        } else if (text == "max") {
          op = ReduceOp::kMax;
        } else if (text == "avg") {
          op = ReduceOp::kAvg;
        } else if (text == "count") {
          op = ReduceOp::kCount;
        } else {
          is_reduce = false;
          op = ReduceOp::kSum;
        }
        if (is_reduce) {
          advance();  // '/'
          emit_reduce(op, pos);
          continue;
        }
      }
      emit(TokKind::kIdent, pos, std::move(text));
      continue;
    }
    if (c == '"') {
      advance();
      std::string text;
      while (i < src.size() && peek() != '"') {
        text += peek();
        advance();
      }
      if (i >= src.size()) {
        return Status::ParseError("unterminated string at " + pos.ToString());
      }
      advance();  // closing quote
      emit(TokKind::kString, pos, std::move(text));
      continue;
    }
    switch (c) {
      case '(':
        advance();
        emit(TokKind::kLParen, pos);
        continue;
      case ')':
        advance();
        emit(TokKind::kRParen, pos);
        continue;
      case '[':
        advance();
        emit(TokKind::kLBracket, pos);
        continue;
      case ']':
        advance();
        emit(TokKind::kRBracket, pos);
        continue;
      case ',':
        advance();
        emit(TokKind::kComma, pos);
        continue;
      case ':':
        advance();
        emit(TokKind::kColon, pos);
        continue;
      case ';':
        advance();
        emit(TokKind::kSemi, pos);
        continue;
      case '{':
        advance();
        emit(TokKind::kLBrace, pos);
        continue;
      case '}':
        advance();
        emit(TokKind::kRBrace, pos);
        continue;
      case '.':
        advance();
        emit(TokKind::kDot, pos);
        continue;
      case '+':
        if (peek(1) == '+' && peek(2) == '/') {
          advance(3);
          emit_reduce(ReduceOp::kConcat, pos);
        } else if (peek(1) == '/') {
          advance(2);
          emit_reduce(ReduceOp::kSum, pos);
        } else {
          advance();
          emit(TokKind::kPlus, pos);
        }
        continue;
      case '-':
        advance();
        emit(TokKind::kMinus, pos);
        continue;
      case '*':
        if (peek(1) == '/') {
          advance(2);
          emit_reduce(ReduceOp::kProd, pos);
        } else {
          advance();
          emit(TokKind::kStar, pos);
        }
        continue;
      case '/':
        advance();
        emit(TokKind::kSlash, pos);
        continue;
      case '%':
        advance();
        emit(TokKind::kPercent, pos);
        continue;
      case '=':
        if (peek(1) == '=') {
          advance(2);
          emit(TokKind::kEqEq, pos);
        } else {
          advance();
          emit(TokKind::kEq, pos);
        }
        continue;
      case '!':
        if (peek(1) == '=') {
          advance(2);
          emit(TokKind::kNe, pos);
        } else {
          advance();
          emit(TokKind::kNot, pos);
        }
        continue;
      case '<':
        if (peek(1) == '-') {
          advance(2);
          emit(TokKind::kArrow, pos);
        } else if (peek(1) == '=') {
          advance(2);
          emit(TokKind::kLe, pos);
        } else {
          advance();
          emit(TokKind::kLt, pos);
        }
        continue;
      case '>':
        if (peek(1) == '=') {
          advance(2);
          emit(TokKind::kGe, pos);
        } else {
          advance();
          emit(TokKind::kGt, pos);
        }
        continue;
      case '&':
        if (peek(1) == '&' && peek(2) == '/') {
          advance(3);
          emit_reduce(ReduceOp::kAnd, pos);
        } else if (peek(1) == '&') {
          advance(2);
          emit(TokKind::kAndAnd, pos);
        } else {
          return Status::ParseError("stray '&' at " + pos.ToString());
        }
        continue;
      case '|':
        if (peek(1) == '|' && peek(2) == '/') {
          advance(3);
          emit_reduce(ReduceOp::kOr, pos);
        } else if (peek(1) == '|') {
          advance(2);
          emit(TokKind::kOrOr, pos);
        } else {
          advance();
          emit(TokKind::kBar, pos);
        }
        continue;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at " + pos.ToString());
    }
  }
  Token eof;
  eof.kind = TokKind::kEof;
  eof.pos = Pos{line, col};
  eof.end_pos = eof.pos;
  out.push_back(eof);
  return out;
}

}  // namespace sac::comp
