// Tokenizer for the comprehension language (Figure 2 syntax plus the
// extensions listed in ast.h). `#` starts a line comment.
#ifndef SAC_COMP_LEXER_H_
#define SAC_COMP_LEXER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/comp/ast.h"

namespace sac::comp {

enum class TokKind {
  kEof,
  kInt,        // 123
  kDouble,     // 1.5, 2e-3
  kString,     // "..."
  kIdent,      // names and keywords (keyword() distinguishes)
  kLParen, kRParen, kLBracket, kRBracket,
  kComma, kBar, kArrow,        // , | <-
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEq, kEqEq, kNe, kLt, kLe, kGt, kGe,
  kAndAnd, kOrOr, kNot,
  kReduceSlash,  // the '/' of a reduction like `+/`; emitted as part of
                 // kReduce below -- see Token::reduce_op
  kReduce,       // +/ */ &&/ ||/ ++/ min/ max/ avg/ count/ (op in reduce_op)
  kColon, kDot, kSemi, kLBrace, kRBrace,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;       // identifier / literal text
  int64_t int_val = 0;
  double double_val = 0.0;
  ReduceOp reduce_op = ReduceOp::kSum;
  Pos pos;      // first character of the token
  Pos end_pos;  // one past the last character (same line for all tokens)

  bool IsIdent(const char* s) const {
    return kind == TokKind::kIdent && text == s;
  }
};

/// Tokenizes `src`; returns ParseError with position on bad input.
Result<std::vector<Token>> Lex(const std::string& src);

}  // namespace sac::comp

#endif  // SAC_COMP_LEXER_H_
