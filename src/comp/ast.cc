#include "src/comp/ast.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/common/logging.h"

namespace sac::comp {

// ---------------------------------------------------------------------------
// Pattern
// ---------------------------------------------------------------------------

PatternPtr Pattern::Var(std::string name, Pos pos) {
  auto p = std::make_shared<Pattern>();
  p->kind = Kind::kVar;
  p->var = std::move(name);
  p->pos = pos;
  p->span = Span{pos, pos};
  return p;
}

PatternPtr Pattern::Wildcard(Pos pos) {
  auto p = std::make_shared<Pattern>();
  p->kind = Kind::kWildcard;
  p->pos = pos;
  p->span = Span{pos, pos};
  return p;
}

PatternPtr Pattern::Tuple(std::vector<PatternPtr> elems, Pos pos) {
  auto p = std::make_shared<Pattern>();
  p->kind = Kind::kTuple;
  p->elems = std::move(elems);
  p->pos = pos;
  p->span = Span{pos, pos};
  return p;
}

void Pattern::CollectVars(std::vector<std::string>* out) const {
  switch (kind) {
    case Kind::kVar:
      out->push_back(var);
      break;
    case Kind::kWildcard:
      break;
    case Kind::kTuple:
      for (const auto& e : elems) e->CollectVars(out);
      break;
  }
}

std::vector<std::string> Pattern::Vars() const {
  std::vector<std::string> out;
  CollectVars(&out);
  return out;
}

bool Pattern::BindsVar(const std::string& name) const {
  switch (kind) {
    case Kind::kVar:
      return var == name;
    case Kind::kWildcard:
      return false;
    case Kind::kTuple:
      return std::any_of(elems.begin(), elems.end(),
                         [&](const PatternPtr& e) { return e->BindsVar(name); });
  }
  return false;
}

std::string Pattern::ToString() const {
  switch (kind) {
    case Kind::kVar:
      return var;
    case Kind::kWildcard:
      return "_";
    case Kind::kTuple: {
      std::string s = "(";
      for (size_t i = 0; i < elems.size(); ++i) {
        if (i) s += ",";
        s += elems[i]->ToString();
      }
      return s + ")";
    }
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Expr factories
// ---------------------------------------------------------------------------

namespace {
std::shared_ptr<Expr> New(Expr::Kind k, Pos pos) {
  auto e = std::make_shared<Expr>();
  e->kind = k;
  e->pos = pos;
  e->span = Span{pos, pos};
  return e;
}
}  // namespace

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
  }
  return "?";
}

const char* ReduceOpName(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "+";
    case ReduceOp::kProd: return "*";
    case ReduceOp::kMin: return "min";
    case ReduceOp::kMax: return "max";
    case ReduceOp::kAnd: return "&&";
    case ReduceOp::kOr: return "||";
    case ReduceOp::kConcat: return "++";
    case ReduceOp::kCount: return "count";
    case ReduceOp::kAvg: return "avg";
  }
  return "?";
}

ExprPtr Expr::Int(int64_t v, Pos pos) {
  auto e = New(Kind::kIntLit, pos);
  e->int_val = v;
  return e;
}
ExprPtr Expr::Double(double v, Pos pos) {
  auto e = New(Kind::kDoubleLit, pos);
  e->double_val = v;
  return e;
}
ExprPtr Expr::Bool(bool v, Pos pos) {
  auto e = New(Kind::kBoolLit, pos);
  e->bool_val = v;
  return e;
}
ExprPtr Expr::Str(std::string v, Pos pos) {
  auto e = New(Kind::kStringLit, pos);
  e->str_val = std::move(v);
  return e;
}
ExprPtr Expr::Var(std::string name, Pos pos) {
  auto e = New(Kind::kVar, pos);
  e->str_val = std::move(name);
  return e;
}
ExprPtr Expr::Tuple(std::vector<ExprPtr> elems, Pos pos) {
  auto e = New(Kind::kTuple, pos);
  e->children = std::move(elems);
  return e;
}
ExprPtr Expr::Binary(BinOp op, ExprPtr l, ExprPtr r, Pos pos) {
  auto e = New(Kind::kBinary, pos);
  e->bin_op = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}
ExprPtr Expr::Unary(UnOp op, ExprPtr operand, Pos pos) {
  auto e = New(Kind::kUnary, pos);
  e->un_op = op;
  e->children = {std::move(operand)};
  return e;
}
ExprPtr Expr::Call(std::string fn, std::vector<ExprPtr> args, Pos pos) {
  auto e = New(Kind::kCall, pos);
  e->str_val = std::move(fn);
  e->children = std::move(args);
  return e;
}
ExprPtr Expr::Index(ExprPtr array, std::vector<ExprPtr> indices, Pos pos) {
  auto e = New(Kind::kIndex, pos);
  e->children.push_back(std::move(array));
  for (auto& i : indices) e->children.push_back(std::move(i));
  return e;
}
ExprPtr Expr::Reduce(ReduceOp op, ExprPtr operand, Pos pos) {
  auto e = New(Kind::kReduce, pos);
  e->reduce_op = op;
  e->children = {std::move(operand)};
  return e;
}
ExprPtr Expr::Comprehension(ExprPtr head, std::vector<Qualifier> quals,
                            Pos pos) {
  auto e = New(Kind::kComprehension, pos);
  e->children = {std::move(head)};
  e->quals = std::move(quals);
  return e;
}
ExprPtr Expr::Build(std::string builder, ExprPtr comp,
                    std::vector<ExprPtr> args, Pos pos) {
  auto e = New(Kind::kBuild, pos);
  e->str_val = std::move(builder);
  e->children.push_back(std::move(comp));
  for (auto& a : args) e->children.push_back(std::move(a));
  return e;
}
ExprPtr Expr::If(ExprPtr cond, ExprPtr then_e, ExprPtr else_e, Pos pos) {
  auto e = New(Kind::kIf, pos);
  e->children = {std::move(cond), std::move(then_e), std::move(else_e)};
  return e;
}

// ---------------------------------------------------------------------------
// Qualifier
// ---------------------------------------------------------------------------

Qualifier Qualifier::Generator(PatternPtr p, ExprPtr e, Pos pos) {
  return Qualifier{Kind::kGenerator, std::move(p), std::move(e), pos,
                   Span{pos, pos}};
}
Qualifier Qualifier::Let(PatternPtr p, ExprPtr e, Pos pos) {
  return Qualifier{Kind::kLet, std::move(p), std::move(e), pos,
                   Span{pos, pos}};
}
Qualifier Qualifier::Guard(ExprPtr e, Pos pos) {
  return Qualifier{Kind::kGuard, nullptr, std::move(e), pos, Span{pos, pos}};
}
Qualifier Qualifier::GroupBy(PatternPtr p, ExprPtr e, Pos pos) {
  return Qualifier{Kind::kGroupBy, std::move(p), std::move(e), pos,
                   Span{pos, pos}};
}

std::string Qualifier::ToString() const {
  switch (kind) {
    case Kind::kGenerator:
      return pattern->ToString() + " <- " + expr->ToString();
    case Kind::kLet:
      return "let " + pattern->ToString() + " = " + expr->ToString();
    case Kind::kGuard:
      return expr->ToString();
    case Kind::kGroupBy:
      if (expr) {
        return "group by " + pattern->ToString() + " : " + expr->ToString();
      }
      return "group by " + pattern->ToString();
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Printing and equality
// ---------------------------------------------------------------------------

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kIntLit:
      os << int_val;
      break;
    case Kind::kDoubleLit:
      os << double_val;
      if (double_val == static_cast<int64_t>(double_val)) os << ".0";
      break;
    case Kind::kBoolLit:
      os << (bool_val ? "true" : "false");
      break;
    case Kind::kStringLit:
      os << '"' << str_val << '"';
      break;
    case Kind::kVar:
      os << str_val;
      break;
    case Kind::kTuple:
      os << "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) os << ",";
        os << children[i]->ToString();
      }
      os << ")";
      break;
    case Kind::kBinary:
      os << "(" << children[0]->ToString() << " " << BinOpName(bin_op) << " "
         << children[1]->ToString() << ")";
      break;
    case Kind::kUnary:
      os << (un_op == UnOp::kNeg ? "-" : "!") << children[0]->ToString();
      break;
    case Kind::kCall:
      os << str_val << "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) os << ",";
        os << children[i]->ToString();
      }
      os << ")";
      break;
    case Kind::kIndex:
      os << children[0]->ToString() << "[";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) os << ",";
        os << children[i]->ToString();
      }
      os << "]";
      break;
    case Kind::kReduce:
      os << ReduceOpName(reduce_op) << "/" << children[0]->ToString();
      break;
    case Kind::kComprehension: {
      os << "[ " << children[0]->ToString() << " | ";
      for (size_t i = 0; i < quals.size(); ++i) {
        if (i) os << ", ";
        os << quals[i].ToString();
      }
      os << " ]";
      break;
    }
    case Kind::kBuild: {
      os << str_val;
      if (children.size() > 1) {
        os << "(";
        for (size_t i = 1; i < children.size(); ++i) {
          if (i > 1) os << ",";
          os << children[i]->ToString();
        }
        os << ")";
      }
      os << children[0]->ToString();
      break;
    }
    case Kind::kIf:
      os << "if (" << children[0]->ToString() << ") "
         << children[1]->ToString() << " else " << children[2]->ToString();
      break;
  }
  return os.str();
}

bool Qualifier::Equals(const Qualifier& other) const {
  if (kind != other.kind) return false;
  if ((pattern == nullptr) != (other.pattern == nullptr)) return false;
  if (pattern && pattern->ToString() != other.pattern->ToString()) return false;
  if ((expr == nullptr) != (other.expr == nullptr)) return false;
  if (expr && !expr->Equals(*other.expr)) return false;
  return true;
}

bool Expr::Equals(const Expr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kIntLit:
      if (int_val != other.int_val) return false;
      break;
    case Kind::kDoubleLit:
      if (double_val != other.double_val) return false;
      break;
    case Kind::kBoolLit:
      if (bool_val != other.bool_val) return false;
      break;
    case Kind::kStringLit:
    case Kind::kVar:
    case Kind::kCall:
    case Kind::kBuild:
      if (str_val != other.str_val) return false;
      break;
    case Kind::kBinary:
      if (bin_op != other.bin_op) return false;
      break;
    case Kind::kUnary:
      if (un_op != other.un_op) return false;
      break;
    case Kind::kReduce:
      if (reduce_op != other.reduce_op) return false;
      break;
    default:
      break;
  }
  if (children.size() != other.children.size()) return false;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  if (quals.size() != other.quals.size()) return false;
  for (size_t i = 0; i < quals.size(); ++i) {
    if (!quals[i].Equals(other.quals[i])) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Free variables
// ---------------------------------------------------------------------------

namespace {

void CollectFree(const ExprPtr& e, std::set<std::string>* bound,
                 std::vector<std::string>* out) {
  switch (e->kind) {
    case Expr::Kind::kVar:
      if (!bound->count(e->str_val)) out->push_back(e->str_val);
      return;
    case Expr::Kind::kComprehension: {
      // Qualifiers bind scoped variables left-to-right.
      std::set<std::string> local = *bound;
      for (const Qualifier& q : e->quals) {
        switch (q.kind) {
          case Qualifier::Kind::kGenerator:
          case Qualifier::Kind::kLet:
            CollectFree(q.expr, &local, out);
            for (const auto& v : q.pattern->Vars()) local.insert(v);
            break;
          case Qualifier::Kind::kGuard:
            CollectFree(q.expr, &local, out);
            break;
          case Qualifier::Kind::kGroupBy:
            if (q.expr) CollectFree(q.expr, &local, out);
            for (const auto& v : q.pattern->Vars()) local.insert(v);
            break;
        }
      }
      CollectFree(e->children[0], &local, out);
      return;
    }
    case Expr::Kind::kBuild: {
      for (size_t i = 1; i < e->children.size(); ++i) {
        CollectFree(e->children[i], bound, out);
      }
      CollectFree(e->children[0], bound, out);
      return;
    }
    default:
      for (const auto& c : e->children) CollectFree(c, bound, out);
      return;
  }
}

}  // namespace

std::vector<std::string> FreeVars(const ExprPtr& e) {
  std::set<std::string> bound;
  std::vector<std::string> raw;
  CollectFree(e, &bound, &raw);
  // Dedup, keep first-occurrence order.
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (auto& v : raw) {
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

bool UsesVar(const ExprPtr& e, const std::string& name) {
  auto fv = FreeVars(e);
  return std::find(fv.begin(), fv.end(), name) != fv.end();
}

// ---------------------------------------------------------------------------
// Substitution
// ---------------------------------------------------------------------------

ExprPtr SubstituteVar(const ExprPtr& e, const std::string& name,
                      const ExprPtr& replacement) {
  switch (e->kind) {
    case Expr::Kind::kVar:
      return e->str_val == name ? replacement : e;
    case Expr::Kind::kComprehension: {
      bool shadowed = false;
      std::vector<Qualifier> quals;
      quals.reserve(e->quals.size());
      for (const Qualifier& q : e->quals) {
        Qualifier nq = q;
        if (!shadowed && q.expr) {
          nq.expr = SubstituteVar(q.expr, name, replacement);
        }
        quals.push_back(std::move(nq));
        if (q.pattern && q.pattern->BindsVar(name)) shadowed = true;
      }
      ExprPtr head = shadowed
                         ? e->children[0]
                         : SubstituteVar(e->children[0], name, replacement);
      return Expr::Comprehension(head, std::move(quals), e->pos);
    }
    default: {
      if (e->children.empty()) return e;
      auto copy = std::make_shared<Expr>(*e);
      for (auto& c : copy->children) {
        c = SubstituteVar(c, name, replacement);
      }
      return copy;
    }
  }
}

// ---------------------------------------------------------------------------
// Alpha renaming
// ---------------------------------------------------------------------------

namespace {

PatternPtr RenamePattern(const PatternPtr& p,
                         std::unordered_map<std::string, std::string>* map,
                         int* counter) {
  switch (p->kind) {
    case Pattern::Kind::kWildcard:
      return p;
    case Pattern::Kind::kVar: {
      std::string fresh = p->var + "$" + std::to_string((*counter)++);
      (*map)[p->var] = fresh;
      return Pattern::Var(fresh, p->pos);
    }
    case Pattern::Kind::kTuple: {
      std::vector<PatternPtr> elems;
      elems.reserve(p->elems.size());
      for (const auto& e : p->elems) {
        elems.push_back(RenamePattern(e, map, counter));
      }
      return Pattern::Tuple(std::move(elems), p->pos);
    }
  }
  return p;
}

ExprPtr Rename(const ExprPtr& e,
               const std::unordered_map<std::string, std::string>& map,
               int* counter) {
  switch (e->kind) {
    case Expr::Kind::kVar: {
      auto it = map.find(e->str_val);
      return it == map.end() ? e : Expr::Var(it->second, e->pos);
    }
    case Expr::Kind::kComprehension: {
      std::unordered_map<std::string, std::string> local = map;
      std::vector<Qualifier> quals;
      quals.reserve(e->quals.size());
      for (const Qualifier& q : e->quals) {
        Qualifier nq = q;
        if (q.expr) nq.expr = Rename(q.expr, local, counter);
        if (q.pattern && q.kind != Qualifier::Kind::kGroupBy) {
          nq.pattern = RenamePattern(q.pattern, &local, counter);
        } else if (q.pattern) {
          // Group-by patterns re-bind existing names; rename consistently.
          nq.pattern = RenamePattern(q.pattern, &local, counter);
        }
        quals.push_back(std::move(nq));
      }
      return Expr::Comprehension(Rename(e->children[0], local, counter),
                                 std::move(quals), e->pos);
    }
    default: {
      if (e->children.empty()) return e;
      auto copy = std::make_shared<Expr>(*e);
      for (auto& c : copy->children) c = Rename(c, map, counter);
      return copy;
    }
  }
}

}  // namespace

ExprPtr FreshenBoundVars(const ExprPtr& e, int* counter) {
  return Rename(e, {}, counter);
}

}  // namespace sac::comp
