#include "src/comp/parser.h"

#include <vector>

#include "src/comp/lexer.h"
#include "src/comp/loops.h"

namespace sac::comp {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<ExprPtr> ParseAll() {
    SAC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!At(TokKind::kEof)) {
      return Error("trailing input after expression");
    }
    return e;
  }

  Result<PatternPtr> ParsePatternAll() {
    SAC_ASSIGN_OR_RETURN(PatternPtr p, ParsePat());
    if (!At(TokKind::kEof)) return Error("trailing input after pattern");
    return p;
  }

  // ---- loop statements (the DIABLO front end) ------------------------------

  Result<LoopStmtPtr> ParseLoopProgramAll() {
    auto seq = std::make_shared<LoopStmt>();
    seq->kind = LoopStmt::Kind::kSeq;
    seq->pos = Cur().pos;
    while (!At(TokKind::kEof)) {
      SAC_ASSIGN_OR_RETURN(LoopStmtPtr s, ParseStmt());
      seq->stmts.push_back(std::move(s));
    }
    if (seq->stmts.empty()) return Error("empty loop program");
    return LoopStmtPtr(seq);
  }

  Result<LoopStmtPtr> ParseStmt() {
    const Pos pos = Cur().pos;
    if (AtIdent("for")) {
      Advance();
      if (!At(TokKind::kIdent)) return Error("expected loop variable");
      auto stmt = std::make_shared<LoopStmt>();
      stmt->kind = LoopStmt::Kind::kFor;
      stmt->pos = pos;
      stmt->var = Cur().text;
      Advance();
      SAC_RETURN_NOT_OK(Expect(TokKind::kEq, "'=' in for"));
      SAC_ASSIGN_OR_RETURN(stmt->lo, ParseExpr());
      SAC_RETURN_NOT_OK(Expect(TokKind::kComma, "',' in for bounds"));
      SAC_ASSIGN_OR_RETURN(stmt->hi, ParseExpr());
      if (!AtIdent("do")) return Error("expected 'do'");
      Advance();
      SAC_ASSIGN_OR_RETURN(stmt->body, ParseStmt());
      return LoopStmtPtr(stmt);
    }
    if (Eat(TokKind::kLBrace)) {
      auto seq = std::make_shared<LoopStmt>();
      seq->kind = LoopStmt::Kind::kSeq;
      seq->pos = pos;
      while (!At(TokKind::kRBrace)) {
        if (At(TokKind::kEof)) return Error("unterminated block");
        SAC_ASSIGN_OR_RETURN(LoopStmtPtr s, ParseStmt());
        seq->stmts.push_back(std::move(s));
      }
      Advance();  // '}'
      return LoopStmtPtr(seq);
    }
    // Assignment: V[indices] := rhs ;  or  V[indices] += rhs ;
    if (!At(TokKind::kIdent)) return Error("expected statement");
    auto stmt = std::make_shared<LoopStmt>();
    stmt->pos = pos;
    stmt->target = Cur().text;
    Advance();
    SAC_RETURN_NOT_OK(Expect(TokKind::kLBracket, "'[' in assignment"));
    for (;;) {
      SAC_ASSIGN_OR_RETURN(ExprPtr idx, ParseExpr());
      stmt->indices.push_back(std::move(idx));
      if (!Eat(TokKind::kComma)) break;
    }
    SAC_RETURN_NOT_OK(Expect(TokKind::kRBracket, "']' in assignment"));
    if (Eat(TokKind::kColon)) {
      SAC_RETURN_NOT_OK(Expect(TokKind::kEq, "'=' after ':'"));
      stmt->kind = LoopStmt::Kind::kAssign;
    } else if (Eat(TokKind::kPlus)) {
      SAC_RETURN_NOT_OK(Expect(TokKind::kEq, "'=' after '+'"));
      stmt->kind = LoopStmt::Kind::kUpdate;
    } else {
      return Error("expected ':=' or '+='");
    }
    SAC_ASSIGN_OR_RETURN(stmt->rhs, ParseExpr());
    SAC_RETURN_NOT_OK(Expect(TokKind::kSemi, "';' after assignment"));
    return LoopStmtPtr(stmt);
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  bool At(TokKind k) const { return Cur().kind == k; }
  bool AtIdent(const char* s) const { return Cur().IsIdent(s); }
  void Advance() {
    last_end_ = Cur().end_pos;
    if (pos_ + 1 < toks_.size()) ++pos_;
  }

  // ---- span bookkeeping ----------------------------------------------------
  // Factories stamp span = {pos, pos}; the parser widens it to the full
  // source range [begin, end-of-last-consumed-token) after each node is
  // assembled. Nodes are shared immutably, so widening copies the node
  // (shallow -- children stay shared), which is cheap at parse time.
  static Pos BeginOf(const ExprPtr& e) {
    return e->span.IsSet() ? e->span.begin : e->pos;
  }
  ExprPtr Spanned(ExprPtr e, Pos begin) const {
    auto c = std::make_shared<Expr>(*e);
    c->span = Span{begin, last_end_};
    return c;
  }
  PatternPtr Spanned(PatternPtr p, Pos begin) const {
    auto c = std::make_shared<Pattern>(*p);
    c->span = Span{begin, last_end_};
    return c;
  }
  bool Eat(TokKind k) {
    if (At(k)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at " + Cur().pos.ToString());
  }
  Status Expect(TokKind k, const char* what) {
    if (!Eat(k)) return Error(std::string("expected ") + what);
    return Status::OK();
  }

  // ---- patterns -----------------------------------------------------------
  Result<PatternPtr> ParsePat() {
    const Pos pos = Cur().pos;
    if (At(TokKind::kIdent)) {
      std::string name = Cur().text;
      Advance();
      if (name == "_") return Spanned(Pattern::Wildcard(pos), pos);
      return Spanned(Pattern::Var(std::move(name), pos), pos);
    }
    if (Eat(TokKind::kLParen)) {
      std::vector<PatternPtr> elems;
      if (!At(TokKind::kRParen)) {
        for (;;) {
          SAC_ASSIGN_OR_RETURN(PatternPtr p, ParsePat());
          elems.push_back(std::move(p));
          if (!Eat(TokKind::kComma)) break;
        }
      }
      SAC_RETURN_NOT_OK(Expect(TokKind::kRParen, "')' in pattern"));
      if (elems.size() == 1) return Spanned(elems[0], pos);
      return Spanned(Pattern::Tuple(std::move(elems), pos), pos);
    }
    return Error("expected pattern");
  }

  // ---- expressions ---------------------------------------------------------
  Result<ExprPtr> ParseExpr() {
    if (AtIdent("if")) {
      const Pos pos = Cur().pos;
      Advance();
      SAC_RETURN_NOT_OK(Expect(TokKind::kLParen, "'(' after if"));
      SAC_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      SAC_RETURN_NOT_OK(Expect(TokKind::kRParen, "')' after condition"));
      SAC_ASSIGN_OR_RETURN(ExprPtr then_e, ParseExpr());
      if (!AtIdent("else")) return Error("expected 'else'");
      Advance();
      SAC_ASSIGN_OR_RETURN(ExprPtr else_e, ParseExpr());
      return Spanned(Expr::If(std::move(cond), std::move(then_e),
                              std::move(else_e), pos),
                     pos);
    }
    return ParseOr();
  }

  Result<ExprPtr> ParseOr() {
    SAC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (At(TokKind::kOrOr)) {
      const Pos pos = Cur().pos;
      Advance();
      const Pos begin = BeginOf(lhs);
      SAC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Spanned(
          Expr::Binary(BinOp::kOr, std::move(lhs), std::move(rhs), pos),
          begin);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    SAC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseCmp());
    while (At(TokKind::kAndAnd)) {
      const Pos pos = Cur().pos;
      Advance();
      const Pos begin = BeginOf(lhs);
      SAC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseCmp());
      lhs = Spanned(
          Expr::Binary(BinOp::kAnd, std::move(lhs), std::move(rhs), pos),
          begin);
    }
    return lhs;
  }

  Result<ExprPtr> ParseCmp() {
    SAC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRange());
    BinOp op;
    switch (Cur().kind) {
      case TokKind::kEqEq: op = BinOp::kEq; break;
      case TokKind::kNe: op = BinOp::kNe; break;
      case TokKind::kLt: op = BinOp::kLt; break;
      case TokKind::kLe: op = BinOp::kLe; break;
      case TokKind::kGt: op = BinOp::kGt; break;
      case TokKind::kGe: op = BinOp::kGe; break;
      default:
        return lhs;
    }
    const Pos pos = Cur().pos;
    const Pos begin = BeginOf(lhs);
    Advance();
    SAC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRange());
    return Spanned(Expr::Binary(op, std::move(lhs), std::move(rhs), pos),
                   begin);
  }

  Result<ExprPtr> ParseRange() {
    SAC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdd());
    if (AtIdent("until") || AtIdent("to")) {
      const std::string fn = Cur().text;
      const Pos pos = Cur().pos;
      const Pos begin = BeginOf(lhs);
      Advance();
      SAC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdd());
      return Spanned(Expr::Call(fn, {std::move(lhs), std::move(rhs)}, pos),
                     begin);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdd() {
    SAC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMul());
    for (;;) {
      BinOp op;
      if (At(TokKind::kPlus)) {
        op = BinOp::kAdd;
      } else if (At(TokKind::kMinus)) {
        op = BinOp::kSub;
      } else {
        return lhs;
      }
      const Pos pos = Cur().pos;
      const Pos begin = BeginOf(lhs);
      Advance();
      SAC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMul());
      lhs = Spanned(Expr::Binary(op, std::move(lhs), std::move(rhs), pos),
                    begin);
    }
  }

  Result<ExprPtr> ParseMul() {
    SAC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      BinOp op;
      if (At(TokKind::kStar)) {
        op = BinOp::kMul;
      } else if (At(TokKind::kSlash)) {
        op = BinOp::kDiv;
      } else if (At(TokKind::kPercent)) {
        op = BinOp::kMod;
      } else {
        return lhs;
      }
      const Pos pos = Cur().pos;
      const Pos begin = BeginOf(lhs);
      Advance();
      SAC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Spanned(Expr::Binary(op, std::move(lhs), std::move(rhs), pos),
                    begin);
    }
  }

  Result<ExprPtr> ParseUnary() {
    const Pos pos = Cur().pos;
    if (Eat(TokKind::kMinus)) {
      SAC_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Spanned(Expr::Unary(UnOp::kNeg, std::move(e), pos), pos);
    }
    if (Eat(TokKind::kNot)) {
      SAC_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Spanned(Expr::Unary(UnOp::kNot, std::move(e), pos), pos);
    }
    if (At(TokKind::kReduce)) {
      const ReduceOp op = Cur().reduce_op;
      Advance();
      SAC_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Spanned(Expr::Reduce(op, std::move(e), pos), pos);
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    SAC_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
    for (;;) {
      const Pos pos = Cur().pos;
      const Pos begin = BeginOf(e);
      if (At(TokKind::kLBracket)) {
        Advance();
        SAC_ASSIGN_OR_RETURN(BracketBody body, ParseBracketBody());
        if (body.is_comprehension) {
          // `name(args)[ e | q ]` / `name[ e | q ]` is a builder.
          if (e->is(Expr::Kind::kVar)) {
            e = Expr::Build(e->str_val, body.comp, {}, pos);
          } else if (e->is(Expr::Kind::kCall)) {
            e = Expr::Build(e->str_val, body.comp, e->children, pos);
          } else {
            return Error("comprehension brackets after non-builder");
          }
        } else {
          e = Expr::Index(std::move(e), std::move(body.elems), pos);
        }
        e = Spanned(std::move(e), begin);
        continue;
      }
      if (At(TokKind::kDot)) {
        Advance();
        if (!At(TokKind::kIdent)) return Error("expected field after '.'");
        std::string field = Cur().text;
        Advance();
        e = Spanned(Expr::Call(std::move(field), {std::move(e)}, pos), begin);
        continue;
      }
      if (At(TokKind::kLParen) && e->is(Expr::Kind::kVar)) {
        Advance();
        std::vector<ExprPtr> args;
        if (!At(TokKind::kRParen)) {
          for (;;) {
            SAC_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
            args.push_back(std::move(a));
            if (!Eat(TokKind::kComma)) break;
          }
        }
        SAC_RETURN_NOT_OK(Expect(TokKind::kRParen, "')' after arguments"));
        e = Spanned(Expr::Call(e->str_val, std::move(args), pos), begin);
        continue;
      }
      return e;
    }
  }

  struct BracketBody {
    bool is_comprehension = false;
    ExprPtr comp;                 // when comprehension
    std::vector<ExprPtr> elems;   // when index list / list literal
  };

  // Parses the inside of `[ ... ]` including the closing bracket. The body
  // is a comprehension iff a '|' follows the first expression.
  Result<BracketBody> ParseBracketBody() {
    BracketBody body;
    const Pos pos = Cur().pos;
    if (Eat(TokKind::kRBracket)) return body;  // empty list
    SAC_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
    if (Eat(TokKind::kBar)) {
      body.is_comprehension = true;
      std::vector<Qualifier> quals;
      if (!At(TokKind::kRBracket)) {
        for (;;) {
          SAC_ASSIGN_OR_RETURN(Qualifier q, ParseQualifier());
          quals.push_back(std::move(q));
          if (!Eat(TokKind::kComma)) break;
        }
      }
      SAC_RETURN_NOT_OK(Expect(TokKind::kRBracket, "']'"));
      body.comp = Spanned(
          Expr::Comprehension(std::move(first), std::move(quals), pos), pos);
      return body;
    }
    body.elems.push_back(std::move(first));
    while (Eat(TokKind::kComma)) {
      SAC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      body.elems.push_back(std::move(e));
    }
    SAC_RETURN_NOT_OK(Expect(TokKind::kRBracket, "']'"));
    return body;
  }

  Result<Qualifier> ParseQualifier() {
    const Pos pos = Cur().pos;
    auto spanned = [&](Qualifier q) {
      q.span = Span{pos, last_end_};
      return q;
    };
    if (AtIdent("let")) {
      Advance();
      SAC_ASSIGN_OR_RETURN(PatternPtr p, ParsePat());
      SAC_RETURN_NOT_OK(Expect(TokKind::kEq, "'=' in let"));
      SAC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      return spanned(Qualifier::Let(std::move(p), std::move(e), pos));
    }
    if (AtIdent("group")) {
      Advance();
      if (!AtIdent("by")) return Error("expected 'by' after 'group'");
      Advance();
      SAC_ASSIGN_OR_RETURN(PatternPtr p, ParsePat());
      ExprPtr key;
      if (Eat(TokKind::kColon)) {
        SAC_ASSIGN_OR_RETURN(key, ParseExpr());
      }
      return spanned(Qualifier::GroupBy(std::move(p), std::move(key), pos));
    }
    // Generator `p <- e` vs guard: try pattern + arrow, else backtrack.
    const size_t save = pos_;
    {
      auto pat = ParsePat();
      if (pat.ok() && At(TokKind::kArrow)) {
        Advance();
        SAC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        return spanned(
            Qualifier::Generator(std::move(pat).value(), std::move(e), pos));
      }
    }
    pos_ = save;
    SAC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    return spanned(Qualifier::Guard(std::move(e), pos));
  }

  Result<ExprPtr> ParsePrimary() {
    const Pos pos = Cur().pos;
    switch (Cur().kind) {
      case TokKind::kInt: {
        const int64_t v = Cur().int_val;
        Advance();
        return Spanned(Expr::Int(v, pos), pos);
      }
      case TokKind::kDouble: {
        const double v = Cur().double_val;
        Advance();
        return Spanned(Expr::Double(v, pos), pos);
      }
      case TokKind::kString: {
        std::string v = Cur().text;
        Advance();
        return Spanned(Expr::Str(std::move(v), pos), pos);
      }
      case TokKind::kIdent: {
        std::string name = Cur().text;
        if (name == "true" || name == "false") {
          Advance();
          return Spanned(Expr::Bool(name == "true", pos), pos);
        }
        Advance();
        return Spanned(Expr::Var(std::move(name), pos), pos);
      }
      case TokKind::kLParen: {
        Advance();
        std::vector<ExprPtr> elems;
        if (!At(TokKind::kRParen)) {
          for (;;) {
            SAC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
            elems.push_back(std::move(e));
            if (!Eat(TokKind::kComma)) break;
          }
        }
        SAC_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
        if (elems.size() == 1) return Spanned(elems[0], pos);
        return Spanned(Expr::Tuple(std::move(elems), pos), pos);
      }
      case TokKind::kLBracket: {
        Advance();
        SAC_ASSIGN_OR_RETURN(BracketBody body, ParseBracketBody());
        if (body.is_comprehension) return Spanned(body.comp, pos);
        return Spanned(Expr::Call("list", std::move(body.elems), pos), pos);
      }
      default:
        return Error("expected expression");
    }
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  Pos last_end_;  // end position of the most recently consumed token
};

}  // namespace

Result<ExprPtr> Parse(const std::string& src) {
  SAC_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(src));
  Parser parser(std::move(toks));
  return parser.ParseAll();
}

Result<PatternPtr> ParsePattern(const std::string& src) {
  SAC_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(src));
  Parser parser(std::move(toks));
  return parser.ParsePatternAll();
}

Result<LoopStmtPtr> ParseLoopProgram(const std::string& src) {
  SAC_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(src));
  Parser parser(std::move(toks));
  return parser.ParseLoopProgramAll();
}

}  // namespace sac::comp
