// Abstract syntax for the array-comprehension language of Figure 2 of the
// paper, extended with the constructs its examples use: array indexing
// `A[i,j]`, reductions `+/e`, builders `matrix(n,m)[...]` / `tiled(n,m)[...]`
// / `vector(n)[...]` / `rdd[...]`, `.length`, ranges `a until b` / `a to b`,
// and `if (c) e1 else e2`.
//
// Nodes are immutable and shared (ExprPtr); rewrites build new trees.
#ifndef SAC_COMP_AST_H_
#define SAC_COMP_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace sac::comp {

/// Source position for error messages (1-based).
struct Pos {
  int line = 0;
  int col = 0;
  std::string ToString() const {
    return std::to_string(line) + ":" + std::to_string(col);
  }
  bool IsSet() const { return line > 0; }
  bool operator==(const Pos& o) const { return line == o.line && col == o.col; }
};

/// Half-open source range [begin, end): `end` points one column past the
/// last character of the construct. Diagnostics carry spans so tools can
/// print `file:line:col` (and underline the range) for any AST node.
struct Span {
  Pos begin;
  Pos end;
  bool IsSet() const { return begin.IsSet(); }
  std::string ToString() const {
    return begin.ToString() + "-" + end.ToString();
  }
  bool operator==(const Span& o) const {
    return begin == o.begin && end == o.end;
  }
};

// ---------------------------------------------------------------------------
// Patterns
// ---------------------------------------------------------------------------

struct Pattern;
using PatternPtr = std::shared_ptr<const Pattern>;

/// A pattern binds variables by destructuring: `((i,j),m)`.
struct Pattern {
  enum class Kind { kVar, kWildcard, kTuple };
  Kind kind = Kind::kWildcard;
  std::string var;                  // kVar
  std::vector<PatternPtr> elems;    // kTuple
  Pos pos;
  Span span;  // full source range (begin == pos; end set by the parser)

  static PatternPtr Var(std::string name, Pos pos = {});
  static PatternPtr Wildcard(Pos pos = {});
  static PatternPtr Tuple(std::vector<PatternPtr> elems, Pos pos = {});

  /// All variable names bound by this pattern, left to right.
  void CollectVars(std::vector<std::string>* out) const;
  std::vector<std::string> Vars() const;
  bool BindsVar(const std::string& name) const;
  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};
const char* BinOpName(BinOp op);

enum class UnOp { kNeg, kNot };

/// Reduction monoids (the `⊕` of `⊕/e`). kConcat is `++` (bag union).
enum class ReduceOp { kSum, kProd, kMin, kMax, kAnd, kOr, kConcat, kCount, kAvg };
const char* ReduceOpName(ReduceOp op);

struct Qualifier;

struct Expr {
  enum class Kind {
    kIntLit,      // int_val
    kDoubleLit,   // double_val
    kBoolLit,     // bool_val
    kStringLit,   // str_val
    kVar,         // str_val = name
    kTuple,       // children
    kBinary,      // bin_op, children = {lhs, rhs}
    kUnary,       // un_op, children = {operand}
    kCall,        // str_val = function name, children = args
    kIndex,       // children = {array, idx...}
    kReduce,      // reduce_op, children = {operand}
    kComprehension,  // children = {head}, quals
    kBuild,       // str_val = builder name, children = {comp, args...}
    kIf,          // children = {cond, then, else}
  };

  Kind kind;
  Pos pos;    // anchor position (operator position for binary nodes)
  Span span;  // full source range of the construct (set by the parser)

  int64_t int_val = 0;
  double double_val = 0.0;
  bool bool_val = false;
  std::string str_val;
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  ReduceOp reduce_op = ReduceOp::kSum;
  std::vector<ExprPtr> children;
  std::vector<Qualifier> quals;  // kComprehension only

  // -- factory functions ----------------------------------------------------
  static ExprPtr Int(int64_t v, Pos pos = {});
  static ExprPtr Double(double v, Pos pos = {});
  static ExprPtr Bool(bool v, Pos pos = {});
  static ExprPtr Str(std::string v, Pos pos = {});
  static ExprPtr Var(std::string name, Pos pos = {});
  static ExprPtr Tuple(std::vector<ExprPtr> elems, Pos pos = {});
  static ExprPtr Binary(BinOp op, ExprPtr l, ExprPtr r, Pos pos = {});
  static ExprPtr Unary(UnOp op, ExprPtr e, Pos pos = {});
  static ExprPtr Call(std::string fn, std::vector<ExprPtr> args, Pos pos = {});
  static ExprPtr Index(ExprPtr array, std::vector<ExprPtr> indices,
                       Pos pos = {});
  static ExprPtr Reduce(ReduceOp op, ExprPtr e, Pos pos = {});
  static ExprPtr Comprehension(ExprPtr head, std::vector<Qualifier> quals,
                               Pos pos = {});
  static ExprPtr Build(std::string builder, ExprPtr comp,
                       std::vector<ExprPtr> args, Pos pos = {});
  static ExprPtr If(ExprPtr cond, ExprPtr then_e, ExprPtr else_e,
                    Pos pos = {});

  // -- convenience accessors -------------------------------------------------
  bool is(Kind k) const { return kind == k; }
  const ExprPtr& head() const { return children[0]; }  // kComprehension/kBuild

  /// Pretty-prints in (parseable) source syntax.
  std::string ToString() const;

  /// Structural equality (ignores positions).
  bool Equals(const Expr& other) const;
};

/// One comprehension qualifier (Figure 2).
struct Qualifier {
  enum class Kind {
    kGenerator,   // p <- e
    kLet,         // let p = e
    kGuard,       // e
    kGroupBy,     // group by p [: e]
  };
  Kind kind;
  PatternPtr pattern;  // generator / let / group-by
  ExprPtr expr;        // generator source / let rhs / guard / group-by key
  Pos pos;
  Span span;  // full source range of the qualifier (set by the parser)

  static Qualifier Generator(PatternPtr p, ExprPtr e, Pos pos = {});
  static Qualifier Let(PatternPtr p, ExprPtr e, Pos pos = {});
  static Qualifier Guard(ExprPtr e, Pos pos = {});
  /// `group by p` (expr == nullptr) or `group by p : e`.
  static Qualifier GroupBy(PatternPtr p, ExprPtr e, Pos pos = {});

  std::string ToString() const;
  bool Equals(const Qualifier& other) const;
};

// ---------------------------------------------------------------------------
// Analysis helpers
// ---------------------------------------------------------------------------

/// Free variables of an expression (variables used but not bound by an
/// enclosing comprehension qualifier inside `e`).
std::vector<std::string> FreeVars(const ExprPtr& e);

/// Does `e` mention variable `name` free?
bool UsesVar(const ExprPtr& e, const std::string& name);

/// Substitute free occurrences of variable `name` with `replacement`.
ExprPtr SubstituteVar(const ExprPtr& e, const std::string& name,
                      const ExprPtr& replacement);

/// Renames every variable bound inside `e`'s comprehensions by appending a
/// unique suffix; used before rule (3) unnesting to avoid capture.
ExprPtr FreshenBoundVars(const ExprPtr& e, int* counter);

}  // namespace sac::comp

#endif  // SAC_COMP_AST_H_
