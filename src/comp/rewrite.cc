#include "src/comp/rewrite.h"

#include <algorithm>
#include <vector>

#include "src/common/logging.h"

namespace sac::comp {

namespace {

/// Applies `fn` to every comprehension node, bottom-up.
ExprPtr MapComprehensions(
    const ExprPtr& e,
    const std::function<ExprPtr(const ExprPtr&)>& fn) {
  std::shared_ptr<Expr> copy = std::make_shared<Expr>(*e);
  for (auto& c : copy->children) c = MapComprehensions(c, fn);
  for (auto& q : copy->quals) {
    if (q.expr) q.expr = MapComprehensions(q.expr, fn);
  }
  ExprPtr out = copy;
  if (out->kind == Expr::Kind::kComprehension) out = fn(out);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// group by p : e   =>   let p = e, group by p
// ---------------------------------------------------------------------------

ExprPtr DesugarGroupByKeys(const ExprPtr& e) {
  return MapComprehensions(e, [](const ExprPtr& comp) -> ExprPtr {
    bool has_sugar = false;
    for (const Qualifier& q : comp->quals) {
      if (q.kind == Qualifier::Kind::kGroupBy && q.expr) has_sugar = true;
    }
    if (!has_sugar) return comp;
    std::vector<Qualifier> quals;
    for (const Qualifier& q : comp->quals) {
      if (q.kind == Qualifier::Kind::kGroupBy && q.expr) {
        quals.push_back(Qualifier::Let(q.pattern, q.expr, q.pos));
        quals.push_back(Qualifier::GroupBy(q.pattern, nullptr, q.pos));
      } else {
        quals.push_back(q);
      }
    }
    return Expr::Comprehension(comp->children[0], std::move(quals),
                               comp->pos);
  });
}

// ---------------------------------------------------------------------------
// Array indexing desugaring (Section 2)
// ---------------------------------------------------------------------------

namespace {

struct IndexingRewriter {
  const IsArrayFn& is_array;
  int* counter;
  // New qualifiers produced by the rewrite of one expression.
  std::vector<Qualifier> pending;

  /// Replaces V[e1..en] (V an array) with a fresh variable k0, recording
  /// the generator ((k1..kn),k0) <- V and guards ki == ei.
  ExprPtr Rewrite(const ExprPtr& e) {
    if (e->kind == Expr::Kind::kIndex &&
        e->children[0]->kind == Expr::Kind::kVar &&
        is_array(e->children[0]->str_val)) {
      std::vector<ExprPtr> idx;
      for (size_t i = 1; i < e->children.size(); ++i) {
        idx.push_back(Rewrite(e->children[i]));
      }
      const std::string k0 = "k$" + std::to_string((*counter)++);
      std::vector<PatternPtr> kpats;
      std::vector<std::string> kvars;
      for (size_t i = 0; i < idx.size(); ++i) {
        std::string ki = "k$" + std::to_string((*counter)++);
        kpats.push_back(Pattern::Var(ki, e->pos));
        kvars.push_back(std::move(ki));
      }
      PatternPtr key_pat = kpats.size() == 1
                               ? kpats[0]
                               : Pattern::Tuple(std::move(kpats), e->pos);
      PatternPtr pat = Pattern::Tuple(
          {std::move(key_pat), Pattern::Var(k0, e->pos)}, e->pos);
      pending.push_back(
          Qualifier::Generator(std::move(pat), e->children[0], e->pos));
      for (size_t i = 0; i < idx.size(); ++i) {
        pending.push_back(Qualifier::Guard(
            Expr::Binary(BinOp::kEq, Expr::Var(kvars[i], e->pos), idx[i],
                         e->pos),
            e->pos));
      }
      return Expr::Var(k0, e->pos);
    }
    // Do not descend into nested comprehensions (they get their own pass).
    if (e->kind == Expr::Kind::kComprehension) return e;
    if (e->children.empty()) return e;
    auto copy = std::make_shared<Expr>(*e);
    for (auto& c : copy->children) c = Rewrite(c);
    return copy;
  }
};

}  // namespace

Result<ExprPtr> DesugarIndexing(const ExprPtr& e, const IsArrayFn& is_array,
                                int* counter) {
  ExprPtr out = MapComprehensions(e, [&](const ExprPtr& comp) -> ExprPtr {
    bool changed = false;
    std::vector<Qualifier> quals;
    for (const Qualifier& q : comp->quals) {
      if (q.kind == Qualifier::Kind::kGuard ||
          q.kind == Qualifier::Kind::kLet) {
        IndexingRewriter rw{is_array, counter, {}};
        ExprPtr ne = rw.Rewrite(q.expr);
        if (!rw.pending.empty()) {
          changed = true;
          // The generator and its guards precede the qualifier that used
          // the indexing, so every referenced variable is already bound.
          for (auto& nq : rw.pending) quals.push_back(std::move(nq));
        }
        Qualifier q2 = q;
        q2.expr = ne;
        quals.push_back(std::move(q2));
      } else {
        quals.push_back(q);
      }
    }
    IndexingRewriter rw{is_array, counter, {}};
    ExprPtr head = rw.Rewrite(comp->children[0]);
    if (!rw.pending.empty()) {
      changed = true;
      for (auto& nq : rw.pending) quals.push_back(std::move(nq));
    }
    if (!changed) return comp;
    return Expr::Comprehension(head, std::move(quals), comp->pos);
  });
  return out;
}

// ---------------------------------------------------------------------------
// Rule (3): flatten nested comprehensions
// ---------------------------------------------------------------------------

ExprPtr FlattenNested(const ExprPtr& e, int* counter) {
  return MapComprehensions(e, [&](const ExprPtr& comp) -> ExprPtr {
    bool changed = false;
    std::vector<Qualifier> quals;
    for (const Qualifier& q : comp->quals) {
      if (q.kind == Qualifier::Kind::kGenerator &&
          q.expr->kind == Expr::Kind::kComprehension) {
        const ExprPtr inner_raw = q.expr;
        bool has_group_by = false;
        for (const Qualifier& iq : inner_raw->quals) {
          if (iq.kind == Qualifier::Kind::kGroupBy) has_group_by = true;
        }
        if (!has_group_by) {
          // Rename to avoid capture, then splice: q1, q3, let p = e2, q2.
          ExprPtr inner = FreshenBoundVars(inner_raw, counter);
          for (const Qualifier& iq : inner->quals) quals.push_back(iq);
          quals.push_back(
              Qualifier::Let(q.pattern, inner->children[0], q.pos));
          changed = true;
          continue;
        }
      }
      quals.push_back(q);
    }
    if (!changed) return comp;
    return Expr::Comprehension(comp->children[0], std::move(quals),
                               comp->pos);
  });
}

// ---------------------------------------------------------------------------
// Index-range merging (Section 2)
// ---------------------------------------------------------------------------

namespace {

bool IsUntilRange(const ExprPtr& e) {
  return e->kind == Expr::Kind::kCall && e->str_val == "until" &&
         e->children.size() == 2;
}

}  // namespace

ExprPtr MergeEqualRanges(const ExprPtr& e) {
  return MapComprehensions(e, [](const ExprPtr& comp) -> ExprPtr {
    // Find: generator `v <- lo until hi` (v a plain variable) and a later
    // guard `v == expr` / `expr == v` where expr does not use v and uses
    // only variables bound before the generator... conservatively, uses
    // only variables not bound by this or later qualifiers. We check the
    // simpler sound condition: expr's free variables are all bound by
    // qualifiers *earlier* than the generator.
    std::vector<std::string> bound_before;
    for (size_t gi = 0; gi < comp->quals.size(); ++gi) {
      const Qualifier& g = comp->quals[gi];
      if (g.kind == Qualifier::Kind::kGenerator ||
          g.kind == Qualifier::Kind::kLet) {
        for (const auto& v : g.pattern->Vars()) bound_before.push_back(v);
      }
      if (g.kind != Qualifier::Kind::kGenerator) continue;
      if (g.pattern->kind != Pattern::Kind::kVar) continue;
      if (!IsUntilRange(g.expr)) continue;
      const std::string& v = g.pattern->var;
      // Scan later qualifiers for a usable equality guard, stopping at a
      // group-by (the guard would then see lifted variables).
      for (size_t qi = gi + 1; qi < comp->quals.size(); ++qi) {
        const Qualifier& q = comp->quals[qi];
        if (q.kind == Qualifier::Kind::kGroupBy) break;
        if (q.kind != Qualifier::Kind::kGuard) continue;
        if (q.expr->kind != Expr::Kind::kBinary ||
            q.expr->bin_op != BinOp::kEq) {
          continue;
        }
        ExprPtr lhs = q.expr->children[0];
        ExprPtr rhs = q.expr->children[1];
        ExprPtr other;
        if (lhs->kind == Expr::Kind::kVar && lhs->str_val == v) {
          other = rhs;
        } else if (rhs->kind == Expr::Kind::kVar && rhs->str_val == v) {
          other = lhs;
        } else {
          continue;
        }
        if (UsesVar(other, v)) continue;
        // `other` must be evaluable where the generator stood: all its
        // free variables bound before the generator.
        bool ok = true;
        std::vector<std::string> bound_at_gen;
        for (size_t k = 0; k < gi; ++k) {
          const Qualifier& b = comp->quals[k];
          if (b.pattern) {
            for (const auto& bv : b.pattern->Vars()) {
              bound_at_gen.push_back(bv);
            }
          }
        }
        for (const auto& fv : FreeVars(other)) {
          // Free names that are not locally bound anywhere are globals --
          // fine. Names bound after the generator are not.
          bool bound_later = false;
          for (size_t k = gi; k < comp->quals.size(); ++k) {
            const Qualifier& b = comp->quals[k];
            if (k != qi && b.pattern && b.pattern->BindsVar(fv)) {
              bound_later = true;
            }
          }
          bool bound_early =
              std::find(bound_at_gen.begin(), bound_at_gen.end(), fv) !=
              bound_at_gen.end();
          if (bound_later && !bound_early) ok = false;
        }
        // When `other` is bound only by a generator *after* the range
        // (e.g. the fresh index variables of desugared array accesses),
        // the let must move to the guard's position instead -- which is
        // sound iff v is not used between the range and the guard.
        bool insert_at_guard = false;
        if (!ok) {
          bool used_between = false;
          for (size_t k = gi + 1; k < qi; ++k) {
            if (comp->quals[k].expr && UsesVar(comp->quals[k].expr, v)) {
              used_between = true;
            }
          }
          if (!used_between) {
            insert_at_guard = true;
            ok = true;
          }
        }
        if (!ok) continue;

        // Rewrite: v <- lo until hi  =>  let v = other, other >= lo,
        // other < hi; drop the guard.
        std::vector<Qualifier> quals;
        const ExprPtr lo = g.expr->children[0];
        const ExprPtr hi = g.expr->children[1];
        auto push_merged = [&]() {
          quals.push_back(Qualifier::Let(g.pattern, other, g.pos));
          quals.push_back(Qualifier::Guard(
              Expr::Binary(BinOp::kGe, other, lo, g.pos), g.pos));
          quals.push_back(Qualifier::Guard(
              Expr::Binary(BinOp::kLt, other, hi, g.pos), g.pos));
        };
        for (size_t k = 0; k < comp->quals.size(); ++k) {
          if (k == gi) {
            if (!insert_at_guard) push_merged();
            continue;  // drop the range generator
          }
          if (k == qi) {
            if (insert_at_guard) push_merged();
            continue;  // drop the equality guard
          }
          quals.push_back(comp->quals[k]);
        }
        // Recurse: more ranges may now be mergeable.
        return MergeEqualRanges(Expr::Comprehension(
            comp->children[0], std::move(quals), comp->pos));
      }
    }
    return comp;
  });
}

// ---------------------------------------------------------------------------
// Copy propagation of variable-to-variable lets
// ---------------------------------------------------------------------------

namespace {

PatternPtr RenameVarInPattern(const PatternPtr& p, const std::string& from,
                              const std::string& to) {
  switch (p->kind) {
    case Pattern::Kind::kWildcard:
      return p;
    case Pattern::Kind::kVar:
      return p->var == from ? Pattern::Var(to, p->pos) : p;
    case Pattern::Kind::kTuple: {
      std::vector<PatternPtr> elems;
      for (const auto& el : p->elems) {
        elems.push_back(RenameVarInPattern(el, from, to));
      }
      return Pattern::Tuple(std::move(elems), p->pos);
    }
  }
  return p;
}

}  // namespace

ExprPtr CopyPropagateLets(const ExprPtr& e) {
  return MapComprehensions(e, [](const ExprPtr& comp) -> ExprPtr {
    for (size_t li = 0; li < comp->quals.size(); ++li) {
      const Qualifier& l = comp->quals[li];
      if (l.kind != Qualifier::Kind::kLet ||
          l.pattern->kind != Pattern::Kind::kVar ||
          l.expr->kind != Expr::Kind::kVar) {
        continue;
      }
      const std::string v = l.pattern->var;
      const std::string w = l.expr->str_val;
      if (v == w) continue;
      // Neither name may be rebound later (keeps the substitution sound
      // without shadowing analysis; desugared names are unique anyway).
      bool rebound = false;
      for (size_t k = li + 1; k < comp->quals.size(); ++k) {
        const Qualifier& q = comp->quals[k];
        if (q.pattern && q.kind != Qualifier::Kind::kGroupBy &&
            (q.pattern->BindsVar(v) || q.pattern->BindsVar(w))) {
          rebound = true;
        }
      }
      if (rebound) continue;
      const ExprPtr wv = Expr::Var(w, l.pos);
      std::vector<Qualifier> quals(comp->quals.begin(),
                                   comp->quals.begin() + li);
      for (size_t k = li + 1; k < comp->quals.size(); ++k) {
        Qualifier q = comp->quals[k];
        if (q.expr) q.expr = SubstituteVar(q.expr, v, wv);
        if (q.kind == Qualifier::Kind::kGroupBy) {
          q.pattern = RenameVarInPattern(q.pattern, v, w);
        }
        quals.push_back(std::move(q));
      }
      ExprPtr head = SubstituteVar(comp->children[0], v, wv);
      // Recurse for further copies.
      return CopyPropagateLets(
          Expr::Comprehension(head, std::move(quals), comp->pos));
    }
    return comp;
  });
}

// ---------------------------------------------------------------------------
// Rule (15): injective group-by elimination
// ---------------------------------------------------------------------------

ExprPtr EliminateInjectiveGroupBy(const ExprPtr& e) {
  return MapComprehensions(e, [](const ExprPtr& comp) -> ExprPtr {
    // Applies when: the group-by is the last qualifier, its key pattern
    // variables are exactly the index variables of the single array
    // generator, and no other generator exists (so array-index uniqueness
    // makes every group a singleton).
    if (comp->quals.empty() ||
        comp->quals.back().kind != Qualifier::Kind::kGroupBy ||
        comp->quals.back().expr != nullptr) {
      return comp;
    }
    const Qualifier& gb = comp->quals.back();
    const Qualifier* gen = nullptr;
    std::vector<std::string> lifted;
    for (size_t i = 0; i + 1 < comp->quals.size(); ++i) {
      const Qualifier& q = comp->quals[i];
      switch (q.kind) {
        case Qualifier::Kind::kGenerator:
          if (gen) return comp;  // more than one generator
          gen = &q;
          break;
        case Qualifier::Kind::kLet:
          break;
        case Qualifier::Kind::kGuard:
          break;
        case Qualifier::Kind::kGroupBy:
          return comp;  // multiple group-bys
      }
      if (q.pattern) {
        for (const auto& v : q.pattern->Vars()) lifted.push_back(v);
      }
    }
    if (!gen) return comp;
    // The generator must draw from a named array (not a range) and bind
    // (index-pattern, value).
    if (gen->expr->kind != Expr::Kind::kVar) return comp;
    if (gen->pattern->kind != Pattern::Kind::kTuple ||
        gen->pattern->elems.size() != 2) {
      return comp;
    }
    std::vector<std::string> index_vars = gen->pattern->elems[0]->Vars();
    if (index_vars.empty()) return comp;
    std::vector<std::string> key_vars = gb.pattern->Vars();
    if (key_vars != index_vars) return comp;

    std::vector<Qualifier> quals(comp->quals.begin(),
                                 comp->quals.end() - 1);
    // Each group is a singleton, so a lifted variable is the singleton bag
    // of its value. The group-by was the last qualifier, so only the head
    // can see lifted variables: substitute x -> list(x) there, which the
    // singleton-reduction simplifier then collapses under ⊕/.
    ExprPtr head = comp->children[0];
    for (const auto& v : lifted) {
      if (std::find(key_vars.begin(), key_vars.end(), v) != key_vars.end()) {
        continue;
      }
      head = SubstituteVar(head, v,
                           Expr::Call("list", {Expr::Var(v, gb.pos)}, gb.pos));
    }
    return Expr::Comprehension(head, std::move(quals), comp->pos);
  });
}

// ---------------------------------------------------------------------------
// ⊕/list(x) simplification
// ---------------------------------------------------------------------------

namespace {

ExprPtr SimplifyReduceNode(const ExprPtr& e) {
  if (e->kind != Expr::Kind::kReduce) return e;
  const ExprPtr& operand = e->children[0];
  if (operand->kind != Expr::Kind::kCall || operand->str_val != "list" ||
      operand->children.size() != 1) {
    return e;
  }
  const ExprPtr& x = operand->children[0];
  switch (e->reduce_op) {
    case ReduceOp::kSum:
    case ReduceOp::kProd:
    case ReduceOp::kMin:
    case ReduceOp::kMax:
    case ReduceOp::kAvg:
      return x;
    case ReduceOp::kCount:
      return Expr::Int(1, e->pos);
    default:
      return e;  // ++/ and boolean monoids keep their list semantics
  }
}

ExprPtr SimplifyAll(const ExprPtr& e) {
  std::shared_ptr<Expr> copy = std::make_shared<Expr>(*e);
  for (auto& c : copy->children) c = SimplifyAll(c);
  for (auto& q : copy->quals) {
    if (q.expr) q.expr = SimplifyAll(q.expr);
  }
  return SimplifyReduceNode(copy);
}

}  // namespace

ExprPtr SimplifySingletonReductions(const ExprPtr& e) {
  return SimplifyAll(e);
}

// ---------------------------------------------------------------------------
// Normalize to fixpoint
// ---------------------------------------------------------------------------

Result<ExprPtr> Normalize(const ExprPtr& e, const IsArrayFn& is_array) {
  int counter = 0;
  ExprPtr cur = e;
  for (int iter = 0; iter < 20; ++iter) {
    ExprPtr next = DesugarGroupByKeys(cur);
    SAC_ASSIGN_OR_RETURN(next, DesugarIndexing(next, is_array, &counter));
    next = FlattenNested(next, &counter);
    next = MergeEqualRanges(next);
    next = CopyPropagateLets(next);
    next = EliminateInjectiveGroupBy(next);
    next = SimplifySingletonReductions(next);
    if (next->Equals(*cur)) return cur;
    cur = next;
  }
  return cur;
}

}  // namespace sac::comp
