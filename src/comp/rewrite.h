// The paper's source-to-source rewrite rules, each implemented as a named,
// individually testable AST transformation:
//
//  * DesugarGroupByKeys  -- `group by p : e`  =>  `let p = e, group by p`
//    (Section 3).
//  * DesugarIndexing     -- array indexing V[e1,...,en] inside a
//    comprehension becomes a generator ((k1,...,kn),k0) <- V plus equality
//    guards ki == ei, with the index expression replaced by k0 (Section 2).
//  * FlattenNested       -- rule (3): a generator drawing from a nested
//    comprehension (without group-by) is spliced into the outer qualifier
//    list, after alpha-renaming to avoid capture.
//  * MergeEqualRanges    -- two index generators over ranges related by an
//    equality guard are fused into one generator and a let (Section 2).
//  * Normalize           -- applies all of the above to fixpoint.
#ifndef SAC_COMP_REWRITE_H_
#define SAC_COMP_REWRITE_H_

#include <functional>
#include <string>

#include "src/common/status.h"
#include "src/comp/ast.h"

namespace sac::comp {

/// True for names that denote arrays (used by DesugarIndexing to decide
/// which Index expressions to rewrite).
using IsArrayFn = std::function<bool(const std::string&)>;

/// `group by p : e` => `let p = e, group by p`, everywhere.
ExprPtr DesugarGroupByKeys(const ExprPtr& e);

/// Rewrites array indexing in comprehension heads/guards/lets into
/// generators plus equality guards. Fresh variables use the counter.
Result<ExprPtr> DesugarIndexing(const ExprPtr& e, const IsArrayFn& is_array,
                                int* counter);

/// Rule (3): flattens nested comprehensions in generator position.
ExprPtr FlattenNested(const ExprPtr& e, int* counter);

/// Fuses `i <- a until b, j <- c until d, i == j` into
/// `i <- max(a,c) until min(b,d), let j = i`.
ExprPtr MergeEqualRanges(const ExprPtr& e);

/// Copy propagation: `let v = w` (w a plain variable) is removed and v is
/// replaced by w in all subsequent qualifiers (including group-by
/// patterns) and the head. Cleans up after range merging so the planner
/// sees index equalities between generator variables directly.
ExprPtr CopyPropagateLets(const ExprPtr& e);

/// Rule (15): a group-by whose key is the full index pattern of the only
/// array generator is injective (array indices are unique), so each group
/// is a singleton. The group-by is removed and every lifted variable x is
/// rebound to the singleton bag `let x = list(x)`.
ExprPtr EliminateInjectiveGroupBy(const ExprPtr& e);

/// `⊕/list(x)` over a singleton collapses to the element (for sum, prod,
/// min, max, avg) or a constant (count); cleans up after rule (15).
ExprPtr SimplifySingletonReductions(const ExprPtr& e);

/// Applies every rewrite to fixpoint (bounded).
Result<ExprPtr> Normalize(const ExprPtr& e, const IsArrayFn& is_array);

}  // namespace sac::comp

#endif  // SAC_COMP_REWRITE_H_
