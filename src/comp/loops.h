// A miniature DIABLO front end (the paper's companion system [13]): an
// imperative loop language over arrays whose assignments are translated
// to array comprehensions, which SAC then compiles for block arrays --
// exactly the "SAC is a drop-in back end for DIABLO" pipeline of
// Section 1.1.
//
// Language:
//   program  := stmt*
//   stmt     := 'for' VAR '=' expr ',' expr 'do' stmt        (hi inclusive)
//             | '{' stmt* '}'
//             | VAR '[' exprs ']' ':=' expr ';'
//             | VAR '[' exprs ']' '+=' expr ';'
//   expr     := the comprehension expression grammar (so A[i,j]*B[k,j],
//               conditionals, scalars etc. all work)
//
// Translation (the DIABLO rules, specialized to block arrays):
//   for-nest ending in  V[e1,e2] := rhs
//     => tiled(d1,d2)[ ((e1,e2), rhs) | i <- lo until hi+1, ... ]
//   for-nest ending in  V[e1,e2] += rhs
//     => tiled(d1,d2)[ ((e1,e2), +/v) | ..., let v = rhs,
//                      group by (e1,e2) ]
// (`+=` targets are taken as zero-initialized accumulators, the common
// DIABLO pattern.) A program is a sequence of such nests; each result is
// rebound before the next statement, so later statements see earlier
// updates.
#ifndef SAC_COMP_LOOPS_H_
#define SAC_COMP_LOOPS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/comp/ast.h"

namespace sac::comp {

struct LoopStmt;
using LoopStmtPtr = std::shared_ptr<const LoopStmt>;

struct LoopStmt {
  enum class Kind { kFor, kSeq, kAssign, kUpdate };
  Kind kind = Kind::kSeq;
  Pos pos;

  // kFor
  std::string var;
  ExprPtr lo, hi;          // inclusive bounds
  LoopStmtPtr body;

  // kSeq
  std::vector<LoopStmtPtr> stmts;

  // kAssign (:=) / kUpdate (+=)
  std::string target;
  std::vector<ExprPtr> indices;
  ExprPtr rhs;

  std::string ToString(int indent = 0) const;
};

/// Parses a loop program.
Result<LoopStmtPtr> ParseLoopProgram(const std::string& src);

/// One translated assignment: the target array name and the comprehension
/// (a `tiled(...)` Build expression) that computes its new value.
struct TranslatedUpdate {
  std::string target;
  ExprPtr query;
  /// The assignment sat inside at least one `for` nest, so its compiled
  /// plan re-runs every iteration (the analyzer's SAC-W02 cares).
  bool in_loop = false;
  /// Number of enclosing `for` nests (0 when !in_loop). In-loop targets
  /// grow lineage on every driver re-run, which is what
  /// Sac::EvalLoop's auto-checkpointing (ClusterConfig::
  /// checkpoint_interval) exists to bound.
  int loop_depth = 0;
};

/// Dimension lookup for a target array: returns the output dimension
/// expressions (1 for vectors, 2 for matrices).
using DimsFn =
    std::function<Result<std::vector<ExprPtr>>(const std::string&)>;

/// Translates a loop program into a sequence of comprehension queries,
/// one per innermost assignment (executed in order with rebinding).
Result<std::vector<TranslatedUpdate>> TranslateLoops(const LoopStmtPtr& prog,
                                                     const DimsFn& dims);

}  // namespace sac::comp

#endif  // SAC_COMP_LOOPS_H_
