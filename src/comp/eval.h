// Reference evaluator: executes any comprehension directly over
// association lists, following the formal semantics of Sections 2-3
// (desugaring rules 4-7 and the group-by rule 11) with no optimization.
// It is deliberately simple and serves as the correctness oracle for the
// optimizing planners; it is also the executor for tile-level expressions
// whose loop shape the kernel dispatcher does not recognize.
//
// Value conventions:
//  * plain `[e|q]` and `rdd[e|q]`  -> Value::List in generation order
//  * `vector(n)[e|q]`, `tiled(n)[e|q]` -> dense Value::List of (i, v),
//    length n, missing entries 0.0
//  * `matrix(n,m)[e|q]`, `tiled(n,m)[e|q]` -> Value::TileVal, dense n x m
//  * a generator over a Tile value iterates ((i,j), v) for every element
//    (the implicit matrix sparsifier); over a List it iterates elements.
#ifndef SAC_COMP_EVAL_H_
#define SAC_COMP_EVAL_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/comp/ast.h"
#include "src/runtime/value.h"

namespace sac::comp {

using runtime::Value;
using runtime::ValueVec;

/// Mutable binding stack with lexical scoping (mark/reset).
class Env {
 public:
  size_t Mark() const { return stack_.size(); }
  void Reset(size_t mark) { stack_.resize(mark); }
  void Bind(const std::string& name, Value v) {
    stack_.emplace_back(name, std::move(v));
  }
  /// Most recent binding wins; nullptr if unbound.
  const Value* Lookup(const std::string& name) const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return nullptr;
  }

 private:
  std::vector<std::pair<std::string, Value>> stack_;
};

/// Evaluation context: initial bindings plus a seeded stream for the
/// `random()` builtin.
class Evaluator {
 public:
  explicit Evaluator(uint64_t seed = 42) : rng_(seed) {}

  /// Binds a global name visible to every evaluation.
  void Bind(const std::string& name, Value v) {
    globals_[name] = std::move(v);
  }
  const std::unordered_map<std::string, Value>& globals() const {
    return globals_;
  }

  /// Evaluates `e` under the globals.
  Result<Value> Eval(const ExprPtr& e);

  /// Evaluates `e` under globals plus extra local bindings.
  Result<Value> EvalWith(const ExprPtr& e, Env* env);

  /// Destructures `v` against `p`, binding pattern variables into `env`.
  /// Fails (RuntimeError) on shape mismatch.
  static Status MatchPattern(const PatternPtr& p, const Value& v, Env* env);

  /// Folds a list with a reduction monoid (also used by planners for
  /// scalar post-aggregation).
  static Result<Value> FoldReduce(ReduceOp op, const ValueVec& items,
                                  Pos pos);

 private:
  Result<Value> EvalExpr(const ExprPtr& e, Env* env);
  Result<Value> EvalComprehension(const ExprPtr& e, Env* env);
  /// Runs qualifiers [start, stop), invoking `on_reach` once per
  /// environment that satisfies them. The range must not contain group-bys.
  Status WalkRange(const std::vector<Qualifier>& quals, size_t start,
                   size_t stop, Env* env,
                   const std::function<Status(Env*)>& on_reach);
  /// Handles quals[start..] including group-by segmentation (rule 11).
  /// `liftable` is the set of variables bound earlier in this
  /// comprehension that a group-by must lift to lists.
  Status EvalSegment(const std::vector<Qualifier>& quals, size_t start,
                     const ExprPtr& head, Env* env,
                     const std::vector<std::string>& liftable, ValueVec* out);
  Result<Value> EvalBuild(const ExprPtr& e, Env* env);
  Result<Value> EvalCall(const ExprPtr& e, Env* env);
  Result<Value> EvalIndex(const ExprPtr& e, Env* env);

  /// Expands a generator source into an iterable list view. Tiles are
  /// sparsified to ((i,j),v); lists pass through.
  static Result<ValueVec> Iterable(const Value& v, Pos pos);

  std::unordered_map<std::string, Value> globals_;
  Rng rng_;
};

}  // namespace sac::comp

#endif  // SAC_COMP_EVAL_H_
