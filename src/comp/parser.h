// Recursive-descent parser for array comprehensions (Figure 2 syntax).
//
// Grammar sketch (precedence low to high):
//   expr    := 'if' '(' expr ')' expr 'else' expr | or
//   or      := and ('||' and)*
//   and     := cmp ('&&' cmp)*
//   cmp     := range (('=='|'!='|'<'|'<='|'>'|'>=') range)?
//   range   := add (('until'|'to') add)?
//   add     := mul (('+'|'-') mul)*
//   mul     := unary (('*'|'/'|'%') unary)*
//   unary   := '-' unary | '!' unary | REDUCE unary | postfix
//   postfix := primary ('[' exprs ']' | '.' ident | '(' exprs ')')*
//   primary := literal | ident | '(' exprs ')' | '[' comp ']'
//
// `name(args...)[ e | q ]` and `name[ e | q ]` parse as builders (kBuild);
// `e[ i, j ]` with no '|' inside the brackets parses as array indexing.
// Qualifiers: `p <- e`, `let p = e`, `group by p [: e]`, or a guard expr.
#ifndef SAC_COMP_PARSER_H_
#define SAC_COMP_PARSER_H_

#include <string>

#include "src/common/status.h"
#include "src/comp/ast.h"

namespace sac::comp {

/// Parses one expression; the whole input must be consumed.
Result<ExprPtr> Parse(const std::string& src);

/// Parses a pattern, e.g. "((i,j),m)" (exposed for tests).
Result<PatternPtr> ParsePattern(const std::string& src);

}  // namespace sac::comp

#endif  // SAC_COMP_PARSER_H_
