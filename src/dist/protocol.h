// The coordinator <-> worker protocol (docs/DISTRIBUTED.md): five
// request/response pairs carried as net::Frame payloads. Workers host
// shuffle buckets -- the serialized per-destination byte buffers the
// map side produces -- keyed by (shuffle_id, parent, src, dest); the
// driver pushes them after the map phase and fetches them at reduce
// time, so in distributed mode every cross-executor shuffle byte
// genuinely crosses the transport.
//
// Error handling: a worker never fails a frame at the transport layer.
// Protocol-level failures come back as a kError frame whose payload is
// (status code, message); DecodeStatus() rehydrates the Status on the
// driver. A missing bucket is DataLoss -- with its worker dead, the
// bytes are gone and the driver must re-execute the map side from
// lineage (docs/FAULT_MODEL.md).
#ifndef SAC_DIST_PROTOCOL_H_
#define SAC_DIST_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "src/common/serialize.h"
#include "src/common/status.h"
#include "src/net/frame.h"

namespace sac::dist {

enum MsgType : uint32_t {
  kPing = 1,         // liveness probe; response carries worker vitals
  kPingOk = 2,
  kPutBucket = 3,    // store one shuffle bucket (idempotent overwrite)
  kPutBucketOk = 4,
  kGetBucket = 5,    // fetch one shuffle bucket's bytes
  kGetBucketOk = 6,
  kDropShuffle = 7,  // free every bucket of a finished shuffle
  kDropShuffleOk = 8,
  kShutdown = 9,     // ask the worker process to exit cleanly
  kShutdownOk = 10,
  kError = 100,      // response-only: (status code, message)
};

/// Identity of one shuffle bucket: the serialized records of source
/// partition `src` of parent `parent` bound for destination partition
/// `dest`, within engine-wide shuffle `shuffle_id`.
struct BucketId {
  uint64_t shuffle_id = 0;
  int32_t parent = 0;
  int32_t src = 0;
  int32_t dest = 0;

  std::string ToString() const;
};

/// Serialized size of a BucketId (u64 shuffle_id + 3x u32).
inline constexpr size_t kBucketIdBytes = 8 + 3 * 4;

void EncodeBucketId(const BucketId& id, ByteWriter* w);
Result<BucketId> DecodeBucketId(ByteReader* r);

/// Worker vitals carried by a kPingOk response. `pid` is how the chaos
/// harness finds its kill -9 target.
struct PingInfo {
  uint64_t pid = 0;
  uint64_t num_buckets = 0;
  uint64_t hosted_bytes = 0;
};

void EncodePingInfo(const PingInfo& info, ByteWriter* w);
Result<PingInfo> DecodePingInfo(ByteReader* r);

/// Builds a kError response frame carrying `st` (which must not be OK).
net::Frame MakeErrorFrame(const Status& st);

/// If `f` is a kError frame, the carried Status; OK otherwise. A
/// malformed error payload decodes as DataLoss.
Status StatusFromFrame(const net::Frame& f);

}  // namespace sac::dist

#endif  // SAC_DIST_PROTOCOL_H_
