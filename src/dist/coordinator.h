// Coordinator: the driver-side brain of the distributed shuffle
// (docs/DISTRIBUTED.md). It owns the Transport and answers three
// questions for Engine::ExecuteShuffle:
//
//  * Placement -- which worker hosts executor e's shuffle buckets?
//    Round-robin over the *live* worker set, so a death automatically
//    re-places the dead worker's executors onto survivors (the placement
//    epoch bumps, which is how in-flight fetches learn the map moved).
//  * Liveness -- a heartbeat thread pings every worker; enough
//    consecutive missed pings (heartbeat_timeout_ms of silence) mark it
//    dead, metered as workers_lost and traced as a "worker-lost:"
//    instant. RPC-level connection failures mark the worker dead
//    immediately (the kill -9 case: the kernel answers RST long before
//    the heartbeat would time out).
//  * Bucket RPCs -- PushBucket / FetchBucket / DropShuffle with the PR4
//    retry/backoff shape (base * 2^(k-1), capped, bounded attempts).
//    A push retries against the re-placed owner and so survives any
//    death as long as one worker lives; a fetch whose bucket died with
//    its worker comes back DataLoss, the engine's signal to re-execute
//    the map side from lineage (partitions_reexecuted).
//
// Wire traffic is metered into dist_bytes_sent / dist_bytes_received on
// the stage's StageStats when one is given, else on the engine totals.
#ifndef SAC_DIST_COORDINATOR_H_
#define SAC_DIST_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/trace.h"
#include "src/dist/protocol.h"
#include "src/net/transport.h"

namespace sac::dist {

struct CoordinatorOptions {
  int num_executors = 1;
  // Retry/backoff for bucket RPCs, same shape and defaults as the task
  // retry policy (ClusterConfig::max_task_attempts / retry_*_delay_us).
  int max_attempts = 3;
  int retry_base_delay_us = 200;
  int retry_max_delay_us = 20000;
  // Liveness: ping period, and how much silence equals death. <= 0
  // interval disables the background thread (tests drive SweepOnce()).
  int heartbeat_interval_ms = 100;
  int heartbeat_timeout_ms = 1000;
};

class Coordinator {
 public:
  /// `totals` receives dist metering not attributable to a stage
  /// (heartbeats) and the workers_lost counter; `tracer` may be null.
  Coordinator(std::unique_ptr<net::Transport> transport,
              CoordinatorOptions opts, Metrics* totals,
              trace::Tracer* tracer);
  ~Coordinator();  // stops the heartbeat thread

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Pings every worker once; fails if any is unreachable (engine
  /// construction fails fast on a misconfigured cluster). Caches pids.
  Status ConnectAll();

  void StartHeartbeat();
  void StopHeartbeat();

  // ---- identity / placement ------------------------------------------
  const net::Transport& transport() const { return *transport_; }
  int num_workers() const { return transport_->num_peers(); }
  int live_workers() const;
  /// Bumped by every MarkDead; a fetch that fails can compare epochs to
  /// tell "already re-pushed under this placement" from "placement moved
  /// again" (Engine::ExecuteShuffle's recovery loop).
  uint64_t placement_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  /// The live worker hosting executor `executor`'s buckets;
  /// Unavailable once every worker is dead.
  Result<int> WorkerOf(int executor) const;
  /// OS pid of `worker` from its last ping (0 if never seen) -- the
  /// chaos harness's kill target.
  uint64_t WorkerPid(int worker) const;

  /// Fresh engine-wide shuffle id (bucket keys never collide across
  /// stages or reruns).
  uint64_t NextShuffleId() {
    return next_shuffle_.fetch_add(1, std::memory_order_relaxed);
  }

  // ---- bucket RPCs ----------------------------------------------------
  /// Stores `bytes` as `id` on the worker hosting executor
  /// `dest_executor`. Retries with backoff across deaths (re-placing
  /// each attempt); fails only when no worker is left or attempts run
  /// out.
  Status PushBucket(StageStats* stats, const BucketId& id,
                    int dest_executor, const std::vector<uint8_t>& bytes);

  /// Fetches `id` from the worker hosting executor `dest_executor`.
  /// DataLoss means the bucket died with a worker: re-execute its map
  /// side and re-push, then fetch again.
  Result<std::vector<uint8_t>> FetchBucket(StageStats* stats,
                                           const BucketId& id,
                                           int dest_executor);

  /// Frees shuffle `sid`'s buckets on every live worker. Best-effort:
  /// a dead worker's buckets died with it.
  void DropShuffle(uint64_t sid);

  /// Asks every live worker process to exit (sac_worker honors it;
  /// in-process workers just set a flag). Best-effort.
  void ShutdownWorkers();

  // ---- liveness -------------------------------------------------------
  /// One heartbeat pass over the live set (the background thread's body;
  /// exposed so tests can drive liveness deterministically).
  void SweepOnce();
  /// Marks `worker` dead: placement re-routes its executors, epoch
  /// bumps, workers_lost meters. Idempotent; false if already dead.
  bool MarkDead(int worker, const std::string& why);

 private:
  /// One raw RPC to a fixed worker, metering wire bytes. kError frames
  /// decode into their carried Status.
  Result<net::Frame> CallWorker(StageStats* stats, int worker,
                                const net::Frame& req);
  /// The RPC retry loop: resolve the executor's worker, call, and on an
  /// Unavailable answer mark the worker dead, back off, re-place, and
  /// try again. Non-Unavailable errors return immediately.
  Result<net::Frame> CallExecutor(StageStats* stats, int executor,
                                  const net::Frame& req);
  void MeterDist(StageStats* stats, uint64_t sent, uint64_t received);
  void HeartbeatLoop();

  std::unique_ptr<net::Transport> transport_;
  const CoordinatorOptions opts_;
  Metrics* totals_;
  trace::Tracer* tracer_;

  mutable std::mutex mu_;  // guards alive_ / pids_ / missed_ms_
  std::vector<uint8_t> alive_;
  std::vector<uint64_t> pids_;
  std::vector<int> missed_ms_;  // consecutive heartbeat silence per worker

  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> next_shuffle_{1};

  std::thread heartbeat_;
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  bool hb_stop_ = false;  // guarded by hb_mu_
};

}  // namespace sac::dist

#endif  // SAC_DIST_COORDINATOR_H_
