#include "src/dist/worker.h"

#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

namespace sac::dist {

namespace {

/// Dense map key for one bucket.
std::string KeyOf(const BucketId& id) {
  return std::to_string(id.shuffle_id) + "/" + std::to_string(id.parent) +
         "/" + std::to_string(id.src) + "/" + std::to_string(id.dest);
}

net::Frame OkFrame(uint32_t type) {
  net::Frame f;
  f.type = type;
  return f;
}

}  // namespace

net::Frame WorkerState::Handle(const net::Frame& req) {
  // Chaos budget: once spent, the worker answers Unavailable for
  // everything -- indistinguishable, to the coordinator, from a dead
  // process (tests/transport_test.cc uses this for in-process chaos).
  uint64_t b = budget_.load(std::memory_order_acquire);
  while (b != UINT64_MAX) {
    if (b == 0) {
      return MakeErrorFrame(
          Status::Unavailable("worker failed (induced fault budget spent)"));
    }
    if (budget_.compare_exchange_weak(b, b - 1,
                                      std::memory_order_acq_rel)) {
      break;
    }
  }
  Result<net::Frame> resp = Dispatch(req);
  if (!resp.ok()) return MakeErrorFrame(resp.status());
  return std::move(resp).value();
}

Result<net::Frame> WorkerState::Dispatch(const net::Frame& req) {
  switch (req.type) {
    case kPing: {
      PingInfo info;
      info.pid = static_cast<uint64_t>(::getpid());
      info.num_buckets = num_buckets();
      info.hosted_bytes = hosted_bytes();
      net::Frame f = OkFrame(kPingOk);
      f.payload.reserve(3 * sizeof(uint64_t));
      ByteWriter w(&f.payload);
      EncodePingInfo(info, &w);
      return f;
    }
    case kPutBucket: {
      const int64_t delay = put_delay_us_.load(std::memory_order_acquire);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
      }
      ByteReader r(req.payload);
      SAC_ASSIGN_OR_RETURN(BucketId id, DecodeBucketId(&r));
      // Everything after the id is the bucket itself. Overwrite is
      // legal and idempotent: lineage re-execution re-pushes identical
      // bytes (deterministic map side), and last-write-wins keeps the
      // store consistent either way.
      const auto off =
          static_cast<long>(req.payload.size() - r.remaining());
      std::vector<uint8_t> bytes(req.payload.begin() + off,
                                 req.payload.end());
      std::lock_guard<std::mutex> lock(mu_);
      auto it = buckets_.find(KeyOf(id));
      if (it != buckets_.end()) {
        hosted_bytes_ -= it->second.size();
        it->second = std::move(bytes);
      } else {
        it = buckets_.emplace(KeyOf(id), std::move(bytes)).first;
      }
      hosted_bytes_ += it->second.size();
      return OkFrame(kPutBucketOk);
    }
    case kGetBucket: {
      ByteReader r(req.payload);
      SAC_ASSIGN_OR_RETURN(BucketId id, DecodeBucketId(&r));
      std::lock_guard<std::mutex> lock(mu_);
      auto it = buckets_.find(KeyOf(id));
      if (it == buckets_.end()) {
        // The honest answer when a re-placed fetch lands here before a
        // re-push: the original copy died with its worker.
        return Status::DataLoss(id.ToString() + " not hosted here");
      }
      net::Frame f = OkFrame(kGetBucketOk);
      f.payload = it->second;
      return f;
    }
    case kDropShuffle: {
      ByteReader r(req.payload);
      SAC_ASSIGN_OR_RETURN(uint64_t sid, r.GetU64());
      const std::string prefix = std::to_string(sid) + "/";
      uint64_t dropped = 0;
      std::lock_guard<std::mutex> lock(mu_);
      for (auto it = buckets_.begin(); it != buckets_.end();) {
        if (it->first.compare(0, prefix.size(), prefix) == 0) {
          hosted_bytes_ -= it->second.size();
          it = buckets_.erase(it);
          ++dropped;
        } else {
          ++it;
        }
      }
      net::Frame f = OkFrame(kDropShuffleOk);
      f.payload.reserve(sizeof(uint64_t));
      ByteWriter w(&f.payload);
      w.PutU64(dropped);
      return f;
    }
    case kShutdown: {
      shutdown_.store(true, std::memory_order_release);
      return OkFrame(kShutdownOk);
    }
    default:
      return Status::InvalidArgument("unknown message type " +
                                     std::to_string(req.type));
  }
}

uint64_t WorkerState::num_buckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_.size();
}

uint64_t WorkerState::hosted_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hosted_bytes_;
}

}  // namespace sac::dist
