#include "src/dist/coordinator.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "src/common/logging.h"

namespace sac::dist {

Coordinator::Coordinator(std::unique_ptr<net::Transport> transport,
                         CoordinatorOptions opts, Metrics* totals,
                         trace::Tracer* tracer)
    : transport_(std::move(transport)),
      opts_(opts),
      totals_(totals),
      tracer_(tracer) {
  const int n = transport_->num_peers();
  alive_.assign(static_cast<size_t>(n), 1);
  pids_.assign(static_cast<size_t>(n), 0);
  missed_ms_.assign(static_cast<size_t>(n), 0);
}

Coordinator::~Coordinator() { StopHeartbeat(); }

void Coordinator::MeterDist(StageStats* stats, uint64_t sent,
                            uint64_t received) {
  if (stats) {
    stats->AddDistSent(sent);
    stats->AddDistReceived(received);
  } else if (totals_) {
    totals_->AddDistSent(sent);
    totals_->AddDistReceived(received);
  }
}

Result<net::Frame> Coordinator::CallWorker(StageStats* stats, int worker,
                                           const net::Frame& req) {
  Result<net::Frame> resp = transport_->Call(worker, req);
  if (!resp.ok()) return resp;
  // Meter only completed round trips: a torn connection's partial bytes
  // are unknowable, and the retry's successful frames get counted.
  MeterDist(stats, net::EncodedSize(req), net::EncodedSize(resp.value()));
  const Status carried = StatusFromFrame(resp.value());
  if (!carried.ok()) return carried;
  return resp;
}

Result<net::Frame> Coordinator::CallExecutor(StageStats* stats,
                                             int executor,
                                             const net::Frame& req) {
  int64_t delay_us = opts_.retry_base_delay_us;
  for (int attempt = 1; attempt <= opts_.max_attempts; ++attempt) {
    SAC_ASSIGN_OR_RETURN(const int worker, WorkerOf(executor));
    Result<net::Frame> resp = CallWorker(stats, worker, req);
    if (resp.ok()) return resp;
    if (resp.status().code() != StatusCode::kUnavailable) return resp;
    // The owner is gone; placement re-routes this executor onto a
    // survivor, and the next attempt targets that worker.
    MarkDead(worker, resp.status().message());
    if (attempt < opts_.max_attempts && delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          std::min<int64_t>(delay_us, opts_.retry_max_delay_us)));
      delay_us *= 2;
    }
  }
  return Status::Unavailable("rpc to executor " + std::to_string(executor) +
                             " failed after " +
                             std::to_string(opts_.max_attempts) +
                             " attempts");
}

Status Coordinator::ConnectAll() {
  net::Frame ping;
  ping.type = kPing;
  for (int w = 0; w < num_workers(); ++w) {
    Result<net::Frame> resp = CallWorker(nullptr, w, ping);
    if (!resp.ok()) {
      return resp.status().WithContext("worker " + std::to_string(w) +
                                       " unreachable at startup");
    }
    ByteReader r(resp.value().payload);
    Result<PingInfo> info = DecodePingInfo(&r);
    if (info.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      pids_[static_cast<size_t>(w)] = info.value().pid;
    }
  }
  return Status::OK();
}

int Coordinator::live_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(
      std::count(alive_.begin(), alive_.end(), uint8_t{1}));
}

Result<int> Coordinator::WorkerOf(int executor) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> live;
  live.reserve(alive_.size());
  for (size_t w = 0; w < alive_.size(); ++w) {
    if (alive_[w]) live.push_back(static_cast<int>(w));
  }
  if (live.empty()) {
    return Status::Unavailable("all " + std::to_string(alive_.size()) +
                               " workers lost");
  }
  return live[static_cast<size_t>(executor) % live.size()];
}

uint64_t Coordinator::WorkerPid(int worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker < 0 || worker >= static_cast<int>(pids_.size())) return 0;
  return pids_[static_cast<size_t>(worker)];
}

bool Coordinator::MarkDead(int worker, const std::string& why) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (worker < 0 || worker >= static_cast<int>(alive_.size()) ||
        !alive_[static_cast<size_t>(worker)]) {
      return false;
    }
    alive_[static_cast<size_t>(worker)] = 0;
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  if (totals_) totals_->AddWorkerLost();
  if (tracer_) {
    tracer_->Instant("worker-lost:" + std::to_string(worker), "dist", 0,
                     {{"worker", worker}});
  }
  SAC_LOG(Warn) << "worker " << worker << " marked dead (" << why
                << "); re-placing its executors on "
                << live_workers() << " survivors";
  return true;
}

Status Coordinator::PushBucket(StageStats* stats, const BucketId& id,
                               int dest_executor,
                               const std::vector<uint8_t>& bytes) {
  net::Frame req;
  req.type = kPutBucket;
  req.payload.reserve(kBucketIdBytes + bytes.size());
  ByteWriter w(&req.payload);
  EncodeBucketId(id, &w);
  w.PutRaw(bytes.data(), bytes.size());
  SAC_ASSIGN_OR_RETURN(net::Frame resp,
                       CallExecutor(stats, dest_executor, req));
  if (resp.type != kPutBucketOk) {
    return Status::DataLoss("unexpected response type " +
                            std::to_string(resp.type) + " to PutBucket");
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> Coordinator::FetchBucket(StageStats* stats,
                                                      const BucketId& id,
                                                      int dest_executor) {
  net::Frame req;
  req.type = kGetBucket;
  req.payload.reserve(kBucketIdBytes);
  ByteWriter w(&req.payload);
  EncodeBucketId(id, &w);
  SAC_ASSIGN_OR_RETURN(net::Frame resp,
                       CallExecutor(stats, dest_executor, req));
  if (resp.type != kGetBucketOk) {
    return Status::DataLoss("unexpected response type " +
                            std::to_string(resp.type) + " to GetBucket");
  }
  return std::move(resp.payload);
}

void Coordinator::DropShuffle(uint64_t sid) {
  net::Frame req;
  req.type = kDropShuffle;
  req.payload.reserve(sizeof(uint64_t));
  ByteWriter w(&req.payload);
  w.PutU64(sid);
  for (int worker = 0; worker < num_workers(); ++worker) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!alive_[static_cast<size_t>(worker)]) continue;
    }
    // Best-effort: a failure here means the worker died, and its
    // buckets with it.
    CallWorker(nullptr, worker, req);
  }
}

void Coordinator::ShutdownWorkers() {
  net::Frame req;
  req.type = kShutdown;
  for (int worker = 0; worker < num_workers(); ++worker) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!alive_[static_cast<size_t>(worker)]) continue;
    }
    CallWorker(nullptr, worker, req);
  }
}

void Coordinator::SweepOnce() {
  net::Frame ping;
  ping.type = kPing;
  const int tick_ms = std::max(1, opts_.heartbeat_interval_ms);
  for (int worker = 0; worker < num_workers(); ++worker) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!alive_[static_cast<size_t>(worker)]) continue;
    }
    Result<net::Frame> resp = CallWorker(nullptr, worker, ping);
    if (resp.ok()) {
      ByteReader r(resp.value().payload);
      Result<PingInfo> info = DecodePingInfo(&r);
      std::lock_guard<std::mutex> lock(mu_);
      missed_ms_[static_cast<size_t>(worker)] = 0;
      if (info.ok()) pids_[static_cast<size_t>(worker)] = info.value().pid;
      continue;
    }
    int missed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      missed = missed_ms_[static_cast<size_t>(worker)] += tick_ms;
    }
    if (missed >= opts_.heartbeat_timeout_ms) {
      MarkDead(worker, "heartbeat silent for " + std::to_string(missed) +
                           " ms: " + resp.status().message());
    }
  }
}

void Coordinator::StartHeartbeat() {
  if (opts_.heartbeat_interval_ms <= 0 || heartbeat_.joinable()) return;
  heartbeat_ = std::thread([this] { HeartbeatLoop(); });
}

void Coordinator::StopHeartbeat() {
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
}

void Coordinator::HeartbeatLoop() {
  const auto interval =
      std::chrono::milliseconds(opts_.heartbeat_interval_ms);
  std::unique_lock<std::mutex> lock(hb_mu_);
  while (!hb_stop_) {
    if (hb_cv_.wait_for(lock, interval, [this] { return hb_stop_; })) {
      break;
    }
    lock.unlock();
    SweepOnce();
    lock.lock();
  }
}

}  // namespace sac::dist
