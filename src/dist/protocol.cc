#include "src/dist/protocol.h"

namespace sac::dist {

std::string BucketId::ToString() const {
  return "shuffle " + std::to_string(shuffle_id) + " bucket (parent=" +
         std::to_string(parent) + ", src=" + std::to_string(src) +
         ", dest=" + std::to_string(dest) + ")";
}

void EncodeBucketId(const BucketId& id, ByteWriter* w) {
  w->PutU64(id.shuffle_id);
  w->PutU32(static_cast<uint32_t>(id.parent));
  w->PutU32(static_cast<uint32_t>(id.src));
  w->PutU32(static_cast<uint32_t>(id.dest));
}

Result<BucketId> DecodeBucketId(ByteReader* r) {
  BucketId id;
  SAC_ASSIGN_OR_RETURN(id.shuffle_id, r->GetU64());
  SAC_ASSIGN_OR_RETURN(uint32_t parent, r->GetU32());
  SAC_ASSIGN_OR_RETURN(uint32_t src, r->GetU32());
  SAC_ASSIGN_OR_RETURN(uint32_t dest, r->GetU32());
  id.parent = static_cast<int32_t>(parent);
  id.src = static_cast<int32_t>(src);
  id.dest = static_cast<int32_t>(dest);
  return id;
}

void EncodePingInfo(const PingInfo& info, ByteWriter* w) {
  w->PutU64(info.pid);
  w->PutU64(info.num_buckets);
  w->PutU64(info.hosted_bytes);
}

Result<PingInfo> DecodePingInfo(ByteReader* r) {
  PingInfo info;
  SAC_ASSIGN_OR_RETURN(info.pid, r->GetU64());
  SAC_ASSIGN_OR_RETURN(info.num_buckets, r->GetU64());
  SAC_ASSIGN_OR_RETURN(info.hosted_bytes, r->GetU64());
  return info;
}

net::Frame MakeErrorFrame(const Status& st) {
  net::Frame f;
  f.type = kError;
  f.payload.reserve(1 + 4 + st.message().size());
  ByteWriter w(&f.payload);
  w.PutU8(static_cast<uint8_t>(st.code()));
  w.PutString(st.message());
  return f;
}

Status StatusFromFrame(const net::Frame& f) {
  if (f.type != kError) return Status::OK();
  ByteReader r(f.payload);
  Result<uint8_t> code = r.GetU8();
  if (!code.ok()) return Status::DataLoss("malformed error frame");
  Result<std::string> msg = r.GetString();
  if (!msg.ok()) return Status::DataLoss("malformed error frame");
  return Status(static_cast<StatusCode>(code.value()),
                std::move(msg).value());
}

}  // namespace sac::dist
