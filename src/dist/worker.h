// WorkerState: the partition-hosting executor loop's brain. One instance
// serves one worker, whether that worker is an in-process loopback peer,
// an in-process TcpServer (the engine's SAC_TRANSPORT=tcp with a worker
// *count*), or a separate sac_worker process. It stores shuffle buckets
// keyed by BucketId and answers the dist protocol; everything else --
// placement, liveness, retries -- lives on the driver (coordinator).
//
// Handle() is the single entry point and is thread-safe (a TcpServer
// runs one service thread per connection). It never fails at the frame
// layer: protocol errors become kError response frames.
#ifndef SAC_DIST_WORKER_H_
#define SAC_DIST_WORKER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/dist/protocol.h"
#include "src/net/frame.h"

namespace sac::dist {

class WorkerState {
 public:
  /// Serves one request frame. Unknown types and malformed payloads come
  /// back as kError frames (never a crash: the peer may be hostile).
  net::Frame Handle(const net::Frame& req);

  // ---- vitals (also reported via kPing) -------------------------------
  uint64_t num_buckets() const;
  uint64_t hosted_bytes() const;
  /// Set once a kShutdown frame arrives; the sac_worker main loop polls
  /// this to exit cleanly.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  // ---- chaos hooks ----------------------------------------------------
  /// After `n` more successfully served requests, every request answers
  /// kError/Unavailable -- an in-process stand-in for kill -9 (the
  /// coordinator treats the worker as dead). UINT64_MAX disables.
  void FailAfter(uint64_t n) {
    budget_.store(n, std::memory_order_release);
  }
  /// Sleeps this long before serving each kPutBucket (sac_worker reads
  /// SAC_WORKER_DELAY_US into it): stretches the shuffle window so a
  /// chaos kill reliably lands mid-stream, and doubles as a crude slow-
  /// network simulation.
  void set_put_delay_us(int64_t us) {
    put_delay_us_.store(us, std::memory_order_release);
  }

 private:
  Result<net::Frame> Dispatch(const net::Frame& req);

  mutable std::mutex mu_;  // guards buckets_ / hosted_bytes_
  std::unordered_map<std::string, std::vector<uint8_t>> buckets_;
  uint64_t hosted_bytes_ = 0;

  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> budget_{UINT64_MAX};
  std::atomic<int64_t> put_delay_us_{0};
};

}  // namespace sac::dist

#endif  // SAC_DIST_WORKER_H_
