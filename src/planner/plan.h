// Planner-facing types: bindings (what names in a query refer to), the
// compiled query (a physical plan bound to the DISC engine), and planner
// options controlling which translation strategies are eligible.
#ifndef SAC_PLANNER_PLAN_H_
#define SAC_PLANNER_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/common/status.h"
#include "src/runtime/engine.h"
#include "src/storage/tiled.h"

namespace sac::planner {

/// What a free variable of a query denotes.
struct Binding {
  enum class Kind {
    kScalar,       // int / double / bool
    kLocal,        // local dense matrix (Value::TileVal) or list
    kTiled,        // distributed TiledMatrix
    kBlockVector,  // distributed BlockVector
    kCoo,          // distributed coordinate matrix
  };
  Kind kind = Kind::kScalar;
  runtime::Value value;  // kScalar / kLocal
  storage::TiledMatrix tiled;
  storage::BlockVector vec;
  storage::CooMatrix coo;

  static Binding Scalar(runtime::Value v) {
    Binding b;
    b.kind = Kind::kScalar;
    b.value = std::move(v);
    return b;
  }
  static Binding Local(runtime::Value v) {
    Binding b;
    b.kind = Kind::kLocal;
    b.value = std::move(v);
    return b;
  }
  static Binding Tiled(storage::TiledMatrix m) {
    Binding b;
    b.kind = Kind::kTiled;
    b.tiled = std::move(m);
    return b;
  }
  static Binding Vector(storage::BlockVector v) {
    Binding b;
    b.kind = Kind::kBlockVector;
    b.vec = std::move(v);
    return b;
  }
  static Binding Coo(storage::CooMatrix c) {
    Binding b;
    b.kind = Kind::kCoo;
    b.coo = std::move(c);
    return b;
  }

  bool is_distributed() const {
    return kind == Kind::kTiled || kind == Kind::kBlockVector ||
           kind == Kind::kCoo;
  }
};

using Bindings = std::unordered_map<std::string, Binding>;

/// The value a query evaluates to.
struct QueryResult {
  enum class Kind { kValue, kTiled, kBlockVector };
  Kind kind = Kind::kValue;
  runtime::Value value;  // scalars, lists, local matrices
  storage::TiledMatrix tiled;
  storage::BlockVector vec;
};

/// Which Section-5 translation the planner chose (reported for tests,
/// EXPLAIN output and the ablation benches).
enum class Strategy {
  kTilingPreserving,  // 5.1: join of tiles, no group-by shuffle
  kReplication,       // 5.2: I_f(K) replication + groupByKey
  kReduceByKey,       // 5.3: join + reduceByKey with a tile monoid
  kGroupByJoin,       // 5.4: SUMMA-style replicate + cogroup
  kCoo,               // Section 4: element-level coordinate format
  kLocalFallback,     // collect + reference evaluation (small data)
  kLocal,             // purely local inputs, reference evaluation
};
const char* StrategyName(Strategy s);

struct PlannerOptions {
  /// Enables the Section 5.4 group-by-join (SUMMA) rule. The Figure 4.B
  /// "SAC" series disables it to get the plain join + group-by plan.
  bool enable_group_by_join = true;
  /// Forces the Section 4 coordinate-format translation (DIABLO-style),
  /// used by the COO-vs-tiled ablation.
  bool force_coo = false;
  /// Largest total input cell count the local fallback will collect.
  int64_t local_fallback_max_cells = 1 << 22;
  /// Use the deliberately generic "jvmlike" kernels inside tile operations
  /// (models a library baseline; the generated-code path keeps this off).
  bool use_jvmlike_kernels = false;
};

/// A compiled, executable query plan.
struct CompiledQuery {
  Strategy strategy = Strategy::kLocal;
  std::string explanation;  // one line: rule fired and why
  std::function<Result<QueryResult>(runtime::Engine*)> run;
};

}  // namespace sac::planner

#endif  // SAC_PLANNER_PLAN_H_
