// Planner-facing types: bindings (what names in a query refer to), the
// compiled query (a physical plan bound to the DISC engine), and planner
// options controlling which translation strategies are eligible.
#ifndef SAC_PLANNER_PLAN_H_
#define SAC_PLANNER_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/comp/ast.h"
#include "src/runtime/engine.h"
#include "src/storage/tiled.h"

namespace sac::planner {

/// What a free variable of a query denotes.
struct Binding {
  enum class Kind {
    kScalar,       // int / double / bool
    kLocal,        // local dense matrix (Value::TileVal) or list
    kTiled,        // distributed TiledMatrix
    kBlockVector,  // distributed BlockVector
    kCoo,          // distributed coordinate matrix
  };
  Kind kind = Kind::kScalar;
  runtime::Value value;  // kScalar / kLocal
  storage::TiledMatrix tiled;
  storage::BlockVector vec;
  storage::CooMatrix coo;

  static Binding Scalar(runtime::Value v) {
    Binding b;
    b.kind = Kind::kScalar;
    b.value = std::move(v);
    return b;
  }
  static Binding Local(runtime::Value v) {
    Binding b;
    b.kind = Kind::kLocal;
    b.value = std::move(v);
    return b;
  }
  static Binding Tiled(storage::TiledMatrix m) {
    Binding b;
    b.kind = Kind::kTiled;
    b.tiled = std::move(m);
    return b;
  }
  static Binding Vector(storage::BlockVector v) {
    Binding b;
    b.kind = Kind::kBlockVector;
    b.vec = std::move(v);
    return b;
  }
  static Binding Coo(storage::CooMatrix c) {
    Binding b;
    b.kind = Kind::kCoo;
    b.coo = std::move(c);
    return b;
  }

  bool is_distributed() const {
    return kind == Kind::kTiled || kind == Kind::kBlockVector ||
           kind == Kind::kCoo;
  }
};

using Bindings = std::unordered_map<std::string, Binding>;

/// The value a query evaluates to.
struct QueryResult {
  enum class Kind { kValue, kTiled, kBlockVector };
  Kind kind = Kind::kValue;
  runtime::Value value;  // scalars, lists, local matrices
  storage::TiledMatrix tiled;
  storage::BlockVector vec;
};

/// Which Section-5 translation the planner chose (reported for tests,
/// EXPLAIN output and the ablation benches).
enum class Strategy {
  kTilingPreserving,  // 5.1: join of tiles, no group-by shuffle
  kReplication,       // 5.2: I_f(K) replication + groupByKey
  kReduceByKey,       // 5.3: join + reduceByKey with a tile monoid
  kGroupByJoin,       // 5.4: SUMMA-style replicate + cogroup
  kCoo,               // Section 4: element-level coordinate format
  kLocalFallback,     // collect + reference evaluation (small data)
  kLocal,             // purely local inputs, reference evaluation
};
const char* StrategyName(Strategy s);

struct PlannerOptions {
  /// Enables the Section 5.4 group-by-join (SUMMA) rule. The Figure 4.B
  /// "SAC" series disables it to get the plain join + group-by plan.
  bool enable_group_by_join = true;
  /// Forces the Section 4 coordinate-format translation (DIABLO-style),
  /// used by the COO-vs-tiled ablation.
  bool force_coo = false;
  /// Largest total input cell count the local fallback will collect.
  int64_t local_fallback_max_cells = 1 << 22;
  /// Use the deliberately generic "jvmlike" kernels inside tile operations
  /// (models a library baseline; the generated-code path keeps this off).
  bool use_jvmlike_kernels = false;
  /// Fuse a transpose feeding an elementwise op into one blocked pass
  /// (src/la/fused.h): same values, one fewer tile allocation per stage.
  /// The jvmlike baseline ignores this and keeps the materialized
  /// two-pass form. bench_abl_backend's fusion gate flips it off for the
  /// unfused arm.
  bool fuse_elementwise = true;
  /// Cost-based planning (docs/COST_MODEL.md): when both the 5.3
  /// reduceByKey and the 5.4 group-by-join translation apply, pick the one
  /// the calibrated cost model estimates cheaper for the bound extents
  /// (fig4b shows the right choice flips with n), and size reduce-side
  /// partition counts from the distinct-key estimate instead of the
  /// engine default. `SAC_AUTO_STRATEGY=off` overrides to disabled; the
  /// forced bench series pin this off so their plans stay comparable.
  bool auto_strategy = true;
  /// Cluster shape the cost model evaluates against (executor count
  /// drives the local/cross shuffle split, parallelism the task counts).
  /// Sac's constructor copies its engine config here.
  runtime::ClusterConfig cluster;
};

// ---------------------------------------------------------------------------
// Symbolic physical plan
// ---------------------------------------------------------------------------
//
// Each translation strategy emits, next to its executable closure, a small
// symbolic DAG describing the engine operators the closure will run. The
// static analyzer (src/analysis/) lints and verifies this DAG before any
// tile is materialized: partitioning metadata feeds the shuffle rules
// (SAC-W03), consumer counts feed the dead-dataset and cache rules
// (SAC-W02/W04), and VerifyPlan() checks the structural invariants.

/// How a plan node's output is distributed over partitions. `kHashKey`
/// means rows live on partition `hash(key) % num_partitions` -- the
/// engine's only shuffle placement, so two hash-partitioned nodes with the
/// same partition count and an unchanged key are co-partitioned.
struct Partitioning {
  enum class Kind { kNone, kHashKey };
  Kind kind = Kind::kNone;
  int num_partitions = -1;  // -1 = engine default parallelism

  bool Matches(const Partitioning& other) const {
    return kind == Kind::kHashKey && other.kind == Kind::kHashKey &&
           num_partitions == other.num_partitions;
  }
  /// Matches() with `-1` on either side resolved to the engine default
  /// parallelism first, so `hash(8)` and `hash(default)` compare equal
  /// when the engine would create 8 partitions for both. This is the
  /// comparison the redundant-shuffle lint (SAC-W03) wants: two
  /// partitionings with different *resolved* counts place rows
  /// differently and the repartition is real, not redundant.
  bool MatchesResolved(const Partitioning& other, int default_np) const {
    if (kind != Kind::kHashKey || other.kind != Kind::kHashKey) return false;
    const int a = num_partitions > 0 ? num_partitions : default_np;
    const int b = other.num_partitions > 0 ? other.num_partitions : default_np;
    return a == b;
  }
  std::string ToString() const;
};

struct PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

/// One symbolic operator in the physical plan.
struct PlanNode {
  enum class Op {
    kSource,         // a bound distributed array (already materialized)
    kMap, kFlatMap, kFilter, kMapPartitions,   // narrow (1 input)
    kJoin, kCoGroup,                           // wide, 2 inputs
    kReduceByKey, kGroupByKey, kPartitionBy,   // wide, 1 input
    kUnion,                                    // 2 inputs, narrow
    kCollect,                                  // action (n inputs)
  };

  Op op = Op::kSource;
  std::string label;   // engine stage label, e.g. "zipTiles"
  std::string source;  // kSource only: the binding name
  std::vector<PlanNodePtr> inputs;

  /// Output placement; shuffles set kHashKey, narrow ops inherit it only
  /// when `preserves_partitioning` (they leave the key untouched).
  Partitioning partitioning;
  /// Number of components in the record key (0 = rows are not keyed).
  int key_arity = 0;
  /// Narrow op leaves row keys (and hence co-partitioning) intact.
  bool preserves_partitioning = false;
  /// This node folds each group of its groupByKey/cogroup input with an
  /// associative combine -- the signature SAC-W01 looks for.
  bool folds_group = false;
  /// Output is materialized and reusable without recompute (sources are;
  /// the engine evaluates eagerly, so its intermediates are too, but a
  /// re-planned loop body rebuilds them every iteration).
  bool cached = false;
  /// Node is compiled inside an iterative-loop body (DIABLO front end).
  bool in_loop = false;
  /// Source position that motivated this operator (comprehension /
  /// generator position), for diagnostics.
  comp::Pos pos;

  bool is_shuffle() const {
    return op == Op::kJoin || op == Op::kCoGroup || op == Op::kReduceByKey ||
           op == Op::kGroupByKey || op == Op::kPartitionBy;
  }
  /// "join(2 in, hash(8), key=2)"-style one-liner.
  std::string ToString() const;
};

const char* PlanOpName(PlanNode::Op op);

/// Indented tree rendering of the DAG rooted at `root` (shared nodes are
/// printed once and referenced by label afterwards).
std::string PlanToString(const PlanNodePtr& root);

/// Builds symbolic plan nodes, recording every node created -- including
/// ones that end up unreachable from the root, which is exactly what the
/// dead-dataset lint (SAC-W04) needs to see.
class PlanBuilder {
 public:
  explicit PlanBuilder(comp::Pos default_pos = {}) : default_pos_(default_pos) {}

  PlanNodePtr Source(std::string name, int key_arity, comp::Pos pos = {});
  PlanNodePtr Narrow(PlanNode::Op op, std::string label, PlanNodePtr in,
                     int key_arity, bool preserves_partitioning = false);
  PlanNodePtr Shuffle(PlanNode::Op op, std::string label,
                      std::vector<PlanNodePtr> ins, int key_arity,
                      int num_partitions = -1);
  PlanNodePtr Collect(std::vector<PlanNodePtr> ins);

  const std::vector<PlanNodePtr>& nodes() const { return nodes_; }
  std::vector<PlanNodePtr> TakeNodes() { return std::move(nodes_); }

 private:
  PlanNodePtr Add(PlanNodePtr n);
  comp::Pos default_pos_;
  std::vector<PlanNodePtr> nodes_;
};

/// A compiled, executable query plan.
struct CompiledQuery {
  Strategy strategy = Strategy::kLocal;
  std::string explanation;  // one line: rule fired and why
  std::function<Result<QueryResult>(runtime::Engine*)> run;

  /// Symbolic DAG of the engine operators `run` will execute; nullptr for
  /// purely local evaluation (kLocal), which runs no engine operators.
  PlanNodePtr plan;
  /// Every symbolic node the strategy built (plan_nodes ⊇ reachable(plan)).
  std::vector<PlanNodePtr> plan_nodes;
};

}  // namespace sac::planner

#endif  // SAC_PLANNER_PLAN_H_
