// General translation strategies:
//   Section 5.2 -- queries that do not preserve tiling: replication sets
//                  I_f(K) + groupByKey over shuffled tiles
//   Section 4   -- coordinate-format (element-level) translation, also the
//                  DIABLO-style baseline used by the COO ablation
//   local fallback -- collect + reference evaluation for small inputs
#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/comp/eval.h"
#include "src/exec/scalar_fn.h"
#include "src/la/kernels.h"
#include "src/planner/planner.h"

namespace sac::planner {

using comp::Expr;
using comp::ExprPtr;
using comp::ReduceOp;
using exec::ConstEnv;
using exec::IntFn;
using exec::PredFn;
using exec::ScalarFn;
using runtime::Dataset;
using runtime::Engine;
using runtime::Value;
using runtime::ValueVec;
using runtime::VInt;
using runtime::VPair;
using storage::TiledMatrix;

namespace {

Status NotApplicable(const std::string& rule, const std::string& why) {
  return Status::PlanError(rule + " does not apply: " + why);
}

}  // namespace

// ===========================================================================
// Section 5.2: queries that do not preserve tiling
// ===========================================================================

Result<CompiledQuery> TryReplication(const QueryShape& shape,
                                     const Bindings& binds,
                                     const PlannerOptions& opts) {
  static const char* kRule = "replication (5.2)";
  if (shape.has_group_by) return NotApplicable(kRule, "query has group-by");
  if (shape.gens.size() != 1) {
    return NotApplicable(kRule, "needs exactly one generator");
  }
  if (!shape.index_eqs.empty()) {
    return NotApplicable(kRule, "index equalities present");
  }
  const GenInfo& gen = shape.gens[0];
  if (gen.idx.size() != 2 || gen.val.empty()) {
    return NotApplicable(kRule, "needs a matrix generator");
  }
  auto it = binds.find(gen.source);
  if (it == binds.end() || it->second.kind != Binding::Kind::kTiled) {
    return NotApplicable(kRule, "source is not a tiled matrix");
  }
  if (shape.builder != "tiled" || shape.builder_args.size() != 2) {
    return NotApplicable(kRule, "needs a tiled matrix output");
  }
  if (shape.head_key->kind != Expr::Kind::kTuple ||
      shape.head_key->children.size() != 2) {
    return NotApplicable(kRule, "head key is not an index pair");
  }

  ConstEnv consts;
  CollectScalarConsts(binds, &consts);
  // Output index functions f1, f2 over the input indices (integer
  // arithmetic, so % and / behave like the paper's examples).
  SAC_ASSIGN_OR_RETURN(
      IntFn f1, exec::CompileIntFn(
                    shape.InlineLets(shape.head_key->children[0]), gen.idx,
                    consts));
  SAC_ASSIGN_OR_RETURN(
      IntFn f2, exec::CompileIntFn(
                    shape.InlineLets(shape.head_key->children[1]), gen.idx,
                    consts));
  std::vector<PredFn> preds;
  for (const auto& g : shape.guards) {
    SAC_ASSIGN_OR_RETURN(PredFn p, exec::CompileIntPred(shape.InlineLets(g),
                                                        gen.idx, consts));
    preds.push_back(std::move(p));
  }
  // Element value function over (i, j, v).
  std::vector<std::string> vargs = gen.idx;
  vargs.push_back(gen.val);
  SAC_ASSIGN_OR_RETURN(ScalarFn fv,
                       exec::CompileScalarFn(shape.InlineLets(shape.head_val),
                                             vargs, consts));

  SAC_ASSIGN_OR_RETURN(int64_t out_rows,
                       EvalScalarInt(shape.builder_args[0], binds));
  SAC_ASSIGN_OR_RETURN(int64_t out_cols,
                       EvalScalarInt(shape.builder_args[1], binds));
  const TiledMatrix A = it->second.tiled;
  const int64_t N = A.block;

  CompiledQuery q;
  q.strategy = Strategy::kReplication;
  q.explanation =
      "5.2 replication: each tile is shuffled to the output tiles in its "
      "index image I_f(K), then grouped";
  {
    PlanBuilder pb(shape.pos);
    PlanNodePtr src_n = pb.Source(gen.source, 2, gen.pos);
    PlanNodePtr rep = pb.Narrow(PlanNode::Op::kFlatMap, "replicateToImage",
                                src_n, 2);
    PlanNodePtr grouped =
        pb.Shuffle(PlanNode::Op::kGroupByKey, "groupByDestTile", {rep}, 2);
    // Assembly places each gathered element structurally -- not an
    // associative fold, so SAC-W01 must not suggest reduceByKey here.
    q.plan = pb.Narrow(PlanNode::Op::kMap, "assembleShiftedTiles", grouped, 2,
                       /*preserves_partitioning=*/true);
    q.plan_nodes = pb.TakeNodes();
  }
  q.run = [=](Engine* eng) -> Result<QueryResult> {
    // Map side: compute each tile's destination set I_f(K) by evaluating
    // the index functions over the tile's elements (the paper's set
    // comprehension), then replicate the tile to those destinations.
    SAC_ASSIGN_OR_RETURN(
        Dataset replicated,
        eng->FlatMap(
            A.tiles,
            [=](const Value& row, ValueVec* out) {
              const int64_t bi = row.At(0).At(0).AsInt();
              const int64_t bj = row.At(0).At(1).AsInt();
              const la::Tile& t = row.At(1).AsTile();
              std::unordered_set<Value, runtime::ValueHash,
                                 runtime::ValueEq>
                  dests;
              for (int64_t i = 0; i < t.rows(); ++i) {
                for (int64_t j = 0; j < t.cols(); ++j) {
                  int64_t iargs[2] = {bi * N + i, bj * N + j};
                  bool pass = true;
                  for (const auto& p : preds) {
                    if (!p(iargs)) {
                      pass = false;
                      break;
                    }
                  }
                  if (!pass) continue;
                  const int64_t o1 = f1(iargs), o2 = f2(iargs);
                  if (o1 < 0 || o1 >= out_rows || o2 < 0 || o2 >= out_cols) {
                    continue;
                  }
                  dests.insert(runtime::VIdx2(o1 / N, o2 / N));
                }
              }
              for (const Value& d : dests) {
                out->push_back(VPair(d, VPair(row.At(0), row.At(1))));
              }
            },
            "replicateToImage"));
    SAC_ASSIGN_OR_RETURN(Dataset grouped, eng->GroupByKey(replicated));
    // Reduce side: assemble each output tile from the gathered inputs.
    SAC_ASSIGN_OR_RETURN(
        Dataset out,
        eng->Map(
            grouped,
            [=](const Value& row) {
              const int64_t K1 = row.At(0).At(0).AsInt();
              const int64_t K2 = row.At(0).At(1).AsInt();
              la::Tile ot(std::min(N, out_rows - K1 * N),
                          std::min(N, out_cols - K2 * N));
              for (const Value& src : row.At(1).AsList()) {
                const int64_t bi = src.At(0).At(0).AsInt();
                const int64_t bj = src.At(0).At(1).AsInt();
                const la::Tile& t = src.At(1).AsTile();
                for (int64_t i = 0; i < t.rows(); ++i) {
                  for (int64_t j = 0; j < t.cols(); ++j) {
                    int64_t iargs[2] = {bi * N + i, bj * N + j};
                    bool pass = true;
                    for (const auto& p : preds) {
                      if (!p(iargs)) {
                        pass = false;
                        break;
                      }
                    }
                    if (!pass) continue;
                    const int64_t o1 = f1(iargs), o2 = f2(iargs);
                    if (o1 / N != K1 || o2 / N != K2) continue;
                    if (o1 < 0 || o1 >= out_rows || o2 < 0 ||
                        o2 >= out_cols) {
                      continue;
                    }
                    const double dv[3] = {static_cast<double>(iargs[0]),
                                          static_cast<double>(iargs[1]),
                                          t.At(i, j)};
                    ot.Set(o1 % N, o2 % N, fv(dv));
                  }
                }
              }
              return VPair(row.At(0), Value::TileVal(std::move(ot)));
            },
            "assembleShiftedTiles"));
    QueryResult r;
    r.kind = QueryResult::Kind::kTiled;
    r.tiled = TiledMatrix{out_rows, out_cols, N, out};
    return r;
  };
  return q;
}

// ===========================================================================
// Section 4: coordinate-format translation
// ===========================================================================

namespace {

/// Element-level view of a bound array: rows ((i,j),v) or (i,v).
Result<Dataset> Elements(Engine* eng, const Binding& b) {
  switch (b.kind) {
    case Binding::Kind::kTiled: {
      SAC_ASSIGN_OR_RETURN(storage::CooMatrix coo,
                           storage::ToCoo(eng, b.tiled));
      return coo.entries;
    }
    case Binding::Kind::kCoo:
      return b.coo.entries;
    case Binding::Kind::kBlockVector: {
      const int64_t block = b.vec.block;
      return eng->FlatMap(
          b.vec.blocks,
          [block](const Value& row, ValueVec* out) {
            const int64_t bi = row.At(0).AsInt();
            const la::Tile& t = row.At(1).AsTile();
            for (int64_t j = 0; j < t.cols(); ++j) {
              out->push_back(
                  VPair(VInt(bi * block + j), Value::Double(t.At(0, j))));
            }
          },
          "sparsifyVector");
    }
    default:
      return Status::PlanError("binding has no element view");
  }
}

double ScalarMonoidApply(ReduceOp op, double a, double b) {
  switch (op) {
    case ReduceOp::kProd:
      return a * b;
    case ReduceOp::kMin:
      return std::min(a, b);
    case ReduceOp::kMax:
      return std::max(a, b);
    default:
      return a + b;
  }
}

}  // namespace

Result<CompiledQuery> TryCoo(const QueryShape& shape, const Bindings& binds,
                             const PlannerOptions& opts) {
  static const char* kRule = "coordinate translation (4)";
  if (shape.gens.empty() || shape.gens.size() > 2) {
    return NotApplicable(kRule, "needs one or two generators");
  }
  if (shape.builder != "tiled" && shape.builder != "rdd") {
    return NotApplicable(kRule, "unsupported builder");
  }
  const bool out_is_rdd = shape.builder == "rdd";
  const bool out_is_vector =
      !out_is_rdd && shape.builder_args.size() == 1;
  int64_t out_rows = 0, out_cols = 1;
  if (!out_is_rdd) {
    SAC_ASSIGN_OR_RETURN(out_rows, EvalScalarInt(shape.builder_args[0],
                                                 binds));
    if (!out_is_vector) {
      SAC_ASSIGN_OR_RETURN(out_cols, EvalScalarInt(shape.builder_args[1],
                                                   binds));
    }
  }

  // Common block size for the output (defaults to 64 for pure-COO inputs).
  int64_t block = 64;
  for (const GenInfo& g : shape.gens) {
    auto it = binds.find(g.source);
    if (it == binds.end()) return NotApplicable(kRule, "unbound source");
    if (!it->second.is_distributed()) {
      return NotApplicable(kRule, "source is not distributed");
    }
    if (it->second.kind == Binding::Kind::kTiled) {
      block = it->second.tiled.block;
    } else if (it->second.kind == Binding::Kind::kBlockVector) {
      block = it->second.vec.block;
    }
  }

  ConstEnv consts;
  CollectScalarConsts(binds, &consts);

  // Element variables of all generators (indices then value, per gen).
  std::vector<std::string> all_vars;
  for (const GenInfo& g : shape.gens) {
    for (const auto& v : g.idx) all_vars.push_back(v);
    if (g.val.empty()) return NotApplicable(kRule, "wildcard value");
    all_vars.push_back(g.val);
  }

  // Key expressions (integers over all element vars -- the value vars are
  // not allowed in keys, which CompileIntFn enforces by failing).
  std::vector<ExprPtr> key_exprs;
  if (shape.head_key->kind == Expr::Kind::kTuple) {
    for (const auto& c : shape.head_key->children) {
      key_exprs.push_back(shape.InlineLets(c));
    }
  } else {
    key_exprs.push_back(shape.InlineLets(shape.head_key));
  }
  if (!out_is_rdd && key_exprs.size() != (out_is_vector ? 1u : 2u)) {
    return NotApplicable(kRule, "key arity mismatch");
  }
  std::vector<std::string> int_vars;
  for (const GenInfo& g : shape.gens) {
    for (const auto& v : g.idx) int_vars.push_back(v);
  }
  std::vector<IntFn> key_fns;
  for (const auto& ke : key_exprs) {
    SAC_ASSIGN_OR_RETURN(IntFn f,
                         exec::CompileIntFn(ke, int_vars, consts));
    key_fns.push_back(std::move(f));
  }
  std::vector<PredFn> preds;
  for (const auto& g : shape.guards) {
    SAC_ASSIGN_OR_RETURN(PredFn p, exec::CompileIntPred(shape.InlineLets(g),
                                                        int_vars, consts));
    preds.push_back(std::move(p));
  }

  // Aggregations (if grouped) or a plain value function.
  struct CooAgg {
    ReduceOp op;
    ScalarFn g;
  };
  std::vector<CooAgg> aggs;
  ScalarFn finalize_fn;
  bool finalize_identity = true;
  ScalarFn value_fn;
  if (shape.has_group_by) {
    // The head key must equal the group-by key vars.
    std::vector<std::string> key_vars;
    for (const auto& ke : key_exprs) {
      if (ke->kind != Expr::Kind::kVar) {
        return NotApplicable(kRule, "grouped key must be variables");
      }
      key_vars.push_back(ke->str_val);
    }
    if (key_vars != shape.group_key_vars) {
      return NotApplicable(kRule, "head key differs from group key");
    }
    // Decompose aggregates (same analysis as 5.3, at scalar level).
    ExprPtr hv = shape.InlineLets(shape.head_val);
    std::function<Result<ExprPtr>(const ExprPtr&)> extract =
        [&](const ExprPtr& e) -> Result<ExprPtr> {
      if (e->kind == Expr::Kind::kReduce) {
        ReduceOp op = e->reduce_op;
        ExprPtr operand = e->children[0];
        if (op == ReduceOp::kCount) {
          op = ReduceOp::kSum;
          operand = Expr::Int(1, e->pos);
        }
        if (op != ReduceOp::kSum && op != ReduceOp::kProd &&
            op != ReduceOp::kMin && op != ReduceOp::kMax) {
          return Status::PlanError("unsupported monoid in COO plan");
        }
        SAC_ASSIGN_OR_RETURN(ScalarFn g, exec::CompileScalarFn(
                                             operand, all_vars, consts));
        const size_t k = aggs.size();
        aggs.push_back(CooAgg{op, std::move(g)});
        return Expr::Var("$agg" + std::to_string(k), e->pos);
      }
      if (e->children.empty()) return e;
      auto copy = std::make_shared<Expr>(*e);
      for (auto& c : copy->children) {
        SAC_ASSIGN_OR_RETURN(c, extract(c));
      }
      return ExprPtr(copy);
    };
    SAC_ASSIGN_OR_RETURN(ExprPtr fin_expr, extract(hv));
    if (aggs.empty()) return NotApplicable(kRule, "group-by without aggregate");
    std::vector<std::string> agg_args;
    for (size_t k = 0; k < aggs.size(); ++k) {
      agg_args.push_back("$agg" + std::to_string(k));
    }
    SAC_ASSIGN_OR_RETURN(finalize_fn, exec::CompileScalarFn(fin_expr,
                                                            agg_args,
                                                            consts));
    finalize_identity = aggs.size() == 1 &&
                        fin_expr->kind == Expr::Kind::kVar &&
                        fin_expr->str_val == "$agg0";
  } else {
    SAC_ASSIGN_OR_RETURN(value_fn, exec::CompileScalarFn(
                                       shape.InlineLets(shape.head_val),
                                       all_vars, consts));
  }

  // Join analysis for two generators: every cross-generator equality
  // becomes one component of a composite join key (rule 14 generalized).
  std::vector<std::pair<size_t, size_t>> join_pos;  // (pos in A, pos in B)
  if (shape.gens.size() == 2) {
    auto pos_in = [&](size_t g, const std::string& v) -> int {
      for (size_t p = 0; p < shape.gens[g].idx.size(); ++p) {
        if (shape.gens[g].idx[p] == v) return static_cast<int>(p);
      }
      return -1;
    };
    for (const auto& [ea, eb] : shape.index_eqs) {
      int a0 = pos_in(0, ea), b1 = pos_in(1, eb);
      int a1 = pos_in(0, eb), b0 = pos_in(1, ea);
      if (a0 >= 0 && b1 >= 0) {
        join_pos.emplace_back(a0, b1);
      } else if (a1 >= 0 && b0 >= 0) {
        join_pos.emplace_back(a1, b0);
      } else {
        return NotApplicable(kRule, "equality does not join the generators");
      }
    }
    if (join_pos.empty()) {
      return NotApplicable(kRule, "no join equality between the generators");
    }
  } else if (!shape.index_eqs.empty()) {
    // Single-generator equalities become guards.
    for (const auto& [a, b] : shape.index_eqs) {
      SAC_ASSIGN_OR_RETURN(
          PredFn p,
          exec::CompileIntPred(
              Expr::Binary(comp::BinOp::kEq, Expr::Var(a), Expr::Var(b),
                           shape.pos),
              int_vars, consts));
      preds.push_back(std::move(p));
    }
  }

  const QueryShape sh = shape;  // captured copies
  const Bindings bnds = binds;
  const std::vector<CooAgg> aggs_c = aggs;
  const std::vector<IntFn> key_fns_c = key_fns;
  const std::vector<PredFn> preds_c = preds;
  const std::vector<std::pair<size_t, size_t>> jpos = join_pos;
  const ScalarFn value_fn_c = value_fn;
  const ScalarFn finalize_c = finalize_fn;
  const bool fin_id = finalize_identity;

  CompiledQuery q;
  q.strategy = Strategy::kCoo;
  q.explanation =
      "Section 4 coordinate format: element-level " +
      std::string(shape.gens.size() == 2 ? "join" : "map") +
      (shape.has_group_by ? " + reduceByKey" : "") + ", then re-tile";
  {
    PlanBuilder pb(shape.pos);
    auto elem = [&](size_t g) {
      return pb.Source(shape.gens[g].source,
                       shape.gens[g].idx.size() == 1 ? 1 : 2,
                       shape.gens[g].pos);
    };
    PlanNodePtr env_rows;
    if (shape.gens.size() == 1) {
      env_rows = pb.Narrow(PlanNode::Op::kMap, "elementEnv", elem(0), 0);
    } else {
      PlanNodePtr ka = pb.Narrow(PlanNode::Op::kMap, "keyByJoinIndex",
                                 elem(0), 1);
      PlanNodePtr kb = pb.Narrow(PlanNode::Op::kMap, "keyByJoinIndex",
                                 elem(1), 1);
      PlanNodePtr joined =
          pb.Shuffle(PlanNode::Op::kJoin, "joinElements", {ka, kb}, 1);
      env_rows = pb.Narrow(PlanNode::Op::kMap, "joinedEnv", joined, 0);
    }
    const int out_key = static_cast<int>(key_exprs.size());
    PlanNodePtr result = pb.Narrow(PlanNode::Op::kFlatMap, "computeElements",
                                   env_rows, out_key);
    if (shape.has_group_by) {
      PlanNodePtr reduced = pb.Shuffle(PlanNode::Op::kReduceByKey,
                                       "reduceElements", {result}, out_key);
      result = pb.Narrow(PlanNode::Op::kMap, "finalizeElements", reduced,
                         out_key, /*preserves_partitioning=*/true);
    }
    if (out_is_rdd) {
      q.plan = pb.Collect({result});
    } else if (out_is_vector) {
      PlanNodePtr kblk = pb.Narrow(PlanNode::Op::kMap, "keyByBlock",
                                   result, 1);
      PlanNodePtr gp =
          pb.Shuffle(PlanNode::Op::kGroupByKey, "groupByBlock", {kblk}, 1);
      q.plan = pb.Narrow(PlanNode::Op::kMap, "buildBlocks", gp, 1,
                         /*preserves_partitioning=*/true);
    } else {
      PlanNodePtr kt = pb.Narrow(PlanNode::Op::kMap, "keyByTile", result, 2);
      PlanNodePtr gp =
          pb.Shuffle(PlanNode::Op::kGroupByKey, "groupByTile", {kt}, 2);
      q.plan = pb.Narrow(PlanNode::Op::kMap, "buildTiles", gp, 2,
                         /*preserves_partitioning=*/true);
    }
    q.plan_nodes = pb.TakeNodes();
  }
  q.run = [=](Engine* eng) -> Result<QueryResult> {
    // Build the element-record dataset with rows mapping to a flat tuple
    // (idx..., val, idx..., val) environment.
    auto flatten1 = [](const Value& row, size_t nidx, ValueVec* env) {
      if (nidx == 1) {
        env->push_back(row.At(0));
      } else {
        env->push_back(row.At(0).At(0));
        env->push_back(row.At(0).At(1));
      }
      env->push_back(row.At(1));
    };
    Dataset env_rows;
    const size_t nidx0 = sh.gens[0].idx.size();
    SAC_ASSIGN_OR_RETURN(Dataset e0,
                         Elements(eng, bnds.at(sh.gens[0].source)));
    if (sh.gens.size() == 1) {
      SAC_ASSIGN_OR_RETURN(
          env_rows,
          eng->Map(
              e0,
              [flatten1, nidx0](const Value& row) {
                ValueVec env;
                flatten1(row, nidx0, &env);
                return runtime::VTuple(std::move(env));
              },
              "elementEnv"));
    } else {
      const size_t nidx1 = sh.gens[1].idx.size();
      SAC_ASSIGN_OR_RETURN(Dataset e1,
                           Elements(eng, bnds.at(sh.gens[1].source)));
      // Rule (14): key both sides by the (composite) join index, then join.
      auto key_by = [&](Dataset d, size_t nidx, bool left) -> Result<Dataset> {
        std::vector<size_t> positions;
        for (const auto& [pa, pb] : jpos) {
          positions.push_back(left ? pa : pb);
        }
        return eng->Map(
            d,
            [nidx, positions](const Value& row) {
              ValueVec key;
              for (size_t p : positions) {
                key.push_back(nidx == 1 ? row.At(0)
                                        : row.At(0).AsTuple()[p]);
              }
              Value k = key.size() == 1 ? key[0]
                                        : runtime::VTuple(std::move(key));
              return VPair(std::move(k), row);
            },
            "keyByJoinIndex");
      };
      SAC_ASSIGN_OR_RETURN(Dataset ka, key_by(e0, nidx0, true));
      SAC_ASSIGN_OR_RETURN(Dataset kb, key_by(e1, nidx1, false));
      SAC_ASSIGN_OR_RETURN(Dataset joined, eng->Join(ka, kb));
      SAC_ASSIGN_OR_RETURN(
          env_rows,
          eng->Map(
              joined,
              [flatten1, nidx0, nidx1](const Value& row) {
                ValueVec env;
                flatten1(row.At(1).At(0), nidx0, &env);
                flatten1(row.At(1).At(1), nidx1, &env);
                return runtime::VTuple(std::move(env));
              },
              "joinedEnv"));
    }

    // Map each environment row to (outkey, value-or-partials).
    const size_t num_int = int_vars.size();
    const bool grouped = sh.has_group_by;
    SAC_ASSIGN_OR_RETURN(
        Dataset keyed,
        eng->FlatMap(
            env_rows,
            [=](const Value& row, ValueVec* out) {
              const ValueVec& env = row.AsTuple();
              // Integer args: indices per generator order; double args:
              // everything.
              int64_t iargs[4];
              double dargs[6];
              size_t ii = 0;
              for (size_t g = 0, e = 0; g < sh.gens.size(); ++g) {
                for (size_t p = 0; p < sh.gens[g].idx.size(); ++p, ++e) {
                  iargs[ii++] = env[e + g].AsInt();
                }
              }
              for (size_t e = 0; e < env.size(); ++e) {
                dargs[e] = env[e].AsDouble();
              }
              (void)num_int;
              for (const auto& p : preds_c) {
                if (!p(iargs)) return;
              }
              ValueVec key;
              for (const auto& f : key_fns_c) {
                key.push_back(VInt(f(iargs)));
              }
              Value key_v = key.size() == 1 ? key[0]
                                            : runtime::VTuple(std::move(key));
              if (grouped) {
                ValueVec partials;
                for (const auto& a : aggs_c) {
                  partials.push_back(runtime::VDouble(a.g(dargs)));
                }
                out->push_back(
                    VPair(key_v, runtime::VTuple(std::move(partials))));
              } else {
                out->push_back(
                    VPair(key_v, runtime::VDouble(value_fn_c(dargs))));
              }
            },
            "computeElements"));

    Dataset result_elems = keyed;
    if (grouped) {
      SAC_ASSIGN_OR_RETURN(
          Dataset reduced,
          eng->ReduceByKey(keyed, [aggs_c](const Value& a, const Value& b) {
            ValueVec out;
            for (size_t k = 0; k < aggs_c.size(); ++k) {
              out.push_back(runtime::VDouble(
                  ScalarMonoidApply(aggs_c[k].op, a.At(k).AsDouble(),
                                    b.At(k).AsDouble())));
            }
            return runtime::VTuple(std::move(out));
          }));
      SAC_ASSIGN_OR_RETURN(
          result_elems,
          eng->Map(
              reduced,
              [finalize_c, fin_id](const Value& row) {
                if (fin_id) return VPair(row.At(0), row.At(1).At(0));
                std::vector<double> args;
                for (const Value& v : row.At(1).AsTuple()) {
                  args.push_back(v.AsDouble());
                }
                return VPair(row.At(0),
                             runtime::VDouble(finalize_c(args.data())));
              },
              "finalizeElements"));
    }

    QueryResult r;
    if (out_is_rdd) {
      SAC_ASSIGN_OR_RETURN(ValueVec rows, eng->Collect(result_elems));
      r.kind = QueryResult::Kind::kValue;
      r.value = Value::List(std::move(rows));
      return r;
    }
    if (out_is_vector) {
      // Assemble blocks: (i, v) -> (i/N, offsets) via groupByKey.
      const int64_t N = block, size = out_rows;
      SAC_ASSIGN_OR_RETURN(
          Dataset keyed_blocks,
          eng->Map(
              result_elems,
              [N](const Value& row) {
                const int64_t i = row.At(0).AsInt();
                return VPair(VInt(i / N),
                             VPair(VInt(i % N), row.At(1)));
              },
              "keyByBlock"));
      SAC_ASSIGN_OR_RETURN(Dataset grouped_b, eng->GroupByKey(keyed_blocks));
      SAC_ASSIGN_OR_RETURN(
          Dataset blocks,
          eng->Map(
              grouped_b,
              [N, size](const Value& row) {
                const int64_t bi = row.At(0).AsInt();
                la::Tile t(1, std::min(N, size - bi * N));
                for (const Value& kv : row.At(1).AsList()) {
                  const int64_t off = kv.At(0).AsInt();
                  if (off >= 0 && off < t.cols()) {
                    t.Set(0, off, kv.At(1).AsDouble());
                  }
                }
                return VPair(row.At(0), Value::TileVal(std::move(t)));
              },
              "buildBlocks"));
      r.kind = QueryResult::Kind::kBlockVector;
      r.vec = storage::BlockVector{out_rows, block, blocks};
      return r;
    }
    storage::CooMatrix coo{out_rows, out_cols, result_elems};
    SAC_ASSIGN_OR_RETURN(TiledMatrix m,
                         storage::TiledFromCoo(eng, coo, block));
    r.kind = QueryResult::Kind::kTiled;
    r.tiled = std::move(m);
    return r;
  };
  return q;
}

// ===========================================================================
// Local fallback
// ===========================================================================

Result<CompiledQuery> LocalFallbackPlan(const comp::ExprPtr& query,
                                        const Bindings& binds,
                                        const PlannerOptions& opts) {
  // Total cells across the distributed inputs this query mentions.
  int64_t cells = 0;
  for (const std::string& v : comp::FreeVars(query)) {
    auto it = binds.find(v);
    if (it == binds.end()) continue;
    switch (it->second.kind) {
      case Binding::Kind::kTiled:
        cells += it->second.tiled.rows * it->second.tiled.cols;
        break;
      case Binding::Kind::kBlockVector:
        cells += it->second.vec.size;
        break;
      case Binding::Kind::kCoo:
        cells += it->second.coo.rows * it->second.coo.cols;
        break;
      default:
        break;
    }
  }
  if (cells > opts.local_fallback_max_cells) {
    return Status::PlanError(
        "local fallback refused: inputs have " + std::to_string(cells) +
        " cells (limit " + std::to_string(opts.local_fallback_max_cells) +
        ")");
  }

  const Bindings bnds = binds;
  const comp::ExprPtr qy = query;
  CompiledQuery q;
  q.strategy = Strategy::kLocalFallback;
  q.explanation = "collected distributed inputs and ran the reference "
                  "evaluator (inputs small enough)";
  {
    PlanBuilder pb(query->pos);
    std::vector<PlanNodePtr> srcs;
    for (const std::string& v : comp::FreeVars(query)) {
      auto bit = binds.find(v);
      if (bit == binds.end() || !bit->second.is_distributed()) continue;
      const int key = bit->second.kind == Binding::Kind::kBlockVector ? 1 : 2;
      srcs.push_back(pb.Source(v, key, query->pos));
    }
    if (!srcs.empty()) {
      q.plan = pb.Collect(std::move(srcs));
      q.plan_nodes = pb.TakeNodes();
    }
  }
  q.run = [qy, bnds](Engine* eng) -> Result<QueryResult> {
    comp::Evaluator ev;
    int64_t block = 64;
    for (const auto& [name, b] : bnds) {
      switch (b.kind) {
        case Binding::Kind::kScalar:
        case Binding::Kind::kLocal:
          ev.Bind(name, b.value);
          break;
        case Binding::Kind::kTiled: {
          SAC_ASSIGN_OR_RETURN(ValueVec rows,
                               storage::SparsifyLocal(eng, b.tiled));
          ev.Bind(name, Value::List(std::move(rows)));
          block = b.tiled.block;
          break;
        }
        case Binding::Kind::kBlockVector: {
          SAC_ASSIGN_OR_RETURN(std::vector<double> vec,
                               storage::ToLocalVector(eng, b.vec));
          ValueVec rows;
          for (size_t i = 0; i < vec.size(); ++i) {
            rows.push_back(VPair(VInt(static_cast<int64_t>(i)),
                                 runtime::VDouble(vec[i])));
          }
          ev.Bind(name, Value::List(std::move(rows)));
          block = b.vec.block;
          break;
        }
        case Binding::Kind::kCoo: {
          SAC_ASSIGN_OR_RETURN(ValueVec rows, eng->Collect(b.coo.entries));
          ev.Bind(name, Value::List(std::move(rows)));
          break;
        }
      }
    }
    SAC_ASSIGN_OR_RETURN(Value v, ev.Eval(qy));
    QueryResult r;
    // Re-distribute tiled results so callers see the declared storage.
    if (qy->kind == Expr::Kind::kBuild && qy->str_val == "tiled") {
      if (v.is_tile()) {
        SAC_ASSIGN_OR_RETURN(TiledMatrix m,
                             storage::FromLocal(eng, v.AsTile(), block));
        r.kind = QueryResult::Kind::kTiled;
        r.tiled = std::move(m);
        return r;
      }
      if (v.is_list()) {
        std::vector<double> dense(v.AsList().size());
        for (size_t i = 0; i < dense.size(); ++i) {
          dense[i] = v.AsList()[i].At(1).AsDouble();
        }
        SAC_ASSIGN_OR_RETURN(storage::BlockVector bv,
                             storage::VectorFromLocal(eng, dense, block));
        r.kind = QueryResult::Kind::kBlockVector;
        r.vec = std::move(bv);
        return r;
      }
    }
    r.kind = QueryResult::Kind::kValue;
    r.value = std::move(v);
    return r;
  };
  return q;
}

}  // namespace sac::planner
