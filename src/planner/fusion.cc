#include "src/planner/fusion.h"

#include <optional>

namespace sac::planner {

using comp::BinOp;
using comp::Expr;
using comp::ExprPtr;
using comp::UnOp;

namespace {

/// Constant-folds expressions over literals and bound scalars. Only the
/// exact operators whose folded value is the value the closure compiler
/// would compute (+, -, *, /, unary minus) participate, so dispatching on
/// the folded coefficient cannot change results.
std::optional<double> EvalConst(const ExprPtr& e,
                                const exec::ConstEnv& consts) {
  switch (e->kind) {
    case Expr::Kind::kIntLit:
      return static_cast<double>(e->int_val);
    case Expr::Kind::kDoubleLit:
      return e->double_val;
    case Expr::Kind::kVar: {
      auto it = consts.find(e->str_val);
      if (it == consts.end()) return std::nullopt;
      return it->second;
    }
    case Expr::Kind::kUnary: {
      if (e->un_op != UnOp::kNeg) return std::nullopt;
      auto v = EvalConst(e->children[0], consts);
      if (!v) return std::nullopt;
      return -*v;
    }
    case Expr::Kind::kBinary: {
      auto l = EvalConst(e->children[0], consts);
      auto r = EvalConst(e->children[1], consts);
      if (!l || !r) return std::nullopt;
      switch (e->bin_op) {
        case BinOp::kAdd: return *l + *r;
        case BinOp::kSub: return *l - *r;
        case BinOp::kMul: return *l * *r;
        case BinOp::kDiv: return *l / *r;
        default: return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

bool IsVar(const ExprPtr& e, const std::string& name) {
  return e->kind == Expr::Kind::kVar && e->str_val == name;
}

/// One linear term: coef * args[arg]. Plain vars, c*v, v*c, and unary
/// minus of any of those. `plain` distinguishes a bare variable (coef
/// exactly 1 by construction, safe for kAdd/kSub dispatch) from a folded
/// coefficient.
struct Term {
  int arg = -1;
  double coef = 1.0;
  bool plain = false;
};

std::optional<Term> ParseTerm(const ExprPtr& e, const std::string& arg0,
                              const std::string& arg1,
                              const exec::ConstEnv& consts) {
  if (IsVar(e, arg0)) return Term{0, 1.0, true};
  if (IsVar(e, arg1)) return Term{1, 1.0, true};
  if (e->kind == Expr::Kind::kUnary && e->un_op == UnOp::kNeg) {
    auto t = ParseTerm(e->children[0], arg0, arg1, consts);
    if (!t) return std::nullopt;
    // -(c*v) folds to (-c)*v: exact sign flip, not a new rounding.
    return Term{t->arg, -t->coef, false};
  }
  if (e->kind == Expr::Kind::kBinary && e->bin_op == BinOp::kMul) {
    for (int side = 0; side < 2; ++side) {
      const ExprPtr& var = e->children[side];
      const ExprPtr& c = e->children[1 - side];
      const int arg = IsVar(var, arg0) ? 0 : IsVar(var, arg1) ? 1 : -1;
      if (arg < 0) continue;
      auto v = EvalConst(c, consts);
      if (!v) continue;
      return Term{arg, *v, false};
    }
  }
  return std::nullopt;
}

uint64_t CountFlops(const ExprPtr& e) {
  uint64_t n = 0;
  if (e->kind == Expr::Kind::kBinary || e->kind == Expr::Kind::kUnary ||
      e->kind == Expr::Kind::kCall) {
    n = 1;
  }
  for (const auto& c : e->children) n += CountFlops(c);
  return n == 0 ? 1 : n;
}

}  // namespace

ZipPattern MatchZipPattern(const ExprPtr& hv, const std::string& arg0,
                           const std::string& arg1,
                           const exec::ConstEnv& consts) {
  ZipPattern p;
  p.flops_per_element = CountFlops(hv);
  if (hv->kind != Expr::Kind::kBinary) return p;

  // a * b (Hadamard), either operand order.
  if (hv->bin_op == BinOp::kMul) {
    if ((IsVar(hv->children[0], arg0) && IsVar(hv->children[1], arg1)) ||
        (IsVar(hv->children[0], arg1) && IsVar(hv->children[1], arg0))) {
      p.kind = ZipPattern::Kind::kMul;
      p.flops_per_element = 1;
    }
    return p;
  }
  if (hv->bin_op != BinOp::kAdd && hv->bin_op != BinOp::kSub) return p;

  auto lt = ParseTerm(hv->children[0], arg0, arg1, consts);
  auto rt = ParseTerm(hv->children[1], arg0, arg1, consts);
  if (!lt || !rt || lt->arg == rt->arg) return p;
  const bool sub = hv->bin_op == BinOp::kSub;

  // Plain-variable forms keep the dedicated one-op kernels. `a - b` with
  // reversed operands still needs the sign, so it drops to kAxpby.
  if (lt->plain && rt->plain) {
    if (!sub) {
      p.kind = ZipPattern::Kind::kAdd;  // addition commutes bitwise
      p.flops_per_element = 1;
      return p;
    }
    if (lt->arg == 0) {
      p.kind = ZipPattern::Kind::kSub;
      p.flops_per_element = 1;
      return p;
    }
  }

  // General linear form alpha*arg0 + beta*arg1. Subtraction folds into
  // the right coefficient's sign (a - c*b == a + (-c)*b bitwise).
  if (sub) rt->coef = -rt->coef;
  p.kind = ZipPattern::Kind::kAxpby;
  p.alpha = lt->arg == 0 ? lt->coef : rt->coef;
  p.beta = lt->arg == 0 ? rt->coef : lt->coef;
  p.flops_per_element = 3;
  return p;
}

MapPattern MatchMapPattern(const ExprPtr& hv, const std::string& arg,
                           const exec::ConstEnv& consts) {
  MapPattern p;
  p.flops_per_element = CountFlops(hv);
  if (IsVar(hv, arg)) {
    p.kind = MapPattern::Kind::kIdentity;
    p.flops_per_element = 0;
    return p;
  }
  auto t = ParseTerm(hv, arg, arg, consts);
  if (t && !t->plain) {
    p.kind = MapPattern::Kind::kScale;
    p.alpha = t->coef;
    p.flops_per_element = 1;
  }
  return p;
}

}  // namespace sac::planner
