#include "src/planner/plan.h"

#include <sstream>
#include <unordered_map>

namespace sac::planner {

const char* PlanOpName(PlanNode::Op op) {
  switch (op) {
    case PlanNode::Op::kSource: return "source";
    case PlanNode::Op::kMap: return "map";
    case PlanNode::Op::kFlatMap: return "flatMap";
    case PlanNode::Op::kFilter: return "filter";
    case PlanNode::Op::kMapPartitions: return "mapPartitions";
    case PlanNode::Op::kJoin: return "join";
    case PlanNode::Op::kCoGroup: return "cogroup";
    case PlanNode::Op::kReduceByKey: return "reduceByKey";
    case PlanNode::Op::kGroupByKey: return "groupByKey";
    case PlanNode::Op::kPartitionBy: return "partitionBy";
    case PlanNode::Op::kUnion: return "union";
    case PlanNode::Op::kCollect: return "collect";
  }
  return "?";
}

std::string Partitioning::ToString() const {
  if (kind == Kind::kNone) return "none";
  std::string s = "hash(";
  s += num_partitions < 0 ? "default" : std::to_string(num_partitions);
  return s + ")";
}

std::string PlanNode::ToString() const {
  std::ostringstream os;
  os << PlanOpName(op);
  if (op == Op::kSource) {
    os << "[" << source << "]";
  } else if (!label.empty()) {
    os << "[" << label << "]";
  }
  os << " part=" << partitioning.ToString() << " key=" << key_arity;
  if (preserves_partitioning) os << " preserves";
  if (folds_group) os << " folds-group";
  if (cached) os << " cached";
  if (in_loop) os << " in-loop";
  return os.str();
}

namespace {

void PrintTree(const PlanNodePtr& node, int depth,
               std::unordered_map<const PlanNode*, int>* seen,
               std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  auto it = seen->find(node.get());
  if (it != seen->end()) {
    *os << "(see #" << it->second << ")\n";
    return;
  }
  const int id = static_cast<int>(seen->size()) + 1;
  (*seen)[node.get()] = id;
  *os << "#" << id << " " << node->ToString() << "\n";
  for (const PlanNodePtr& in : node->inputs) {
    PrintTree(in, depth + 1, seen, os);
  }
}

}  // namespace

std::string PlanToString(const PlanNodePtr& root) {
  if (!root) return "(no plan)\n";
  std::ostringstream os;
  std::unordered_map<const PlanNode*, int> seen;
  PrintTree(root, 0, &seen, &os);
  return os.str();
}

PlanNodePtr PlanBuilder::Add(PlanNodePtr n) {
  if (!n->pos.IsSet()) n->pos = default_pos_;
  nodes_.push_back(n);
  return n;
}

PlanNodePtr PlanBuilder::Source(std::string name, int key_arity,
                                comp::Pos pos) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanNode::Op::kSource;
  n->source = std::move(name);
  n->key_arity = key_arity;
  n->cached = true;  // bound arrays are materialized
  n->pos = pos;
  return Add(std::move(n));
}

PlanNodePtr PlanBuilder::Narrow(PlanNode::Op op, std::string label,
                                PlanNodePtr in, int key_arity,
                                bool preserves_partitioning) {
  auto n = std::make_shared<PlanNode>();
  n->op = op;
  n->label = std::move(label);
  n->key_arity = key_arity;
  n->preserves_partitioning = preserves_partitioning;
  if (preserves_partitioning) n->partitioning = in->partitioning;
  n->inputs.push_back(std::move(in));
  return Add(std::move(n));
}

PlanNodePtr PlanBuilder::Shuffle(PlanNode::Op op, std::string label,
                                 std::vector<PlanNodePtr> ins, int key_arity,
                                 int num_partitions) {
  auto n = std::make_shared<PlanNode>();
  n->op = op;
  n->label = std::move(label);
  n->key_arity = key_arity;
  n->inputs = std::move(ins);
  n->partitioning = Partitioning{Partitioning::Kind::kHashKey, num_partitions};
  return Add(std::move(n));
}

PlanNodePtr PlanBuilder::Collect(std::vector<PlanNodePtr> ins) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanNode::Op::kCollect;
  n->label = "collect";
  n->inputs = std::move(ins);
  return Add(std::move(n));
}

}  // namespace sac::planner
