// Compiled-plan cache (docs/SERVICE.md): repeat queries skip
// parse -> normalize -> plan entirely and reuse the CompiledQuery built
// the first time.
//
// Keying: a cache key is the whitespace-normalized comprehension text
// plus a per-binding shape signature plus the planner options that can
// change the chosen plan. Distributed bindings contribute their extents
// AND the identity of their backing dataset: the cached run closure
// holds shared_ptr copies of those datasets (keeping them alive for as
// long as the entry does, so an address can never be reused while its
// key is live), which makes pointer identity a sound fingerprint and
// rebinding a name to a new matrix a natural cache invalidation. Queries
// with kLocal bindings are uncacheable (local values feed the plan by
// value; there is no cheap identity) and report an empty key.
//
// Replacement is LRU over a fixed entry capacity (capacity 0 disables
// the cache). Thread-safe; hit/miss/eviction metering is the caller's
// job (Sac meters plan_cache_* against the engine + session Metrics).
#ifndef SAC_PLANNER_PLAN_CACHE_H_
#define SAC_PLANNER_PLAN_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/planner/plan.h"

namespace sac::planner {

/// Builds the cache key for (source text, bindings, options); "" when
/// the query is uncacheable. Binding signatures are sorted by name so
/// insertion order into the Bindings map cannot split the cache.
std::string PlanCacheKey(const std::string& src, const Bindings& binds,
                         const PlannerOptions& options);

/// Thread-safe LRU map from PlanCacheKey to the compiled query.
class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The cached query for `key`, refreshing its recency; nullptr on miss
  /// (or when `key` is empty / the cache is disabled).
  std::shared_ptr<const CompiledQuery> Lookup(const std::string& key);

  /// Caches `query` under `key` (no-op for empty keys or capacity 0) and
  /// returns how many LRU entries were evicted to make room.
  size_t Insert(const std::string& key,
                std::shared_ptr<const CompiledQuery> query);

  /// Drops every entry (and the dataset references the entries hold).
  void Clear();

  /// Resizes the cache; shrinking evicts LRU entries immediately and 0
  /// disables caching. Returns the number of entries evicted.
  size_t set_capacity(size_t capacity);

  size_t capacity() const {
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  struct Entry {
    std::shared_ptr<const CompiledQuery> query;
    std::list<std::string>::iterator lru_it;
  };

  /// Evicts LRU entries until size fits capacity. Caller holds mu_.
  size_t EvictToCapacityLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> map_;
};

}  // namespace sac::planner

#endif  // SAC_PLANNER_PLAN_CACHE_H_
