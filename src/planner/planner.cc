#include "src/planner/planner.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>

#include "src/analysis/cost.h"
#include "src/common/logging.h"
#include "src/comp/eval.h"
#include "src/exec/scalar_fn.h"
#include "src/la/backend.h"
#include "src/la/fused.h"
#include "src/la/jvmlike.h"
#include "src/la/kernels.h"
#include "src/planner/fusion.h"

namespace sac::planner {

using comp::Expr;
using comp::ExprPtr;
using comp::ReduceOp;
using exec::ConstEnv;
using exec::ScalarFn;
using runtime::Dataset;
using runtime::Engine;
using runtime::Value;
using runtime::ValueVec;
using runtime::VInt;
using runtime::VPair;
using storage::TiledMatrix;

namespace {

Status NotApplicable(const std::string& rule, const std::string& why) {
  return Status::PlanError(rule + " does not apply: " + why);
}

std::string FmtMs(const double ms) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << ms;
  return os.str();
}

}  // namespace

bool AutoStrategyEnabled(const PlannerOptions& opts) {
  const char* env = std::getenv("SAC_AUTO_STRATEGY");
  if (env != nullptr && std::strcmp(env, "off") == 0) return false;
  return opts.auto_strategy;
}

Result<int64_t> EvalScalarInt(const ExprPtr& e, const Bindings& binds) {
  comp::Evaluator ev;
  for (const auto& [name, b] : binds) {
    if (b.kind == Binding::Kind::kScalar) ev.Bind(name, b.value);
  }
  SAC_ASSIGN_OR_RETURN(Value v, ev.Eval(e));
  if (!v.is_numeric()) {
    return Status::PlanError("expected integer scalar, got " + v.ToString());
  }
  return v.AsInt();
}

void CollectScalarConsts(const Bindings& binds, ConstEnv* out) {
  for (const auto& [name, b] : binds) {
    if (b.kind == Binding::Kind::kScalar && b.value.is_numeric()) {
      (*out)[name] = b.value.AsDouble();
    }
  }
}

namespace {

Result<const Binding*> GetBinding(const Bindings& binds,
                                  const std::string& name, comp::Pos pos) {
  auto it = binds.find(name);
  if (it == binds.end()) {
    return Status::PlanError("unbound array '" + name + "' at " +
                             pos.ToString());
  }
  return &it->second;
}

/// Output dimensions from `tiled(...)` builder arguments.
struct OutDims {
  bool is_vector = false;
  int64_t rows = 0;
  int64_t cols = 0;  // 1 for vectors
};

Result<OutDims> EvalOutDims(const QueryShape& shape, const Bindings& binds) {
  if (shape.builder != "tiled") {
    return NotApplicable("block translation",
                         "builder is '" + shape.builder + "', not 'tiled'");
  }
  OutDims d;
  if (shape.builder_args.size() == 1) {
    d.is_vector = true;
    SAC_ASSIGN_OR_RETURN(d.rows, EvalScalarInt(shape.builder_args[0], binds));
    d.cols = 1;
  } else if (shape.builder_args.size() == 2) {
    SAC_ASSIGN_OR_RETURN(d.rows, EvalScalarInt(shape.builder_args[0], binds));
    SAC_ASSIGN_OR_RETURN(d.cols, EvalScalarInt(shape.builder_args[1], binds));
  } else {
    return NotApplicable("block translation", "tiled() needs 1 or 2 dims");
  }
  if (d.rows <= 0 || d.cols <= 0) {
    return Status::PlanError("non-positive output dimensions");
  }
  return d;
}

/// Common block size across the distributed inputs of a shape.
Result<int64_t> CommonBlockSize(const QueryShape& shape,
                                const Bindings& binds) {
  int64_t block = -1;
  for (const GenInfo& g : shape.gens) {
    SAC_ASSIGN_OR_RETURN(const Binding* b,
                         GetBinding(binds, g.source, g.pos));
    int64_t this_block;
    if (b->kind == Binding::Kind::kTiled) {
      this_block = b->tiled.block;
    } else if (b->kind == Binding::Kind::kBlockVector) {
      this_block = b->vec.block;
    } else {
      return NotApplicable("block translation",
                           "'" + g.source + "' is not a block array");
    }
    if (block == -1) {
      block = this_block;
    } else if (block != this_block) {
      return Status::PlanError("mismatched block sizes across inputs");
    }
  }
  if (block <= 0) return NotApplicable("block translation", "no inputs");
  return block;
}

/// The head-key variables, in order; fails if the key is not a tuple of
/// plain variables.
Result<std::vector<std::string>> HeadKeyVars(const QueryShape& shape) {
  std::vector<std::string> out;
  const ExprPtr& k = shape.head_key;
  if (k->kind == Expr::Kind::kVar) {
    out.push_back(k->str_val);
    return out;
  }
  if (k->kind == Expr::Kind::kTuple) {
    for (const auto& c : k->children) {
      if (c->kind != Expr::Kind::kVar) {
        return NotApplicable("key analysis", "non-variable key component");
      }
      out.push_back(c->str_val);
    }
    return out;
  }
  return NotApplicable("key analysis", "head key is not a variable tuple");
}

/// Finds the position of output variable `v` within generator `g`'s index
/// list, directly or through one index-equality hop.
std::optional<size_t> VarPosInGen(const QueryShape& shape, const GenInfo& g,
                                  const std::string& v) {
  for (size_t p = 0; p < g.idx.size(); ++p) {
    if (g.idx[p] == v) return p;
  }
  for (const auto& [a, b] : shape.index_eqs) {
    const std::string* other = nullptr;
    if (a == v) other = &b;
    if (b == v) other = &a;
    if (!other) continue;
    for (size_t p = 0; p < g.idx.size(); ++p) {
      if (g.idx[p] == *other) return p;
    }
  }
  return std::nullopt;
}

/// Kernel backend for a run closure: the per-query jvmlike pin (the
/// MLlib baseline series) wins over the engine's configured backend.
const la::KernelBackend* RunBackend(Engine* eng, bool jvmlike) {
  return jvmlike ? la::GetBackend(la::BackendKind::kJvmlike)
                 : eng->kernel_backend();
}

la::ZipOp ToZipOp(const ZipPattern& pat) {
  switch (pat.kind) {
    case ZipPattern::Kind::kAdd: return la::ZipOp::kAdd;
    case ZipPattern::Kind::kSub: return la::ZipOp::kSub;
    case ZipPattern::Kind::kMul: return la::ZipOp::kMul;
    default: return la::ZipOp::kAxpby;
  }
}

/// Dispatches a matched zip pattern through the backend's kernels.
void RunZipPattern(const la::KernelBackend* kb, const ZipPattern& pat,
                   const la::Tile& a, const la::Tile& b, la::Tile* out) {
  switch (pat.kind) {
    case ZipPattern::Kind::kAdd: kb->Add(a, b, out); return;
    case ZipPattern::Kind::kSub: kb->Sub(a, b, out); return;
    case ZipPattern::Kind::kMul: kb->Mul(a, b, out); return;
    case ZipPattern::Kind::kAxpby:
      kb->Axpby(pat.alpha, a, pat.beta, b, out);
      return;
    case ZipPattern::Kind::kGeneric: break;
  }
}

}  // namespace

// ===========================================================================
// Section 5.1: queries that preserve tiling
// ===========================================================================

Result<CompiledQuery> TryTilingPreserving(const QueryShape& shape,
                                          const Bindings& binds,
                                          const PlannerOptions& opts) {
  static const char* kRule = "tiling-preserving (5.1)";
  if (shape.has_group_by) {
    return NotApplicable(kRule, "query has a group-by");
  }
  if (!shape.guards.empty()) {
    return NotApplicable(kRule, "query has non-equality guards");
  }
  SAC_ASSIGN_OR_RETURN(OutDims dims, EvalOutDims(shape, binds));
  SAC_ASSIGN_OR_RETURN(int64_t block, CommonBlockSize(shape, binds));
  SAC_ASSIGN_OR_RETURN(std::vector<std::string> key_vars, HeadKeyVars(shape));
  if (dims.is_vector != (key_vars.size() == 1)) {
    return NotApplicable(kRule, "key arity does not match output dims");
  }

  const ExprPtr hv = shape.InlineLets(shape.head_val);
  ConstEnv consts;
  CollectScalarConsts(binds, &consts);

  // ---- two matrix generators: aligned elementwise zip --------------------
  if (shape.gens.size() == 2 && !dims.is_vector &&
      shape.gens[0].idx.size() == 2 && shape.gens[1].idx.size() == 2) {
    SAC_ASSIGN_OR_RETURN(const Binding* ba,
                         GetBinding(binds, shape.gens[0].source,
                                    shape.gens[0].pos));
    SAC_ASSIGN_OR_RETURN(const Binding* bb,
                         GetBinding(binds, shape.gens[1].source,
                                    shape.gens[1].pos));
    if (ba->kind != Binding::Kind::kTiled ||
        bb->kind != Binding::Kind::kTiled) {
      return NotApplicable(kRule, "generators are not both tiled matrices");
    }
    // Per generator: position of each output key component.
    std::array<std::array<size_t, 2>, 2> gmap{};
    for (size_t g = 0; g < 2; ++g) {
      for (size_t o = 0; o < 2; ++o) {
        auto p = VarPosInGen(shape, shape.gens[g], key_vars[o]);
        if (!p) {
          return NotApplicable(kRule, "output index '" + key_vars[o] +
                                          "' unreachable from generator " +
                                          shape.gens[g].source);
        }
        gmap[g][o] = *p;
      }
      if (gmap[g][0] == gmap[g][1]) {
        return NotApplicable(kRule, "degenerate index mapping");
      }
    }
    std::vector<std::string> val_args = {shape.gens[0].val,
                                         shape.gens[1].val};
    if (val_args[0].empty() || val_args[1].empty()) {
      return NotApplicable(kRule, "generator value is unused wildcard");
    }
    SAC_ASSIGN_OR_RETURN(ScalarFn f,
                         exec::CompileScalarFn(hv, val_args, consts));
    // Pattern dispatch (docs/KERNELS.md): a+b / a-b / a*b / alpha*a+beta*b
    // heads run through dedicated kernels; only unmatched heads evaluate
    // the compiled scalar program per element.
    const ZipPattern pat =
        MatchZipPattern(hv, val_args[0], val_args[1], consts);

    const TiledMatrix A = ba->tiled, B = bb->tiled;
    const auto ma = gmap[0], mb = gmap[1];
    const bool jvmlike = opts.use_jvmlike_kernels;
    const bool fuse = opts.fuse_elementwise;

    CompiledQuery q;
    q.strategy = Strategy::kTilingPreserving;
    q.explanation =
        "5.1 tile join of " + shape.gens[0].source + " and " +
        shape.gens[1].source + " (no group-by shuffle)";
    {
      PlanBuilder pb(shape.pos);
      PlanNodePtr sa = pb.Source(shape.gens[0].source, 2, shape.gens[0].pos);
      PlanNodePtr sb = pb.Source(shape.gens[1].source, 2, shape.gens[1].pos);
      PlanNodePtr ka =
          pb.Narrow(PlanNode::Op::kMap, "keyTiles", sa, 2);
      PlanNodePtr kb =
          pb.Narrow(PlanNode::Op::kMap, "keyTiles", sb, 2);
      PlanNodePtr joined =
          pb.Shuffle(PlanNode::Op::kJoin, "join", {ka, kb}, 2);
      q.plan = pb.Narrow(PlanNode::Op::kMap, "zipTiles", joined, 2,
                         /*preserves_partitioning=*/true);
      q.plan_nodes = pb.TakeNodes();
    }
    q.run = [=](Engine* eng) -> Result<QueryResult> {
      auto key_by = [&](const TiledMatrix& m,
                        const std::array<size_t, 2>& mp) {
        return eng->Map(
            m.tiles,
            [mp](const Value& row) {
              const ValueVec& c = row.At(0).AsTuple();
              return VPair(runtime::VTuple({c[mp[0]], c[mp[1]]}), row.At(1));
            },
            "keyTiles");
      };
      SAC_ASSIGN_OR_RETURN(Dataset ka, key_by(A, ma));
      SAC_ASSIGN_OR_RETURN(Dataset kb, key_by(B, mb));
      SAC_ASSIGN_OR_RETURN(Dataset joined, eng->Join(ka, kb));
      const bool ta_swap = (ma[0] == 1);
      const bool tb_swap = (mb[0] == 1);
      const la::KernelBackend* kbk = RunBackend(eng, jvmlike);
      SAC_ASSIGN_OR_RETURN(
          Dataset out,
          eng->Map(
              joined,
              [=](const Value& row) {
                la::Tile a = row.At(1).At(0).AsTile();
                la::Tile b = row.At(1).At(1).AsTile();
                Metrics* mets = &eng->metrics();
                la::Tile v;
                const bool patterned =
                    pat.kind != ZipPattern::Kind::kGeneric;
                auto zip_fn = [&f](double x, double y) {
                  const double args[2] = {x, y};
                  return f(args);
                };
                if (fuse && !jvmlike && (ta_swap || tb_swap)) {
                  // Fused pipeline: the transposed reads fold into the
                  // zip pass -- no transposed temporaries. jvmlike keeps
                  // the two-pass form (MLlib materializes intermediates).
                  if (patterned) {
                    la::FusedZip(ToZipOp(pat), pat.alpha, pat.beta, a,
                                 ta_swap, b, tb_swap, &v);
                  } else {
                    la::FusedZipFn(zip_fn, a, ta_swap, b, tb_swap, &v);
                  }
                  mets->AddTileAllocs(1);
                } else {
                  if (ta_swap) {
                    la::Tile t;
                    kbk->Transpose(a, &t);
                    a = std::move(t);
                    mets->AddTileAllocs(1);
                  }
                  if (tb_swap) {
                    la::Tile t;
                    kbk->Transpose(b, &t);
                    b = std::move(t);
                    mets->AddTileAllocs(1);
                  }
                  if (patterned) {
                    RunZipPattern(kbk, pat, a, b, &v);
                  } else {
                    la::ZipElements(a, b, zip_fn, &v);
                  }
                  mets->AddTileAllocs(1);
                }
                la::MeterFlops(mets, kbk->kind(),
                               static_cast<uint64_t>(v.size()) *
                                   pat.flops_per_element);
                return VPair(row.At(0), Value::TileVal(std::move(v)));
              },
              "zipTiles"));
      QueryResult r;
      r.kind = QueryResult::Kind::kTiled;
      r.tiled = TiledMatrix{dims.rows, dims.cols, block, out};
      return r;
    };
    return q;
  }

  // ---- one matrix generator -> matrix (map / transpose) -------------------
  if (shape.gens.size() == 1 && !dims.is_vector &&
      shape.gens[0].idx.size() == 2) {
    SAC_ASSIGN_OR_RETURN(const Binding* ba,
                         GetBinding(binds, shape.gens[0].source,
                                    shape.gens[0].pos));
    if (ba->kind != Binding::Kind::kTiled) {
      return NotApplicable(kRule, "generator is not a tiled matrix");
    }
    std::array<size_t, 2> m{};
    for (size_t o = 0; o < 2; ++o) {
      auto p = VarPosInGen(shape, shape.gens[0], key_vars[o]);
      if (!p) return NotApplicable(kRule, "output index not a tile index");
      m[o] = *p;
    }
    if (m[0] == m[1]) return NotApplicable(kRule, "degenerate mapping");
    const bool is_transpose = (m[0] == 1);
    if (shape.gens[0].val.empty()) {
      return NotApplicable(kRule, "wildcard element value");
    }
    const std::vector<std::string> val_args = {shape.gens[0].val};
    SAC_ASSIGN_OR_RETURN(ScalarFn f,
                         exec::CompileScalarFn(hv, val_args, consts));
    const MapPattern mpat = MatchMapPattern(hv, val_args[0], consts);
    const bool identity = mpat.kind == MapPattern::Kind::kIdentity;
    const bool jvmlike = opts.use_jvmlike_kernels;
    const bool fuse = opts.fuse_elementwise;
    const TiledMatrix A = ba->tiled;
    CompiledQuery q;
    q.strategy = Strategy::kTilingPreserving;
    q.explanation = std::string("5.1 per-tile ") +
                    (is_transpose ? "transpose" : "map") + " of " +
                    shape.gens[0].source;
    {
      PlanBuilder pb(shape.pos);
      PlanNodePtr src = pb.Source(shape.gens[0].source, 2, shape.gens[0].pos);
      q.plan = pb.Narrow(PlanNode::Op::kMap,
                         is_transpose ? "transposeTiles" : "mapTiles", src, 2,
                         /*preserves_partitioning=*/!is_transpose);
      q.plan_nodes = pb.TakeNodes();
    }
    q.run = [=](Engine* eng) -> Result<QueryResult> {
      const la::KernelBackend* kbk = RunBackend(eng, jvmlike);
      SAC_ASSIGN_OR_RETURN(
          Dataset out,
          eng->Map(
              A.tiles,
              [=](const Value& row) {
                const ValueVec& c = row.At(0).AsTuple();
                Value key = is_transpose
                                ? runtime::VTuple({c[1], c[0]})
                                : row.At(0);
                if (identity && !is_transpose) return VPair(key, row.At(1));
                Metrics* mets = &eng->metrics();
                const la::Tile& t0 = row.At(1).AsTile();
                auto map_fn = [&f](double x) {
                  const double args[1] = {x};
                  return f(args);
                };
                la::Tile t;
                if (fuse && !jvmlike) {
                  // Fused pipeline: transpose read + map in one pass (a
                  // pure transpose is already a single pass).
                  if (identity) {
                    kbk->Transpose(t0, &t);
                  } else if (mpat.kind == MapPattern::Kind::kScale) {
                    la::FusedScale(mpat.alpha, t0, is_transpose, &t);
                  } else {
                    la::FusedMapFn(map_fn, t0, is_transpose, &t);
                  }
                  mets->AddTileAllocs(1);
                } else {
                  t = t0;
                  if (is_transpose) {
                    la::Tile tt;
                    kbk->Transpose(t, &tt);
                    t = std::move(tt);
                    mets->AddTileAllocs(1);
                  }
                  if (!identity) {
                    la::Tile v;
                    if (mpat.kind == MapPattern::Kind::kScale) {
                      kbk->Scale(mpat.alpha, t, &v);
                    } else {
                      la::MapElements(t, map_fn, &v);
                    }
                    t = std::move(v);
                    mets->AddTileAllocs(1);
                  }
                }
                la::MeterFlops(mets, kbk->kind(),
                               static_cast<uint64_t>(t.size()) *
                                   mpat.flops_per_element);
                return VPair(key, Value::TileVal(std::move(t)));
              },
              is_transpose ? "transposeTiles" : "mapTiles"));
      QueryResult r;
      r.kind = QueryResult::Kind::kTiled;
      r.tiled = TiledMatrix{dims.rows, dims.cols, block, out};
      return r;
    };
    return q;
  }

  // ---- one matrix generator -> vector (diagonal) ---------------------------
  if (shape.gens.size() == 1 && dims.is_vector &&
      shape.gens[0].idx.size() == 2) {
    SAC_ASSIGN_OR_RETURN(const Binding* ba,
                         GetBinding(binds, shape.gens[0].source,
                                    shape.gens[0].pos));
    if (ba->kind != Binding::Kind::kTiled) {
      return NotApplicable(kRule, "generator is not a tiled matrix");
    }
    // Requires i == j between the generator's own indices.
    const std::string &i = shape.gens[0].idx[0], &j = shape.gens[0].idx[1];
    bool diag = false;
    for (const auto& [a, b] : shape.index_eqs) {
      if ((a == i && b == j) || (a == j && b == i)) diag = true;
    }
    if (!diag || (key_vars[0] != i && key_vars[0] != j)) {
      return NotApplicable(kRule, "not a diagonal extraction");
    }
    if (shape.gens[0].val.empty()) {
      return NotApplicable(kRule, "wildcard element value");
    }
    const std::vector<std::string> val_args = {shape.gens[0].val};
    SAC_ASSIGN_OR_RETURN(ScalarFn f,
                         exec::CompileScalarFn(hv, val_args, consts));
    const TiledMatrix A = ba->tiled;
    CompiledQuery q;
    q.strategy = Strategy::kTilingPreserving;
    q.explanation = "5.1 diagonal extraction from " + shape.gens[0].source;
    {
      PlanBuilder pb(shape.pos);
      PlanNodePtr src = pb.Source(shape.gens[0].source, 2, shape.gens[0].pos);
      PlanNodePtr flt = pb.Narrow(PlanNode::Op::kFilter, "filterDiagonal",
                                  src, 2, /*preserves_partitioning=*/true);
      q.plan = pb.Narrow(PlanNode::Op::kMap, "extractDiagonal", flt, 1);
      q.plan_nodes = pb.TakeNodes();
    }
    q.run = [=](Engine* eng) -> Result<QueryResult> {
      SAC_ASSIGN_OR_RETURN(
          Dataset diag_tiles,
          eng->Filter(
              A.tiles,
              [](const Value& row) {
                return row.At(0).At(0).AsInt() == row.At(0).At(1).AsInt();
              },
              "filterDiagonal"));
      SAC_ASSIGN_OR_RETURN(
          Dataset out,
          eng->Map(
              diag_tiles,
              [f](const Value& row) {
                const la::Tile& t = row.At(1).AsTile();
                const int64_t len = std::min(t.rows(), t.cols());
                la::Tile d(1, len);
                for (int64_t k = 0; k < len; ++k) {
                  const double args[1] = {t.At(k, k)};
                  d.Set(0, k, f(args));
                }
                return VPair(row.At(0).At(0), Value::TileVal(std::move(d)));
              },
              "extractDiagonal"));
      QueryResult r;
      r.kind = QueryResult::Kind::kBlockVector;
      r.vec = storage::BlockVector{dims.rows, block, out};
      return r;
    };
    return q;
  }

  // ---- vector generators -> vector ----------------------------------------
  if (dims.is_vector && !shape.gens.empty() && shape.gens[0].idx.size() == 1) {
    for (const GenInfo& g : shape.gens) {
      if (g.idx.size() != 1 || g.val.empty()) {
        return NotApplicable(kRule, "unsupported vector generator");
      }
      SAC_ASSIGN_OR_RETURN(const Binding* b, GetBinding(binds, g.source,
                                                        g.pos));
      if (b->kind != Binding::Kind::kBlockVector) {
        return NotApplicable(kRule, "generator is not a block vector");
      }
    }
    // Every generator's index must be the key var (directly or via eqs).
    for (const GenInfo& g : shape.gens) {
      if (!VarPosInGen(shape, g, key_vars[0]).has_value()) {
        return NotApplicable(kRule, "vector indices not aligned");
      }
    }
    std::vector<std::string> val_args;
    for (const GenInfo& g : shape.gens) val_args.push_back(g.val);
    SAC_ASSIGN_OR_RETURN(ScalarFn f,
                         exec::CompileScalarFn(hv, val_args, consts));
    const bool jvmlike = opts.use_jvmlike_kernels;
    if (shape.gens.size() == 1) {
      const storage::BlockVector V = binds.at(shape.gens[0].source).vec;
      const MapPattern mpat = MatchMapPattern(hv, val_args[0], consts);
      CompiledQuery q;
      q.strategy = Strategy::kTilingPreserving;
      q.explanation = "5.1 per-block map of " + shape.gens[0].source;
      {
        PlanBuilder pb(shape.pos);
        PlanNodePtr src =
            pb.Source(shape.gens[0].source, 1, shape.gens[0].pos);
        q.plan = pb.Narrow(PlanNode::Op::kMap, "mapBlocks", src, 1,
                           /*preserves_partitioning=*/true);
        q.plan_nodes = pb.TakeNodes();
      }
      q.run = [=](Engine* eng) -> Result<QueryResult> {
        const la::KernelBackend* kbk = RunBackend(eng, jvmlike);
        SAC_ASSIGN_OR_RETURN(
            Dataset out,
            eng->Map(
                V.blocks,
                [=](const Value& row) {
                  Metrics* mets = &eng->metrics();
                  la::Tile v;
                  if (mpat.kind == MapPattern::Kind::kScale) {
                    kbk->Scale(mpat.alpha, row.At(1).AsTile(), &v);
                  } else {
                    la::MapElements(
                        row.At(1).AsTile(),
                        [&f](double x) {
                          const double args[1] = {x};
                          return f(args);
                        },
                        &v);
                  }
                  mets->AddTileAllocs(1);
                  la::MeterFlops(mets, kbk->kind(),
                                 static_cast<uint64_t>(v.size()) *
                                     mpat.flops_per_element);
                  return VPair(row.At(0), Value::TileVal(std::move(v)));
                },
                "mapBlocks"));
        QueryResult r;
        r.kind = QueryResult::Kind::kBlockVector;
        r.vec = storage::BlockVector{dims.rows, block, out};
        return r;
      };
      return q;
    }
    if (shape.gens.size() == 2) {
      const storage::BlockVector Va = binds.at(shape.gens[0].source).vec;
      const storage::BlockVector Vb = binds.at(shape.gens[1].source).vec;
      const ZipPattern pat =
          MatchZipPattern(hv, val_args[0], val_args[1], consts);
      CompiledQuery q;
      q.strategy = Strategy::kTilingPreserving;
      q.explanation = "5.1 block join of " + shape.gens[0].source + " and " +
                      shape.gens[1].source;
      {
        PlanBuilder pb(shape.pos);
        PlanNodePtr sa =
            pb.Source(shape.gens[0].source, 1, shape.gens[0].pos);
        PlanNodePtr sb =
            pb.Source(shape.gens[1].source, 1, shape.gens[1].pos);
        PlanNodePtr joined =
            pb.Shuffle(PlanNode::Op::kJoin, "join", {sa, sb}, 1);
        q.plan = pb.Narrow(PlanNode::Op::kMap, "zipBlocks", joined, 1,
                           /*preserves_partitioning=*/true);
        q.plan_nodes = pb.TakeNodes();
      }
      q.run = [=](Engine* eng) -> Result<QueryResult> {
        const la::KernelBackend* kbk = RunBackend(eng, jvmlike);
        SAC_ASSIGN_OR_RETURN(Dataset joined, eng->Join(Va.blocks, Vb.blocks));
        SAC_ASSIGN_OR_RETURN(
            Dataset out,
            eng->Map(
                joined,
                [=](const Value& row) {
                  Metrics* mets = &eng->metrics();
                  la::Tile v;
                  if (pat.kind != ZipPattern::Kind::kGeneric) {
                    RunZipPattern(kbk, pat, row.At(1).At(0).AsTile(),
                                  row.At(1).At(1).AsTile(), &v);
                  } else {
                    la::ZipElements(
                        row.At(1).At(0).AsTile(), row.At(1).At(1).AsTile(),
                        [&f](double x, double y) {
                          const double args[2] = {x, y};
                          return f(args);
                        },
                        &v);
                  }
                  mets->AddTileAllocs(1);
                  la::MeterFlops(mets, kbk->kind(),
                                 static_cast<uint64_t>(v.size()) *
                                     pat.flops_per_element);
                  return VPair(row.At(0), Value::TileVal(std::move(v)));
                },
                "zipBlocks"));
        QueryResult r;
        r.kind = QueryResult::Kind::kBlockVector;
        r.vec = storage::BlockVector{dims.rows, block, out};
        return r;
      };
      return q;
    }
  }

  return NotApplicable(kRule, "no tiling-preserving pattern matched");
}

// ===========================================================================
// Total aggregation over a distributed array
// ===========================================================================

Result<CompiledQuery> TryTotalAggregate(const ExprPtr& query,
                                        const Bindings& binds,
                                        const PlannerOptions& opts) {
  static const char* kRule = "total aggregation";
  if (query->kind != Expr::Kind::kReduce) {
    return NotApplicable(kRule, "not a reduction");
  }
  const ExprPtr& comp_e = query->children[0];
  if (comp_e->kind != Expr::Kind::kComprehension) {
    return NotApplicable(kRule, "operand is not a comprehension");
  }
  const ReduceOp op = query->reduce_op;
  if (op != ReduceOp::kSum && op != ReduceOp::kMin && op != ReduceOp::kMax &&
      op != ReduceOp::kProd && op != ReduceOp::kCount &&
      op != ReduceOp::kAvg) {
    return NotApplicable(kRule, "unsupported monoid");
  }

  // One generator over a distributed array; lets; integer guards.
  GenInfo gen;
  bool have_gen = false;
  std::vector<LetInfo> lets;
  std::vector<ExprPtr> guards;
  for (const auto& q : comp_e->quals) {
    switch (q.kind) {
      case comp::Qualifier::Kind::kGenerator: {
        if (have_gen) return NotApplicable(kRule, "multiple generators");
        QueryShape tmp;
        SAC_ASSIGN_OR_RETURN(gen, [&]() -> Result<GenInfo> {
          GenInfo g;
          g.pos = q.pos;
          if (q.expr->kind != Expr::Kind::kVar) {
            return NotApplicable(kRule, "generator source not a name");
          }
          g.source = q.expr->str_val;
          const auto& p = q.pattern;
          if (p->kind != comp::Pattern::Kind::kTuple || p->elems.size() != 2) {
            return NotApplicable(kRule, "bad generator pattern");
          }
          if (p->elems[1]->kind != comp::Pattern::Kind::kVar) {
            return NotApplicable(kRule, "bad value pattern");
          }
          g.val = p->elems[1]->var;
          if (p->elems[0]->kind == comp::Pattern::Kind::kVar) {
            g.idx.push_back(p->elems[0]->var);
          } else if (p->elems[0]->kind == comp::Pattern::Kind::kTuple) {
            for (const auto& ip : p->elems[0]->elems) {
              if (ip->kind != comp::Pattern::Kind::kVar) {
                return NotApplicable(kRule, "bad index pattern");
              }
              g.idx.push_back(ip->var);
            }
          }
          return g;
        }());
        have_gen = true;
        break;
      }
      case comp::Qualifier::Kind::kLet:
        if (q.pattern->kind != comp::Pattern::Kind::kVar) {
          return NotApplicable(kRule, "bad let pattern");
        }
        lets.push_back(LetInfo{q.pattern->var, q.expr});
        break;
      case comp::Qualifier::Kind::kGuard:
        guards.push_back(q.expr);
        break;
      case comp::Qualifier::Kind::kGroupBy:
        return NotApplicable(kRule, "group-by inside total aggregate");
    }
  }
  if (!have_gen) return NotApplicable(kRule, "no generator");
  SAC_ASSIGN_OR_RETURN(const Binding* b, GetBinding(binds, gen.source,
                                                    gen.pos));
  if (!b->is_distributed() || b->kind == Binding::Kind::kCoo) {
    return NotApplicable(kRule, "source is not a block array");
  }

  // Inline lets into head and guards; compile over (idx..., val).
  auto inline_lets = [&](ExprPtr e) {
    for (auto it = lets.rbegin(); it != lets.rend(); ++it) {
      e = comp::SubstituteVar(e, it->var, it->expr);
    }
    return e;
  };
  ConstEnv consts;
  CollectScalarConsts(binds, &consts);
  std::vector<std::string> dargs = gen.idx;
  dargs.push_back(gen.val);
  // Head as a scalar over doubles: indices are passed as doubles too (the
  // guard fragment below keeps true integer arithmetic separate).
  SAC_ASSIGN_OR_RETURN(
      ScalarFn fv, exec::CompileScalarFn(inline_lets(comp_e->children[0]),
                                         dargs, consts));
  std::vector<exec::PredFn> preds;
  for (const auto& g : guards) {
    SAC_ASSIGN_OR_RETURN(exec::PredFn p,
                         exec::CompileIntPred(inline_lets(g), gen.idx,
                                              consts));
    preds.push_back(std::move(p));
  }

  const Binding src = *b;
  const bool is_matrix = src.kind == Binding::Kind::kTiled;
  if (is_matrix != (gen.idx.size() == 2)) {
    return NotApplicable(kRule, "index arity mismatch");
  }

  CompiledQuery q;
  q.strategy = Strategy::kReduceByKey;
  q.explanation = "per-tile partial aggregation + driver-side fold";
  {
    PlanBuilder pb(query->pos);
    PlanNodePtr tiles_node =
        pb.Source(gen.source, is_matrix ? 2 : 1, gen.pos);
    PlanNodePtr partials =
        pb.Narrow(PlanNode::Op::kMap, "partialAggregate", tiles_node, 0);
    q.plan = pb.Collect({partials});
    q.plan_nodes = pb.TakeNodes();
  }
  q.run = [=](Engine* eng) -> Result<QueryResult> {
    const int64_t block =
        is_matrix ? src.tiled.block : src.vec.block;
    Dataset tiles = is_matrix ? src.tiled.tiles : src.vec.blocks;
    SAC_ASSIGN_OR_RETURN(
        Dataset partials,
        eng->Map(
            tiles,
            [=](const Value& row) {
              int64_t bi = 0, bj = 0;
              if (is_matrix) {
                bi = row.At(0).At(0).AsInt();
                bj = row.At(0).At(1).AsInt();
              } else {
                bj = row.At(0).AsInt();
              }
              const la::Tile& t = row.At(1).AsTile();
              double sum = 0.0, prod = 1.0;
              double mn = std::numeric_limits<double>::infinity();
              double mx = -std::numeric_limits<double>::infinity();
              int64_t count = 0;
              for (int64_t i = 0; i < t.rows(); ++i) {
                for (int64_t j = 0; j < t.cols(); ++j) {
                  int64_t iargs[2];
                  double dval[3];
                  if (is_matrix) {
                    iargs[0] = bi * block + i;
                    iargs[1] = bj * block + j;
                    dval[0] = static_cast<double>(iargs[0]);
                    dval[1] = static_cast<double>(iargs[1]);
                    dval[2] = t.At(i, j);
                  } else {
                    iargs[0] = bj * block + j;
                    dval[0] = static_cast<double>(iargs[0]);
                    dval[1] = t.At(i, j);
                  }
                  bool pass = true;
                  for (const auto& p : preds) {
                    if (!p(iargs)) {
                      pass = false;
                      break;
                    }
                  }
                  if (!pass) continue;
                  const double v = fv(dval);
                  sum += v;
                  prod *= v;
                  mn = std::min(mn, v);
                  mx = std::max(mx, v);
                  ++count;
                }
              }
              return runtime::VTuple(
                  {runtime::VDouble(sum), runtime::VDouble(prod),
                   runtime::VDouble(mn), runtime::VDouble(mx),
                   VInt(count)});
            },
            "partialAggregate"));
    SAC_ASSIGN_OR_RETURN(ValueVec rows, eng->Collect(partials));
    double sum = 0.0, prod = 1.0;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    int64_t count = 0;
    for (const Value& r : rows) {
      sum += r.At(0).AsDouble();
      prod *= r.At(1).AsDouble();
      mn = std::min(mn, r.At(2).AsDouble());
      mx = std::max(mx, r.At(3).AsDouble());
      count += r.At(4).AsInt();
    }
    QueryResult out;
    out.kind = QueryResult::Kind::kValue;
    switch (op) {
      case ReduceOp::kSum:
        out.value = runtime::VDouble(sum);
        break;
      case ReduceOp::kProd:
        out.value = runtime::VDouble(prod);
        break;
      case ReduceOp::kMin:
        if (count == 0) return Status::RuntimeError("min of empty");
        out.value = runtime::VDouble(mn);
        break;
      case ReduceOp::kMax:
        if (count == 0) return Status::RuntimeError("max of empty");
        out.value = runtime::VDouble(mx);
        break;
      case ReduceOp::kCount:
        out.value = VInt(count);
        break;
      case ReduceOp::kAvg:
        if (count == 0) return Status::RuntimeError("avg of empty");
        out.value = runtime::VDouble(sum / static_cast<double>(count));
        break;
      default:
        return Status::PlanError("bad monoid");
    }
    return out;
  };
  return q;
}

// ===========================================================================
// Entry point
// ===========================================================================

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kTilingPreserving:
      return "TilingPreserving(5.1)";
    case Strategy::kReplication:
      return "Replication(5.2)";
    case Strategy::kReduceByKey:
      return "ReduceByKey(5.3)";
    case Strategy::kGroupByJoin:
      return "GroupByJoin(5.4)";
    case Strategy::kCoo:
      return "Coordinate(4)";
    case Strategy::kLocalFallback:
      return "LocalFallback";
    case Strategy::kLocal:
      return "Local";
  }
  return "?";
}

namespace {

/// Drops guards that are provably true from the array dimensions: an
/// array index is always >= 0 and < its dimension, so `v >= 0` and
/// `v < n` vanish when n is at least the dimension of the generator that
/// binds v. (The paper performs the same simplification when merging
/// index ranges in Section 2.)
void PruneProvableBoundsGuards(QueryShape* shape, const Bindings& binds) {
  auto dim_of = [&](const std::string& v) -> int64_t {
    auto ref = shape->FindIndexVar(v);
    if (!ref) return -1;
    auto it = binds.find(shape->gens[ref->gen].source);
    if (it == binds.end()) return -1;
    if (it->second.kind == Binding::Kind::kTiled) {
      return ref->pos == 0 ? it->second.tiled.rows : it->second.tiled.cols;
    }
    if (it->second.kind == Binding::Kind::kBlockVector) {
      return it->second.vec.size;
    }
    return -1;
  };
  std::vector<ExprPtr> kept;
  for (const ExprPtr& g : shape->guards) {
    bool provable = false;
    if (g->kind == Expr::Kind::kBinary) {
      const ExprPtr& l = g->children[0];
      const ExprPtr& r = g->children[1];
      // v >= 0  /  0 <= v
      if (g->bin_op == comp::BinOp::kGe && l->kind == Expr::Kind::kVar &&
          r->kind == Expr::Kind::kIntLit && r->int_val <= 0 &&
          dim_of(l->str_val) > 0) {
        provable = true;
      }
      if (g->bin_op == comp::BinOp::kLe && r->kind == Expr::Kind::kVar &&
          l->kind == Expr::Kind::kIntLit && l->int_val <= 0 &&
          dim_of(r->str_val) > 0) {
        provable = true;
      }
      // v < n  with n >= dim(v)
      if (g->bin_op == comp::BinOp::kLt && l->kind == Expr::Kind::kVar) {
        const int64_t dim = dim_of(l->str_val);
        if (dim > 0) {
          auto bound = EvalScalarInt(r, binds);
          if (bound.ok() && bound.value() >= dim) provable = true;
        }
      }
      if (g->bin_op == comp::BinOp::kGt && r->kind == Expr::Kind::kVar) {
        const int64_t dim = dim_of(r->str_val);
        if (dim > 0) {
          auto bound = EvalScalarInt(l, binds);
          if (bound.ok() && bound.value() >= dim) provable = true;
        }
      }
    }
    if (!provable) kept.push_back(g);
  }
  shape->guards = std::move(kept);
}

}  // namespace

Result<CompiledQuery> CompileQuery(const ExprPtr& query,
                                   const Bindings& binds,
                                   const PlannerOptions& opts) {
  // Queries with no distributed inputs evaluate locally.
  bool any_distributed = false;
  for (const std::string& v : comp::FreeVars(query)) {
    auto it = binds.find(v);
    if (it != binds.end() && it->second.is_distributed()) {
      any_distributed = true;
    }
  }
  if (!any_distributed) {
    CompiledQuery q;
    q.strategy = Strategy::kLocal;
    q.explanation = "no distributed inputs; reference evaluation";
    const Bindings local_binds = binds;
    q.run = [query, local_binds](Engine*) -> Result<QueryResult> {
      comp::Evaluator ev;
      for (const auto& [name, b] : local_binds) {
        if (b.kind == Binding::Kind::kScalar ||
            b.kind == Binding::Kind::kLocal) {
          ev.Bind(name, b.value);
        }
      }
      SAC_ASSIGN_OR_RETURN(Value v, ev.Eval(query));
      QueryResult r;
      r.kind = QueryResult::Kind::kValue;
      r.value = std::move(v);
      return r;
    };
    return q;
  }

  // Total aggregations have their own translation.
  if (query->kind == Expr::Kind::kReduce) {
    auto agg = TryTotalAggregate(query, binds, opts);
    if (agg.ok()) return agg;
    return LocalFallbackPlan(query, binds, opts);
  }

  auto shape_r = AnalyzeShape(query);
  std::vector<std::string> reasons;
  if (shape_r.ok()) {
    QueryShape& shape = shape_r.value();
    PruneProvableBoundsGuards(&shape, binds);
    if (opts.force_coo) {
      auto coo = TryCoo(shape, binds, opts);
      if (coo.ok()) return coo;
      reasons.push_back(coo.status().message());
    } else {
      if (opts.enable_group_by_join) {
        auto gbj = TryGroupByJoin(shape, binds, opts);
        if (gbj.ok()) {
          // Cost-based strategy choice (docs/COST_MODEL.md): when the 5.3
          // translation also applies and the bound extents resolve, take
          // whichever plan the calibrated model estimates cheaper --
          // fig4b shows the right 5.3/5.4 choice flips with n.
          if (AutoStrategyEnabled(opts)) {
            auto rbk = TryReduceByKey(shape, binds, opts);
            if (rbk.ok()) {
              // Flop rate follows the backend the plan will run on: the
              // jvmlike toggle forces that backend, otherwise the
              // engine-resolved ClusterConfig::kernel_backend.
              const analysis::CostModel cm = analysis::CostModelForBackend(
                  opts.use_jvmlike_kernels ? "jvmlike"
                                           : opts.cluster.kernel_backend);
              const analysis::CostEstimate gc = analysis::EstimateCost(
                  analysis::PlanGraph::FromQuery(gbj.value(), &binds, 0,
                                                 opts.cluster),
                  cm);
              const analysis::CostEstimate rc = analysis::EstimateCost(
                  analysis::PlanGraph::FromQuery(rbk.value(), &binds, 0,
                                                 opts.cluster),
                  cm);
              if (gc.exact && rc.exact) {
                const std::string note =
                    " [auto: cost model 5.4=" + FmtMs(gc.est_ms) +
                    "ms vs 5.3=" + FmtMs(rc.est_ms) + "ms]";
                if (rc.est_ms < gc.est_ms) {
                  rbk.value().explanation += note;
                  return rbk;
                }
                gbj.value().explanation += note;
              }
            }
          }
          return gbj;
        }
        reasons.push_back(gbj.status().message());
      }
      auto rbk = TryReduceByKey(shape, binds, opts);
      if (rbk.ok()) return rbk;
      reasons.push_back(rbk.status().message());
      auto tp = TryTilingPreserving(shape, binds, opts);
      if (tp.ok()) return tp;
      reasons.push_back(tp.status().message());
      auto rep = TryReplication(shape, binds, opts);
      if (rep.ok()) return rep;
      reasons.push_back(rep.status().message());
      auto coo = TryCoo(shape, binds, opts);
      if (coo.ok()) return coo;
      reasons.push_back(coo.status().message());
    }
  } else {
    reasons.push_back(shape_r.status().message());
  }

  auto fb = LocalFallbackPlan(query, binds, opts);
  if (fb.ok()) return fb;
  reasons.push_back(fb.status().message());
  std::string all = "no translation strategy applies:";
  for (const auto& r : reasons) all += "\n  - " + r;
  return Status::PlanError(all);
}

}  // namespace sac::planner
