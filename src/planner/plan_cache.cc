#include "src/planner/plan_cache.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

namespace sac::planner {

namespace {

/// Collapses every whitespace run to one space and trims the ends, so
/// reformatting a comprehension does not split the cache. Deliberately
/// NOT a parse: key construction must stay far cheaper than the
/// parse -> normalize -> plan pipeline a hit skips.
std::string NormalizeText(const std::string& src) {
  std::string out;
  out.reserve(src.size());
  bool pending_space = false;
  for (char c : src) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
  }
  return out;
}

void AppendBinding(std::ostringstream* os, const std::string& name,
                   const Binding& b) {
  *os << ';' << name << ':';
  switch (b.kind) {
    case Binding::Kind::kScalar:
      // Scalar values feed plan extents (loop bounds, dimensions), so
      // they are part of the shape signature, not just the type.
      *os << "s=" << b.value.ToString();
      break;
    case Binding::Kind::kLocal:
      *os << "local";  // callers treat the whole key as uncacheable
      break;
    case Binding::Kind::kTiled:
      *os << "t=" << b.tiled.rows << 'x' << b.tiled.cols << '/'
          << b.tiled.block << '@' << b.tiled.tiles.get();
      break;
    case Binding::Kind::kBlockVector:
      *os << "v=" << b.vec.size << '/' << b.vec.block << '@'
          << b.vec.blocks.get();
      break;
    case Binding::Kind::kCoo:
      *os << "c=" << b.coo.rows << 'x' << b.coo.cols << '@'
          << b.coo.entries.get();
      break;
  }
}

}  // namespace

std::string PlanCacheKey(const std::string& src, const Bindings& binds,
                         const PlannerOptions& options) {
  std::vector<const std::pair<const std::string, Binding>*> sorted;
  sorted.reserve(binds.size());
  for (const auto& kv : binds) {
    if (kv.second.kind == Binding::Kind::kLocal) return "";
    sorted.push_back(&kv);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  std::ostringstream os;
  os << NormalizeText(src);
  // Every option that can change the chosen plan or its shape.
  os << ";opt:gbj" << options.enable_group_by_join
     << ",coo" << options.force_coo
     << ",jvm" << options.use_jvmlike_kernels
     << ",fuse" << options.fuse_elementwise
     << ",auto" << options.auto_strategy
     << ",lfc" << options.local_fallback_max_cells
     << ",ex" << options.cluster.num_executors
     << ",cores" << options.cluster.cores_per_executor
     << ",par" << options.cluster.default_parallelism
     << ",mem" << options.cluster.memory_budget_bytes;
  for (const auto* kv : sorted) AppendBinding(&os, kv->first, kv->second);
  return os.str();
}

std::shared_ptr<const CompiledQuery> PlanCache::Lookup(
    const std::string& key) {
  if (key.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return nullptr;
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.query;
}

size_t PlanCache::Insert(const std::string& key,
                         std::shared_ptr<const CompiledQuery> query) {
  if (key.empty() || query == nullptr) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return 0;
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Racing compilers of the same query: keep the incumbent, refresh
    // recency. (Both plans are equivalent; the first one in wins.)
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return 0;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{std::move(query), lru_.begin()});
  return EvictToCapacityLocked();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
}

size_t PlanCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  return EvictToCapacityLocked();
}

size_t PlanCache::EvictToCapacityLocked() {
  size_t evicted = 0;
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evicted;
  }
  return evicted;
}

}  // namespace sac::planner
