#include "src/planner/shape.h"

#include <algorithm>

namespace sac::planner {

using comp::Expr;
using comp::ExprPtr;
using comp::Pattern;
using comp::Qualifier;

namespace {

Status Err(comp::Pos pos, const std::string& msg) {
  return Status::PlanError(msg + " at " + pos.ToString());
}

/// Extracts ((i,j),v) / (i,v) generator patterns.
Result<GenInfo> AnalyzeGenerator(const Qualifier& q) {
  GenInfo g;
  g.pos = q.pos;
  if (q.expr->kind != Expr::Kind::kVar) {
    return Err(q.pos, "generator source is not a named array");
  }
  g.source = q.expr->str_val;
  const auto& p = q.pattern;
  if (p->kind != Pattern::Kind::kTuple || p->elems.size() != 2) {
    return Err(q.pos, "generator pattern must be (index, value)");
  }
  const auto& keyp = p->elems[0];
  const auto& valp = p->elems[1];
  if (valp->kind == Pattern::Kind::kVar) {
    g.val = valp->var;
  } else if (valp->kind != Pattern::Kind::kWildcard) {
    return Err(q.pos, "generator value pattern must be a variable");
  }
  if (keyp->kind == Pattern::Kind::kVar) {
    g.idx.push_back(keyp->var);
  } else if (keyp->kind == Pattern::Kind::kTuple) {
    for (const auto& ip : keyp->elems) {
      if (ip->kind != Pattern::Kind::kVar) {
        return Err(q.pos, "index pattern must bind plain variables");
      }
      g.idx.push_back(ip->var);
    }
  } else {
    return Err(q.pos, "unsupported generator index pattern");
  }
  if (g.idx.empty() || g.idx.size() > 2) {
    return Err(q.pos, "only 1- and 2-dimensional arrays are supported");
  }
  return g;
}

bool IsVar(const ExprPtr& e) { return e->kind == Expr::Kind::kVar; }

}  // namespace

std::optional<QueryShape::IdxRef> QueryShape::FindIndexVar(
    const std::string& v) const {
  for (size_t g = 0; g < gens.size(); ++g) {
    for (size_t p = 0; p < gens[g].idx.size(); ++p) {
      if (gens[g].idx[p] == v) return IdxRef{g, p};
    }
  }
  return std::nullopt;
}

std::optional<QueryShape::IdxRef> QueryShape::ResolveVar(
    const std::string& v) const {
  if (auto direct = FindIndexVar(v)) return direct;
  for (const auto& [a, b] : index_eqs) {
    if (a == v) {
      if (auto r = FindIndexVar(b)) return r;
    }
    if (b == v) {
      if (auto r = FindIndexVar(a)) return r;
    }
  }
  return std::nullopt;
}

comp::ExprPtr QueryShape::InlineLets(const comp::ExprPtr& e) const {
  comp::ExprPtr cur = e;
  // Lets may reference earlier lets; substitute in reverse order.
  for (auto it = lets.rbegin(); it != lets.rend(); ++it) {
    cur = comp::SubstituteVar(cur, it->var, it->expr);
  }
  return cur;
}

Result<QueryShape> AnalyzeShape(const comp::ExprPtr& e) {
  QueryShape s;
  s.pos = e->pos;
  ExprPtr comp_expr = e;
  if (e->kind == Expr::Kind::kBuild) {
    s.builder = e->str_val;
    for (size_t i = 1; i < e->children.size(); ++i) {
      s.builder_args.push_back(e->children[i]);
    }
    comp_expr = e->children[0];
  }
  if (comp_expr->kind != Expr::Kind::kComprehension) {
    return Err(e->pos, "not a comprehension");
  }

  for (const Qualifier& q : comp_expr->quals) {
    switch (q.kind) {
      case Qualifier::Kind::kGenerator: {
        if (s.has_group_by) {
          return Err(q.pos, "generator after group-by is unsupported");
        }
        SAC_ASSIGN_OR_RETURN(GenInfo g, AnalyzeGenerator(q));
        s.gens.push_back(std::move(g));
        break;
      }
      case Qualifier::Kind::kLet: {
        if (q.pattern->kind != Pattern::Kind::kVar) {
          return Err(q.pos, "let pattern must be a single variable");
        }
        s.lets.push_back(LetInfo{q.pattern->var, q.expr});
        break;
      }
      case Qualifier::Kind::kGuard: {
        // Classify v1 == v2 between index variables.
        const ExprPtr& g = q.expr;
        bool is_index_eq = false;
        if (g->kind == Expr::Kind::kBinary && g->bin_op == comp::BinOp::kEq &&
            IsVar(g->children[0]) && IsVar(g->children[1])) {
          is_index_eq = true;
        }
        if (is_index_eq) {
          s.index_eqs.emplace_back(g->children[0]->str_val,
                                   g->children[1]->str_val);
        } else {
          s.guards.push_back(g);
        }
        break;
      }
      case Qualifier::Kind::kGroupBy: {
        if (s.has_group_by) {
          return Err(q.pos, "multiple group-bys are unsupported");
        }
        if (q.expr) {
          return Err(q.pos, "group-by key sugar must be desugared first");
        }
        s.has_group_by = true;
        s.group_key_vars = q.pattern->Vars();
        if (s.group_key_vars.empty()) {
          return Err(q.pos, "empty group-by key");
        }
        break;
      }
    }
  }

  // The head must be (key, value) for array builders.
  const ExprPtr& head = comp_expr->children[0];
  if (head->kind == Expr::Kind::kTuple && head->children.size() == 2) {
    s.head_key = head->children[0];
    s.head_val = head->children[1];
  } else {
    return Err(head->pos, "comprehension head must be a (key, value) pair");
  }
  return s;
}

}  // namespace sac::planner
