// Translation of group-by comprehensions over block arrays:
//   Section 5.3 -- join + reduceByKey with tile monoids
//   Section 5.4 -- group-by-join (SUMMA): replicate + cogroup
#include <algorithm>
#include <array>
#include <limits>
#include <unordered_map>

#include "src/comp/eval.h"
#include "src/exec/scalar_fn.h"
#include "src/la/backend.h"
#include "src/la/kernels.h"
#include "src/planner/planner.h"

namespace sac::planner {

using comp::Expr;
using comp::ExprPtr;
using comp::ReduceOp;
using exec::ConstEnv;
using exec::ScalarFn;
using runtime::Dataset;
using runtime::Engine;
using runtime::Value;
using runtime::ValueVec;
using runtime::VInt;
using runtime::VPair;
using storage::TiledMatrix;

namespace {

Status NotApplicable(const std::string& rule, const std::string& why) {
  return Status::PlanError(rule + " does not apply: " + why);
}

// ---- monoid helpers --------------------------------------------------------

double MonoidIdentity(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
    case ReduceOp::kCount:
      return 0.0;
    case ReduceOp::kProd:
      return 1.0;
    case ReduceOp::kMin:
      return std::numeric_limits<double>::infinity();
    case ReduceOp::kMax:
      return -std::numeric_limits<double>::infinity();
    default:
      return 0.0;
  }
}

inline void MonoidAccum(ReduceOp op, double* acc, double v) {
  switch (op) {
    case ReduceOp::kSum:
    case ReduceOp::kCount:
      *acc += v;
      break;
    case ReduceOp::kProd:
      *acc *= v;
      break;
    case ReduceOp::kMin:
      *acc = std::min(*acc, v);
      break;
    case ReduceOp::kMax:
      *acc = std::max(*acc, v);
      break;
    default:
      break;
  }
}

/// acc ⊕= t elementwise: the tile monoid of Section 5.3.
void TileMonoidAccum(ReduceOp op, la::Tile* acc, const la::Tile& t) {
  if (op == ReduceOp::kSum || op == ReduceOp::kCount) {
    la::AddInPlace(acc, t);
    return;
  }
  double* pa = acc->data();
  const double* pt = t.data();
  const int64_t n = acc->size();
  for (int64_t i = 0; i < n; ++i) MonoidAccum(op, &pa[i], pt[i]);
}

la::Tile FilledTile(int64_t r, int64_t c, double v) {
  la::Tile t(r, c);
  if (v != 0.0) std::fill(t.data(), t.data() + t.size(), v);
  return t;
}

// ---- aggregation extraction (Section 3 / 5.3 decomposition) ---------------

struct AggInfo {
  ReduceOp op;      // sum / prod / min / max (count becomes sum of 1)
  ExprPtr g;        // per-element term, over generator element variables
};

/// Decomposes the (let-inlined) head value into
/// f($agg0, ..., $aggm) with aggregates ⊕i/gi (rule 12 / 5.3). kCount
/// becomes sum of 1; kAvg becomes sum/count.
struct AggDecomposition {
  std::vector<AggInfo> aggs;
  ExprPtr finalize;  // over variables $agg0...$aggm
};

Result<ExprPtr> ExtractAggsRec(const ExprPtr& e,
                               std::vector<AggInfo>* aggs) {
  if (e->kind == Expr::Kind::kReduce) {
    const ExprPtr& operand = e->children[0];
    // Nested reductions inside an aggregate are not supported here.
    for (const auto& fv : comp::FreeVars(operand)) {
      (void)fv;
    }
    switch (e->reduce_op) {
      case ReduceOp::kSum:
      case ReduceOp::kProd:
      case ReduceOp::kMin:
      case ReduceOp::kMax: {
        const size_t k = aggs->size();
        aggs->push_back(AggInfo{e->reduce_op, operand});
        return Expr::Var("$agg" + std::to_string(k), e->pos);
      }
      case ReduceOp::kCount: {
        const size_t k = aggs->size();
        aggs->push_back(AggInfo{ReduceOp::kSum, Expr::Int(1, e->pos)});
        return Expr::Var("$agg" + std::to_string(k), e->pos);
      }
      case ReduceOp::kAvg: {
        const size_t k = aggs->size();
        aggs->push_back(AggInfo{ReduceOp::kSum, operand});
        aggs->push_back(AggInfo{ReduceOp::kSum, Expr::Int(1, e->pos)});
        return Expr::Binary(comp::BinOp::kDiv,
                            Expr::Var("$agg" + std::to_string(k), e->pos),
                            Expr::Var("$agg" + std::to_string(k + 1), e->pos),
                            e->pos);
      }
      default:
        return Status::PlanError("unsupported aggregation monoid");
    }
  }
  if (e->children.empty()) return e;
  auto copy = std::make_shared<Expr>(*e);
  for (auto& c : copy->children) {
    SAC_ASSIGN_OR_RETURN(c, ExtractAggsRec(c, aggs));
  }
  return ExprPtr(copy);
}

Result<AggDecomposition> ExtractAggs(const ExprPtr& head_val_inlined) {
  AggDecomposition d;
  SAC_ASSIGN_OR_RETURN(d.finalize,
                       ExtractAggsRec(head_val_inlined, &d.aggs));
  if (d.aggs.empty()) {
    return Status::PlanError("group-by head has no aggregation");
  }
  for (const AggInfo& a : d.aggs) {
    // The per-element terms must themselves be aggregate-free.
    bool nested = false;
    std::function<void(const ExprPtr&)> scan = [&](const ExprPtr& e) {
      if (e->kind == Expr::Kind::kReduce) nested = true;
      for (const auto& c : e->children) scan(c);
    };
    scan(a.g);
    if (nested) return Status::PlanError("nested aggregations");
  }
  return d;
}

/// Combine function for (key, (tile0, ..., tilem)) rows: pairwise tile
/// monoid application per aggregation.
runtime::CombineFn TupleTileCombine(std::vector<ReduceOp> ops) {
  return [ops](const Value& a, const Value& b) {
    ValueVec out;
    out.reserve(ops.size());
    for (size_t k = 0; k < ops.size(); ++k) {
      Value acc = a.At(k);
      TileMonoidAccum(ops[k], acc.MutableTile(), b.At(k).AsTile());
      out.push_back(std::move(acc));
    }
    return runtime::VTuple(std::move(out));
  };
}

/// Per-cell finalize over the aggregation tiles.
Result<la::Tile> FinalizeTiles(const ScalarFn& f, const ValueVec& agg_tiles) {
  const la::Tile& first = agg_tiles[0].AsTile();
  la::Tile out(first.rows(), first.cols());
  const size_t m = agg_tiles.size();
  std::vector<const double*> ptrs(m);
  for (size_t k = 0; k < m; ++k) {
    const la::Tile& t = agg_tiles[k].AsTile();
    if (t.rows() != first.rows() || t.cols() != first.cols()) {
      return Status::RuntimeError("aggregation tile shape mismatch");
    }
    ptrs[k] = t.data();
  }
  std::vector<double> args(m);
  for (int64_t i = 0; i < out.size(); ++i) {
    for (size_t k = 0; k < m; ++k) args[k] = ptrs[k][i];
    out.data()[i] = f(args.data());
  }
  return out;
}

bool FinalizeIsIdentity(const AggDecomposition& d) {
  return d.aggs.size() == 1 && d.finalize->kind == Expr::Kind::kVar &&
         d.finalize->str_val == "$agg0";
}

/// Returns a tile oriented so dimension `want_first` of (row, col) comes
/// first; transposes a copy when needed.
la::Tile Oriented(const la::Tile& t, bool transpose) {
  if (!transpose) return t;
  la::Tile out;
  la::Transpose(t, &out);
  return out;
}

// ---- the shared matmul-shaped analysis (5.3 two-generator / 5.4) ----------

bool IsMulOfVars(const ExprPtr& e, const std::string& a,
                 const std::string& b) {
  return e->kind == Expr::Kind::kBinary && e->bin_op == comp::BinOp::kMul &&
         e->children[0]->kind == Expr::Kind::kVar &&
         e->children[1]->kind == Expr::Kind::kVar &&
         e->children[0]->str_val == a && e->children[1]->str_val == b;
}

struct JoinShape {
  // Roles: gen A supplies output rows, gen B output columns (or B is a
  // vector for matrix-vector products).
  size_t gen_a = 0, gen_b = 1;
  size_t a_out_pos = 0;   // position of the output-row index inside A
  size_t a_join_pos = 1;  // position of the join index inside A
  size_t b_out_pos = 1;   // inside B (unused when B is a vector)
  size_t b_join_pos = 0;
  bool b_is_vector = false;
  AggDecomposition aggs;
  // Compiled per-element terms over (a_val, b_val).
  std::vector<ScalarFn> g_fns;
  ScalarFn finalize;       // over the aggregate slots
  bool finalize_identity = false;
  bool gemm_fast_path = false;  // single sum of a*b
};

Result<JoinShape> AnalyzeJoinShape(const QueryShape& shape,
                                   const Bindings& binds,
                                   const std::vector<std::string>& key_vars,
                                   const char* rule) {
  if (shape.gens.size() != 2) {
    return NotApplicable(rule, "needs exactly two generators");
  }
  if (!shape.guards.empty()) {
    return NotApplicable(rule, "extra guards present");
  }
  if (shape.index_eqs.size() != 1) {
    return NotApplicable(rule, "needs exactly one join equality");
  }
  JoinShape js;
  // Locate the join variable pair.
  const auto& [ea, eb] = shape.index_eqs[0];
  auto find_in = [&](size_t gen, const std::string& v) -> std::optional<size_t> {
    for (size_t p = 0; p < shape.gens[gen].idx.size(); ++p) {
      if (shape.gens[gen].idx[p] == v) return p;
    }
    return std::nullopt;
  };
  std::optional<size_t> a0 = find_in(0, ea), b1 = find_in(1, eb);
  std::optional<size_t> a1 = find_in(0, eb), b0 = find_in(1, ea);
  size_t join_pos_0, join_pos_1;
  if (a0 && b1) {
    join_pos_0 = *a0;
    join_pos_1 = *b1;
  } else if (a1 && b0) {
    join_pos_0 = *a1;
    join_pos_1 = *b0;
  } else {
    return NotApplicable(rule, "equality does not join the two generators");
  }

  // Output key variables pick the non-join indices.
  if (key_vars.size() == 2) {
    auto ka0 = find_in(0, key_vars[0]);
    auto kb1 = find_in(1, key_vars[1]);
    auto ka1 = find_in(0, key_vars[1]);
    auto kb0 = find_in(1, key_vars[0]);
    if (ka0 && kb1) {
      js.gen_a = 0;
      js.gen_b = 1;
      js.a_out_pos = *ka0;
      js.b_out_pos = *kb1;
      js.a_join_pos = join_pos_0;
      js.b_join_pos = join_pos_1;
    } else if (ka1 && kb0) {
      // Key order is (B index, A index): swap roles.
      js.gen_a = 1;
      js.gen_b = 0;
      js.a_out_pos = *kb0;
      js.b_out_pos = *ka1;
      js.a_join_pos = join_pos_1;
      js.b_join_pos = join_pos_0;
    } else {
      return NotApplicable(rule, "key does not split across the generators");
    }
    if (shape.gens[js.gen_a].idx.size() != 2 ||
        shape.gens[js.gen_b].idx.size() != 2) {
      return NotApplicable(rule, "matrix output needs two matrix inputs");
    }
  } else if (key_vars.size() == 1) {
    // Matrix-vector product: the vector generator has only the join index.
    size_t vec_gen;
    if (shape.gens[0].idx.size() == 1) {
      vec_gen = 0;
    } else if (shape.gens[1].idx.size() == 1) {
      vec_gen = 1;
    } else {
      return NotApplicable(rule, "vector output needs one vector input");
    }
    const size_t mat_gen = 1 - vec_gen;
    auto kpos = find_in(mat_gen, key_vars[0]);
    if (!kpos) return NotApplicable(rule, "key not a matrix index");
    js.gen_a = mat_gen;
    js.gen_b = vec_gen;
    js.a_out_pos = *kpos;
    js.a_join_pos = mat_gen == 0 ? join_pos_0 : join_pos_1;
    js.b_join_pos = 0;
    js.b_is_vector = true;
    if (js.a_out_pos == js.a_join_pos) {
      return NotApplicable(rule, "degenerate matrix-vector indices");
    }
  } else {
    return NotApplicable(rule, "unsupported key arity");
  }

  // Aggregations over the two element values.
  SAC_ASSIGN_OR_RETURN(js.aggs,
                       ExtractAggs(shape.InlineLets(shape.head_val)));
  ConstEnv consts;
  CollectScalarConsts(binds, &consts);
  const std::string& va = shape.gens[js.gen_a].val;
  const std::string& vb = shape.gens[js.gen_b].val;
  if (va.empty() || vb.empty()) {
    return NotApplicable(rule, "wildcard element values");
  }
  for (const AggInfo& a : js.aggs.aggs) {
    SAC_ASSIGN_OR_RETURN(ScalarFn g,
                         exec::CompileScalarFn(a.g, {va, vb}, consts));
    js.g_fns.push_back(std::move(g));
  }
  std::vector<std::string> agg_args;
  for (size_t k = 0; k < js.aggs.aggs.size(); ++k) {
    agg_args.push_back("$agg" + std::to_string(k));
  }
  SAC_ASSIGN_OR_RETURN(js.finalize, exec::CompileScalarFn(js.aggs.finalize,
                                                          agg_args, consts));
  js.finalize_identity = FinalizeIsIdentity(js.aggs);
  js.gemm_fast_path =
      js.aggs.aggs.size() == 1 && js.aggs.aggs[0].op == ReduceOp::kSum &&
      (IsMulOfVars(js.aggs.aggs[0].g, va, vb) ||
       IsMulOfVars(js.aggs.aggs[0].g, vb, va));
  return js;
}

/// Accumulates the product-shaped partial for one tile pair into `accs`
/// (one accumulator tile per aggregation). `a` is oriented (out x join),
/// `b` oriented (join x out) -- or (1 x join) when B is a vector. The
/// sum-of-products fast path dispatches through the kernel backend `kb`
/// and meters its flops; the closure-driven semiring loops charge a
/// 2-flop/MAC approximation (one g eval + one monoid step).
void AccumulatePair(const JoinShape& js, const la::Tile& a, const la::Tile& b,
                    bool b_is_vector, const la::KernelBackend* kb,
                    Metrics* metrics, std::vector<la::Tile>* accs) {
  if (b_is_vector) {
    // out(0, i) ⊕= g(a(i,k), b(0,k))
    for (size_t m = 0; m < js.g_fns.size(); ++m) {
      la::Tile& am = (*accs)[m];
      const ReduceOp op = js.aggs.aggs[m].op;
      for (int64_t i = 0; i < a.rows(); ++i) {
        double cell = am.At(0, i);
        for (int64_t k = 0; k < a.cols(); ++k) {
          const double args[2] = {a.At(i, k), b.At(0, k)};
          MonoidAccum(op, &cell, js.g_fns[m](args));
        }
        am.Set(0, i, cell);
      }
    }
    la::MeterFlops(metrics, kb->kind(),
                   js.g_fns.size() * 2 * static_cast<uint64_t>(a.size()));
    return;
  }
  if (js.gemm_fast_path) {
    kb->GemmAccum(a, b, &(*accs)[0]);
    la::MeterFlops(metrics, kb->kind(), la::GemmFlops(a, b));
    return;
  }
  // Generic semiring triple loop (supports e.g. min-plus).
  for (size_t m = 0; m < js.g_fns.size(); ++m) {
    la::Tile& am = (*accs)[m];
    const ReduceOp op = js.aggs.aggs[m].op;
    for (int64_t i = 0; i < a.rows(); ++i) {
      for (int64_t j = 0; j < b.cols(); ++j) {
        double cell = am.At(i, j);
        for (int64_t k = 0; k < a.cols(); ++k) {
          const double args[2] = {a.At(i, k), b.At(k, j)};
          MonoidAccum(op, &cell, js.g_fns[m](args));
        }
        am.Set(i, j, cell);
      }
    }
  }
  la::MeterFlops(metrics, kb->kind(),
                 js.g_fns.size() * 2 * static_cast<uint64_t>(a.rows()) *
                     static_cast<uint64_t>(b.cols()) *
                     static_cast<uint64_t>(a.cols()));
}

/// The kernel backend a run closure dispatches tile math through: the
/// forced jvmlike baseline when the planner option is set, otherwise the
/// engine's env-resolved backend (SAC_KERNEL_BACKEND).
const la::KernelBackend* RunBackendFor(Engine* eng, bool use_jvmlike) {
  return use_jvmlike ? la::GetBackend(la::BackendKind::kJvmlike)
                     : eng->kernel_backend();
}

}  // namespace

// ===========================================================================
// Section 5.3: group-by comprehensions via reduceByKey
// ===========================================================================

Result<CompiledQuery> TryReduceByKey(const QueryShape& shape,
                                     const Bindings& binds,
                                     const PlannerOptions& opts) {
  static const char* kRule = "reduce-by-key (5.3)";
  if (!shape.has_group_by) return NotApplicable(kRule, "no group-by");
  SAC_ASSIGN_OR_RETURN(std::vector<std::string> key_vars, [&]() {
    std::vector<std::string> out;
    const ExprPtr& k = shape.head_key;
    if (k->kind == Expr::Kind::kVar) {
      out.push_back(k->str_val);
    } else if (k->kind == Expr::Kind::kTuple) {
      for (const auto& c : k->children) {
        if (c->kind != Expr::Kind::kVar) return Result<std::vector<std::string>>(
            NotApplicable(kRule, "non-variable head key"));
        out.push_back(c->str_val);
      }
    } else {
      return Result<std::vector<std::string>>(
          NotApplicable(kRule, "head key is not a variable tuple"));
    }
    return Result<std::vector<std::string>>(out);
  }());
  if (key_vars != shape.group_key_vars) {
    return NotApplicable(kRule, "head key differs from group-by key");
  }
  // Dims/block.
  auto dims_r = [&]() -> Result<std::pair<bool, std::pair<int64_t, int64_t>>> {
    if (shape.builder != "tiled") {
      return NotApplicable(kRule, "builder is not tiled");
    }
    if (shape.builder_args.size() == 1) {
      SAC_ASSIGN_OR_RETURN(int64_t n,
                           EvalScalarInt(shape.builder_args[0], binds));
      return std::make_pair(true, std::make_pair(n, int64_t{1}));
    }
    if (shape.builder_args.size() == 2) {
      SAC_ASSIGN_OR_RETURN(int64_t n,
                           EvalScalarInt(shape.builder_args[0], binds));
      SAC_ASSIGN_OR_RETURN(int64_t m,
                           EvalScalarInt(shape.builder_args[1], binds));
      return std::make_pair(false, std::make_pair(n, m));
    }
    return NotApplicable(kRule, "bad builder arity");
  }();
  SAC_RETURN_NOT_OK(dims_r.status());
  const bool out_is_vector = dims_r.value().first;
  const int64_t out_rows = dims_r.value().second.first;
  const int64_t out_cols = dims_r.value().second.second;
  SAC_ASSIGN_OR_RETURN(int64_t block, [&]() -> Result<int64_t> {
    int64_t b = -1;
    for (const GenInfo& g : shape.gens) {
      auto it = binds.find(g.source);
      if (it == binds.end()) return NotApplicable(kRule, "unbound source");
      int64_t tb;
      if (it->second.kind == Binding::Kind::kTiled) {
        tb = it->second.tiled.block;
      } else if (it->second.kind == Binding::Kind::kBlockVector) {
        tb = it->second.vec.block;
      } else {
        return NotApplicable(kRule, "source is not a block array");
      }
      if (b != -1 && b != tb) return NotApplicable(kRule, "block mismatch");
      b = tb;
    }
    if (b <= 0) return NotApplicable(kRule, "no block inputs");
    return b;
  }());

  // ---- two-generator matmul-shaped case -----------------------------------
  if (shape.gens.size() == 2) {
    SAC_ASSIGN_OR_RETURN(JoinShape js,
                         AnalyzeJoinShape(shape, binds, key_vars, kRule));
    const Binding& ba = binds.at(shape.gens[js.gen_a].source);
    const Binding& bb = binds.at(shape.gens[js.gen_b].source);
    if (ba.kind != Binding::Kind::kTiled) {
      return NotApplicable(kRule, "left input is not tiled");
    }
    if (js.b_is_vector ? bb.kind != Binding::Kind::kBlockVector
                       : bb.kind != Binding::Kind::kTiled) {
      return NotApplicable(kRule, "right input kind mismatch");
    }
    std::vector<ReduceOp> ops;
    for (const auto& a : js.aggs.aggs) ops.push_back(a.op);
    const bool use_jvmlike = opts.use_jvmlike_kernels;
    const TiledMatrix A = ba.tiled;
    const Binding B = bb;

    // Cost-based partition sizing: one reduce partition per output tile,
    // capped at the engine parallelism (docs/COST_MODEL.md).
    int reduce_np = -1;
    if (AutoStrategyEnabled(opts)) {
      const int64_t out_tiles =
          storage::CeilDiv(out_rows, block) *
          (out_is_vector ? 1 : storage::CeilDiv(out_cols, block));
      const int64_t par = opts.cluster.default_parallelism > 0
                              ? opts.cluster.default_parallelism
                              : 8;
      reduce_np = static_cast<int>(std::clamp<int64_t>(out_tiles, 1, par));
    }

    CompiledQuery q;
    q.strategy = Strategy::kReduceByKey;
    q.explanation = "5.3 tile join on the shared index, per-pair partial "
                    "products, reduceByKey with a tile monoid";
    {
      PlanBuilder pb(shape.pos);
      PlanNodePtr sa = pb.Source(shape.gens[js.gen_a].source, 2,
                                 shape.gens[js.gen_a].pos);
      PlanNodePtr ka = pb.Narrow(PlanNode::Op::kMap, "keyByJoinDim", sa, 1);
      PlanNodePtr sb =
          pb.Source(shape.gens[js.gen_b].source, js.b_is_vector ? 1 : 2,
                    shape.gens[js.gen_b].pos);
      PlanNodePtr kb2 = js.b_is_vector
                            ? sb
                            : pb.Narrow(PlanNode::Op::kMap, "keyByJoinDim",
                                        sb, 1);
      PlanNodePtr joined =
          pb.Shuffle(PlanNode::Op::kJoin, "joinTiles", {ka, kb2}, 1);
      const int out_key = js.b_is_vector ? 1 : 2;
      PlanNodePtr partials =
          pb.Narrow(PlanNode::Op::kMap, "partialProducts", joined, out_key);
      PlanNodePtr reduced =
          pb.Shuffle(PlanNode::Op::kReduceByKey, "reduceTiles", {partials},
                     out_key, reduce_np);
      q.plan = pb.Narrow(PlanNode::Op::kMap, "finalize", reduced, out_key,
                         /*preserves_partitioning=*/true);
      q.plan_nodes = pb.TakeNodes();
    }
    q.run = [=](Engine* eng) -> Result<QueryResult> {
      const la::KernelBackend* kbk = RunBackendFor(eng, use_jvmlike);
      Metrics* mets = &eng->metrics();
      // Key A tiles by join coordinate.
      SAC_ASSIGN_OR_RETURN(
          Dataset ka,
          eng->Map(
              A.tiles,
              [js](const Value& row) {
                const ValueVec& c = row.At(0).AsTuple();
                return VPair(c[js.a_join_pos],
                             VPair(c[js.a_out_pos], row.At(1)));
              },
              "keyByJoinDim"));
      Dataset kb;
      if (js.b_is_vector) {
        kb = B.vec.blocks;
      } else {
        SAC_ASSIGN_OR_RETURN(
            kb, eng->Map(
                    B.tiled.tiles,
                    [js](const Value& row) {
                      const ValueVec& c = row.At(0).AsTuple();
                      return VPair(c[js.b_join_pos],
                                   VPair(c[js.b_out_pos], row.At(1)));
                    },
                    "keyByJoinDim"));
      }
      SAC_ASSIGN_OR_RETURN(Dataset joined, eng->Join(ka, kb));
      // Per joined pair: partial aggregate tiles keyed by output coord.
      const bool a_swap = (js.a_out_pos == 1);  // stored (k, i): transpose
      const bool b_swap = !js.b_is_vector && (js.b_join_pos == 1);
      SAC_ASSIGN_OR_RETURN(
          Dataset partials,
          eng->Map(
              joined,
              [=](const Value& row) -> Value {
                const Value& av = row.At(1).At(0);
                const Value& bv = row.At(1).At(1);
                const la::Tile a =
                    Oriented(av.At(1).AsTile(), a_swap);
                Value out_key;
                ValueVec accs_v;
                if (js.b_is_vector) {
                  const la::Tile& b = bv.AsTile();
                  out_key = av.At(0);
                  std::vector<la::Tile> accs;
                  for (ReduceOp op : ops) {
                    accs.push_back(
                        FilledTile(1, a.rows(), MonoidIdentity(op)));
                  }
                  AccumulatePair(js, a, b, true, kbk, mets, &accs);
                  for (auto& t : accs) {
                    accs_v.push_back(Value::TileVal(std::move(t)));
                  }
                } else {
                  const la::Tile b = Oriented(bv.At(1).AsTile(), b_swap);
                  out_key = runtime::VTuple({av.At(0), bv.At(0)});
                  std::vector<la::Tile> accs;
                  for (ReduceOp op : ops) {
                    accs.push_back(
                        FilledTile(a.rows(), b.cols(), MonoidIdentity(op)));
                  }
                  AccumulatePair(js, a, b, false, kbk, mets, &accs);
                  for (auto& t : accs) {
                    accs_v.push_back(Value::TileVal(std::move(t)));
                  }
                }
                return VPair(out_key, runtime::VTuple(std::move(accs_v)));
              },
              "partialProducts"));
      SAC_ASSIGN_OR_RETURN(Dataset reduced,
                           eng->ReduceByKey(partials, TupleTileCombine(ops),
                                            reduce_np));
      // Finalize.
      const ScalarFn fin = js.finalize;
      const bool identity = js.finalize_identity;
      SAC_ASSIGN_OR_RETURN(
          Dataset out,
          eng->Map(
              reduced,
              [fin, identity](const Value& row) -> Value {
                if (identity) return VPair(row.At(0), row.At(1).At(0));
                auto t = FinalizeTiles(fin, row.At(1).AsTuple());
                return VPair(row.At(0),
                             Value::TileVal(std::move(t).value()));
              },
              "finalize"));
      QueryResult r;
      if (out_is_vector) {
        r.kind = QueryResult::Kind::kBlockVector;
        r.vec = storage::BlockVector{out_rows, block, out};
      } else {
        r.kind = QueryResult::Kind::kTiled;
        r.tiled = TiledMatrix{out_rows, out_cols, block, out};
      }
      return r;
    };
    return q;
  }

  // ---- single-generator case (axis reductions etc.) ------------------------
  if (shape.gens.size() == 1) {
    const GenInfo& gen = shape.gens[0];
    const Binding& bsrc = binds.at(gen.source);
    if (bsrc.kind != Binding::Kind::kTiled) {
      return NotApplicable(kRule, "single-generator case needs a matrix");
    }
    if (!shape.index_eqs.empty()) {
      return NotApplicable(kRule, "index equalities unsupported here");
    }
    // Key var positions within the generator.
    std::vector<size_t> key_pos;
    for (const auto& kv : key_vars) {
      bool found = false;
      for (size_t p = 0; p < gen.idx.size(); ++p) {
        if (gen.idx[p] == kv) {
          key_pos.push_back(p);
          found = true;
        }
      }
      if (!found) return NotApplicable(kRule, "key is not an input index");
    }
    SAC_ASSIGN_OR_RETURN(AggDecomposition aggs,
                         ExtractAggs(shape.InlineLets(shape.head_val)));
    ConstEnv consts;
    CollectScalarConsts(binds, &consts);
    // Per-element terms over (i, j, v) as doubles.
    std::vector<std::string> dargs = gen.idx;
    if (gen.val.empty()) return NotApplicable(kRule, "wildcard value");
    dargs.push_back(gen.val);
    std::vector<ScalarFn> g_fns;
    for (const AggInfo& a : aggs.aggs) {
      SAC_ASSIGN_OR_RETURN(ScalarFn g,
                           exec::CompileScalarFn(a.g, dargs, consts));
      g_fns.push_back(std::move(g));
    }
    std::vector<exec::PredFn> preds;
    for (const auto& g : shape.guards) {
      SAC_ASSIGN_OR_RETURN(
          exec::PredFn p,
          exec::CompileIntPred(shape.InlineLets(g), gen.idx, consts));
      preds.push_back(std::move(p));
    }
    std::vector<std::string> agg_args;
    for (size_t k = 0; k < aggs.aggs.size(); ++k) {
      agg_args.push_back("$agg" + std::to_string(k));
    }
    SAC_ASSIGN_OR_RETURN(ScalarFn fin, exec::CompileScalarFn(aggs.finalize,
                                                             agg_args,
                                                             consts));
    const bool identity = FinalizeIsIdentity(aggs);
    std::vector<ReduceOp> ops;
    for (const auto& a : aggs.aggs) ops.push_back(a.op);
    // Fast path: full-row / full-column sums with g == v.
    const bool g_is_val = aggs.aggs.size() == 1 &&
                          aggs.aggs[0].op == ReduceOp::kSum &&
                          aggs.aggs[0].g->kind == Expr::Kind::kVar &&
                          aggs.aggs[0].g->str_val == gen.val &&
                          preds.empty();
    const bool row_sums = g_is_val && out_is_vector && key_pos[0] == 0;
    const bool col_sums = g_is_val && out_is_vector && key_pos[0] == 1;

    const TiledMatrix A = bsrc.tiled;
    const bool opts_use_jvmlike = opts.use_jvmlike_kernels;
    const bool vec_out = out_is_vector;
    const std::vector<size_t> kpos = key_pos;
    const int64_t orows = out_rows, ocols = out_cols, N = block;

    int reduce_np = -1;
    if (AutoStrategyEnabled(opts)) {
      const int64_t out_tiles =
          storage::CeilDiv(orows, N) *
          (vec_out ? 1 : storage::CeilDiv(ocols, N));
      const int64_t par = opts.cluster.default_parallelism > 0
                              ? opts.cluster.default_parallelism
                              : 8;
      reduce_np = static_cast<int>(std::clamp<int64_t>(out_tiles, 1, par));
    }

    CompiledQuery q;
    q.strategy = Strategy::kReduceByKey;
    q.explanation = row_sums || col_sums
                        ? "5.3 per-tile axis reduction + reduceByKey"
                        : "5.3 per-tile partial aggregation + reduceByKey";
    {
      PlanBuilder pb(shape.pos);
      PlanNodePtr src_n = pb.Source(gen.source, 2, gen.pos);
      const int out_key = vec_out ? 1 : 2;
      PlanNodePtr partials = pb.Narrow(PlanNode::Op::kFlatMap,
                                       "partialAggregates", src_n, out_key);
      PlanNodePtr reduced =
          pb.Shuffle(PlanNode::Op::kReduceByKey, "reduceTiles", {partials},
                     out_key, reduce_np);
      q.plan = pb.Narrow(PlanNode::Op::kMap, "finalize", reduced, out_key,
                         /*preserves_partitioning=*/true);
      q.plan_nodes = pb.TakeNodes();
    }
    q.run = [=](Engine* eng) -> Result<QueryResult> {
      const la::KernelBackend* kbk =
          RunBackendFor(eng, opts_use_jvmlike);
      Metrics* mets = &eng->metrics();
      SAC_ASSIGN_OR_RETURN(
          Dataset partials,
          eng->FlatMap(
              A.tiles,
              [=](const Value& row, ValueVec* out) {
                const int64_t bi = row.At(0).At(0).AsInt();
                const int64_t bj = row.At(0).At(1).AsInt();
                const la::Tile& t = row.At(1).AsTile();
                if (row_sums || col_sums) {
                  const int64_t len = row_sums ? t.rows() : t.cols();
                  la::Tile part(1, len);
                  if (row_sums) {
                    kbk->RowSums(t, part.data());
                  } else {
                    kbk->ColSums(t, part.data());
                  }
                  la::MeterFlops(mets, kbk->kind(),
                                 static_cast<uint64_t>(t.size()));
                  out->push_back(
                      VPair(VInt(row_sums ? bi : bj),
                            runtime::VTuple(
                                {Value::TileVal(std::move(part))})));
                  return;
                }
                // Generic: bucket per output block.
                struct Acc {
                  std::vector<la::Tile> tiles;
                };
                std::unordered_map<Value, Acc, runtime::ValueHash,
                                   runtime::ValueEq>
                    buckets;
                for (int64_t i = 0; i < t.rows(); ++i) {
                  for (int64_t j = 0; j < t.cols(); ++j) {
                    int64_t iargs[2] = {bi * N + i, bj * N + j};
                    bool pass = true;
                    for (const auto& p : preds) {
                      if (!p(iargs)) {
                        pass = false;
                        break;
                      }
                    }
                    if (!pass) continue;
                    double dargs_v[3] = {static_cast<double>(iargs[0]),
                                         static_cast<double>(iargs[1]),
                                         t.At(i, j)};
                    // Output coordinates from the key positions.
                    int64_t o0 = iargs[kpos[0]];
                    int64_t o1 = kpos.size() > 1 ? iargs[kpos[1]] : 0;
                    if (o0 < 0 || o0 >= orows || o1 < 0 || o1 >= ocols) {
                      continue;
                    }
                    Value bkey = vec_out
                                     ? VInt(o0 / N)
                                     : runtime::VIdx2(o0 / N, o1 / N);
                    auto [it, inserted] = buckets.try_emplace(bkey);
                    if (inserted) {
                      const int64_t br = vec_out
                                             ? 1
                                             : std::min(N, orows -
                                                               (o0 / N) * N);
                      const int64_t bc =
                          vec_out ? std::min(N, orows - (o0 / N) * N)
                                  : std::min(N, ocols - (o1 / N) * N);
                      for (ReduceOp op : ops) {
                        it->second.tiles.push_back(
                            FilledTile(br, bc, MonoidIdentity(op)));
                      }
                    }
                    for (size_t m = 0; m < g_fns.size(); ++m) {
                      la::Tile& acc = it->second.tiles[m];
                      double* cell =
                          vec_out ? &acc.data()[o0 % N]
                                  : &acc.data()[(o0 % N) * acc.cols() +
                                                (o1 % N)];
                      MonoidAccum(ops[m], cell, g_fns[m](dargs_v));
                    }
                  }
                }
                for (auto& [bkey, acc] : buckets) {
                  ValueVec tiles_v;
                  for (auto& tt : acc.tiles) {
                    tiles_v.push_back(Value::TileVal(std::move(tt)));
                  }
                  out->push_back(
                      VPair(bkey, runtime::VTuple(std::move(tiles_v))));
                }
              },
              "partialAggregates"));
      SAC_ASSIGN_OR_RETURN(Dataset reduced,
                           eng->ReduceByKey(partials, TupleTileCombine(ops),
                                            reduce_np));
      SAC_ASSIGN_OR_RETURN(
          Dataset out,
          eng->Map(
              reduced,
              [fin, identity](const Value& row) -> Value {
                if (identity) return VPair(row.At(0), row.At(1).At(0));
                auto t = FinalizeTiles(fin, row.At(1).AsTuple());
                return VPair(row.At(0),
                             Value::TileVal(std::move(t).value()));
              },
              "finalize"));
      QueryResult r;
      if (vec_out) {
        r.kind = QueryResult::Kind::kBlockVector;
        r.vec = storage::BlockVector{orows, N, out};
      } else {
        r.kind = QueryResult::Kind::kTiled;
        r.tiled = TiledMatrix{orows, ocols, N, out};
      }
      return r;
    };
    return q;
  }

  return NotApplicable(kRule, "unsupported generator count");
}

// ===========================================================================
// Section 5.4: the group-by-join (SUMMA)
// ===========================================================================

Result<CompiledQuery> TryGroupByJoin(const QueryShape& shape,
                                     const Bindings& binds,
                                     const PlannerOptions& opts) {
  static const char* kRule = "group-by-join (5.4)";
  if (!shape.has_group_by) return NotApplicable(kRule, "no group-by");
  if (shape.gens.size() != 2) {
    return NotApplicable(kRule, "needs exactly two generators");
  }
  if (shape.builder != "tiled" || shape.builder_args.size() != 2) {
    return NotApplicable(kRule, "needs a tiled matrix output");
  }
  std::vector<std::string> key_vars;
  if (shape.head_key->kind == Expr::Kind::kTuple &&
      shape.head_key->children.size() == 2 &&
      shape.head_key->children[0]->kind == Expr::Kind::kVar &&
      shape.head_key->children[1]->kind == Expr::Kind::kVar) {
    key_vars = {shape.head_key->children[0]->str_val,
                shape.head_key->children[1]->str_val};
  } else {
    return NotApplicable(kRule, "head key is not a variable pair");
  }
  if (key_vars != shape.group_key_vars) {
    return NotApplicable(kRule, "head key differs from group-by key");
  }
  SAC_ASSIGN_OR_RETURN(JoinShape js,
                       AnalyzeJoinShape(shape, binds, key_vars, kRule));
  if (js.b_is_vector) {
    return NotApplicable(kRule, "matrix-vector handled by 5.3");
  }
  const Binding& ba = binds.at(shape.gens[js.gen_a].source);
  const Binding& bb = binds.at(shape.gens[js.gen_b].source);
  if (ba.kind != Binding::Kind::kTiled || bb.kind != Binding::Kind::kTiled) {
    return NotApplicable(kRule, "inputs are not tiled matrices");
  }
  if (ba.tiled.block != bb.tiled.block) {
    return NotApplicable(kRule, "block size mismatch");
  }
  SAC_ASSIGN_OR_RETURN(int64_t out_rows,
                       EvalScalarInt(shape.builder_args[0], binds));
  SAC_ASSIGN_OR_RETURN(int64_t out_cols,
                       EvalScalarInt(shape.builder_args[1], binds));
  const int64_t block = ba.tiled.block;
  const int64_t out_gr = storage::CeilDiv(out_rows, block);
  const int64_t out_gc = storage::CeilDiv(out_cols, block);

  std::vector<ReduceOp> ops;
  for (const auto& a : js.aggs.aggs) ops.push_back(a.op);
  const bool use_jvmlike = opts.use_jvmlike_kernels;
  const TiledMatrix A = ba.tiled, B = bb.tiled;

  CompiledQuery q;
  q.strategy = Strategy::kGroupByJoin;
  q.explanation =
      "5.4 group-by-join: replicate row/column tile panels and cogroup "
      "(SUMMA); " +
      std::to_string(out_gc) + "x replication of " +
      shape.gens[js.gen_a].source + ", " + std::to_string(out_gr) + "x of " +
      shape.gens[js.gen_b].source;
  {
    PlanBuilder pb(shape.pos);
    PlanNodePtr sa = pb.Source(shape.gens[js.gen_a].source, 2,
                               shape.gens[js.gen_a].pos);
    PlanNodePtr sb = pb.Source(shape.gens[js.gen_b].source, 2,
                               shape.gens[js.gen_b].pos);
    PlanNodePtr ra = pb.Narrow(PlanNode::Op::kFlatMap, "replicateA", sa, 2);
    PlanNodePtr rb = pb.Narrow(PlanNode::Op::kFlatMap, "replicateB", sb, 2);
    PlanNodePtr cg =
        pb.Shuffle(PlanNode::Op::kCoGroup, "cogroupPanels", {ra, rb}, 2);
    q.plan = pb.Narrow(PlanNode::Op::kFlatMap, "summaMultiply", cg, 2,
                       /*preserves_partitioning=*/true);
    q.plan_nodes = pb.TakeNodes();
  }
  q.run = [=](Engine* eng) -> Result<QueryResult> {
    const la::KernelBackend* kbk = RunBackendFor(eng, use_jvmlike);
    Metrics* mets = &eng->metrics();
    const bool a_swap = (js.a_out_pos == 1);
    const bool b_swap = (js.b_join_pos == 1);
    // As: every A tile goes to every output column panel.
    SAC_ASSIGN_OR_RETURN(
        Dataset as,
        eng->FlatMap(
            A.tiles,
            [=](const Value& row, ValueVec* out) {
              const ValueVec& c = row.At(0).AsTuple();
              const Value i = c[js.a_out_pos];
              const Value k = c[js.a_join_pos];
              for (int64_t q2 = 0; q2 < out_gc; ++q2) {
                out->push_back(VPair(runtime::VTuple({i, VInt(q2)}),
                                     VPair(k, row.At(1))));
              }
            },
            "replicateA"));
    SAC_ASSIGN_OR_RETURN(
        Dataset bs,
        eng->FlatMap(
            B.tiles,
            [=](const Value& row, ValueVec* out) {
              const ValueVec& c = row.At(0).AsTuple();
              const Value j = c[js.b_out_pos];
              const Value k = c[js.b_join_pos];
              for (int64_t q2 = 0; q2 < out_gr; ++q2) {
                out->push_back(VPair(runtime::VTuple({VInt(q2), j}),
                                     VPair(k, row.At(1))));
              }
            },
            "replicateB"));
    SAC_ASSIGN_OR_RETURN(Dataset cg, eng->CoGroup(as, bs));
    const ScalarFn fin = js.finalize;
    const bool identity = js.finalize_identity;
    SAC_ASSIGN_OR_RETURN(
        Dataset out,
        eng->FlatMap(
            cg,
            [=](const Value& row, ValueVec* outv) {
              const ValueVec& a_list = row.At(1).At(0).AsList();
              const ValueVec& b_list = row.At(1).At(1).AsList();
              if (a_list.empty() || b_list.empty()) return;
              // Index B panel tiles by join coordinate.
              std::unordered_map<int64_t, std::vector<const Value*>> b_by_k;
              for (const Value& bv : b_list) {
                b_by_k[bv.At(0).AsInt()].push_back(&bv);
              }
              const int64_t K1 = row.At(0).At(0).AsInt();
              const int64_t K2 = row.At(0).At(1).AsInt();
              const int64_t r = std::min(block, out_rows - K1 * block);
              const int64_t ccols = std::min(block, out_cols - K2 * block);
              if (r <= 0 || ccols <= 0) return;
              std::vector<la::Tile> accs;
              for (ReduceOp op : ops) {
                accs.push_back(FilledTile(r, ccols, MonoidIdentity(op)));
              }
              bool any = false;
              for (const Value& av : a_list) {
                auto it = b_by_k.find(av.At(0).AsInt());
                if (it == b_by_k.end()) continue;
                const la::Tile a = Oriented(av.At(1).AsTile(), a_swap);
                for (const Value* bv : it->second) {
                  const la::Tile b = Oriented(bv->At(1).AsTile(), b_swap);
                  AccumulatePair(js, a, b, false, kbk, mets, &accs);
                  any = true;
                }
              }
              if (!any) return;
              Value out_tile;
              if (identity) {
                out_tile = Value::TileVal(std::move(accs[0]));
              } else {
                ValueVec tiles_v;
                for (auto& t : accs) {
                  tiles_v.push_back(Value::TileVal(std::move(t)));
                }
                auto t = FinalizeTiles(fin, tiles_v);
                if (!t.ok()) return;
                out_tile = Value::TileVal(std::move(t).value());
              }
              outv->push_back(VPair(row.At(0), std::move(out_tile)));
            },
            "summaMultiply"));
    QueryResult res;
    res.kind = QueryResult::Kind::kTiled;
    res.tiled = TiledMatrix{out_rows, out_cols, block, out};
    return res;
  };
  return q;
}

}  // namespace sac::planner
