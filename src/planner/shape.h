// Structural analysis of a normalized comprehension: extracts generators,
// index equalities, guards, lets, group-by and head into a flat record the
// translation rules of Sections 4-5 pattern-match on.
#ifndef SAC_PLANNER_SHAPE_H_
#define SAC_PLANNER_SHAPE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/comp/ast.h"

namespace sac::planner {

/// One generator over a named array binding. `idx` holds the index
/// variable names (2 for matrices, 1 for vectors); `val` the element
/// variable ("" when the pattern uses a wildcard).
struct GenInfo {
  std::string source;
  std::vector<std::string> idx;
  std::string val;
  comp::Pos pos;
};

/// A `let p = e` with a single-variable pattern.
struct LetInfo {
  std::string var;
  comp::ExprPtr expr;
};

struct QueryShape {
  std::string builder;  // "tiled", "rdd", "matrix", ... ("" if bare comp)
  std::vector<comp::ExprPtr> builder_args;

  std::vector<GenInfo> gens;
  std::vector<LetInfo> lets;
  /// Guards of the form v1 == v2 where both are index variables.
  std::vector<std::pair<std::string, std::string>> index_eqs;
  /// All remaining guards, in order.
  std::vector<comp::ExprPtr> guards;

  bool has_group_by = false;
  std::vector<std::string> group_key_vars;  // flattened key pattern vars

  comp::ExprPtr head_key;  // first component of the head pair
  comp::ExprPtr head_val;  // second component
  comp::Pos pos;

  /// Index of the generator binding index variable `v`, with its position
  /// inside that generator's index list; nullopt when not an index var.
  struct IdxRef {
    size_t gen;
    size_t pos;
  };
  std::optional<IdxRef> FindIndexVar(const std::string& v) const;

  /// Resolves `v` through index equalities: if v is equated to an index
  /// variable of generator g, returns that reference.
  std::optional<IdxRef> ResolveVar(const std::string& v) const;

  /// Inlines all lets into an expression (repeatedly substitutes).
  comp::ExprPtr InlineLets(const comp::ExprPtr& e) const;
};

/// Analyzes a normalized `builder(args)[ (key, val) | quals ]` (or bare
/// comprehension). Fails with PlanError on shapes outside the supported
/// fragment; the caller then falls back to a general strategy.
Result<QueryShape> AnalyzeShape(const comp::ExprPtr& e);

}  // namespace sac::planner

#endif  // SAC_PLANNER_SHAPE_H_
