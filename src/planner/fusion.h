// Elementwise pattern matching for the fusion pass (docs/KERNELS.md).
// The 5.1 planner compiles the scalar head of an elementwise query; these
// matchers recognize the shapes with dedicated kernels -- a+b, a-b, a*b,
// alpha*a + beta*b, alpha*a -- so no fig4 query falls back to per-element
// closure evaluation, and the run closure can fuse transposed reads into
// the same pass (src/la/fused.h). Coefficients may be any expression that
// constant-folds over literals and bound scalars (e.g. fig4c's
// `__gl*p + __tg*g` with __gl/__tg scalar bindings).
#ifndef SAC_PLANNER_FUSION_H_
#define SAC_PLANNER_FUSION_H_

#include <cstdint>
#include <string>

#include "src/comp/ast.h"
#include "src/exec/scalar_fn.h"

namespace sac::planner {

/// Recognized two-operand elementwise head shapes. alpha/beta apply to
/// kAxpby (value = alpha*arg0 + beta*arg1). flops_per_element feeds the
/// per-backend flop counters and the cost model.
struct ZipPattern {
  enum class Kind { kAdd, kSub, kMul, kAxpby, kGeneric };
  Kind kind = Kind::kGeneric;
  double alpha = 1.0;
  double beta = 1.0;
  uint64_t flops_per_element = 1;
};

/// Matches `hv` over element arguments arg0/arg1. Never fails: unmatched
/// shapes come back as kGeneric (closure/program evaluation).
ZipPattern MatchZipPattern(const comp::ExprPtr& hv, const std::string& arg0,
                           const std::string& arg1,
                           const exec::ConstEnv& consts);

/// Recognized one-operand elementwise head shapes.
struct MapPattern {
  enum class Kind { kIdentity, kScale, kGeneric };
  Kind kind = Kind::kGeneric;
  double alpha = 1.0;  // kScale: value = alpha*arg
  uint64_t flops_per_element = 1;
};

MapPattern MatchMapPattern(const comp::ExprPtr& hv, const std::string& arg,
                           const exec::ConstEnv& consts);

}  // namespace sac::planner

#endif  // SAC_PLANNER_FUSION_H_
