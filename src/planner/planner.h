// Query compilation: turns a normalized comprehension plus bindings into
// an executable physical plan over the DISC engine, choosing among the
// paper's translation strategies:
//
//   5.4 group-by-join (SUMMA)        -- TryGroupByJoin
//   5.3 join + reduceByKey on tiles  -- TryReduceByKey
//   5.1 tiling-preserving tile join  -- TryTilingPreserving
//   5.2 replication sets I_f(K)      -- TryReplication
//   4   coordinate-format fallback   -- TryCoo
//   --  local fallback (collect + reference eval, small data)
//
// Each Try* returns PlanError when its pattern does not apply; CompileQuery
// tries them in the order above (a strategy that shuffles less is always
// preferred) and returns the first plan that matches.
#ifndef SAC_PLANNER_PLANNER_H_
#define SAC_PLANNER_PLANNER_H_

#include <string>

#include "src/common/status.h"
#include "src/comp/ast.h"
#include "src/planner/plan.h"
#include "src/planner/shape.h"

namespace sac::planner {

/// Compiles a query expression (already normalized by comp::Normalize).
/// `binds` must outlive compilation only; the returned plan owns copies of
/// everything it needs.
Result<CompiledQuery> CompileQuery(const comp::ExprPtr& query,
                                   const Bindings& binds,
                                   const PlannerOptions& opts);

// ---- individual strategies (exposed for unit tests) -----------------------

Result<CompiledQuery> TryGroupByJoin(const QueryShape& shape,
                                     const Bindings& binds,
                                     const PlannerOptions& opts);
Result<CompiledQuery> TryReduceByKey(const QueryShape& shape,
                                     const Bindings& binds,
                                     const PlannerOptions& opts);
Result<CompiledQuery> TryTilingPreserving(const QueryShape& shape,
                                          const Bindings& binds,
                                          const PlannerOptions& opts);
Result<CompiledQuery> TryReplication(const QueryShape& shape,
                                     const Bindings& binds,
                                     const PlannerOptions& opts);
Result<CompiledQuery> TryCoo(const QueryShape& shape, const Bindings& binds,
                             const PlannerOptions& opts);

/// Total aggregation `op/[ e | quals ]` over one distributed generator.
Result<CompiledQuery> TryTotalAggregate(const comp::ExprPtr& query,
                                        const Bindings& binds,
                                        const PlannerOptions& opts);

/// Collect-everything fallback; refuses when inputs exceed
/// opts.local_fallback_max_cells.
Result<CompiledQuery> LocalFallbackPlan(const comp::ExprPtr& query,
                                        const Bindings& binds,
                                        const PlannerOptions& opts);

// ---- shared helpers --------------------------------------------------------

/// Whether cost-based planning is active: PlannerOptions::auto_strategy
/// unless the SAC_AUTO_STRATEGY=off escape hatch overrides it.
bool AutoStrategyEnabled(const PlannerOptions& opts);

/// Evaluates a builder argument / scalar expression to an int64 using the
/// scalar bindings.
Result<int64_t> EvalScalarInt(const comp::ExprPtr& e, const Bindings& binds);

/// All numeric scalar bindings as an exec::ConstEnv.
void CollectScalarConsts(const Bindings& binds,
                         std::unordered_map<std::string, double>* out);

}  // namespace sac::planner

#endif  // SAC_PLANNER_PLANNER_H_
