// Memory manager + block store: budgeted caching of materialized
// partitions with LRU spill-eviction and transparent reload, the layer
// that lets workloads whose working set exceeds RAM run out-of-core
// (docs/MEMORY_MODEL.md; DESIGN.md section 10).
//
// Two pieces:
//  * MemoryManager -- pure accounting: resident partition bytes charged
//    against a global budget (0 = unlimited), with a monotone peak
//    high-water mark.
//  * BlockStore    -- the registry of every materialized partition
//    ("block"), keyed by (owner dataset, partition index). Publishing a
//    block charges its Value::SerializedSize footprint; when the charge
//    pushes resident + pooled-buffer bytes over the budget, the store
//    first trims the engine's shuffle buffer pools (cheap, reclaimable)
//    and then evicts least-recently-used unpinned blocks to spill files.
//    Pin() brings an evicted block back from its spill file; if the file
//    is unreadable (kDataLoss), the block is dropped and the caller is
//    told to recompute it from lineage -- composing with the PR 4
//    retry/recovery machinery rather than duplicating it.
//
// Pin discipline: every task-side read of a partition holds a pin for
// the duration of the access, so the rows of an in-flight task are never
// evicted under it. Pins are cheap (one mutex hop) and must be balanced;
// Shutdown() SAC_CHECKs that none remain. Priority blocks (DIABLO
// in-loop datasets, checkpointed nodes) are evicted only when no
// ordinary victim remains.
//
// Concurrency: one mutex guards the whole store, and spill I/O happens
// under it. That serializes evictions/reloads against each other --
// deliberately: correctness of the accounting and of the LRU state is
// the point, and eviction I/O is already the slow path. The accounting
// gauges (resident/peak) are lock-free atomics so hot-path readers never
// touch the lock.
#ifndef SAC_RUNTIME_MEMORY_H_
#define SAC_RUNTIME_MEMORY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/runtime/value.h"

namespace sac::runtime::memory {

/// Parses SAC_MEM_BUDGET ("268435456", "256M", "1G", "512K", "0" =
/// unlimited); returns `fallback` when the variable is unset or
/// unparseable. The env var wins over the config field so operators can
/// impose a budget on any binary without a code change.
uint64_t BudgetFromEnv(uint64_t fallback);

/// Same parsing for an arbitrary byte-size env var (e.g.
/// SAC_SESSION_MEM_BUDGET, the default per-session slice).
uint64_t BudgetFromEnv(const char* var, uint64_t fallback);

/// Budget accounting: resident partition bytes vs. a fixed cap.
/// Thread-safe; all operations are single atomics.
class MemoryManager {
 public:
  explicit MemoryManager(uint64_t budget_bytes) : budget_(budget_bytes) {}

  /// 0 means unlimited (no eviction ever happens).
  uint64_t budget() const { return budget_; }
  bool unlimited() const { return budget_ == 0; }

  void Charge(uint64_t bytes) {
    const uint64_t now =
        resident_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    uint64_t prev = peak_.load(std::memory_order_relaxed);
    while (prev < now && !peak_.compare_exchange_weak(
                             prev, now, std::memory_order_relaxed)) {
    }
  }
  void Release(uint64_t bytes) {
    resident_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  uint64_t resident_bytes() const {
    return resident_.load(std::memory_order_relaxed);
  }
  uint64_t peak_resident_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  /// Restarts the high-water mark from the current residency (stats
  /// reset between measured runs; resident blocks stay resident).
  void RearmPeak() {
    peak_.store(resident_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

 private:
  const uint64_t budget_;
  std::atomic<uint64_t> resident_{0};
  std::atomic<uint64_t> peak_{0};
};

/// What Pin() found.
enum class PinOutcome {
  kResident,         // block was in memory (or is unmanaged)
  kReloaded,         // block was read back from its eviction spill file
  kNeedsRecompute,   // spill unreadable; block dropped -- recompute it,
                     // re-publish, and pin again
};

/// One eviction/reload event, delivered to the engine's sink for
/// metrics attribution (per-stage + totals) and trace instants.
struct BlockEvent {
  enum class Kind { kEvict, kReload, kReloadRecompute };
  Kind kind = Kind::kEvict;
  StageRef stage;     // owning dataset's stage (may be stale; sink checks)
  std::string label;  // owning dataset's label, for trace naming
  int part = -1;
  uint64_t bytes = 0;
};

class BlockStore {
 public:
  struct Options {
    uint64_t budget_bytes = 0;  // 0 = unlimited
    // Directory for eviction spill files; created lazily on first
    // eviction, removed (with its files) by Shutdown().
    std::string spill_dir;
  };
  using EventSink = std::function<void(const BlockEvent&)>;

  explicit BlockStore(Options opts);
  ~BlockStore();

  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Installs the metrics/trace sink. Called under the store lock; the
  /// sink must not call back into the store.
  void set_event_sink(EventSink sink);

  /// Registers reclaimable caller-side memory (the shuffle buffer
  /// pools): `bytes_fn` reports how many bytes the caches currently
  /// pin, `trim_fn` releases them. Under pressure the store trims these
  /// before evicting any partition.
  void set_reclaimable(std::function<uint64_t()> bytes_fn,
                       std::function<void()> trim_fn);

  const MemoryManager& manager() const { return mgr_; }

  /// Restarts the peak-residency high-water mark from the current
  /// residency (Engine::ResetStats between measured runs).
  void RearmPeak() { mgr_.RearmPeak(); }

  /// Registers (or re-registers, after recomputation) the block
  /// (owner, part) whose rows live in `*slot` -- an address that must
  /// stay stable until Unregister/Discard -- as resident with the given
  /// footprint, then enforces the budget (which may evict other cold
  /// blocks, or this one). Any stale spill file from a previous
  /// incarnation of the block is removed. Errors are eviction spill
  /// write failures; the registration itself always takes effect and
  /// no data is lost.
  ///
  /// `session`, when non-null, is the owning session's memory slice
  /// (docs/SERVICE.md): the block's footprint is charged against it in
  /// addition to the global budget, and a slice overrun evicts only that
  /// session's blocks. The manager must outlive the block (datasets hold
  /// shared_ptr<Session>, which owns the slice).
  Status Publish(const void* owner, int part, ValueVec* slot,
                 uint64_t bytes, StageRef stage, const std::string& label,
                 MemoryManager* session = nullptr);

  /// Pins (owner, part) so it cannot be evicted. kResident/kReloaded:
  /// the rows are in the published slot until Unpin(). kNeedsRecompute:
  /// the block's spill file was unreadable and the block was dropped
  /// (not pinned) -- recompute, Publish, pin again. Unknown blocks pin
  /// trivially as kResident: data the store has never seen is never
  /// evicted. Errors are budget-enforcement spill failures after a
  /// successful reload.
  Result<PinOutcome> Pin(const void* owner, int part);
  void Unpin(const void* owner, int part);

  /// Marks every block of `owner` (current and future) as
  /// admission-priority: evicted only when no ordinary victim remains.
  /// Used for DIABLO in-loop datasets and checkpointed nodes.
  void SetPriority(const void* owner, bool priority);

  /// Drops one block and its spill file (partition invalidated for
  /// recomputation). The block must not be pinned.
  void Discard(const void* owner, int part);

  /// Drops every block of `owner` and their spill files (dataset
  /// teardown). SAC_CHECKs that none of them are pinned.
  void Unregister(const void* owner);

  /// Engine teardown: SAC_CHECKs no pinned blocks remain, drops every
  /// block, removes the spill directory with all its files, and detaches
  /// the sink and reclaim hooks. Idempotent; the store is inert (every
  /// call is a no-op) afterwards.
  void Shutdown();

  // ---- introspection (tests / reports) --------------------------------
  uint64_t resident_bytes() const { return mgr_.resident_bytes(); }
  uint64_t peak_resident_bytes() const { return mgr_.peak_resident_bytes(); }
  /// Bytes currently sitting in valid eviction spill files -- the
  /// out-of-core complement of resident_bytes. Lock-free (sampler-safe).
  uint64_t spilled_bytes() const {
    return spilled_bytes_.load(std::memory_order_relaxed);
  }
  bool IsRegistered(const void* owner, int part) const;
  bool IsEvicted(const void* owner, int part) const;
  size_t registered_blocks() const;
  int pinned_blocks() const;
  uint64_t evictions() const;
  uint64_t reloads() const;

 private:
  struct Entry {
    ValueVec* slot = nullptr;
    uint64_t bytes = 0;      // footprint charged while resident
    int pins = 0;
    bool resident = true;
    bool priority = false;
    // The spill file holds the block's current contents (set by
    // eviction, cleared by re-Publish).
    bool spill_valid = false;
    std::string spill_path;
    uint64_t tick = 0;       // LRU recency stamp (higher = hotter)
    StageRef stage;
    std::string label;
    // Owning session's memory slice; charged/released in lockstep with
    // the global manager across every residency transition.
    MemoryManager* session = nullptr;
  };
  using Key = std::pair<const void*, int>;
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<const void*>()(k.first) * 1000003u ^
             std::hash<int>()(k.second);
    }
  };

  /// Evicts LRU-first until resident + reclaimable fits the budget.
  /// Progress guarantee: pools are trimmed first; pinned blocks are
  /// skipped (a fully-pinned over-budget store runs over budget with a
  /// one-time warning rather than deadlocking).
  Status EnforceBudgetLocked();
  /// Evicts LRU-first among `session`'s own blocks until its slice fits.
  /// Other sessions' blocks are never victims of a slice overrun.
  Status EnforceSessionBudgetLocked(MemoryManager* session);
  Status EvictLocked(const Key& k, Entry* e);
  void DropLocked(const Key& k, Entry* e);  // accounting + spill removal
  void Emit(const BlockEvent& ev);

  mutable std::mutex mu_;
  Options opts_;
  MemoryManager mgr_;
  std::unordered_map<Key, Entry, KeyHash> blocks_;
  // Owners flagged priority before any block was published (SetPriority
  // may precede Publish for in-loop datasets).
  std::unordered_map<const void*, bool> owner_priority_;
  uint64_t tick_ = 0;
  uint64_t next_file_ = 0;
  bool spill_dir_ready_ = false;
  bool shutdown_ = false;
  bool warned_all_pinned_ = false;
  EventSink sink_;
  std::function<uint64_t()> reclaimable_bytes_;
  std::function<void()> reclaim_;
  uint64_t evictions_ = 0;
  uint64_t reloads_ = 0;
  // Gauge, not guarded by mu_: read by the engine sampler thread.
  std::atomic<uint64_t> spilled_bytes_{0};
};

}  // namespace sac::runtime::memory

#endif  // SAC_RUNTIME_MEMORY_H_
