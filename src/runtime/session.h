// Multi-tenant service primitives (docs/SERVICE.md):
//
//  * Session       -- the runtime half of one client session: a stable
//    id/name, a per-session Metrics sink (fed by the StageStats dual-sink
//    so every counter a session's datasets meter is attributed to it), a
//    per-session MemoryManager slice (enforced by the BlockStore on top
//    of the global budget), and a fair-scheduled ThreadPool queue. The
//    API-facing half (bindings, Eval surface) lives in sac::Session;
//    this object carries only what the engine's worker threads touch.
//  * AdmissionGate -- ticket-based concurrent-query admission replacing
//    the old one-query-at-a-time assertion: up to max_concurrent_queries
//    tickets are live at once, later queries block (FIFO-ish via the
//    condition variable) until a slot frees. Admission is metered as
//    queries_admitted / queries_queued.
//
// Lifetime: datasets hold shared_ptr<Session> (a dataset may outlive
// both its sac::Session facade and the Engine), so Session must not
// touch the ThreadPool in its destructor -- the facade closes the queue,
// and submits to a closed queue fall back to the default queue.
#ifndef SAC_RUNTIME_SESSION_H_
#define SAC_RUNTIME_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "src/common/metrics.h"
#include "src/common/thread_pool.h"
#include "src/runtime/memory.h"

namespace sac::runtime {

class Session {
 public:
  Session(uint64_t id, std::string name, uint64_t memory_budget_bytes,
          ThreadPool::QueueId queue)
      : id_(id), name_(std::move(name)), mem_(memory_budget_bytes),
        queue_(queue) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  /// Per-session counter sink; written from pool threads via the
  /// StageStats dual-sink, so it shares Metrics' sharded thread-safety.
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  /// Per-session resident-byte slice (0 = unlimited). The BlockStore
  /// charges each published block against its owning session's slice in
  /// addition to the global budget.
  memory::MemoryManager& memory() { return mem_; }
  const memory::MemoryManager& memory() const { return mem_; }
  ThreadPool::QueueId queue() const { return queue_; }

  /// The session the calling thread is currently working for (set by
  /// Scope on the client thread around data creation and query
  /// execution), or nullptr. Engine::NewDataset captures this, so every
  /// dataset knows its session without any API plumbing.
  static const std::shared_ptr<Session>& Current();

  /// RAII: installs `session` as the calling thread's current session,
  /// restoring the previous value (nesting-safe) on destruction.
  class Scope {
   public:
    explicit Scope(std::shared_ptr<Session> session);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    std::shared_ptr<Session> prev_;
  };

 private:
  const uint64_t id_;
  const std::string name_;
  Metrics metrics_;
  memory::MemoryManager mem_;
  const ThreadPool::QueueId queue_;
};

/// Bounded concurrent-query admission. Admit() blocks while
/// max_concurrent tickets are live; the returned RAII ticket frees the
/// slot. Metered against the engine-wide Metrics (and optionally a
/// session sink passed per call).
class AdmissionGate {
 public:
  AdmissionGate(int max_concurrent, Metrics* metrics)
      : max_(max_concurrent < 1 ? 1 : max_concurrent), metrics_(metrics) {}

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& o) noexcept : gate_(o.gate_) { o.gate_ = nullptr; }
    Ticket& operator=(Ticket&& o) noexcept {
      if (this != &o) {
        Release();
        gate_ = o.gate_;
        o.gate_ = nullptr;
      }
      return *this;
    }
    ~Ticket() { Release(); }
    bool valid() const { return gate_ != nullptr; }

   private:
    friend class AdmissionGate;
    explicit Ticket(AdmissionGate* gate) : gate_(gate) {}
    void Release() {
      if (gate_ != nullptr) gate_->Release();
      gate_ = nullptr;
    }
    AdmissionGate* gate_ = nullptr;
  };

  /// Blocks until a slot is free, then returns the live ticket. Meters
  /// queries_admitted (always) and queries_queued (when it had to wait)
  /// on the engine Metrics plus `session` when given.
  Ticket Admit(Metrics* session = nullptr);

  /// Queries holding a live ticket right now.
  int live() const {
    std::lock_guard<std::mutex> lock(mu_);
    return live_;
  }

  int max_concurrent() const { return max_; }

 private:
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --live_;
    }
    cv_.notify_one();
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  const int max_;
  int live_ = 0;
  Metrics* metrics_;
};

}  // namespace sac::runtime

#endif  // SAC_RUNTIME_SESSION_H_
