// Value: the type-erased record flowing through the distributed engine.
// Mirrors what a Spark RDD row can hold in the paper's generated programs:
// scalars, index tuples like ((i,j),v), grouped lists, and dense tiles.
// Tuples, lists and tiles are shared immutably, so copying a Value is
// cheap; mutation goes through copy-on-write accessors.
#ifndef SAC_RUNTIME_VALUE_H_
#define SAC_RUNTIME_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/serialize.h"
#include "src/common/status.h"
#include "src/la/sparse_tile.h"
#include "src/la/tile.h"

namespace sac::runtime {

class Value;
using ValueVec = std::vector<Value>;

class Value {
 public:
  enum class Kind : uint8_t {
    kUnit = 0,
    kInt = 1,
    kDouble = 2,
    kBool = 3,
    kString = 4,
    kTuple = 5,
    kList = 6,
    kTile = 7,
    kSparseTile = 8,
  };

  Value() : repr_(std::monostate{}) {}
  static Value Unit() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value Bool(bool v) { return Value(v); }
  static Value Str(std::string v);
  static Value Tuple(ValueVec elems);
  static Value List(ValueVec elems);
  static Value TileVal(la::Tile t);
  static Value TileVal(std::shared_ptr<const la::Tile> t);
  static Value SparseTileVal(la::SparseTile t);

  /// Convenience for the ubiquitous key-value pair.
  static Value Pair(Value k, Value v) {
    return Tuple({std::move(k), std::move(v)});
  }

  Kind kind() const { return static_cast<Kind>(repr_.index()); }
  bool is_unit() const { return kind() == Kind::kUnit; }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_tuple() const { return kind() == Kind::kTuple; }
  bool is_list() const { return kind() == Kind::kList; }
  bool is_tile() const { return kind() == Kind::kTile; }
  bool is_sparse_tile() const { return kind() == Kind::kSparseTile; }
  bool is_numeric() const { return is_int() || is_double(); }
  /// True for the (key, value) shape wide operators route on.
  bool is_pair() const { return is_tuple() && TupleSize() == 2; }

  int64_t AsInt() const;
  double AsDouble() const;       // accepts int or double
  bool AsBool() const;
  const std::string& AsString() const;
  const ValueVec& AsTuple() const;
  const ValueVec& AsList() const;
  const la::Tile& AsTile() const;
  const la::SparseTile& AsSparseTile() const;
  std::shared_ptr<const la::Tile> SharedTile() const;

  /// Tuple element access; aborts on kind/index mismatch.
  const Value& At(size_t i) const { return AsTuple()[i]; }
  size_t TupleSize() const { return AsTuple().size(); }

  /// Copy-on-write mutable access to a tile (clones iff shared).
  la::Tile* MutableTile();

  /// Deep structural equality (tiles compare elementwise).
  bool Equals(const Value& other) const;
  /// Total order used for deterministic sorting in tests and group output.
  /// Orders first by kind, then by content.
  int Compare(const Value& other) const;
  /// Stable structural hash (used by the shuffle partitioner).
  uint64_t Hash() const;

  std::string ToString() const;

  void Serialize(ByteWriter* w) const;
  static Result<Value> Deserialize(ByteReader* r);

  /// Serialized size in bytes without materializing the buffer. Exact:
  /// equals the byte count Serialize() would emit (tiles and sparse
  /// tiles cost O(1) -- computed from the shape, not by walking data),
  /// which is what lets the shuffle fast path meter executor-local
  /// records without serializing them.
  size_t SerializedSize() const;

 private:
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(bool v) : repr_(v) {}

  using Repr = std::variant<std::monostate, int64_t, double, bool,
                            std::shared_ptr<const std::string>,
                            std::shared_ptr<const ValueVec>,   // tuple
                            std::shared_ptr<ValueVec>,         // list
                            std::shared_ptr<const la::Tile>,
                            std::shared_ptr<const la::SparseTile>>;
  Repr repr_;
};

/// Sum of SerializedSize() over `rows` (local-shuffle volume metering).
size_t SerializedSizeOf(const ValueVec& rows);

/// Structural equality (delegates to Value::Equals).
inline bool operator==(const Value& a, const Value& b) { return a.Equals(b); }
inline bool operator!=(const Value& a, const Value& b) { return !a.Equals(b); }

/// Hash/equality functors for unordered_map<Value, ...>.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a.Equals(b); }
};

/// Shorthand builders used heavily by planners and tests.
inline Value VInt(int64_t v) { return Value::Int(v); }
inline Value VDouble(double v) { return Value::Double(v); }
inline Value VBool(bool v) { return Value::Bool(v); }
inline Value VPair(Value a, Value b) {
  return Value::Pair(std::move(a), std::move(b));
}
inline Value VTuple(ValueVec v) { return Value::Tuple(std::move(v)); }
inline Value VIdx2(int64_t i, int64_t j) {
  return VTuple({VInt(i), VInt(j)});
}

}  // namespace sac::runtime

#endif  // SAC_RUNTIME_VALUE_H_
