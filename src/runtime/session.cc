#include "src/runtime/session.h"

namespace sac::runtime {

namespace {
std::shared_ptr<Session>& TlsCurrent() {
  thread_local std::shared_ptr<Session> current;
  return current;
}
}  // namespace

const std::shared_ptr<Session>& Session::Current() { return TlsCurrent(); }

Session::Scope::Scope(std::shared_ptr<Session> session) {
  std::shared_ptr<Session>& tls = TlsCurrent();
  prev_ = std::move(tls);
  tls = std::move(session);
}

Session::Scope::~Scope() { TlsCurrent() = std::move(prev_); }

AdmissionGate::Ticket AdmissionGate::Admit(Metrics* session) {
  bool queued = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (live_ >= max_) {
      queued = true;
      cv_.wait(lock, [this] { return live_ < max_; });
    }
    ++live_;
  }
  if (metrics_ != nullptr) metrics_->AddQueryAdmitted(queued);
  if (session != nullptr) session->AddQueryAdmitted(queued);
  return Ticket(this);
}

}  // namespace sac::runtime
