#include "src/runtime/memory.h"

#include <cstdlib>
#include <vector>

#include "src/common/logging.h"
#include "src/storage/spill.h"

namespace sac::runtime::memory {

uint64_t BudgetFromEnv(uint64_t fallback) {
  return BudgetFromEnv("SAC_MEM_BUDGET", fallback);
}

uint64_t BudgetFromEnv(const char* var, uint64_t fallback) {
  const char* env = std::getenv(var);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env) {
    SAC_LOG(Warn) << "ignoring unparseable " << var << "='" << env << "'";
    return fallback;
  }
  uint64_t mult = 1;
  switch (*end) {
    case 'k': case 'K': mult = 1024ULL; break;
    case 'm': case 'M': mult = 1024ULL * 1024; break;
    case 'g': case 'G': mult = 1024ULL * 1024 * 1024; break;
    case '\0': break;
    default:
      SAC_LOG(Warn) << "ignoring unparseable " << var << "='" << env << "'";
      return fallback;
  }
  return static_cast<uint64_t>(v) * mult;
}

BlockStore::BlockStore(Options opts)
    : opts_(std::move(opts)), mgr_(opts_.budget_bytes) {}

BlockStore::~BlockStore() { Shutdown(); }

void BlockStore::set_event_sink(EventSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void BlockStore::set_reclaimable(std::function<uint64_t()> bytes_fn,
                                 std::function<void()> trim_fn) {
  std::lock_guard<std::mutex> lock(mu_);
  reclaimable_bytes_ = std::move(bytes_fn);
  reclaim_ = std::move(trim_fn);
}

void BlockStore::Emit(const BlockEvent& ev) {
  if (sink_) sink_(ev);
}

Status BlockStore::Publish(const void* owner, int part, ValueVec* slot,
                           uint64_t bytes, StageRef stage,
                           const std::string& label,
                           MemoryManager* session) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return Status::OK();
  Entry& e = blocks_[Key{owner, part}];
  if (e.slot != nullptr && e.resident) {
    mgr_.Release(e.bytes);
    if (e.session != nullptr) e.session->Release(e.bytes);
  }
  if (e.spill_valid) {
    // The block was recomputed; whatever the old spill holds is stale.
    storage::RemoveSpill(e.spill_path);
    e.spill_valid = false;
    spilled_bytes_.fetch_sub(e.bytes, std::memory_order_relaxed);
  }
  e.slot = slot;
  e.bytes = bytes;
  e.resident = true;
  e.stage = stage;
  e.label = label;
  e.tick = ++tick_;
  e.session = session;
  auto pri = owner_priority_.find(owner);
  if (pri != owner_priority_.end()) e.priority = pri->second;
  mgr_.Charge(bytes);
  if (session != nullptr) session->Charge(bytes);
  SAC_RETURN_NOT_OK(EnforceBudgetLocked());
  return EnforceSessionBudgetLocked(session);
}

Result<PinOutcome> BlockStore::Pin(const void* owner, int part) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return PinOutcome::kResident;
  auto it = blocks_.find(Key{owner, part});
  if (it == blocks_.end()) return PinOutcome::kResident;  // unmanaged
  Entry& e = it->second;
  e.tick = ++tick_;
  if (e.resident) {
    ++e.pins;
    return PinOutcome::kResident;
  }
  // Evicted: reload from the spill file. An unreadable file (kDataLoss
  // from the checksum footer, or any other read failure) is not fatal --
  // the block still has lineage, so drop it and let the caller
  // recompute. That is the fault-tolerance composition point: eviction
  // behaves like a deterministic, recoverable partition loss.
  Result<ValueVec> rows = storage::ReadSpill(e.spill_path);
  if (!rows.ok()) {
    SAC_LOG(Warn) << "spill reload of " << e.label << " partition " << part
                  << " failed (" << rows.status().ToString()
                  << "); falling back to lineage recomputation";
    BlockEvent ev{BlockEvent::Kind::kReloadRecompute, e.stage, e.label, part,
                  e.bytes};
    storage::RemoveSpill(e.spill_path);
    spilled_bytes_.fetch_sub(e.bytes, std::memory_order_relaxed);
    blocks_.erase(it);
    Emit(ev);
    return PinOutcome::kNeedsRecompute;
  }
  *e.slot = std::move(rows).value();
  e.resident = true;
  ++e.pins;
  mgr_.Charge(e.bytes);
  if (e.session != nullptr) e.session->Charge(e.bytes);
  ++reloads_;
  Emit(BlockEvent{BlockEvent::Kind::kReload, e.stage, e.label, part,
                  e.bytes});
  // The reload itself may have pushed residency over budget; make room
  // by evicting other cold blocks (this one is pinned now).
  SAC_RETURN_NOT_OK(EnforceBudgetLocked());
  SAC_RETURN_NOT_OK(EnforceSessionBudgetLocked(e.session));
  return PinOutcome::kReloaded;
}

void BlockStore::Unpin(const void* owner, int part) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;
  auto it = blocks_.find(Key{owner, part});
  if (it == blocks_.end()) return;  // unmanaged pin
  SAC_CHECK(it->second.pins > 0)
      << "unbalanced Unpin of " << it->second.label << " partition " << part;
  --it->second.pins;
}

void BlockStore::SetPriority(const void* owner, bool priority) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;
  owner_priority_[owner] = priority;
  for (auto& [key, e] : blocks_) {
    if (key.first == owner) e.priority = priority;
  }
}

void BlockStore::Discard(const void* owner, int part) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;
  auto it = blocks_.find(Key{owner, part});
  if (it == blocks_.end()) return;
  SAC_CHECK(it->second.pins == 0)
      << "Discard of pinned block " << it->second.label << " partition "
      << part;
  DropLocked(it->first, &it->second);
  blocks_.erase(it);
}

void BlockStore::Unregister(const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (it->first.first != owner) {
      ++it;
      continue;
    }
    SAC_CHECK(it->second.pins == 0)
        << "dataset " << it->second.label
        << " destroyed with pinned partition " << it->first.second;
    DropLocked(it->first, &it->second);
    it = blocks_.erase(it);
  }
  owner_priority_.erase(owner);
}

void BlockStore::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;
  for (auto& [key, e] : blocks_) {
    SAC_CHECK(e.pins == 0) << "engine shut down with pinned partition "
                           << e.label << "[" << key.second << "]";
    DropLocked(key, &e);
  }
  blocks_.clear();
  owner_priority_.clear();
  if (spill_dir_ready_) storage::RemoveSpillDir(opts_.spill_dir);
  sink_ = nullptr;
  reclaimable_bytes_ = nullptr;
  reclaim_ = nullptr;
  shutdown_ = true;
}

void BlockStore::DropLocked(const Key& k, Entry* e) {
  (void)k;
  if (e->resident) {
    mgr_.Release(e->bytes);
    if (e->session != nullptr) e->session->Release(e->bytes);
  }
  if (!e->spill_path.empty()) storage::RemoveSpill(e->spill_path);
  if (e->spill_valid) {
    spilled_bytes_.fetch_sub(e->bytes, std::memory_order_relaxed);
  }
  e->resident = false;
  e->spill_valid = false;
}

Status BlockStore::EnforceBudgetLocked() {
  if (mgr_.unlimited()) return Status::OK();
  const uint64_t budget = mgr_.budget();
  uint64_t reclaimable = reclaimable_bytes_ ? reclaimable_bytes_() : 0;
  if (mgr_.resident_bytes() + reclaimable <= budget) return Status::OK();
  // Reclaimable caches (shuffle buffer pool freelists) go first: giving
  // their bytes back costs nothing compared to spilling a partition.
  if (reclaimable > 0 && reclaim_) {
    reclaim_();
    reclaimable = reclaimable_bytes_ ? reclaimable_bytes_() : 0;
  }
  bool allow_priority = false;
  while (mgr_.resident_bytes() + reclaimable > budget) {
    Entry* victim = nullptr;
    Key victim_key{nullptr, -1};
    for (auto& [key, e] : blocks_) {
      if (!e.resident || e.pins > 0 || e.bytes == 0) continue;
      if (e.priority && !allow_priority) continue;
      if (victim == nullptr || e.tick < victim->tick) {
        victim = &e;
        victim_key = key;
      }
    }
    if (victim == nullptr) {
      if (!allow_priority) {
        // Only priority blocks are left cold; evict them before running
        // over budget with pinned blocks.
        allow_priority = true;
        continue;
      }
      if (!warned_all_pinned_) {
        warned_all_pinned_ = true;
        SAC_LOG(Warn) << "memory budget over-committed: "
                      << mgr_.resident_bytes() << "+" << reclaimable << " of "
                      << budget
                      << " bytes are pinned by in-flight tasks; running "
                         "over budget instead of deadlocking";
      }
      return Status::OK();
    }
    SAC_RETURN_NOT_OK(EvictLocked(victim_key, victim));
  }
  return Status::OK();
}

Status BlockStore::EnforceSessionBudgetLocked(MemoryManager* session) {
  if (session == nullptr || session->unlimited()) return Status::OK();
  const uint64_t budget = session->budget();
  bool allow_priority = false;
  while (session->resident_bytes() > budget) {
    Entry* victim = nullptr;
    Key victim_key{nullptr, -1};
    for (auto& [key, e] : blocks_) {
      if (e.session != session) continue;  // slice overruns stay local
      if (!e.resident || e.pins > 0 || e.bytes == 0) continue;
      if (e.priority && !allow_priority) continue;
      if (victim == nullptr || e.tick < victim->tick) {
        victim = &e;
        victim_key = key;
      }
    }
    if (victim == nullptr) {
      if (!allow_priority) {
        allow_priority = true;
        continue;
      }
      // Everything left in the slice is pinned by in-flight tasks; run
      // over the slice rather than deadlocking (same progress guarantee
      // as the global budget).
      return Status::OK();
    }
    SAC_RETURN_NOT_OK(EvictLocked(victim_key, victim));
  }
  return Status::OK();
}

Status BlockStore::EvictLocked(const Key& k, Entry* e) {
  if (!e->spill_valid) {
    // Re-ensured on every spill write (mkdir on an existing dir is one
    // cheap syscall next to the file I/O): if an operator reclaims the
    // directory mid-run the store recreates it instead of wedging every
    // subsequent eviction.
    SAC_RETURN_NOT_OK(storage::EnsureSpillDir(opts_.spill_dir)
                          .WithContext("eviction spill directory"));
    spill_dir_ready_ = true;
    if (e->spill_path.empty()) {
      e->spill_path =
          opts_.spill_dir + "/evict-" + std::to_string(next_file_++) +
          ".spill";
    }
    SAC_RETURN_NOT_OK(storage::WriteSpill(e->spill_path, *e->slot)
                          .status()
                          .WithContext("evicting " + e->label +
                                       " partition " +
                                       std::to_string(k.second)));
    e->spill_valid = true;
    spilled_bytes_.fetch_add(e->bytes, std::memory_order_relaxed);
  }
  ValueVec().swap(*e->slot);  // actually frees the heap, not just size=0
  e->resident = false;
  mgr_.Release(e->bytes);
  if (e->session != nullptr) e->session->Release(e->bytes);
  ++evictions_;
  Emit(BlockEvent{BlockEvent::Kind::kEvict, e->stage, e->label, k.second,
                  e->bytes});
  return Status::OK();
}

bool BlockStore::IsRegistered(const void* owner, int part) const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.count(Key{owner, part}) > 0;
}

bool BlockStore::IsEvicted(const void* owner, int part) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(Key{owner, part});
  return it != blocks_.end() && !it->second.resident;
}

size_t BlockStore::registered_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.size();
}

int BlockStore::pinned_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const auto& [key, e] : blocks_) n += e.pins > 0 ? 1 : 0;
  return n;
}

uint64_t BlockStore::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

uint64_t BlockStore::reloads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reloads_;
}

}  // namespace sac::runtime::memory
