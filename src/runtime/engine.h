// The DISC (Data-Intensive Scalable Computing) engine: a multi-threaded,
// shared-nothing-style dataflow runtime with the Spark RDD operator set the
// paper's translator targets -- map/flatMap/filter/mapPartitions (narrow),
// reduceByKey/groupByKey/join/cogroup/partitionBy (wide, with a real
// serialize-route-deserialize hash shuffle), plus parallelize/collect.
//
// Fidelity notes (see DESIGN.md):
//  * Wide operators route every record to a destination partition. Records
//    bound for a partition on a *different* executor are serialized into
//    per-destination byte buffers and deserialized on the "reduce side",
//    so cross-executor volume costs real work and is metered exactly.
//    Records bound for a partition on the *same* executor take a zero-copy
//    fast path (moved as Values, volume metered via SerializedSize into
//    local_shuffle_bytes) -- on a real cluster those records never touch
//    the wire either. SAC_SHUFFLE_FAST_PATH=off restores the old
//    serialize-everything path for A/B runs; both paths produce identical
//    results and identical local+remote byte totals (DESIGN.md section 8).
//  * reduceByKey performs map-side combining before the shuffle, exactly
//    the property Section 4 of the paper relies on when preferring it over
//    groupByKey.
//  * Datasets are evaluated eagerly but record their lineage. Recovery is
//    a real subsystem (DESIGN.md section 9, docs/FAULT_MODEL.md): a seeded
//    FaultPlan (SAC_FAULT_PLAN) can kill any task attempt at named points;
//    killed attempts are retried with bounded exponential backoff
//    (ClusterConfig::max_task_attempts / retry_*_delay_us); a lost
//    partition is recomputed from its parents recursively; and
//    Checkpoint() materializes a dataset to spill files and truncates its
//    lineage so iterative loops don't grow unbounded recompute chains.
//  * Reduce-side folds iterate buckets in source-partition order, so
//    results are deterministic regardless of thread scheduling.
//  * Materialized partitions live in a budgeted block store
//    (src/runtime/memory.h, docs/MEMORY_MODEL.md): each registers its
//    serialized footprint against ClusterConfig::memory_budget_bytes /
//    SAC_MEM_BUDGET; under pressure cold partitions spill to disk (LRU)
//    and reload transparently on next access, so working sets larger
//    than the budget run out-of-core with byte-identical results. Task
//    reads hold pins so in-flight partitions are never evicted.
//  * The engine is a multi-tenant query service (docs/SERVICE.md):
//    clients open Sessions (per-session metrics attribution, memory
//    slice, and fair-scheduled task queue), and up to
//    ClusterConfig::max_concurrent_queries queries execute concurrently
//    under a ticket-based admission gate. Because reduce-side folds are
//    deterministic and partitions publish atomically, concurrent queries
//    produce byte-identical results to serial runs.
#ifndef SAC_RUNTIME_ENGINE_H_
#define SAC_RUNTIME_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/pool.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/common/trace.h"
#include "src/runtime/memory.h"
#include "src/runtime/recovery.h"
#include "src/runtime/session.h"
#include "src/runtime/value.h"

namespace sac::la {
class KernelBackend;
}  // namespace sac::la

namespace sac::net {
class TcpServer;
}  // namespace sac::net

namespace sac::dist {
class Coordinator;
class WorkerState;
}  // namespace sac::dist

namespace sac::runtime {

/// Shape of the simulated cluster. Executors matter only for shuffle
/// accounting (records moving between partitions owned by different
/// executors count as network traffic); cores size the thread pool.
struct ClusterConfig {
  int num_executors = 4;
  int cores_per_executor = 1;
  int default_parallelism = 8;  // partitions created by Parallelize

  // ---- Fault tolerance (DESIGN.md section 9, docs/FAULT_MODEL.md) ----
  // Attempts per task including the first; injected faults (kCancelled)
  // are retried up to this bound, real task errors are not retried.
  int max_task_attempts = 3;
  // Backoff slept before attempt k+1 is base * 2^(k-1), capped at max.
  int retry_base_delay_us = 200;
  int retry_max_delay_us = 20000;
  // Auto-checkpoint every K-th rebinding of a loop target in
  // Sac::EvalLoop (0 = never). See Engine::Checkpoint.
  int checkpoint_interval = 0;
  // Directory for checkpoint spill files; "" = the system temp dir.
  std::string checkpoint_dir = "";

  // ---- Memory / out-of-core (DESIGN.md section 10, MEMORY_MODEL.md) ---
  // Cap on resident materialized-partition bytes, engine-wide, metered
  // via Value::SerializedSize. 0 = unlimited. Under pressure the block
  // store trims the shuffle buffer pools, then evicts least-recently-
  // used unpinned partitions to spill files; they reload transparently
  // on next access (or recompute from lineage if the spill is lost).
  // The SAC_MEM_BUDGET env var ("256M", "1G", plain bytes) overrides
  // this at engine construction.
  uint64_t memory_budget_bytes = 0;
  // Base directory under which this engine creates its private spill
  // directory (eviction + default-located checkpoint files, removed on
  // engine destruction); "" = checkpoint_dir, then the system temp dir.
  std::string spill_dir = "";

  // ---- Profiling (docs/PROFILING.md) ----------------------------------
  // Time-series sampler period in microseconds; 0 (default) = off. When
  // set, a background thread records resident/spilled/pool bytes,
  // in-flight tasks and cumulative evictions/shuffle bytes as trace
  // counter events every interval, so memory behavior lands on the same
  // Perfetto timeline as the spans. The SAC_SAMPLE_INTERVAL_US env var
  // overrides this at engine construction.
  int sample_interval_us = 0;

  // ---- Query service (docs/SERVICE.md) --------------------------------
  // Queries holding a live admission ticket at once; later queries block
  // in Engine::AdmitQuery until a slot frees. 1 restores the old
  // serialized one-query-at-a-time behavior. The SAC_MAX_CONCURRENT env
  // var overrides this at engine construction (clamped to >= 1).
  int max_concurrent_queries = 4;
  // Default per-session resident-byte slice handed to OpenSession when
  // the caller does not pass one (0 = unlimited). Enforced by the block
  // store on top of memory_budget_bytes: a session over its slice evicts
  // its own LRU partitions, never another session's. The
  // SAC_SESSION_MEM_BUDGET env var ("256M", "1G", plain bytes) overrides
  // this at engine construction.
  uint64_t session_memory_budget_bytes = 0;

  // ---- Kernel backend (docs/KERNELS.md) -------------------------------
  // Tile kernel implementation the planner dispatches through: "generic"
  // (blocked restrict'd loops), "packed" (register-tiled panel-packing
  // GEMM), or "jvmlike" (virtual-dispatch MLlib model). "" = the default
  // ("packed"). The SAC_KERNEL_BACKEND env var overrides this at engine
  // construction; unknown names log a warning and fall back to the
  // default. After construction config().kernel_backend holds the
  // effective name.
  std::string kernel_backend = "";

  // ---- Distributed runtime (docs/DISTRIBUTED.md) ----------------------
  // Transport carrying shuffle buckets between the driver and workers:
  // "loopback" (in-process, full frame-codec round trip, the default) or
  // "tcp" (framed stream sockets). Ignored unless `workers` is set. The
  // SAC_TRANSPORT env var overrides this at engine construction; after
  // construction the field holds the effective name.
  std::string transport = "";
  // Worker set hosting shuffle buckets. "" (default) = no distributed
  // runtime: the engine is the single process it always was, bit for
  // bit. "N" (a count) = N in-process workers behind the configured
  // transport (tcp binds one 127.0.0.1 ephemeral-port server each).
  // "host:port,host:port,..." = external sac_worker processes (implies
  // tcp). The SAC_WORKERS env var overrides this at construction.
  std::string workers = "";
  // Worker liveness: the coordinator pings every worker each
  // heartbeat_interval_ms; heartbeat_timeout_ms of silence marks it
  // dead (workers_lost), re-placing its executors onto survivors.
  // interval <= 0 disables the background heartbeat thread.
  int heartbeat_interval_ms = 100;
  int heartbeat_timeout_ms = 1000;

  int TotalCores() const { return num_executors * cores_per_executor; }
};

using Partition = ValueVec;

class Engine;

/// One node in the lineage DAG. Created only through Engine operators.
class DatasetImpl {
 public:
  enum class OpKind {
    kSource,
    kNarrow,    // per-partition function of the single parent partition
    kShuffle,   // keyed shuffle of one parent (reduceByKey/groupByKey/partitionBy)
    kCoShuffle, // keyed shuffle of two parents (join/cogroup)
    kUnion,
  };

  int num_partitions() const { return static_cast<int>(parts_.size()); }
  const std::string& label() const { return label_; }
  /// Index of this node's stage in Engine::stages() (see StageRegistry).
  int stage_id() const { return stage_.id; }

  /// Drop the materialized data of one partition (tests / coarse fault
  /// injection; mid-task failures go through the engine's FaultPlan).
  /// Also discards the partition's block-store registration and any
  /// eviction spill, so recovery really recomputes from lineage.
  void InvalidatePartition(int i);
  bool IsAvailable(int i) const { return available_[i] != 0; }

  /// True once Engine::Checkpoint truncated this node's lineage: it is a
  /// source whose partitions restore from spill files, not from parents.
  bool checkpointed() const { return checkpointed_; }

  // Unregisters from the block store (dropping eviction spills) and
  // removes this node's checkpoint spill files.
  ~DatasetImpl();

 private:
  friend class Engine;
  OpKind kind_ = OpKind::kSource;
  std::string label_;
  StageRef stage_;  // per-stage metrics attribution (generation-tagged)
  std::vector<std::shared_ptr<DatasetImpl>> parents_;
  std::vector<Partition> parts_;
  // uint8_t, not bool: reduce tasks mark distinct partitions available from
  // pool threads in parallel, and vector<bool> packs bits into shared words.
  std::vector<uint8_t> available_;

  // Recompute closures (captured at operator creation) by kind:
  // narrow: output partition i from parent partition i.
  std::function<Status(const Partition& in, Partition* out)> narrow_fn_;
  // shuffle: output partition i from *all* parent partitions.
  std::function<Status(Engine* eng, DatasetImpl* self, int out_part)>
      wide_fn_;

  // Checkpoint state (Engine::Checkpoint): when checkpointed_, wide_fn_
  // reloads partition i from spill_paths_[i] instead of recomputing.
  bool checkpointed_ = false;
  std::vector<std::string> spill_paths_;

  // The owning engine's block store (shared so teardown order between
  // engine and datasets is a non-issue); every materialized partition is
  // registered here against the memory budget.
  std::shared_ptr<memory::BlockStore> store_;

  // The session this dataset was created under (Session::Current() at
  // NewDataset time; nullptr outside any session). Shared so the
  // session's metrics sink and memory slice outlive the facade while any
  // of its datasets remain; worker-side publishes and queue routing read
  // it instead of thread-local state.
  std::shared_ptr<Session> session_;
};

using Dataset = std::shared_ptr<DatasetImpl>;

/// Row-level functions used by narrow operators. They must be thread-safe
/// (they run concurrently on different partitions).
using MapFn = std::function<Value(const Value&)>;
using FlatMapFn = std::function<void(const Value&, ValueVec*)>;
using PredFn = std::function<bool(const Value&)>;
using CombineFn = std::function<Value(const Value&, const Value&)>;
using PartitionFn = std::function<Status(const Partition&, Partition*)>;

class Engine {
 public:
  /// ClusterConfig carries the retry/checkpoint policy too; `Config` is
  /// the conventional name at the engine API boundary.
  using Config = ClusterConfig;

  explicit Engine(ClusterConfig config = ClusterConfig());

  /// Shuts the block store down (SAC_CHECKing that no partition is still
  /// pinned) and removes this engine's spill directory -- eviction
  /// spills, default-located checkpoint spills, and the directory itself.
  ~Engine();

  const ClusterConfig& config() const { return config_; }
  Metrics& metrics() { return metrics_; }
  StageRegistry& stages() { return stages_; }
  trace::Tracer& tracer() { return tracer_; }
  ThreadPool& pool() { return pool_; }

  /// Kernel backend resolved at construction from SAC_KERNEL_BACKEND /
  /// config.kernel_backend (never null; see docs/KERNELS.md). The MLlib
  /// baseline path overrides this per-query via
  /// PlannerOptions::use_jvmlike_kernels.
  const la::KernelBackend* kernel_backend() const { return kernel_backend_; }

  /// The memory manager + block store enforcing
  /// config().memory_budget_bytes over every materialized partition
  /// (docs/MEMORY_MODEL.md). Exposed for admission-priority hints
  /// (Sac::EvalLoop), tests, and reports.
  memory::BlockStore& block_store() { return *store_; }

  // ---- Distributed runtime (docs/DISTRIBUTED.md) ----------------------
  /// True when config().workers is set: shuffle buckets live on worker
  /// processes behind a transport instead of in driver memory.
  bool distributed() const { return coord_ != nullptr; }
  /// The placement/liveness/RPC brain; nullptr unless distributed().
  dist::Coordinator* coordinator() { return coord_.get(); }
  /// In-process worker `i` when config().workers was a count ("3");
  /// nullptr otherwise. Tests use this to inject worker faults
  /// (WorkerState::FailAfter) without separate processes.
  dist::WorkerState* local_worker(int i) {
    return i >= 0 && i < static_cast<int>(local_workers_.size())
               ? local_workers_[i].get()
               : nullptr;
  }

  // ---- Query service (docs/SERVICE.md) --------------------------------
  /// Opens a runtime session: a per-session metrics sink, a memory-slice
  /// budget (`memory_budget_bytes`; the overload without it uses
  /// config().session_memory_budget_bytes; 0 = unlimited), and a
  /// fair-scheduled pool queue. Install it with Session::Scope around
  /// data creation and query execution so NewDataset attributes to it.
  /// Sessions are typically opened through Sac::OpenSession, which adds
  /// the bindings/Eval surface on top.
  std::shared_ptr<Session> OpenSession(const std::string& name,
                                       uint64_t memory_budget_bytes);
  std::shared_ptr<Session> OpenSession(const std::string& name) {
    return OpenSession(name, config_.session_memory_budget_bytes);
  }

  /// Blocks until an admission slot (config().max_concurrent_queries) is
  /// free and returns the live RAII ticket. Metered as queries_admitted /
  /// queries_queued on the engine Metrics plus `session` when given.
  AdmissionGate::Ticket AdmitQuery(Metrics* session = nullptr) {
    return admission_->Admit(session);
  }

  /// Queries holding a live admission ticket right now (includes the
  /// compile phase, unlike in_flight() which counts executing operators).
  int live_queries() const { return admission_->live(); }

  // ---- Shuffle hot path ----------------------------------------------
  /// Executor-local zero-copy routing: records whose destination partition
  /// lives on the source partition's executor move as Values (no
  /// serialize/deserialize); their volume is metered into
  /// local_shuffle_bytes via Value::SerializedSize. Default on; the
  /// SAC_SHUFFLE_FAST_PATH=off environment variable (read at engine
  /// construction) or this setter force the old serialize-everything path
  /// for A/B benchmarking. Do not toggle while a query is running.
  bool shuffle_fast_path() const { return shuffle_fast_path_; }
  void set_shuffle_fast_path(bool on) { shuffle_fast_path_ = on; }

  /// Pools backing the shuffle: per-destination serialization buffers and
  /// zero-copy row scratch, checked out per map-side task and returned
  /// when the stage's buckets are consumed (RAII -- error paths return
  /// them too). Exposed for tests and reports.
  VectorPool<uint8_t>& shuffle_buffer_pool() { return byte_pool_; }
  VectorPool<Value>& row_scratch_pool() { return row_pool_; }

  /// Number of currently executing engine operators; 0 whenever the
  /// engine is quiescent. Under concurrent admission several operators
  /// (from different queries) may be in flight at once; ResetStats()
  /// checks this AND live_queries() to fail loudly on the documented
  /// "never concurrently with a query" contract.
  int64_t in_flight() const {
    return in_flight_.load(std::memory_order_acquire);
  }

  // ---- Observability --------------------------------------------------
  /// Clears totals, per-stage stats and the trace buffer in one step
  /// (call between measured runs; never concurrently with a query --
  /// violating that aborts with a CHECK failure instead of silently
  /// corrupting per-stage stats). "Concurrently with a query" means any
  /// executing operator (in_flight() > 0) or any live admission ticket
  /// (live_queries() > 0) -- a ticket held during the compile phase
  /// counts, since its run phase would otherwise race the reset.
  void ResetStats();

  /// Human-readable per-stage metrics table (one row per operator run),
  /// plus a trailing truncation notice when the trace span buffers
  /// overflowed (so a silently clipped trace never masquerades as a
  /// complete one).
  std::string ReportString() const {
    std::string s = stages_.ReportString();
    if (const uint64_t d = tracer_.dropped_events(); d > 0) {
      s += "trace: dropped_events=" + std::to_string(d) +
           " (per-thread span buffer cap reached; raise "
           "Tracer::set_buffer_capacity)\n";
    }
    return s;
  }

  /// Prints the lineage DAG of `ds` with the observed per-node metrics
  /// (shuffle bytes, records, tasks, recomputes) inline.
  std::string ExplainWithStats(const Dataset& ds);

  /// Chrome trace-event JSON of everything traced so far (load in
  /// chrome://tracing or Perfetto). Does not clear the buffer.
  std::string ChromeTraceJson() const {
    return trace::Tracer::ToChromeJson(tracer_.Snapshot(),
                                       tracer_.dropped_events());
  }
  /// Writes ChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

  /// Versioned machine-readable profile (docs/PROFILING.md) of
  /// everything traced so far: stage tree, critical path, per-stage
  /// counters, sampler time-series. `wall_ms_hint` is the externally
  /// measured wall-clock the coverage is reported against (0 = trace
  /// extent); `query` tags the document. Does not clear the buffer.
  std::string ProfileJson(double wall_ms_hint = 0,
                          const std::string& query = "") const;
  /// Writes ProfileJson() to `path`.
  Status WriteProfile(const std::string& path, double wall_ms_hint = 0,
                      const std::string& query = "") const;

  // ---- Sources ------------------------------------------------------
  /// Distributes `rows` round-robin over `num_partitions` partitions
  /// (<=0 means config().default_parallelism).
  Dataset Parallelize(ValueVec rows, int num_partitions = -1);

  /// Builds each partition from a generator function (parallel).
  Result<Dataset> GeneratePartitions(
      int num_partitions,
      const std::function<Status(int, Partition*)>& gen,
      const std::string& label = "generate");

  // ---- Narrow transformations ---------------------------------------
  Result<Dataset> Map(const Dataset& in, MapFn fn,
                      const std::string& label = "map");
  Result<Dataset> FlatMap(const Dataset& in, FlatMapFn fn,
                          const std::string& label = "flatMap");
  Result<Dataset> Filter(const Dataset& in, PredFn pred,
                         const std::string& label = "filter");
  Result<Dataset> MapPartitions(const Dataset& in, PartitionFn fn,
                                const std::string& label = "mapPartitions");
  Result<Dataset> Union(const Dataset& a, const Dataset& b);

  // ---- Wide (shuffling) transformations ------------------------------
  // All of these expect rows shaped as pairs (key, value).

  /// Spark's reduceByKey(combine): map-side combine per partition, hash
  /// shuffle of the partial aggregates, reduce-side fold in deterministic
  /// order. `combine` must be associative.
  Result<Dataset> ReduceByKey(const Dataset& in, CombineFn combine,
                              int num_partitions = -1);

  /// Spark's groupByKey: shuffles every record; output rows are
  /// (key, List[v]) with values in (source partition, row) order.
  Result<Dataset> GroupByKey(const Dataset& in, int num_partitions = -1);

  /// Inner join: output rows (key, (v, w)) for every matching pair.
  Result<Dataset> Join(const Dataset& a, const Dataset& b,
                       int num_partitions = -1);

  /// CoGroup: output rows (key, (List[v], List[w])) for keys present in
  /// either input.
  Result<Dataset> CoGroup(const Dataset& a, const Dataset& b,
                          int num_partitions = -1);

  /// Hash-repartition by key without aggregation.
  Result<Dataset> PartitionBy(const Dataset& in, int num_partitions = -1);

  // ---- Actions --------------------------------------------------------
  /// Gathers all rows (recovering lost partitions first). Order is
  /// partition-major and deterministic.
  Result<ValueVec> Collect(const Dataset& in);
  Result<int64_t> Count(const Dataset& in);

  /// Recomputes any invalidated partitions from lineage (recursively).
  Status Recover(const Dataset& ds);

  // ---- Fault tolerance ------------------------------------------------
  /// The active fault-injection plan, parsed from SAC_FAULT_PLAN at
  /// construction (recovery::FaultPlan grammar, docs/FAULT_MODEL.md).
  /// Replace programmatically for tests; never while a query is running.
  recovery::FaultPlan& fault_plan() { return fault_plan_; }
  void set_fault_plan(recovery::FaultPlan plan) {
    fault_plan_ = std::move(plan);
  }

  /// Materializes `ds` (recovering lost partitions first) to one spill
  /// file per partition under `dir` (default: config().checkpoint_dir,
  /// falling back to the system temp dir) and truncates its lineage: the
  /// node becomes a checkpointed source whose partitions restore from
  /// disk, and its parents are released. Idempotent on a checkpointed
  /// dataset. Spill I/O is metered (checkpoint_bytes /
  /// checkpoint_restore_bytes) and traced as a "checkpoint" stage phase.
  Status Checkpoint(const Dataset& ds, const std::string& dir = "");

  /// Structural verification of `ds`'s lineage DAG: parent arity per
  /// operator kind, partition-count agreement for narrow/union nodes,
  /// availability bookkeeping, and stage-registry consistency (a stage
  /// ref from the current generation must resolve). Violations are
  /// engine bugs and come back as RuntimeError naming the node.
  Status VerifyLineage(const Dataset& ds);

 private:
  // Map-side transform applied per source partition before routing (e.g.
  // the local combine of reduceByKey); the int selects the parent (0/1).
  using MapSideFn = std::function<Result<Partition>(const Partition&, int)>;
  // Builds one output partition from the deserialized rows of each parent,
  // concatenated in source-partition order (rows_b empty for one parent).
  using ReduceSideFn =
      std::function<Status(ValueVec rows_a, ValueVec rows_b, Partition* out)>;

  Dataset NewDataset(DatasetImpl::OpKind kind, std::string label,
                     std::vector<Dataset> parents, int num_partitions);

  /// Per-stage attribution of `ds`'s tasks/bytes; nullptr after a
  /// StageRegistry::Reset() that predates the dataset (totals still
  /// accumulate via Metrics directly in that case).
  StageStats* StatsFor(DatasetImpl* ds) { return stages_.Get(ds->stage_); }

  /// Context threaded through ParallelParts so each partition task is
  /// attributed (metrics) and traced (span) against the right stage.
  struct TaskContext {
    StageStats* stats = nullptr;    // stage to charge tasks/durations to
    uint64_t parent_span = 0;       // stage span enclosing the tasks
    std::string label;              // stage label, prefixes task names
    const char* phase = "task";     // "task" | "shuffle-write" | ...
    // Fair-scheduling queue the stage's tasks land on: the owning
    // session's queue, or the default queue for sessionless work.
    ThreadPool::QueueId queue = ThreadPool::kDefaultQueue;
  };
  TaskContext ContextFor(DatasetImpl* ds, uint64_t parent_span,
                         const char* phase = "task") {
    return TaskContext{StatsFor(ds), parent_span, ds->label_, phase,
                       ds->session_ ? ds->session_->queue()
                                    : ThreadPool::kDefaultQueue};
  }

  void AddRecordsTo(StageStats* stats, uint64_t n) {
    if (stats) {
      stats->AddRecords(n);
    } else {
      metrics_.AddRecords(n);
    }
  }

  /// Creates, executes and wires up a wide (shuffling) operator.
  Result<Dataset> ShuffleOp(DatasetImpl::OpKind kind, const std::string& label,
                            std::vector<Dataset> parents, int num_partitions,
                            MapSideFn map_side, ReduceSideFn reduce_side);

  /// Runs the shuffle for `ds`; only_dest >= 0 restricts to one output
  /// partition (lineage recovery), -1 computes all of them.
  Status ExecuteShuffle(DatasetImpl* ds, const MapSideFn& map_side,
                        const ReduceSideFn& reduce_side, int only_dest);

  /// One attempt of a partition task. `attempt` is 1-based; the body must
  /// be idempotent across attempts (publish no state before succeeding).
  using TaskAttemptFn = std::function<Status(int part, int attempt)>;

  /// Runs fn over partitions in parallel; collects the first error.
  /// Each task gets a span (parented to ctx.parent_span), charges its
  /// duration to ctx.stats, and runs under the retry policy (see
  /// RunTaskWithRetry) -- fn may be attempted several times.
  Status ParallelParts(const TaskContext& ctx, int n,
                       const TaskAttemptFn& fn);

  /// The retry/backoff policy around one task: consult the fault plan at
  /// kPreRun, run fn, and on an *injected* failure (kCancelled) sleep
  /// base*2^(k-1) (capped) and try again, up to
  /// config().max_task_attempts. Retries and backoff time are metered
  /// (AddRetry) and traced as "retry:<label>" instants; exhausting the
  /// budget surfaces a RuntimeError naming the task. Real task errors
  /// pass through untouched on the first attempt.
  Status RunTaskWithRetry(const TaskContext& ctx, int part,
                          const TaskAttemptFn& fn);

  /// Consults the fault plan at `point` for (ctx.label, part, attempt),
  /// metering an injected fault into ctx.stats.
  Status CheckFault(recovery::FaultPoint point, const TaskContext& ctx,
                    int part, int attempt);

  Status RecomputePartition(DatasetImpl* ds, int i);

  // ---- Memory / out-of-core (docs/MEMORY_MODEL.md) --------------------
  /// RAII pin on one partition's rows: while alive, the block store will
  /// not evict them. Obtained only through PinPartition, which also
  /// reloads evicted partitions (or recomputes them when their spill is
  /// unreadable) before pinning.
  class PartitionPin {
   public:
    PartitionPin() = default;
    PartitionPin(memory::BlockStore* store, DatasetImpl* ds, int part,
                 const Partition* rows)
        : store_(store), ds_(ds), part_(part), rows_(rows) {}
    ~PartitionPin() {
      if (store_) store_->Unpin(ds_, part_);
    }
    PartitionPin(PartitionPin&& o) noexcept
        : store_(o.store_), ds_(o.ds_), part_(o.part_), rows_(o.rows_) {
      o.store_ = nullptr;
    }
    PartitionPin& operator=(PartitionPin&& o) noexcept {
      if (this != &o) {
        if (store_) store_->Unpin(ds_, part_);
        store_ = o.store_;
        ds_ = o.ds_;
        part_ = o.part_;
        rows_ = o.rows_;
        o.store_ = nullptr;
      }
      return *this;
    }
    PartitionPin(const PartitionPin&) = delete;
    PartitionPin& operator=(const PartitionPin&) = delete;

    const Partition& rows() const { return *rows_; }

   private:
    memory::BlockStore* store_ = nullptr;
    DatasetImpl* ds_ = nullptr;
    int part_ = -1;
    const Partition* rows_ = nullptr;
  };

  /// The only sanctioned read access to a materialized partition:
  /// recomputes it if unavailable, reloads it if evicted (falling back
  /// to lineage recomputation when the spill file is unreadable), and
  /// pins it for the lifetime of the returned handle.
  Result<PartitionPin> PinPartition(DatasetImpl* ds, int i);

  /// The only sanctioned write: installs `rows` as partition `i` of
  /// `ds`, marks it available, and registers its footprint with the
  /// block store (which may evict cold partitions to stay on budget).
  Status PublishPartition(DatasetImpl* ds, int i, Partition rows);

  /// Block-store event sink: attributes evictions/reloads to the owning
  /// stage's metrics and emits "evict:"/"reload:" trace instants.
  void MeterBlockEvent(const memory::BlockEvent& ev);

  /// Mirrors the store's resident-bytes high-water mark into Metrics
  /// (called after publish/pin, the only points residency grows).
  void SyncPeakResident() {
    metrics_.UpdatePeakResident(store_->peak_resident_bytes());
  }

  // Map-side shuffle helper: routes `rows` of source partition src_part
  // into per-destination buckets, accounting metrics. Destinations on the
  // same executor receive the Values themselves (zero-copy fast path,
  // volume metered via SerializedSize into local_shuffle_bytes); remote
  // destinations receive serialized bytes (metered into shuffle_bytes /
  // cross_executor_bytes). With the fast path off, every destination is
  // treated as remote, reproducing the old serialize-everything path
  // bit-for-bit. For a given (src, dest) pair all rows take the same
  // route, so reduce-side concatenation order is identical on both paths.
  // Buckets hold pooled buffers; destroying them returns the buffers.
  struct ShuffleBuckets {
    std::vector<PooledVec<uint8_t>> remote_by_dest;  // serialized records
    std::vector<PooledVec<Value>> local_by_dest;     // zero-copy records
    uint64_t records = 0;
  };
  // The ctx + attempt let the row loop consult the fault plan at
  // kShuffleSerialize mid-serialization (before any metering, so a killed
  // attempt leaves the counters untouched).
  Result<ShuffleBuckets> BucketRows(const TaskContext& ctx, Partition rows,
                                    int src_part, int num_dest, int attempt);

  /// RAII marker for a running operator; makes ResetStats() misuse loud.
  /// This counts *operators*, not queries -- several may be live at once
  /// under concurrent admission (the AdmissionGate bounds queries).
  struct InFlightScope {
    explicit InFlightScope(Engine* e) : eng(e) {
      eng->in_flight_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~InFlightScope() {
      eng->in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    }
    InFlightScope(const InFlightScope&) = delete;
    InFlightScope& operator=(const InFlightScope&) = delete;
    Engine* eng;
  };

  int ExecutorOf(int partition) const {
    return partition % config_.num_executors;
  }

  // ---- Distributed runtime (docs/DISTRIBUTED.md) ----------------------
  /// Builds the worker set + transport + coordinator from
  /// config().workers / config().transport (after env resolution); no-op
  /// when workers is empty. Fails fast if any worker is unreachable.
  Status SetupDistributed();
  /// Pushes every remote bucket of `bs` (src partition `src` of parent
  /// `p`) to the worker hosting its destination executor, then releases
  /// the driver-side buffer -- in distributed mode remote bucket bytes
  /// live on workers, so every cross-executor byte crosses the
  /// transport. Local (same-executor) buckets stay in driver memory.
  Status PushShuffleBuckets(StageStats* stats, uint64_t shuffle_id, int p,
                            int src, ShuffleBuckets* bs);

  // ---- Time-series sampler (ClusterConfig::sample_interval_us) --------
  /// Starts the sampler thread when the configured interval is > 0.
  void StartSampler();
  /// Stops and joins the sampler thread (idempotent; called first in
  /// ~Engine so no sample races member teardown).
  void StopSampler();
  void SamplerLoop();
  /// Records one "engine" counter event (resident/spilled/pool bytes,
  /// in-flight tasks, cumulative evictions + shuffle bytes). All reads
  /// are lock-free gauges or short-critical-section accessors.
  void SampleOnce();

  ClusterConfig config_;
  ThreadPool pool_;
  Metrics metrics_;
  StageRegistry stages_{&metrics_};
  trace::Tracer tracer_;
  VectorPool<uint8_t> byte_pool_;
  VectorPool<Value> row_pool_;
  std::atomic<int64_t> in_flight_{0};
  // Created in the constructor after SAC_MAX_CONCURRENT is resolved.
  std::unique_ptr<AdmissionGate> admission_;
  std::atomic<uint64_t> next_session_id_{1};
  bool shuffle_fast_path_ = true;
  const la::KernelBackend* kernel_backend_ = nullptr;
  recovery::FaultPlan fault_plan_;
  // Shared with every DatasetImpl so dataset teardown can unregister in
  // any destruction order; ~Engine shuts it down.
  std::shared_ptr<memory::BlockStore> store_;
  std::string spill_dir_;  // this engine's private spill directory

  // ---- Distributed runtime (docs/DISTRIBUTED.md) ----------------------
  // ~Engine tears these down coordinator-first (stop RPCs and the
  // heartbeat), then the in-process servers (join service threads), then
  // the worker states the servers' handlers point at.
  std::vector<std::unique_ptr<dist::WorkerState>> local_workers_;
  std::vector<std::unique_ptr<net::TcpServer>> local_servers_;
  std::unique_ptr<dist::Coordinator> coord_;

  // SAC_TRACE destination (Chrome trace auto-written at teardown);
  // subsequent engines in one process get a numbered suffix so they
  // don't clobber each other. Empty = disabled.
  std::string auto_trace_path_;
  std::thread sampler_;
  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;  // guarded by sampler_mu_
};

}  // namespace sac::runtime

#endif  // SAC_RUNTIME_ENGINE_H_
