#include "src/runtime/value.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "src/common/logging.h"

namespace sac::runtime {

namespace {
// 64-bit mix for combining hashes (boost::hash_combine style, widened).
uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9E3779B97F4A7C15ULL + (seed << 12) + (seed >> 4));
}
uint64_t HashDouble(double d) {
  // Normalize -0.0 so equal values hash equally.
  if (d == 0.0) d = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits * 0xC2B2AE3D27D4EB4FULL;
}
}  // namespace

Value Value::Str(std::string v) {
  Value out;
  out.repr_ = std::make_shared<const std::string>(std::move(v));
  return out;
}

Value Value::Tuple(ValueVec elems) {
  Value out;
  out.repr_ = std::make_shared<const ValueVec>(std::move(elems));
  return out;
}

Value Value::List(ValueVec elems) {
  Value out;
  out.repr_ = std::make_shared<ValueVec>(std::move(elems));
  return out;
}

Value Value::TileVal(la::Tile t) {
  Value out;
  out.repr_ = std::make_shared<const la::Tile>(std::move(t));
  return out;
}

Value Value::TileVal(std::shared_ptr<const la::Tile> t) {
  Value out;
  out.repr_ = std::move(t);
  return out;
}

Value Value::SparseTileVal(la::SparseTile t) {
  Value out;
  out.repr_ = std::make_shared<const la::SparseTile>(std::move(t));
  return out;
}

int64_t Value::AsInt() const {
  SAC_CHECK(is_int()) << "expected int, got " << ToString();
  return std::get<int64_t>(repr_);
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(repr_));
  SAC_CHECK(is_double()) << "expected numeric, got " << ToString();
  return std::get<double>(repr_);
}

bool Value::AsBool() const {
  SAC_CHECK(is_bool()) << "expected bool, got " << ToString();
  return std::get<bool>(repr_);
}

const std::string& Value::AsString() const {
  SAC_CHECK(is_string());
  return *std::get<std::shared_ptr<const std::string>>(repr_);
}

const ValueVec& Value::AsTuple() const {
  SAC_CHECK(is_tuple()) << "expected tuple, got " << ToString();
  return *std::get<std::shared_ptr<const ValueVec>>(repr_);
}

const ValueVec& Value::AsList() const {
  SAC_CHECK(is_list()) << "expected list, got " << ToString();
  return *std::get<std::shared_ptr<ValueVec>>(repr_);
}

const la::Tile& Value::AsTile() const {
  SAC_CHECK(is_tile()) << "expected tile, got " << ToString();
  return *std::get<std::shared_ptr<const la::Tile>>(repr_);
}

const la::SparseTile& Value::AsSparseTile() const {
  SAC_CHECK(is_sparse_tile()) << "expected sparse tile, got " << ToString();
  return *std::get<std::shared_ptr<const la::SparseTile>>(repr_);
}

std::shared_ptr<const la::Tile> Value::SharedTile() const {
  SAC_CHECK(is_tile());
  return std::get<std::shared_ptr<const la::Tile>>(repr_);
}

la::Tile* Value::MutableTile() {
  SAC_CHECK(is_tile());
  auto& ptr = std::get<std::shared_ptr<const la::Tile>>(repr_);
  if (ptr.use_count() != 1) {
    repr_ = std::make_shared<const la::Tile>(*ptr);
  }
  return const_cast<la::Tile*>(
      std::get<std::shared_ptr<const la::Tile>>(repr_).get());
}

bool Value::Equals(const Value& other) const {
  return Compare(other) == 0;
}

int Value::Compare(const Value& other) const {
  if (kind() != other.kind()) {
    // Numeric cross-kind comparison (int vs double) compares by value.
    if (is_numeric() && other.is_numeric()) {
      const double a = AsDouble(), b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    return static_cast<int>(kind()) < static_cast<int>(other.kind()) ? -1 : 1;
  }
  switch (kind()) {
    case Kind::kUnit:
      return 0;
    case Kind::kInt: {
      const int64_t a = std::get<int64_t>(repr_);
      const int64_t b = std::get<int64_t>(other.repr_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case Kind::kDouble: {
      const double a = std::get<double>(repr_);
      const double b = std::get<double>(other.repr_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case Kind::kBool: {
      const bool a = std::get<bool>(repr_);
      const bool b = std::get<bool>(other.repr_);
      return a == b ? 0 : (a ? 1 : -1);
    }
    case Kind::kString:
      return AsString().compare(other.AsString());
    case Kind::kTuple:
    case Kind::kList: {
      const ValueVec& a = is_tuple() ? AsTuple() : AsList();
      const ValueVec& b = other.is_tuple() ? other.AsTuple() : other.AsList();
      const size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        const int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
    }
    case Kind::kTile: {
      const la::Tile& a = AsTile();
      const la::Tile& b = other.AsTile();
      if (a.rows() != b.rows()) return a.rows() < b.rows() ? -1 : 1;
      if (a.cols() != b.cols()) return a.cols() < b.cols() ? -1 : 1;
      const int64_t n = a.size();
      for (int64_t i = 0; i < n; ++i) {
        if (a.data()[i] != b.data()[i]) {
          return a.data()[i] < b.data()[i] ? -1 : 1;
        }
      }
      return 0;
    }
    case Kind::kSparseTile: {
      // Compare through the dense expansion (sparse tiles are small and
      // comparison is test-only).
      const la::Tile a = AsSparseTile().ToDense();
      const la::Tile b = other.AsSparseTile().ToDense();
      if (a.rows() != b.rows()) return a.rows() < b.rows() ? -1 : 1;
      if (a.cols() != b.cols()) return a.cols() < b.cols() ? -1 : 1;
      for (int64_t i = 0; i < a.size(); ++i) {
        if (a.data()[i] != b.data()[i]) {
          return a.data()[i] < b.data()[i] ? -1 : 1;
        }
      }
      return 0;
    }
  }
  return 0;
}

uint64_t Value::Hash() const {
  switch (kind()) {
    case Kind::kUnit:
      return 0x51CE0FF5ULL;
    case Kind::kInt:
      return HashDouble(static_cast<double>(std::get<int64_t>(repr_)));
    case Kind::kDouble:
      return HashDouble(std::get<double>(repr_));
    case Kind::kBool:
      return std::get<bool>(repr_) ? 0xB001B001ULL : 0xB000B000ULL;
    case Kind::kString: {
      uint64_t h = 14695981039346656037ULL;
      for (char c : AsString()) {
        h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
      }
      return h;
    }
    case Kind::kTuple:
    case Kind::kList: {
      const ValueVec& v = is_tuple() ? AsTuple() : AsList();
      uint64_t h = is_tuple() ? 0x7u : 0x1Fu;
      for (const Value& e : v) h = HashCombine(h, e.Hash());
      return h;
    }
    case Kind::kTile: {
      const la::Tile& t = AsTile();
      uint64_t h = HashCombine(static_cast<uint64_t>(t.rows()),
                               static_cast<uint64_t>(t.cols()));
      for (int64_t i = 0; i < t.size(); ++i) {
        h = HashCombine(h, HashDouble(t.data()[i]));
      }
      return h;
    }
    case Kind::kSparseTile: {
      const la::SparseTile& t = AsSparseTile();
      uint64_t h = HashCombine(static_cast<uint64_t>(t.rows()),
                               static_cast<uint64_t>(t.cols()));
      for (size_t i = 0; i < t.values().size(); ++i) {
        h = HashCombine(h, static_cast<uint64_t>(t.col_idx()[i]));
        h = HashCombine(h, HashDouble(t.values()[i]));
      }
      return h;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (kind()) {
    case Kind::kUnit:
      os << "()";
      break;
    case Kind::kInt:
      os << std::get<int64_t>(repr_);
      break;
    case Kind::kDouble:
      os << std::get<double>(repr_);
      break;
    case Kind::kBool:
      os << (std::get<bool>(repr_) ? "true" : "false");
      break;
    case Kind::kString:
      os << '"' << AsString() << '"';
      break;
    case Kind::kTuple: {
      os << "(";
      const ValueVec& v = AsTuple();
      for (size_t i = 0; i < v.size(); ++i) {
        if (i) os << ",";
        os << v[i].ToString();
      }
      os << ")";
      break;
    }
    case Kind::kList: {
      os << "[";
      const ValueVec& v = AsList();
      for (size_t i = 0; i < v.size(); ++i) {
        if (i) os << ",";
        os << v[i].ToString();
      }
      os << "]";
      break;
    }
    case Kind::kTile:
      os << AsTile().ToString();
      break;
    case Kind::kSparseTile:
      os << "SparseTile(" << AsSparseTile().rows() << "x"
         << AsSparseTile().cols() << ", nnz=" << AsSparseTile().nnz() << ")";
      break;
  }
  return os.str();
}

void Value::Serialize(ByteWriter* w) const {
  w->PutU8(static_cast<uint8_t>(kind()));
  switch (kind()) {
    case Kind::kUnit:
      break;
    case Kind::kInt:
      w->PutI64(std::get<int64_t>(repr_));
      break;
    case Kind::kDouble:
      w->PutF64(std::get<double>(repr_));
      break;
    case Kind::kBool:
      w->PutBool(std::get<bool>(repr_));
      break;
    case Kind::kString:
      w->PutString(AsString());
      break;
    case Kind::kTuple:
    case Kind::kList: {
      const ValueVec& v = is_tuple() ? AsTuple() : AsList();
      w->PutU32(static_cast<uint32_t>(v.size()));
      for (const Value& e : v) e.Serialize(w);
      break;
    }
    case Kind::kTile: {
      const la::Tile& t = AsTile();
      w->PutI64(t.rows());
      w->PutI64(t.cols());
      w->PutRaw(t.data(), static_cast<size_t>(t.size()) * sizeof(double));
      break;
    }
    case Kind::kSparseTile: {
      const la::SparseTile& t = AsSparseTile();
      w->PutI64(t.rows());
      w->PutI64(t.cols());
      w->PutU64(static_cast<uint64_t>(t.nnz()));
      w->PutRaw(t.row_ptr().data(), t.row_ptr().size() * sizeof(int64_t));
      w->PutRaw(t.col_idx().data(), t.col_idx().size() * sizeof(int32_t));
      w->PutRaw(t.values().data(), t.values().size() * sizeof(double));
      break;
    }
  }
}

Result<Value> Value::Deserialize(ByteReader* r) {
  SAC_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (static_cast<Kind>(tag)) {
    case Kind::kUnit:
      return Value::Unit();
    case Kind::kInt: {
      SAC_ASSIGN_OR_RETURN(int64_t v, r->GetI64());
      return Value::Int(v);
    }
    case Kind::kDouble: {
      SAC_ASSIGN_OR_RETURN(double v, r->GetF64());
      return Value::Double(v);
    }
    case Kind::kBool: {
      SAC_ASSIGN_OR_RETURN(bool v, r->GetBool());
      return Value::Bool(v);
    }
    case Kind::kString: {
      SAC_ASSIGN_OR_RETURN(std::string v, r->GetString());
      return Value::Str(std::move(v));
    }
    case Kind::kTuple:
    case Kind::kList: {
      SAC_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
      ValueVec elems;
      elems.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        SAC_ASSIGN_OR_RETURN(Value e, Deserialize(r));
        elems.push_back(std::move(e));
      }
      if (static_cast<Kind>(tag) == Kind::kTuple) {
        return Value::Tuple(std::move(elems));
      }
      return Value::List(std::move(elems));
    }
    case Kind::kTile: {
      SAC_ASSIGN_OR_RETURN(int64_t rows, r->GetI64());
      SAC_ASSIGN_OR_RETURN(int64_t cols, r->GetI64());
      if (rows < 0 || cols < 0 ||
          static_cast<uint64_t>(rows) * static_cast<uint64_t>(cols) >
              r->remaining() / sizeof(double)) {
        return Status::IoError("corrupt tile header");
      }
      std::vector<double> data(static_cast<size_t>(rows * cols));
      SAC_RETURN_NOT_OK(r->GetRaw(data.data(), data.size() * sizeof(double)));
      return Value::TileVal(la::Tile(rows, cols, std::move(data)));
    }
    case Kind::kSparseTile: {
      SAC_ASSIGN_OR_RETURN(int64_t rows, r->GetI64());
      SAC_ASSIGN_OR_RETURN(int64_t cols, r->GetI64());
      SAC_ASSIGN_OR_RETURN(uint64_t nnz, r->GetU64());
      if (rows < 0 || cols < 0 ||
          nnz > r->remaining() / (sizeof(int32_t) + sizeof(double))) {
        return Status::IoError("corrupt sparse tile header");
      }
      std::vector<int64_t> row_ptr(static_cast<size_t>(rows) + 1);
      SAC_RETURN_NOT_OK(
          r->GetRaw(row_ptr.data(), row_ptr.size() * sizeof(int64_t)));
      std::vector<int32_t> col_idx(nnz);
      SAC_RETURN_NOT_OK(
          r->GetRaw(col_idx.data(), col_idx.size() * sizeof(int32_t)));
      std::vector<double> values(nnz);
      SAC_RETURN_NOT_OK(
          r->GetRaw(values.data(), values.size() * sizeof(double)));
      return Value::SparseTileVal(la::SparseTile(
          rows, cols, std::move(row_ptr), std::move(col_idx),
          std::move(values)));
    }
    default:
      return Status::IoError("unknown value tag");
  }
}

size_t Value::SerializedSize() const {
  size_t n = 1;  // tag
  switch (kind()) {
    case Kind::kUnit:
      break;
    case Kind::kInt:
    case Kind::kDouble:
      n += 8;
      break;
    case Kind::kBool:
      n += 1;
      break;
    case Kind::kString:
      n += 4 + AsString().size();
      break;
    case Kind::kTuple:
    case Kind::kList: {
      const ValueVec& v = is_tuple() ? AsTuple() : AsList();
      n += 4;
      for (const Value& e : v) n += e.SerializedSize();
      break;
    }
    case Kind::kTile:
      n += 16 + static_cast<size_t>(AsTile().size()) * sizeof(double);
      break;
    case Kind::kSparseTile:
      n += 24 + AsSparseTile().PayloadBytes();
      break;
  }
  return n;
}

size_t SerializedSizeOf(const ValueVec& rows) {
  size_t n = 0;
  for (const Value& v : rows) n += v.SerializedSize();
  return n;
}

}  // namespace sac::runtime
