// Fault-tolerance subsystem: deterministic fault injection.
//
// The engine substitutes for Spark's lineage-based fault tolerance
// (DESIGN.md section 1), and a recovery story is only credible with an
// explicit, testable fault model. This header defines it:
//
//  * FaultPoint -- the named points inside a task attempt where the
//    engine consults the active FaultPlan. Every point sits *before* the
//    attempt publishes any state, so a failed attempt can be retried
//    from scratch on identical input (the idempotence invariant the
//    retry loop in Engine::RunTaskWithRetry relies on).
//  * FaultPlan -- a parsed, seeded plan of injected failures. Rules fire
//    per (point, stage label, partition, attempt), never "first N checks
//    globally", so a plan replays identically regardless of thread
//    scheduling. Probabilistic rules hash (seed, point, label,
//    partition, attempt) with a fixed FNV-1a, so they are equally
//    deterministic and portable.
//
// Plan grammar (also documented in docs/FAULT_MODEL.md):
//
//   plan  := item (';' item)*
//   item  := 'seed=' N | rule
//   rule  := point '@' stage (':' opt)*
//   point := 'pre-run' | 'mid-map' | 'shuffle-serialize' | 'post-shuffle'
//   stage := '*' (any stage) | substring matched against the stage label
//   opt   := 'part=' N      (only this partition; default: every one)
//          | 'count=' N     (attempts 1..N fail; default 1)
//          | 'p=' F         (fire with probability F in [0,1]; default 1)
//
// Example: SAC_FAULT_PLAN="seed=7;mid-map@map:part=0;shuffle-serialize@reduceByKey:part=1:count=2"
//
// Injected failures carry StatusCode::kCancelled -- the only code the
// retry loop treats as transient. Real task errors (user code, planner
// bugs) keep their codes and are never retried.
#ifndef SAC_RUNTIME_RECOVERY_H_
#define SAC_RUNTIME_RECOVERY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace sac::runtime::recovery {

/// Named points inside a task attempt where faults can be injected. All
/// of them precede the attempt's state publication (see file comment).
enum class FaultPoint : int {
  kPreRun = 0,            // task scheduled, body not yet started
  kMidMap = 1,            // narrow map body ran, output not yet published
  kShuffleSerialize = 2,  // map-side shuffle task, mid bucket/serialize
  kPostShuffle = 3,       // reduce task start: shuffle output written,
                          // reduce-side fold not yet run
};
inline constexpr int kNumFaultPoints = 4;

/// "pre-run" | "mid-map" | "shuffle-serialize" | "post-shuffle".
const char* FaultPointName(FaultPoint p);

/// One parsed plan rule; see the grammar in the file comment.
struct FaultRule {
  FaultPoint point = FaultPoint::kPreRun;
  std::string stage = "*";  // "*" or substring of the stage label
  int partition = -1;       // -1 = every partition
  int count = 1;            // attempts 1..count fail
  double prob = 1.0;        // < 1: seeded-hash coin flip per attempt

  std::string ToString() const;
};

/// A deterministic, seeded plan of injected task failures. Thread-safe:
/// rules are immutable after Parse and the fired counters are atomics,
/// so Check() may be called concurrently from pool threads.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan(const FaultPlan& other) { CopyFrom(other); }
  FaultPlan& operator=(const FaultPlan& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  /// Parses the grammar above. Errors name the offending item.
  static Result<FaultPlan> Parse(const std::string& spec);

  /// Parses SAC_FAULT_PLAN; unset => empty plan. A malformed value is
  /// logged as an error and ignored (the engine must still construct).
  static FaultPlan FromEnv();

  bool empty() const { return rules_.empty(); }
  uint64_t seed() const { return seed_; }
  const std::vector<FaultRule>& rules() const { return rules_; }

  /// Consulted by the engine at each instrumented point. Returns a
  /// kCancelled status when a rule fires for this exact
  /// (point, stage label, partition, attempt) tuple, OK otherwise.
  Status Check(FaultPoint point, const std::string& stage_label,
               int partition, int attempt);

  /// Faults fired so far (total / per point).
  uint64_t injected() const;
  uint64_t injected(FaultPoint point) const {
    return injected_[static_cast<int>(point)].load(
        std::memory_order_relaxed);
  }
  void ResetCounters();

  /// Renders back to the plan grammar (minus fired-counter state).
  std::string ToString() const;

 private:
  void CopyFrom(const FaultPlan& other);

  std::vector<FaultRule> rules_;
  uint64_t seed_ = 0;
  std::array<std::atomic<uint64_t>, kNumFaultPoints> injected_{};
};

}  // namespace sac::runtime::recovery

#endif  // SAC_RUNTIME_RECOVERY_H_
