#include "src/runtime/recovery.h"

#include <cstdlib>
#include <sstream>

#include "src/common/logging.h"

namespace sac::runtime::recovery {

namespace {

// Fixed FNV-1a over the firing tuple: the probabilistic coin flip must
// replay identically across platforms and thread schedules, which rules
// out std::hash and any stateful RNG shared between tasks.
uint64_t Fnv1a(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t HashTuple(uint64_t seed, FaultPoint point, const std::string& label,
                   int partition, int attempt) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1a(h, &seed, sizeof(seed));
  int p = static_cast<int>(point);
  h = Fnv1a(h, &p, sizeof(p));
  h = Fnv1a(h, label.data(), label.size());
  h = Fnv1a(h, &partition, sizeof(partition));
  h = Fnv1a(h, &attempt, sizeof(attempt));
  return h;
}

Result<FaultPoint> ParsePoint(const std::string& s) {
  for (int i = 0; i < kNumFaultPoints; ++i) {
    auto p = static_cast<FaultPoint>(i);
    if (s == FaultPointName(p)) return p;
  }
  return Status::InvalidArgument("unknown fault point '" + s +
                         "' (expected pre-run, mid-map, shuffle-serialize "
                         "or post-shuffle)");
}

Result<long> ParseInt(const std::string& s, const std::string& what) {
  if (s.empty()) return Status::InvalidArgument(what + " is empty");
  char* end = nullptr;
  long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) {
    return Status::InvalidArgument("bad " + what + " '" + s + "'");
  }
  return v;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

const char* FaultPointName(FaultPoint p) {
  switch (p) {
    case FaultPoint::kPreRun: return "pre-run";
    case FaultPoint::kMidMap: return "mid-map";
    case FaultPoint::kShuffleSerialize: return "shuffle-serialize";
    case FaultPoint::kPostShuffle: return "post-shuffle";
  }
  return "?";
}

std::string FaultRule::ToString() const {
  std::ostringstream os;
  os << FaultPointName(point) << '@' << stage;
  if (partition >= 0) os << ":part=" << partition;
  if (count != 1) os << ":count=" << count;
  if (prob < 1.0) os << ":p=" << prob;
  return os.str();
}

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& raw : Split(spec, ';')) {
    // Trim surrounding whitespace so "a; b" works.
    size_t b = raw.find_first_not_of(" \t");
    if (b == std::string::npos) continue;  // empty item, e.g. trailing ';'
    size_t e = raw.find_last_not_of(" \t");
    std::string item = raw.substr(b, e - b + 1);

    if (item.rfind("seed=", 0) == 0) {
      SAC_ASSIGN_OR_RETURN(long s, ParseInt(item.substr(5), "seed"));
      plan.seed_ = static_cast<uint64_t>(s);
      continue;
    }

    size_t at = item.find('@');
    if (at == std::string::npos) {
      return Status::InvalidArgument("fault rule '" + item +
                             "' has no '@' (expected point@stage[:opt...])");
    }
    FaultRule rule;
    SAC_ASSIGN_OR_RETURN(rule.point, ParsePoint(item.substr(0, at)));
    std::vector<std::string> parts = Split(item.substr(at + 1), ':');
    if (parts[0].empty()) {
      return Status::InvalidArgument("fault rule '" + item + "' has an empty stage");
    }
    rule.stage = parts[0];
    for (size_t i = 1; i < parts.size(); ++i) {
      const std::string& opt = parts[i];
      if (opt.rfind("part=", 0) == 0) {
        SAC_ASSIGN_OR_RETURN(long v, ParseInt(opt.substr(5), "part"));
        rule.partition = static_cast<int>(v);
      } else if (opt.rfind("count=", 0) == 0) {
        SAC_ASSIGN_OR_RETURN(long v, ParseInt(opt.substr(6), "count"));
        if (v < 1) return Status::InvalidArgument("count must be >= 1 in '" + item + "'");
        rule.count = static_cast<int>(v);
      } else if (opt.rfind("p=", 0) == 0) {
        char* end = nullptr;
        double p = std::strtod(opt.c_str() + 2, &end);
        if (end != opt.c_str() + opt.size() || p < 0.0 || p > 1.0) {
          return Status::InvalidArgument("bad probability in '" + item +
                                 "' (want p=F with F in [0,1])");
        }
        rule.prob = p;
      } else {
        return Status::InvalidArgument("unknown option '" + opt + "' in fault rule '" +
                               item + "'");
      }
    }
    plan.rules_.push_back(std::move(rule));
  }
  return plan;
}

FaultPlan FaultPlan::FromEnv() {
  const char* v = std::getenv("SAC_FAULT_PLAN");
  if (v == nullptr || *v == '\0') return FaultPlan();
  auto parsed = Parse(v);
  if (!parsed.ok()) {
    SAC_LOG(Error) << "ignoring malformed SAC_FAULT_PLAN: "
                   << parsed.status().ToString();
    return FaultPlan();
  }
  SAC_LOG(Info) << "fault plan active: " << parsed.value().ToString();
  return std::move(parsed).value();
}

Status FaultPlan::Check(FaultPoint point, const std::string& stage_label,
                        int partition, int attempt) {
  for (const FaultRule& r : rules_) {
    if (r.point != point) continue;
    if (r.stage != "*" && stage_label.find(r.stage) == std::string::npos)
      continue;
    if (r.partition >= 0 && r.partition != partition) continue;
    if (attempt > r.count) continue;
    if (r.prob < 1.0) {
      uint64_t h = HashTuple(seed_, point, stage_label, partition, attempt);
      // Top 53 bits -> uniform double in [0,1).
      double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      if (u >= r.prob) continue;
    }
    injected_[static_cast<int>(point)].fetch_add(1,
                                                 std::memory_order_relaxed);
    std::ostringstream os;
    os << "injected fault at " << FaultPointName(point) << " in '"
       << stage_label << "' partition " << partition << " attempt "
       << attempt;
    return Status::Cancelled(os.str());
  }
  return Status::OK();
}

uint64_t FaultPlan::injected() const {
  uint64_t total = 0;
  for (const auto& c : injected_) total += c.load(std::memory_order_relaxed);
  return total;
}

void FaultPlan::ResetCounters() {
  for (auto& c : injected_) c.store(0, std::memory_order_relaxed);
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  os << "seed=" << seed_;
  for (const FaultRule& r : rules_) os << ';' << r.ToString();
  return os.str();
}

void FaultPlan::CopyFrom(const FaultPlan& other) {
  rules_ = other.rules_;
  seed_ = other.seed_;
  for (int i = 0; i < kNumFaultPoints; ++i) {
    injected_[i].store(other.injected_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }
}

}  // namespace sac::runtime::recovery
