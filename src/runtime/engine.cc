#include "src/runtime/engine.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/common/profile.h"
#include "src/common/serialize.h"
#include "src/dist/coordinator.h"
#include "src/dist/protocol.h"
#include "src/dist/worker.h"
#include "src/la/backend.h"
#include "src/net/loopback.h"
#include "src/net/tcp.h"
#include "src/storage/spill.h"

namespace sac::runtime {

namespace {

const char* KindName(DatasetImpl::OpKind kind) {
  switch (kind) {
    case DatasetImpl::OpKind::kSource:
      return "source";
    case DatasetImpl::OpKind::kNarrow:
      return "narrow";
    case DatasetImpl::OpKind::kShuffle:
      return "shuffle";
    case DatasetImpl::OpKind::kCoShuffle:
      return "coshuffle";
    case DatasetImpl::OpKind::kUnion:
      return "union";
  }
  return "?";
}

/// Insertion-ordered key index: maps keys to dense slots so reduce-side
/// folds produce rows in first-seen order (deterministic output).
class KeySlots {
 public:
  size_t SlotFor(const Value& key) {
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    const size_t slot = keys_.size();
    index_.emplace(key, slot);
    keys_.push_back(key);
    return slot;
  }
  const std::vector<Value>& keys() const { return keys_; }
  size_t size() const { return keys_.size(); }

 private:
  std::unordered_map<Value, size_t, ValueHash, ValueEq> index_;
  std::vector<Value> keys_;
};

Status ExpectPair(const Value& row) {
  if (!row.is_pair()) {
    return Status::RuntimeError(
        "wide operator expects (key, value) rows, got " + row.ToString());
  }
  return Status::OK();
}

/// SAC_SHUFFLE_FAST_PATH: unset/"on"/"1"/"true" => fast path (default);
/// "off"/"0"/"false" => force the serialize-everything path.
bool FastPathFromEnv() {
  const char* v = std::getenv("SAC_SHUFFLE_FAST_PATH");
  if (v == nullptr) return true;
  std::string s(v);
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return !(s == "off" || s == "0" || s == "false");
}

/// Base directory for spill files when neither the call nor the config
/// names one.
std::string DefaultSpillDir() {
  const char* t = std::getenv("TMPDIR");
  return (t != nullptr && *t != '\0') ? std::string(t) : std::string("/tmp");
}

/// SAC_SAMPLE_INTERVAL_US: non-negative integer microseconds overriding
/// ClusterConfig::sample_interval_us (0 = sampler off). Unset or
/// unparseable keeps the config value.
int SampleIntervalFromEnv(int fallback) {
  const char* v = std::getenv("SAC_SAMPLE_INTERVAL_US");
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed < 0) return fallback;
  return static_cast<int>(parsed);
}

/// SAC_MAX_CONCURRENT: positive integer overriding
/// ClusterConfig::max_concurrent_queries (1 = serialized admission).
/// Unset or unparseable keeps the config value; everything is clamped
/// to >= 1.
int MaxConcurrentFromEnv(int fallback) {
  const char* v = std::getenv("SAC_MAX_CONCURRENT");
  int result = fallback;
  if (v != nullptr && *v != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end != v && *end == '\0' && parsed > 0) {
      result = static_cast<int>(parsed);
    } else {
      SAC_LOG(Warn) << "ignoring unparseable SAC_MAX_CONCURRENT='" << v
                    << "'";
    }
  }
  return result < 1 ? 1 : result;
}

/// SAC_KERNEL_BACKEND ("generic" | "packed" | "jvmlike") wins over the
/// config field; empty/unset falls through to the config, then to the
/// "packed" default. Unknown names warn and take the default rather than
/// failing the run.
const la::KernelBackend* KernelBackendFromEnv(const std::string& config_name) {
  const char* env = std::getenv("SAC_KERNEL_BACKEND");
  const std::string name =
      (env != nullptr && *env != '\0') ? std::string(env) : config_name;
  if (name.empty()) return la::GetBackend(la::BackendKind::kPacked);
  const la::KernelBackend* kb = la::FindBackend(name);
  if (kb == nullptr) {
    SAC_LOG(Warn) << "unknown kernel backend '" << name
                  << "' (expected generic|packed|jvmlike); using packed";
    return la::GetBackend(la::BackendKind::kPacked);
  }
  return kb;
}

/// SAC_TRANSPORT ("loopback" | "tcp") wins over the config field; empty
/// or unset falls through to the config, then to "loopback". Unknown
/// names warn and take the default rather than failing the run.
std::string TransportFromEnv(const std::string& config_name) {
  const char* env = std::getenv("SAC_TRANSPORT");
  std::string name =
      (env != nullptr && *env != '\0') ? std::string(env) : config_name;
  for (char& c : name) c = static_cast<char>(std::tolower(c));
  if (name.empty()) return "loopback";
  if (name != "loopback" && name != "tcp") {
    SAC_LOG(Warn) << "unknown transport '" << name
                  << "' (expected loopback|tcp); using loopback";
    return "loopback";
  }
  return name;
}

/// SAC_WORKERS wins over the config field: "" = no distributed runtime,
/// "N" = N in-process workers, "host:port,..." = external workers.
std::string WorkersFromEnv(const std::string& config_value) {
  const char* env = std::getenv("SAC_WORKERS");
  return env != nullptr ? std::string(env) : config_value;
}

/// True when `spec` is a plain worker count ("3") rather than an
/// address list.
bool IsWorkerCount(const std::string& spec) {
  if (spec.empty()) return false;
  for (char c : spec) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::vector<std::string> SplitAddrs(const std::string& spec) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : spec) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// SAC_TRACE=<path>: auto-write the Chrome trace at engine teardown.
/// Each engine after the first in one process gets "<path>.<k>" so
/// multi-engine runs (benches, tests) keep every trace.
std::string TracePathFromEnv() {
  const char* v = std::getenv("SAC_TRACE");
  if (v == nullptr || *v == '\0') return "";
  static std::atomic<uint64_t> seq{0};
  const uint64_t k = seq.fetch_add(1, std::memory_order_relaxed);
  return k == 0 ? std::string(v)
                : std::string(v) + "." + std::to_string(k);
}

}  // namespace

DatasetImpl::~DatasetImpl() {
  if (store_) store_->Unregister(this);
  for (const std::string& p : spill_paths_) storage::RemoveSpill(p);
}

void DatasetImpl::InvalidatePartition(int i) {
  available_[i] = 0;
  // Drop the block registration (and any eviction spill) too: a spilled
  // copy of an "invalidated" partition would defeat the point of forcing
  // lineage recovery.
  if (store_) store_->Discard(this, i);
}

Engine::Engine(ClusterConfig config)
    : config_(config), pool_(static_cast<size_t>(config.TotalCores())) {
  SAC_CHECK_GE(config_.num_executors, 1);
  SAC_CHECK_GE(config_.cores_per_executor, 1);
  SAC_CHECK_GE(config_.default_parallelism, 1);
  SAC_CHECK_GE(config_.max_task_attempts, 1);
  SAC_CHECK_GE(config_.retry_base_delay_us, 0);
  SAC_CHECK_GE(config_.retry_max_delay_us, 0);
  SAC_CHECK_GE(config_.checkpoint_interval, 0);
  SetLogLevelFromEnv();
  shuffle_fast_path_ = FastPathFromEnv();
  fault_plan_ = recovery::FaultPlan::FromEnv();
  config_.sample_interval_us =
      SampleIntervalFromEnv(config_.sample_interval_us);
  auto_trace_path_ = TracePathFromEnv();
  // Effective backend: env > config > default; the config reflects the
  // effective name so planner/cost-model consumers see what actually runs.
  kernel_backend_ = KernelBackendFromEnv(config_.kernel_backend);
  config_.kernel_backend = std::string(kernel_backend_->name());

  // Effective budget: SAC_MEM_BUDGET wins over the config field; the
  // config reflects the effective value so callers (and SAC-W06) see it.
  config_.memory_budget_bytes =
      memory::BudgetFromEnv(config_.memory_budget_bytes);
  // Query service knobs resolve the same way: env > config, and the
  // config reflects the effective values.
  config_.max_concurrent_queries =
      MaxConcurrentFromEnv(config_.max_concurrent_queries);
  config_.session_memory_budget_bytes = memory::BudgetFromEnv(
      "SAC_SESSION_MEM_BUDGET", config_.session_memory_budget_bytes);
  admission_ = std::make_unique<AdmissionGate>(
      config_.max_concurrent_queries, &metrics_);
  const std::string base = !config_.spill_dir.empty() ? config_.spill_dir
                           : !config_.checkpoint_dir.empty()
                               ? config_.checkpoint_dir
                               : DefaultSpillDir();
  // Unique per process + engine so concurrent engines (tests) never
  // collide, and ~Engine can reclaim the whole directory.
  static std::atomic<uint64_t> next_engine{0};
  spill_dir_ = base + "/sac-spill-" + std::to_string(::getpid()) + "-" +
               std::to_string(
                   next_engine.fetch_add(1, std::memory_order_relaxed));
  memory::BlockStore::Options store_opts;
  store_opts.budget_bytes = config_.memory_budget_bytes;
  store_opts.spill_dir = spill_dir_;
  store_ = std::make_shared<memory::BlockStore>(std::move(store_opts));
  store_->set_event_sink(
      [this](const memory::BlockEvent& ev) { MeterBlockEvent(ev); });
  // The shuffle buffer pools return their freelist bytes to the same
  // budget: under pressure they are trimmed before any partition spills.
  store_->set_reclaimable(
      [this] {
        return static_cast<uint64_t>(byte_pool_.free_bytes()) +
               static_cast<uint64_t>(row_pool_.free_bytes());
      },
      [this] {
        byte_pool_.Trim();
        row_pool_.Trim();
      });
  // Distributed runtime (docs/DISTRIBUTED.md): env > config, and the
  // config reflects the effective values. A misconfigured cluster (an
  // unreachable worker) fails engine construction loudly rather than
  // failing the first shuffle obscurely.
  const Status dist_st = SetupDistributed();
  if (!dist_st.ok()) {
    SAC_LOG(Error) << "distributed setup failed: " << dist_st.ToString();
  }
  SAC_CHECK(dist_st.ok());
  StartSampler();
}

Engine::~Engine() {
  // Sampler first: nothing may touch the store/pools/tracer mid-teardown.
  StopSampler();
  // Distributed teardown, coordinator-first: stop the heartbeat and
  // drop the transport (closing pooled connections), then stop the
  // in-process servers (joining their service threads), then free the
  // worker states the handlers point at. External sac_worker processes
  // are left running -- their lifecycle belongs to whoever spawned them.
  coord_.reset();
  local_servers_.clear();
  local_workers_.clear();
  if (!auto_trace_path_.empty()) {
    Status st = WriteChromeTrace(auto_trace_path_);
    if (!st.ok()) {
      SAC_LOG(Warn) << "SAC_TRACE: " << st.ToString();
    } else {
      SAC_LOG(Info) << "SAC_TRACE: wrote " << auto_trace_path_;
    }
  }
  store_->Shutdown();
  // Checkpoints written without an explicit dir land in spill_dir_ too,
  // so this reclaims every file the engine ever spilled.
  storage::RemoveSpillDir(spill_dir_);
}

Status Engine::SetupDistributed() {
  // env > config, and the config reflects the effective values.
  config_.workers = WorkersFromEnv(config_.workers);
  config_.transport = TransportFromEnv(config_.transport);
  const std::string& spec = config_.workers;
  if (spec.empty()) return Status::OK();

  std::unique_ptr<net::Transport> transport;
  if (IsWorkerCount(spec)) {
    const int n = static_cast<int>(std::strtol(spec.c_str(), nullptr, 10));
    if (n < 1) {
      return Status::InvalidArgument("worker count must be >= 1, got '" +
                                     spec + "'");
    }
    for (int i = 0; i < n; ++i) {
      local_workers_.push_back(std::make_unique<dist::WorkerState>());
    }
    if (config_.transport == "tcp") {
      // Real sockets served in-process: each worker binds its own
      // 127.0.0.1 ephemeral port, so every bucket byte crosses the
      // loopback interface through the frame codec.
      std::vector<std::string> addrs;
      for (int i = 0; i < n; ++i) {
        dist::WorkerState* w = local_workers_[static_cast<size_t>(i)].get();
        auto server = std::make_unique<net::TcpServer>(
            [w](const net::Frame& f) { return w->Handle(f); });
        SAC_RETURN_NOT_OK(server->Start(0));
        addrs.push_back("127.0.0.1:" + std::to_string(server->port()));
        local_servers_.push_back(std::move(server));
      }
      transport = std::make_unique<net::TcpTransport>(std::move(addrs));
    } else {
      auto loopback = std::make_unique<net::LoopbackTransport>();
      for (int i = 0; i < n; ++i) {
        dist::WorkerState* w = local_workers_[static_cast<size_t>(i)].get();
        loopback->AddPeer([w](const net::Frame& f) { return w->Handle(f); });
      }
      transport = std::move(loopback);
    }
  } else {
    // Address list = external sac_worker processes, necessarily TCP.
    if (config_.transport != "tcp") {
      SAC_LOG(Info)
          << "workers is an address list; forcing the tcp transport";
      config_.transport = "tcp";
    }
    std::vector<std::string> addrs = SplitAddrs(spec);
    if (addrs.empty()) {
      return Status::InvalidArgument("no worker addresses in '" + spec +
                                     "'");
    }
    transport = std::make_unique<net::TcpTransport>(std::move(addrs));
  }

  dist::CoordinatorOptions copts;
  copts.num_executors = config_.num_executors;
  // Enough attempts to walk past every possible death: each Unavailable
  // answer marks one worker dead and re-places, so num_workers + 1
  // attempts always reaches a survivor (or "all workers lost").
  copts.max_attempts =
      std::max(config_.max_task_attempts, transport->num_peers() + 1);
  copts.retry_base_delay_us = config_.retry_base_delay_us;
  copts.retry_max_delay_us = config_.retry_max_delay_us;
  copts.heartbeat_interval_ms = config_.heartbeat_interval_ms;
  copts.heartbeat_timeout_ms = config_.heartbeat_timeout_ms;
  coord_ = std::make_unique<dist::Coordinator>(std::move(transport), copts,
                                               &metrics_, &tracer_);
  SAC_RETURN_NOT_OK(coord_->ConnectAll());
  coord_->StartHeartbeat();
  SAC_LOG(Info) << "distributed runtime up: " << coord_->num_workers()
                << " workers over " << coord_->transport().name();
  return Status::OK();
}

Status Engine::PushShuffleBuckets(StageStats* stats, uint64_t shuffle_id,
                                  int p, int src, ShuffleBuckets* bs) {
  const int num_dest = static_cast<int>(bs->remote_by_dest.size());
  for (int d = 0; d < num_dest; ++d) {
    if (bs->local_by_dest[d]) continue;  // zero-copy, stays in the driver
    dist::BucketId id;
    id.shuffle_id = shuffle_id;
    id.parent = p;
    id.src = src;
    id.dest = d;
    // Empty buckets are pushed too: a missing bucket on the reduce side
    // then always means loss, never "nothing was sent".
    SAC_RETURN_NOT_OK(coord_->PushBucket(stats, id, ExecutorOf(d),
                                         *bs->remote_by_dest[d]));
    // Release the driver-side buffer; the worker's copy is now the only
    // one, so the reduce side must fetch it over the transport (and its
    // loss with a dead worker is real loss, recovered from lineage).
    bs->remote_by_dest[d] = PooledVec<uint8_t>();
  }
  return Status::OK();
}

void Engine::StartSampler() {
  if (config_.sample_interval_us <= 0) return;
  sampler_ = std::thread([this] { SamplerLoop(); });
}

void Engine::StopSampler() {
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

void Engine::SamplerLoop() {
  const auto interval =
      std::chrono::microseconds(config_.sample_interval_us);
  std::unique_lock<std::mutex> lock(sampler_mu_);
  while (!sampler_stop_) {
    if (sampler_cv_.wait_for(lock, interval,
                             [this] { return sampler_stop_; })) {
      break;
    }
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

void Engine::SampleOnce() {
  tracer_.Counter(
      "engine",
      {{"resident_bytes", static_cast<int64_t>(store_->resident_bytes())},
       {"spilled_bytes", static_cast<int64_t>(store_->spilled_bytes())},
       {"pool_bytes",
        static_cast<int64_t>(byte_pool_.free_bytes() +
                             row_pool_.free_bytes())},
       {"in_flight_tasks", static_cast<int64_t>(pool_.in_flight())},
       {"live_queries", static_cast<int64_t>(live_queries())},
       {"evictions", static_cast<int64_t>(metrics_.evictions())},
       {"shuffle_bytes",
        static_cast<int64_t>(metrics_.shuffle_bytes() +
                             metrics_.local_shuffle_bytes())}});
}

void Engine::MeterBlockEvent(const memory::BlockEvent& ev) {
  StageStats* stats = stages_.Get(ev.stage);
  switch (ev.kind) {
    case memory::BlockEvent::Kind::kEvict:
      if (stats) {
        stats->AddEviction(ev.bytes);
      } else {
        metrics_.AddEviction(ev.bytes);
      }
      tracer_.Instant("evict:" + ev.label, "memory", 0,
                      {{"partition", ev.part},
                       {"bytes", static_cast<int64_t>(ev.bytes)}});
      break;
    case memory::BlockEvent::Kind::kReload:
      if (stats) {
        stats->AddReload(ev.bytes);
      } else {
        metrics_.AddReload(ev.bytes);
      }
      tracer_.Instant("reload:" + ev.label, "memory", 0,
                      {{"partition", ev.part},
                       {"bytes", static_cast<int64_t>(ev.bytes)}});
      break;
    case memory::BlockEvent::Kind::kReloadRecompute:
      if (stats) {
        stats->AddReloadRecompute();
      } else {
        metrics_.AddReloadRecompute();
      }
      tracer_.Instant("reload:" + ev.label, "memory", 0,
                      {{"partition", ev.part}, {"recompute", 1}});
      break;
  }
}

Result<Engine::PartitionPin> Engine::PinPartition(DatasetImpl* ds, int i) {
  // Up to three rounds: a missing partition recomputes (round 1), an
  // unreadable eviction spill drops the block and recomputes (round 2),
  // and the freshly published block might -- under extreme concurrent
  // pressure -- be evicted again before we re-pin (round 3, reloading
  // from its now-valid spill).
  for (int round = 0; round < 3; ++round) {
    if (!ds->IsAvailable(i)) SAC_RETURN_NOT_OK(RecomputePartition(ds, i));
    SAC_ASSIGN_OR_RETURN(memory::PinOutcome outcome, store_->Pin(ds, i));
    if (outcome != memory::PinOutcome::kNeedsRecompute) {
      SyncPeakResident();
      return PartitionPin(store_.get(), ds, i, &ds->parts_[i]);
    }
    // The store dropped the block (spill unreadable, metered as a
    // reload_recompute); treat it as a lost partition.
    ds->available_[i] = 0;
  }
  return Status::RuntimeError("partition " + std::to_string(i) + " of '" +
                              ds->label_ +
                              "' could not be pinned: spill reloads kept "
                              "failing after recomputation");
}

Status Engine::PublishPartition(DatasetImpl* ds, int i, Partition rows) {
  ds->parts_[i] = std::move(rows);
  ds->available_[i] = 1;
  const uint64_t bytes = SerializedSizeOf(ds->parts_[i]);
  Status st = store_->Publish(ds, i, &ds->parts_[i], bytes, ds->stage_,
                              ds->label_,
                              ds->session_ ? &ds->session_->memory()
                                           : nullptr);
  SyncPeakResident();
  return st;
}

void Engine::ResetStats() {
  // Resetting while an operator runs would tear per-stage counters and
  // leave task spans pointing at dropped stages; fail loudly instead.
  SAC_CHECK_EQ(in_flight(), 0)
      << "Engine::ResetStats called while a query is executing";
  // An admitted query that is still compiling has in_flight() == 0 but
  // will execute operators any moment; under concurrent admission that
  // window is routinely occupied, so check the ticket count too.
  SAC_CHECK_EQ(live_queries(), 0)
      << "Engine::ResetStats called while a query holds an admission "
         "ticket";
  metrics_.Reset();
  stages_.Reset();
  tracer_.Reset();
  // Blocks resident before the reset are still resident; restart the
  // high-water mark from there instead of from zero.
  store_->RearmPeak();
  SyncPeakResident();
}

Status Engine::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::RuntimeError("cannot open trace output file '" + path +
                                "'");
  }
  out << ChromeTraceJson();
  out.close();
  if (!out) {
    return Status::RuntimeError("failed writing trace to '" + path + "'");
  }
  return Status::OK();
}

std::string Engine::ProfileJson(double wall_ms_hint,
                                const std::string& query) const {
  profile::ProfileInputs in;
  in.spans = tracer_.Snapshot();
  in.stage_stats = stages_.Snapshot();
  in.totals = metrics_.Snapshot();
  in.wall_ms_hint = wall_ms_hint;
  in.dropped_trace_events = tracer_.dropped_events();
  in.query = query;
  return profile::BuildProfile(std::move(in)).ToJson();
}

Status Engine::WriteProfile(const std::string& path, double wall_ms_hint,
                            const std::string& query) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::RuntimeError("cannot open profile output file '" + path +
                                "'");
  }
  out << ProfileJson(wall_ms_hint, query);
  out.close();
  if (!out) {
    return Status::RuntimeError("failed writing profile to '" + path + "'");
  }
  return Status::OK();
}

std::string Engine::ExplainWithStats(const Dataset& ds) {
  std::ostringstream os;
  std::unordered_set<const DatasetImpl*> visited;
  const std::function<void(const DatasetImpl*, int)> walk =
      [&](const DatasetImpl* d, int depth) {
        os << std::string(static_cast<size_t>(depth) * 2, ' ') << "#"
           << d->stage_.id << " " << d->label_ << " [" << KindName(d->kind_)
           << "] parts=" << d->num_partitions();
        if (!visited.insert(d).second) {
          os << " (shown above)\n";
          return;
        }
        if (StageStats* s = stages_.Get(d->stage_)) {
          const StageStatsSnapshot snap = s->Snapshot();
          os << " tasks=" << snap.counters.tasks_run
             << " records_in=" << snap.counters.records_processed
             << " shuffle_bytes=" << snap.counters.shuffle_bytes
             << " cross_bytes=" << snap.counters.cross_executor_bytes
             << " local_bytes=" << snap.counters.local_shuffle_bytes
             << " recomputed=" << snap.counters.tasks_recomputed;
          if (snap.task_us.count > 0) {
            os << " task_us{" << snap.task_us.ToString() << "}";
          }
        }
        os << "\n";
        for (const auto& p : d->parents_) walk(p.get(), depth + 1);
      };
  walk(ds.get(), 0);
  return os.str();
}

std::shared_ptr<Session> Engine::OpenSession(const std::string& name,
                                             uint64_t memory_budget_bytes) {
  const uint64_t id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<Session>(id, name, memory_budget_bytes,
                                   pool_.OpenQueue());
}

Dataset Engine::NewDataset(DatasetImpl::OpKind kind, std::string label,
                           std::vector<Dataset> parents, int num_partitions) {
  auto ds = std::make_shared<DatasetImpl>();
  ds->kind_ = kind;
  ds->label_ = std::move(label);
  ds->parents_ = std::move(parents);
  ds->parts_.resize(num_partitions);
  ds->available_.assign(num_partitions, false);
  // Datasets created under a Session::Scope belong to that session: the
  // stage's counters dual-sink into its metrics, publishes charge its
  // memory slice, and its tasks land on its fair-scheduled queue.
  ds->session_ = Session::Current();
  ds->stage_ = stages_.NewStage(
      ds->label_, KindName(kind),
      ds->session_ ? &ds->session_->metrics() : nullptr);
  ds->store_ = store_;
  return ds;
}

Status Engine::ParallelParts(const TaskContext& ctx, int n,
                             const TaskAttemptFn& fn) {
  InFlightScope running(this);
  std::mutex mu;
  Status first_error;
  pool_.ParallelFor(static_cast<size_t>(n), [&](size_t i) {
    trace::ScopedSpan span(&tracer_,
                           ctx.label + ":" + ctx.phase + "[" +
                               std::to_string(i) + "]",
                           "task", ctx.parent_span);
    Stopwatch sw;
    if (ctx.stats) {
      ctx.stats->AddTask();
    } else {
      metrics_.AddTask();
    }
    Status st = RunTaskWithRetry(ctx, static_cast<int>(i), fn);
    if (ctx.stats) ctx.stats->RecordTaskMicros(sw.ElapsedMicros());
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      if (first_error.ok()) first_error = st;
    }
  }, /*chunk=*/0, ctx.queue);
  return first_error;
}

Status Engine::CheckFault(recovery::FaultPoint point, const TaskContext& ctx,
                          int part, int attempt) {
  if (fault_plan_.empty()) return Status::OK();
  Status st = fault_plan_.Check(point, ctx.label, part, attempt);
  if (!st.ok()) {
    if (ctx.stats) {
      ctx.stats->AddFault();
    } else {
      metrics_.AddFault();
    }
    tracer_.Instant("fault:" + ctx.label, "fault", ctx.parent_span,
                    {{"partition", part}, {"attempt", attempt}});
    SAC_LOG(Info) << st.message();
  }
  return st;
}

Status Engine::RunTaskWithRetry(const TaskContext& ctx, int part,
                                const TaskAttemptFn& fn) {
  const int max_attempts = config_.max_task_attempts;
  Status last;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      // Backoff before attempt k+1 is base * 2^(k-1), capped. On a real
      // cluster this is the window in which a flaky executor recovers; it
      // is metered so ReportString shows what recovery cost.
      uint64_t delay_us =
          static_cast<uint64_t>(config_.retry_base_delay_us);
      for (int k = 2; k < attempt; ++k) delay_us *= 2;
      delay_us = std::min(
          delay_us, static_cast<uint64_t>(config_.retry_max_delay_us));
      if (delay_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      }
      if (ctx.stats) {
        ctx.stats->AddRetry(delay_us);
      } else {
        metrics_.AddRetry(delay_us);
      }
      tracer_.Instant("retry:" + ctx.label, "retry", ctx.parent_span,
                      {{"partition", part},
                       {"attempt", attempt},
                       {"backoff_us", static_cast<int>(delay_us)}});
    }
    Status st = CheckFault(recovery::FaultPoint::kPreRun, ctx, part, attempt);
    if (st.ok()) st = fn(part, attempt);
    if (st.ok()) return st;
    // Only injected failures (kCancelled) are transient; anything else is
    // a real error the attempt loop must not mask or replay.
    if (st.code() != StatusCode::kCancelled) return st;
    last = st;
  }
  return Status::RuntimeError("task '" + ctx.label + "[" +
                              std::to_string(part) + "]' failed after " +
                              std::to_string(max_attempts) +
                              " attempts: " + last.message());
}

Dataset Engine::Parallelize(ValueVec rows, int num_partitions) {
  if (num_partitions <= 0) num_partitions = config_.default_parallelism;
  Dataset ds = NewDataset(DatasetImpl::OpKind::kSource, "parallelize", {},
                          num_partitions);
  trace::ScopedSpan span(&tracer_, ds->label_, "stage");
  span.AddArg("stage", static_cast<int64_t>(ds->stage_.id));
  Stopwatch sw;
  for (size_t i = 0; i < rows.size(); ++i) {
    ds->parts_[i % num_partitions].push_back(std::move(rows[i]));
  }
  ds->available_.assign(num_partitions, true);
  for (int i = 0; i < num_partitions; ++i) {
    // Budget registration; an eviction spill-write failure here leaves
    // the data resident (over budget) rather than losing it -- sources
    // created from caller rows have no lineage to recompute from.
    Status st =
        store_->Publish(ds.get(), i, &ds->parts_[i],
                        SerializedSizeOf(ds->parts_[i]), ds->stage_,
                        ds->label_,
                        ds->session_ ? &ds->session_->memory() : nullptr);
    if (!st.ok()) SAC_LOG(Warn) << "parallelize: " << st.ToString();
  }
  SyncPeakResident();
  if (StageStats* stats = StatsFor(ds.get())) {
    stats->AddWallMicros(sw.ElapsedMicros());
  }
  return ds;
}

Result<Dataset> Engine::GeneratePartitions(
    int num_partitions, const std::function<Status(int, Partition*)>& gen,
    const std::string& label) {
  if (num_partitions <= 0) num_partitions = config_.default_parallelism;
  Dataset ds =
      NewDataset(DatasetImpl::OpKind::kSource, label, {}, num_partitions);
  // Sources regenerate themselves on recovery.
  ds->wide_fn_ = [gen](Engine* eng, DatasetImpl* self,
                       int out_part) -> Status {
    Partition tmp;
    SAC_RETURN_NOT_OK(gen(out_part, &tmp));
    return eng->PublishPartition(self, out_part, std::move(tmp));
  };
  trace::ScopedSpan span(&tracer_, ds->label_, "stage");
  span.AddArg("stage", static_cast<int64_t>(ds->stage_.id));
  Stopwatch sw;
  const TaskContext ctx = ContextFor(ds.get(), span.id());
  SAC_RETURN_NOT_OK(ParallelParts(
      ctx, num_partitions, [&](int i, int attempt) -> Status {
        // Generate into a scratch partition and publish only on success,
        // so a killed attempt leaves nothing for the retry to trip over.
        Partition tmp;
        SAC_RETURN_NOT_OK(gen(i, &tmp));
        SAC_RETURN_NOT_OK(
            CheckFault(recovery::FaultPoint::kMidMap, ctx, i, attempt));
        return PublishPartition(ds.get(), i, std::move(tmp));
      }));
  if (StageStats* stats = StatsFor(ds.get())) {
    stats->AddWallMicros(sw.ElapsedMicros());
  }
  return ds;
}

Result<Dataset> Engine::Map(const Dataset& in, MapFn fn,
                            const std::string& label) {
  return MapPartitions(
      in,
      [fn](const Partition& src, Partition* out) {
        out->reserve(src.size());
        for (const Value& row : src) out->push_back(fn(row));
        return Status::OK();
      },
      label);
}

Result<Dataset> Engine::FlatMap(const Dataset& in, FlatMapFn fn,
                                const std::string& label) {
  return MapPartitions(
      in,
      [fn](const Partition& src, Partition* out) {
        for (const Value& row : src) fn(row, out);
        return Status::OK();
      },
      label);
}

Result<Dataset> Engine::Filter(const Dataset& in, PredFn pred,
                               const std::string& label) {
  return MapPartitions(
      in,
      [pred](const Partition& src, Partition* out) {
        for (const Value& row : src) {
          if (pred(row)) out->push_back(row);
        }
        return Status::OK();
      },
      label);
}

Result<Dataset> Engine::MapPartitions(const Dataset& in, PartitionFn fn,
                                      const std::string& label) {
  SAC_RETURN_NOT_OK(Recover(in));
  Dataset ds = NewDataset(DatasetImpl::OpKind::kNarrow, label, {in},
                          in->num_partitions());
  ds->narrow_fn_ = fn;
  StageStats* stats = StatsFor(ds.get());
  trace::ScopedSpan span(&tracer_, ds->label_, "stage");
  span.AddArg("stage", static_cast<int64_t>(ds->stage_.id));
  Stopwatch sw;
  const TaskContext ctx = ContextFor(ds.get(), span.id());
  SAC_RETURN_NOT_OK(ParallelParts(
      ctx, ds->num_partitions(), [&](int i, int attempt) -> Status {
        // Map into a scratch partition; publish (and meter records_in)
        // only once the attempt survived its mid-map fault check, so a
        // retried task neither sees partial output nor double-counts.
        // The pin keeps the input resident for the whole attempt.
        SAC_ASSIGN_OR_RETURN(PartitionPin pin, PinPartition(in.get(), i));
        Partition tmp;
        SAC_RETURN_NOT_OK(fn(pin.rows(), &tmp));
        SAC_RETURN_NOT_OK(
            CheckFault(recovery::FaultPoint::kMidMap, ctx, i, attempt));
        AddRecordsTo(stats, pin.rows().size());
        return PublishPartition(ds.get(), i, std::move(tmp));
      }));
  if (stats) {
    stats->AddWallMicros(sw.ElapsedMicros());
    span.AddArg("records_in",
                static_cast<int64_t>(stats->counters().records_processed()));
  }
  return ds;
}

Result<Dataset> Engine::Union(const Dataset& a, const Dataset& b) {
  SAC_RETURN_NOT_OK(Recover(a));
  SAC_RETURN_NOT_OK(Recover(b));
  const int n = a->num_partitions() + b->num_partitions();
  Dataset ds = NewDataset(DatasetImpl::OpKind::kUnion, "union", {a, b}, n);
  trace::ScopedSpan span(&tracer_, ds->label_, "stage");
  span.AddArg("stage", static_cast<int64_t>(ds->stage_.id));
  const int na = a->num_partitions();
  for (int i = 0; i < n; ++i) {
    DatasetImpl* parent = i < na ? a.get() : b.get();
    const int src = i < na ? i : i - na;
    SAC_ASSIGN_OR_RETURN(PartitionPin pin, PinPartition(parent, src));
    SAC_RETURN_NOT_OK(PublishPartition(ds.get(), i, Partition(pin.rows())));
  }
  ds->wide_fn_ = [na](Engine* eng, DatasetImpl* self, int out) -> Status {
    DatasetImpl* parent =
        out < na ? self->parents_[0].get() : self->parents_[1].get();
    const int src = out < na ? out : out - na;
    SAC_ASSIGN_OR_RETURN(PartitionPin pin, eng->PinPartition(parent, src));
    return eng->PublishPartition(self, out, Partition(pin.rows()));
  };
  return ds;
}

Result<Engine::ShuffleBuckets> Engine::BucketRows(const TaskContext& ctx,
                                                  Partition rows,
                                                  int src_part,
                                                  int num_dest, int attempt) {
  StageStats* stats = ctx.stats;
  ShuffleBuckets buckets;
  buckets.remote_by_dest.resize(num_dest);
  buckets.local_by_dest.resize(num_dest);
  const int src_exec = ExecutorOf(src_part);
  const bool fast = shuffle_fast_path_;

  // A (src, dest) pair is entirely local or entirely remote, so each
  // bucket checks out exactly one pooled container and the reduce-side
  // concatenation order is identical on both paths.
  std::vector<uint8_t> local_dest(num_dest, 0);
  std::vector<ByteWriter> writers;
  writers.reserve(num_dest);
  std::vector<uint64_t> local_bytes(num_dest, 0);
  for (int d = 0; d < num_dest; ++d) {
    local_dest[d] = fast && ExecutorOf(d) == src_exec;
    if (local_dest[d]) {
      buckets.local_by_dest[d] = AcquirePooled(&row_pool_);
      writers.emplace_back();  // placeholder, never written
    } else {
      buckets.remote_by_dest[d] = AcquirePooled(&byte_pool_);
      writers.emplace_back(&buckets.remote_by_dest[d].get());
    }
  }

  // The shuffle-serialize fault point fires mid-row-loop -- after some
  // records are already bucketed/serialized but before anything is
  // metered or published, so a killed attempt drops its pooled buffers
  // (RAII) and the retry re-buckets from scratch. Empty partitions check
  // once up front so plans can target them too.
  const size_t fault_idx = rows.size() / 2;
  if (rows.empty()) {
    SAC_RETURN_NOT_OK(CheckFault(recovery::FaultPoint::kShuffleSerialize,
                                 ctx, src_part, attempt));
  }
  size_t row_idx = 0;
  for (Value& row : rows) {
    if (row_idx++ == fault_idx) {
      SAC_RETURN_NOT_OK(CheckFault(recovery::FaultPoint::kShuffleSerialize,
                                   ctx, src_part, attempt));
    }
    SAC_RETURN_NOT_OK(ExpectPair(row));
    const int dest =
        static_cast<int>(row.At(0).Hash() % static_cast<uint64_t>(num_dest));
    if (local_dest[dest]) {
      // Zero-copy route: the Value moves as-is; meter what it would have
      // cost on the wire (SerializedSize is exact, see value.h).
      local_bytes[dest] += row.SerializedSize();
      buckets.local_by_dest[dest]->push_back(std::move(row));
    } else {
      row.Serialize(&writers[dest]);
    }
    ++buckets.records;
  }

  auto add_shuffle = [&](uint64_t bytes, uint64_t records, bool cross) {
    if (stats) {
      stats->AddShuffle(bytes, records, cross);
    } else {
      metrics_.AddShuffle(bytes, records, cross);
    }
  };
  for (int d = 0; d < num_dest; ++d) {
    if (local_dest[d]) {
      if (stats) {
        stats->AddLocalShuffle(local_bytes[d]);
      } else {
        metrics_.AddLocalShuffle(local_bytes[d]);
      }
    } else {
      add_shuffle(buckets.remote_by_dest[d]->size(), 0,
                  ExecutorOf(src_part) != ExecutorOf(d));
    }
  }
  add_shuffle(0, buckets.records, false);
  return buckets;
}

Result<Dataset> Engine::ShuffleOp(DatasetImpl::OpKind kind,
                                  const std::string& label,
                                  std::vector<Dataset> parents,
                                  int num_partitions, MapSideFn map_side,
                                  ReduceSideFn reduce_side) {
  for (const Dataset& p : parents) SAC_RETURN_NOT_OK(Recover(p));
  Dataset ds = NewDataset(kind, label, std::move(parents), num_partitions);
  ds->wide_fn_ = [map_side, reduce_side](Engine* eng, DatasetImpl* self,
                                         int out) {
    return eng->ExecuteShuffle(self, map_side, reduce_side, out);
  };
  SAC_RETURN_NOT_OK(ExecuteShuffle(ds.get(), map_side, reduce_side, -1));
  return ds;
}

Status Engine::ExecuteShuffle(DatasetImpl* ds, const MapSideFn& map_side,
                              const ReduceSideFn& reduce_side,
                              int only_dest) {
  const int num_dest = ds->num_partitions();
  const int num_parents = static_cast<int>(ds->parents_.size());
  StageStats* stats = StatsFor(ds);
  trace::ScopedSpan stage_span(
      &tracer_, only_dest < 0 ? ds->label_ : ds->label_ + ":recover",
      "stage");
  stage_span.AddArg("stage", static_cast<int64_t>(ds->stage_.id));
  Stopwatch stage_sw;

  InFlightScope running(this);

  // Distributed mode (docs/DISTRIBUTED.md): a fresh engine-wide shuffle
  // id keys this stage's buckets on the workers.
  const uint64_t sid = coord_ ? coord_->NextShuffleId() : 0;

  // Map side: bucket every parent partition (parallel across partitions).
  // buckets[parent][src] holds per-destination pooled buffers: serialized
  // bytes for remote destinations, moved Values for executor-local ones.
  // In distributed mode each remote bucket is pushed to the worker
  // hosting its destination executor and released here, so cross-executor
  // bytes genuinely cross the transport.
  std::vector<std::vector<ShuffleBuckets>> buckets(num_parents);
  const TaskContext write_ctx = ContextFor(ds, stage_span.id(),
                                           "shuffle-write");
  for (int p = 0; p < num_parents; ++p) {
    SAC_RETURN_NOT_OK(Recover(ds->parents_[p]));
    DatasetImpl* parent = ds->parents_[p].get();
    const int num_src = parent->num_partitions();
    buckets[p].resize(num_src);
    SAC_RETURN_NOT_OK(ParallelParts(
        write_ctx, num_src, [&](int s, int attempt) -> Status {
          // Each attempt re-runs the map-side combine from the pinned
          // parent partition, so a kill inside BucketRows replays
          // cleanly; records_in and the buckets publish only on success.
          SAC_ASSIGN_OR_RETURN(PartitionPin pin, PinPartition(parent, s));
          SAC_ASSIGN_OR_RETURN(Partition combined, map_side(pin.rows(), p));
          SAC_ASSIGN_OR_RETURN(ShuffleBuckets bs,
                               BucketRows(write_ctx, std::move(combined), s,
                                          num_dest, attempt));
          if (coord_) {
            SAC_RETURN_NOT_OK(PushShuffleBuckets(stats, sid, p, s, &bs));
          }
          AddRecordsTo(stats, pin.rows().size());
          buckets[p][s] = std::move(bs);
          return Status::OK();
        }));
  }

  // Lineage re-execution (distributed only): a fetch that comes back
  // DataLoss lost its bucket with a dead worker. Rebuild the map side of
  // that (parent, src) from the still-resident parent partition and
  // re-push its remote buckets to the re-placed owners. Deduped by
  // placement epoch: concurrent reduce tasks missing buckets of the same
  // source re-execute it once per placement, while a later death (epoch
  // bump) allows re-execution again.
  std::mutex reexec_mu;
  std::map<std::pair<int, int>, uint64_t> reexec_epoch;
  auto reexecute_map_side = [&](int p, int s) -> Status {
    std::lock_guard<std::mutex> lock(reexec_mu);
    const uint64_t epoch = coord_->placement_epoch();
    const auto key = std::make_pair(p, s);
    auto it = reexec_epoch.find(key);
    if (it != reexec_epoch.end() && it->second >= epoch) {
      return Status::OK();  // already re-pushed under this placement
    }
    DatasetImpl* parent = ds->parents_[p].get();
    SAC_ASSIGN_OR_RETURN(PartitionPin pin, PinPartition(parent, s));
    SAC_ASSIGN_OR_RETURN(Partition combined, map_side(pin.rows(), p));
    SAC_ASSIGN_OR_RETURN(ShuffleBuckets fresh,
                         BucketRows(write_ctx, std::move(combined), s,
                                    num_dest, /*attempt=*/1));
    // Only the remote buckets were lost; the local buckets' originals
    // never left driver memory, so the fresh copies are discarded with
    // `fresh` (the map side is deterministic -- identical bytes either
    // way).
    SAC_RETURN_NOT_OK(PushShuffleBuckets(stats, sid, p, s, &fresh));
    if (stats) {
      stats->AddReexecutedPartition();
    } else {
      metrics_.AddReexecutedPartition();
    }
    tracer_.Instant("reexec:" + ds->label_, "dist", stage_span.id(),
                    {{"parent", p}, {"src", s}});
    reexec_epoch[key] = epoch;
    return Status::OK();
  };
  auto fetch_bucket = [&](int p, int s, int d)
      -> Result<std::vector<uint8_t>> {
    dist::BucketId id;
    id.shuffle_id = sid;
    id.parent = p;
    id.src = s;
    id.dest = d;
    const int max_rounds =
        std::max(config_.max_task_attempts, coord_->num_workers() + 1);
    Status last = Status::OK();
    for (int round = 0; round < max_rounds; ++round) {
      Result<std::vector<uint8_t>> got =
          coord_->FetchBucket(stats, id, ExecutorOf(d));
      if (got.ok()) return got;
      if (got.status().code() != StatusCode::kDataLoss) return got;
      last = got.status();
      SAC_RETURN_NOT_OK(reexecute_map_side(p, s));
    }
    return last.WithContext("still missing after lineage re-execution");
  };

  // Reduce side: drain this destination's buckets in deterministic
  // (parent, source-partition) order, then fold. Local buckets hand over
  // their Values by move; in-memory remote buckets are deserialized; a
  // released remote bucket (distributed mode pushed it) is fetched from
  // its worker first. A (src, dest) bucket is entirely one route, and
  // fetched bytes are the exact bytes the map side serialized, so the
  // concatenation order -- and the result -- is identical on every path.
  const TaskContext reduce_ctx = ContextFor(ds, stage_span.id(), "reduce");
  auto reduce_one = [&](int d, int attempt) -> Status {
    // The post-shuffle fault point fires at the very top of the reduce
    // task: the shuffle output exists but nothing has been drained yet,
    // so a retry re-reads intact buckets. (All retryable failures of this
    // task -- pre-run and post-shuffle -- precede the destructive drain
    // below; real errors mid-drain are not retried.)
    SAC_RETURN_NOT_OK(CheckFault(recovery::FaultPoint::kPostShuffle,
                                 reduce_ctx, d, attempt));
    auto drain_bytes = [](const std::vector<uint8_t>& bytes,
                          ValueVec* rows) -> Status {
      ByteReader reader(bytes);
      while (!reader.AtEnd()) {
        SAC_ASSIGN_OR_RETURN(Value v, Value::Deserialize(&reader));
        rows->push_back(std::move(v));
      }
      return Status::OK();
    };
    ValueVec rows_a, rows_b;
    for (int p = 0; p < num_parents; ++p) {
      ValueVec& rows = (p == 0) ? rows_a : rows_b;
      const int num_src = static_cast<int>(buckets[p].size());
      for (int s = 0; s < num_src; ++s) {
        ShuffleBuckets& bs = buckets[p][s];
        if (bs.local_by_dest[d]) {
          ValueVec& local = *bs.local_by_dest[d];
          for (Value& v : local) rows.push_back(std::move(v));
        } else if (bs.remote_by_dest[d]) {
          SAC_RETURN_NOT_OK(drain_bytes(*bs.remote_by_dest[d], &rows));
        } else {
          // The bucket lives on a worker (or died with one and gets
          // rebuilt from lineage mid-fetch).
          SAC_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                               fetch_bucket(p, s, d));
          SAC_RETURN_NOT_OK(drain_bytes(data, &rows));
        }
      }
    }
    Partition out;
    SAC_RETURN_NOT_OK(reduce_side(std::move(rows_a), std::move(rows_b), &out));
    return PublishPartition(ds, d, std::move(out));
  };

  Status st;
  if (only_dest >= 0) {
    // Lineage recovery of a single destination: still under the retry
    // policy (ParallelParts is bypassed, so wrap explicitly).
    st = RunTaskWithRetry(reduce_ctx, only_dest, reduce_one);
  } else {
    st = ParallelParts(reduce_ctx, num_dest, reduce_one);
  }
  // The stage is folded; free its buckets on the workers (best-effort --
  // a dead worker's buckets died with it).
  if (coord_) coord_->DropShuffle(sid);
  if (stats) {
    stats->AddWallMicros(stage_sw.ElapsedMicros());
    const MetricsSnapshot c = stats->counters().Snapshot();
    stage_span.AddArg("shuffle_bytes",
                      static_cast<int64_t>(c.shuffle_bytes));
    stage_span.AddArg("shuffle_records",
                      static_cast<int64_t>(c.shuffle_records));
    stage_span.AddArg("cross_executor_bytes",
                      static_cast<int64_t>(c.cross_executor_bytes));
    stage_span.AddArg("local_shuffle_bytes",
                      static_cast<int64_t>(c.local_shuffle_bytes));
    if (coord_) {
      stage_span.AddArg("dist_bytes_sent",
                        static_cast<int64_t>(c.dist_bytes_sent));
      stage_span.AddArg("dist_bytes_received",
                        static_cast<int64_t>(c.dist_bytes_received));
    }
    SAC_LOG(Debug) << "stage #" << ds->stage_.id << " " << ds->label()
                   << (only_dest >= 0 ? " (recover)" : "") << ": "
                   << c.shuffle_records << " records, " << c.shuffle_bytes
                   << " shuffle bytes in " << stage_sw.ElapsedMicros() / 1000.0
                   << " ms";
  }
  return st;
}

Result<Dataset> Engine::ReduceByKey(const Dataset& in, CombineFn combine,
                                    int num_partitions) {
  if (num_partitions <= 0) num_partitions = in->num_partitions();
  auto fold = [combine](ValueVec rows, Partition* out) -> Status {
    KeySlots slots;
    std::vector<Value> acc;
    for (Value& row : rows) {
      SAC_RETURN_NOT_OK(ExpectPair(row));
      const size_t slot = slots.SlotFor(row.At(0));
      if (slot == acc.size()) {
        acc.push_back(row.At(1));
      } else {
        acc[slot] = combine(acc[slot], row.At(1));
      }
    }
    out->reserve(acc.size());
    for (size_t s = 0; s < acc.size(); ++s) {
      out->push_back(VPair(slots.keys()[s], std::move(acc[s])));
    }
    return Status::OK();
  };
  MapSideFn map_side = [fold](const Partition& src, int) -> Result<Partition> {
    Partition combined;
    SAC_RETURN_NOT_OK(fold(src, &combined));  // map-side combine
    return combined;
  };
  ReduceSideFn reduce_side = [fold](ValueVec rows_a, ValueVec,
                                    Partition* out) {
    return fold(std::move(rows_a), out);
  };
  return ShuffleOp(DatasetImpl::OpKind::kShuffle, "reduceByKey", {in},
                   num_partitions, std::move(map_side),
                   std::move(reduce_side));
}

Result<Dataset> Engine::GroupByKey(const Dataset& in, int num_partitions) {
  if (num_partitions <= 0) num_partitions = in->num_partitions();
  MapSideFn map_side = [](const Partition& src, int) -> Result<Partition> {
    for (const Value& row : src) SAC_RETURN_NOT_OK(ExpectPair(row));
    return src;  // every record is shuffled (no combining)
  };
  ReduceSideFn reduce_side = [](ValueVec rows_a, ValueVec, Partition* out) {
    KeySlots slots;
    std::vector<ValueVec> groups;
    for (Value& row : rows_a) {
      const size_t slot = slots.SlotFor(row.At(0));
      if (slot == groups.size()) groups.emplace_back();
      groups[slot].push_back(row.At(1));
    }
    out->reserve(groups.size());
    for (size_t s = 0; s < groups.size(); ++s) {
      out->push_back(
          VPair(slots.keys()[s], Value::List(std::move(groups[s]))));
    }
    return Status::OK();
  };
  return ShuffleOp(DatasetImpl::OpKind::kShuffle, "groupByKey", {in},
                   num_partitions, std::move(map_side),
                   std::move(reduce_side));
}

Result<Dataset> Engine::PartitionBy(const Dataset& in, int num_partitions) {
  if (num_partitions <= 0) num_partitions = in->num_partitions();
  MapSideFn map_side = [](const Partition& src, int) -> Result<Partition> {
    for (const Value& row : src) SAC_RETURN_NOT_OK(ExpectPair(row));
    return src;
  };
  ReduceSideFn reduce_side = [](ValueVec rows_a, ValueVec, Partition* out) {
    *out = std::move(rows_a);
    return Status::OK();
  };
  return ShuffleOp(DatasetImpl::OpKind::kShuffle, "partitionBy", {in},
                   num_partitions, std::move(map_side),
                   std::move(reduce_side));
}

Result<Dataset> Engine::Join(const Dataset& a, const Dataset& b,
                             int num_partitions) {
  if (num_partitions <= 0) {
    num_partitions = std::max(a->num_partitions(), b->num_partitions());
  }
  MapSideFn map_side = [](const Partition& src, int) -> Result<Partition> {
    for (const Value& row : src) SAC_RETURN_NOT_OK(ExpectPair(row));
    return src;
  };
  ReduceSideFn reduce_side = [](ValueVec rows_a, ValueVec rows_b,
                                Partition* out) {
    // Build hash of B values per key (insertion order), then stream A.
    std::unordered_map<Value, ValueVec, ValueHash, ValueEq> b_index;
    for (Value& row : rows_b) b_index[row.At(0)].push_back(row.At(1));
    for (Value& row : rows_a) {
      auto it = b_index.find(row.At(0));
      if (it == b_index.end()) continue;
      for (const Value& w : it->second) {
        out->push_back(VPair(row.At(0), VTuple({row.At(1), w})));
      }
    }
    return Status::OK();
  };
  return ShuffleOp(DatasetImpl::OpKind::kCoShuffle, "join", {a, b},
                   num_partitions, std::move(map_side),
                   std::move(reduce_side));
}

Result<Dataset> Engine::CoGroup(const Dataset& a, const Dataset& b,
                                int num_partitions) {
  if (num_partitions <= 0) {
    num_partitions = std::max(a->num_partitions(), b->num_partitions());
  }
  MapSideFn map_side = [](const Partition& src, int) -> Result<Partition> {
    for (const Value& row : src) SAC_RETURN_NOT_OK(ExpectPair(row));
    return src;
  };
  ReduceSideFn reduce_side = [](ValueVec rows_a, ValueVec rows_b,
                                Partition* out) {
    KeySlots slots;
    std::vector<ValueVec> ga, gb;
    auto add = [&](ValueVec& rows, bool left) {
      for (Value& row : rows) {
        const size_t slot = slots.SlotFor(row.At(0));
        if (slot == ga.size()) {
          ga.emplace_back();
          gb.emplace_back();
        }
        (left ? ga : gb)[slot].push_back(row.At(1));
      }
    };
    add(rows_a, true);
    add(rows_b, false);
    out->reserve(slots.size());
    for (size_t s = 0; s < slots.size(); ++s) {
      out->push_back(VPair(slots.keys()[s],
                           VTuple({Value::List(std::move(ga[s])),
                                   Value::List(std::move(gb[s]))})));
    }
    return Status::OK();
  };
  return ShuffleOp(DatasetImpl::OpKind::kCoShuffle, "cogroup", {a, b},
                   num_partitions, std::move(map_side),
                   std::move(reduce_side));
}

Result<ValueVec> Engine::Collect(const Dataset& in) {
  trace::ScopedSpan span(&tracer_, "collect:" + in->label_, "action");
  SAC_RETURN_NOT_OK(Recover(in));
  ValueVec out;
  // One partition pinned at a time: under a tight budget, collecting a
  // dataset larger than RAM streams partitions through memory (each
  // reload may evict an already-copied one) instead of requiring the
  // whole dataset resident at once.
  for (int i = 0; i < in->num_partitions(); ++i) {
    SAC_ASSIGN_OR_RETURN(PartitionPin pin, PinPartition(in.get(), i));
    out.insert(out.end(), pin.rows().begin(), pin.rows().end());
  }
  return out;
}

Result<int64_t> Engine::Count(const Dataset& in) {
  SAC_RETURN_NOT_OK(Recover(in));
  int64_t total = 0;
  for (int i = 0; i < in->num_partitions(); ++i) {
    SAC_ASSIGN_OR_RETURN(PartitionPin pin, PinPartition(in.get(), i));
    total += static_cast<int64_t>(pin.rows().size());
  }
  return total;
}

Status Engine::Recover(const Dataset& ds) {
  for (int i = 0; i < ds->num_partitions(); ++i) {
    if (!ds->available_[i]) {
      SAC_RETURN_NOT_OK(RecomputePartition(ds.get(), i));
    }
  }
  return Status::OK();
}

Status Engine::Checkpoint(const Dataset& ds, const std::string& dir) {
  if (ds == nullptr) {
    return Status::InvalidArgument("Checkpoint on a null dataset");
  }
  if (ds->checkpointed_) return Status::OK();  // idempotent
  SAC_RETURN_NOT_OK(Recover(ds));

  // Checkpoints without an explicit dir land in the engine's own spill
  // directory, so engine teardown reclaims them together with eviction
  // spills (one cleanup path for all engine-written files).
  const std::string base = !dir.empty() ? dir : spill_dir_;
  SAC_RETURN_NOT_OK(storage::EnsureSpillDir(base));

  // Unique per process + checkpoint so concurrent engines (tests) never
  // collide on spill paths.
  static std::atomic<uint64_t> next_ckpt{0};
  const uint64_t ckpt_id = next_ckpt.fetch_add(1, std::memory_order_relaxed);
  const int n = ds->num_partitions();
  std::vector<std::string> paths(n);
  for (int i = 0; i < n; ++i) {
    paths[i] = base + "/sac-ckpt-" + std::to_string(::getpid()) + "-" +
               std::to_string(ckpt_id) + "-p" + std::to_string(i) + ".spill";
  }

  StageStats* stats = StatsFor(ds.get());
  trace::ScopedSpan span(&tracer_, ds->label_ + ":checkpoint", "stage");
  span.AddArg("stage", static_cast<int64_t>(ds->stage_.id));
  Stopwatch sw;
  const TaskContext ctx = ContextFor(ds.get(), span.id(), "checkpoint");
  std::atomic<uint64_t> total_bytes{0};
  Status st =
      ParallelParts(ctx, n, [&](int i, int) -> Status {
        SAC_ASSIGN_OR_RETURN(PartitionPin pin, PinPartition(ds.get(), i));
        SAC_ASSIGN_OR_RETURN(uint64_t bytes,
                             storage::WriteSpill(paths[i], pin.rows()));
        total_bytes.fetch_add(bytes, std::memory_order_relaxed);
        if (stats) {
          stats->AddCheckpointWrite(bytes);
        } else {
          metrics_.AddCheckpointWrite(bytes);
        }
        return Status::OK();
      });
  if (!st.ok()) {
    for (const std::string& p : paths) storage::RemoveSpill(p);
    return st.WithContext("checkpoint of '" + ds->label_ + "'");
  }

  // Truncate lineage: the node becomes a source whose recompute closure
  // restores from disk; parents are released (their reference counts may
  // free whole upstream chains).
  ds->parents_.clear();
  ds->kind_ = DatasetImpl::OpKind::kSource;
  ds->narrow_fn_ = nullptr;
  ds->checkpointed_ = true;
  ds->spill_paths_ = paths;
  // A checkpointed node is a lineage cut for everything downstream:
  // give its blocks admission priority so the budget evicts ordinary
  // intermediates first (restoring it costs a disk read regardless, but
  // losing it costs every downstream recompute).
  store_->SetPriority(ds.get(), true);
  ds->wide_fn_ = [paths](Engine* eng, DatasetImpl* self,
                         int out) -> Status {
    uint64_t bytes = 0;
    SAC_ASSIGN_OR_RETURN(ValueVec rows,
                         storage::ReadSpill(paths[out], &bytes));
    if (StageStats* s = eng->StatsFor(self)) {
      s->AddCheckpointRestore(bytes);
    } else {
      eng->metrics_.AddCheckpointRestore(bytes);
    }
    return eng->PublishPartition(self, out, std::move(rows));
  };
  if (stats) stats->AddWallMicros(sw.ElapsedMicros());
  span.AddArg("checkpoint_bytes",
              static_cast<int64_t>(total_bytes.load(std::memory_order_relaxed)));
  SAC_LOG(Debug) << "checkpointed '" << ds->label_ << "' (" << n
                 << " partitions, "
                 << total_bytes.load(std::memory_order_relaxed)
                 << " bytes) to " << base;
  return Status::OK();
}

Status Engine::VerifyLineage(const Dataset& ds) {
  if (ds == nullptr) {
    return Status::RuntimeError("lineage verification on a null dataset");
  }
  const uint64_t current_gen = stages_.generation();
  std::unordered_set<const DatasetImpl*> seen;
  std::vector<DatasetImpl*> stack{ds.get()};
  while (!stack.empty()) {
    DatasetImpl* d = stack.back();
    stack.pop_back();
    if (!seen.insert(d).second) continue;
    const std::string where = "dataset '" + d->label_ + "'";

    size_t want_parents = 0;
    switch (d->kind_) {
      case DatasetImpl::OpKind::kSource: want_parents = 0; break;
      case DatasetImpl::OpKind::kNarrow:
      case DatasetImpl::OpKind::kShuffle: want_parents = 1; break;
      case DatasetImpl::OpKind::kCoShuffle:
      case DatasetImpl::OpKind::kUnion: want_parents = 2; break;
    }
    if (d->parents_.size() != want_parents) {
      return Status::RuntimeError(
          where + ": expected " + std::to_string(want_parents) +
          " lineage parent(s), has " + std::to_string(d->parents_.size()));
    }
    for (const auto& p : d->parents_) {
      if (p == nullptr) {
        return Status::RuntimeError(where + ": null lineage parent");
      }
      stack.push_back(p.get());
    }
    if (d->parts_.empty()) {
      return Status::RuntimeError(where + ": no partitions");
    }
    if (d->available_.size() != d->parts_.size()) {
      return Status::RuntimeError(
          where + ": availability bitmap tracks " +
          std::to_string(d->available_.size()) + " partitions, data has " +
          std::to_string(d->parts_.size()));
    }
    if (d->kind_ == DatasetImpl::OpKind::kNarrow &&
        d->parts_.size() != d->parents_[0]->parts_.size()) {
      return Status::RuntimeError(
          where + ": narrow op with " + std::to_string(d->parts_.size()) +
          " partitions over a parent with " +
          std::to_string(d->parents_[0]->parts_.size()));
    }
    if (d->kind_ == DatasetImpl::OpKind::kUnion &&
        d->parts_.size() != d->parents_[0]->parts_.size() +
                                d->parents_[1]->parts_.size()) {
      return Status::RuntimeError(where +
                                  ": union partition count is not the sum "
                                  "of its parents'");
    }
    // Stage-registry consistency: refs minted in the current generation
    // must resolve; refs from before a Reset() are expected to be stale.
    if (d->stage_.gen == current_gen && stages_.Get(d->stage_) == nullptr) {
      return Status::RuntimeError(
          where + ": current-generation stage ref (stage " +
          std::to_string(d->stage_.id) + ") does not resolve");
    }
    // Checkpoint truncation invariants: a checkpointed node must be a
    // parentless source that can restore every partition from its spill
    // files (Engine::Checkpoint upholds these; a violation means the
    // truncation was torn).
    if (d->checkpointed_) {
      if (d->kind_ != DatasetImpl::OpKind::kSource || !d->parents_.empty()) {
        return Status::RuntimeError(
            where + ": checkpointed dataset still carries lineage");
      }
      if (!d->wide_fn_) {
        return Status::RuntimeError(
            where + ": checkpointed dataset has no restore closure");
      }
      if (d->spill_paths_.size() != d->parts_.size()) {
        return Status::RuntimeError(
            where + ": checkpointed dataset has " +
            std::to_string(d->spill_paths_.size()) + " spill file(s) for " +
            std::to_string(d->parts_.size()) + " partitions");
      }
    }
  }
  return Status::OK();
}

Status Engine::RecomputePartition(DatasetImpl* ds, int i) {
  if (StageStats* stats = StatsFor(ds)) {
    stats->AddRecompute();
  } else {
    metrics_.AddRecompute();
  }
  tracer_.Instant("recompute:" + ds->label_, "recompute", 0,
                  {{"partition", i}, {"stage", ds->stage_.id}});
  switch (ds->kind_) {
    case DatasetImpl::OpKind::kSource: {
      if (!ds->wide_fn_) {
        return Status::RuntimeError(
            "lost partition of non-regenerable source '" + ds->label_ + "'");
      }
      // Regeneration (and checkpoint restore) runs under the retry policy.
      const TaskContext ctx{StatsFor(ds), 0, ds->label_, "recompute"};
      return RunTaskWithRetry(
          ctx, i, [&](int part, int) { return ds->wide_fn_(this, ds, part); });
    }
    case DatasetImpl::OpKind::kNarrow: {
      DatasetImpl* parent = ds->parents_[0].get();
      const TaskContext ctx{StatsFor(ds), 0, ds->label_, "recompute"};
      return RunTaskWithRetry(
          ctx, i, [&](int part, int attempt) -> Status {
            // PinPartition recomputes the parent if it is unavailable
            // and reloads it if it was evicted.
            SAC_ASSIGN_OR_RETURN(PartitionPin pin,
                                 PinPartition(parent, part));
            Partition tmp;
            SAC_RETURN_NOT_OK(ds->narrow_fn_(pin.rows(), &tmp));
            SAC_RETURN_NOT_OK(CheckFault(recovery::FaultPoint::kMidMap, ctx,
                                         part, attempt));
            return PublishPartition(ds, part, std::move(tmp));
          });
    }
    case DatasetImpl::OpKind::kShuffle:
    case DatasetImpl::OpKind::kCoShuffle:
    case DatasetImpl::OpKind::kUnion:
      // Wide recomputes re-enter ExecuteShuffle (or the union closure over
      // its parents), whose own task paths already apply the retry policy
      // -- wrapping here again would square the attempt budget.
      return ds->wide_fn_(this, ds, i);
  }
  return Status::RuntimeError("unknown dataset kind");
}

}  // namespace sac::runtime
