#include "src/runtime/engine.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/common/serialize.h"

namespace sac::runtime {

namespace {

const char* KindName(DatasetImpl::OpKind kind) {
  switch (kind) {
    case DatasetImpl::OpKind::kSource:
      return "source";
    case DatasetImpl::OpKind::kNarrow:
      return "narrow";
    case DatasetImpl::OpKind::kShuffle:
      return "shuffle";
    case DatasetImpl::OpKind::kCoShuffle:
      return "coshuffle";
    case DatasetImpl::OpKind::kUnion:
      return "union";
  }
  return "?";
}

/// Insertion-ordered key index: maps keys to dense slots so reduce-side
/// folds produce rows in first-seen order (deterministic output).
class KeySlots {
 public:
  size_t SlotFor(const Value& key) {
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    const size_t slot = keys_.size();
    index_.emplace(key, slot);
    keys_.push_back(key);
    return slot;
  }
  const std::vector<Value>& keys() const { return keys_; }
  size_t size() const { return keys_.size(); }

 private:
  std::unordered_map<Value, size_t, ValueHash, ValueEq> index_;
  std::vector<Value> keys_;
};

Status ExpectPair(const Value& row) {
  if (!row.is_pair()) {
    return Status::RuntimeError(
        "wide operator expects (key, value) rows, got " + row.ToString());
  }
  return Status::OK();
}

/// SAC_SHUFFLE_FAST_PATH: unset/"on"/"1"/"true" => fast path (default);
/// "off"/"0"/"false" => force the serialize-everything path.
bool FastPathFromEnv() {
  const char* v = std::getenv("SAC_SHUFFLE_FAST_PATH");
  if (v == nullptr) return true;
  std::string s(v);
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return !(s == "off" || s == "0" || s == "false");
}

}  // namespace

Engine::Engine(ClusterConfig config)
    : config_(config), pool_(static_cast<size_t>(config.TotalCores())) {
  SAC_CHECK_GE(config_.num_executors, 1);
  SAC_CHECK_GE(config_.cores_per_executor, 1);
  SAC_CHECK_GE(config_.default_parallelism, 1);
  SetLogLevelFromEnv();
  shuffle_fast_path_ = FastPathFromEnv();
}

void Engine::ResetStats() {
  // Resetting while an operator runs would tear per-stage counters and
  // leave task spans pointing at dropped stages; fail loudly instead.
  SAC_CHECK_EQ(in_flight(), 0)
      << "Engine::ResetStats called while a query is executing";
  metrics_.Reset();
  stages_.Reset();
  tracer_.Reset();
}

Status Engine::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::RuntimeError("cannot open trace output file '" + path +
                                "'");
  }
  out << ChromeTraceJson();
  out.close();
  if (!out) {
    return Status::RuntimeError("failed writing trace to '" + path + "'");
  }
  return Status::OK();
}

std::string Engine::ExplainWithStats(const Dataset& ds) {
  std::ostringstream os;
  std::unordered_set<const DatasetImpl*> visited;
  const std::function<void(const DatasetImpl*, int)> walk =
      [&](const DatasetImpl* d, int depth) {
        os << std::string(static_cast<size_t>(depth) * 2, ' ') << "#"
           << d->stage_.id << " " << d->label_ << " [" << KindName(d->kind_)
           << "] parts=" << d->num_partitions();
        if (!visited.insert(d).second) {
          os << " (shown above)\n";
          return;
        }
        if (StageStats* s = stages_.Get(d->stage_)) {
          const StageStatsSnapshot snap = s->Snapshot();
          os << " tasks=" << snap.counters.tasks_run
             << " records_in=" << snap.counters.records_processed
             << " shuffle_bytes=" << snap.counters.shuffle_bytes
             << " cross_bytes=" << snap.counters.cross_executor_bytes
             << " local_bytes=" << snap.counters.local_shuffle_bytes
             << " recomputed=" << snap.counters.tasks_recomputed;
          if (snap.task_us.count > 0) {
            os << " task_us{" << snap.task_us.ToString() << "}";
          }
        }
        os << "\n";
        for (const auto& p : d->parents_) walk(p.get(), depth + 1);
      };
  walk(ds.get(), 0);
  return os.str();
}

Dataset Engine::NewDataset(DatasetImpl::OpKind kind, std::string label,
                           std::vector<Dataset> parents, int num_partitions) {
  auto ds = std::make_shared<DatasetImpl>();
  ds->kind_ = kind;
  ds->label_ = std::move(label);
  ds->parents_ = std::move(parents);
  ds->parts_.resize(num_partitions);
  ds->available_.assign(num_partitions, false);
  ds->stage_ = stages_.NewStage(ds->label_, KindName(kind));
  return ds;
}

Status Engine::ParallelParts(const TaskContext& ctx, int n,
                             const std::function<Status(int)>& fn) {
  InFlightScope running(this);
  std::mutex mu;
  Status first_error;
  pool_.ParallelFor(static_cast<size_t>(n), [&](size_t i) {
    trace::ScopedSpan span(&tracer_,
                           ctx.label + ":" + ctx.phase + "[" +
                               std::to_string(i) + "]",
                           "task", ctx.parent_span);
    Stopwatch sw;
    if (ctx.stats) {
      ctx.stats->AddTask();
    } else {
      metrics_.AddTask();
    }
    Status st = fn(static_cast<int>(i));
    if (ctx.stats) ctx.stats->RecordTaskMicros(sw.ElapsedMicros());
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      if (first_error.ok()) first_error = st;
    }
  });
  return first_error;
}

Dataset Engine::Parallelize(ValueVec rows, int num_partitions) {
  if (num_partitions <= 0) num_partitions = config_.default_parallelism;
  Dataset ds = NewDataset(DatasetImpl::OpKind::kSource, "parallelize", {},
                          num_partitions);
  trace::ScopedSpan span(&tracer_, ds->label_, "stage");
  Stopwatch sw;
  for (size_t i = 0; i < rows.size(); ++i) {
    ds->parts_[i % num_partitions].push_back(std::move(rows[i]));
  }
  ds->available_.assign(num_partitions, true);
  if (StageStats* stats = StatsFor(ds.get())) {
    stats->AddWallMicros(sw.ElapsedMicros());
  }
  return ds;
}

Result<Dataset> Engine::GeneratePartitions(
    int num_partitions, const std::function<Status(int, Partition*)>& gen,
    const std::string& label) {
  if (num_partitions <= 0) num_partitions = config_.default_parallelism;
  Dataset ds =
      NewDataset(DatasetImpl::OpKind::kSource, label, {}, num_partitions);
  // Sources regenerate themselves on recovery.
  ds->wide_fn_ = [gen](Engine*, DatasetImpl* self, int out_part) -> Status {
    self->parts_[out_part].clear();
    SAC_RETURN_NOT_OK(gen(out_part, &self->parts_[out_part]));
    self->available_[out_part] = true;
    return Status::OK();
  };
  trace::ScopedSpan span(&tracer_, ds->label_, "stage");
  Stopwatch sw;
  SAC_RETURN_NOT_OK(
      ParallelParts(ContextFor(ds.get(), span.id()), num_partitions,
                    [&](int i) {
                      SAC_RETURN_NOT_OK(gen(i, &ds->parts_[i]));
                      ds->available_[i] = true;
                      return Status::OK();
                    }));
  if (StageStats* stats = StatsFor(ds.get())) {
    stats->AddWallMicros(sw.ElapsedMicros());
  }
  return ds;
}

Result<Dataset> Engine::Map(const Dataset& in, MapFn fn,
                            const std::string& label) {
  return MapPartitions(
      in,
      [fn](const Partition& src, Partition* out) {
        out->reserve(src.size());
        for (const Value& row : src) out->push_back(fn(row));
        return Status::OK();
      },
      label);
}

Result<Dataset> Engine::FlatMap(const Dataset& in, FlatMapFn fn,
                                const std::string& label) {
  return MapPartitions(
      in,
      [fn](const Partition& src, Partition* out) {
        for (const Value& row : src) fn(row, out);
        return Status::OK();
      },
      label);
}

Result<Dataset> Engine::Filter(const Dataset& in, PredFn pred,
                               const std::string& label) {
  return MapPartitions(
      in,
      [pred](const Partition& src, Partition* out) {
        for (const Value& row : src) {
          if (pred(row)) out->push_back(row);
        }
        return Status::OK();
      },
      label);
}

Result<Dataset> Engine::MapPartitions(const Dataset& in, PartitionFn fn,
                                      const std::string& label) {
  SAC_RETURN_NOT_OK(Recover(in));
  Dataset ds = NewDataset(DatasetImpl::OpKind::kNarrow, label, {in},
                          in->num_partitions());
  ds->narrow_fn_ = fn;
  StageStats* stats = StatsFor(ds.get());
  trace::ScopedSpan span(&tracer_, ds->label_, "stage");
  Stopwatch sw;
  SAC_RETURN_NOT_OK(ParallelParts(
      ContextFor(ds.get(), span.id()), ds->num_partitions(), [&](int i) {
        AddRecordsTo(stats, in->parts_[i].size());
        SAC_RETURN_NOT_OK(fn(in->parts_[i], &ds->parts_[i]));
        ds->available_[i] = true;
        return Status::OK();
      }));
  if (stats) {
    stats->AddWallMicros(sw.ElapsedMicros());
    span.AddArg("records_in",
                static_cast<int64_t>(stats->counters().records_processed()));
  }
  return ds;
}

Result<Dataset> Engine::Union(const Dataset& a, const Dataset& b) {
  SAC_RETURN_NOT_OK(Recover(a));
  SAC_RETURN_NOT_OK(Recover(b));
  const int n = a->num_partitions() + b->num_partitions();
  Dataset ds = NewDataset(DatasetImpl::OpKind::kUnion, "union", {a, b}, n);
  trace::ScopedSpan span(&tracer_, ds->label_, "stage");
  for (int i = 0; i < a->num_partitions(); ++i) ds->parts_[i] = a->parts_[i];
  for (int i = 0; i < b->num_partitions(); ++i) {
    ds->parts_[a->num_partitions() + i] = b->parts_[i];
  }
  ds->available_.assign(n, true);
  const int na = a->num_partitions();
  ds->wide_fn_ = [na](Engine* eng, DatasetImpl* self, int out) -> Status {
    DatasetImpl* parent =
        out < na ? self->parents_[0].get() : self->parents_[1].get();
    const int src = out < na ? out : out - na;
    if (!parent->IsAvailable(src)) {
      SAC_RETURN_NOT_OK(eng->RecomputePartition(parent, src));
    }
    self->parts_[out] = parent->parts_[src];
    self->available_[out] = true;
    return Status::OK();
  };
  return ds;
}

Result<Engine::ShuffleBuckets> Engine::BucketRows(StageStats* stats,
                                                  Partition rows,
                                                  int src_part,
                                                  int num_dest) {
  ShuffleBuckets buckets;
  buckets.remote_by_dest.resize(num_dest);
  buckets.local_by_dest.resize(num_dest);
  const int src_exec = ExecutorOf(src_part);
  const bool fast = shuffle_fast_path_;

  // A (src, dest) pair is entirely local or entirely remote, so each
  // bucket checks out exactly one pooled container and the reduce-side
  // concatenation order is identical on both paths.
  std::vector<uint8_t> local_dest(num_dest, 0);
  std::vector<ByteWriter> writers;
  writers.reserve(num_dest);
  std::vector<uint64_t> local_bytes(num_dest, 0);
  for (int d = 0; d < num_dest; ++d) {
    local_dest[d] = fast && ExecutorOf(d) == src_exec;
    if (local_dest[d]) {
      buckets.local_by_dest[d] = AcquirePooled(&row_pool_);
      writers.emplace_back();  // placeholder, never written
    } else {
      buckets.remote_by_dest[d] = AcquirePooled(&byte_pool_);
      writers.emplace_back(&buckets.remote_by_dest[d].get());
    }
  }

  for (Value& row : rows) {
    SAC_RETURN_NOT_OK(ExpectPair(row));
    const int dest =
        static_cast<int>(row.At(0).Hash() % static_cast<uint64_t>(num_dest));
    if (local_dest[dest]) {
      // Zero-copy route: the Value moves as-is; meter what it would have
      // cost on the wire (SerializedSize is exact, see value.h).
      local_bytes[dest] += row.SerializedSize();
      buckets.local_by_dest[dest]->push_back(std::move(row));
    } else {
      row.Serialize(&writers[dest]);
    }
    ++buckets.records;
  }

  auto add_shuffle = [&](uint64_t bytes, uint64_t records, bool cross) {
    if (stats) {
      stats->AddShuffle(bytes, records, cross);
    } else {
      metrics_.AddShuffle(bytes, records, cross);
    }
  };
  for (int d = 0; d < num_dest; ++d) {
    if (local_dest[d]) {
      if (stats) {
        stats->AddLocalShuffle(local_bytes[d]);
      } else {
        metrics_.AddLocalShuffle(local_bytes[d]);
      }
    } else {
      add_shuffle(buckets.remote_by_dest[d]->size(), 0,
                  ExecutorOf(src_part) != ExecutorOf(d));
    }
  }
  add_shuffle(0, buckets.records, false);
  return buckets;
}

Result<Dataset> Engine::ShuffleOp(DatasetImpl::OpKind kind,
                                  const std::string& label,
                                  std::vector<Dataset> parents,
                                  int num_partitions, MapSideFn map_side,
                                  ReduceSideFn reduce_side) {
  for (const Dataset& p : parents) SAC_RETURN_NOT_OK(Recover(p));
  Dataset ds = NewDataset(kind, label, std::move(parents), num_partitions);
  ds->wide_fn_ = [map_side, reduce_side](Engine* eng, DatasetImpl* self,
                                         int out) {
    return eng->ExecuteShuffle(self, map_side, reduce_side, out);
  };
  SAC_RETURN_NOT_OK(ExecuteShuffle(ds.get(), map_side, reduce_side, -1));
  return ds;
}

Status Engine::ExecuteShuffle(DatasetImpl* ds, const MapSideFn& map_side,
                              const ReduceSideFn& reduce_side,
                              int only_dest) {
  const int num_dest = ds->num_partitions();
  const int num_parents = static_cast<int>(ds->parents_.size());
  StageStats* stats = StatsFor(ds);
  trace::ScopedSpan stage_span(
      &tracer_, only_dest < 0 ? ds->label_ : ds->label_ + ":recover",
      "stage");
  Stopwatch stage_sw;

  InFlightScope running(this);

  // Map side: bucket every parent partition (parallel across partitions).
  // buckets[parent][src] holds per-destination pooled buffers: serialized
  // bytes for remote destinations, moved Values for executor-local ones.
  std::vector<std::vector<ShuffleBuckets>> buckets(num_parents);
  for (int p = 0; p < num_parents; ++p) {
    SAC_RETURN_NOT_OK(Recover(ds->parents_[p]));
    DatasetImpl* parent = ds->parents_[p].get();
    const int num_src = parent->num_partitions();
    buckets[p].resize(num_src);
    SAC_RETURN_NOT_OK(ParallelParts(
        ContextFor(ds, stage_span.id(), "shuffle-write"), num_src,
        [&](int s) -> Status {
          AddRecordsTo(stats, parent->parts_[s].size());
          SAC_ASSIGN_OR_RETURN(Partition combined,
                               map_side(parent->parts_[s], p));
          SAC_ASSIGN_OR_RETURN(
              ShuffleBuckets bs,
              BucketRows(stats, std::move(combined), s, num_dest));
          buckets[p][s] = std::move(bs);
          return Status::OK();
        }));
  }

  // Reduce side: drain this destination's buckets in deterministic
  // (parent, source-partition) order, then fold. Local buckets hand over
  // their Values by move; remote buckets are deserialized. A (src, dest)
  // bucket is entirely one or the other, so the concatenation order
  // matches the serialize-everything path exactly.
  auto reduce_one = [&](int d) -> Status {
    ValueVec rows_a, rows_b;
    for (int p = 0; p < num_parents; ++p) {
      ValueVec& rows = (p == 0) ? rows_a : rows_b;
      for (ShuffleBuckets& bs : buckets[p]) {
        if (bs.local_by_dest[d]) {
          ValueVec& local = *bs.local_by_dest[d];
          for (Value& v : local) rows.push_back(std::move(v));
        } else {
          ByteReader reader(*bs.remote_by_dest[d]);
          while (!reader.AtEnd()) {
            SAC_ASSIGN_OR_RETURN(Value v, Value::Deserialize(&reader));
            rows.push_back(std::move(v));
          }
        }
      }
    }
    Partition out;
    SAC_RETURN_NOT_OK(reduce_side(std::move(rows_a), std::move(rows_b), &out));
    ds->parts_[d] = std::move(out);
    ds->available_[d] = true;
    return Status::OK();
  };

  Status st;
  if (only_dest >= 0) {
    st = reduce_one(only_dest);
  } else {
    st = ParallelParts(ContextFor(ds, stage_span.id(), "reduce"), num_dest,
                       reduce_one);
  }
  if (stats) {
    stats->AddWallMicros(stage_sw.ElapsedMicros());
    const MetricsSnapshot c = stats->counters().Snapshot();
    stage_span.AddArg("shuffle_bytes",
                      static_cast<int64_t>(c.shuffle_bytes));
    stage_span.AddArg("shuffle_records",
                      static_cast<int64_t>(c.shuffle_records));
    stage_span.AddArg("cross_executor_bytes",
                      static_cast<int64_t>(c.cross_executor_bytes));
    stage_span.AddArg("local_shuffle_bytes",
                      static_cast<int64_t>(c.local_shuffle_bytes));
    SAC_LOG(Debug) << "stage #" << ds->stage_.id << " " << ds->label()
                   << (only_dest >= 0 ? " (recover)" : "") << ": "
                   << c.shuffle_records << " records, " << c.shuffle_bytes
                   << " shuffle bytes in " << stage_sw.ElapsedMicros() / 1000.0
                   << " ms";
  }
  return st;
}

Result<Dataset> Engine::ReduceByKey(const Dataset& in, CombineFn combine,
                                    int num_partitions) {
  if (num_partitions <= 0) num_partitions = in->num_partitions();
  auto fold = [combine](ValueVec rows, Partition* out) -> Status {
    KeySlots slots;
    std::vector<Value> acc;
    for (Value& row : rows) {
      SAC_RETURN_NOT_OK(ExpectPair(row));
      const size_t slot = slots.SlotFor(row.At(0));
      if (slot == acc.size()) {
        acc.push_back(row.At(1));
      } else {
        acc[slot] = combine(acc[slot], row.At(1));
      }
    }
    out->reserve(acc.size());
    for (size_t s = 0; s < acc.size(); ++s) {
      out->push_back(VPair(slots.keys()[s], std::move(acc[s])));
    }
    return Status::OK();
  };
  MapSideFn map_side = [fold](const Partition& src, int) -> Result<Partition> {
    Partition combined;
    SAC_RETURN_NOT_OK(fold(src, &combined));  // map-side combine
    return combined;
  };
  ReduceSideFn reduce_side = [fold](ValueVec rows_a, ValueVec,
                                    Partition* out) {
    return fold(std::move(rows_a), out);
  };
  return ShuffleOp(DatasetImpl::OpKind::kShuffle, "reduceByKey", {in},
                   num_partitions, std::move(map_side),
                   std::move(reduce_side));
}

Result<Dataset> Engine::GroupByKey(const Dataset& in, int num_partitions) {
  if (num_partitions <= 0) num_partitions = in->num_partitions();
  MapSideFn map_side = [](const Partition& src, int) -> Result<Partition> {
    for (const Value& row : src) SAC_RETURN_NOT_OK(ExpectPair(row));
    return src;  // every record is shuffled (no combining)
  };
  ReduceSideFn reduce_side = [](ValueVec rows_a, ValueVec, Partition* out) {
    KeySlots slots;
    std::vector<ValueVec> groups;
    for (Value& row : rows_a) {
      const size_t slot = slots.SlotFor(row.At(0));
      if (slot == groups.size()) groups.emplace_back();
      groups[slot].push_back(row.At(1));
    }
    out->reserve(groups.size());
    for (size_t s = 0; s < groups.size(); ++s) {
      out->push_back(
          VPair(slots.keys()[s], Value::List(std::move(groups[s]))));
    }
    return Status::OK();
  };
  return ShuffleOp(DatasetImpl::OpKind::kShuffle, "groupByKey", {in},
                   num_partitions, std::move(map_side),
                   std::move(reduce_side));
}

Result<Dataset> Engine::PartitionBy(const Dataset& in, int num_partitions) {
  if (num_partitions <= 0) num_partitions = in->num_partitions();
  MapSideFn map_side = [](const Partition& src, int) -> Result<Partition> {
    for (const Value& row : src) SAC_RETURN_NOT_OK(ExpectPair(row));
    return src;
  };
  ReduceSideFn reduce_side = [](ValueVec rows_a, ValueVec, Partition* out) {
    *out = std::move(rows_a);
    return Status::OK();
  };
  return ShuffleOp(DatasetImpl::OpKind::kShuffle, "partitionBy", {in},
                   num_partitions, std::move(map_side),
                   std::move(reduce_side));
}

Result<Dataset> Engine::Join(const Dataset& a, const Dataset& b,
                             int num_partitions) {
  if (num_partitions <= 0) {
    num_partitions = std::max(a->num_partitions(), b->num_partitions());
  }
  MapSideFn map_side = [](const Partition& src, int) -> Result<Partition> {
    for (const Value& row : src) SAC_RETURN_NOT_OK(ExpectPair(row));
    return src;
  };
  ReduceSideFn reduce_side = [](ValueVec rows_a, ValueVec rows_b,
                                Partition* out) {
    // Build hash of B values per key (insertion order), then stream A.
    std::unordered_map<Value, ValueVec, ValueHash, ValueEq> b_index;
    for (Value& row : rows_b) b_index[row.At(0)].push_back(row.At(1));
    for (Value& row : rows_a) {
      auto it = b_index.find(row.At(0));
      if (it == b_index.end()) continue;
      for (const Value& w : it->second) {
        out->push_back(VPair(row.At(0), VTuple({row.At(1), w})));
      }
    }
    return Status::OK();
  };
  return ShuffleOp(DatasetImpl::OpKind::kCoShuffle, "join", {a, b},
                   num_partitions, std::move(map_side),
                   std::move(reduce_side));
}

Result<Dataset> Engine::CoGroup(const Dataset& a, const Dataset& b,
                                int num_partitions) {
  if (num_partitions <= 0) {
    num_partitions = std::max(a->num_partitions(), b->num_partitions());
  }
  MapSideFn map_side = [](const Partition& src, int) -> Result<Partition> {
    for (const Value& row : src) SAC_RETURN_NOT_OK(ExpectPair(row));
    return src;
  };
  ReduceSideFn reduce_side = [](ValueVec rows_a, ValueVec rows_b,
                                Partition* out) {
    KeySlots slots;
    std::vector<ValueVec> ga, gb;
    auto add = [&](ValueVec& rows, bool left) {
      for (Value& row : rows) {
        const size_t slot = slots.SlotFor(row.At(0));
        if (slot == ga.size()) {
          ga.emplace_back();
          gb.emplace_back();
        }
        (left ? ga : gb)[slot].push_back(row.At(1));
      }
    };
    add(rows_a, true);
    add(rows_b, false);
    out->reserve(slots.size());
    for (size_t s = 0; s < slots.size(); ++s) {
      out->push_back(VPair(slots.keys()[s],
                           VTuple({Value::List(std::move(ga[s])),
                                   Value::List(std::move(gb[s]))})));
    }
    return Status::OK();
  };
  return ShuffleOp(DatasetImpl::OpKind::kCoShuffle, "cogroup", {a, b},
                   num_partitions, std::move(map_side),
                   std::move(reduce_side));
}

Result<ValueVec> Engine::Collect(const Dataset& in) {
  trace::ScopedSpan span(&tracer_, "collect:" + in->label_, "action");
  SAC_RETURN_NOT_OK(Recover(in));
  ValueVec out;
  size_t total = 0;
  for (const auto& p : in->parts_) total += p.size();
  out.reserve(total);
  for (const auto& p : in->parts_) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

Result<int64_t> Engine::Count(const Dataset& in) {
  SAC_RETURN_NOT_OK(Recover(in));
  int64_t total = 0;
  for (const auto& p : in->parts_) total += static_cast<int64_t>(p.size());
  return total;
}

Status Engine::Recover(const Dataset& ds) {
  for (int i = 0; i < ds->num_partitions(); ++i) {
    if (!ds->available_[i]) {
      SAC_RETURN_NOT_OK(RecomputePartition(ds.get(), i));
    }
  }
  return Status::OK();
}

Status Engine::VerifyLineage(const Dataset& ds) {
  if (ds == nullptr) {
    return Status::RuntimeError("lineage verification on a null dataset");
  }
  const uint64_t current_gen = stages_.generation();
  std::unordered_set<const DatasetImpl*> seen;
  std::vector<DatasetImpl*> stack{ds.get()};
  while (!stack.empty()) {
    DatasetImpl* d = stack.back();
    stack.pop_back();
    if (!seen.insert(d).second) continue;
    const std::string where = "dataset '" + d->label_ + "'";

    size_t want_parents = 0;
    switch (d->kind_) {
      case DatasetImpl::OpKind::kSource: want_parents = 0; break;
      case DatasetImpl::OpKind::kNarrow:
      case DatasetImpl::OpKind::kShuffle: want_parents = 1; break;
      case DatasetImpl::OpKind::kCoShuffle:
      case DatasetImpl::OpKind::kUnion: want_parents = 2; break;
    }
    if (d->parents_.size() != want_parents) {
      return Status::RuntimeError(
          where + ": expected " + std::to_string(want_parents) +
          " lineage parent(s), has " + std::to_string(d->parents_.size()));
    }
    for (const auto& p : d->parents_) {
      if (p == nullptr) {
        return Status::RuntimeError(where + ": null lineage parent");
      }
      stack.push_back(p.get());
    }
    if (d->parts_.empty()) {
      return Status::RuntimeError(where + ": no partitions");
    }
    if (d->available_.size() != d->parts_.size()) {
      return Status::RuntimeError(
          where + ": availability bitmap tracks " +
          std::to_string(d->available_.size()) + " partitions, data has " +
          std::to_string(d->parts_.size()));
    }
    if (d->kind_ == DatasetImpl::OpKind::kNarrow &&
        d->parts_.size() != d->parents_[0]->parts_.size()) {
      return Status::RuntimeError(
          where + ": narrow op with " + std::to_string(d->parts_.size()) +
          " partitions over a parent with " +
          std::to_string(d->parents_[0]->parts_.size()));
    }
    if (d->kind_ == DatasetImpl::OpKind::kUnion &&
        d->parts_.size() != d->parents_[0]->parts_.size() +
                                d->parents_[1]->parts_.size()) {
      return Status::RuntimeError(where +
                                  ": union partition count is not the sum "
                                  "of its parents'");
    }
    // Stage-registry consistency: refs minted in the current generation
    // must resolve; refs from before a Reset() are expected to be stale.
    if (d->stage_.gen == current_gen && stages_.Get(d->stage_) == nullptr) {
      return Status::RuntimeError(
          where + ": current-generation stage ref (stage " +
          std::to_string(d->stage_.id) + ") does not resolve");
    }
  }
  return Status::OK();
}

Status Engine::RecomputePartition(DatasetImpl* ds, int i) {
  if (StageStats* stats = StatsFor(ds)) {
    stats->AddRecompute();
  } else {
    metrics_.AddRecompute();
  }
  tracer_.Instant("recompute:" + ds->label_, "recompute", 0,
                  {{"partition", i}, {"stage", ds->stage_.id}});
  switch (ds->kind_) {
    case DatasetImpl::OpKind::kSource:
      if (ds->wide_fn_) return ds->wide_fn_(this, ds, i);
      return Status::RuntimeError(
          "lost partition of non-regenerable source '" + ds->label_ + "'");
    case DatasetImpl::OpKind::kNarrow: {
      DatasetImpl* parent = ds->parents_[0].get();
      if (!parent->IsAvailable(i)) {
        SAC_RETURN_NOT_OK(RecomputePartition(parent, i));
      }
      ds->parts_[i].clear();
      SAC_RETURN_NOT_OK(ds->narrow_fn_(parent->parts_[i], &ds->parts_[i]));
      ds->available_[i] = true;
      return Status::OK();
    }
    case DatasetImpl::OpKind::kShuffle:
    case DatasetImpl::OpKind::kCoShuffle:
    case DatasetImpl::OpKind::kUnion:
      return ds->wide_fn_(this, ds, i);
  }
  return Status::RuntimeError("unknown dataset kind");
}

}  // namespace sac::runtime
