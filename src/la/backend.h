// Pluggable kernel backends (ROADMAP: "pluggable HPC kernel backends").
// The planner's generated loop nests dispatch tile-level linear algebra
// through a KernelBackend so the hot kernels can be swapped per engine --
// compare Alchemist's externally-linked MPI/BLAS workers (PAPERS.md) --
// and A/B-benchmarked without recompiling queries:
//
//   * generic -- the blocked, restrict'd loops in src/la/kernels.cc.
//   * packed  -- generic, with GemmAccum routed through the register-
//                tiled panel-packing kernel (src/la/packed_gemm.h).
//   * jvmlike -- virtual-dispatch bounds-checked access modelling MLlib's
//                non-native Breeze path (src/la/jvmlike.h).
//
// Selection: ClusterConfig::kernel_backend / SAC_KERNEL_BACKEND, resolved
// once at Engine construction (default "packed"). The MLlib baseline
// series additionally pins jvmlike via PlannerOptions::use_jvmlike_kernels
// regardless of the engine backend.
//
// Numerics: all three backends accumulate GEMM with the same per-element
// order (accumulator loaded from C, k ascending, no k-blocking), so
// results are bitwise identical across backends; the backend-parameterized
// suite in tests/kernels_test.cc enforces this.
#ifndef SAC_LA_BACKEND_H_
#define SAC_LA_BACKEND_H_

#include <cstdint>
#include <string_view>

#include "src/la/tile.h"

namespace sac {
class Metrics;
}  // namespace sac

namespace sac::la {

enum class BackendKind { kGeneric, kPacked, kJvmlike };

/// Tile-level kernel vtable. Implementations must be stateless and
/// thread-safe: one shared instance serves every engine and pool thread.
class KernelBackend {
 public:
  virtual ~KernelBackend() = default;

  virtual BackendKind kind() const = 0;
  virtual std::string_view name() const = 0;

  /// out = a + b elementwise.
  virtual void Add(const Tile& a, const Tile& b, Tile* out) const = 0;
  /// out = a - b elementwise.
  virtual void Sub(const Tile& a, const Tile& b, Tile* out) const = 0;
  /// out = a * b elementwise (Hadamard).
  virtual void Mul(const Tile& a, const Tile& b, Tile* out) const = 0;
  /// out = alpha*a + beta*b elementwise.
  virtual void Axpby(double alpha, const Tile& a, double beta, const Tile& b,
                     Tile* out) const = 0;
  /// out = alpha * a.
  virtual void Scale(double alpha, const Tile& a, Tile* out) const = 0;
  /// acc += t elementwise, in place.
  virtual void AddInPlace(Tile* acc, const Tile& t) const = 0;
  /// out += a * b (matrix product, la::GemmAccum contract).
  virtual void GemmAccum(const Tile& a, const Tile& b, Tile* out) const = 0;
  /// out = a^T.
  virtual void Transpose(const Tile& a, Tile* out) const = 0;
  /// out[i] = sum_j a(i,j); out must have a.rows() elements.
  virtual void RowSums(const Tile& a, double* out) const = 0;
  /// out[j] = sum_i a(i,j); out must have a.cols() elements.
  virtual void ColSums(const Tile& a, double* out) const = 0;
  /// Sum of all elements.
  virtual double TotalSum(const Tile& a) const = 0;
};

/// Shared immutable instance for a kind; never null.
const KernelBackend* GetBackend(BackendKind kind);

/// Case-sensitive lookup by registry name ("generic", "packed",
/// "jvmlike"); nullptr for unknown names so callers can log-and-default.
const KernelBackend* FindBackend(std::string_view name);

/// Registry name for a kind (the value accepted by SAC_KERNEL_BACKEND).
std::string_view BackendName(BackendKind kind);

/// Flops of out += a*b: 2 * m * l * n (one mul + one add per term).
uint64_t GemmFlops(const Tile& a, const Tile& b);

/// Credits `flops` to the per-backend flop counter (flops_generic /
/// flops_packed / flops_jvmlike). No-op when metrics is null.
void MeterFlops(Metrics* metrics, BackendKind kind, uint64_t flops);

}  // namespace sac::la

#endif  // SAC_LA_BACKEND_H_
