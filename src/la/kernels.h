// Optimized dense kernels. These are the precompiled equivalents of the
// loop nests SAC's translator derives in Sections 3 and 5 (e.g. the triple
// loop `V(i*N+j) += A(i*N+k) * B(k*N+j)` for the tile product). The planner
// pattern-matches its generated loop IR onto these kernels; anything that
// does not match runs through the loop-IR interpreter instead.
#ifndef SAC_LA_KERNELS_H_
#define SAC_LA_KERNELS_H_

#include <functional>

#include "src/la/tile.h"

namespace sac::la {

/// out = a + b elementwise. Shapes must agree.
void Add(const Tile& a, const Tile& b, Tile* out);

/// out = a - b elementwise.
void Sub(const Tile& a, const Tile& b, Tile* out);

/// out = a * b elementwise (Hadamard).
void Mul(const Tile& a, const Tile& b, Tile* out);

/// out = alpha*a + beta*b elementwise.
void Axpby(double alpha, const Tile& a, double beta, const Tile& b, Tile* out);

/// out = alpha * a.
void Scale(double alpha, const Tile& a, Tile* out);

/// acc += t elementwise, in place (the tile monoid of Section 5.3).
void AddInPlace(Tile* acc, const Tile& t);

/// out += a * b (matrix product); blocked i-k-j loop with a restrict'd
/// inner kernel. Shapes: a is m x l, b is l x n, out is m x n.
void GemmAccum(const Tile& a, const Tile& b, Tile* out);

/// out = a^T.
void Transpose(const Tile& a, Tile* out);

/// Row reduction: out[i] = sum_j a(i,j). `out` must have a.rows() elements.
void RowSums(const Tile& a, double* out);

/// Column reduction: out[j] = sum_i a(i,j).
void ColSums(const Tile& a, double* out);

/// Frobenius-style total sum of all elements.
double TotalSum(const Tile& a);

/// Elementwise map with an arbitrary scalar function (slow path for
/// non-recognized elementwise expressions).
void MapElements(const Tile& a, const std::function<double(double)>& f,
                 Tile* out);

/// Elementwise zip with an arbitrary binary scalar function (slow path).
void ZipElements(const Tile& a, const Tile& b,
                 const std::function<double(double, double)>& f, Tile* out);

}  // namespace sac::la

#endif  // SAC_LA_KERNELS_H_
