// Fused elementwise pipelines: a transpose feeding an elementwise op is
// executed as ONE blocked pass that reads the transposed operand in
// place, instead of materializing a transposed temporary tile and then
// running the op over it. Same values, same single arithmetic op per
// element -- results are bit-identical to the two-pass form -- but one
// tile allocation and one memory sweep fewer per stage (the tile_allocs
// counter the fusion gate in bench_abl_backend watches).
//
// The planner enables these under PlannerOptions::fuse_elementwise; the
// jvmlike path keeps the materialized two-pass form, since MLlib's
// non-native pipeline materializes every intermediate.
#ifndef SAC_LA_FUSED_H_
#define SAC_LA_FUSED_H_

#include <functional>

#include "src/la/tile.h"

namespace sac::la {

/// Recognized zip shapes (src/planner/fusion.h matches head expressions
/// onto these): a+b, a-b, a*b (Hadamard), alpha*a + beta*b.
enum class ZipOp { kAdd, kSub, kMul, kAxpby };

/// out = op(A, B) where A = a_t ? a^T : a and B = b_t ? b^T : b, computed
/// in one pass. Logical shapes of A and B must agree; `out` gets that
/// shape. alpha/beta are used by kAxpby only.
void FusedZip(ZipOp op, double alpha, double beta, const Tile& a, bool a_t,
              const Tile& b, bool b_t, Tile* out);

/// General zip through a scalar closure, transposed reads fused.
void FusedZipFn(const std::function<double(double, double)>& f,
                const Tile& a, bool a_t, const Tile& b, bool b_t, Tile* out);

/// out = f(A) with A = a_t ? a^T : a, one pass (map fused into the
/// transpose sweep).
void FusedMapFn(const std::function<double(double)>& f, const Tile& a,
                bool a_t, Tile* out);

/// out = alpha * A with A = a_t ? a^T : a, one pass.
void FusedScale(double alpha, const Tile& a, bool a_t, Tile* out);

}  // namespace sac::la

#endif  // SAC_LA_FUSED_H_
