// Compressed sparse row (CSR) tiles -- the Section 8 future-work item
// ("tiled arrays where each tile is stored in the compressed sparse
// column format"; we use the row-major twin to match the dense tiles).
// Following the paper's own guidance, sparse operations are provided as
// black-box library kernels that plug into the distributed layer, rather
// than being derived from comprehensions.
#ifndef SAC_LA_SPARSE_TILE_H_
#define SAC_LA_SPARSE_TILE_H_

#include <cstdint>
#include <vector>

#include "src/la/tile.h"

namespace sac::la {

class SparseTile {
 public:
  SparseTile() : rows_(0), cols_(0), row_ptr_(1, 0) {}
  SparseTile(int64_t rows, int64_t cols, std::vector<int64_t> row_ptr,
             std::vector<int32_t> col_idx, std::vector<double> values)
      : rows_(rows),
        cols_(cols),
        row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        values_(std::move(values)) {}

  /// Compresses a dense tile, dropping exact zeros.
  static SparseTile FromDense(const Tile& dense);

  /// Expands back to a dense tile.
  Tile ToDense() const;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Bytes of payload (the compression headline vs rows*cols*8 dense).
  size_t PayloadBytes() const {
    return row_ptr_.size() * sizeof(int64_t) +
           col_idx_.size() * sizeof(int32_t) +
           values_.size() * sizeof(double);
  }

  bool operator==(const SparseTile& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_ &&
           values_ == other.values_;
  }

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> row_ptr_;   // rows+1 entries
  std::vector<int32_t> col_idx_;   // nnz entries
  std::vector<double> values_;     // nnz entries
};

/// y(0,i) += sum_k A(i,k) * x(0,k). `y` is a 1 x rows dense tile, `x` a
/// 1 x cols dense tile.
void SpMV(const SparseTile& a, const Tile& x, Tile* y);

/// out += A_sparse * B_dense (CSR x dense gemm).
void SpGemmAccum(const SparseTile& a, const Tile& b, Tile* out);

/// out = alpha*A_sparse (as dense) + beta*B_dense.
void SpAxpby(double alpha, const SparseTile& a, double beta, const Tile& b,
             Tile* out);

}  // namespace sac::la

#endif  // SAC_LA_SPARSE_TILE_H_
