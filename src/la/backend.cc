#include "src/la/backend.h"

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/la/jvmlike.h"
#include "src/la/kernels.h"
#include "src/la/packed_gemm.h"

namespace sac::la {

namespace {

class GenericBackend : public KernelBackend {
 public:
  BackendKind kind() const override { return BackendKind::kGeneric; }
  std::string_view name() const override { return "generic"; }

  void Add(const Tile& a, const Tile& b, Tile* out) const override {
    la::Add(a, b, out);
  }
  void Sub(const Tile& a, const Tile& b, Tile* out) const override {
    la::Sub(a, b, out);
  }
  void Mul(const Tile& a, const Tile& b, Tile* out) const override {
    la::Mul(a, b, out);
  }
  void Axpby(double alpha, const Tile& a, double beta, const Tile& b,
             Tile* out) const override {
    la::Axpby(alpha, a, beta, b, out);
  }
  void Scale(double alpha, const Tile& a, Tile* out) const override {
    la::Scale(alpha, a, out);
  }
  void AddInPlace(Tile* acc, const Tile& t) const override {
    la::AddInPlace(acc, t);
  }
  void GemmAccum(const Tile& a, const Tile& b, Tile* out) const override {
    la::GemmAccum(a, b, out);
  }
  void Transpose(const Tile& a, Tile* out) const override {
    la::Transpose(a, out);
  }
  void RowSums(const Tile& a, double* out) const override {
    la::RowSums(a, out);
  }
  void ColSums(const Tile& a, double* out) const override {
    la::ColSums(a, out);
  }
  double TotalSum(const Tile& a) const override { return la::TotalSum(a); }
};

/// Same elementwise/reduction loops as generic; only the matrix product
/// differs (panel packing pays off only where O(n^3) dominates O(n^2)).
class PackedBackend : public GenericBackend {
 public:
  BackendKind kind() const override { return BackendKind::kPacked; }
  std::string_view name() const override { return "packed"; }

  void GemmAccum(const Tile& a, const Tile& b, Tile* out) const override {
    PackedGemmAccum(a, b, out);
  }
};

/// MLlib-model backend: every element access is a virtual call with a
/// bounds check (src/la/jvmlike.h). Ops jvmlike.cc has no wrapper for are
/// written here as the same generic-interface loops Breeze's zipMap /
/// reduce fallbacks compile to.
class JvmlikeBackend : public KernelBackend {
 public:
  BackendKind kind() const override { return BackendKind::kJvmlike; }
  std::string_view name() const override { return "jvmlike"; }

  void Add(const Tile& a, const Tile& b, Tile* out) const override {
    jvmlike::TileAdd(a, b, out);
  }
  void Sub(const Tile& a, const Tile& b, Tile* out) const override {
    jvmlike::TileAxpby(1.0, a, -1.0, b, out);
  }
  void Mul(const Tile& a, const Tile& b, Tile* out) const override {
    PrepareOut(a, out);
    auto ra = jvmlike::WrapConst(&a);
    auto rb = jvmlike::WrapConst(&b);
    auto ro = jvmlike::Wrap(out);
    for (int64_t i = 0; i < ra->rows(); ++i) {
      for (int64_t j = 0; j < ra->cols(); ++j) {
        ro->Set(i, j, ra->Get(i, j) * rb->Get(i, j));
      }
    }
  }
  void Axpby(double alpha, const Tile& a, double beta, const Tile& b,
             Tile* out) const override {
    jvmlike::TileAxpby(alpha, a, beta, b, out);
  }
  void Scale(double alpha, const Tile& a, Tile* out) const override {
    PrepareOut(a, out);
    auto ra = jvmlike::WrapConst(&a);
    auto ro = jvmlike::Wrap(out);
    for (int64_t i = 0; i < ra->rows(); ++i) {
      for (int64_t j = 0; j < ra->cols(); ++j) {
        ro->Set(i, j, alpha * ra->Get(i, j));
      }
    }
  }
  void AddInPlace(Tile* acc, const Tile& t) const override {
    auto ra = jvmlike::Wrap(acc);
    auto rt = jvmlike::WrapConst(&t);
    for (int64_t i = 0; i < ra->rows(); ++i) {
      for (int64_t j = 0; j < ra->cols(); ++j) {
        ra->Set(i, j, ra->Get(i, j) + rt->Get(i, j));
      }
    }
  }
  void GemmAccum(const Tile& a, const Tile& b, Tile* out) const override {
    jvmlike::TileGemmAccum(a, b, out);
  }
  void Transpose(const Tile& a, Tile* out) const override {
    jvmlike::TileTranspose(a, out);
  }
  void RowSums(const Tile& a, double* out) const override {
    auto ra = jvmlike::WrapConst(&a);
    for (int64_t i = 0; i < ra->rows(); ++i) {
      double s = 0.0;
      for (int64_t j = 0; j < ra->cols(); ++j) s += ra->Get(i, j);
      out[i] = s;
    }
  }
  void ColSums(const Tile& a, double* out) const override {
    auto ra = jvmlike::WrapConst(&a);
    for (int64_t j = 0; j < ra->cols(); ++j) out[j] = 0.0;
    for (int64_t i = 0; i < ra->rows(); ++i) {
      for (int64_t j = 0; j < ra->cols(); ++j) out[j] += ra->Get(i, j);
    }
  }
  double TotalSum(const Tile& a) const override {
    auto ra = jvmlike::WrapConst(&a);
    double s = 0.0;
    for (int64_t i = 0; i < ra->rows(); ++i) {
      for (int64_t j = 0; j < ra->cols(); ++j) s += ra->Get(i, j);
    }
    return s;
  }

 private:
  static void PrepareOut(const Tile& like, Tile* out) {
    if (out->rows() != like.rows() || out->cols() != like.cols()) {
      *out = Tile(like.rows(), like.cols());
    }
  }
};

}  // namespace

const KernelBackend* GetBackend(BackendKind kind) {
  static const GenericBackend generic;
  static const PackedBackend packed;
  static const JvmlikeBackend jvm;
  switch (kind) {
    case BackendKind::kGeneric:
      return &generic;
    case BackendKind::kPacked:
      return &packed;
    case BackendKind::kJvmlike:
      return &jvm;
  }
  SAC_CHECK(false);
  return &generic;
}

const KernelBackend* FindBackend(std::string_view name) {
  if (name == "generic") return GetBackend(BackendKind::kGeneric);
  if (name == "packed") return GetBackend(BackendKind::kPacked);
  if (name == "jvmlike") return GetBackend(BackendKind::kJvmlike);
  return nullptr;
}

std::string_view BackendName(BackendKind kind) {
  return GetBackend(kind)->name();
}

uint64_t GemmFlops(const Tile& a, const Tile& b) {
  return 2ull * static_cast<uint64_t>(a.rows()) *
         static_cast<uint64_t>(a.cols()) * static_cast<uint64_t>(b.cols());
}

void MeterFlops(Metrics* metrics, BackendKind kind, uint64_t flops) {
  if (metrics == nullptr || flops == 0) return;
  switch (kind) {
    case BackendKind::kGeneric:
      metrics->AddFlopsGeneric(flops);
      break;
    case BackendKind::kPacked:
      metrics->AddFlopsPacked(flops);
      break;
    case BackendKind::kJvmlike:
      metrics->AddFlopsJvmlike(flops);
      break;
  }
}

}  // namespace sac::la
