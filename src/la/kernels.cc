#include "src/la/kernels.h"

#include <algorithm>

#include "src/common/logging.h"

// Vectorization hint for the straight-line elementwise loops. The pragma
// form needs -fopenmp-simd (no OpenMP runtime attached); CMake probes the
// flag and defines SAC_HAVE_OPENMP_SIMD, so builds without it compile the
// same loops un-hinted instead of tripping unknown-pragma warnings.
#if defined(SAC_HAVE_OPENMP_SIMD) || defined(_OPENMP)
#define SAC_SIMD _Pragma("omp simd")
// Reduction variant for the sum loops (RowSums/TotalSum): the clause
// licenses reassociation into vector lanes, so these sums may differ from
// a strict left-to-right sum in the low bits. Cross-backend tests compare
// reductions with a tolerance for exactly this reason; the elementwise
// and GEMM kernels stay bit-identical across backends.
#define SAC_PRAGMA(x) _Pragma(#x)
#define SAC_SIMD_REDUCE(var) SAC_PRAGMA(omp simd reduction(+ : var))
#else
#define SAC_SIMD
#define SAC_SIMD_REDUCE(var)
#endif

namespace sac::la {

namespace {
void CheckSameShape(const Tile& a, const Tile& b) {
  SAC_CHECK_EQ(a.rows(), b.rows());
  SAC_CHECK_EQ(a.cols(), b.cols());
}
void PrepareLike(const Tile& a, Tile* out) {
  if (out->rows() != a.rows() || out->cols() != a.cols()) {
    *out = Tile(a.rows(), a.cols());
  }
}
}  // namespace

// The elementwise kernels take __restrict views: PrepareLike guarantees a
// fresh (or exclusively owned) output tile, so input and output never
// alias and the loops vectorize cleanly.

void Add(const Tile& a, const Tile& b, Tile* out) {
  CheckSameShape(a, b);
  PrepareLike(a, out);
  const double* __restrict pa = a.data();
  const double* __restrict pb = b.data();
  double* __restrict po = out->data();
  const int64_t n = a.size();
  SAC_SIMD
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
}

void Sub(const Tile& a, const Tile& b, Tile* out) {
  CheckSameShape(a, b);
  PrepareLike(a, out);
  const double* __restrict pa = a.data();
  const double* __restrict pb = b.data();
  double* __restrict po = out->data();
  const int64_t n = a.size();
  SAC_SIMD
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] - pb[i];
}

void Mul(const Tile& a, const Tile& b, Tile* out) {
  CheckSameShape(a, b);
  PrepareLike(a, out);
  const double* __restrict pa = a.data();
  const double* __restrict pb = b.data();
  double* __restrict po = out->data();
  const int64_t n = a.size();
  SAC_SIMD
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] * pb[i];
}

void Axpby(double alpha, const Tile& a, double beta, const Tile& b,
           Tile* out) {
  CheckSameShape(a, b);
  PrepareLike(a, out);
  const double* __restrict pa = a.data();
  const double* __restrict pb = b.data();
  double* __restrict po = out->data();
  const int64_t n = a.size();
  SAC_SIMD
  for (int64_t i = 0; i < n; ++i) po[i] = alpha * pa[i] + beta * pb[i];
}

void Scale(double alpha, const Tile& a, Tile* out) {
  PrepareLike(a, out);
  const double* __restrict pa = a.data();
  double* __restrict po = out->data();
  const int64_t n = a.size();
  SAC_SIMD
  for (int64_t i = 0; i < n; ++i) po[i] = alpha * pa[i];
}

void AddInPlace(Tile* acc, const Tile& t) {
  CheckSameShape(*acc, t);
  double* __restrict pa = acc->data();
  const double* __restrict pt = t.data();
  const int64_t n = acc->size();
  SAC_SIMD
  for (int64_t i = 0; i < n; ++i) pa[i] += pt[i];
}

void GemmAccum(const Tile& a, const Tile& b, Tile* out) {
  SAC_CHECK_EQ(a.cols(), b.rows());
  if (out->rows() == 0 && out->cols() == 0) *out = Tile(a.rows(), b.cols());
  SAC_CHECK_EQ(out->rows(), a.rows());
  SAC_CHECK_EQ(out->cols(), b.cols());
  const int64_t m = a.rows(), l = a.cols(), n = b.cols();
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = out->data();
  // Blocked i-k-j: the k-innermost-but-one order streams B rows and keeps
  // the C row hot, which is the cache-friendly version of the paper's
  // generated triple loop. No zero-skip branch: dense tiles are assumed
  // dense (sparse tiles have SpMm), and a data-dependent branch in the
  // innermost-but-one loop defeats vectorization of the j loop.
  constexpr int64_t kBlock = 64;
  for (int64_t ii = 0; ii < m; ii += kBlock) {
    const int64_t i_hi = std::min(m, ii + kBlock);
    for (int64_t kk = 0; kk < l; kk += kBlock) {
      const int64_t k_hi = std::min(l, kk + kBlock);
      for (int64_t i = ii; i < i_hi; ++i) {
        for (int64_t k = kk; k < k_hi; ++k) {
          const double aik = pa[i * l + k];
          const double* __restrict brow = pb + k * n;
          double* __restrict crow = pc + i * n;
          SAC_SIMD
          for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

void Transpose(const Tile& a, Tile* out) {
  if (out->rows() != a.cols() || out->cols() != a.rows()) {
    *out = Tile(a.cols(), a.rows());
  }
  const int64_t m = a.rows(), n = a.cols();
  const double* pa = a.data();
  double* po = out->data();
  constexpr int64_t kBlock = 32;
  for (int64_t ii = 0; ii < m; ii += kBlock) {
    const int64_t i_hi = std::min(m, ii + kBlock);
    for (int64_t jj = 0; jj < n; jj += kBlock) {
      const int64_t j_hi = std::min(n, jj + kBlock);
      for (int64_t i = ii; i < i_hi; ++i) {
        for (int64_t j = jj; j < j_hi; ++j) {
          po[j * m + i] = pa[i * n + j];
        }
      }
    }
  }
}

void RowSums(const Tile& a, double* __restrict out) {
  const int64_t m = a.rows(), n = a.cols();
  const double* __restrict pa = a.data();
  for (int64_t i = 0; i < m; ++i) {
    double s = 0.0;
    const double* __restrict row = pa + i * n;
    SAC_SIMD_REDUCE(s)
    for (int64_t j = 0; j < n; ++j) s += row[j];
    out[i] = s;
  }
}

void ColSums(const Tile& a, double* __restrict out) {
  const int64_t m = a.rows(), n = a.cols();
  const double* __restrict pa = a.data();
  std::fill(out, out + n, 0.0);
  // Per-column accumulators are independent, so the j loop vectorizes
  // without reassociating any single sum.
  for (int64_t i = 0; i < m; ++i) {
    const double* __restrict row = pa + i * n;
    SAC_SIMD
    for (int64_t j = 0; j < n; ++j) out[j] += row[j];
  }
}

double TotalSum(const Tile& a) {
  double s = 0.0;
  const double* __restrict pa = a.data();
  const int64_t n = a.size();
  SAC_SIMD_REDUCE(s)
  for (int64_t i = 0; i < n; ++i) s += pa[i];
  return s;
}

void MapElements(const Tile& a, const std::function<double(double)>& f,
                 Tile* out) {
  PrepareLike(a, out);
  const double* pa = a.data();
  double* po = out->data();
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i]);
}

void ZipElements(const Tile& a, const Tile& b,
                 const std::function<double(double, double)>& f, Tile* out) {
  CheckSameShape(a, b);
  PrepareLike(a, out);
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out->data();
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
}

}  // namespace sac::la
