// A Tile is the unit of data distribution for block arrays (Section 5 of
// the paper): a fixed-size dense chunk stored row-major in an unboxed
// double buffer, in which indices are calculated, not stored.
#ifndef SAC_LA_TILE_H_
#define SAC_LA_TILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace sac::la {

class Tile {
 public:
  Tile() : rows_(0), cols_(0) {}
  Tile(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0) {
    SAC_CHECK_GE(rows, 0);
    SAC_CHECK_GE(cols, 0);
  }
  Tile(int64_t rows, int64_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    SAC_CHECK_EQ(static_cast<size_t>(rows * cols), data_.size());
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  double At(int64_t i, int64_t j) const { return data_[i * cols_ + j]; }
  void Set(int64_t i, int64_t j, double v) { data_[i * cols_ + j] = v; }
  void Add(int64_t i, int64_t j, double v) { data_[i * cols_ + j] += v; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  const std::vector<double>& vec() const { return data_; }

  /// Fills with uniform values in [lo, hi) from a deterministic stream.
  void FillRandom(Rng* rng, double lo, double hi) {
    for (auto& v : data_) v = rng->Uniform(lo, hi);
  }

  bool operator==(const Tile& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

  std::string ToString(int64_t max_elems = 16) const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<double> data_;
};

}  // namespace sac::la

#endif  // SAC_LA_TILE_H_
