#include "src/la/sparse_tile.h"

#include "src/common/logging.h"
#include "src/la/kernels.h"

namespace sac::la {

SparseTile SparseTile::FromDense(const Tile& dense) {
  std::vector<int64_t> row_ptr;
  std::vector<int32_t> col_idx;
  std::vector<double> values;
  row_ptr.reserve(dense.rows() + 1);
  row_ptr.push_back(0);
  for (int64_t i = 0; i < dense.rows(); ++i) {
    for (int64_t j = 0; j < dense.cols(); ++j) {
      const double v = dense.At(i, j);
      if (v != 0.0) {
        col_idx.push_back(static_cast<int32_t>(j));
        values.push_back(v);
      }
    }
    row_ptr.push_back(static_cast<int64_t>(values.size()));
  }
  return SparseTile(dense.rows(), dense.cols(), std::move(row_ptr),
                    std::move(col_idx), std::move(values));
}

Tile SparseTile::ToDense() const {
  Tile out(rows_, cols_);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      out.Set(i, col_idx_[p], values_[p]);
    }
  }
  return out;
}

void SpMV(const SparseTile& a, const Tile& x, Tile* y) {
  SAC_CHECK_EQ(x.cols(), a.cols());
  if (y->cols() != a.rows()) *y = Tile(1, a.rows());
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vs = a.values();
  const double* px = x.data();
  double* py = y->data();
  for (int64_t i = 0; i < a.rows(); ++i) {
    double s = py[i];
    for (int64_t p = rp[i]; p < rp[i + 1]; ++p) {
      s += vs[p] * px[ci[p]];
    }
    py[i] = s;
  }
}

void SpGemmAccum(const SparseTile& a, const Tile& b, Tile* out) {
  SAC_CHECK_EQ(a.cols(), b.rows());
  if (out->rows() == 0 && out->cols() == 0) *out = Tile(a.rows(), b.cols());
  SAC_CHECK_EQ(out->rows(), a.rows());
  SAC_CHECK_EQ(out->cols(), b.cols());
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vs = a.values();
  const int64_t n = b.cols();
  const double* pb = b.data();
  double* pc = out->data();
  for (int64_t i = 0; i < a.rows(); ++i) {
    double* crow = pc + i * n;
    for (int64_t p = rp[i]; p < rp[i + 1]; ++p) {
      const double aik = vs[p];
      const double* brow = pb + static_cast<int64_t>(ci[p]) * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void SpAxpby(double alpha, const SparseTile& a, double beta, const Tile& b,
             Tile* out) {
  SAC_CHECK_EQ(a.rows(), b.rows());
  SAC_CHECK_EQ(a.cols(), b.cols());
  Scale(beta, b, out);
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vs = a.values();
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t p = rp[i]; p < rp[i + 1]; ++p) {
      out->Add(i, ci[p], alpha * vs[p]);
    }
  }
}

}  // namespace sac::la
