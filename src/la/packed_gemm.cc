#include "src/la/packed_gemm.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/pool.h"
#include "src/la/kernels.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SAC_PACKED_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace sac::la {

namespace {

// Register microkernel footprint. 6x8 keeps the 48 accumulators (12 ymm)
// plus two B vectors and one A broadcast inside AVX2's 16-register file
// with one to spare; 8x6 needs 24 xmm under baseline SSE2 and spills.
// bench_micro_kernels confirms 6x8 beats both on the shapes the tiled
// planner produces.
constexpr int64_t kMr = 6;
constexpr int64_t kNr = 8;

// Packing is only worth it once the O(m*l + l*n) copy cost is amortized
// over O(m*l*n) flops: the micro bench's BM_GemmFast/BM_GemmPacked
// crossover sits between 64 and 128 on the reference container, so 64x64
// tiles (the default planner block) always take the unpacked loop.
constexpr int64_t kPackedMinDim = 128;

/// Pool for pack buffers: steady-state iterative workloads (fig4c) run
/// the same GEMM shapes hundreds of times, so panel buffers are recycled
/// instead of reallocated per call. Process-wide on purpose -- the pool
/// is keyed by capacity, not engine.
VectorPool<double>& PackPool() {
  static VectorPool<double>* pool = new VectorPool<double>(32);
  return *pool;
}

/// Packs the A row-panel [i0, i0+mr) x [0, l) into k-major order:
/// apack[k * kMr + r] = a(i0 + r, k), zero-padded to kMr rows.
void PackA(const double* __restrict pa, int64_t l, int64_t i0, int64_t mr,
           double* __restrict apack) {
  for (int64_t k = 0; k < l; ++k) {
    double* __restrict dst = apack + k * kMr;
    for (int64_t r = 0; r < mr; ++r) dst[r] = pa[(i0 + r) * l + k];
    for (int64_t r = mr; r < kMr; ++r) dst[r] = 0.0;
  }
}

/// Packs all of B into kNr-wide column panels, each k-major:
/// bpack[panel * (l * kNr) + k * kNr + c] = b(k, j0 + c), zero-padded to
/// kNr columns per panel.
void PackB(const double* __restrict pb, int64_t l, int64_t n,
           double* __restrict bpack) {
  const int64_t panels = (n + kNr - 1) / kNr;
  for (int64_t p = 0; p < panels; ++p) {
    const int64_t j0 = p * kNr;
    const int64_t nr = std::min(kNr, n - j0);
    double* __restrict panel = bpack + p * l * kNr;
    for (int64_t k = 0; k < l; ++k) {
      const double* __restrict src = pb + k * n + j0;
      double* __restrict dst = panel + k * kNr;
      for (int64_t c = 0; c < nr; ++c) dst[c] = src[c];
      for (int64_t c = nr; c < kNr; ++c) dst[c] = 0.0;
    }
  }
}

/// kMr x kNr register microkernel, portable scalar form: acc is loaded
/// from C, then every k term is added in ascending order (no k-blocking),
/// so each element's accumulation chain matches the unpacked i-k-j loop
/// bit for bit. Handles fringe tiles (mr < kMr or nr < kNr) via zeroed
/// pad lanes that are never written back.
void MicroKernelScalar(const double* __restrict apack,
                       const double* __restrict bpack, int64_t l,
                       double* __restrict pc, int64_t ldc, int64_t mr,
                       int64_t nr) {
  double acc[kMr][kNr];
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t c = 0; c < nr; ++c) acc[r][c] = pc[r * ldc + c];
  }
  for (int64_t r = mr; r < kMr; ++r) {
    for (int64_t c = 0; c < kNr; ++c) acc[r][c] = 0.0;
  }
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t c = nr; c < kNr; ++c) acc[r][c] = 0.0;
  }
  for (int64_t k = 0; k < l; ++k) {
    const double* __restrict ak = apack + k * kMr;
    const double* __restrict bk = bpack + k * kNr;
    for (int64_t r = 0; r < kMr; ++r) {
      const double arv = ak[r];
      for (int64_t c = 0; c < kNr; ++c) acc[r][c] += arv * bk[c];
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t c = 0; c < nr; ++c) pc[r * ldc + c] = acc[r][c];
  }
}

#ifdef SAC_PACKED_X86_DISPATCH

/// Full-tile 6x8 microkernel for AVX2 hosts, compiled per-function via
/// the target attribute so the rest of the binary keeps the baseline ISA.
/// 12 ymm accumulators + 2 B vectors + 1 A broadcast = 15 registers, no
/// spills. Deliberately mul-then-add (never FMA, which target("avx2")
/// cannot emit anyway): each lane performs the same two IEEE roundings as
/// the scalar kernel, in the same ascending-k order, so results stay
/// byte-identical across the dispatch.
__attribute__((target("avx2"))) void MicroKernelAvx2(
    const double* __restrict apack, const double* __restrict bpack,
    int64_t l, double* __restrict pc, int64_t ldc) {
  __m256d acc[kMr][2];
  for (int64_t r = 0; r < kMr; ++r) {
    acc[r][0] = _mm256_loadu_pd(pc + r * ldc);
    acc[r][1] = _mm256_loadu_pd(pc + r * ldc + 4);
  }
  for (int64_t k = 0; k < l; ++k) {
    const double* __restrict ak = apack + k * kMr;
    const double* __restrict bk = bpack + k * kNr;
    const __m256d b0 = _mm256_loadu_pd(bk);
    const __m256d b1 = _mm256_loadu_pd(bk + 4);
    for (int64_t r = 0; r < kMr; ++r) {
      const __m256d av = _mm256_set1_pd(ak[r]);
      acc[r][0] = _mm256_add_pd(acc[r][0], _mm256_mul_pd(av, b0));
      acc[r][1] = _mm256_add_pd(acc[r][1], _mm256_mul_pd(av, b1));
    }
  }
  for (int64_t r = 0; r < kMr; ++r) {
    _mm256_storeu_pd(pc + r * ldc, acc[r][0]);
    _mm256_storeu_pd(pc + r * ldc + 4, acc[r][1]);
  }
}

bool HaveAvx2() {
  static const bool have = __builtin_cpu_supports("avx2") != 0;
  return have;
}

#endif  // SAC_PACKED_X86_DISPATCH

/// Dispatch: full tiles take the widest kernel the host supports, fringe
/// tiles (and non-x86 or pre-AVX2 hosts) take the scalar form. Both sum
/// identically per element, so the split is invisible to results.
inline void MicroKernel(const double* __restrict apack,
                        const double* __restrict bpack, int64_t l,
                        double* __restrict pc, int64_t ldc, int64_t mr,
                        int64_t nr) {
#ifdef SAC_PACKED_X86_DISPATCH
  if (mr == kMr && nr == kNr && HaveAvx2()) {
    MicroKernelAvx2(apack, bpack, l, pc, ldc);
    return;
  }
#endif
  MicroKernelScalar(apack, bpack, l, pc, ldc, mr, nr);
}

}  // namespace

int64_t PackedGemmThreshold() { return kPackedMinDim; }

bool PackedGemmWouldPack(int64_t m, int64_t l, int64_t n) {
  return std::min(m, n) >= kPackedMinDim && l >= kMr;
}

void PackedGemmAccum(const Tile& a, const Tile& b, Tile* out) {
  SAC_CHECK_EQ(a.cols(), b.rows());
  if (out->rows() == 0 && out->cols() == 0) *out = Tile(a.rows(), b.cols());
  SAC_CHECK_EQ(out->rows(), a.rows());
  SAC_CHECK_EQ(out->cols(), b.cols());
  const int64_t m = a.rows(), l = a.cols(), n = b.cols();
  if (!PackedGemmWouldPack(m, l, n)) {
    GemmAccum(a, b, out);
    return;
  }
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = out->data();

  const int64_t b_panels = (n + kNr - 1) / kNr;
  PooledVec<double> bbuf = AcquirePooled(&PackPool());
  bbuf->resize(static_cast<size_t>(b_panels * l * kNr));
  PackB(pb, l, n, bbuf->data());

  PooledVec<double> abuf = AcquirePooled(&PackPool());
  abuf->resize(static_cast<size_t>(l * kMr));

  // One C row-strip at a time: pack the A panel once, then sweep every B
  // panel over it (B is already fully packed and stays cache-warm
  // panel-by-panel).
  for (int64_t i0 = 0; i0 < m; i0 += kMr) {
    const int64_t mr = std::min(kMr, m - i0);
    PackA(pa, l, i0, mr, abuf->data());
    for (int64_t p = 0; p < b_panels; ++p) {
      const int64_t j0 = p * kNr;
      const int64_t nr = std::min(kNr, n - j0);
      MicroKernel(abuf->data(), bbuf->data() + p * l * kNr, l,
                  pc + i0 * n + j0, n, mr, nr);
    }
  }
}

}  // namespace sac::la
