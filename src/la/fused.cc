#include "src/la/fused.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/la/kernels.h"

namespace sac::la {

namespace {

constexpr int64_t kBlock = 32;  // same footprint as la::Transpose's tiles

int64_t LogicalRows(const Tile& t, bool transposed) {
  return transposed ? t.cols() : t.rows();
}
int64_t LogicalCols(const Tile& t, bool transposed) {
  return transposed ? t.rows() : t.cols();
}

/// Element (i, j) of the logical (possibly transposed) view.
inline double At(const Tile& t, bool transposed, int64_t i, int64_t j) {
  return transposed ? t.data()[j * t.cols() + i]
                    : t.data()[i * t.cols() + j];
}

/// Runs `body(i, j, out_row_ptr)` over the output in cache-blocked order
/// (the transposed operand is read column-wise, so blocking keeps its
/// working set resident the way la::Transpose's own blocking does).
template <typename Body>
void BlockedApply(int64_t rows, int64_t cols, Tile* out, Body&& body) {
  if (out->rows() != rows || out->cols() != cols) *out = Tile(rows, cols);
  double* po = out->data();
  for (int64_t ii = 0; ii < rows; ii += kBlock) {
    const int64_t iimax = std::min(ii + kBlock, rows);
    for (int64_t jj = 0; jj < cols; jj += kBlock) {
      const int64_t jjmax = std::min(jj + kBlock, cols);
      for (int64_t i = ii; i < iimax; ++i) {
        double* orow = po + i * cols;
        for (int64_t j = jj; j < jjmax; ++j) body(i, j, &orow[j]);
      }
    }
  }
}

}  // namespace

void FusedZip(ZipOp op, double alpha, double beta, const Tile& a, bool a_t,
              const Tile& b, bool b_t, Tile* out) {
  const int64_t rows = LogicalRows(a, a_t), cols = LogicalCols(a, a_t);
  SAC_CHECK_EQ(rows, LogicalRows(b, b_t));
  SAC_CHECK_EQ(cols, LogicalCols(b, b_t));
  if (!a_t && !b_t) {
    // Straight case: the vectorized kernels are strictly better.
    switch (op) {
      case ZipOp::kAdd: Add(a, b, out); return;
      case ZipOp::kSub: Sub(a, b, out); return;
      case ZipOp::kMul: Mul(a, b, out); return;
      case ZipOp::kAxpby: Axpby(alpha, a, beta, b, out); return;
    }
  }
  switch (op) {
    case ZipOp::kAdd:
      BlockedApply(rows, cols, out, [&](int64_t i, int64_t j, double* o) {
        *o = At(a, a_t, i, j) + At(b, b_t, i, j);
      });
      return;
    case ZipOp::kSub:
      BlockedApply(rows, cols, out, [&](int64_t i, int64_t j, double* o) {
        *o = At(a, a_t, i, j) - At(b, b_t, i, j);
      });
      return;
    case ZipOp::kMul:
      BlockedApply(rows, cols, out, [&](int64_t i, int64_t j, double* o) {
        *o = At(a, a_t, i, j) * At(b, b_t, i, j);
      });
      return;
    case ZipOp::kAxpby:
      BlockedApply(rows, cols, out, [&](int64_t i, int64_t j, double* o) {
        *o = alpha * At(a, a_t, i, j) + beta * At(b, b_t, i, j);
      });
      return;
  }
}

void FusedZipFn(const std::function<double(double, double)>& f,
                const Tile& a, bool a_t, const Tile& b, bool b_t,
                Tile* out) {
  const int64_t rows = LogicalRows(a, a_t), cols = LogicalCols(a, a_t);
  SAC_CHECK_EQ(rows, LogicalRows(b, b_t));
  SAC_CHECK_EQ(cols, LogicalCols(b, b_t));
  if (!a_t && !b_t) {
    ZipElements(a, b, f, out);
    return;
  }
  BlockedApply(rows, cols, out, [&](int64_t i, int64_t j, double* o) {
    *o = f(At(a, a_t, i, j), At(b, b_t, i, j));
  });
}

void FusedMapFn(const std::function<double(double)>& f, const Tile& a,
                bool a_t, Tile* out) {
  if (!a_t) {
    MapElements(a, f, out);
    return;
  }
  BlockedApply(a.cols(), a.rows(), out, [&](int64_t i, int64_t j, double* o) {
    *o = f(At(a, true, i, j));
  });
}

void FusedScale(double alpha, const Tile& a, bool a_t, Tile* out) {
  if (!a_t) {
    Scale(alpha, a, out);
    return;
  }
  BlockedApply(a.cols(), a.rows(), out, [&](int64_t i, int64_t j, double* o) {
    *o = alpha * At(a, true, i, j);
  });
}

}  // namespace sac::la
