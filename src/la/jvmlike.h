// "JVM-like" kernels used by the MLlib baseline (see DESIGN.md, table of
// substitutions). The paper evaluates MLlib with the *pure JVM*
// implementation of Breeze -- element-at-a-time access through a generic
// Matrix interface with bounds checks and no native BLAS. We model that
// execution profile with a virtual-dispatch, bounds-checked kernel layer.
// The point is not to be artificially slow: it is to be exactly as generic
// and indirection-heavy as MLlib's non-native code path, so the baseline's
// relative position in the Figure 4 plots has the same cause.
#ifndef SAC_LA_JVMLIKE_H_
#define SAC_LA_JVMLIKE_H_

#include <memory>

#include "src/la/tile.h"

namespace sac::la::jvmlike {

/// Breeze-style generic matrix: every access is a virtual call with a
/// bounds check, matching element access on the JVM without escape
/// analysis or vectorization.
class MatrixRef {
 public:
  virtual ~MatrixRef() = default;
  virtual int64_t rows() const = 0;
  virtual int64_t cols() const = 0;
  virtual double Get(int64_t i, int64_t j) const = 0;
  virtual void Set(int64_t i, int64_t j, double v) = 0;
};

/// Wraps a Tile as a MatrixRef.
std::unique_ptr<MatrixRef> Wrap(Tile* tile);
std::unique_ptr<MatrixRef> WrapConst(const Tile* tile);

/// out = a + b via generic element access (Breeze's default zipMap).
void GenericAdd(const MatrixRef& a, const MatrixRef& b, MatrixRef* out);

/// out += a * b via the textbook i-j-k loop with generic element access
/// (Breeze's fallback gemm when native BLAS is absent).
void GenericGemmAccum(const MatrixRef& a, const MatrixRef& b, MatrixRef* out);

/// out = alpha*a + beta*b via generic element access.
void GenericAxpby(double alpha, const MatrixRef& a, double beta,
                  const MatrixRef& b, MatrixRef* out);

/// Convenience wrappers operating directly on tiles.
void TileAdd(const Tile& a, const Tile& b, Tile* out);
void TileGemmAccum(const Tile& a, const Tile& b, Tile* out);
void TileAxpby(double alpha, const Tile& a, double beta, const Tile& b,
               Tile* out);
void TileTranspose(const Tile& a, Tile* out);

}  // namespace sac::la::jvmlike

#endif  // SAC_LA_JVMLIKE_H_
