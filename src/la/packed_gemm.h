// Packed, register-tiled GEMM (the "packed" kernel backend). A/B operands
// are repacked into contiguous panels sized for an MR x NR register
// microkernel, so the innermost loop streams both panels sequentially
// regardless of the tile's leading dimension. Below a size threshold the
// packing cost is not amortized and the call forwards to the unpacked
// blocked loop (la::GemmAccum), so default 64x64 tiles pay nothing.
//
// Numerics: per output element the accumulation order is byte-identical
// to la::GemmAccum and jvmlike::TileGemmAccum -- the accumulator is
// loaded from the existing C value and every k term is added in ascending
// order, with no k-blocking -- so all three backends produce bitwise
// equal products (tests/kernels_test.cc asserts this).
#ifndef SAC_LA_PACKED_GEMM_H_
#define SAC_LA_PACKED_GEMM_H_

#include "src/la/tile.h"

namespace sac::la {

/// out += a * b, same contract as la::GemmAccum (shapes m x l, l x n,
/// m x n; a 0x0 `out` is allocated to m x n zeros first).
void PackedGemmAccum(const Tile& a, const Tile& b, Tile* out);

/// Minimum min(m, n) at which PackedGemmAccum actually packs; smaller
/// products forward to la::GemmAccum. Chosen from bench_micro_kernels
/// (BM_GemmFast vs BM_GemmPacked crossover; see docs/KERNELS.md).
int64_t PackedGemmThreshold();

/// True when PackedGemmAccum would take the packed path for these shapes
/// (exposed so tests and benches can pick shapes on either side).
bool PackedGemmWouldPack(int64_t m, int64_t l, int64_t n);

}  // namespace sac::la

#endif  // SAC_LA_PACKED_GEMM_H_
