#include "src/la/tile.h"

#include <sstream>

namespace sac::la {

std::string Tile::ToString(int64_t max_elems) const {
  std::ostringstream os;
  os << "Tile(" << rows_ << "x" << cols_ << ")[";
  const int64_t n = std::min<int64_t>(size(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  if (n < size()) os << ", ...";
  os << "]";
  return os.str();
}

}  // namespace sac::la
