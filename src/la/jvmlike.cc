#include "src/la/jvmlike.h"

#include "src/common/logging.h"

namespace sac::la::jvmlike {

namespace {

class TileRef : public MatrixRef {
 public:
  explicit TileRef(Tile* t) : tile_(t) {}
  int64_t rows() const override { return tile_->rows(); }
  int64_t cols() const override { return tile_->cols(); }
  double Get(int64_t i, int64_t j) const override {
    SAC_CHECK(i >= 0 && i < tile_->rows() && j >= 0 && j < tile_->cols())
        << "index (" << i << "," << j << ") out of bounds";
    return tile_->At(i, j);
  }
  void Set(int64_t i, int64_t j, double v) override {
    SAC_CHECK(i >= 0 && i < tile_->rows() && j >= 0 && j < tile_->cols());
    tile_->Set(i, j, v);
  }

 private:
  Tile* tile_;
};

class ConstTileRef : public MatrixRef {
 public:
  explicit ConstTileRef(const Tile* t) : tile_(t) {}
  int64_t rows() const override { return tile_->rows(); }
  int64_t cols() const override { return tile_->cols(); }
  double Get(int64_t i, int64_t j) const override {
    SAC_CHECK(i >= 0 && i < tile_->rows() && j >= 0 && j < tile_->cols());
    return tile_->At(i, j);
  }
  void Set(int64_t, int64_t, double) override {
    SAC_CHECK(false) << "write to const matrix";
  }

 private:
  const Tile* tile_;
};

}  // namespace

std::unique_ptr<MatrixRef> Wrap(Tile* tile) {
  return std::make_unique<TileRef>(tile);
}
std::unique_ptr<MatrixRef> WrapConst(const Tile* tile) {
  return std::make_unique<ConstTileRef>(tile);
}

void GenericAdd(const MatrixRef& a, const MatrixRef& b, MatrixRef* out) {
  const int64_t m = a.rows(), n = a.cols();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      out->Set(i, j, a.Get(i, j) + b.Get(i, j));
    }
  }
}

void GenericGemmAccum(const MatrixRef& a, const MatrixRef& b,
                      MatrixRef* out) {
  const int64_t m = a.rows(), l = a.cols(), n = b.cols();
  // Textbook i-j-k order: strided access on B every iteration, exactly the
  // access pattern Breeze's fallback uses on column-major data.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double s = out->Get(i, j);
      for (int64_t k = 0; k < l; ++k) {
        s += a.Get(i, k) * b.Get(k, j);
      }
      out->Set(i, j, s);
    }
  }
}

void GenericAxpby(double alpha, const MatrixRef& a, double beta,
                  const MatrixRef& b, MatrixRef* out) {
  const int64_t m = a.rows(), n = a.cols();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      out->Set(i, j, alpha * a.Get(i, j) + beta * b.Get(i, j));
    }
  }
}

void TileAdd(const Tile& a, const Tile& b, Tile* out) {
  if (out->rows() != a.rows() || out->cols() != a.cols()) {
    *out = Tile(a.rows(), a.cols());
  }
  auto ra = WrapConst(&a);
  auto rb = WrapConst(&b);
  auto ro = Wrap(out);
  GenericAdd(*ra, *rb, ro.get());
}

void TileGemmAccum(const Tile& a, const Tile& b, Tile* out) {
  if (out->rows() == 0 && out->cols() == 0) *out = Tile(a.rows(), b.cols());
  auto ra = WrapConst(&a);
  auto rb = WrapConst(&b);
  auto ro = Wrap(out);
  GenericGemmAccum(*ra, *rb, ro.get());
}

void TileAxpby(double alpha, const Tile& a, double beta, const Tile& b,
               Tile* out) {
  if (out->rows() != a.rows() || out->cols() != a.cols()) {
    *out = Tile(a.rows(), a.cols());
  }
  auto ra = WrapConst(&a);
  auto rb = WrapConst(&b);
  auto ro = Wrap(out);
  GenericAxpby(alpha, *ra, beta, *rb, ro.get());
}

void TileTranspose(const Tile& a, Tile* out) {
  if (out->rows() != a.cols() || out->cols() != a.rows()) {
    *out = Tile(a.cols(), a.rows());
  }
  auto ra = WrapConst(&a);
  auto ro = Wrap(out);
  const int64_t m = a.rows(), n = a.cols();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      ro->Set(j, i, ra->Get(i, j));
    }
  }
}

}  // namespace sac::la::jvmlike
