// Length-prefixed frame codec shared by every shuffle transport
// (docs/DISTRIBUTED.md). A frame is one request or response between the
// driver and a worker:
//
//   offset  size  field
//   0       4     magic        "SACF" (rejects a stray client instantly)
//   4       4     type         dist::MsgType (opaque to this layer)
//   8       8     seq          caller-assigned; responses echo it
//   16      4     payload_len  bytes following the header
//   20      4     crc32        IEEE CRC-32 of the payload bytes
//   24      ...   payload
//
// All integers little-endian. The codec is deliberately transport-
// agnostic: LoopbackTransport runs every call through it too, so the
// in-process path and the TCP path exercise identical framing, byte
// accounting, and corruption detection.
//
// Typed decode errors (tests/transport_test.cc pins these):
//   * truncated header or payload      -> DataLoss
//   * bad magic                        -> DataLoss
//   * payload_len over the size cap    -> InvalidArgument
//   * CRC mismatch                     -> DataLoss
#ifndef SAC_NET_FRAME_H_
#define SAC_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace sac::net {

/// One decoded message. `type` and `seq` travel in the header; `payload`
/// is an opaque byte blob (the dist layer encodes its protocol into it).
struct Frame {
  uint32_t type = 0;
  uint64_t seq = 0;
  std::vector<uint8_t> payload;
};

/// "SACF" read as a little-endian u32.
inline constexpr uint32_t kFrameMagic = 0x46434153u;
inline constexpr size_t kFrameHeaderBytes = 24;
/// Hard cap on a single frame's payload: a shuffle bucket is a slice of
/// one partition, far below this; anything larger is a corrupt length
/// field or a misbehaving peer, and pre-validating the cap keeps a bad
/// header from driving a multi-gigabyte allocation.
inline constexpr size_t kMaxFramePayload = 256u << 20;  // 256 MiB

/// IEEE CRC-32 (the zlib polynomial), table-driven.
uint32_t Crc32(const uint8_t* data, size_t n);

/// Bytes EncodeFrame will append for `f` (header + payload).
inline size_t EncodedSize(const Frame& f) {
  return kFrameHeaderBytes + f.payload.size();
}

/// Appends the wire encoding of `f` (header + payload) to `*out`.
void EncodeFrame(const Frame& f, std::vector<uint8_t>* out);

/// The fixed-size header, validated but not yet paired with its payload.
/// Stream transports read exactly kFrameHeaderBytes, decode this, then
/// read `payload_len` more bytes and check them against `crc`.
struct FrameHeader {
  uint32_t type = 0;
  uint64_t seq = 0;
  uint32_t payload_len = 0;
  uint32_t crc = 0;
};

/// Decodes and validates a header from the first kFrameHeaderBytes of
/// `data` (magic + payload size cap; the CRC is checked later, against
/// the payload).
Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t size,
                                      size_t max_payload = kMaxFramePayload);

/// Verifies `payload` against the header's CRC.
Status CheckPayloadCrc(const FrameHeader& h, const uint8_t* payload);

/// Decodes one complete frame (header + payload) from `data`. `size`
/// must cover the whole frame; trailing bytes are an error (one buffer =
/// one frame in every caller).
Result<Frame> DecodeFrame(const uint8_t* data, size_t size,
                          size_t max_payload = kMaxFramePayload);
inline Result<Frame> DecodeFrame(const std::vector<uint8_t>& buf,
                                 size_t max_payload = kMaxFramePayload) {
  return DecodeFrame(buf.data(), buf.size(), max_payload);
}

}  // namespace sac::net

#endif  // SAC_NET_FRAME_H_
