// Transport: the request/response channel behind the distributed shuffle
// (docs/DISTRIBUTED.md). The coordinator speaks only this interface, so
// swapping loopback for TCP changes where the bytes go, not any shuffle
// logic. Two implementations:
//   * LoopbackTransport (src/net/loopback.h) -- in-process workers; every
//     call still round-trips through the frame codec so the two paths are
//     byte-for-byte symmetric.
//   * TcpTransport (src/net/tcp.h) -- length-prefixed framed streams with
//     per-peer connection reuse.
#ifndef SAC_NET_TRANSPORT_H_
#define SAC_NET_TRANSPORT_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/net/frame.h"

namespace sac::net {

/// A peer is addressed by its dense index into the worker list (the
/// coordinator's placement maps executors onto these indices).
class Transport {
 public:
  virtual ~Transport() = default;

  /// "loopback" | "tcp" (reported in BENCH json and ReportString).
  virtual const char* name() const = 0;

  virtual int num_peers() const = 0;

  /// Sends `request` to `peer` and blocks for the matching response
  /// frame. Thread-safe; concurrent calls to the same peer are allowed.
  /// The transport assigns and verifies the frame sequence number, so
  /// callers leave `request.seq` as 0. Failure codes:
  ///   * Unavailable -- peer unreachable / connection lost mid-call (the
  ///     coordinator treats this as evidence of worker death)
  ///   * DataLoss / InvalidArgument -- corrupt or oversized frame
  virtual Result<Frame> Call(int peer, const Frame& request) = 0;

  /// Cumulative wire bytes in each direction (headers + payloads),
  /// including failed calls' partial traffic where measurable.
  virtual uint64_t bytes_sent() const = 0;
  virtual uint64_t bytes_received() const = 0;
};

}  // namespace sac::net

#endif  // SAC_NET_TRANSPORT_H_
