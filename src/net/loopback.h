// In-process Transport: peers are handler closures (each wrapping a
// dist::WorkerState). Every Call still encodes the request to wire
// bytes, decodes it, invokes the handler, and round-trips the response
// through the codec too -- so the loopback path exercises the exact
// framing, CRC checking, and byte accounting the TCP path does, and the
// two are interchangeable under tests (docs/DISTRIBUTED.md). This is the
// default transport: with no workers configured the engine never builds
// one, and with SAC_WORKERS=<n> it reproduces single-process results
// bit-for-bit while hosting shuffle buckets in worker objects.
#ifndef SAC_NET_LOOPBACK_H_
#define SAC_NET_LOOPBACK_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <vector>

#include "src/net/transport.h"

namespace sac::net {

class LoopbackTransport : public Transport {
 public:
  /// A peer's service function: one decoded request in, one response
  /// frame out. Protocol-level errors travel inside the returned frame
  /// (dist::MsgType::kError), never as exceptions.
  using Handler = std::function<Frame(const Frame&)>;

  /// Registers a peer; returns its index. Call before the first Call().
  int AddPeer(Handler handler);

  /// Simulates worker death: while down, Call(peer, ...) returns
  /// Unavailable without touching the handler (tests / chaos).
  void SetPeerDown(int peer, bool down);

  const char* name() const override { return "loopback"; }
  int num_peers() const override;
  Result<Frame> Call(int peer, const Frame& request) override;
  uint64_t bytes_sent() const override {
    return sent_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_received() const override {
    return received_.load(std::memory_order_relaxed);
  }

 private:
  struct Peer {
    Handler handler;
    bool down = false;
  };

  mutable std::mutex mu_;  // guards peers_ membership + down flags
  std::vector<Peer> peers_;
  std::atomic<uint64_t> next_seq_{1};
  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> received_{0};
};

}  // namespace sac::net

#endif  // SAC_NET_LOOPBACK_H_
