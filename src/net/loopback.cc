#include "src/net/loopback.h"

#include <string>
#include <utility>

namespace sac::net {

int LoopbackTransport::AddPeer(Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  peers_.push_back(Peer{std::move(handler), false});
  return static_cast<int>(peers_.size()) - 1;
}

void LoopbackTransport::SetPeerDown(int peer, bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  if (peer >= 0 && peer < static_cast<int>(peers_.size())) {
    peers_[peer].down = down;
  }
}

int LoopbackTransport::num_peers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(peers_.size());
}

Result<Frame> LoopbackTransport::Call(int peer, const Frame& request) {
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (peer < 0 || peer >= static_cast<int>(peers_.size())) {
      return Status::InvalidArgument("loopback: no peer " +
                                     std::to_string(peer));
    }
    if (peers_[peer].down) {
      return Status::Unavailable("loopback: peer " + std::to_string(peer) +
                                 " is down");
    }
    handler = peers_[peer].handler;
  }

  // Full codec round trip in both directions: what the handler sees is
  // what a TCP worker would have decoded off the stream, and the byte
  // counters meter real encoded sizes.
  Frame req = request;
  req.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  std::vector<uint8_t> wire;
  EncodeFrame(req, &wire);
  sent_.fetch_add(wire.size(), std::memory_order_relaxed);
  SAC_ASSIGN_OR_RETURN(Frame delivered, DecodeFrame(wire));

  Frame response = handler(delivered);
  response.seq = delivered.seq;
  wire.clear();
  EncodeFrame(response, &wire);
  received_.fetch_add(wire.size(), std::memory_order_relaxed);
  SAC_ASSIGN_OR_RETURN(Frame decoded, DecodeFrame(wire));
  if (decoded.seq != req.seq) {
    return Status::DataLoss("loopback: response seq " +
                            std::to_string(decoded.seq) +
                            " does not match request seq " +
                            std::to_string(req.seq));
  }
  return decoded;
}

}  // namespace sac::net
