#include "src/net/tcp.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/logging.h"

namespace sac::net {

namespace {

/// Reads exactly `n` bytes; Unavailable on EOF/error (the peer is gone
/// or wedged -- either way the connection is unusable).
Status ReadFull(int fd, uint8_t* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(fd, buf + off, n - off, 0);
    if (r > 0) {
      off += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r == 0) {
      return Status::Unavailable("connection closed by peer");
    }
    return Status::Unavailable(std::string("recv: ") + std::strerror(errno));
  }
  return Status::OK();
}

/// Writes all of `buf`; MSG_NOSIGNAL so a dead peer surfaces as EPIPE
/// instead of killing the process with SIGPIPE.
Status WriteFull(int fd, const uint8_t* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, buf + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return Status::Unavailable(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

void SetIoTimeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void SetNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Reads one complete frame off the stream: fixed header, then the
/// CRC-checked payload.
Result<Frame> ReadFrame(int fd) {
  uint8_t header[kFrameHeaderBytes];
  SAC_RETURN_NOT_OK(ReadFull(fd, header, sizeof(header)));
  SAC_ASSIGN_OR_RETURN(FrameHeader h,
                       DecodeFrameHeader(header, sizeof(header)));
  Frame f;
  f.type = h.type;
  f.seq = h.seq;
  f.payload.resize(h.payload_len);
  if (h.payload_len > 0) {
    SAC_RETURN_NOT_OK(ReadFull(fd, f.payload.data(), h.payload_len));
  }
  SAC_RETURN_NOT_OK(CheckPayloadCrc(h, f.payload.data()));
  return f;
}

Status WriteFrame(int fd, const Frame& f) {
  std::vector<uint8_t> wire;
  EncodeFrame(f, &wire);
  return WriteFull(fd, wire.data(), wire.size());
}

}  // namespace

// ---------------------------------------------------------------------
// TcpServer

Status TcpServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status st = Status::IoError("bind port " + std::to_string(port) +
                                      ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    const Status st =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed by Stop() (or a real error; either way, done).
      break;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      break;
    }
    SetNoDelay(fd);
    conns_.push_back(fd);
    threads_.emplace_back([this, fd] { Serve(fd); });
  }
}

void TcpServer::Serve(int fd) {
  while (true) {
    Result<Frame> req = ReadFrame(fd);
    if (!req.ok()) break;  // peer hung up or sent garbage; drop the conn
    Frame resp = handler_(req.value());
    resp.seq = req.value().seq;
    if (!WriteFrame(fd, resp).ok()) break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i] == fd) {
      conns_.erase(conns_.begin() + static_cast<long>(i));
      break;
    }
  }
  ::close(fd);
}

void TcpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Wake every service thread's blocking read; each Serve() then
    // erases and closes its own fd (also under mu_, so no fd is closed
    // out from under this shutdown sweep).
    for (int fd : conns_) ::shutdown(fd, SHUT_RDWR);
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

// ---------------------------------------------------------------------
// TcpTransport

TcpTransport::TcpTransport(std::vector<std::string> peer_addrs,
                           Options opts)
    : opts_(opts) {
  for (const std::string& addr : peer_addrs) {
    auto p = std::make_unique<Peer>();
    const size_t colon = addr.rfind(':');
    if (colon == std::string::npos) {
      SAC_LOG(Warn) << "tcp: peer address '" << addr
                    << "' has no :port; it will be unreachable";
      p->host = addr;
      p->port = 0;
    } else {
      p->host = addr.substr(0, colon);
      p->port = std::atoi(addr.c_str() + colon + 1);
    }
    peers_.push_back(std::move(p));
  }
}

TcpTransport::~TcpTransport() {
  for (auto& p : peers_) {
    std::lock_guard<std::mutex> lock(p->mu);
    for (int fd : p->idle) ::close(fd);
    p->idle.clear();
  }
}

Result<int> TcpTransport::Checkout(Peer& p) {
  {
    std::lock_guard<std::mutex> lock(p.mu);
    if (!p.idle.empty()) {
      const int fd = p.idle.back();
      p.idle.pop_back();
      return fd;
    }
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(p.port);
  if (::getaddrinfo(p.host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return Status::Unavailable("cannot resolve " + p.host);
  }
  const int fd = ::socket(res->ai_family, res->ai_socktype,
                          res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return Status::Unavailable(std::string("socket: ") +
                               std::strerror(errno));
  }
  SetIoTimeout(fd, opts_.io_timeout_ms);
  const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0) {
    const Status st = Status::Unavailable(
        "connect " + p.host + ":" + port_str + ": " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  SetNoDelay(fd);
  return fd;
}

void TcpTransport::Park(Peer& p, int fd) {
  std::lock_guard<std::mutex> lock(p.mu);
  if (static_cast<int>(p.idle.size()) < opts_.max_idle_per_peer) {
    p.idle.push_back(fd);
  } else {
    ::close(fd);
  }
}

Result<Frame> TcpTransport::Call(int peer, const Frame& request) {
  if (peer < 0 || peer >= static_cast<int>(peers_.size())) {
    return Status::InvalidArgument("tcp: no peer " + std::to_string(peer));
  }
  Peer& p = *peers_[peer];
  SAC_ASSIGN_OR_RETURN(const int fd, Checkout(p));

  Frame req = request;
  req.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  const Status ws = WriteFrame(fd, req);
  if (!ws.ok()) {
    ::close(fd);
    return ws;
  }
  sent_.fetch_add(EncodedSize(req), std::memory_order_relaxed);

  Result<Frame> resp = ReadFrame(fd);
  if (!resp.ok()) {
    ::close(fd);
    return resp.status();
  }
  if (resp.value().seq != req.seq) {
    ::close(fd);
    return Status::DataLoss(
        "tcp: response seq " + std::to_string(resp.value().seq) +
        " does not match request seq " + std::to_string(req.seq));
  }
  received_.fetch_add(EncodedSize(resp.value()),
                      std::memory_order_relaxed);
  Park(p, fd);
  return resp;
}

}  // namespace sac::net
