// TCP stream transport: length-prefixed frames (src/net/frame.h) over
// POSIX sockets. TcpTransport is the driver side -- one connection pool
// per peer, so repeated shuffle RPCs to the same worker reuse a warm
// connection instead of paying a handshake per bucket. TcpServer is the
// worker side -- an accept loop plus one service thread per connection,
// each running read-frame / handle / write-frame until the peer hangs up
// (tools/sac_worker wires it to a dist::WorkerState).
//
// Failure mapping (the coordinator's liveness logic keys off this):
// every socket-level failure -- connect refused, reset, timeout, short
// read -- comes back as Unavailable; corrupt frames come back as
// DataLoss/InvalidArgument from the codec. See docs/DISTRIBUTED.md.
#ifndef SAC_NET_TCP_H_
#define SAC_NET_TCP_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/transport.h"

namespace sac::net {

/// Worker-side listener. Start() binds (port 0 = kernel-assigned, read
/// it back via port()); Stop() shuts the listener and every live
/// connection down and joins all service threads. Handler errors never
/// exist at this layer: the handler returns a frame (protocol errors are
/// kError frames built by the dist layer).
class TcpServer {
 public:
  using Handler = std::function<Frame(const Frame&)>;

  explicit TcpServer(Handler handler) : handler_(std::move(handler)) {}
  ~TcpServer() { Stop(); }

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  Status Start(int port);
  /// The bound port (valid after Start; the ephemeral-port answer).
  int port() const { return port_; }
  /// Idempotent; safe from any thread.
  void Stop();

 private:
  void AcceptLoop();
  void Serve(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::mutex mu_;  // guards stopping_ / conns_ / threads_
  bool stopping_ = false;
  std::vector<int> conns_;
  std::vector<std::thread> threads_;
};

struct TcpOptions {
  /// Send/receive timeout per socket operation; a worker that stops
  /// responding turns into Unavailable instead of a hang.
  int io_timeout_ms = 10000;
  /// Idle connections kept per peer (beyond this, extras close).
  int max_idle_per_peer = 4;
};

/// Driver-side transport over a fixed peer list ("host:port" strings).
/// Connections are created lazily and parked per peer after a successful
/// call; a failed call closes its connection (never re-pooled).
class TcpTransport : public Transport {
 public:
  using Options = TcpOptions;

  explicit TcpTransport(std::vector<std::string> peer_addrs,
                        Options opts = Options());
  ~TcpTransport() override;

  const char* name() const override { return "tcp"; }
  int num_peers() const override {
    return static_cast<int>(peers_.size());
  }
  Result<Frame> Call(int peer, const Frame& request) override;
  uint64_t bytes_sent() const override {
    return sent_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_received() const override {
    return received_.load(std::memory_order_relaxed);
  }

 private:
  struct Peer {
    std::string host;
    int port = 0;
    std::mutex mu;          // guards idle
    std::vector<int> idle;  // warm connections, ready for the next call
  };

  Result<int> Checkout(Peer& p);
  void Park(Peer& p, int fd);

  Options opts_;
  std::vector<std::unique_ptr<Peer>> peers_;
  std::atomic<uint64_t> next_seq_{1};
  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> received_{0};
};

}  // namespace sac::net

#endif  // SAC_NET_TCP_H_
