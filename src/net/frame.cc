#include "src/net/frame.h"

#include <cstring>
#include <string>

namespace sac::net {

namespace {

/// The 256-entry CRC-32 table for the reflected IEEE polynomial,
/// computed once per process.
const uint32_t* CrcTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}

uint64_t ReadU64(const uint8_t* p) {
  return static_cast<uint64_t>(ReadU32(p)) |
         static_cast<uint64_t>(ReadU32(p + 4)) << 32;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t n) {
  const uint32_t* table = CrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void EncodeFrame(const Frame& f, std::vector<uint8_t>* out) {
  out->reserve(out->size() + EncodedSize(f));
  PutU32(out, kFrameMagic);
  PutU32(out, f.type);
  PutU64(out, f.seq);
  PutU32(out, static_cast<uint32_t>(f.payload.size()));
  PutU32(out, Crc32(f.payload.data(), f.payload.size()));
  out->insert(out->end(), f.payload.begin(), f.payload.end());
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t size,
                                      size_t max_payload) {
  if (size < kFrameHeaderBytes) {
    return Status::DataLoss("truncated frame header: " +
                            std::to_string(size) + " of " +
                            std::to_string(kFrameHeaderBytes) + " bytes");
  }
  if (ReadU32(data) != kFrameMagic) {
    return Status::DataLoss("bad frame magic");
  }
  FrameHeader h;
  h.type = ReadU32(data + 4);
  h.seq = ReadU64(data + 8);
  h.payload_len = ReadU32(data + 16);
  h.crc = ReadU32(data + 20);
  if (h.payload_len > max_payload) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(h.payload_len) +
        " bytes exceeds the " + std::to_string(max_payload) + "-byte cap");
  }
  return h;
}

Status CheckPayloadCrc(const FrameHeader& h, const uint8_t* payload) {
  const uint32_t got = Crc32(payload, h.payload_len);
  if (got != h.crc) {
    return Status::DataLoss("frame CRC mismatch (header says " +
                            std::to_string(h.crc) + ", payload hashes to " +
                            std::to_string(got) + ")");
  }
  return Status::OK();
}

Result<Frame> DecodeFrame(const uint8_t* data, size_t size,
                          size_t max_payload) {
  SAC_ASSIGN_OR_RETURN(FrameHeader h,
                       DecodeFrameHeader(data, size, max_payload));
  if (size < kFrameHeaderBytes + h.payload_len) {
    return Status::DataLoss(
        "truncated frame payload: " +
        std::to_string(size - kFrameHeaderBytes) + " of " +
        std::to_string(h.payload_len) + " bytes");
  }
  if (size > kFrameHeaderBytes + h.payload_len) {
    return Status::DataLoss("trailing bytes after frame payload");
  }
  SAC_RETURN_NOT_OK(CheckPayloadCrc(h, data + kFrameHeaderBytes));
  Frame f;
  f.type = h.type;
  f.seq = h.seq;
  f.payload.assign(data + kFrameHeaderBytes,
                   data + kFrameHeaderBytes + h.payload_len);
  return f;
}

}  // namespace sac::net
