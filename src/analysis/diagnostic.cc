#include "src/analysis/diagnostic.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace sac::analysis {

const char* SeverityName(Diagnostic::Severity s) {
  switch (s) {
    case Diagnostic::Severity::kNote: return "note";
    case Diagnostic::Severity::kWarning: return "warning";
    case Diagnostic::Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::Render(const std::string& file) const {
  std::ostringstream os;
  os << file << ":";
  if (span.IsSet()) {
    os << span.begin.line << ":" << span.begin.col << ":";
  }
  os << " " << SeverityName(severity) << " [" << code << "] " << message;
  return os.str();
}

namespace {

Diagnostic Make(Diagnostic::Severity sev, std::string code,
                std::string message, comp::Span span) {
  Diagnostic d;
  d.severity = sev;
  d.code = std::move(code);
  d.message = std::move(message);
  d.span = span;
  return d;
}

}  // namespace

Diagnostic Error(std::string code, std::string message, comp::Span span) {
  return Make(Diagnostic::Severity::kError, std::move(code),
              std::move(message), span);
}

Diagnostic Warning(std::string code, std::string message, comp::Span span) {
  return Make(Diagnostic::Severity::kWarning, std::move(code),
              std::move(message), span);
}

Diagnostic Note(std::string code, std::string message, comp::Span span) {
  return Make(Diagnostic::Severity::kNote, std::move(code),
              std::move(message), span);
}

bool HasErrors(const std::vector<Diagnostic>& ds) {
  return std::any_of(ds.begin(), ds.end(), [](const Diagnostic& d) {
    return d.severity == Diagnostic::Severity::kError;
  });
}

void SortDiagnostics(std::vector<Diagnostic>* ds) {
  auto rank = [](const Diagnostic& d) {
    // Unknown positions sort last; errors first within a position.
    const int line = d.span.IsSet() ? d.span.begin.line : 1 << 30;
    const int col = d.span.IsSet() ? d.span.begin.col : 1 << 30;
    const int sev = d.severity == Diagnostic::Severity::kError ? 0
                    : d.severity == Diagnostic::Severity::kWarning ? 1
                                                                   : 2;
    return std::make_tuple(line, col, sev);
  };
  std::stable_sort(ds->begin(), ds->end(),
                   [&](const Diagnostic& a, const Diagnostic& b) {
                     return rank(a) < rank(b);
                   });
}

std::string RenderAll(const std::vector<Diagnostic>& ds,
                      const std::string& file) {
  std::string out;
  for (const Diagnostic& d : ds) {
    out += d.Render(file);
    out += "\n";
  }
  return out;
}

}  // namespace sac::analysis
