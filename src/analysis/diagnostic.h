// Structured diagnostics for the static analyzer (src/analysis/): every
// checker/linter finding carries a severity, a stable rule code (SAC-Exxx
// for errors, SAC-Wxx for plan warnings), a human message, and the source
// span of the construct that triggered it. Rendering follows the familiar
// compiler format `file:line:col: severity [CODE] message`.
#ifndef SAC_ANALYSIS_DIAGNOSTIC_H_
#define SAC_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "src/comp/ast.h"

namespace sac::analysis {

struct Diagnostic {
  enum class Severity { kNote, kWarning, kError };

  Severity severity = Severity::kWarning;
  std::string code;     // "SAC-E004", "SAC-W03", ...
  std::string message;  // one line, no trailing period needed
  comp::Span span;      // begin drives the file:line:col prefix
  /// Bytes the finding is about (recomputed / shuffled / saved), when the
  /// quantified rules could size it from the bindings; 0 = not sized.
  /// Emitted as the `estimatedBytes` SARIF property.
  double estimated_bytes = 0;

  /// "file:line:col: error [SAC-E004] message" (or "file: ..." when the
  /// span is unknown).
  std::string Render(const std::string& file) const;
};

const char* SeverityName(Diagnostic::Severity s);

Diagnostic Error(std::string code, std::string message, comp::Span span);
Diagnostic Warning(std::string code, std::string message, comp::Span span);
Diagnostic Note(std::string code, std::string message, comp::Span span);

bool HasErrors(const std::vector<Diagnostic>& ds);

/// Stable-sorts by source position (diagnostics without a position go
/// last), errors before warnings at the same position.
void SortDiagnostics(std::vector<Diagnostic>* ds);

/// One rendered line per diagnostic, each newline-terminated.
std::string RenderAll(const std::vector<Diagnostic>& ds,
                      const std::string& file);

}  // namespace sac::analysis

#endif  // SAC_ANALYSIS_DIAGNOSTIC_H_
