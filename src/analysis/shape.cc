#include "src/analysis/shape.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace sac::analysis {

using planner::Binding;
using planner::PlanNode;
using planner::PlanNodePtr;

namespace {

int64_t CeilDiv(const int64_t a, const int64_t b) {
  return b > 0 ? (a + b - 1) / b : 0;
}

double TileBytes(const int64_t block) {
  return static_cast<double>(block) * static_cast<double>(block) *
             static_cast<double>(sizeof(double)) +
         kRecordOverheadBytes;
}

/// Abstract value of a bound source array.
SymbolicShape SourceShape(const planner::Bindings* binds,
                          const std::string& name, const int parallelism) {
  SymbolicShape s;
  s.num_partitions = parallelism;
  if (binds == nullptr) return s;
  const auto it = binds->find(name);
  if (it == binds->end()) return s;
  const Binding& b = it->second;
  switch (b.kind) {
    case Binding::Kind::kTiled: {
      if (b.tiled.rows <= 0 || b.tiled.cols <= 0 || b.tiled.block <= 0) break;
      s.known = true;
      s.grid_rows = CeilDiv(b.tiled.rows, b.tiled.block);
      s.grid_cols = CeilDiv(b.tiled.cols, b.tiled.block);
      s.block = b.tiled.block;
      s.records = static_cast<double>(s.grid_rows) *
                  static_cast<double>(s.grid_cols);
      s.bytes_per_record = TileBytes(s.block);
      s.distinct_keys = s.records;
      break;
    }
    case Binding::Kind::kBlockVector: {
      if (b.vec.size <= 0 || b.vec.block <= 0) break;
      s.known = true;
      s.grid_rows = CeilDiv(b.vec.size, b.vec.block);
      s.grid_cols = 1;
      s.block = b.vec.block;
      s.records = static_cast<double>(s.grid_rows);
      s.bytes_per_record =
          static_cast<double>(b.vec.block) * sizeof(double) +
          kRecordOverheadBytes;
      s.distinct_keys = s.records;
      break;
    }
    case Binding::Kind::kCoo: {
      if (b.coo.rows <= 0 || b.coo.cols <= 0) break;
      // Dense-content COO: one ((i,j),v) record per element.
      s.known = true;
      s.records = static_cast<double>(b.coo.rows) *
                  static_cast<double>(b.coo.cols);
      s.bytes_per_record = 3 * sizeof(double) + kRecordOverheadBytes / 2;
      s.distinct_keys = s.records;
      break;
    }
    case Binding::Kind::kScalar:
    case Binding::Kind::kLocal:
      break;  // driver-side; never a distributed source node
  }
  return s;
}

const SymbolicShape& InputShape(const ShapeMap& m, const PlanNodePtr& in) {
  static const SymbolicShape kTop;
  if (in == nullptr) return kTop;
  const auto it = m.find(in.get());
  return it != m.end() ? it->second : kTop;
}

/// Walks through narrow nodes to the source underneath (used to size the
/// group-by-join replication, whose factor depends on the *sibling*
/// operand's grid).
const PlanNode* SourceBelow(const PlanNode* n) {
  while (n != nullptr && n->op != PlanNode::Op::kSource) {
    n = n->inputs.empty() ? nullptr : n->inputs[0].get();
  }
  return n;
}

SymbolicShape NarrowShape(const PlanNode& n, const SymbolicShape& in) {
  SymbolicShape s = in;
  s.flops = 0;
  const std::string& label = n.label;
  if (label == "partialProducts") {
    // One partial output tile per joined pair; the multiply work of the
    // 5.3 plan happens here: 2*b^3 flops per pair.
    s.bytes_per_record = TileBytes(in.block);
    s.flops = in.known ? in.records * 2.0 * std::pow(
                                                static_cast<double>(in.block),
                                                3.0)
                       : 0;
    return s;
  }
  if (label == "partialAggregates") {
    // Axis reduction: every tile folds into one block-sized partial.
    s.bytes_per_record =
        static_cast<double>(in.block) * sizeof(double) + kRecordOverheadBytes;
    s.distinct_keys =
        static_cast<double>(std::max(in.grid_rows, in.grid_cols));
    s.flops = in.known ? in.records * static_cast<double>(in.block) *
                             static_cast<double>(in.block)
                       : 0;
    return s;
  }
  if (label == "summaMultiply") {
    // cogroupPanels already shaped the groups as the output grid (and
    // carries the multiply flops); one output tile per group.
    s.bytes_per_record = TileBytes(in.block);
    s.distinct_keys = in.records;
    return s;
  }
  if (label == "replicateA" || label == "replicateB") {
    // Replication factor depends on the sibling operand; resolved by the
    // cogroupPanels transfer below, which rewrites this entry.
    s.known = false;
    return s;
  }
  // keyTiles / keyByJoinDim / finalize / zipTiles / mapTiles / filters /
  // anything unknown: record count and payload preserved (a conservative
  // identity -- filters could shrink, which only over-estimates).
  return s;
}

void ShuffleDefaults(const PlanNode& n, const SymbolicShape& in,
                     SymbolicShape* s) {
  s->spread = SymbolicShape::Spread::kSingleExecutor;
  s->num_partitions = n.partitioning.num_partitions > 0
                          ? n.partitioning.num_partitions
                          : in.num_partitions;
}

}  // namespace

ShapeMap InferShapes(const PlanGraph& g) {
  ShapeMap out;
  const int parallelism =
      g.default_parallelism > 0 ? g.default_parallelism : 8;
  for (const PlanNodePtr& node : g.nodes) {  // creation order = topological
    const PlanNode& n = *node;
    const SymbolicShape a =
        n.inputs.empty() ? SymbolicShape{} : InputShape(out, n.inputs[0]);
    const SymbolicShape b =
        n.inputs.size() > 1 ? InputShape(out, n.inputs[1]) : SymbolicShape{};
    SymbolicShape s;
    switch (n.op) {
      case PlanNode::Op::kSource:
        s = SourceShape(g.binds, n.source, parallelism);
        break;
      case PlanNode::Op::kMap:
      case PlanNode::Op::kFlatMap:
      case PlanNode::Op::kFilter:
      case PlanNode::Op::kMapPartitions:
        s = NarrowShape(n, a);
        break;
      case PlanNode::Op::kUnion: {
        s.known = a.known && b.known;
        s.records = a.records + b.records;
        s.bytes_per_record = std::max(a.bytes_per_record, b.bytes_per_record);
        s.num_partitions = a.num_partitions + b.num_partitions;
        s.spread = (a.spread == SymbolicShape::Spread::kUniform ||
                    b.spread == SymbolicShape::Spread::kUniform)
                       ? SymbolicShape::Spread::kUniform
                       : SymbolicShape::Spread::kSingleExecutor;
        if (s.known && a.block == b.block && a.grid_cols == b.grid_cols) {
          s.block = a.block;
          s.grid_rows = a.grid_rows + b.grid_rows;
          s.grid_cols = a.grid_cols;
          s.distinct_keys = a.distinct_keys + b.distinct_keys;
        } else {
          // Mismatched tile extents merge to top: downstream estimates
          // would silently mix incompatible grids.
          s.known = false;
        }
        break;
      }
      case PlanNode::Op::kJoin: {
        ShuffleDefaults(n, a, &s);
        s.num_partitions = n.partitioning.num_partitions > 0
                               ? n.partitioning.num_partitions
                               : std::max(a.num_partitions, b.num_partitions);
        s.known = a.known && b.known;
        s.block = std::max(a.block, b.block);
        if (n.label == "joinTiles" && s.known) {
          // 5.3 matmul join on the shared index: |A| * |B| / shared-dim
          // matches (g^3 for square grids); output keyed by the output
          // coordinate space (A-rows x B-cols panels).
          const double shared = std::max(
              1.0, static_cast<double>(std::min(
                       a.grid_cols > 0 ? a.grid_cols : a.grid_rows,
                       b.grid_rows > 0 ? b.grid_rows : a.grid_cols)));
          s.records = a.records * b.records / shared;
          s.distinct_keys = static_cast<double>(a.grid_rows) *
                            static_cast<double>(
                                b.grid_cols > 1 ? b.grid_cols : 1);
        } else {
          // Co-partitioned zip joins (5.1): 1:1 matches.
          s.records = std::min(a.records, b.records);
          s.distinct_keys = s.records;
        }
        s.bytes_per_record =
            a.bytes_per_record + b.bytes_per_record - kRecordOverheadBytes;
        break;
      }
      case PlanNode::Op::kCoGroup: {
        ShuffleDefaults(n, a, &s);
        s.num_partitions = n.partitioning.num_partitions > 0
                               ? n.partitioning.num_partitions
                               : std::max(a.num_partitions, b.num_partitions);
        const PlanNode* src_a = nullptr;
        const PlanNode* src_b = nullptr;
        if (n.label == "cogroupPanels" && n.inputs.size() == 2) {
          src_a = SourceBelow(n.inputs[0].get());
          src_b = SourceBelow(n.inputs[1].get());
        }
        const SymbolicShape sa =
            src_a != nullptr ? out[src_a] : SymbolicShape{};
        const SymbolicShape sb =
            src_b != nullptr ? out[src_b] : SymbolicShape{};
        if (sa.known && sb.known && sa.block == sb.block) {
          // 5.4 SUMMA group-by-join: A replicated across B's column
          // panels, B across A's row panels; one group per output tile.
          const double out_gr = static_cast<double>(sa.grid_rows);
          const double out_gc = static_cast<double>(sb.grid_cols);
          SymbolicShape ra = sa;
          ra.records = sa.records * out_gc;
          SymbolicShape rb = sb;
          rb.records = sb.records * out_gr;
          out[n.inputs[0].get()] = ra;
          out[n.inputs[1].get()] = rb;
          s.known = true;
          s.block = sa.block;
          s.grid_rows = sa.grid_rows;
          s.grid_cols = sb.grid_cols;
          s.records = out_gr * out_gc;
          s.distinct_keys = s.records;
          s.bytes_per_record =
              (static_cast<double>(sa.grid_cols) +
               static_cast<double>(sb.grid_rows)) *
                  (TileBytes(sa.block) - kRecordOverheadBytes) +
              kRecordOverheadBytes;
          s.flops = out_gr * out_gc * static_cast<double>(sa.grid_cols) *
                    2.0 * std::pow(static_cast<double>(sa.block), 3.0);
        } else {
          // Generic cogroup: group count bounded by the inputs' records.
          s.known = a.known && b.known;
          s.records = a.records + b.records;
          s.bytes_per_record =
              std::max(a.bytes_per_record, b.bytes_per_record);
          s.block = std::max(a.block, b.block);
        }
        break;
      }
      case PlanNode::Op::kReduceByKey: {
        ShuffleDefaults(n, a, &s);
        s.known = a.known;
        const double d = a.distinct_keys > 0
                             ? std::min(a.distinct_keys, a.records)
                             : a.records;
        s.records = d;
        s.distinct_keys = d;
        s.bytes_per_record = a.bytes_per_record;
        s.block = a.block;
        break;
      }
      case PlanNode::Op::kGroupByKey: {
        ShuffleDefaults(n, a, &s);
        s.known = a.known;
        const double d = a.distinct_keys > 0
                             ? std::min(a.distinct_keys, a.records)
                             : a.records;
        s.records = d;
        s.distinct_keys = d;
        s.bytes_per_record =
            d > 0 ? a.total_bytes() / d + kRecordOverheadBytes : 0;
        s.block = a.block;
        break;
      }
      case PlanNode::Op::kPartitionBy:
        ShuffleDefaults(n, a, &s);
        s.known = a.known;
        s.records = a.records;
        s.distinct_keys = a.distinct_keys;
        s.bytes_per_record = a.bytes_per_record;
        s.block = a.block;
        s.grid_rows = a.grid_rows;
        s.grid_cols = a.grid_cols;
        break;
      case PlanNode::Op::kCollect: {
        s.known = true;
        for (const PlanNodePtr& in : n.inputs) {
          const SymbolicShape& is = InputShape(out, in);
          s.known = s.known && is.known;
          s.records += is.records;
          s.bytes_per_record =
              std::max(s.bytes_per_record, is.bytes_per_record);
          s.num_partitions += is.num_partitions;
        }
        break;
      }
    }
    out[node.get()] = s;
  }
  return out;
}

}  // namespace sac::analysis
