// The pass framework: AnalyzeQuery runs the whole static front half of
// the pipeline -- parse, comprehension check, normalize, plan, DAG
// verification, plan lint -- without executing anything, and returns every
// diagnostic plus the chosen strategy and a rendering of the symbolic
// plan. Both the `sac_lint` CLI and Sac::Analyze/Explain are thin
// wrappers over this.
#ifndef SAC_ANALYSIS_ANALYSIS_H_
#define SAC_ANALYSIS_ANALYSIS_H_

#include <string>
#include <vector>

#include "src/analysis/check.h"
#include "src/analysis/diagnostic.h"
#include "src/analysis/lint.h"
#include "src/analysis/verify.h"
#include "src/common/status.h"
#include "src/planner/plan.h"
#include "src/planner/planner.h"

namespace sac::analysis {

struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;  // sorted by position
  std::string strategy;     // StrategyName, "" when planning was skipped
  std::string explanation;  // the planner's one-line rationale
  std::string plan_tree;    // PlanToString of the symbolic DAG ("" if none)

  bool has_errors() const { return HasErrors(diagnostics); }

  /// Diagnostics (one per line, `file:line:col: ...`) followed by an
  /// EXPLAIN block when a plan was produced.
  std::string Render(const std::string& file) const;
};

/// Statically analyzes `src` against `binds`. Phases:
///   1. parse       -- failures become SAC-E000 diagnostics
///   2. check       -- comprehension checker (SAC-E001..E005) on the
///                     parsed tree, where spans are still intact
///   3. normalize + plan -- skipped when phase 2 errored; planner
///                     rejection becomes SAC-E006
///   4. verify      -- DAG invariants (violations become SAC-E007)
///   5. lint        -- registered plan rules (SAC-W..)
/// The Result is only an error Status for internal failures; user-level
/// problems always land in the report's diagnostics.
///
/// `memory_budget_bytes` feeds the SAC-W06 resident-set rule (0 =
/// unlimited, rule off); the SAC_MEM_BUDGET env var overrides it, exactly
/// as it overrides the engine's runtime budget.
Result<AnalysisReport> AnalyzeQuery(
    const std::string& src, const planner::Bindings& binds,
    const planner::PlannerOptions& opts = planner::PlannerOptions(),
    uint64_t memory_budget_bytes = 0);

}  // namespace sac::analysis

#endif  // SAC_ANALYSIS_ANALYSIS_H_
