// The pass framework: AnalyzeQuery runs the whole static front half of
// the pipeline -- parse, comprehension check, normalize, plan, DAG
// verification, plan lint -- without executing anything, and returns every
// diagnostic plus the chosen strategy and a rendering of the symbolic
// plan. Both the `sac_lint` CLI and Sac::Analyze/Explain are thin
// wrappers over this.
#ifndef SAC_ANALYSIS_ANALYSIS_H_
#define SAC_ANALYSIS_ANALYSIS_H_

#include <map>
#include <string>
#include <vector>

#include "src/analysis/check.h"
#include "src/analysis/cost.h"
#include "src/analysis/diagnostic.h"
#include "src/analysis/lint.h"
#include "src/analysis/verify.h"
#include "src/common/status.h"
#include "src/planner/plan.h"
#include "src/planner/planner.h"

namespace sac::analysis {

struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;  // sorted by position
  std::string strategy;     // StrategyName, "" when planning was skipped
  std::string explanation;  // the planner's one-line rationale
  std::string plan_tree;    // PlanToString of the symbolic DAG ("" if none)

  /// Cost-model output (docs/COST_MODEL.md), copied out of the compiled
  /// plan's CostEstimate into plain data so the report owns no plan-node
  /// pointers. `has_cost` is false when planning was skipped or produced
  /// no symbolic plan.
  struct CostRow {
    std::string node;  // "join joinTiles", "source A", ...
    bool known = false;
    double records = 0;
    double output_bytes = 0;
    double local_bytes = 0;   // shuffle bytes moved same-executor
    double cross_bytes = 0;   // shuffle bytes moved cross-executor
    double tasks = 0;
    double flops = 0;
    int num_partitions = 0;
  };
  bool has_cost = false;
  bool cost_exact = false;  // every node's extents resolved from bindings
  double est_ms = 0;
  double resident_bytes = 0;
  double shuffle_bytes = 0;
  double cross_bytes = 0;
  double tasks = 0;
  double flops = 0;
  std::vector<CostRow> cost_rows;
  /// Predicted shuffle bytes per ENGINE stage label ("join", "cogroup",
  /// ...), the figures `sac_prof predcheck` compares against measured.
  std::map<std::string, double> predicted_shuffle_by_label;
  std::string cost_table;  // RenderCostTable output ("" when no cost)

  bool has_errors() const { return HasErrors(diagnostics); }

  /// Diagnostics (one per line, `file:line:col: ...`) followed by an
  /// EXPLAIN block when a plan was produced.
  std::string Render(const std::string& file) const;
};

/// Machine-readable rendering of one report: diagnostics (code, severity,
/// line/col, message, estimated_bytes), strategy, and the cost block.
/// Parses back with json::Parse (see the analysis.json round-trip test).
std::string RenderAnalysisJson(const AnalysisReport& report,
                               const std::string& file);

/// Statically analyzes `src` against `binds`. Phases:
///   1. parse       -- failures become SAC-E000 diagnostics
///   2. check       -- comprehension checker (SAC-E001..E005) on the
///                     parsed tree, where spans are still intact
///   3. normalize + plan -- skipped when phase 2 errored; planner
///                     rejection becomes SAC-E006
///   4. verify      -- DAG invariants (violations become SAC-E007)
///   5. lint        -- registered plan rules (SAC-W..)
/// The Result is only an error Status for internal failures; user-level
/// problems always land in the report's diagnostics.
///
/// `memory_budget_bytes` feeds the SAC-W06 resident-set rule (0 =
/// unlimited, rule off); the SAC_MEM_BUDGET env var overrides it, exactly
/// as it overrides the engine's runtime budget.
Result<AnalysisReport> AnalyzeQuery(
    const std::string& src, const planner::Bindings& binds,
    const planner::PlannerOptions& opts = planner::PlannerOptions(),
    uint64_t memory_budget_bytes = 0);

}  // namespace sac::analysis

#endif  // SAC_ANALYSIS_ANALYSIS_H_
