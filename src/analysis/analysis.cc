#include "src/analysis/analysis.h"

#include <cctype>
#include <sstream>
#include <utility>

#include "src/common/trace.h"
#include "src/comp/parser.h"
#include "src/comp/rewrite.h"
#include "src/runtime/memory.h"

namespace sac::analysis {

namespace {

/// Parser/lexer statuses embed the position as a trailing "... at L:C";
/// recover it so parse errors render like every other diagnostic.
comp::Span SpanFromMessage(const std::string& msg) {
  const size_t at = msg.rfind(" at ");
  if (at == std::string::npos) return {};
  int line = 0, col = 0;
  const char* p = msg.c_str() + at + 4;
  while (std::isdigit(static_cast<unsigned char>(*p))) {
    line = line * 10 + (*p++ - '0');
  }
  if (*p != ':') return {};
  ++p;
  while (std::isdigit(static_cast<unsigned char>(*p))) {
    col = col * 10 + (*p++ - '0');
  }
  if (line <= 0 || col <= 0) return {};
  const comp::Pos pos{line, col};
  return comp::Span{pos, pos};
}

comp::Span SpanOf(const comp::ExprPtr& e) {
  if (e == nullptr) return {};
  if (e->span.IsSet()) return e->span;
  return comp::Span{e->pos, e->pos};
}

}  // namespace

std::string AnalysisReport::Render(const std::string& file) const {
  std::string out = RenderAll(diagnostics, file);
  if (!strategy.empty()) {
    out += "strategy: " + strategy + "\n";
    if (!explanation.empty()) out += "  " + explanation + "\n";
  }
  if (!plan_tree.empty()) {
    out += "plan:\n";
    // Indent the tree two spaces per line.
    size_t start = 0;
    while (start < plan_tree.size()) {
      size_t end = plan_tree.find('\n', start);
      if (end == std::string::npos) end = plan_tree.size();
      out += "  " + plan_tree.substr(start, end - start) + "\n";
      start = end + 1;
    }
  }
  if (has_cost && !cost_table.empty()) out += cost_table;
  return out;
}

std::string RenderAnalysisJson(const AnalysisReport& report,
                               const std::string& file) {
  std::ostringstream os;
  os.precision(15);
  os << "{\"analysis_version\":1";
  os << ",\"file\":\"" << trace::JsonEscape(file) << "\"";
  os << ",\"strategy\":\"" << trace::JsonEscape(report.strategy) << "\"";
  os << ",\"explanation\":\"" << trace::JsonEscape(report.explanation)
     << "\"";
  os << ",\"diagnostics\":[";
  for (size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i > 0) os << ",";
    os << "{\"code\":\"" << trace::JsonEscape(d.code) << "\"";
    os << ",\"severity\":\"" << SeverityName(d.severity) << "\"";
    os << ",\"line\":" << d.span.begin.line;
    os << ",\"col\":" << d.span.begin.col;
    os << ",\"message\":\"" << trace::JsonEscape(d.message) << "\"";
    if (d.estimated_bytes > 0) {
      os << ",\"estimated_bytes\":" << d.estimated_bytes;
    }
    os << "}";
  }
  os << "]";
  if (report.has_cost) {
    os << ",\"cost\":{\"exact\":" << (report.cost_exact ? "true" : "false");
    os << ",\"est_ms\":" << report.est_ms;
    os << ",\"resident_bytes\":" << report.resident_bytes;
    os << ",\"shuffle_bytes\":" << report.shuffle_bytes;
    os << ",\"cross_executor_bytes\":" << report.cross_bytes;
    os << ",\"tasks\":" << report.tasks;
    os << ",\"flops\":" << report.flops;
    os << ",\"nodes\":[";
    for (size_t i = 0; i < report.cost_rows.size(); ++i) {
      const AnalysisReport::CostRow& r = report.cost_rows[i];
      if (i > 0) os << ",";
      os << "{\"node\":\"" << trace::JsonEscape(r.node) << "\"";
      os << ",\"known\":" << (r.known ? "true" : "false");
      os << ",\"records\":" << r.records;
      os << ",\"output_bytes\":" << r.output_bytes;
      os << ",\"local_shuffle_bytes\":" << r.local_bytes;
      os << ",\"cross_executor_bytes\":" << r.cross_bytes;
      os << ",\"tasks\":" << r.tasks;
      os << ",\"flops\":" << r.flops;
      os << ",\"num_partitions\":" << r.num_partitions << "}";
    }
    os << "]";
    os << ",\"predicted_shuffle_by_label\":{";
    bool first = true;
    for (const auto& [label, bytes] : report.predicted_shuffle_by_label) {
      if (!first) os << ",";
      first = false;
      os << "\"" << trace::JsonEscape(label) << "\":" << bytes;
    }
    os << "}}";
  }
  os << "}\n";
  return os.str();
}

Result<AnalysisReport> AnalyzeQuery(const std::string& src,
                                    const planner::Bindings& binds,
                                    const planner::PlannerOptions& opts,
                                    uint64_t memory_budget_bytes) {
  AnalysisReport report;

  // Phase 1: parse.
  Result<comp::ExprPtr> parsed = comp::Parse(src);
  if (!parsed.ok()) {
    report.diagnostics.push_back(
        Error("SAC-E000", parsed.status().message(),
              SpanFromMessage(parsed.status().message())));
    return report;
  }
  const comp::ExprPtr& query = parsed.value();

  // Phase 2: comprehension checks on the parsed tree (spans intact).
  const SymbolTable syms = SymbolsFromBindings(binds);
  CheckComprehension(query, syms, &report.diagnostics);
  if (HasErrors(report.diagnostics)) {
    SortDiagnostics(&report.diagnostics);
    return report;
  }

  // Phase 3: normalize and plan.
  Result<comp::ExprPtr> norm =
      comp::Normalize(query, [&binds](const std::string& name) {
        auto it = binds.find(name);
        return it != binds.end() &&
               it->second.kind != planner::Binding::Kind::kScalar;
      });
  if (!norm.ok()) {
    report.diagnostics.push_back(Error("SAC-E006", norm.status().message(),
                                       SpanOf(query)));
    SortDiagnostics(&report.diagnostics);
    return report;
  }
  Result<planner::CompiledQuery> compiled =
      planner::CompileQuery(norm.value(), binds, opts);
  if (!compiled.ok()) {
    report.diagnostics.push_back(
        Error("SAC-E006",
              "no translation strategy applies: " +
                  compiled.status().message(),
              SpanOf(query)));
    SortDiagnostics(&report.diagnostics);
    return report;
  }
  const planner::CompiledQuery& q = compiled.value();
  report.strategy = planner::StrategyName(q.strategy);
  report.explanation = q.explanation;
  if (q.plan != nullptr) report.plan_tree = planner::PlanToString(q.plan);

  // Phases 4 + 5: DAG invariants, then the lint rules. The env var wins
  // over the configured budget, mirroring the engine's runtime behavior,
  // so `SAC_MEM_BUDGET=... sac_lint ...` previews the out-of-core
  // warnings any binary would run under.
  const PlanGraph graph = PlanGraph::FromQuery(
      q, &binds, runtime::memory::BudgetFromEnv(memory_budget_bytes),
      opts.cluster);
  Status verified = VerifyPlan(graph);
  if (!verified.ok()) {
    report.diagnostics.push_back(
        Error("SAC-E007", verified.message(), SpanOf(query)));
  }
  LintPlan(graph, &report.diagnostics);

  // Cost model over the symbolic plan (plain data only; the report must
  // not keep pointers into the plan it outlives).
  if (!graph.nodes.empty()) {
    const CostEstimate est = EstimateCost(graph);
    report.has_cost = true;
    report.cost_exact = est.exact;
    report.est_ms = est.est_ms;
    report.resident_bytes = est.resident_bytes;
    report.shuffle_bytes = est.totals.shuffle_bytes;
    report.cross_bytes = est.totals.cross_bytes;
    report.tasks = est.totals.tasks;
    report.flops = est.totals.flops;
    report.predicted_shuffle_by_label = est.shuffle_by_engine_label;
    report.cost_table = RenderCostTable(est);
    for (const CostEstimate::Item& item : est.items) {
      AnalysisReport::CostRow row;
      if (item.node != nullptr) {
        row.node = planner::PlanOpName(item.node->op);
        const std::string& name = item.node->op == planner::PlanNode::Op::kSource
                                      ? item.node->source
                                      : item.node->label;
        if (!name.empty()) row.node += " " + name;
      }
      row.known = item.shape.known;
      row.records = item.shape.records;
      row.output_bytes = item.cost.output_bytes;
      row.local_bytes = item.cost.local_bytes;
      row.cross_bytes = item.cost.cross_bytes;
      row.tasks = item.cost.tasks;
      row.flops = item.cost.flops;
      row.num_partitions = item.shape.num_partitions;
      report.cost_rows.push_back(std::move(row));
    }
  }

  SortDiagnostics(&report.diagnostics);
  return report;
}

}  // namespace sac::analysis
