#include "src/analysis/analysis.h"

#include <cctype>
#include <utility>

#include "src/comp/parser.h"
#include "src/comp/rewrite.h"
#include "src/runtime/memory.h"

namespace sac::analysis {

namespace {

/// Parser/lexer statuses embed the position as a trailing "... at L:C";
/// recover it so parse errors render like every other diagnostic.
comp::Span SpanFromMessage(const std::string& msg) {
  const size_t at = msg.rfind(" at ");
  if (at == std::string::npos) return {};
  int line = 0, col = 0;
  const char* p = msg.c_str() + at + 4;
  while (std::isdigit(static_cast<unsigned char>(*p))) {
    line = line * 10 + (*p++ - '0');
  }
  if (*p != ':') return {};
  ++p;
  while (std::isdigit(static_cast<unsigned char>(*p))) {
    col = col * 10 + (*p++ - '0');
  }
  if (line <= 0 || col <= 0) return {};
  const comp::Pos pos{line, col};
  return comp::Span{pos, pos};
}

comp::Span SpanOf(const comp::ExprPtr& e) {
  if (e == nullptr) return {};
  if (e->span.IsSet()) return e->span;
  return comp::Span{e->pos, e->pos};
}

}  // namespace

std::string AnalysisReport::Render(const std::string& file) const {
  std::string out = RenderAll(diagnostics, file);
  if (!strategy.empty()) {
    out += "strategy: " + strategy + "\n";
    if (!explanation.empty()) out += "  " + explanation + "\n";
  }
  if (!plan_tree.empty()) {
    out += "plan:\n";
    // Indent the tree two spaces per line.
    size_t start = 0;
    while (start < plan_tree.size()) {
      size_t end = plan_tree.find('\n', start);
      if (end == std::string::npos) end = plan_tree.size();
      out += "  " + plan_tree.substr(start, end - start) + "\n";
      start = end + 1;
    }
  }
  return out;
}

Result<AnalysisReport> AnalyzeQuery(const std::string& src,
                                    const planner::Bindings& binds,
                                    const planner::PlannerOptions& opts,
                                    uint64_t memory_budget_bytes) {
  AnalysisReport report;

  // Phase 1: parse.
  Result<comp::ExprPtr> parsed = comp::Parse(src);
  if (!parsed.ok()) {
    report.diagnostics.push_back(
        Error("SAC-E000", parsed.status().message(),
              SpanFromMessage(parsed.status().message())));
    return report;
  }
  const comp::ExprPtr& query = parsed.value();

  // Phase 2: comprehension checks on the parsed tree (spans intact).
  const SymbolTable syms = SymbolsFromBindings(binds);
  CheckComprehension(query, syms, &report.diagnostics);
  if (HasErrors(report.diagnostics)) {
    SortDiagnostics(&report.diagnostics);
    return report;
  }

  // Phase 3: normalize and plan.
  Result<comp::ExprPtr> norm =
      comp::Normalize(query, [&binds](const std::string& name) {
        auto it = binds.find(name);
        return it != binds.end() &&
               it->second.kind != planner::Binding::Kind::kScalar;
      });
  if (!norm.ok()) {
    report.diagnostics.push_back(Error("SAC-E006", norm.status().message(),
                                       SpanOf(query)));
    SortDiagnostics(&report.diagnostics);
    return report;
  }
  Result<planner::CompiledQuery> compiled =
      planner::CompileQuery(norm.value(), binds, opts);
  if (!compiled.ok()) {
    report.diagnostics.push_back(
        Error("SAC-E006",
              "no translation strategy applies: " +
                  compiled.status().message(),
              SpanOf(query)));
    SortDiagnostics(&report.diagnostics);
    return report;
  }
  const planner::CompiledQuery& q = compiled.value();
  report.strategy = planner::StrategyName(q.strategy);
  report.explanation = q.explanation;
  if (q.plan != nullptr) report.plan_tree = planner::PlanToString(q.plan);

  // Phases 4 + 5: DAG invariants, then the lint rules. The env var wins
  // over the configured budget, mirroring the engine's runtime behavior,
  // so `SAC_MEM_BUDGET=... sac_lint ...` previews the out-of-core
  // warnings any binary would run under.
  const PlanGraph graph = PlanGraph::FromQuery(
      q, &binds, runtime::memory::BudgetFromEnv(memory_budget_bytes));
  Status verified = VerifyPlan(graph);
  if (!verified.ok()) {
    report.diagnostics.push_back(
        Error("SAC-E007", verified.message(), SpanOf(query)));
  }
  LintPlan(graph, &report.diagnostics);

  SortDiagnostics(&report.diagnostics);
  return report;
}

}  // namespace sac::analysis
