// The DAG invariant verifier: structural sanity checks over a symbolic
// plan, run before the engine executes anything (Sac::Eval calls it on
// every compiled plan; debug builds assert on violations). A failure here
// is a planner bug, not a user error -- the Status message says which
// invariant broke and at which node.
#ifndef SAC_ANALYSIS_VERIFY_H_
#define SAC_ANALYSIS_VERIFY_H_

#include "src/analysis/lint.h"
#include "src/common/status.h"
#include "src/planner/plan.h"

namespace sac::analysis {

/// Verifies the structural invariants of a symbolic plan DAG:
///   * a non-empty creation record has a root, and every node reachable
///     from the root appears in the creation record;
///   * the graph is acyclic;
///   * operator arity: sources have no input, narrow ops and keyed
///     shuffles exactly one, join/cogroup/union exactly two, collect at
///     least one; no input is null;
///   * keyed shuffles have key_arity >= 1 and agree with their inputs;
///   * preserves_partitioning appears only on narrow ops;
///   * folds_group appears only downstream of groupByKey/cogroup;
///   * sources carry a binding name.
/// OK for an empty graph (purely local strategies run no engine ops).
Status VerifyPlan(const PlanGraph& g);

}  // namespace sac::analysis

#endif  // SAC_ANALYSIS_VERIFY_H_
