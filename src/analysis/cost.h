// The calibrated cost model: evaluates per-node and whole-plan costs --
// shuffle bytes split local/cross-executor with the PR3 accounting model,
// peak resident bytes, task counts, flops, and an estimated wall time --
// over the symbolic shapes of shape.h. The constants are fitted from the
// committed BENCH_*.baseline.json reports (tools/sac_lint --calibrate
// re-derives them); docs/COST_MODEL.md documents the formulas and the
// 2x predicted-vs-measured gate that keeps the model honest.
//
// Clients: the planner's cost-based strategy choice (PlannerOptions::
// auto_strategy), the quantified lint rules (SAC-W02/W05..W08),
// sac_lint --cost / Sac::Explain cost columns, and the per-stage
// shuffle-byte predictions checked by `sac_prof predcheck`.
#ifndef SAC_ANALYSIS_COST_H_
#define SAC_ANALYSIS_COST_H_

#include <map>
#include <string>
#include <vector>

#include "src/analysis/lint.h"
#include "src/analysis/shape.h"
#include "src/planner/plan.h"

namespace sac::analysis {

/// Linear-model constants: est_ms = cross*a + local*b + tasks*c + flops*d
/// (unit conversions inside). Defaults were fitted with
/// `sac_lint --calibrate BENCH_fig4a.baseline.json BENCH_fig4b.baseline.json`
/// against the exact byte/task counters of the committed reports.
struct CostModel {
  double ns_per_cross_byte = 1.2;   // serialize + route + deserialize
  double ns_per_local_byte = 0.35;  // serialize + same-executor handoff
  double us_per_task = 18.0;        // scheduling + dispatch overhead
  double ns_per_flop = 0.15;        // generic blocked tile kernels
  /// Per-backend flop rates (docs/KERNELS.md): the packed microkernel
  /// retires register-tiled FMAs, the jvmlike baseline pays a virtual
  /// call per element access. Measured with bench_abl_backend.
  double ns_per_flop_packed = 0.10;
  double ns_per_flop_jvmlike = 1.1;
};

/// The cost model with ns_per_flop substituted for the named kernel
/// backend ("generic" / "packed" / "jvmlike"; unknown or empty names keep
/// the generic rate). The planner passes ClusterConfig::kernel_backend so
/// strategy choice reflects the flop rate the plan will actually run at.
[[nodiscard]] CostModel CostModelForBackend(const std::string& backend_name);

/// Per-node cost components. Shuffle bytes are attributed to the shuffle
/// node that moves them; flops to the node whose closure computes.
struct NodeCost {
  double shuffle_bytes = 0;  // total moved through this node's shuffle
  double cross_bytes = 0;    // of which cross-executor
  double local_bytes = 0;    // of which same-executor
  double tasks = 0;
  double flops = 0;
  double output_bytes = 0;  // materialized output of the node
};

struct CostEstimate {
  struct Item {
    const planner::PlanNode* node = nullptr;
    SymbolicShape shape;
    NodeCost cost;
  };
  std::vector<Item> items;  // creation order, one per plan node
  NodeCost totals;
  /// Sum of every node's materialized output (the engine evaluates
  /// eagerly), the figure SAC-W06 compares against the memory budget.
  double resident_bytes = 0;
  double est_ms = 0;
  /// Predicted total shuffle bytes keyed by the ENGINE stage label the
  /// shuffle will run under ("join", "cogroup", "reduceByKey", ...) --
  /// comparable against the measured per-stage counters in BENCH reports.
  std::map<std::string, double> shuffle_by_engine_label;
  /// True when every node's shape resolved from the bindings.
  bool exact = false;
};

/// The engine stage label a shuffle plan-node executes under (plan labels
/// like "reduceTiles" differ from the engine's hardcoded stage labels).
[[nodiscard]] const char* EngineShuffleLabel(planner::PlanNode::Op op);

/// Evaluates the cost model over `g` (runs InferShapes internally).
[[nodiscard]] CostEstimate EstimateCost(const PlanGraph& g,
                                        const CostModel& model = CostModel());

/// Strategy advice for the 5.3-vs-5.4 multiply choice: detects a
/// two-operand tiled multiply in `g`, synthesizes the alternative
/// translation's symbolic plan over the same sources, and costs both.
/// `applicable` is false when the plan is not a two-matrix multiply or
/// the extents are unknown.
struct MultiplyAdvice {
  bool applicable = false;
  bool chosen_is_gbj = false;
  double chosen_ms = 0;
  double alternative_ms = 0;
  /// Shuffle bytes the cheaper plan saves over the chosen one (0 when the
  /// chosen plan is already the cheaper one).
  double bytes_saved = 0;
};
[[nodiscard]] MultiplyAdvice AdviseMultiply(
    const PlanGraph& g, const CostModel& model = CostModel());

/// Renders the per-node cost table ("cost:" block of sac_lint --cost and
/// Sac::Explain): one row per node with records, output MiB, shuffle
/// local/cross MiB, tasks and flops, then the totals/est_ms footer.
[[nodiscard]] std::string RenderCostTable(const CostEstimate& est);

}  // namespace sac::analysis

#endif  // SAC_ANALYSIS_COST_H_
