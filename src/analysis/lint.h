// The plan linter: pattern-based warnings over the symbolic physical plan
// (planner::PlanNode DAG) that every translation strategy emits next to
// its executable closure. Rules self-register at static-init time via
// SAC_REGISTER_LINT_RULE, so adding a rule is a single .cc edit.
//
// Rule catalog (warnings):
//   SAC-W01  groupByKey whose groups are folded with an associative
//            combine -- reduceByKey would combine map-side
//   SAC-W02  dataset re-read by several consumers inside an iterative
//            loop without caching
//   SAC-W03  shuffle whose target partitioning already matches its
//            producer's (redundant repartition)
//   SAC-W04  dataset computed but never used (dead plan node)
//   SAC-W05  chained in-loop shuffles with nothing cutting the lineage
//   SAC-W06  estimated resident set exceeds the configured memory budget
//            with no cache/checkpoint cut; expect eviction thrash
//   SAC-W07  multiply strategy suboptimal for the bound extents (the
//            cost model prefers the other 5.3/5.4 translation)
//   SAC-W08  shuffle partition count badly sized for the estimated
//            record count / cluster cores
//
// W02/W05/W06/W07/W08 are quantified: when the symbolic shape pass
// (shape.h) can size the plan from the bindings they report estimated
// bytes and stay silent below a materiality threshold; without bindings
// they fall back to the pattern-match behaviour. See docs/COST_MODEL.md.
#ifndef SAC_ANALYSIS_LINT_H_
#define SAC_ANALYSIS_LINT_H_

#include <cstdint>
#include <vector>

#include "src/analysis/diagnostic.h"
#include "src/planner/plan.h"

namespace sac::analysis {

/// A plan DAG plus the full creation record (plan_nodes may contain nodes
/// unreachable from root -- exactly what SAC-W04 looks for). Bindings,
/// the memory budget and the cluster shape are optional context: rules
/// that need them (SAC-W06 sizes source nodes from their bound shapes,
/// the quantified rules run the shape/cost pass) skip or degrade to
/// pattern matching when they are absent.
struct PlanGraph {
  planner::PlanNodePtr root;
  std::vector<planner::PlanNodePtr> nodes;
  const planner::Bindings* binds = nullptr;
  uint64_t memory_budget_bytes = 0;  // 0 = unlimited (SAC-W06 is off)
  // Cluster shape for the cost model; 0 = unknown (model defaults apply:
  // the ClusterConfig defaults of 4 executors x 1 core, parallelism 8).
  int num_executors = 0;
  int cores_per_executor = 0;
  int default_parallelism = 0;

  static PlanGraph FromQuery(const planner::CompiledQuery& q) {
    return PlanGraph{q.plan, q.plan_nodes};
  }
  static PlanGraph FromQuery(const planner::CompiledQuery& q,
                             const planner::Bindings* binds,
                             uint64_t memory_budget_bytes) {
    return PlanGraph{q.plan, q.plan_nodes, binds, memory_budget_bytes};
  }
  static PlanGraph FromQuery(const planner::CompiledQuery& q,
                             const planner::Bindings* binds,
                             uint64_t memory_budget_bytes,
                             const runtime::ClusterConfig& cluster) {
    return PlanGraph{q.plan,  q.plan_nodes,
                     binds,   memory_budget_bytes,
                     cluster.num_executors, cluster.cores_per_executor,
                     cluster.default_parallelism};
  }
};

class LintRule {
 public:
  virtual ~LintRule() = default;
  virtual const char* code() const = 0;     // "SAC-W01"
  virtual const char* summary() const = 0;  // one line for --list-rules
  virtual void Run(const PlanGraph& g,
                   std::vector<Diagnostic>* out) const = 0;
};

/// All linked-in rules, in registration order.
const std::vector<const LintRule*>& LintRules();

namespace internal {
struct LintRuleRegistrar {
  explicit LintRuleRegistrar(const LintRule* rule);
  /// The mutable registry behind LintRules() (function-local static, so
  /// registration order is safe across translation units).
  static std::vector<const LintRule*>* registry();
};
}  // namespace internal

/// Defines a static instance of `RuleClass` and registers it. Use at
/// namespace scope in a .cc file.
#define SAC_REGISTER_LINT_RULE(RuleClass)                               \
  static const RuleClass g_lint_rule_instance_##RuleClass;              \
  static const ::sac::analysis::internal::LintRuleRegistrar             \
      g_lint_rule_registrar_##RuleClass(&g_lint_rule_instance_##RuleClass)

/// Runs every registered rule over `g`, appending to `out`.
void LintPlan(const PlanGraph& g, std::vector<Diagnostic>* out);

}  // namespace sac::analysis

#endif  // SAC_ANALYSIS_LINT_H_
