#include "src/analysis/verify.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace sac::analysis {

using planner::PlanNode;
using planner::PlanNodePtr;

namespace {

std::string NodeDesc(const PlanNode& n) {
  std::string s = planner::PlanOpName(n.op);
  if (n.op == PlanNode::Op::kSource) return s + "[" + n.source + "]";
  if (!n.label.empty()) return s + "[" + n.label + "]";
  return s;
}

Status Violation(const PlanNode& n, const std::string& what) {
  return Status::PlanError("plan invariant violated at " + NodeDesc(n) +
                           ": " + what);
}

/// Expected input count: {min, max}.
std::pair<int, int> InputArity(PlanNode::Op op) {
  switch (op) {
    case PlanNode::Op::kSource:
      return {0, 0};
    case PlanNode::Op::kMap:
    case PlanNode::Op::kFlatMap:
    case PlanNode::Op::kFilter:
    case PlanNode::Op::kMapPartitions:
    case PlanNode::Op::kReduceByKey:
    case PlanNode::Op::kGroupByKey:
    case PlanNode::Op::kPartitionBy:
      return {1, 1};
    case PlanNode::Op::kJoin:
    case PlanNode::Op::kCoGroup:
    case PlanNode::Op::kUnion:
      return {2, 2};
    case PlanNode::Op::kCollect:
      return {1, 1 << 20};
  }
  return {0, 1 << 20};
}

bool IsNarrow(PlanNode::Op op) {
  return op == PlanNode::Op::kMap || op == PlanNode::Op::kFlatMap ||
         op == PlanNode::Op::kFilter || op == PlanNode::Op::kMapPartitions;
}

/// DFS cycle detection with an explicit stack (0 = white, 1 = on the
/// current path, 2 = done).
Status CheckAcyclic(const std::vector<PlanNodePtr>& roots) {
  std::unordered_map<const PlanNode*, int> color;
  for (const PlanNodePtr& root : roots) {
    if (root == nullptr || color[root.get()] == 2) continue;
    struct Frame {
      const PlanNode* node;
      size_t next_input;
    };
    std::vector<Frame> stack{{root.get(), 0}};
    color[root.get()] = 1;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next_input >= f.node->inputs.size()) {
        color[f.node] = 2;
        stack.pop_back();
        continue;
      }
      const PlanNode* in = f.node->inputs[f.next_input++].get();
      if (in == nullptr) continue;
      const int c = color[in];
      if (c == 1) {
        return Violation(*f.node, "cycle through input " + NodeDesc(*in));
      }
      if (c == 0) {
        color[in] = 1;
        stack.push_back(Frame{in, 0});
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status VerifyPlan(const PlanGraph& g) {
  if (g.root == nullptr) {
    if (!g.nodes.empty()) {
      return Status::PlanError(
          "plan invariant violated: creation record has " +
          std::to_string(g.nodes.size()) + " nodes but the plan has no root");
    }
    return Status::OK();
  }

  SAC_RETURN_NOT_OK(CheckAcyclic({g.root}));
  SAC_RETURN_NOT_OK(CheckAcyclic(g.nodes));

  std::unordered_set<const PlanNode*> recorded;
  for (const PlanNodePtr& n : g.nodes) recorded.insert(n.get());

  // Walk everything reachable from the root plus all recorded nodes.
  std::unordered_set<const PlanNode*> seen;
  std::vector<const PlanNode*> stack{g.root.get()};
  for (const PlanNodePtr& n : g.nodes) stack.push_back(n.get());
  while (!stack.empty()) {
    const PlanNode* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;

    if (recorded.count(n) == 0) {
      return Violation(*n, "node is reachable but missing from the plan's "
                           "creation record");
    }
    const auto [min_in, max_in] = InputArity(n->op);
    const int nin = static_cast<int>(n->inputs.size());
    if (nin < min_in || nin > max_in) {
      return Violation(*n, "expected " + std::to_string(min_in) +
                               (max_in > min_in ? "+" : "") + " input(s), has " +
                               std::to_string(nin));
    }
    for (const PlanNodePtr& in : n->inputs) {
      if (in == nullptr) return Violation(*n, "null input");
      stack.push_back(in.get());
    }

    if (n->op == PlanNode::Op::kSource && n->source.empty()) {
      return Violation(*n, "source node without a binding name");
    }
    if (n->key_arity < 0) {
      return Violation(*n, "negative key arity");
    }
    if (n->is_shuffle()) {
      if (n->key_arity < 1) {
        return Violation(*n, "shuffle with unkeyed rows (key_arity == 0)");
      }
      for (const PlanNodePtr& in : n->inputs) {
        if (in->key_arity != n->key_arity) {
          return Violation(
              *n, "key arity " + std::to_string(n->key_arity) +
                      " disagrees with input " + NodeDesc(*in) + " (key " +
                      std::to_string(in->key_arity) + ")");
        }
      }
    }
    if (n->preserves_partitioning && !IsNarrow(n->op)) {
      return Violation(*n, "preserves_partitioning on a non-narrow operator");
    }
    if (n->folds_group) {
      bool grouped_input = false;
      for (const PlanNodePtr& in : n->inputs) {
        if (in->op == PlanNode::Op::kGroupByKey ||
            in->op == PlanNode::Op::kCoGroup) {
          grouped_input = true;
        }
      }
      if (!grouped_input) {
        return Violation(*n, "folds_group without a groupByKey/cogroup input");
      }
    }
  }
  return Status::OK();
}

}  // namespace sac::analysis
