#include "src/analysis/cost.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace sac::analysis {

using planner::PlanNode;
using planner::PlanNodePtr;

namespace {

bool IsNarrow(const PlanNode::Op op) {
  return op == PlanNode::Op::kMap || op == PlanNode::Op::kFlatMap ||
         op == PlanNode::Op::kFilter || op == PlanNode::Op::kMapPartitions;
}

/// Bytes one shuffle input contributes to the wire. ReduceByKey combines
/// map-side: each occupied source partition emits at most one record per
/// distinct key, and a single-executor-concentrated input occupies one
/// partition -- which is why the measured reduceByKey stages of the fig4b
/// 5.3 plan move g^2 tiles, not the g^3 partial products feeding them.
double MovedBytes(const PlanNode& n, const SymbolicShape& in) {
  if (!in.known) return in.total_bytes();
  if (n.op == PlanNode::Op::kReduceByKey && in.distinct_keys > 0) {
    const double occupied =
        in.spread == SymbolicShape::Spread::kSingleExecutor
            ? 1.0
            : static_cast<double>(std::max(in.num_partitions, 1));
    const double records = std::min(in.records, in.distinct_keys * occupied);
    return records * in.bytes_per_record;
  }
  return in.total_bytes();
}

std::string HumanMiB(const double bytes) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << bytes / (1024.0 * 1024.0);
  return os.str();
}

std::string NodeName(const PlanNode& n) {
  std::string s = planner::PlanOpName(n.op);
  if (!n.source.empty()) return s + " " + n.source;
  if (!n.label.empty()) return s + " " + n.label;
  return s;
}

/// Builds the 5.3 join + reduceByKey symbolic plan over two tiled sources.
PlanGraph SynthesizeReduceByKeyPlan(const std::string& src_a,
                                    const std::string& src_b,
                                    const PlanGraph& g) {
  planner::PlanBuilder pb;
  PlanNodePtr sa = pb.Source(src_a, 2);
  PlanNodePtr ka = pb.Narrow(PlanNode::Op::kMap, "keyByJoinDim", sa, 1);
  PlanNodePtr sb = pb.Source(src_b, 2);
  PlanNodePtr kb = pb.Narrow(PlanNode::Op::kMap, "keyByJoinDim", sb, 1);
  PlanNodePtr joined =
      pb.Shuffle(PlanNode::Op::kJoin, "joinTiles", {ka, kb}, 1);
  PlanNodePtr partials =
      pb.Narrow(PlanNode::Op::kMap, "partialProducts", joined, 2);
  PlanNodePtr reduced = pb.Shuffle(PlanNode::Op::kReduceByKey, "reduceTiles",
                                   {partials}, 2);
  PlanNodePtr root = pb.Narrow(PlanNode::Op::kMap, "finalize", reduced, 2,
                               /*preserves_partitioning=*/true);
  PlanGraph out = g;
  out.root = root;
  out.nodes = pb.TakeNodes();
  return out;
}

/// Builds the 5.4 replicate + cogroup (SUMMA) symbolic plan.
PlanGraph SynthesizeGroupByJoinPlan(const std::string& src_a,
                                    const std::string& src_b,
                                    const PlanGraph& g) {
  planner::PlanBuilder pb;
  PlanNodePtr sa = pb.Source(src_a, 2);
  PlanNodePtr sb = pb.Source(src_b, 2);
  PlanNodePtr ra = pb.Narrow(PlanNode::Op::kFlatMap, "replicateA", sa, 2);
  PlanNodePtr rb = pb.Narrow(PlanNode::Op::kFlatMap, "replicateB", sb, 2);
  PlanNodePtr cg =
      pb.Shuffle(PlanNode::Op::kCoGroup, "cogroupPanels", {ra, rb}, 2);
  PlanNodePtr root = pb.Narrow(PlanNode::Op::kFlatMap, "summaMultiply", cg, 2,
                               /*preserves_partitioning=*/true);
  PlanGraph out = g;
  out.root = root;
  out.nodes = pb.TakeNodes();
  return out;
}

/// True when `name` is bound to a tiled matrix with resolvable extents.
bool IsTiledSource(const PlanGraph& g, const std::string& name) {
  if (g.binds == nullptr) return false;
  const auto it = g.binds->find(name);
  return it != g.binds->end() &&
         it->second.kind == planner::Binding::Kind::kTiled &&
         it->second.tiled.rows > 0 && it->second.tiled.cols > 0 &&
         it->second.tiled.block > 0;
}

}  // namespace

CostModel CostModelForBackend(const std::string& backend_name) {
  CostModel m;
  if (backend_name == "packed") {
    m.ns_per_flop = m.ns_per_flop_packed;
  } else if (backend_name == "jvmlike") {
    m.ns_per_flop = m.ns_per_flop_jvmlike;
  }
  return m;
}

const char* EngineShuffleLabel(const planner::PlanNode::Op op) {
  switch (op) {
    case PlanNode::Op::kJoin:
      return "join";
    case PlanNode::Op::kCoGroup:
      return "cogroup";
    case PlanNode::Op::kReduceByKey:
      return "reduceByKey";
    case PlanNode::Op::kGroupByKey:
      return "groupByKey";
    case PlanNode::Op::kPartitionBy:
      return "partitionBy";
    default:
      return nullptr;
  }
}

CostEstimate EstimateCost(const PlanGraph& g, const CostModel& model) {
  const ShapeMap shapes = InferShapes(g);
  const int executors = g.num_executors > 0 ? g.num_executors : 4;
  CostEstimate est;
  est.exact = !g.nodes.empty();
  for (const PlanNodePtr& node : g.nodes) {
    const PlanNode& n = *node;
    CostEstimate::Item item;
    item.node = node.get();
    const auto sit = shapes.find(node.get());
    if (sit != shapes.end()) item.shape = sit->second;
    const SymbolicShape& s = item.shape;
    if (!s.known) est.exact = false;
    NodeCost& c = item.cost;
    c.output_bytes = s.known ? s.total_bytes() : 0;
    c.flops = s.flops;
    if (IsNarrow(n.op) && !n.inputs.empty()) {
      const auto iit = shapes.find(n.inputs[0].get());
      c.tasks = iit != shapes.end() ? iit->second.num_partitions : 0;
    } else if (n.is_shuffle()) {
      double map_tasks = 0;
      for (const PlanNodePtr& in : n.inputs) {
        const auto iit = shapes.find(in.get());
        if (iit == shapes.end()) continue;
        const SymbolicShape& is = iit->second;
        const double moved = MovedBytes(n, is);
        c.shuffle_bytes += moved;
        if (is.spread == SymbolicShape::Spread::kUniform) {
          c.cross_bytes += moved * static_cast<double>(executors - 1) /
                           static_cast<double>(executors);
        }
        map_tasks += is.num_partitions;
      }
      c.local_bytes = c.shuffle_bytes - c.cross_bytes;
      c.tasks = map_tasks + s.num_partitions;
      if (const char* lbl = EngineShuffleLabel(n.op)) {
        est.shuffle_by_engine_label[lbl] += c.shuffle_bytes;
      }
    }
    est.totals.shuffle_bytes += c.shuffle_bytes;
    est.totals.cross_bytes += c.cross_bytes;
    est.totals.local_bytes += c.local_bytes;
    est.totals.tasks += c.tasks;
    est.totals.flops += c.flops;
    est.totals.output_bytes += c.output_bytes;
    est.resident_bytes += c.output_bytes;
    est.items.push_back(std::move(item));
  }
  est.est_ms = (est.totals.cross_bytes * model.ns_per_cross_byte +
                est.totals.local_bytes * model.ns_per_local_byte +
                est.totals.flops * model.ns_per_flop) /
                   1e6 +
               est.totals.tasks * model.us_per_task / 1e3;
  return est;
}

MultiplyAdvice AdviseMultiply(const PlanGraph& g, const CostModel& model) {
  MultiplyAdvice adv;
  // Recognize which multiply translation the plan executes and find the
  // two tiled operands underneath it.
  const PlanNode* wide = nullptr;
  bool chosen_is_gbj = false;
  for (const PlanNodePtr& node : g.nodes) {
    if (node->op == PlanNode::Op::kCoGroup &&
        node->label == "cogroupPanels" && node->inputs.size() == 2) {
      wide = node.get();
      chosen_is_gbj = true;
      break;
    }
    if (node->op == PlanNode::Op::kJoin && node->label == "joinTiles" &&
        node->inputs.size() == 2) {
      wide = node.get();
      chosen_is_gbj = false;
      break;
    }
  }
  if (wide == nullptr) return adv;
  const PlanNode* src_a = wide->inputs[0].get();
  const PlanNode* src_b = wide->inputs[1].get();
  while (src_a != nullptr && src_a->op != PlanNode::Op::kSource) {
    src_a = src_a->inputs.empty() ? nullptr : src_a->inputs[0].get();
  }
  while (src_b != nullptr && src_b->op != PlanNode::Op::kSource) {
    src_b = src_b->inputs.empty() ? nullptr : src_b->inputs[0].get();
  }
  if (src_a == nullptr || src_b == nullptr) return adv;
  // Both operands must be tiled matrices with known extents (the GBJ
  // translation does not apply to matrix-vector products).
  if (!IsTiledSource(g, src_a->source) || !IsTiledSource(g, src_b->source)) {
    return adv;
  }
  const PlanGraph rbk =
      SynthesizeReduceByKeyPlan(src_a->source, src_b->source, g);
  const PlanGraph gbj =
      SynthesizeGroupByJoinPlan(src_a->source, src_b->source, g);
  const CostEstimate rbk_est = EstimateCost(rbk, model);
  const CostEstimate gbj_est = EstimateCost(gbj, model);
  if (!rbk_est.exact || !gbj_est.exact) return adv;
  adv.applicable = true;
  adv.chosen_is_gbj = chosen_is_gbj;
  adv.chosen_ms = chosen_is_gbj ? gbj_est.est_ms : rbk_est.est_ms;
  adv.alternative_ms = chosen_is_gbj ? rbk_est.est_ms : gbj_est.est_ms;
  if (adv.alternative_ms < adv.chosen_ms) {
    const double chosen_shuffle = chosen_is_gbj
                                      ? gbj_est.totals.shuffle_bytes
                                      : rbk_est.totals.shuffle_bytes;
    const double alt_shuffle = chosen_is_gbj ? rbk_est.totals.shuffle_bytes
                                             : gbj_est.totals.shuffle_bytes;
    adv.bytes_saved = std::max(0.0, chosen_shuffle - alt_shuffle);
  }
  return adv;
}

std::string RenderCostTable(const CostEstimate& est) {
  std::ostringstream os;
  os << "cost:" << (est.exact ? "" : " (extents unresolved; partial)")
     << "\n";
  os << "  " << std::left << std::setw(28) << "node" << std::right
     << std::setw(10) << "records" << std::setw(10) << "out MiB"
     << std::setw(10) << "loc MiB" << std::setw(10) << "x-ex MiB"
     << std::setw(7) << "tasks" << std::setw(12) << "flops" << "\n";
  for (const CostEstimate::Item& item : est.items) {
    if (item.node == nullptr) continue;
    os << "  " << std::left << std::setw(28)
       << NodeName(*item.node).substr(0, 27) << std::right;
    if (item.shape.known) {
      os << std::setw(10) << static_cast<int64_t>(item.shape.records);
    } else {
      os << std::setw(10) << "?";
    }
    os << std::setw(10) << HumanMiB(item.cost.output_bytes) << std::setw(10)
       << HumanMiB(item.cost.local_bytes) << std::setw(10)
       << HumanMiB(item.cost.cross_bytes) << std::setw(7)
       << static_cast<int64_t>(item.cost.tasks) << std::setw(12)
       << std::scientific << std::setprecision(2) << item.cost.flops
       << std::defaultfloat << "\n";
  }
  os << "  totals: shuffle " << HumanMiB(est.totals.shuffle_bytes)
     << " MiB (cross " << HumanMiB(est.totals.cross_bytes) << "), resident "
     << HumanMiB(est.resident_bytes) << " MiB, "
     << static_cast<int64_t>(est.totals.tasks) << " tasks, est "
     << std::fixed << std::setprecision(3) << est.est_ms << " ms\n";
  return os.str();
}

}  // namespace sac::analysis
