// Symbolic shape inference: an abstract interpretation over the
// planner's PlanNode DAG that propagates dataset extents -- record
// counts, serialized bytes per record, tile-grid dimensions -- from the
// bound inputs through every operator, entirely statically (no engine
// operator runs). The result feeds the calibrated cost model (cost.h),
// the quantified lint rules (SAC-W02/W05..W08) and the predicted-vs-
// measured shuffle-byte gate. See docs/COST_MODEL.md for the abstract
// domain and the per-operator transfer functions.
#ifndef SAC_ANALYSIS_SHAPE_H_
#define SAC_ANALYSIS_SHAPE_H_

#include <cstdint>
#include <unordered_map>

#include "src/analysis/lint.h"
#include "src/planner/plan.h"

namespace sac::analysis {

/// The abstract value: what we statically know about one plan node's
/// output dataset. `known == false` is the domain's top -- extents could
/// not be resolved from the bindings (or were merged inconsistently, e.g.
/// a Union of mismatched tile grids) and every quantified client must
/// degrade gracefully.
struct SymbolicShape {
  bool known = false;
  /// Estimated number of rows (records) in the dataset.
  double records = 0;
  /// Serialized bytes per record, including the per-record framing
  /// overhead the shuffle meters (keys + tags, ~48 B next to the payload).
  double bytes_per_record = 0;
  /// Tile-grid view when the rows are matrix tiles / vector blocks
  /// (grid_cols == 1 for vectors); 0 when the rows are not a plain grid.
  int64_t grid_rows = 0;
  int64_t grid_cols = 0;
  int64_t block = 0;
  /// Estimated distinct key count of the rows (drives reduce-side
  /// consolidation and partition sizing); 0 = unknown.
  double distinct_keys = 0;
  /// Floating-point work performed AT this node (not cumulative).
  double flops = 0;
  /// Partition count of the dataset (resolved; engine default when the
  /// node does not pin one).
  int num_partitions = 0;

  /// How the rows are spread over executors. The engine places partition
  /// p on executor p % E, and the value hasher sends small-integer (and
  /// small-integer-tuple) keys overwhelmingly to one partition -- so the
  /// output of any hash shuffle on tile coordinates is effectively
  /// resident on a single executor, and a chained shuffle from it moves
  /// bytes locally, not across executors. Sources parallelize round-robin
  /// and stay uniform. This two-state domain is what makes the
  /// local/cross split of the PR3 accounting model predictable.
  enum class Spread { kUniform, kSingleExecutor };
  Spread spread = Spread::kUniform;

  [[nodiscard]] double total_bytes() const { return records * bytes_per_record; }
};

using ShapeMap = std::unordered_map<const planner::PlanNode*, SymbolicShape>;

/// Serialized per-record framing overhead next to the payload (key
/// values, type tags, length prefixes) -- calibrated against the exact
/// byte counters of the committed BENCH reports (45..59 B depending on
/// the key structure).
inline constexpr double kRecordOverheadBytes = 48.0;

/// Runs the abstract interpretation over every node of `g` (creation
/// order is topological). Without bindings every shape is top.
[[nodiscard]] ShapeMap InferShapes(const PlanGraph& g);

}  // namespace sac::analysis

#endif  // SAC_ANALYSIS_SHAPE_H_
