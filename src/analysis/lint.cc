#include "src/analysis/lint.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace sac::analysis {

using planner::PlanNode;
using planner::PlanNodePtr;

const std::vector<const LintRule*>& LintRules() {
  return *internal::LintRuleRegistrar::registry();
}

namespace internal {

std::vector<const LintRule*>* LintRuleRegistrar::registry() {
  static std::vector<const LintRule*> rules;
  return &rules;
}

LintRuleRegistrar::LintRuleRegistrar(const LintRule* rule) {
  registry()->push_back(rule);
}

}  // namespace internal

void LintPlan(const PlanGraph& g, std::vector<Diagnostic>* out) {
  for (const LintRule* rule : LintRules()) {
    rule->Run(g, out);
  }
}

namespace {

comp::Span SpanOf(const PlanNode& n) { return comp::Span{n.pos, n.pos}; }

std::string NodeDesc(const PlanNode& n) {
  std::string s = planner::PlanOpName(n.op);
  if (n.op == PlanNode::Op::kSource) return s + "[" + n.source + "]";
  if (!n.label.empty()) return s + "[" + n.label + "]";
  return s;
}

/// node -> nodes that read it (edges drawn from the creation record).
std::unordered_map<const PlanNode*, std::vector<const PlanNode*>>
Consumers(const PlanGraph& g) {
  std::unordered_map<const PlanNode*, std::vector<const PlanNode*>> out;
  for (const PlanNodePtr& n : g.nodes) {
    for (const PlanNodePtr& in : n->inputs) {
      out[in.get()].push_back(n.get());
    }
  }
  return out;
}

std::unordered_set<const PlanNode*> Reachable(const PlanNodePtr& root) {
  std::unordered_set<const PlanNode*> seen;
  std::vector<const PlanNode*> stack;
  if (root != nullptr) stack.push_back(root.get());
  while (!stack.empty()) {
    const PlanNode* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    for (const PlanNodePtr& in : n->inputs) {
      if (in != nullptr) stack.push_back(in.get());
    }
  }
  return seen;
}

// ---------------------------------------------------------------------------
// SAC-W01: groupByKey where reduceByKey suffices
// ---------------------------------------------------------------------------

class GroupByKeyFoldRule : public LintRule {
 public:
  const char* code() const override { return "SAC-W01"; }
  const char* summary() const override {
    return "groupByKey whose groups are folded associatively; reduceByKey "
           "would combine map-side and shuffle less data";
  }
  void Run(const PlanGraph& g, std::vector<Diagnostic>* out) const override {
    const auto consumers = Consumers(g);
    for (const PlanNodePtr& n : g.nodes) {
      if (n->op != PlanNode::Op::kGroupByKey) continue;
      auto it = consumers.find(n.get());
      if (it == consumers.end()) continue;
      for (const PlanNode* c : it->second) {
        if (!c->folds_group) continue;
        out->push_back(Warning(
            code(),
            NodeDesc(*n) + " gathers whole groups that " + NodeDesc(*c) +
                " folds with an associative combine; use reduceByKey to "
                "combine on the map side",
            SpanOf(*n)));
      }
    }
  }
};
SAC_REGISTER_LINT_RULE(GroupByKeyFoldRule);

// ---------------------------------------------------------------------------
// SAC-W02: uncached dataset re-read inside an iterative loop
// ---------------------------------------------------------------------------

class UncachedLoopReuseRule : public LintRule {
 public:
  const char* code() const override { return "SAC-W02"; }
  const char* summary() const override {
    return "dataset with several consumers inside an iterative loop is not "
           "cached; every iteration recomputes it";
  }
  void Run(const PlanGraph& g, std::vector<Diagnostic>* out) const override {
    const auto consumers = Consumers(g);
    for (const PlanNodePtr& n : g.nodes) {
      if (!n->in_loop || n->cached) continue;
      auto it = consumers.find(n.get());
      if (it == consumers.end() || it->second.size() < 2) continue;
      out->push_back(Warning(
          code(),
          NodeDesc(*n) + " is read by " +
              std::to_string(it->second.size()) +
              " operators inside an iterative loop but is not cached; "
              "each iteration recomputes it",
          SpanOf(*n)));
    }
  }
};
SAC_REGISTER_LINT_RULE(UncachedLoopReuseRule);

// ---------------------------------------------------------------------------
// SAC-W03: shuffle whose partitioning already matches the producer
// ---------------------------------------------------------------------------

class RedundantShuffleRule : public LintRule {
 public:
  const char* code() const override { return "SAC-W03"; }
  const char* summary() const override {
    return "shuffle whose target partitioning matches the producer's "
           "partitioning and key; the repartition moves no row";
  }
  void Run(const PlanGraph& g, std::vector<Diagnostic>* out) const override {
    for (const PlanNodePtr& n : g.nodes) {
      if (!n->is_shuffle() || n->inputs.empty()) continue;
      bool all_match = true;
      for (const PlanNodePtr& in : n->inputs) {
        if (in == nullptr || !in->partitioning.Matches(n->partitioning) ||
            in->key_arity != n->key_arity) {
          all_match = false;
          break;
        }
      }
      if (!all_match) continue;
      out->push_back(Warning(
          code(),
          NodeDesc(*n) + " re-shuffles data already hash-partitioned on "
                         "the same key (" +
              n->partitioning.ToString() +
              "); the producer's partitioning is preserved",
          SpanOf(*n)));
    }
  }
};
SAC_REGISTER_LINT_RULE(RedundantShuffleRule);

// ---------------------------------------------------------------------------
// SAC-W04: dataset computed but never used
// ---------------------------------------------------------------------------

class DeadDatasetRule : public LintRule {
 public:
  const char* code() const override { return "SAC-W04"; }
  const char* summary() const override {
    return "plan node unreachable from the query result; the dataset is "
           "computed and discarded";
  }
  void Run(const PlanGraph& g, std::vector<Diagnostic>* out) const override {
    if (g.root == nullptr) return;
    const auto live = Reachable(g.root);
    for (const PlanNodePtr& n : g.nodes) {
      if (n->op == PlanNode::Op::kSource) continue;  // inputs, not computed
      if (live.count(n.get()) > 0) continue;
      out->push_back(Warning(
          code(),
          NodeDesc(*n) +
              " is computed but never reaches the query result; remove it "
              "or use its output",
          SpanOf(*n)));
    }
  }
};
SAC_REGISTER_LINT_RULE(DeadDatasetRule);

// ---------------------------------------------------------------------------
// SAC-W05: chained in-loop shuffles with nothing cutting the lineage
// ---------------------------------------------------------------------------

class LoopShuffleChainRule : public LintRule {
 public:
  const char* code() const override { return "SAC-W05"; }
  const char* summary() const override {
    return "shuffle feeding another shuffle inside an iterative loop with "
           "no cache or checkpoint between them; lineage and recovery cost "
           "grow with every iteration";
  }
  void Run(const PlanGraph& g, std::vector<Diagnostic>* out) const override {
    const auto consumers = Consumers(g);
    for (const PlanNodePtr& n : g.nodes) {
      if (!n->in_loop || !n->is_shuffle() || n->cached) continue;
      // Walk downstream through uncached nodes; a cached node cuts the
      // recompute chain, another in-loop shuffle means a lost partition
      // there replays this shuffle too -- every iteration, since nothing
      // between them materializes durably.
      std::unordered_set<const PlanNode*> seen;
      std::vector<const PlanNode*> stack;
      auto push_consumers = [&](const PlanNode* p) {
        auto it = consumers.find(p);
        if (it == consumers.end()) return;
        for (const PlanNode* c : it->second) stack.push_back(c);
      };
      push_consumers(n.get());
      const PlanNode* hit = nullptr;
      while (!stack.empty() && hit == nullptr) {
        const PlanNode* c = stack.back();
        stack.pop_back();
        if (!seen.insert(c).second) continue;
        if (c->cached) continue;
        if (c->in_loop && c->is_shuffle()) {
          hit = c;
          break;
        }
        push_consumers(c);
      }
      if (hit == nullptr) continue;
      out->push_back(Warning(
          code(),
          NodeDesc(*n) + " feeds " + NodeDesc(*hit) +
              " inside an iterative loop with nothing cutting the lineage "
              "between them; cache the intermediate or checkpoint the loop "
              "target (ClusterConfig::checkpoint_interval) so recovery "
              "does not replay the whole chain",
          SpanOf(*n)));
    }
  }
};
SAC_REGISTER_LINT_RULE(LoopShuffleChainRule);

// ---------------------------------------------------------------------------
// SAC-W06: estimated resident set exceeds the memory budget, no cut
// ---------------------------------------------------------------------------

class ResidentSetOverBudgetRule : public LintRule {
 public:
  const char* code() const override { return "SAC-W06"; }
  const char* summary() const override {
    return "estimated resident set of the plan exceeds the configured "
           "memory budget and no intermediate is cached or checkpointed; "
           "the run will thrash through spill eviction";
  }
  void Run(const PlanGraph& g, std::vector<Diagnostic>* out) const override {
    if (g.memory_budget_bytes == 0 || g.binds == nullptr) return;
    // The engine evaluates eagerly, so every plan node's output is
    // materialized at some point; the sum of per-node footprints is a
    // (crude, dense) estimate of the run's resident set. Sources are
    // sized from their bound shapes; a transformation's output is
    // approximated by the largest of its inputs (element-wise ops
    // preserve footprint; reductions shrink it, so this over-estimates
    // conservatively on the warning side).
    std::unordered_map<const PlanNode*, uint64_t> size;
    uint64_t total = 0;
    bool has_cut = false;
    for (const PlanNodePtr& n : g.nodes) {  // creation order = topological
      uint64_t bytes = 0;
      if (n->op == PlanNode::Op::kSource) {
        bytes = SourceBytes(*g.binds, n->source);
      } else {
        for (const PlanNodePtr& in : n->inputs) {
          auto it = size.find(in.get());
          if (it != size.end() && it->second > bytes) bytes = it->second;
        }
        if (n->cached) has_cut = true;
      }
      size[n.get()] = bytes;
      total += bytes;
    }
    if (total <= g.memory_budget_bytes || has_cut) return;
    out->push_back(Warning(
        code(),
        "plan materializes an estimated " + std::to_string(total >> 20) +
            " MiB against a memory budget of " +
            std::to_string(g.memory_budget_bytes >> 20) +
            " MiB with no cached or checkpointed intermediate; the run "
            "stays correct (cold partitions spill and reload) but will "
            "thrash -- cache a reused intermediate or checkpoint the loop "
            "target to cut the resident set",
        g.root != nullptr ? SpanOf(*g.root) : comp::Span{}));
  }

 private:
  static uint64_t SourceBytes(const planner::Bindings& binds,
                              const std::string& name) {
    auto it = binds.find(name);
    if (it == binds.end()) return 0;
    const planner::Binding& b = it->second;
    switch (b.kind) {
      case planner::Binding::Kind::kTiled:
        return static_cast<uint64_t>(b.tiled.rows) *
               static_cast<uint64_t>(b.tiled.cols) * sizeof(double);
      case planner::Binding::Kind::kBlockVector:
        return static_cast<uint64_t>(b.vec.size) * sizeof(double);
      case planner::Binding::Kind::kCoo:
        // Dense-content COO: one ((i,j),v) record per element.
        return static_cast<uint64_t>(b.coo.rows) *
               static_cast<uint64_t>(b.coo.cols) * 3 * sizeof(double);
      case planner::Binding::Kind::kScalar:
      case planner::Binding::Kind::kLocal:
        return 0;  // driver-side, not part of the distributed resident set
    }
    return 0;
  }
};
SAC_REGISTER_LINT_RULE(ResidentSetOverBudgetRule);

}  // namespace

}  // namespace sac::analysis
