#include "src/analysis/lint.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/analysis/cost.h"
#include "src/analysis/shape.h"

namespace sac::analysis {

using planner::PlanNode;
using planner::PlanNodePtr;

const std::vector<const LintRule*>& LintRules() {
  return *internal::LintRuleRegistrar::registry();
}

namespace internal {

std::vector<const LintRule*>* LintRuleRegistrar::registry() {
  static std::vector<const LintRule*> rules;
  return &rules;
}

LintRuleRegistrar::LintRuleRegistrar(const LintRule* rule) {
  registry()->push_back(rule);
}

}  // namespace internal

void LintPlan(const PlanGraph& g, std::vector<Diagnostic>* out) {
  for (const LintRule* rule : LintRules()) {
    rule->Run(g, out);
  }
}

namespace {

comp::Span SpanOf(const PlanNode& n) { return comp::Span{n.pos, n.pos}; }

/// Materiality threshold of the quantified rules: findings whose sized
/// impact is below this stay silent (pattern-only findings, where the
/// shape pass could not resolve extents, still fire).
constexpr double kMaterialityBytes = 1.0 * 1024 * 1024;

std::string HumanMiB(const double bytes) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << bytes / (1024.0 * 1024.0) << " MiB";
  return os.str();
}

std::string NodeDesc(const PlanNode& n) {
  std::string s = planner::PlanOpName(n.op);
  if (n.op == PlanNode::Op::kSource) return s + "[" + n.source + "]";
  if (!n.label.empty()) return s + "[" + n.label + "]";
  return s;
}

/// node -> nodes that read it (edges drawn from the creation record).
std::unordered_map<const PlanNode*, std::vector<const PlanNode*>>
Consumers(const PlanGraph& g) {
  std::unordered_map<const PlanNode*, std::vector<const PlanNode*>> out;
  for (const PlanNodePtr& n : g.nodes) {
    for (const PlanNodePtr& in : n->inputs) {
      out[in.get()].push_back(n.get());
    }
  }
  return out;
}

std::unordered_set<const PlanNode*> Reachable(const PlanNodePtr& root) {
  std::unordered_set<const PlanNode*> seen;
  std::vector<const PlanNode*> stack;
  if (root != nullptr) stack.push_back(root.get());
  while (!stack.empty()) {
    const PlanNode* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    for (const PlanNodePtr& in : n->inputs) {
      if (in != nullptr) stack.push_back(in.get());
    }
  }
  return seen;
}

// ---------------------------------------------------------------------------
// SAC-W01: groupByKey where reduceByKey suffices
// ---------------------------------------------------------------------------

class GroupByKeyFoldRule : public LintRule {
 public:
  const char* code() const override { return "SAC-W01"; }
  const char* summary() const override {
    return "groupByKey whose groups are folded associatively; reduceByKey "
           "would combine map-side and shuffle less data";
  }
  void Run(const PlanGraph& g, std::vector<Diagnostic>* out) const override {
    const auto consumers = Consumers(g);
    for (const PlanNodePtr& n : g.nodes) {
      if (n->op != PlanNode::Op::kGroupByKey) continue;
      auto it = consumers.find(n.get());
      if (it == consumers.end()) continue;
      for (const PlanNode* c : it->second) {
        if (!c->folds_group) continue;
        out->push_back(Warning(
            code(),
            NodeDesc(*n) + " gathers whole groups that " + NodeDesc(*c) +
                " folds with an associative combine; use reduceByKey to "
                "combine on the map side",
            SpanOf(*n)));
      }
    }
  }
};
SAC_REGISTER_LINT_RULE(GroupByKeyFoldRule);

// ---------------------------------------------------------------------------
// SAC-W02: uncached dataset re-read inside an iterative loop
// ---------------------------------------------------------------------------

class UncachedLoopReuseRule : public LintRule {
 public:
  const char* code() const override { return "SAC-W02"; }
  const char* summary() const override {
    return "dataset with several consumers inside an iterative loop is not "
           "cached; every iteration recomputes it";
  }
  void Run(const PlanGraph& g, std::vector<Diagnostic>* out) const override {
    const auto consumers = Consumers(g);
    const ShapeMap shapes = InferShapes(g);
    for (const PlanNodePtr& n : g.nodes) {
      if (!n->in_loop || n->cached) continue;
      auto it = consumers.find(n.get());
      if (it == consumers.end() || it->second.size() < 2) continue;
      // Quantified when the shape pass sized the node: the uncached
      // dataset is rebuilt once per extra consumer, every iteration.
      const auto sit = shapes.find(n.get());
      const bool sized = sit != shapes.end() && sit->second.known;
      const double recompute =
          sized ? static_cast<double>(it->second.size() - 1) *
                      sit->second.total_bytes()
                : 0;
      if (sized && recompute < kMaterialityBytes) continue;
      std::string msg =
          NodeDesc(*n) + " is read by " + std::to_string(it->second.size()) +
          " operators inside an iterative loop but is not cached; "
          "each iteration recomputes it";
      if (sized) msg += " (~" + HumanMiB(recompute) + " per iteration)";
      Diagnostic d = Warning(code(), std::move(msg), SpanOf(*n));
      d.estimated_bytes = recompute;
      out->push_back(std::move(d));
    }
  }
};
SAC_REGISTER_LINT_RULE(UncachedLoopReuseRule);

// ---------------------------------------------------------------------------
// SAC-W03: shuffle whose partitioning already matches the producer
// ---------------------------------------------------------------------------

class RedundantShuffleRule : public LintRule {
 public:
  const char* code() const override { return "SAC-W03"; }
  const char* summary() const override {
    return "shuffle whose target partitioning matches the producer's "
           "partitioning and key; the repartition moves no row";
  }
  void Run(const PlanGraph& g, std::vector<Diagnostic>* out) const override {
    // Compare *resolved* partition counts: `-1` means the engine default,
    // so hash(8) -> hash(default) is redundant when the default is 8, and
    // hash(8) -> hash(16) is a real repartition, never flagged.
    const int default_np =
        g.default_parallelism > 0 ? g.default_parallelism : 8;
    for (const PlanNodePtr& n : g.nodes) {
      if (!n->is_shuffle() || n->inputs.empty()) continue;
      bool all_match = true;
      for (const PlanNodePtr& in : n->inputs) {
        if (in == nullptr ||
            !in->partitioning.MatchesResolved(n->partitioning, default_np) ||
            in->key_arity != n->key_arity) {
          all_match = false;
          break;
        }
      }
      if (!all_match) continue;
      out->push_back(Warning(
          code(),
          NodeDesc(*n) + " re-shuffles data already hash-partitioned on "
                         "the same key (" +
              n->partitioning.ToString() +
              "); the producer's partitioning is preserved",
          SpanOf(*n)));
    }
  }
};
SAC_REGISTER_LINT_RULE(RedundantShuffleRule);

// ---------------------------------------------------------------------------
// SAC-W04: dataset computed but never used
// ---------------------------------------------------------------------------

class DeadDatasetRule : public LintRule {
 public:
  const char* code() const override { return "SAC-W04"; }
  const char* summary() const override {
    return "plan node unreachable from the query result; the dataset is "
           "computed and discarded";
  }
  void Run(const PlanGraph& g, std::vector<Diagnostic>* out) const override {
    if (g.root == nullptr) return;
    const auto live = Reachable(g.root);
    for (const PlanNodePtr& n : g.nodes) {
      if (n->op == PlanNode::Op::kSource) continue;  // inputs, not computed
      if (live.count(n.get()) > 0) continue;
      out->push_back(Warning(
          code(),
          NodeDesc(*n) +
              " is computed but never reaches the query result; remove it "
              "or use its output",
          SpanOf(*n)));
    }
  }
};
SAC_REGISTER_LINT_RULE(DeadDatasetRule);

// ---------------------------------------------------------------------------
// SAC-W05: chained in-loop shuffles with nothing cutting the lineage
// ---------------------------------------------------------------------------

class LoopShuffleChainRule : public LintRule {
 public:
  const char* code() const override { return "SAC-W05"; }
  const char* summary() const override {
    return "shuffle feeding another shuffle inside an iterative loop with "
           "no cache or checkpoint between them; lineage and recovery cost "
           "grow with every iteration";
  }
  void Run(const PlanGraph& g, std::vector<Diagnostic>* out) const override {
    const auto consumers = Consumers(g);
    const CostEstimate est = EstimateCost(g);
    std::unordered_map<const PlanNode*, const CostEstimate::Item*> items;
    for (const CostEstimate::Item& item : est.items) {
      items[item.node] = &item;
    }
    for (const PlanNodePtr& n : g.nodes) {
      if (!n->in_loop || !n->is_shuffle() || n->cached) continue;
      // Walk downstream through uncached nodes; a cached node cuts the
      // recompute chain, another in-loop shuffle means a lost partition
      // there replays this shuffle too -- every iteration, since nothing
      // between them materializes durably.
      std::unordered_set<const PlanNode*> seen;
      std::vector<const PlanNode*> stack;
      auto push_consumers = [&](const PlanNode* p) {
        auto it = consumers.find(p);
        if (it == consumers.end()) return;
        for (const PlanNode* c : it->second) stack.push_back(c);
      };
      push_consumers(n.get());
      const PlanNode* hit = nullptr;
      while (!stack.empty() && hit == nullptr) {
        const PlanNode* c = stack.back();
        stack.pop_back();
        if (!seen.insert(c).second) continue;
        if (c->cached) continue;
        if (c->in_loop && c->is_shuffle()) {
          hit = c;
          break;
        }
        push_consumers(c);
      }
      if (hit == nullptr) continue;
      // Quantified when the shape pass resolved this shuffle: a replay
      // re-moves its shuffled bytes, so immaterial chains stay silent.
      const auto iit = items.find(n.get());
      const bool sized = iit != items.end() && iit->second->shape.known &&
                         iit->second->cost.shuffle_bytes > 0;
      const double replay = sized ? iit->second->cost.shuffle_bytes : 0;
      if (sized && replay < kMaterialityBytes) continue;
      std::string msg =
          NodeDesc(*n) + " feeds " + NodeDesc(*hit) +
          " inside an iterative loop with nothing cutting the lineage "
          "between them; cache the intermediate or checkpoint the loop "
          "target (ClusterConfig::checkpoint_interval) so recovery "
          "does not replay the whole chain";
      if (sized) msg += " (~" + HumanMiB(replay) + " re-shuffled per replay)";
      Diagnostic d = Warning(code(), std::move(msg), SpanOf(*n));
      d.estimated_bytes = replay;
      out->push_back(std::move(d));
    }
  }
};
SAC_REGISTER_LINT_RULE(LoopShuffleChainRule);

// ---------------------------------------------------------------------------
// SAC-W06: estimated resident set exceeds the memory budget, no cut
// ---------------------------------------------------------------------------

class ResidentSetOverBudgetRule : public LintRule {
 public:
  const char* code() const override { return "SAC-W06"; }
  const char* summary() const override {
    return "estimated resident set of the plan exceeds the configured "
           "memory budget and no intermediate is cached or checkpointed; "
           "the run will thrash through spill eviction";
  }
  void Run(const PlanGraph& g, std::vector<Diagnostic>* out) const override {
    if (g.memory_budget_bytes == 0 || g.binds == nullptr) return;
    // The engine evaluates eagerly, so every plan node's output is
    // materialized at some point; the sum of per-node footprints is a
    // (crude, dense) estimate of the run's resident set. Sources are
    // sized from their bound shapes; a transformation's output is
    // approximated by the largest of its inputs (element-wise ops
    // preserve footprint; reductions shrink it, so this over-estimates
    // conservatively on the warning side).
    std::unordered_map<const PlanNode*, uint64_t> size;
    uint64_t total = 0;
    bool has_cut = false;
    for (const PlanNodePtr& n : g.nodes) {  // creation order = topological
      uint64_t bytes = 0;
      if (n->op == PlanNode::Op::kSource) {
        bytes = SourceBytes(*g.binds, n->source);
      } else {
        for (const PlanNodePtr& in : n->inputs) {
          auto it = size.find(in.get());
          if (it != size.end() && it->second > bytes) bytes = it->second;
        }
        if (n->cached) has_cut = true;
      }
      size[n.get()] = bytes;
      total += bytes;
    }
    if (total <= g.memory_budget_bytes || has_cut) return;
    // Materiality: a budget overshoot smaller than the threshold causes
    // negligible eviction traffic and stays silent.
    const double excess =
        static_cast<double>(total) -
        static_cast<double>(g.memory_budget_bytes);
    if (excess < kMaterialityBytes) return;
    Diagnostic d = Warning(
        code(),
        "plan materializes an estimated " + std::to_string(total >> 20) +
            " MiB against a memory budget of " +
            std::to_string(g.memory_budget_bytes >> 20) +
            " MiB with no cached or checkpointed intermediate; the run "
            "stays correct (cold partitions spill and reload) but will "
            "thrash -- cache a reused intermediate or checkpoint the loop "
            "target to cut the resident set",
        g.root != nullptr ? SpanOf(*g.root) : comp::Span{});
    d.estimated_bytes = static_cast<double>(total);
    out->push_back(std::move(d));
  }

 private:
  static uint64_t SourceBytes(const planner::Bindings& binds,
                              const std::string& name) {
    auto it = binds.find(name);
    if (it == binds.end()) return 0;
    const planner::Binding& b = it->second;
    switch (b.kind) {
      case planner::Binding::Kind::kTiled:
        return static_cast<uint64_t>(b.tiled.rows) *
               static_cast<uint64_t>(b.tiled.cols) * sizeof(double);
      case planner::Binding::Kind::kBlockVector:
        return static_cast<uint64_t>(b.vec.size) * sizeof(double);
      case planner::Binding::Kind::kCoo:
        // Dense-content COO: one ((i,j),v) record per element.
        return static_cast<uint64_t>(b.coo.rows) *
               static_cast<uint64_t>(b.coo.cols) * 3 * sizeof(double);
      case planner::Binding::Kind::kScalar:
      case planner::Binding::Kind::kLocal:
        return 0;  // driver-side, not part of the distributed resident set
    }
    return 0;
  }
};
SAC_REGISTER_LINT_RULE(ResidentSetOverBudgetRule);

// ---------------------------------------------------------------------------
// SAC-W07: multiply strategy suboptimal for the bound extents
// ---------------------------------------------------------------------------

class MultiplyStrategyRule : public LintRule {
 public:
  const char* code() const override { return "SAC-W07"; }
  const char* summary() const override {
    return "matrix-multiply translation suboptimal for the bound extents; "
           "the cost model estimates the other 5.3/5.4 plan cheaper";
  }
  void Run(const PlanGraph& g, std::vector<Diagnostic>* out) const override {
    if (g.binds == nullptr) return;
    const MultiplyAdvice adv = AdviseMultiply(g);
    if (!adv.applicable) return;
    // Materiality: the alternative must be at least 10% cheaper and save
    // a material amount of shuffle traffic.
    if (adv.alternative_ms >= adv.chosen_ms * 0.9) return;
    if (adv.bytes_saved < kMaterialityBytes) return;
    const char* chosen = adv.chosen_is_gbj
                             ? "5.4 group-by-join (SUMMA)"
                             : "5.3 join + reduceByKey";
    const char* other = adv.chosen_is_gbj ? "5.3 join + reduceByKey"
                                          : "5.4 group-by-join (SUMMA)";
    std::ostringstream msg;
    msg.precision(3);
    msg << std::fixed << "multiply uses the " << chosen
        << " plan, but for these extents the cost model estimates the "
        << other << " translation at " << adv.alternative_ms << " ms vs "
        << adv.chosen_ms << " ms, saving ~" << HumanMiB(adv.bytes_saved)
        << " of shuffle; enable PlannerOptions::auto_strategy (or unset "
           "SAC_AUTO_STRATEGY=off) to let the planner choose";
    Diagnostic d = Warning(code(), msg.str(),
                           g.root != nullptr ? SpanOf(*g.root) : comp::Span{});
    d.estimated_bytes = adv.bytes_saved;
    out->push_back(std::move(d));
  }
};
SAC_REGISTER_LINT_RULE(MultiplyStrategyRule);

// ---------------------------------------------------------------------------
// SAC-W08: shuffle partition count badly sized for extents / cores
// ---------------------------------------------------------------------------

class PartitionSizingRule : public LintRule {
 public:
  const char* code() const override { return "SAC-W08"; }
  const char* summary() const override {
    return "shuffle partition count badly sized for the estimated record "
           "count / cluster cores: empty partitions waste dispatch, too "
           "few leave cores idle";
  }
  void Run(const PlanGraph& g, std::vector<Diagnostic>* out) const override {
    if (g.binds == nullptr) return;
    const int executors = g.num_executors > 0 ? g.num_executors : 4;
    const int cores =
        executors * (g.cores_per_executor > 0 ? g.cores_per_executor : 1);
    const ShapeMap shapes = InferShapes(g);
    for (const planner::PlanNodePtr& n : g.nodes) {
      if (!n->is_shuffle()) continue;
      const auto sit = shapes.find(n.get());
      if (sit == shapes.end() || !sit->second.known) continue;
      const SymbolicShape& s = sit->second;
      if (s.records <= 0 || s.num_partitions <= 0) continue;
      const double np = s.num_partitions;
      if (np > 4.0 * s.records) {
        const int64_t empty =
            static_cast<int64_t>(np - std::min(s.records, np));
        out->push_back(Warning(
            code(),
            NodeDesc(*n) + " reduces into " +
                std::to_string(s.num_partitions) +
                " partitions but the shape pass estimates only " +
                std::to_string(static_cast<int64_t>(s.records)) +
                " output records; ~" + std::to_string(empty) +
                " partitions stay empty and their task dispatch is wasted "
                "-- size num_partitions near the record count (or enable "
                "auto_strategy)",
            SpanOf(*n)));
      } else if (np < cores && s.records >= 2.0 * cores) {
        out->push_back(Warning(
            code(),
            NodeDesc(*n) + " squeezes an estimated " +
                std::to_string(static_cast<int64_t>(s.records)) +
                " records into " + std::to_string(s.num_partitions) +
                " partitions on a cluster with " + std::to_string(cores) +
                " cores; " + std::to_string(cores - s.num_partitions) +
                " cores stay idle through the reduce -- raise "
                "num_partitions to at least the core count",
            SpanOf(*n)));
      }
    }
  }
};
SAC_REGISTER_LINT_RULE(PartitionSizingRule);

}  // namespace

}  // namespace sac::analysis
