#include "src/analysis/check.h"

#include <deque>
#include <memory>
#include <utility>

namespace sac::analysis {

using comp::Expr;
using comp::ExprPtr;
using comp::Pattern;
using comp::PatternPtr;
using comp::Qualifier;

namespace {

comp::Span SpanOf(const ExprPtr& e) {
  if (e->span.IsSet()) return e->span;
  return comp::Span{e->pos, e->pos};
}

comp::Span SpanOf(const PatternPtr& p) {
  if (p->span.IsSet()) return p->span;
  return comp::Span{p->pos, p->pos};
}

const char* KindNoun(SymbolInfo::Kind k) {
  switch (k) {
    case SymbolInfo::Kind::kScalar: return "scalar";
    case SymbolInfo::Kind::kLocal: return "local value";
    case SymbolInfo::Kind::kMatrix: return "matrix";
    case SymbolInfo::Kind::kVector: return "vector";
    case SymbolInfo::Kind::kCoo: return "sparse matrix";
  }
  return "value";
}

/// One generator over a named array, as seen while walking a
/// comprehension; index variables point back here so dimension-conformance
/// checks (SAC-E004) can compare extents.
struct GenRec {
  std::string source;
  SymbolInfo info;
  std::vector<std::string> idx;  // index variable per slot ("" = none)

  /// Extent of index slot `s` (-1 unknown).
  int64_t Extent(size_t s) const {
    if (info.kind == SymbolInfo::Kind::kVector) return info.rows;
    return s == 0 ? info.rows : info.cols;
  }
  /// "the 200 columns of A"-style description of slot `s`.
  std::string DimDesc(size_t s) const {
    const int64_t n = Extent(s);
    std::string count = n >= 0 ? std::to_string(n) : "unknown number of";
    std::string dim = info.kind == SymbolInfo::Kind::kVector
                          ? "elements"
                          : (s == 0 ? "rows" : "columns");
    return "the " + count + " " + dim + " of '" + source + "'";
  }
};

class Checker {
 public:
  Checker(const SymbolTable& syms, std::vector<Diagnostic>* out)
      : syms_(syms), out_(out) {}

  void Check(const ExprPtr& e) { CheckExpr(e); }

 private:
  struct LocalVar {
    const GenRec* gen = nullptr;  // set for generator index variables
    int slot = -1;
  };
  using Scope = std::unordered_map<std::string, LocalVar>;

  // ---- scope helpers -------------------------------------------------------

  const LocalVar* FindLocal(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->find(name);
      if (f != it->end()) return &f->second;
    }
    return nullptr;
  }

  /// The symbol `name` refers to, unless shadowed by a local binding.
  const SymbolInfo* FindSymbol(const std::string& name) const {
    if (FindLocal(name) != nullptr) return nullptr;
    auto it = syms_.find(name);
    return it != syms_.end() ? &it->second : nullptr;
  }

  bool IsBound(const std::string& name) const {
    return FindLocal(name) != nullptr || syms_.count(name) > 0;
  }

  void BindPattern(const PatternPtr& p, const GenRec* gen = nullptr,
                   int slot = -1) {
    switch (p->kind) {
      case Pattern::Kind::kVar:
        scopes_.back()[p->var] = LocalVar{gen, slot};
        break;
      case Pattern::Kind::kWildcard:
        break;
      case Pattern::Kind::kTuple:
        for (const PatternPtr& c : p->elems) BindPattern(c);
        break;
    }
  }

  // ---- diagnostics ---------------------------------------------------------

  void Report(Diagnostic d) { out_->push_back(std::move(d)); }

  /// SAC-E005 when `e` is a variable that (unshadowed) names an array.
  void CheckScalarOperand(const ExprPtr& e) {
    if (e->kind != Expr::Kind::kVar) return;
    const SymbolInfo* s = FindSymbol(e->str_val);
    if (s == nullptr || !s->is_array()) return;
    const std::string& n = e->str_val;
    std::string hint =
        s->kind == SymbolInfo::Kind::kVector
            ? "index it (" + n + "[i]) or iterate over it ((i,v) <- " + n + ")"
            : "index it (" + n + "[i,j]) or iterate over it (((i,j),v) <- " +
                  n + ")";
    Report(Error("SAC-E005",
                 std::string(KindNoun(s->kind)) + " '" + n +
                     "' used as a scalar; " + hint,
                 SpanOf(e)));
  }

  // ---- expression walk -----------------------------------------------------

  void CheckExpr(const ExprPtr& e) {
    if (e == nullptr) return;
    switch (e->kind) {
      case Expr::Kind::kIntLit:
      case Expr::Kind::kDoubleLit:
      case Expr::Kind::kBoolLit:
      case Expr::Kind::kStringLit:
        return;
      case Expr::Kind::kVar:
        if (!IsBound(e->str_val)) {
          Report(Error("SAC-E001",
                       "unbound variable '" + e->str_val + "'", SpanOf(e)));
        }
        return;
      case Expr::Kind::kBinary:
        CheckScalarOperand(e->children[0]);
        CheckScalarOperand(e->children[1]);
        CheckExpr(e->children[0]);
        CheckExpr(e->children[1]);
        return;
      case Expr::Kind::kUnary:
        CheckScalarOperand(e->children[0]);
        CheckExpr(e->children[0]);
        return;
      case Expr::Kind::kReduce:
        CheckExpr(e->children[0]);
        return;
      case Expr::Kind::kCall:
        for (const ExprPtr& c : e->children) CheckExpr(c);
        return;
      case Expr::Kind::kIndex:
        CheckIndex(e);
        return;
      case Expr::Kind::kTuple:
      case Expr::Kind::kIf:
        for (const ExprPtr& c : e->children) CheckExpr(c);
        return;
      case Expr::Kind::kBuild:
        // children[0] is the comprehension; the rest are dimension args,
        // which are scalar expressions.
        CheckExpr(e->children[0]);
        for (size_t i = 1; i < e->children.size(); ++i) {
          CheckScalarOperand(e->children[i]);
          CheckExpr(e->children[i]);
        }
        return;
      case Expr::Kind::kComprehension:
        CheckComp(*e);
        return;
    }
  }

  void CheckIndex(const ExprPtr& e) {
    const ExprPtr& arr = e->children[0];
    const size_t nsub = e->children.size() - 1;
    if (arr->kind == Expr::Kind::kVar) {
      const SymbolInfo* s = FindSymbol(arr->str_val);
      if (s != nullptr) {
        if (!s->is_array() && s->kind != SymbolInfo::Kind::kLocal) {
          Report(Error("SAC-E005",
                       "scalar '" + arr->str_val + "' indexed as an array",
                       SpanOf(e)));
        } else if (s->is_array() &&
                   nsub != static_cast<size_t>(s->index_arity())) {
          Report(Error(
              "SAC-E003",
              std::string(KindNoun(s->kind)) + " '" + arr->str_val +
                  "' takes " + std::to_string(s->index_arity()) +
                  (s->index_arity() == 1 ? " subscript" : " subscripts") +
                  ", got " + std::to_string(nsub),
              SpanOf(e)));
        }
      }
    }
    CheckExpr(arr);
    for (size_t i = 1; i < e->children.size(); ++i) {
      CheckScalarOperand(e->children[i]);
      CheckExpr(e->children[i]);
    }
  }

  // ---- comprehension walk --------------------------------------------------

  void CheckComp(const Expr& comp) {
    scopes_.emplace_back();
    std::vector<const GenRec*> gens;
    for (const Qualifier& q : comp.quals) {
      switch (q.kind) {
        case Qualifier::Kind::kGenerator: {
          CheckExpr(q.expr);
          const GenRec* rec = ClassifyGenerator(q);
          if (rec != nullptr) {
            gens.push_back(rec);
            BindGeneratorPattern(q.pattern, rec);
          } else {
            BindPattern(q.pattern);
          }
          break;
        }
        case Qualifier::Kind::kLet:
          CheckExpr(q.expr);
          BindPattern(q.pattern);
          break;
        case Qualifier::Kind::kGuard:
          CheckGuard(q);
          break;
        case Qualifier::Kind::kGroupBy:
          if (q.expr != nullptr) {
            CheckExpr(q.expr);
          } else {
            // `group by p` groups by already-bound variables.
            for (const std::string& v : q.pattern->Vars()) {
              if (!IsBound(v)) {
                Report(Error("SAC-E001",
                             "unbound variable '" + v + "' in group-by key",
                             SpanOf(q.pattern)));
              }
            }
          }
          BindPattern(q.pattern);
          break;
      }
    }
    CheckExpr(comp.head());
    scopes_.pop_back();
  }

  /// Builds a GenRec when the generator draws from a named array binding;
  /// reports SAC-E002/E003 for scalar sources and bad patterns.
  const GenRec* ClassifyGenerator(const Qualifier& q) {
    const ExprPtr& src = q.expr;
    if (src->kind == Expr::Kind::kIntLit ||
        src->kind == Expr::Kind::kDoubleLit ||
        src->kind == Expr::Kind::kBoolLit) {
      Report(Error("SAC-E002",
                   "generator iterates over a literal; expected an array or "
                   "range",
                   SpanOf(src)));
      return nullptr;
    }
    if (src->kind != Expr::Kind::kVar) return nullptr;
    const SymbolInfo* s = FindSymbol(src->str_val);
    if (s == nullptr) return nullptr;  // unbound already reported
    if (s->kind == SymbolInfo::Kind::kScalar) {
      Report(Error("SAC-E002",
                   "generator iterates over scalar '" + src->str_val +
                       "'; generators need an array or range",
                   SpanOf(src)));
      return nullptr;
    }
    if (!s->is_array()) return nullptr;  // local lists are fine, untracked

    gen_store_.push_back(std::make_unique<GenRec>());
    GenRec* rec = gen_store_.back().get();
    rec->source = src->str_val;
    rec->info = *s;
    CheckGeneratorPattern(q.pattern, rec);
    return rec;
  }

  /// Validates the element pattern against the source's row shape:
  /// matrices yield ((i,j),v) rows, vectors (i,v) rows. Fills rec->idx.
  void CheckGeneratorPattern(const PatternPtr& p, GenRec* rec) {
    const bool is_vector = rec->info.kind == SymbolInfo::Kind::kVector;
    rec->idx.assign(is_vector ? 1 : 2, "");
    if (p->kind != Pattern::Kind::kTuple) return;  // binds the whole row
    if (p->elems.size() != 2) {
      Report(Error("SAC-E003",
                   std::string(KindNoun(rec->info.kind)) + " '" +
                       rec->source + "' yields (index, value) pairs; " +
                       "pattern has " + std::to_string(p->elems.size()) +
                       " components",
                   SpanOf(p)));
      return;
    }
    const PatternPtr& key = p->elems[0];
    if (is_vector) {
      if (key->kind == Pattern::Kind::kTuple) {
        Report(Error("SAC-E003",
                     "vector '" + rec->source +
                         "' is indexed by a single integer; pattern "
                         "destructures it into " +
                         std::to_string(key->elems.size()) + " components",
                     SpanOf(key)));
        return;
      }
      if (key->kind == Pattern::Kind::kVar) rec->idx[0] = key->var;
      return;
    }
    if (key->kind == Pattern::Kind::kTuple) {
      if (key->elems.size() != 2) {
        Report(Error("SAC-E003",
                     std::string(KindNoun(rec->info.kind)) + " '" +
                         rec->source +
                         "' is indexed by (row, column) pairs; pattern "
                         "destructures the index into " +
                         std::to_string(key->elems.size()) + " components",
                     SpanOf(key)));
        return;
      }
      for (size_t s = 0; s < 2; ++s) {
        if (key->elems[s]->kind == Pattern::Kind::kVar) {
          rec->idx[s] = key->elems[s]->var;
        }
      }
    }
  }

  /// Binds pattern vars, tagging index variables with their generator.
  void BindGeneratorPattern(const PatternPtr& p, const GenRec* rec) {
    if (p->kind != Pattern::Kind::kTuple || p->elems.size() != 2) {
      BindPattern(p);
      return;
    }
    const PatternPtr& key = p->elems[0];
    if (key->kind == Pattern::Kind::kVar && rec->idx.size() == 1) {
      scopes_.back()[key->var] = LocalVar{rec, 0};
    } else if (key->kind == Pattern::Kind::kTuple &&
               key->elems.size() == rec->idx.size()) {
      for (size_t s = 0; s < key->elems.size(); ++s) {
        if (key->elems[s]->kind == Pattern::Kind::kVar) {
          scopes_.back()[key->elems[s]->var] =
              LocalVar{rec, static_cast<int>(s)};
        }
      }
    } else {
      BindPattern(key);
    }
    BindPattern(p->elems[1]);
  }

  /// Guards: the usual expression checks plus SAC-E004 for index
  /// equalities that join two generator dimensions of different extents.
  void CheckGuard(const Qualifier& q) {
    CheckExpr(q.expr);
    const ExprPtr& g = q.expr;
    if (g->kind != Expr::Kind::kBinary || g->bin_op != comp::BinOp::kEq) {
      return;
    }
    const ExprPtr& l = g->children[0];
    const ExprPtr& r = g->children[1];
    if (l->kind != Expr::Kind::kVar || r->kind != Expr::Kind::kVar) return;
    const LocalVar* lv = FindLocal(l->str_val);
    const LocalVar* rv = FindLocal(r->str_val);
    if (lv == nullptr || rv == nullptr) return;
    if (lv->gen == nullptr || rv->gen == nullptr) return;
    if (lv->gen == rv->gen) return;  // diagonal-style guard, not a join
    const int64_t le = lv->gen->Extent(static_cast<size_t>(lv->slot));
    const int64_t re = rv->gen->Extent(static_cast<size_t>(rv->slot));
    if (le < 0 || re < 0 || le == re) return;
    const comp::Span span = g->span.IsSet() ? g->span
                                            : comp::Span{g->pos, g->pos};
    Report(Error("SAC-E004",
                 "dimension mismatch: '" + l->str_val + "' ranges over " +
                     lv->gen->DimDesc(static_cast<size_t>(lv->slot)) +
                     " but '" + r->str_val + "' ranges over " +
                     rv->gen->DimDesc(static_cast<size_t>(rv->slot)),
                 span));
  }

  const SymbolTable& syms_;
  std::vector<Diagnostic>* out_;
  std::vector<Scope> scopes_;
  std::deque<std::unique_ptr<GenRec>> gen_store_;  // stable addresses
};

}  // namespace

SymbolTable SymbolsFromBindings(const planner::Bindings& binds) {
  SymbolTable out;
  for (const auto& [name, b] : binds) {
    SymbolInfo s;
    switch (b.kind) {
      case planner::Binding::Kind::kScalar:
        s.kind = SymbolInfo::Kind::kScalar;
        break;
      case planner::Binding::Kind::kLocal:
        s.kind = SymbolInfo::Kind::kLocal;
        break;
      case planner::Binding::Kind::kTiled:
        s.kind = SymbolInfo::Kind::kMatrix;
        s.rows = b.tiled.rows;
        s.cols = b.tiled.cols;
        break;
      case planner::Binding::Kind::kBlockVector:
        s.kind = SymbolInfo::Kind::kVector;
        s.rows = b.vec.size;
        break;
      case planner::Binding::Kind::kCoo:
        s.kind = SymbolInfo::Kind::kCoo;
        s.rows = b.coo.rows;
        s.cols = b.coo.cols;
        break;
    }
    out.emplace(name, s);
  }
  return out;
}

void CheckComprehension(const comp::ExprPtr& query, const SymbolTable& syms,
                        std::vector<Diagnostic>* out) {
  if (query == nullptr) return;
  Checker c(syms, out);
  c.Check(query);
}

}  // namespace sac::analysis
