// The comprehension checker: semantic validation of a *parsed* (not yet
// normalized) query against the session's bindings. Runs before planning,
// so its diagnostics carry the spans the parser recorded -- normalization
// rewrites would destroy them.
//
// Rule catalog (errors):
//   SAC-E001  unbound variable
//   SAC-E002  generator iterates over a scalar
//   SAC-E003  index arity mismatch (pattern or A[i,...] subscripts)
//   SAC-E004  dimension conformance: an index equality joins two
//             generator dimensions of different extents (the matmul
//             inner-dimension error)
//   SAC-E005  scalar/tile confusion: a distributed array used as a scalar
#ifndef SAC_ANALYSIS_CHECK_H_
#define SAC_ANALYSIS_CHECK_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/diagnostic.h"
#include "src/comp/ast.h"
#include "src/planner/plan.h"

namespace sac::analysis {

/// What a top-level name denotes, with dimensions when known (-1 unknown).
struct SymbolInfo {
  enum class Kind { kScalar, kLocal, kMatrix, kVector, kCoo };
  Kind kind = Kind::kScalar;
  int64_t rows = -1;  // kVector: the size
  int64_t cols = -1;

  bool is_array() const {
    return kind == Kind::kMatrix || kind == Kind::kVector ||
           kind == Kind::kCoo;
  }
  /// How many integer subscripts an A[...] on this symbol takes.
  int index_arity() const { return kind == Kind::kVector ? 1 : 2; }
};

using SymbolTable = std::unordered_map<std::string, SymbolInfo>;

SymbolTable SymbolsFromBindings(const planner::Bindings& binds);

/// Appends diagnostics for `query` (a parsed expression) to `out`.
/// Never fails: malformed constructs produce diagnostics, not statuses.
void CheckComprehension(const comp::ExprPtr& query, const SymbolTable& syms,
                        std::vector<Diagnostic>* out);

}  // namespace sac::analysis

#endif  // SAC_ANALYSIS_CHECK_H_
