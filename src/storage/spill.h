// Checkpoint spill files: one file per dataset partition, holding the
// partition's rows in the standard Value wire format. Written by
// Engine::Checkpoint when it truncates a dataset's lineage; read back by
// the dataset's replacement recompute closure when a checkpointed
// partition is dropped.
//
// Deliberately a leaf module: it depends only on runtime/value.h and the
// byte codecs, so engine.cc can include it without creating a cycle with
// the rest of src/storage (which includes runtime/engine.h).
#ifndef SAC_STORAGE_SPILL_H_
#define SAC_STORAGE_SPILL_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/runtime/value.h"

namespace sac::storage {

/// Creates `dir` (one level) if it does not exist.
Status EnsureSpillDir(const std::string& dir);

/// Writes `rows` to `path`, replacing any existing file. Returns the
/// file size in bytes (for checkpoint-write metering).
Result<uint64_t> WriteSpill(const std::string& path,
                            const runtime::ValueVec& rows);

/// Reads a spill file back. On success, `*bytes_read` (if non-null) is
/// set to the file size in bytes (for checkpoint-restore metering).
Result<runtime::ValueVec> ReadSpill(const std::string& path,
                                    uint64_t* bytes_read = nullptr);

/// Best-effort unlink, for DatasetImpl teardown. Missing files are fine.
void RemoveSpill(const std::string& path);

}  // namespace sac::storage

#endif  // SAC_STORAGE_SPILL_H_
