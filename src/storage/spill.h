// Spill files: one file per dataset partition, holding the partition's
// rows in the standard Value wire format. Written by Engine::Checkpoint
// (lineage truncation) and by the runtime BlockStore when the memory
// budget forces a partition out of RAM; read back by the checkpoint
// restore closure and by BlockStore reloads.
//
// Format (v2):
//   header   u64 magic "SACSPILL" | u32 version | u64 row count
//   payload  `count` serialized Values
//   footer   u64 FNV-1a checksum of header+payload | u64 total file size
//            | u64 footer magic "SACSFOOT"
//
// The footer lets the reader detect truncated or corrupted files and
// report them as StatusCode::kDataLoss — a distinct code so callers with
// lineage (the BlockStore) can route to recomputation instead of failing
// the query. Other I/O problems (missing file, wrong magic) stay kIoError.
//
// Deliberately a leaf module: it depends only on runtime/value.h and the
// byte codecs, so engine.cc can include it without creating a cycle with
// the rest of src/storage (which includes runtime/engine.h).
#ifndef SAC_STORAGE_SPILL_H_
#define SAC_STORAGE_SPILL_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/runtime/value.h"

namespace sac::storage {

/// Creates `dir` (one level) if it does not exist.
Status EnsureSpillDir(const std::string& dir);

/// Writes `rows` to `path`, replacing any existing file. Returns the
/// file size in bytes (for spill-write metering).
Result<uint64_t> WriteSpill(const std::string& path,
                            const runtime::ValueVec& rows);

/// Reads a spill file back. On success, `*bytes_read` (if non-null) is
/// set to the file size in bytes (for restore metering). Truncated or
/// corrupted files fail with StatusCode::kDataLoss.
Result<runtime::ValueVec> ReadSpill(const std::string& path,
                                    uint64_t* bytes_read = nullptr);

/// Best-effort unlink, for DatasetImpl teardown. Missing files are fine.
void RemoveSpill(const std::string& path);

/// Best-effort removal of a spill directory and every regular file in it
/// (non-recursive, matching EnsureSpillDir's one-level contract). Used by
/// Engine teardown to reclaim its private spill directory.
void RemoveSpillDir(const std::string& dir);

}  // namespace sac::storage

#endif  // SAC_STORAGE_SPILL_H_
