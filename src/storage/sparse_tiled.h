// Sparse-tiled matrices: the Section 8 extension. Same grid layout as
// TiledMatrix but each tile is CSR-compressed, so shuffling a sparse
// matrix costs O(nnz) bytes instead of O(n^2). Operations on this storage
// are black-box library kernels (SpMV / sparse-dense products), following
// the paper's own recommendation for computations that the comprehension
// rules do not derive.
#ifndef SAC_STORAGE_SPARSE_TILED_H_
#define SAC_STORAGE_SPARSE_TILED_H_

#include "src/la/sparse_tile.h"
#include "src/storage/tiled.h"

namespace sac::storage {

/// Distributed bag of ((ii,jj), SparseTile).
struct SparseTiledMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t block = 0;
  Dataset tiles;

  int64_t grid_rows() const { return CeilDiv(rows, block); }
  int64_t grid_cols() const { return CeilDiv(cols, block); }
};

/// Compresses a dense tiled matrix tile by tile (narrow op). Tiles with
/// no nonzeros are dropped entirely.
Result<SparseTiledMatrix> Compress(Engine* eng, const TiledMatrix& m);

/// Expands back to dense tiles; missing tiles materialize as zeros.
Result<TiledMatrix> Decompress(Engine* eng, const SparseTiledMatrix& m);

/// Total number of stored nonzeros.
Result<int64_t> Nnz(Engine* eng, const SparseTiledMatrix& m);

/// Total serialized payload bytes of all sparse tiles (for the
/// compression-ratio ablation).
Result<int64_t> PayloadBytes(Engine* eng, const SparseTiledMatrix& m);

/// y = A x with sparse A: join sparse tiles with vector blocks on the
/// column-panel coordinate, per-pair SpMV partials, reduceByKey add.
Result<BlockVector> SpMatVec(Engine* eng, const SparseTiledMatrix& a,
                             const BlockVector& x);

/// C = A B with sparse A and dense B (SUMMA-shaped: replicate + cogroup,
/// per-pair CSR x dense gemm accumulated in place).
Result<TiledMatrix> SpMultiply(Engine* eng, const SparseTiledMatrix& a,
                               const TiledMatrix& b);

}  // namespace sac::storage

#endif  // SAC_STORAGE_SPARSE_TILED_H_
