#include "src/storage/io.h"

#include <cstdio>
#include <memory>

#include "src/common/serialize.h"

namespace sac::storage {

using runtime::Value;
using runtime::ValueVec;

namespace {

constexpr uint64_t kMagic = 0x5341435F54494C45ULL;  // "SAC_TILE"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status SaveTiled(Engine* eng, const TiledMatrix& m, const std::string& path) {
  SAC_ASSIGN_OR_RETURN(ValueVec rows, eng->Collect(m.tiles));
  ByteWriter w;
  w.PutU64(kMagic);
  w.PutU32(kVersion);
  w.PutI64(m.rows);
  w.PutI64(m.cols);
  w.PutI64(m.block);
  w.PutU64(rows.size());
  for (const Value& row : rows) row.Serialize(&w);

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open '" + path + "' for writing");
  if (std::fwrite(w.buffer().data(), 1, w.size(), f.get()) != w.size()) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<TiledMatrix> LoadTiled(Engine* eng, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open '" + path + "'");
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (size < 0) return Status::IoError("cannot stat '" + path + "'");
  std::vector<uint8_t> buf(static_cast<size_t>(size));
  if (std::fread(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
    return Status::IoError("short read from '" + path + "'");
  }

  ByteReader r(buf);
  SAC_ASSIGN_OR_RETURN(uint64_t magic, r.GetU64());
  if (magic != kMagic) {
    return Status::IoError("'" + path + "' is not a SAC tiled-matrix file");
  }
  SAC_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kVersion) {
    return Status::IoError("unsupported file version " +
                           std::to_string(version));
  }
  TiledMatrix m;
  SAC_ASSIGN_OR_RETURN(m.rows, r.GetI64());
  SAC_ASSIGN_OR_RETURN(m.cols, r.GetI64());
  SAC_ASSIGN_OR_RETURN(m.block, r.GetI64());
  if (m.rows <= 0 || m.cols <= 0 || m.block <= 0) {
    return Status::IoError("corrupt header in '" + path + "'");
  }
  SAC_ASSIGN_OR_RETURN(uint64_t count, r.GetU64());
  ValueVec rows;
  rows.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SAC_ASSIGN_OR_RETURN(Value row, Value::Deserialize(&r));
    if (!row.is_tuple() || row.TupleSize() != 2 || !row.At(1).is_tile()) {
      return Status::IoError("corrupt tile record in '" + path + "'");
    }
    rows.push_back(std::move(row));
  }
  m.tiles = eng->Parallelize(std::move(rows),
                             eng->config().default_parallelism);
  return m;
}

}  // namespace sac::storage
