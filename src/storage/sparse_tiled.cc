#include "src/storage/sparse_tiled.h"

#include <unordered_map>

#include "src/la/kernels.h"

namespace sac::storage {

using runtime::Dataset;
using runtime::Value;
using runtime::ValueVec;
using runtime::VInt;
using runtime::VPair;

Result<SparseTiledMatrix> Compress(Engine* eng, const TiledMatrix& m) {
  SAC_ASSIGN_OR_RETURN(
      Dataset tiles,
      eng->FlatMap(
          m.tiles,
          [](const Value& row, ValueVec* out) {
            la::SparseTile st = la::SparseTile::FromDense(row.At(1).AsTile());
            if (st.nnz() == 0) return;  // all-zero tiles vanish
            out->push_back(
                VPair(row.At(0), Value::SparseTileVal(std::move(st))));
          },
          "compressTiles"));
  return SparseTiledMatrix{m.rows, m.cols, m.block, tiles};
}

Result<TiledMatrix> Decompress(Engine* eng, const SparseTiledMatrix& m) {
  SAC_ASSIGN_OR_RETURN(
      Dataset tiles,
      eng->Map(
          m.tiles,
          [](const Value& row) {
            return VPair(row.At(0),
                         Value::TileVal(row.At(1).AsSparseTile().ToDense()));
          },
          "decompressTiles"));
  // Missing (all-zero) tiles stay missing; ToLocal fills zeros.
  return TiledMatrix{m.rows, m.cols, m.block, tiles};
}

Result<int64_t> Nnz(Engine* eng, const SparseTiledMatrix& m) {
  SAC_ASSIGN_OR_RETURN(
      Dataset counts,
      eng->Map(m.tiles, [](const Value& row) {
        return Value::Int(row.At(1).AsSparseTile().nnz());
      }));
  SAC_ASSIGN_OR_RETURN(ValueVec rows, eng->Collect(counts));
  int64_t total = 0;
  for (const Value& v : rows) total += v.AsInt();
  return total;
}

Result<int64_t> PayloadBytes(Engine* eng, const SparseTiledMatrix& m) {
  SAC_ASSIGN_OR_RETURN(
      Dataset sizes,
      eng->Map(m.tiles, [](const Value& row) {
        return Value::Int(
            static_cast<int64_t>(row.At(1).AsSparseTile().PayloadBytes()));
      }));
  SAC_ASSIGN_OR_RETURN(ValueVec rows, eng->Collect(sizes));
  int64_t total = 0;
  for (const Value& v : rows) total += v.AsInt();
  return total;
}

Result<BlockVector> SpMatVec(Engine* eng, const SparseTiledMatrix& a,
                             const BlockVector& x) {
  if (a.cols != x.size || a.block != x.block) {
    return Status::InvalidArgument("SpMatVec dimension/block mismatch");
  }
  // Key sparse tiles by column panel, join with the vector blocks.
  SAC_ASSIGN_OR_RETURN(
      Dataset keyed,
      eng->Map(
          a.tiles,
          [](const Value& row) {
            return VPair(row.At(0).At(1),
                         VPair(row.At(0).At(0), row.At(1)));
          },
          "keyByColPanel"));
  SAC_ASSIGN_OR_RETURN(Dataset joined, eng->Join(keyed, x.blocks));
  SAC_ASSIGN_OR_RETURN(
      Dataset partials,
      eng->Map(
          joined,
          [](const Value& row) {
            const Value& av = row.At(1).At(0);
            const la::SparseTile& t = av.At(1).AsSparseTile();
            const la::Tile& xb = row.At(1).At(1).AsTile();
            la::Tile y(1, t.rows());
            la::SpMV(t, xb, &y);
            return VPair(av.At(0), Value::TileVal(std::move(y)));
          },
          "spmvPartials"));
  SAC_ASSIGN_OR_RETURN(
      Dataset reduced,
      eng->ReduceByKey(partials, [](const Value& p, const Value& q) {
        Value acc = p;
        la::AddInPlace(acc.MutableTile(), q.AsTile());
        return acc;
      }));
  return BlockVector{a.rows, a.block, reduced};
}

Result<TiledMatrix> SpMultiply(Engine* eng, const SparseTiledMatrix& a,
                               const TiledMatrix& b) {
  if (a.cols != b.rows || a.block != b.block) {
    return Status::InvalidArgument("SpMultiply dimension/block mismatch");
  }
  const int64_t block = a.block;
  const int64_t out_rows = a.rows, out_cols = b.cols;
  const int64_t out_gr = CeilDiv(out_rows, block);
  const int64_t out_gc = CeilDiv(out_cols, block);
  SAC_ASSIGN_OR_RETURN(
      Dataset as,
      eng->FlatMap(
          a.tiles,
          [out_gc](const Value& row, ValueVec* out) {
            for (int64_t q = 0; q < out_gc; ++q) {
              out->push_back(
                  VPair(runtime::VTuple({row.At(0).At(0), VInt(q)}),
                        VPair(row.At(0).At(1), row.At(1))));
            }
          },
          "replicateSparseA"));
  SAC_ASSIGN_OR_RETURN(
      Dataset bs,
      eng->FlatMap(
          b.tiles,
          [out_gr](const Value& row, ValueVec* out) {
            for (int64_t q = 0; q < out_gr; ++q) {
              out->push_back(
                  VPair(runtime::VTuple({VInt(q), row.At(0).At(1)}),
                        VPair(row.At(0).At(0), row.At(1))));
            }
          },
          "replicateDenseB"));
  SAC_ASSIGN_OR_RETURN(Dataset cg, eng->CoGroup(as, bs));
  SAC_ASSIGN_OR_RETURN(
      Dataset out,
      eng->FlatMap(
          cg,
          [out_rows, out_cols, block](const Value& row, ValueVec* outv) {
            const ValueVec& a_list = row.At(1).At(0).AsList();
            const ValueVec& b_list = row.At(1).At(1).AsList();
            if (a_list.empty() || b_list.empty()) return;
            std::unordered_map<int64_t, std::vector<const Value*>> b_by_k;
            for (const Value& bv : b_list) {
              b_by_k[bv.At(0).AsInt()].push_back(&bv);
            }
            const int64_t bi = row.At(0).At(0).AsInt();
            const int64_t bj = row.At(0).At(1).AsInt();
            la::Tile acc(std::min(block, out_rows - bi * block),
                         std::min(block, out_cols - bj * block));
            bool any = false;
            for (const Value& av : a_list) {
              auto it = b_by_k.find(av.At(0).AsInt());
              if (it == b_by_k.end()) continue;
              for (const Value* bv : it->second) {
                la::SpGemmAccum(av.At(1).AsSparseTile(), bv->At(1).AsTile(),
                                &acc);
                any = true;
              }
            }
            if (any) {
              outv->push_back(
                  VPair(row.At(0), Value::TileVal(std::move(acc))));
            }
          },
          "sparseSumma"));
  return TiledMatrix{out_rows, out_cols, block, out};
}

}  // namespace sac::storage
