#include "src/storage/spill.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/serialize.h"

namespace sac::storage {

using runtime::Value;
using runtime::ValueVec;

namespace {

constexpr uint64_t kMagic = 0x5341435350494C4CULL;  // "SACSPILL"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status EnsureSpillDir(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("empty spill directory");
  struct stat st{};
  if (::stat(dir.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      return Status::IoError("spill path '" + dir + "' is not a directory");
    }
    return Status::OK();
  }
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create spill directory '" + dir + "'");
  }
  return Status::OK();
}

Result<uint64_t> WriteSpill(const std::string& path, const ValueVec& rows) {
  ByteWriter w;
  w.PutU64(kMagic);
  w.PutU32(kVersion);
  w.PutU64(rows.size());
  for (const Value& row : rows) row.Serialize(&w);

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open spill '" + path + "' for writing");
  if (std::fwrite(w.buffer().data(), 1, w.size(), f.get()) != w.size()) {
    return Status::IoError("short write to spill '" + path + "'");
  }
  return static_cast<uint64_t>(w.size());
}

Result<ValueVec> ReadSpill(const std::string& path, uint64_t* bytes_read) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open spill '" + path + "'");
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (size < 0) return Status::IoError("cannot stat spill '" + path + "'");
  std::vector<uint8_t> buf(static_cast<size_t>(size));
  if (std::fread(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
    return Status::IoError("short read from spill '" + path + "'");
  }

  ByteReader r(buf);
  SAC_ASSIGN_OR_RETURN(uint64_t magic, r.GetU64());
  if (magic != kMagic) {
    return Status::IoError("'" + path + "' is not a SAC spill file");
  }
  SAC_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kVersion) {
    return Status::IoError("unsupported spill version " +
                           std::to_string(version));
  }
  SAC_ASSIGN_OR_RETURN(uint64_t count, r.GetU64());
  ValueVec rows;
  rows.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SAC_ASSIGN_OR_RETURN(Value row, Value::Deserialize(&r));
    rows.push_back(std::move(row));
  }
  if (bytes_read != nullptr) *bytes_read = static_cast<uint64_t>(size);
  return rows;
}

void RemoveSpill(const std::string& path) {
  std::remove(path.c_str());
}

}  // namespace sac::storage
