#include "src/storage/spill.h"

#include <dirent.h>
#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/serialize.h"

namespace sac::storage {

using runtime::Value;
using runtime::ValueVec;

namespace {

constexpr uint64_t kMagic = 0x5341435350494C4CULL;        // "SACSPILL"
constexpr uint64_t kFooterMagic = 0x53414353464F4F54ULL;  // "SACSFOOT"
constexpr uint32_t kVersion = 2;
// footer = checksum + total file size + footer magic, 8 bytes each.
constexpr size_t kFooterBytes = 24;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// FNV-1a over a byte range. Not cryptographic — it only has to catch
/// torn writes, truncation, and bit rot, cheaply and dependency-free.
uint64_t Fnv1a(const uint8_t* data, size_t len) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

Status Corrupt(const std::string& path, const std::string& why) {
  return Status::DataLoss("spill '" + path + "' " + why);
}

}  // namespace

Status EnsureSpillDir(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("empty spill directory");
  struct stat st{};
  if (::stat(dir.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      return Status::IoError("spill path '" + dir + "' is not a directory");
    }
    return Status::OK();
  }
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create spill directory '" + dir + "'");
  }
  return Status::OK();
}

Result<uint64_t> WriteSpill(const std::string& path, const ValueVec& rows) {
  ByteWriter w;
  w.PutU64(kMagic);
  w.PutU32(kVersion);
  w.PutU64(rows.size());
  for (const Value& row : rows) row.Serialize(&w);
  const uint64_t checksum = Fnv1a(w.buffer().data(), w.size());
  w.PutU64(checksum);
  w.PutU64(static_cast<uint64_t>(w.size()) + 16);  // size incl. this footer
  w.PutU64(kFooterMagic);

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open spill '" + path + "' for writing");
  if (std::fwrite(w.buffer().data(), 1, w.size(), f.get()) != w.size()) {
    return Status::IoError("short write to spill '" + path + "'");
  }
  return static_cast<uint64_t>(w.size());
}

Result<ValueVec> ReadSpill(const std::string& path, uint64_t* bytes_read) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open spill '" + path + "'");
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (size < 0) return Status::IoError("cannot stat spill '" + path + "'");
  std::vector<uint8_t> buf(static_cast<size_t>(size));
  if (std::fread(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
    return Status::IoError("short read from spill '" + path + "'");
  }

  // Header magic first: a file that never was a SAC spill is a caller
  // bug (kIoError), not recoverable data loss. Anything after the magic
  // is covered by the footer checks below.
  if (buf.size() >= 8) {
    ByteReader hdr(buf.data(), 8);
    SAC_ASSIGN_OR_RETURN(uint64_t magic, hdr.GetU64());
    if (magic != kMagic) {
      return Status::IoError("'" + path + "' is not a SAC spill file");
    }
  }
  // Validate the footer before trusting a single payload byte: a torn or
  // truncated file must surface as kDataLoss, not as a deserializer error.
  if (buf.size() < kFooterBytes + 20) {  // 20 = header (magic+ver+count)
    return Corrupt(path, "is truncated (shorter than header + footer)");
  }
  {
    ByteReader ftr(buf.data() + buf.size() - kFooterBytes, kFooterBytes);
    SAC_ASSIGN_OR_RETURN(uint64_t stored_checksum, ftr.GetU64());
    SAC_ASSIGN_OR_RETURN(uint64_t stored_size, ftr.GetU64());
    SAC_ASSIGN_OR_RETURN(uint64_t footer_magic, ftr.GetU64());
    if (footer_magic != kFooterMagic) {
      return Corrupt(path, "has no footer (truncated or overwritten)");
    }
    if (stored_size != buf.size()) {
      return Corrupt(path, "length mismatch: footer says " +
                               std::to_string(stored_size) + " bytes, file has " +
                               std::to_string(buf.size()));
    }
    const uint64_t checksum = Fnv1a(buf.data(), buf.size() - kFooterBytes);
    if (checksum != stored_checksum) {
      return Corrupt(path, "checksum mismatch (corrupted payload)");
    }
  }

  ByteReader r(buf);
  SAC_ASSIGN_OR_RETURN(uint64_t magic, r.GetU64());
  if (magic != kMagic) {
    return Status::IoError("'" + path + "' is not a SAC spill file");
  }
  SAC_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kVersion) {
    return Status::IoError("unsupported spill version " +
                           std::to_string(version));
  }
  SAC_ASSIGN_OR_RETURN(uint64_t count, r.GetU64());
  ValueVec rows;
  rows.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SAC_ASSIGN_OR_RETURN(Value row, Value::Deserialize(&r));
    rows.push_back(std::move(row));
  }
  if (bytes_read != nullptr) *bytes_read = static_cast<uint64_t>(size);
  return rows;
}

void RemoveSpill(const std::string& path) {
  std::remove(path.c_str());
}

void RemoveSpillDir(const std::string& dir) {
  if (dir.empty()) return;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = dir + "/" + name;
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      std::remove(path.c_str());
    }
  }
  ::closedir(d);
  ::rmdir(dir.c_str());
}

}  // namespace sac::storage
