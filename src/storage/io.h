// Binary persistence for tiled matrices: a simple single-file container
// (magic, dims, block, tile count, then serialized ((ii,jj),Tile) rows)
// so pipelines can checkpoint distributed matrices between sessions.
#ifndef SAC_STORAGE_IO_H_
#define SAC_STORAGE_IO_H_

#include <string>

#include "src/storage/tiled.h"

namespace sac::storage {

/// Writes all tiles of `m` (collected to the driver) to `path`.
Status SaveTiled(Engine* eng, const TiledMatrix& m, const std::string& path);

/// Reads a matrix previously written by SaveTiled and redistributes it.
Result<TiledMatrix> LoadTiled(Engine* eng, const std::string& path);

}  // namespace sac::storage

#endif  // SAC_STORAGE_IO_H_
