#include "src/storage/tiled.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace sac::storage {

using runtime::Partition;
using runtime::VInt;
using runtime::VPair;

namespace {

Status CheckDims(int64_t rows, int64_t cols, int64_t block) {
  if (rows <= 0 || cols <= 0) {
    return Status::InvalidArgument("matrix dimensions must be positive");
  }
  if (block <= 0) {
    return Status::InvalidArgument("block size must be positive");
  }
  return Status::OK();
}

}  // namespace

Result<TiledMatrix> RandomTiled(Engine* eng, int64_t rows, int64_t cols,
                                int64_t block, uint64_t seed, double lo,
                                double hi) {
  SAC_RETURN_NOT_OK(CheckDims(rows, cols, block));
  TiledMatrix m{rows, cols, block, nullptr};
  const int64_t gr = m.grid_rows(), gc = m.grid_cols();
  const int nparts = eng->config().default_parallelism;
  Rng base(seed);
  SAC_ASSIGN_OR_RETURN(
      m.tiles,
      eng->GeneratePartitions(
          nparts,
          [=](int p, Partition* out) {
            for (int64_t idx = 0; idx < gr * gc; ++idx) {
              if (idx % nparts != p) continue;
              const int64_t ii = idx / gc, jj = idx % gc;
              la::Tile t(m.tile_rows(ii), m.tile_cols(jj));
              Rng rng = base.Split(static_cast<uint64_t>(idx));
              t.FillRandom(&rng, lo, hi);
              out->push_back(VPair(runtime::VIdx2(ii, jj),
                                   Value::TileVal(std::move(t))));
            }
            return Status::OK();
          },
          "randomTiled"));
  return m;
}

Result<TiledMatrix> RandomSparseTiled(Engine* eng, int64_t rows, int64_t cols,
                                      int64_t block, uint64_t seed,
                                      double density, int int_hi) {
  SAC_RETURN_NOT_OK(CheckDims(rows, cols, block));
  TiledMatrix m{rows, cols, block, nullptr};
  const int64_t gr = m.grid_rows(), gc = m.grid_cols();
  const int nparts = eng->config().default_parallelism;
  Rng base(seed);
  SAC_ASSIGN_OR_RETURN(
      m.tiles,
      eng->GeneratePartitions(
          nparts,
          [=](int p, Partition* out) {
            for (int64_t idx = 0; idx < gr * gc; ++idx) {
              if (idx % nparts != p) continue;
              const int64_t ii = idx / gc, jj = idx % gc;
              la::Tile t(m.tile_rows(ii), m.tile_cols(jj));
              Rng rng = base.Split(static_cast<uint64_t>(idx));
              for (int64_t k = 0; k < t.size(); ++k) {
                if (rng.NextDouble() < density) {
                  t.data()[k] = static_cast<double>(
                      1 + rng.NextBelow(static_cast<uint64_t>(int_hi)));
                }
              }
              out->push_back(VPair(runtime::VIdx2(ii, jj),
                                   Value::TileVal(std::move(t))));
            }
            return Status::OK();
          },
          "randomSparseTiled"));
  return m;
}

Result<BlockVector> RandomBlockVector(Engine* eng, int64_t size, int64_t block,
                                      uint64_t seed, double lo, double hi) {
  SAC_RETURN_NOT_OK(CheckDims(size, 1, block));
  BlockVector v{size, block, nullptr};
  const int64_t g = v.grid();
  const int nparts = eng->config().default_parallelism;
  Rng base(seed);
  SAC_ASSIGN_OR_RETURN(
      v.blocks,
      eng->GeneratePartitions(
          nparts,
          [=](int p, Partition* out) {
            for (int64_t ii = 0; ii < g; ++ii) {
              if (ii % nparts != p) continue;
              la::Tile t(1, v.block_len(ii));
              Rng rng = base.Split(static_cast<uint64_t>(ii));
              t.FillRandom(&rng, lo, hi);
              out->push_back(VPair(VInt(ii), Value::TileVal(std::move(t))));
            }
            return Status::OK();
          },
          "randomBlockVector"));
  return v;
}

Result<TiledMatrix> FromLocal(Engine* eng, const la::Tile& local,
                              int64_t block) {
  SAC_RETURN_NOT_OK(CheckDims(local.rows(), local.cols(), block));
  TiledMatrix m{local.rows(), local.cols(), block, nullptr};
  ValueVec rows;
  for (int64_t ii = 0; ii < m.grid_rows(); ++ii) {
    for (int64_t jj = 0; jj < m.grid_cols(); ++jj) {
      la::Tile t(m.tile_rows(ii), m.tile_cols(jj));
      for (int64_t i = 0; i < t.rows(); ++i) {
        for (int64_t j = 0; j < t.cols(); ++j) {
          t.Set(i, j, local.At(ii * block + i, jj * block + j));
        }
      }
      rows.push_back(
          VPair(runtime::VIdx2(ii, jj), Value::TileVal(std::move(t))));
    }
  }
  m.tiles = eng->Parallelize(std::move(rows),
                             eng->config().default_parallelism);
  return m;
}

Result<la::Tile> ToLocal(Engine* eng, const TiledMatrix& m) {
  SAC_ASSIGN_OR_RETURN(ValueVec rows, eng->Collect(m.tiles));
  la::Tile out(m.rows, m.cols);
  for (const Value& row : rows) {
    const int64_t ii = row.At(0).At(0).AsInt();
    const int64_t jj = row.At(0).At(1).AsInt();
    const la::Tile& t = row.At(1).AsTile();
    if (ii < 0 || ii >= m.grid_rows() || jj < 0 || jj >= m.grid_cols()) {
      return Status::RuntimeError("tile coordinate out of grid");
    }
    for (int64_t i = 0; i < t.rows(); ++i) {
      for (int64_t j = 0; j < t.cols(); ++j) {
        out.Set(ii * m.block + i, jj * m.block + j, t.At(i, j));
      }
    }
  }
  return out;
}

Result<std::vector<double>> ToLocalVector(Engine* eng, const BlockVector& v) {
  SAC_ASSIGN_OR_RETURN(ValueVec rows, eng->Collect(v.blocks));
  std::vector<double> out(static_cast<size_t>(v.size), 0.0);
  for (const Value& row : rows) {
    const int64_t ii = row.At(0).AsInt();
    const la::Tile& t = row.At(1).AsTile();
    for (int64_t j = 0; j < t.cols(); ++j) {
      const int64_t idx = ii * v.block + j;
      if (idx < 0 || idx >= v.size) {
        return Status::RuntimeError("vector block out of range");
      }
      out[static_cast<size_t>(idx)] = t.At(0, j);
    }
  }
  return out;
}

Result<BlockVector> VectorFromLocal(Engine* eng,
                                    const std::vector<double>& data,
                                    int64_t block) {
  SAC_RETURN_NOT_OK(CheckDims(static_cast<int64_t>(data.size()), 1, block));
  BlockVector v{static_cast<int64_t>(data.size()), block, nullptr};
  ValueVec rows;
  for (int64_t ii = 0; ii < v.grid(); ++ii) {
    la::Tile t(1, v.block_len(ii));
    for (int64_t j = 0; j < t.cols(); ++j) {
      t.Set(0, j, data[static_cast<size_t>(ii * block + j)]);
    }
    rows.push_back(VPair(VInt(ii), Value::TileVal(std::move(t))));
  }
  v.blocks =
      eng->Parallelize(std::move(rows), eng->config().default_parallelism);
  return v;
}

Result<CooMatrix> ToCoo(Engine* eng, const TiledMatrix& m) {
  const int64_t block = m.block;
  SAC_ASSIGN_OR_RETURN(
      Dataset entries,
      eng->FlatMap(
          m.tiles,
          [block](const Value& row, ValueVec* out) {
            const int64_t ii = row.At(0).At(0).AsInt();
            const int64_t jj = row.At(0).At(1).AsInt();
            const la::Tile& t = row.At(1).AsTile();
            for (int64_t i = 0; i < t.rows(); ++i) {
              for (int64_t j = 0; j < t.cols(); ++j) {
                out->push_back(
                    VPair(runtime::VIdx2(ii * block + i, jj * block + j),
                          Value::Double(t.At(i, j))));
              }
            }
          },
          "sparsifyTiles"));
  return CooMatrix{m.rows, m.cols, entries};
}

Result<TiledMatrix> TiledFromCoo(Engine* eng, const CooMatrix& coo,
                                 int64_t block) {
  SAC_RETURN_NOT_OK(CheckDims(coo.rows, coo.cols, block));
  TiledMatrix m{coo.rows, coo.cols, block, nullptr};
  // Key every element by its tile coordinate (the paper's tiled builder),
  // shuffle with groupByKey, then assemble dense tiles.
  SAC_ASSIGN_OR_RETURN(
      Dataset keyed,
      eng->Map(
          coo.entries,
          [block](const Value& row) {
            const int64_t i = row.At(0).At(0).AsInt();
            const int64_t j = row.At(0).At(1).AsInt();
            return VPair(runtime::VIdx2(i / block, j / block),
                         VPair(runtime::VIdx2(i % block, j % block),
                               row.At(1)));
          },
          "keyByTile"));
  SAC_ASSIGN_OR_RETURN(Dataset grouped, eng->GroupByKey(keyed));
  const TiledMatrix dims = m;
  SAC_ASSIGN_OR_RETURN(
      m.tiles,
      eng->Map(
          grouped,
          [dims](const Value& row) {
            const int64_t ii = row.At(0).At(0).AsInt();
            const int64_t jj = row.At(0).At(1).AsInt();
            la::Tile t(dims.tile_rows(ii), dims.tile_cols(jj));
            for (const Value& kv : row.At(1).AsList()) {
              const int64_t di = kv.At(0).At(0).AsInt();
              const int64_t dj = kv.At(0).At(1).AsInt();
              if (di >= 0 && di < t.rows() && dj >= 0 && dj < t.cols()) {
                t.Set(di, dj, kv.At(1).AsDouble());
              }
            }
            return VPair(row.At(0), Value::TileVal(std::move(t)));
          },
          "buildTiles"));
  return m;
}

Result<CooMatrix> RandomCoo(Engine* eng, int64_t rows, int64_t cols,
                            uint64_t seed, double lo, double hi,
                            int num_partitions) {
  SAC_RETURN_NOT_OK(CheckDims(rows, cols, 1));
  if (num_partitions <= 0) num_partitions = eng->config().default_parallelism;
  Rng base(seed);
  const int nparts = num_partitions;
  SAC_ASSIGN_OR_RETURN(
      Dataset entries,
      eng->GeneratePartitions(
          nparts,
          [=](int p, Partition* out) {
            Rng rng = base.Split(static_cast<uint64_t>(p));
            for (int64_t i = p; i < rows; i += nparts) {
              for (int64_t j = 0; j < cols; ++j) {
                out->push_back(VPair(runtime::VIdx2(i, j),
                                     Value::Double(rng.Uniform(lo, hi))));
              }
            }
            return Status::OK();
          },
          "randomCoo"));
  return CooMatrix{rows, cols, entries};
}

Result<ValueVec> SparsifyLocal(Engine* eng, const TiledMatrix& m) {
  SAC_ASSIGN_OR_RETURN(CooMatrix coo, ToCoo(eng, m));
  return eng->Collect(coo.entries);
}

Result<double> MaxAbsDiff(Engine* eng, const TiledMatrix& a,
                          const TiledMatrix& b) {
  if (a.rows != b.rows || a.cols != b.cols) {
    return Status::InvalidArgument("shape mismatch in MaxAbsDiff");
  }
  SAC_ASSIGN_OR_RETURN(la::Tile la_, ToLocal(eng, a));
  SAC_ASSIGN_OR_RETURN(la::Tile lb, ToLocal(eng, b));
  double best = 0.0;
  for (int64_t i = 0; i < la_.size(); ++i) {
    best = std::max(best, std::fabs(la_.data()[i] - lb.data()[i]));
  }
  return best;
}

}  // namespace sac::storage
