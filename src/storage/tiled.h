// Distributed block-array storages (Section 5 of the paper):
//
//  * TiledMatrix -- a distributed bag of non-overlapping square tiles,
//    rows shaped ((ii, jj), Tile). Element (i, j) lives in tile
//    (i/N, j/N) at in-tile offset (i%N, j%N). Edge tiles are smaller
//    when a dimension is not a multiple of the block size.
//  * BlockVector -- blocks shaped (ii, Tile(1, len)).
//  * CooMatrix -- the coordinate (sparse) format of Section 4, rows
//    shaped ((i, j), v); the DIABLO-style baseline representation.
//
// Sparsifiers convert a storage to its abstract association list;
// builders construct a storage from one (Section 1.1). Both are provided
// as distributed operators so the planner can splice them into plans, and
// as local conversions for tests and small data.
#ifndef SAC_STORAGE_TILED_H_
#define SAC_STORAGE_TILED_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/la/tile.h"
#include "src/runtime/engine.h"

namespace sac::storage {

using runtime::Dataset;
using runtime::Engine;
using runtime::Value;
using runtime::ValueVec;

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// A tiled (block) matrix: RDD of ((ii,jj), Tile).
struct TiledMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t block = 0;  // N, tile side length
  Dataset tiles;

  int64_t grid_rows() const { return CeilDiv(rows, block); }
  int64_t grid_cols() const { return CeilDiv(cols, block); }
  /// Shape of the tile at grid position (ii, jj).
  int64_t tile_rows(int64_t ii) const {
    return std::min(block, rows - ii * block);
  }
  int64_t tile_cols(int64_t jj) const {
    return std::min(block, cols - jj * block);
  }
};

/// A block vector: RDD of (ii, Tile(1, len)).
struct BlockVector {
  int64_t size = 0;
  int64_t block = 0;
  Dataset blocks;

  int64_t grid() const { return CeilDiv(size, block); }
  int64_t block_len(int64_t ii) const {
    return std::min(block, size - ii * block);
  }
};

/// Coordinate-format matrix: RDD of ((i,j), v).
struct CooMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  Dataset entries;
};

// ---- construction ---------------------------------------------------------

/// Dense random tiled matrix with values uniform in [lo, hi). Tiles are
/// generated in parallel, each from an independent deterministic stream,
/// so the same seed always produces the same matrix.
Result<TiledMatrix> RandomTiled(Engine* eng, int64_t rows, int64_t cols,
                                int64_t block, uint64_t seed, double lo,
                                double hi);

/// Sparse random tiled matrix: each element is nonzero with probability
/// `density`, values uniform integers in [0, int_hi] (the paper's rating
/// matrix R). Stored dense per tile (block arrays are dense chunks).
Result<TiledMatrix> RandomSparseTiled(Engine* eng, int64_t rows, int64_t cols,
                                      int64_t block, uint64_t seed,
                                      double density, int int_hi);

/// Random block vector.
Result<BlockVector> RandomBlockVector(Engine* eng, int64_t size, int64_t block,
                                      uint64_t seed, double lo, double hi);

/// Splits a local dense matrix into a TiledMatrix.
Result<TiledMatrix> FromLocal(Engine* eng, const la::Tile& local,
                              int64_t block);

/// Gathers a TiledMatrix into a local dense matrix (test/demo sizes only).
Result<la::Tile> ToLocal(Engine* eng, const TiledMatrix& m);

/// Gathers a BlockVector into a dense std::vector<double>.
Result<std::vector<double>> ToLocalVector(Engine* eng, const BlockVector& v);

/// Splits a local dense vector into a BlockVector.
Result<BlockVector> VectorFromLocal(Engine* eng,
                                    const std::vector<double>& data,
                                    int64_t block);

// ---- sparsifier / builder (the type mapping of Section 1.1) ---------------

/// Distributed tile sparsifier: ((ii,jj),A) -> N*N element records
/// ((ii*N+i, jj*N+j), A(i,j)). The inverse of TiledFromCoo.
Result<CooMatrix> ToCoo(Engine* eng, const TiledMatrix& m);

/// Distributed tiled builder: groups ((i,j),v) records by tile coordinate
/// (i/N, j/N) and assembles dense tiles (missing entries are 0).
Result<TiledMatrix> TiledFromCoo(Engine* eng, const CooMatrix& coo,
                                 int64_t block);

/// Random coordinate matrix (dense content) for the COO-vs-tiled ablation.
Result<CooMatrix> RandomCoo(Engine* eng, int64_t rows, int64_t cols,
                            uint64_t seed, double lo, double hi,
                            int num_partitions = -1);

/// Local sparsification for oracle tests: every element as ((i,j),v).
Result<ValueVec> SparsifyLocal(Engine* eng, const TiledMatrix& m);

/// Max |a-b| over all elements of two same-shape tiled matrices.
Result<double> MaxAbsDiff(Engine* eng, const TiledMatrix& a,
                          const TiledMatrix& b);

}  // namespace sac::storage

#endif  // SAC_STORAGE_TILED_H_
