#include "src/exec/scalar_fn.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/exec/scalar_program.h"

namespace sac::exec {

using comp::BinOp;
using comp::Expr;
using comp::ExprPtr;
using comp::UnOp;

namespace {

Status Unsupported(const ExprPtr& e, const char* what) {
  return Status::PlanError(std::string("cannot compile ") + what + ": " +
                           e->ToString());
}

int FindArg(const std::vector<std::string>& args, const std::string& name) {
  auto it = std::find(args.begin(), args.end(), name);
  return it == args.end() ? -1 : static_cast<int>(it - args.begin());
}

/// Closure-tree compiler: one std::function per AST node. Kept as the
/// fallback for expressions ScalarProgram rejects (e.g. ones deeper than
/// its fixed evaluation stack).
Result<ScalarFn> CompileTree(const ExprPtr& e,
                             const std::vector<std::string>& args,
                             const ConstEnv& consts) {
  switch (e->kind) {
    case Expr::Kind::kIntLit: {
      const double v = static_cast<double>(e->int_val);
      return ScalarFn([v](const double*) { return v; });
    }
    case Expr::Kind::kDoubleLit: {
      const double v = e->double_val;
      return ScalarFn([v](const double*) { return v; });
    }
    case Expr::Kind::kVar: {
      const int slot = FindArg(args, e->str_val);
      if (slot >= 0) {
        return ScalarFn([slot](const double* a) { return a[slot]; });
      }
      auto it = consts.find(e->str_val);
      if (it != consts.end()) {
        const double v = it->second;
        return ScalarFn([v](const double*) { return v; });
      }
      return Unsupported(e, "unbound scalar variable");
    }
    case Expr::Kind::kUnary: {
      if (e->un_op != UnOp::kNeg) return Unsupported(e, "boolean negation");
      SAC_ASSIGN_OR_RETURN(ScalarFn f,
                           CompileTree(e->children[0], args, consts));
      return ScalarFn([f](const double* a) { return -f(a); });
    }
    case Expr::Kind::kBinary: {
      SAC_ASSIGN_OR_RETURN(ScalarFn l,
                           CompileTree(e->children[0], args, consts));
      SAC_ASSIGN_OR_RETURN(ScalarFn r,
                           CompileTree(e->children[1], args, consts));
      switch (e->bin_op) {
        case BinOp::kAdd:
          return ScalarFn([l, r](const double* a) { return l(a) + r(a); });
        case BinOp::kSub:
          return ScalarFn([l, r](const double* a) { return l(a) - r(a); });
        case BinOp::kMul:
          return ScalarFn([l, r](const double* a) { return l(a) * r(a); });
        case BinOp::kDiv:
          return ScalarFn([l, r](const double* a) { return l(a) / r(a); });
        case BinOp::kMod:
          return ScalarFn(
              [l, r](const double* a) { return std::fmod(l(a), r(a)); });
        default:
          return Unsupported(e, "comparison outside if-condition");
      }
    }
    case Expr::Kind::kIf: {
      // Condition: numeric comparison (or && / || of them).
      const ExprPtr& cond = e->children[0];
      std::function<bool(const double*)> pred;
      {
        // Compile a small boolean fragment over doubles.
        std::function<Result<std::function<bool(const double*)>>(
            const ExprPtr&)>
            compile_pred = [&](const ExprPtr& c)
            -> Result<std::function<bool(const double*)>> {
          if (c->kind == Expr::Kind::kBoolLit) {
            const bool v = c->bool_val;
            return std::function<bool(const double*)>(
                [v](const double*) { return v; });
          }
          if (c->kind == Expr::Kind::kUnary && c->un_op == UnOp::kNot) {
            SAC_ASSIGN_OR_RETURN(auto inner, compile_pred(c->children[0]));
            return std::function<bool(const double*)>(
                [inner](const double* a) { return !inner(a); });
          }
          if (c->kind != Expr::Kind::kBinary) {
            return Unsupported(c, "if-condition");
          }
          if (c->bin_op == BinOp::kAnd || c->bin_op == BinOp::kOr) {
            SAC_ASSIGN_OR_RETURN(auto l, compile_pred(c->children[0]));
            SAC_ASSIGN_OR_RETURN(auto r, compile_pred(c->children[1]));
            const bool is_and = c->bin_op == BinOp::kAnd;
            return std::function<bool(const double*)>(
                [l, r, is_and](const double* a) {
                  return is_and ? (l(a) && r(a)) : (l(a) || r(a));
                });
          }
          SAC_ASSIGN_OR_RETURN(ScalarFn l,
                               CompileTree(c->children[0], args, consts));
          SAC_ASSIGN_OR_RETURN(ScalarFn r,
                               CompileTree(c->children[1], args, consts));
          const BinOp op = c->bin_op;
          return std::function<bool(const double*)>(
              [l, r, op](const double* a) {
                const double x = l(a), y = r(a);
                switch (op) {
                  case BinOp::kEq: return x == y;
                  case BinOp::kNe: return x != y;
                  case BinOp::kLt: return x < y;
                  case BinOp::kLe: return x <= y;
                  case BinOp::kGt: return x > y;
                  case BinOp::kGe: return x >= y;
                  default: return false;
                }
              });
        };
        SAC_ASSIGN_OR_RETURN(pred, compile_pred(cond));
      }
      SAC_ASSIGN_OR_RETURN(ScalarFn t,
                           CompileTree(e->children[1], args, consts));
      SAC_ASSIGN_OR_RETURN(ScalarFn f,
                           CompileTree(e->children[2], args, consts));
      return ScalarFn(
          [pred, t, f](const double* a) { return pred(a) ? t(a) : f(a); });
    }
    case Expr::Kind::kCall: {
      const std::string& fn = e->str_val;
      std::vector<ScalarFn> cargs;
      for (const auto& c : e->children) {
        SAC_ASSIGN_OR_RETURN(ScalarFn f, CompileTree(c, args, consts));
        cargs.push_back(std::move(f));
      }
      if (fn == "abs" && cargs.size() == 1) {
        auto f = cargs[0];
        return ScalarFn([f](const double* a) { return std::fabs(f(a)); });
      }
      if (fn == "sqrt" && cargs.size() == 1) {
        auto f = cargs[0];
        return ScalarFn([f](const double* a) { return std::sqrt(f(a)); });
      }
      if (fn == "exp" && cargs.size() == 1) {
        auto f = cargs[0];
        return ScalarFn([f](const double* a) { return std::exp(f(a)); });
      }
      if (fn == "log" && cargs.size() == 1) {
        auto f = cargs[0];
        return ScalarFn([f](const double* a) { return std::log(f(a)); });
      }
      if (fn == "pow" && cargs.size() == 2) {
        auto f = cargs[0], g = cargs[1];
        return ScalarFn(
            [f, g](const double* a) { return std::pow(f(a), g(a)); });
      }
      if (fn == "min" && cargs.size() == 2) {
        auto f = cargs[0], g = cargs[1];
        return ScalarFn(
            [f, g](const double* a) { return std::min(f(a), g(a)); });
      }
      if (fn == "max" && cargs.size() == 2) {
        auto f = cargs[0], g = cargs[1];
        return ScalarFn(
            [f, g](const double* a) { return std::max(f(a), g(a)); });
      }
      if (fn == "toDouble" && cargs.size() == 1) return cargs[0];
      return Unsupported(e, "function call");
    }
    default:
      return Unsupported(e, "expression");
  }
}

}  // namespace

Result<ScalarFn> CompileScalarFn(const ExprPtr& e,
                                 const std::vector<std::string>& args,
                                 const ConstEnv& consts) {
  // Program first: a flat postfix program costs one indirect call per
  // element instead of one per AST node (src/exec/scalar_program.h). The
  // closure tree only runs for expressions the program compiler rejects.
  Result<ScalarProgram> prog = ScalarProgram::Compile(e, args, consts);
  if (prog.ok()) {
    auto p = std::make_shared<ScalarProgram>(std::move(prog).value());
    return ScalarFn([p](const double* a) { return p->Eval(a); });
  }
  return CompileTree(e, args, consts);
}

Result<IntFn> CompileIntFn(const ExprPtr& e,
                           const std::vector<std::string>& args,
                           const ConstEnv& consts) {
  switch (e->kind) {
    case Expr::Kind::kIntLit: {
      const int64_t v = e->int_val;
      return IntFn([v](const int64_t*) { return v; });
    }
    case Expr::Kind::kVar: {
      const int slot = FindArg(args, e->str_val);
      if (slot >= 0) {
        return IntFn([slot](const int64_t* a) { return a[slot]; });
      }
      auto it = consts.find(e->str_val);
      if (it != consts.end() &&
          it->second == static_cast<int64_t>(it->second)) {
        const int64_t v = static_cast<int64_t>(it->second);
        return IntFn([v](const int64_t*) { return v; });
      }
      return Unsupported(e, "unbound index variable");
    }
    case Expr::Kind::kUnary: {
      if (e->un_op != UnOp::kNeg) return Unsupported(e, "index negation");
      SAC_ASSIGN_OR_RETURN(IntFn f,
                           CompileIntFn(e->children[0], args, consts));
      return IntFn([f](const int64_t* a) { return -f(a); });
    }
    case Expr::Kind::kBinary: {
      SAC_ASSIGN_OR_RETURN(IntFn l,
                           CompileIntFn(e->children[0], args, consts));
      SAC_ASSIGN_OR_RETURN(IntFn r,
                           CompileIntFn(e->children[1], args, consts));
      switch (e->bin_op) {
        case BinOp::kAdd:
          return IntFn([l, r](const int64_t* a) { return l(a) + r(a); });
        case BinOp::kSub:
          return IntFn([l, r](const int64_t* a) { return l(a) - r(a); });
        case BinOp::kMul:
          return IntFn([l, r](const int64_t* a) { return l(a) * r(a); });
        case BinOp::kDiv:
          return IntFn([l, r](const int64_t* a) {
            const int64_t d = r(a);
            return d == 0 ? 0 : l(a) / d;
          });
        case BinOp::kMod:
          return IntFn([l, r](const int64_t* a) {
            const int64_t d = r(a);
            return d == 0 ? 0 : l(a) % d;
          });
        default:
          return Unsupported(e, "index operator");
      }
    }
    case Expr::Kind::kCall: {
      if ((e->str_val == "min" || e->str_val == "max") &&
          e->children.size() == 2) {
        SAC_ASSIGN_OR_RETURN(IntFn l,
                             CompileIntFn(e->children[0], args, consts));
        SAC_ASSIGN_OR_RETURN(IntFn r,
                             CompileIntFn(e->children[1], args, consts));
        const bool is_min = e->str_val == "min";
        return IntFn([l, r, is_min](const int64_t* a) {
          return is_min ? std::min(l(a), r(a)) : std::max(l(a), r(a));
        });
      }
      return Unsupported(e, "index function");
    }
    default:
      return Unsupported(e, "index expression");
  }
}

Result<PredFn> CompileIntPred(const ExprPtr& e,
                              const std::vector<std::string>& args,
                              const ConstEnv& consts) {
  switch (e->kind) {
    case Expr::Kind::kBoolLit: {
      const bool v = e->bool_val;
      return PredFn([v](const int64_t*) { return v; });
    }
    case Expr::Kind::kUnary: {
      if (e->un_op != UnOp::kNot) return Unsupported(e, "guard negation");
      SAC_ASSIGN_OR_RETURN(PredFn f,
                           CompileIntPred(e->children[0], args, consts));
      return PredFn([f](const int64_t* a) { return !f(a); });
    }
    case Expr::Kind::kBinary: {
      if (e->bin_op == BinOp::kAnd || e->bin_op == BinOp::kOr) {
        SAC_ASSIGN_OR_RETURN(PredFn l,
                             CompileIntPred(e->children[0], args, consts));
        SAC_ASSIGN_OR_RETURN(PredFn r,
                             CompileIntPred(e->children[1], args, consts));
        const bool is_and = e->bin_op == BinOp::kAnd;
        return PredFn([l, r, is_and](const int64_t* a) {
          return is_and ? (l(a) && r(a)) : (l(a) || r(a));
        });
      }
      SAC_ASSIGN_OR_RETURN(IntFn l, CompileIntFn(e->children[0], args, consts));
      SAC_ASSIGN_OR_RETURN(IntFn r, CompileIntFn(e->children[1], args, consts));
      const BinOp op = e->bin_op;
      return PredFn([l, r, op](const int64_t* a) {
        const int64_t x = l(a), y = r(a);
        switch (op) {
          case BinOp::kEq: return x == y;
          case BinOp::kNe: return x != y;
          case BinOp::kLt: return x < y;
          case BinOp::kLe: return x <= y;
          case BinOp::kGt: return x > y;
          case BinOp::kGe: return x >= y;
          default: return false;
        }
      });
    }
    default:
      return Unsupported(e, "guard");
  }
}

}  // namespace sac::exec
