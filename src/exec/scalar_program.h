// Flat register/stack programs for element-level expressions. The
// closure-tree compiler in scalar_fn.cc pays one indirect call (and one
// std::function dispatch) per AST node per element; for a chain like
// fig4c's `p - gamma*(g + lambda*p)` that is ~7 indirections per element.
// A ScalarProgram is the same expression compiled once into a flat
// postfix instruction vector evaluated by a single switch loop over a
// fixed stack -- one indirect call per *element*, not per node, which is
// as close to the paper's "macro-generated Scala loop body" as a
// library-level C++ stand-in gets.
//
// Semantics match the tree compiler exactly except that if-then-else
// evaluates both branches and selects (kSelect). Both branches are pure
// arithmetic in the supported fragment, so the discarded branch has no
// observable effect and the selected value is bit-identical.
#ifndef SAC_EXEC_SCALAR_PROGRAM_H_
#define SAC_EXEC_SCALAR_PROGRAM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/comp/ast.h"

namespace sac::exec {

class ScalarProgram {
 public:
  enum class Op : uint8_t {
    kConst,  // push imm
    kArg,    // push args[slot]
    kAdd, kSub, kMul, kDiv, kMod,         // binary arithmetic
    kNeg, kAbs, kSqrt, kExp, kLog,        // unary
    kPow, kMin, kMax,                     // binary calls
    kEq, kNe, kLt, kLe, kGt, kGe,         // comparisons -> 0.0 / 1.0
    kAnd, kOr,                            // logical over 0/1 operands
    kNot,                                 // logical negation
    kSelect,  // pop f, t, c; push c != 0 ? t : f
  };

  struct Instr {
    Op op;
    int32_t slot = 0;   // kArg
    double imm = 0.0;   // kConst
  };

  /// Deepest operand stack Eval supports; Compile rejects programs that
  /// would exceed it (callers fall back to the closure tree).
  static constexpr int kMaxStack = 64;

  /// Compiles the same fragment CompileScalarFn accepts (plus boolean
  /// subexpressions inside if-conditions). PlanError on anything outside
  /// the fragment or deeper than kMaxStack.
  static Result<ScalarProgram> Compile(
      const comp::ExprPtr& e, const std::vector<std::string>& args,
      const std::unordered_map<std::string, double>& consts);

  double Eval(const double* args) const;

  size_t size() const { return code_.size(); }
  const std::vector<Instr>& code() const { return code_; }

 private:
  std::vector<Instr> code_;
};

}  // namespace sac::exec

#endif  // SAC_EXEC_SCALAR_PROGRAM_H_
