#include "src/exec/scalar_program.h"

#include <algorithm>
#include <cmath>

namespace sac::exec {

using comp::BinOp;
using comp::Expr;
using comp::ExprPtr;
using comp::UnOp;

namespace {

Status Unsupported(const ExprPtr& e, const char* what) {
  return Status::PlanError(std::string("cannot compile ") + what + ": " +
                           e->ToString());
}

int FindArg(const std::vector<std::string>& args, const std::string& name) {
  auto it = std::find(args.begin(), args.end(), name);
  return it == args.end() ? -1 : static_cast<int>(it - args.begin());
}

using Op = ScalarProgram::Op;
using Instr = ScalarProgram::Instr;

/// Emits postfix code for `e` into *code, tracking stack depth so
/// overflow is a compile failure rather than an Eval-time one.
class Emitter {
 public:
  Emitter(const std::vector<std::string>& args,
          const std::unordered_map<std::string, double>& consts)
      : args_(args), consts_(consts) {}

  Status EmitNumeric(const ExprPtr& e) {
    switch (e->kind) {
      case Expr::Kind::kIntLit:
        return Push(Op::kConst, 0, static_cast<double>(e->int_val));
      case Expr::Kind::kDoubleLit:
        return Push(Op::kConst, 0, e->double_val);
      case Expr::Kind::kVar: {
        const int slot = FindArg(args_, e->str_val);
        if (slot >= 0) return Push(Op::kArg, slot, 0.0);
        auto it = consts_.find(e->str_val);
        if (it != consts_.end()) return Push(Op::kConst, 0, it->second);
        return Unsupported(e, "unbound scalar variable");
      }
      case Expr::Kind::kUnary: {
        if (e->un_op != UnOp::kNeg) {
          return Unsupported(e, "boolean negation");
        }
        SAC_RETURN_NOT_OK(EmitNumeric(e->children[0]));
        return Apply(Op::kNeg, 1);
      }
      case Expr::Kind::kBinary: {
        Op op;
        switch (e->bin_op) {
          case BinOp::kAdd: op = Op::kAdd; break;
          case BinOp::kSub: op = Op::kSub; break;
          case BinOp::kMul: op = Op::kMul; break;
          case BinOp::kDiv: op = Op::kDiv; break;
          case BinOp::kMod: op = Op::kMod; break;
          default:
            return Unsupported(e, "comparison outside if-condition");
        }
        SAC_RETURN_NOT_OK(EmitNumeric(e->children[0]));
        SAC_RETURN_NOT_OK(EmitNumeric(e->children[1]));
        return Apply(op, 2);
      }
      case Expr::Kind::kIf: {
        SAC_RETURN_NOT_OK(EmitBool(e->children[0]));
        SAC_RETURN_NOT_OK(EmitNumeric(e->children[1]));
        SAC_RETURN_NOT_OK(EmitNumeric(e->children[2]));
        return Apply(Op::kSelect, 3);
      }
      case Expr::Kind::kCall: {
        const std::string& fn = e->str_val;
        struct Builtin { const char* name; size_t arity; Op op; };
        static constexpr Builtin kBuiltins[] = {
            {"abs", 1, Op::kAbs},  {"sqrt", 1, Op::kSqrt},
            {"exp", 1, Op::kExp},  {"log", 1, Op::kLog},
            {"pow", 2, Op::kPow},  {"min", 2, Op::kMin},
            {"max", 2, Op::kMax},
        };
        if (fn == "toDouble" && e->children.size() == 1) {
          return EmitNumeric(e->children[0]);
        }
        for (const Builtin& b : kBuiltins) {
          if (fn == b.name && e->children.size() == b.arity) {
            for (const auto& c : e->children) {
              SAC_RETURN_NOT_OK(EmitNumeric(c));
            }
            return Apply(b.op, static_cast<int>(b.arity));
          }
        }
        return Unsupported(e, "function call");
      }
      default:
        return Unsupported(e, "expression");
    }
  }

  /// Boolean fragment of if-conditions, as 0.0/1.0 on the stack.
  Status EmitBool(const ExprPtr& e) {
    if (e->kind == Expr::Kind::kBoolLit) {
      return Push(Op::kConst, 0, e->bool_val ? 1.0 : 0.0);
    }
    if (e->kind == Expr::Kind::kUnary && e->un_op == UnOp::kNot) {
      SAC_RETURN_NOT_OK(EmitBool(e->children[0]));
      return Apply(Op::kNot, 1);
    }
    if (e->kind != Expr::Kind::kBinary) {
      return Unsupported(e, "if-condition");
    }
    if (e->bin_op == BinOp::kAnd || e->bin_op == BinOp::kOr) {
      SAC_RETURN_NOT_OK(EmitBool(e->children[0]));
      SAC_RETURN_NOT_OK(EmitBool(e->children[1]));
      return Apply(e->bin_op == BinOp::kAnd ? Op::kAnd : Op::kOr, 2);
    }
    Op op;
    switch (e->bin_op) {
      case BinOp::kEq: op = Op::kEq; break;
      case BinOp::kNe: op = Op::kNe; break;
      case BinOp::kLt: op = Op::kLt; break;
      case BinOp::kLe: op = Op::kLe; break;
      case BinOp::kGt: op = Op::kGt; break;
      case BinOp::kGe: op = Op::kGe; break;
      default:
        return Unsupported(e, "if-condition");
    }
    SAC_RETURN_NOT_OK(EmitNumeric(e->children[0]));
    SAC_RETURN_NOT_OK(EmitNumeric(e->children[1]));
    return Apply(op, 2);
  }

  std::vector<Instr> Take() { return std::move(code_); }

 private:
  Status Push(Op op, int32_t slot, double imm) {
    code_.push_back(Instr{op, slot, imm});
    if (++depth_ > ScalarProgram::kMaxStack) {
      return Status::PlanError("scalar expression too deep for program");
    }
    return Status::OK();
  }

  Status Apply(Op op, int arity) {
    code_.push_back(Instr{op, 0, 0.0});
    depth_ -= arity - 1;
    return Status::OK();
  }

  const std::vector<std::string>& args_;
  const std::unordered_map<std::string, double>& consts_;
  std::vector<Instr> code_;
  int depth_ = 0;
};

}  // namespace

Result<ScalarProgram> ScalarProgram::Compile(
    const ExprPtr& e, const std::vector<std::string>& args,
    const std::unordered_map<std::string, double>& consts) {
  Emitter em(args, consts);
  SAC_RETURN_NOT_OK(em.EmitNumeric(e));
  ScalarProgram p;
  p.code_ = em.Take();
  return p;
}

double ScalarProgram::Eval(const double* args) const {
  double stack[kMaxStack];
  int sp = 0;
  for (const Instr& in : code_) {
    switch (in.op) {
      case Op::kConst: stack[sp++] = in.imm; break;
      case Op::kArg: stack[sp++] = args[in.slot]; break;
      case Op::kAdd: --sp; stack[sp - 1] += stack[sp]; break;
      case Op::kSub: --sp; stack[sp - 1] -= stack[sp]; break;
      case Op::kMul: --sp; stack[sp - 1] *= stack[sp]; break;
      case Op::kDiv: --sp; stack[sp - 1] /= stack[sp]; break;
      case Op::kMod:
        --sp;
        stack[sp - 1] = std::fmod(stack[sp - 1], stack[sp]);
        break;
      case Op::kNeg: stack[sp - 1] = -stack[sp - 1]; break;
      case Op::kAbs: stack[sp - 1] = std::fabs(stack[sp - 1]); break;
      case Op::kSqrt: stack[sp - 1] = std::sqrt(stack[sp - 1]); break;
      case Op::kExp: stack[sp - 1] = std::exp(stack[sp - 1]); break;
      case Op::kLog: stack[sp - 1] = std::log(stack[sp - 1]); break;
      case Op::kPow:
        --sp;
        stack[sp - 1] = std::pow(stack[sp - 1], stack[sp]);
        break;
      case Op::kMin:
        --sp;
        stack[sp - 1] = std::min(stack[sp - 1], stack[sp]);
        break;
      case Op::kMax:
        --sp;
        stack[sp - 1] = std::max(stack[sp - 1], stack[sp]);
        break;
      case Op::kEq:
        --sp;
        stack[sp - 1] = stack[sp - 1] == stack[sp] ? 1.0 : 0.0;
        break;
      case Op::kNe:
        --sp;
        stack[sp - 1] = stack[sp - 1] != stack[sp] ? 1.0 : 0.0;
        break;
      case Op::kLt:
        --sp;
        stack[sp - 1] = stack[sp - 1] < stack[sp] ? 1.0 : 0.0;
        break;
      case Op::kLe:
        --sp;
        stack[sp - 1] = stack[sp - 1] <= stack[sp] ? 1.0 : 0.0;
        break;
      case Op::kGt:
        --sp;
        stack[sp - 1] = stack[sp - 1] > stack[sp] ? 1.0 : 0.0;
        break;
      case Op::kGe:
        --sp;
        stack[sp - 1] = stack[sp - 1] >= stack[sp] ? 1.0 : 0.0;
        break;
      case Op::kAnd:
        --sp;
        stack[sp - 1] =
            (stack[sp - 1] != 0.0 && stack[sp] != 0.0) ? 1.0 : 0.0;
        break;
      case Op::kOr:
        --sp;
        stack[sp - 1] =
            (stack[sp - 1] != 0.0 || stack[sp] != 0.0) ? 1.0 : 0.0;
        break;
      case Op::kNot:
        stack[sp - 1] = stack[sp - 1] == 0.0 ? 1.0 : 0.0;
        break;
      case Op::kSelect:
        sp -= 2;
        stack[sp - 1] =
            stack[sp - 1] != 0.0 ? stack[sp] : stack[sp + 1];
        break;
    }
  }
  return stack[0];
}

}  // namespace sac::exec
