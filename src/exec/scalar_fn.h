// Compilation of element-level expressions into fast closures. This is
// the C++ stand-in for the Scala code a macro would have emitted for the
// body of a generated loop: the planner compiles the scalar part of a
// comprehension head once, then tile kernels call it millions of times
// with no interpretation overhead beyond one indirect call per element.
//
// Three closure families:
//  * ScalarFn -- double(args)  for element values
//  * IntFn    -- int64(args)   for index arithmetic (true integer / and %)
//  * PredFn   -- bool(int args)  for index guards
//
// Compilation fails (PlanError) on constructs outside the supported
// fragment; callers fall back to slower but fully general strategies.
#ifndef SAC_EXEC_SCALAR_FN_H_
#define SAC_EXEC_SCALAR_FN_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/comp/ast.h"

namespace sac::exec {

using ScalarFn = std::function<double(const double* args)>;
using IntFn = std::function<int64_t(const int64_t* args)>;
using PredFn = std::function<bool(const int64_t* args)>;

/// Scalar constants visible to compiled expressions (scalar bindings such
/// as the learning rate).
using ConstEnv = std::unordered_map<std::string, double>;

/// Compiles a numeric expression over double-valued argument variables.
/// Supports literals, +,-,*,/,%, unary minus, if-then-else over numeric
/// comparisons, and the math builtins (abs, sqrt, exp, log, pow, min, max).
Result<ScalarFn> CompileScalarFn(const comp::ExprPtr& e,
                                 const std::vector<std::string>& args,
                                 const ConstEnv& consts);

/// Compiles an integer index expression (literals, vars, +,-,*,/,%,
/// min/max) over int64 argument variables. Integer constants may also come
/// from `consts` when their value is integral.
Result<IntFn> CompileIntFn(const comp::ExprPtr& e,
                           const std::vector<std::string>& args,
                           const ConstEnv& consts);

/// Compiles a boolean guard over integer argument variables: comparisons
/// of IntFn-compilable operands combined with &&, || and !.
Result<PredFn> CompileIntPred(const comp::ExprPtr& e,
                              const std::vector<std::string>& args,
                              const ConstEnv& consts);

}  // namespace sac::exec

#endif  // SAC_EXEC_SCALAR_FN_H_
