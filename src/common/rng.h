// Deterministic, splittable pseudo-random numbers (splitmix64 core). All
// synthetic workloads are seeded so distributed and reference executions
// generate bit-identical inputs.
#ifndef SAC_COMMON_RNG_H_
#define SAC_COMMON_RNG_H_

#include <cstdint>

namespace sac {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value (splitmix64).
  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t NextBelow(uint64_t n) { return NextU64() % n; }

  /// Derives an independent stream for a sub-task (e.g. one tile).
  Rng Split(uint64_t stream) const {
    Rng child(state_ ^ (stream * 0xD1B54A32D192ED03ULL + 0x2545F4914F6CDD1DULL));
    return child;
  }

 private:
  uint64_t state_;
};

}  // namespace sac

#endif  // SAC_COMMON_RNG_H_
