// Minimal JSON value + recursive-descent parser for the library side:
// reading back our own machine-readable artifacts (profile.json, bench
// report JSON) in sac_prof and profile::ParseProfile without an external
// dependency. Supports exactly what our writers emit -- objects, arrays,
// strings with the escapes trace::JsonEscape produces, numbers,
// true/false/null. This intentionally stays a subset of JSON (no
// surrogate pairs, no duplicate-key semantics beyond first-wins); the
// tests' independent parser (tests/test_json.h) stays separate so the
// exporters are still validated by code that does not share this
// implementation.
#ifndef SAC_COMMON_JSON_H_
#define SAC_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace sac::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  bool Has(const std::string& key) const {
    return is_object() && object.count(key) > 0;
  }
  /// Member lookup; a missing key (or non-object) yields a null Value, so
  /// chained lookups over optional fields read cleanly.
  const Value& At(const std::string& key) const;

  int64_t Int() const { return static_cast<int64_t>(number); }
  uint64_t UInt() const {
    return number <= 0 ? 0 : static_cast<uint64_t>(number);
  }
  double Num() const { return number; }

  /// Typed lookups with defaults for optional fields.
  double GetNum(const std::string& key, double dflt = 0) const;
  int64_t GetInt(const std::string& key, int64_t dflt = 0) const;
  uint64_t GetUInt(const std::string& key, uint64_t dflt = 0) const;
  std::string GetStr(const std::string& key,
                     const std::string& dflt = "") const;
};

/// Parses `text` into *out. Errors name the byte offset they were
/// detected at.
Status Parse(const std::string& text, Value* out);

}  // namespace sac::json

#endif  // SAC_COMMON_JSON_H_
