// Execution tracing: spans (stage/task/action), instant events, and
// log-scale histograms, recorded lock-cheaply into per-thread buffers and
// exportable as Chrome trace-event JSON (load in chrome://tracing or
// https://ui.perfetto.dev).
//
// The design mirrors what Spark's listener bus / Thrill's JSON profiles
// give their engines: every operator in the DISC engine opens a *stage*
// span, every partition task opens a *task* span parented to it, and
// recomputations surface as instant events -- so "plan X shuffles less"
// is auditable span-by-span instead of from one global counter.
//
// Concurrency: each thread writes completed spans to its own buffer
// (one uncontended mutex acquisition per record; the registry mutex is
// taken only the first time a thread touches a given tracer). Draining
// merges all buffers. Histogram counters are plain atomics.
#ifndef SAC_COMMON_TRACE_H_
#define SAC_COMMON_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sac::trace {

/// Microseconds since a process-wide steady-clock epoch (first use).
/// All tracers share this epoch so events from several engines merge
/// onto one timeline.
uint64_t NowMicros();

/// Escapes a string for embedding in a JSON string literal (quotes not
/// included).
std::string JsonEscape(const std::string& s);

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  // buckets[i] counts values v with 2^(i-1) <= v < 2^i (bucket 0: v == 0).
  std::array<uint64_t, 64> buckets{};

  double Mean() const { return count ? static_cast<double>(sum) / count : 0; }
  /// Upper bound of the bucket holding the p-quantile (p in [0,1]).
  uint64_t Percentile(double p) const;
  std::string ToString() const;  // e.g. "count=16 mean=120us p50<=128 max=400"
};

/// Thread-safe log2-bucketed histogram of non-negative integers
/// (microseconds, bytes, ...). Recording is a couple of relaxed atomic
/// adds; min/max use CAS loops.
class Histogram {
 public:
  void Record(uint64_t v);
  void Reset();
  HistogramSnapshot Snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, 64> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

struct SpanArg {
  std::string key;
  int64_t value = 0;
};

/// One completed span (or instant event when dur_us == 0 and
/// instant == true).
struct SpanRecord {
  uint64_t id = 0;      // unique per tracer, never 0
  uint64_t parent = 0;  // 0 = no parent
  std::string name;
  std::string category;  // "stage" | "task" | "action" | "recompute" | ...
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;  // small dense thread id (process-wide)
  bool instant = false;
  bool counter = false;  // time-series sample; args are the series values
  std::vector<SpanArg> args;
};

/// Collects spans from many threads. Each thread gets its own buffer on
/// first use (registry lock once per thread per tracer); subsequent
/// records take only that buffer's uncontended mutex.
class Tracer {
 public:
  Tracer();
  ~Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  uint64_t NextId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Appends a completed span to the calling thread's buffer. No-op when
  /// disabled.
  void Record(SpanRecord rec);

  /// Records a zero-duration instant event.
  void Instant(std::string name, std::string category, uint64_t parent,
               std::vector<SpanArg> args = {});

  /// Records a counter sample ("C" phase in the Chrome export): each arg
  /// becomes one series on a timeline track named `name`.
  void Counter(std::string name, std::vector<SpanArg> args);

  /// Moves out every recorded span (merged across threads, sorted by
  /// start time). Buffers stay registered; recording continues.
  std::vector<SpanRecord> Drain();

  /// Copies every recorded span without clearing.
  std::vector<SpanRecord> Snapshot() const;

  void Reset();

  size_t size() const;

  /// Per-thread span buffer capacity. Once a thread's buffer is full,
  /// further records on that thread are dropped (counted in
  /// dropped_events()) instead of growing trace memory without bound.
  /// Drain()/Reset() free the space again.
  static constexpr size_t kDefaultBufferCapacity = 1u << 18;
  void set_buffer_capacity(size_t cap) {
    buffer_capacity_.store(cap, std::memory_order_relaxed);
  }
  size_t buffer_capacity() const {
    return buffer_capacity_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Renders spans as a Chrome trace-event JSON document ("X" complete
  /// events; instants as "i"; counter samples as "C"). Parent ids are
  /// carried in args.parent. A nonzero dropped_events count is exported
  /// as a trailing "trace:dropped_events" counter so truncation is
  /// visible on the timeline rather than silent.
  static std::string ToChromeJson(const std::vector<SpanRecord>& spans,
                                  uint64_t dropped_events = 0);

 private:
  struct Buffer {
    mutable std::mutex mu;
    std::vector<SpanRecord> records;
  };
  Buffer* ThreadBuffer();

  const uint64_t uid_;  // process-unique, never reused (thread cache key)
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_id_{0};
  std::atomic<size_t> buffer_capacity_{kDefaultBufferCapacity};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;  // guards buffers_ growth
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// RAII span: records [construction, destruction) into the tracer's
/// calling-thread buffer. Null tracer or disabled tracer => no-op and
/// id() == 0.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name, std::string category,
             uint64_t parent = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  uint64_t id() const { return rec_.id; }
  void AddArg(std::string key, int64_t value);

 private:
  Tracer* tracer_;
  SpanRecord rec_;
};

}  // namespace sac::trace

#endif  // SAC_COMMON_TRACE_H_
