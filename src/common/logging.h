// Minimal leveled logging plus CHECK macros. CHECK failures abort: they are
// programming errors (invariant violations), not recoverable conditions --
// recoverable conditions use Status (see status.h).
#ifndef SAC_COMMON_LOGGING_H_
#define SAC_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace sac {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kWarn so tests and benches stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Applies the SAC_LOG_LEVEL environment variable (debug|info|warn|error,
/// case-insensitive, or a numeric level) so benches and tests can turn on
/// debug logs without recompiling. Unset or unparsable values leave the
/// current level untouched. Called automatically at engine startup.
void SetLogLevelFromEnv();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define SAC_LOG(level)                                                   \
  ::sac::internal::LogMessage(::sac::LogLevel::k##level, __FILE__, __LINE__)

#define SAC_CHECK(condition)                                             \
  if (!(condition))                                                      \
  ::sac::internal::FatalMessage(__FILE__, __LINE__, #condition)

#define SAC_CHECK_EQ(a, b) SAC_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define SAC_CHECK_NE(a, b) SAC_CHECK((a) != (b))
#define SAC_CHECK_LT(a, b) SAC_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define SAC_CHECK_LE(a, b) SAC_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define SAC_CHECK_GT(a, b) SAC_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define SAC_CHECK_GE(a, b) SAC_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#define SAC_DCHECK(condition) SAC_CHECK(condition)

}  // namespace sac

#endif  // SAC_COMMON_LOGGING_H_
