#include "src/common/status.h"

namespace sac {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace sac
