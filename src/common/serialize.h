// Flat binary serialization used by the simulated shuffle. Records cross
// "the network" as byte buffers so shuffle-heavy plans pay a real
// serialize/route/deserialize cost and so shuffle volume can be accounted
// exactly, as it would be on a Spark cluster.
#ifndef SAC_COMMON_SERIALIZE_H_
#define SAC_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace sac {

/// Append-only little-endian byte sink. By default it owns its buffer;
/// it can also be pointed at an external vector (the shuffle buffer-pool
/// handshake: the pooled vector stays owned by its RAII checkout, the
/// writer just appends into it) or seeded from a recycled buffer via
/// AdoptBuffer. Movable, not copyable.
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Writer that appends into `buf` (cleared first, capacity kept).
  explicit ByteWriter(std::vector<uint8_t> buf) { AdoptBuffer(std::move(buf)); }
  /// Writer that appends into `*sink` (cleared first, capacity kept).
  /// `*sink` must outlive the writer; ownership stays with the caller.
  explicit ByteWriter(std::vector<uint8_t>* sink) : out_(sink) {
    out_->clear();
  }

  ByteWriter(ByteWriter&& o) noexcept
      : buf_(std::move(o.buf_)), out_(o.out_ == &o.buf_ ? &buf_ : o.out_) {
    o.out_ = &o.buf_;
  }
  ByteWriter& operator=(ByteWriter&& o) noexcept {
    if (this != &o) {
      buf_ = std::move(o.buf_);
      out_ = o.out_ == &o.buf_ ? &buf_ : o.out_;
      o.out_ = &o.buf_;
    }
    return *this;
  }
  ByteWriter(const ByteWriter&) = delete;
  ByteWriter& operator=(const ByteWriter&) = delete;

  /// Replaces the backing buffer with `buf`, cleared but with its heap
  /// capacity intact (recycled-allocation handshake).
  void AdoptBuffer(std::vector<uint8_t> buf) {
    buf_ = std::move(buf);
    buf_.clear();
    out_ = &buf_;
  }

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  /// Writes a length-prefixed block of doubles (used for dense tiles).
  void PutF64Array(const double* data, size_t n) {
    PutU64(n);
    PutRaw(data, n * sizeof(double));
  }

  void PutRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + n);
  }

  size_t size() const { return out_->size(); }
  const std::vector<uint8_t>& buffer() const { return *out_; }
  /// Moves the written bytes out (external-sink writers hand out the
  /// sink's contents, leaving it empty).
  std::vector<uint8_t> TakeBuffer() { return std::move(*out_); }

 private:
  std::vector<uint8_t> buf_;
  std::vector<uint8_t>* out_ = &buf_;
};

/// Sequential reader over a byte buffer; all getters are bounds-checked and
/// report IoError instead of reading past the end.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  Result<uint8_t> GetU8() {
    uint8_t v;
    SAC_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<int64_t> GetI64() {
    int64_t v;
    SAC_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint64_t> GetU64() {
    uint64_t v;
    SAC_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint32_t> GetU32() {
    uint32_t v;
    SAC_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<double> GetF64() {
    double v;
    SAC_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<bool> GetBool() {
    SAC_ASSIGN_OR_RETURN(uint8_t v, GetU8());
    return v != 0;
  }
  Result<std::string> GetString() {
    SAC_ASSIGN_OR_RETURN(uint32_t n, GetU32());
    std::string s(n, '\0');
    SAC_RETURN_NOT_OK(GetRaw(s.data(), n));
    return s;
  }
  Result<std::vector<double>> GetF64Array() {
    SAC_ASSIGN_OR_RETURN(uint64_t n, GetU64());
    if (n > remaining() / sizeof(double)) {
      return Status::IoError("corrupt double-array length");
    }
    std::vector<double> v(n);
    SAC_RETURN_NOT_OK(GetRaw(v.data(), n * sizeof(double)));
    return v;
  }

  Status GetRaw(void* out, size_t n) {
    if (pos_ + n > size_) {
      return Status::IoError("read past end of buffer");
    }
    // n == 0 reads come from empty strings/arrays, whose destination
    // pointer may be null -- memcpy's pointer args must be non-null even
    // for zero sizes.
    if (n > 0) std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace sac

#endif  // SAC_COMMON_SERIALIZE_H_
