// Query profiler: turns drained trace spans + the StageRegistry into an
// actionable per-query profile (the layer Thrill's JSON profiles and
// Spark's stage pages provide on top of raw events).
//
// What it computes:
//  * Stage tree -- root spans (stages, actions, compile) aggregated by
//    (name, category) with total time (sum of span durations), self time
//    (duration not covered by child spans), and task time (sum of the
//    per-partition task-span durations underneath, i.e. cpu-ish work).
//  * Critical path -- the driver executes root spans sequentially, so
//    wall-clock attribution is exclusive first-arrival sweep coverage:
//    roots sorted by start time, each credited only with the interval it
//    is the earliest-started span to cover. Summed per stage this says
//    which stages actually bound wall-clock, as a % of measured wall
//    time (coverage_pct reports how much of the wall the trace explains;
//    gaps are untraced driver work).
//  * Phase breakdown -- task spans are named "label:phase[i]"; per stage
//    each phase ("task", "shuffle-write", "reduce", "checkpoint",
//    "recompute") reports task count, busy time (union of task
//    intervals, i.e. time at least one task of that phase ran) and the
//    longest single task (the straggler bound).
//  * Counters -- per-stage MetricsSnapshot joined from the StageRegistry
//    by label, plus engine-wide totals; time-series counter samples
//    (Engine sampler) ride along untouched.
//
// Profiles serialize to a versioned JSON document (profile.json, schema
// in docs/PROFILING.md), parse back, and diff with noise-aware
// thresholds (a regression needs to clear BOTH a relative and an
// absolute bar, so micro-benchmark jitter on tiny values never trips the
// gate). tools/sac_prof is the CLI over all of this.
#ifndef SAC_COMMON_PROFILE_H_
#define SAC_COMMON_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/trace.h"

namespace sac::profile {

inline constexpr int kProfileVersion = 1;

/// Rollup of one task phase under one stage ("task", "shuffle-write",
/// "reduce", "checkpoint", "recompute", ...).
struct PhaseProfile {
  std::string phase;
  uint64_t task_count = 0;
  uint64_t busy_us = 0;       // union of task intervals (overlap collapsed)
  uint64_t task_time_us = 0;  // sum of task durations
  uint64_t longest_task_us = 0;
};

/// One aggregated stage: every root span sharing (name, category).
struct StageProfile {
  std::string name;
  std::string category;  // "stage" | "action" | "compile" | ...
  int stage_id = -1;     // first StageRegistry id seen in span args
  uint64_t count = 0;    // root spans aggregated
  uint64_t total_us = 0;
  uint64_t self_us = 0;
  uint64_t task_time_us = 0;
  uint64_t exclusive_us = 0;  // critical-path share
  double wall_pct = 0;        // exclusive_us as % of wall_ms
  uint64_t task_p50_us = 0;
  uint64_t task_p95_us = 0;
  uint64_t longest_task_us = 0;
  bool has_counters = false;  // joined from the StageRegistry by label
  MetricsSnapshot counters;
  std::vector<PhaseProfile> phases;  // by task_time_us desc
};

/// One time-series sample (Engine sampler counter event).
struct Sample {
  uint64_t t_us = 0;  // trace timestamp
  std::vector<trace::SpanArg> values;
};

struct Profile {
  int version = kProfileVersion;
  std::string query;           // caller-supplied tag ("fig4c:SAC GBJ:n=384")
  double wall_ms = 0;          // measured wall (hint) or trace extent
  double trace_extent_ms = 0;  // first span start .. last span end
  double coverage_pct = 0;     // critical-path sum as % of wall_ms
  uint64_t dropped_trace_events = 0;
  MetricsSnapshot totals;
  std::vector<StageProfile> stages;  // by total_us desc
  // Indices into `stages` with exclusive_us > 0, by exclusive_us desc:
  // the critical path, most-blaming stage first.
  std::vector<int> critical_path;
  std::vector<Sample> samples;

  std::string ToJson() const;
};

struct ProfileInputs {
  std::vector<trace::SpanRecord> spans;
  std::vector<StageStatsSnapshot> stage_stats;
  MetricsSnapshot totals;
  // Measured wall-clock of the profiled query in ms; 0 = use the trace
  // extent. Coverage is reported against this.
  double wall_ms_hint = 0;
  uint64_t dropped_trace_events = 0;
  std::string query;
};

Profile BuildProfile(ProfileInputs in);

/// Parses a profile.json document produced by Profile::ToJson (any
/// version <= kProfileVersion).
Result<Profile> ParseProfile(const std::string& json_text);

// ---------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------

/// A metric regresses only when it worsens by BOTH the relative and the
/// absolute threshold -- small absolute wobble on fast queries and small
/// relative wobble on big byte counts both stay quiet.
struct DiffThresholds {
  double time_pct = 25.0;
  double time_abs_ms = 5.0;
  double bytes_pct = 10.0;
  double bytes_abs = 64.0 * 1024;
  double count_pct = 10.0;
  double count_abs = 8.0;
};

struct DiffEntry {
  std::string metric;
  double base = 0;
  double cur = 0;
  double delta_pct = 0;  // +worse / -better, relative to base
  bool regression = false;
};

struct DiffResult {
  std::vector<DiffEntry> entries;
  int regressions = 0;

  std::string ToString() const;
};

/// Compares deterministic volume counters (shuffle/cross-executor bytes,
/// task counts, evicted bytes) and wall time between two profiles of the
/// same query. Identical inputs produce zero regressions.
DiffResult DiffProfiles(const Profile& base, const Profile& cur,
                        const DiffThresholds& t = DiffThresholds());

/// Shared threshold predicate (also used by sac_prof's bench-report
/// diff): worse-by-both-bars on a higher-is-worse metric.
bool IsRegression(double base, double cur, double rel_pct, double abs_floor);

}  // namespace sac::profile

#endif  // SAC_COMMON_PROFILE_H_
