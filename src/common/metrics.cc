#include "src/common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sac {

namespace {
/// Small dense per-thread id used to spread threads over metric shards.
/// Process-wide so every Metrics instance shards the same way.
uint32_t ThreadShardSeed() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace

Metrics::Shard& Metrics::Local() {
  return shards_[ThreadShardSeed() & (kShards - 1)];
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream os;
  os << "shuffle=" << shuffle_bytes / (1024.0 * 1024.0) << "MB"
     << " records=" << shuffle_records
     << " cross_exec=" << cross_executor_bytes / (1024.0 * 1024.0) << "MB"
     << " local=" << local_shuffle_bytes / (1024.0 * 1024.0) << "MB"
     << " tasks=" << tasks_run << " recomputed=" << tasks_recomputed;
  if (tasks_retried > 0 || faults_injected > 0) {
    os << " retried=" << tasks_retried << " faults=" << faults_injected
       << " backoff=" << retry_wait_us / 1000.0 << "ms";
  }
  if (checkpoint_bytes > 0 || checkpoint_restore_bytes > 0) {
    os << " ckpt_out=" << checkpoint_bytes / (1024.0 * 1024.0) << "MB"
       << " ckpt_in=" << checkpoint_restore_bytes / (1024.0 * 1024.0)
       << "MB";
  }
  if (evictions > 0 || bytes_reloaded > 0 || reload_recomputes > 0) {
    os << " evictions=" << evictions
       << " evicted=" << bytes_evicted / (1024.0 * 1024.0) << "MB"
       << " reloaded=" << bytes_reloaded / (1024.0 * 1024.0) << "MB"
       << " reload_recomputes=" << reload_recomputes;
  }
  if (peak_resident_bytes > 0) {
    os << " peak_resident=" << peak_resident_bytes / (1024.0 * 1024.0)
       << "MB";
  }
  if (flops_generic > 0 || flops_packed > 0 || flops_jvmlike > 0) {
    os << " mflops_generic=" << flops_generic / 1e6
       << " mflops_packed=" << flops_packed / 1e6
       << " mflops_jvmlike=" << flops_jvmlike / 1e6;
  }
  if (tile_allocs > 0) os << " tile_allocs=" << tile_allocs;
  if (queries_admitted > 0) {
    os << " queries_admitted=" << queries_admitted
       << " queries_queued=" << queries_queued;
  }
  if (plan_cache_hits > 0 || plan_cache_misses > 0) {
    os << " plan_cache_hits=" << plan_cache_hits
       << " plan_cache_misses=" << plan_cache_misses
       << " plan_cache_evictions=" << plan_cache_evictions;
  }
  if (dist_bytes_sent > 0 || dist_bytes_received > 0 || workers_lost > 0) {
    os << " dist_tx=" << dist_bytes_sent / (1024.0 * 1024.0) << "MB"
       << " dist_rx=" << dist_bytes_received / (1024.0 * 1024.0) << "MB"
       << " workers_lost=" << workers_lost
       << " reexecuted=" << partitions_reexecuted;
  }
  return os.str();
}

MetricsSnapshot Metrics::Snapshot() const {
  MetricsSnapshot s;
  s.shuffle_bytes = shuffle_bytes();
  s.shuffle_records = shuffle_records();
  s.cross_executor_bytes = cross_executor_bytes();
  s.local_shuffle_bytes = local_shuffle_bytes();
  s.tasks_run = tasks_run();
  s.tasks_recomputed = tasks_recomputed();
  s.records_processed = records_processed();
  s.tasks_retried = tasks_retried();
  s.retry_wait_us = retry_wait_us();
  s.faults_injected = faults_injected();
  s.checkpoint_bytes = checkpoint_bytes();
  s.checkpoint_restore_bytes = checkpoint_restore_bytes();
  s.evictions = evictions();
  s.bytes_evicted = bytes_evicted();
  s.bytes_reloaded = bytes_reloaded();
  s.reload_recomputes = reload_recomputes();
  s.peak_resident_bytes = peak_resident_bytes();
  s.flops_generic = flops_generic();
  s.flops_packed = flops_packed();
  s.flops_jvmlike = flops_jvmlike();
  s.tile_allocs = tile_allocs();
  s.queries_admitted = queries_admitted();
  s.queries_queued = queries_queued();
  s.plan_cache_hits = plan_cache_hits();
  s.plan_cache_misses = plan_cache_misses();
  s.plan_cache_evictions = plan_cache_evictions();
  s.dist_bytes_sent = dist_bytes_sent();
  s.dist_bytes_received = dist_bytes_received();
  s.workers_lost = workers_lost();
  s.partitions_reexecuted = partitions_reexecuted();
  return s;
}

std::string Metrics::ToString() const { return Snapshot().ToString(); }

std::string StageStatsSnapshot::ToString() const {
  std::ostringstream os;
  os << "#" << id << " " << label << " [" << kind << "]"
     << " tasks=" << counters.tasks_run
     << " records_in=" << counters.records_processed
     << " shuffle=" << counters.shuffle_bytes / (1024.0 * 1024.0) << "MB"
     << " cross=" << counters.cross_executor_bytes / (1024.0 * 1024.0)
     << "MB local=" << counters.local_shuffle_bytes / (1024.0 * 1024.0)
     << "MB recomputed=" << counters.tasks_recomputed;
  if (counters.tasks_retried > 0) {
    os << " retried=" << counters.tasks_retried
       << " backoff=" << counters.retry_wait_us / 1000.0 << "ms";
  }
  return os.str();
}

StageStatsSnapshot StageStats::Snapshot() const {
  StageStatsSnapshot s;
  s.id = id_;
  s.label = label_;
  s.kind = kind_;
  s.counters = local_.Snapshot();
  s.wall_ms = wall_us_.load(std::memory_order_relaxed) / 1000.0;
  s.task_us = task_us_.Snapshot();
  return s;
}

StageRef StageRegistry::NewStage(const std::string& label,
                                 const std::string& kind,
                                 Metrics* session) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = static_cast<int>(stages_.size());
  stages_.emplace_back(id, label, kind, totals_, session);
  return StageRef{gen_, id};
}

StageStats* StageRegistry::Get(const StageRef& ref) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ref.gen != gen_ || ref.id < 0 ||
      ref.id >= static_cast<int>(stages_.size())) {
    return nullptr;
  }
  return &stages_[ref.id];
}

std::vector<StageStatsSnapshot> StageRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StageStatsSnapshot> out;
  out.reserve(stages_.size());
  for (const StageStats& s : stages_) out.push_back(s.Snapshot());
  return out;
}

void StageRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stages_.clear();
  ++gen_;
}

size_t StageRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stages_.size();
}

std::string StageRegistry::ReportString() const {
  const std::vector<StageStatsSnapshot> stages = Snapshot();
  std::ostringstream os;
  char line[512];
  std::snprintf(line, sizeof(line),
                "%-5s %-24s %-9s %6s %12s %12s %10s %10s %7s %7s %6s %10s "
                "%8s %8s %9s %10s %10s %6s %9s %12s\n",
                "stage", "label", "kind", "tasks", "records_in",
                "shuffle_KB", "cross_KB", "local_KB", "recomp", "retries",
                "faults", "backoff_ms", "ckpt_KB", "evict_KB", "reload_KB",
                "dist_tx_KB", "dist_rx_KB", "reexec", "wall_ms",
                "task_p95_us");
  os << line;
  for (const StageStatsSnapshot& s : stages) {
    std::snprintf(
        line, sizeof(line),
        "%-5d %-24s %-9s %6llu %12llu %12.1f %10.1f %10.1f %7llu %7llu "
        "%6llu %10.1f %8.1f %8.1f %9.1f %10.1f %10.1f %6llu %9.2f %12llu\n",
        s.id, s.label.substr(0, 24).c_str(), s.kind.c_str(),
        static_cast<unsigned long long>(s.counters.tasks_run),
        static_cast<unsigned long long>(s.counters.records_processed),
        s.counters.shuffle_bytes / 1024.0,
        s.counters.cross_executor_bytes / 1024.0,
        s.counters.local_shuffle_bytes / 1024.0,
        static_cast<unsigned long long>(s.counters.tasks_recomputed),
        static_cast<unsigned long long>(s.counters.tasks_retried),
        static_cast<unsigned long long>(s.counters.faults_injected),
        s.counters.retry_wait_us / 1000.0,
        (s.counters.checkpoint_bytes + s.counters.checkpoint_restore_bytes) /
            1024.0,
        s.counters.bytes_evicted / 1024.0,
        s.counters.bytes_reloaded / 1024.0,
        s.counters.dist_bytes_sent / 1024.0,
        s.counters.dist_bytes_received / 1024.0,
        static_cast<unsigned long long>(s.counters.partitions_reexecuted),
        s.wall_ms,
        static_cast<unsigned long long>(s.task_us.Percentile(0.95)));
    os << line;
  }
  return os.str();
}

}  // namespace sac
