#include "src/common/metrics.h"

#include <sstream>

namespace sac {

std::string Metrics::ToString() const {
  std::ostringstream os;
  os << "shuffle=" << shuffle_bytes() / (1024.0 * 1024.0) << "MB"
     << " records=" << shuffle_records()
     << " cross_exec=" << cross_executor_bytes() / (1024.0 * 1024.0) << "MB"
     << " tasks=" << tasks_run() << " recomputed=" << tasks_recomputed();
  return os.str();
}

}  // namespace sac
