#include "src/common/json.h"

#include <cctype>
#include <cstdlib>

namespace sac::json {

const Value& Value::At(const std::string& key) const {
  static const Value kNullValue;
  if (!is_object()) return kNullValue;
  auto it = object.find(key);
  return it == object.end() ? kNullValue : it->second;
}

double Value::GetNum(const std::string& key, double dflt) const {
  const Value& v = At(key);
  return v.is_number() ? v.number : dflt;
}

int64_t Value::GetInt(const std::string& key, int64_t dflt) const {
  const Value& v = At(key);
  return v.is_number() ? v.Int() : dflt;
}

uint64_t Value::GetUInt(const std::string& key, uint64_t dflt) const {
  const Value& v = At(key);
  return v.is_number() ? v.UInt() : dflt;
}

std::string Value::GetStr(const std::string& key,
                          const std::string& dflt) const {
  const Value& v = At(key);
  return v.is_string() ? v.str : dflt;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Status Parse(Value* out) {
    SkipWs();
    SAC_RETURN_NOT_OK(ParseValue(out));
    SkipWs();
    if (pos_ != s_.size()) return Error("trailing data");
    return Status::OK();
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Value* out) {
    SkipWs();
    if (pos_ >= s_.size()) return Error("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = Value::Kind::kString;
      return ParseString(&out->str);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out->kind = Value::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return Status::OK();
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out->kind = Value::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return Status::OK();
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      out->kind = Value::Kind::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseObject(Value* out) {
    out->kind = Value::Kind::kObject;
    if (!Consume('{')) return Error("expected '{'");
    if (Consume('}')) return Status::OK();
    while (true) {
      std::string key;
      SkipWs();
      SAC_RETURN_NOT_OK(ParseString(&key));
      if (!Consume(':')) return Error("expected ':' after object key");
      Value v;
      SAC_RETURN_NOT_OK(ParseValue(&v));
      out->object.emplace(std::move(key), std::move(v));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Value* out) {
    out->kind = Value::Kind::kArray;
    if (!Consume('[')) return Error("expected '['");
    if (Consume(']')) return Status::OK();
    while (true) {
      Value v;
      SAC_RETURN_NOT_OK(ParseValue(&v));
      out->array.push_back(std::move(v));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return Error("expected '\"'");
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= s_.size()) return Error("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Error("truncated \\u escape");
          // Our writers only emit \u00xx for control characters; keep
          // the low byte.
          char* end = nullptr;
          const std::string hex = s_.substr(pos_, 4);
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) return Error("bad \\u escape");
          pos_ += 4;
          *out += static_cast<char>(code & 0xff);
          break;
        }
        default:
          return Error(std::string("unknown escape '\\") + e + "'");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    char* end = nullptr;
    const std::string num = s_.substr(start, pos_ - start);
    out->number = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) {
      pos_ = start;
      return Error("malformed number");
    }
    out->kind = Value::Kind::kNumber;
    return Status::OK();
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Status Parse(const std::string& text, Value* out) {
  return Parser(text).Parse(out);
}

}  // namespace sac::json
