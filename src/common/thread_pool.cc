#include "src/common/thread_pool.h"

#include <algorithm>
#include <memory>

namespace sac {

ThreadPool::ThreadPool(size_t num_threads) {
  queues_[kDefaultQueue];  // the default queue always exists
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool::QueueId ThreadPool::OpenQueue() {
  std::lock_guard<std::mutex> lock(mu_);
  const QueueId id = next_queue_id_++;
  queues_[id];
  return id;
}

void ThreadPool::CloseQueue(QueueId id) {
  if (id == kDefaultQueue) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find(id);
  if (it == queues_.end()) return;
  std::deque<std::function<void()>>& dflt = queues_[kDefaultQueue];
  for (auto& task : it->second) dflt.push_back(std::move(task));
  queues_.erase(it);
}

void ThreadPool::Submit(QueueId queue, std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queues_.find(queue);
    if (it == queues_.end()) it = queues_.find(kDefaultQueue);
    it->second.push_back(std::move(task));
    ++queued_;
  }
  cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queued_ == 0 && active_ == 0; });
}

std::function<void()> ThreadPool::PopLocked() {
  // One task per round from the first non-empty queue at or after the
  // cursor (wrapping), then advance past it: every queue with pending
  // work is served once before any queue is served twice.
  auto it = queues_.lower_bound(rr_next_);
  for (size_t scanned = 0; scanned <= queues_.size(); ++scanned) {
    if (it == queues_.end()) it = queues_.begin();
    if (!it->second.empty()) break;
    ++it;
  }
  std::function<void()> task = std::move(it->second.front());
  it->second.pop_front();
  --queued_;
  rr_next_ = it->first + 1;
  return task;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             size_t chunk, QueueId queue) {
  if (n == 0) return;
  const size_t workers = std::min(n, num_threads());
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (chunk == 0) {
    // Partition-task ranges (n comparable to the pool width) claim one
    // index at a time so a skewed partition never queues work behind it;
    // large fine-grained ranges amortize per-task overhead over a chunk
    // while still leaving ~8 claims per worker for rebalancing.
    chunk = n <= workers * 16 ? 1 : n / (workers * 8);
  }
  // One pool task per chunk: popping a chunk off the queue is the
  // dynamic claim (finishing order adapts to per-index cost), and the
  // round-robin scheduler can interleave other queues' tasks between
  // chunks. A shared latch signals completion so this does not interfere
  // with unrelated tasks in the same pool.
  struct Ctl {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending;
  };
  auto ctl = std::make_shared<Ctl>();
  const size_t chunks = (n + chunk - 1) / chunk;
  ctl->pending = chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queues_.find(queue);
    if (it == queues_.end()) it = queues_.find(kDefaultQueue);
    for (size_t c = 0; c < chunks; ++c) {
      const size_t lo = c * chunk;
      const size_t hi = std::min(n, lo + chunk);
      it->second.push_back([&fn, lo, hi, ctl] {
        for (size_t i = lo; i < hi; ++i) fn(i);
        std::lock_guard<std::mutex> inner(ctl->mu);
        if (--ctl->pending == 0) ctl->cv.notify_all();
      });
    }
    queued_ += chunks;
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lock(ctl->mu);
  ctl->cv.wait(lock, [&] { return ctl->pending == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || queued_ > 0; });
      if (shutdown_ && queued_ == 0) return;
      task = PopLocked();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queued_ == 0 && active_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(
      std::max(2u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace sac
