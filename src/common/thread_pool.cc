#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace sac {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             size_t chunk) {
  if (n == 0) return;
  const size_t workers = std::min(n, num_threads());
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (chunk == 0) {
    // Partition-task ranges (n comparable to the pool width) claim one
    // index at a time so a skewed partition never queues work behind it;
    // large fine-grained ranges amortize cursor traffic over a chunk
    // while still leaving ~8 claims per worker for rebalancing.
    chunk = n <= workers * 16 ? 1 : n / (workers * 8);
  }
  // Dynamic chunked claiming: workers race on a shared cursor, so the
  // finishing order adapts to per-index cost. A shared latch signals
  // completion so this does not interfere with unrelated tasks in the
  // same pool.
  struct Ctl {
    std::atomic<size_t> cursor{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t pending;
  };
  auto ctl = std::make_shared<Ctl>();
  ctl->pending = workers;
  for (size_t w = 0; w < workers; ++w) {
    Submit([&fn, n, chunk, ctl] {
      for (;;) {
        const size_t lo =
            ctl->cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= n) break;
        const size_t hi = std::min(n, lo + chunk);
        for (size_t i = lo; i < hi; ++i) fn(i);
      }
      std::lock_guard<std::mutex> lock(ctl->mu);
      if (--ctl->pending == 0) ctl->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(ctl->mu);
  ctl->cv.wait(lock, [&] { return ctl->pending == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(
      std::max(2u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace sac
