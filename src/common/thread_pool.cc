#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace sac {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t num_chunks = std::min(n, num_threads());
  if (num_chunks <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Chunked static partitioning; a shared latch signals completion so this
  // does not interfere with unrelated tasks in the same pool.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending;
  };
  auto latch = std::make_shared<Latch>();
  latch->pending = num_chunks;
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t lo = c * chunk;
    const size_t hi = std::min(n, lo + chunk);
    Submit([&fn, lo, hi, latch] {
      for (size_t i = lo; i < hi; ++i) fn(i);
      std::lock_guard<std::mutex> lock(latch->mu);
      if (--latch->pending == 0) latch->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->pending == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(
      std::max(2u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace sac
