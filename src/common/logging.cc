#include "src/common/logging.h"

#include <atomic>
#include <mutex>

namespace sac {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
std::mutex& LogMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << "\n";
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] check failed: `"
          << condition << "` ";
}

FatalMessage::~FatalMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal
}  // namespace sac
