#include "src/common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <mutex>
#include <string>

namespace sac {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
std::mutex& LogMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevelFromEnv() {
  const char* env = std::getenv("SAC_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  if (v == "debug" || v == "0") {
    SetLogLevel(LogLevel::kDebug);
  } else if (v == "info" || v == "1") {
    SetLogLevel(LogLevel::kInfo);
  } else if (v == "warn" || v == "warning" || v == "2") {
    SetLogLevel(LogLevel::kWarn);
  } else if (v == "error" || v == "3") {
    SetLogLevel(LogLevel::kError);
  } else {
    SAC_LOG(Warn) << "unrecognized SAC_LOG_LEVEL '" << env
                  << "' (want debug|info|warn|error); keeping current level";
  }
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << "\n";
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] check failed: `"
          << condition << "` ";
}

FatalMessage::~FatalMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal
}  // namespace sac
