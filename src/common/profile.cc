#include "src/common/profile.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "src/common/json.h"

namespace sac::profile {

namespace {

using trace::SpanRecord;

/// Total length covered by a set of intervals, overlap collapsed.
uint64_t UnionCoverage(std::vector<std::pair<uint64_t, uint64_t>>* ivals) {
  if (ivals->empty()) return 0;
  std::sort(ivals->begin(), ivals->end());
  uint64_t covered = 0;
  uint64_t cur_lo = (*ivals)[0].first;
  uint64_t cur_hi = (*ivals)[0].second;
  for (size_t i = 1; i < ivals->size(); ++i) {
    const auto& [lo, hi] = (*ivals)[i];
    if (lo > cur_hi) {
      covered += cur_hi - cur_lo;
      cur_lo = lo;
      cur_hi = hi;
    } else {
      cur_hi = std::max(cur_hi, hi);
    }
  }
  return covered + (cur_hi - cur_lo);
}

/// Task spans are named "label:phase[i]" (Engine::ParallelParts); pulls
/// out the phase, falling back to the span category.
std::string PhaseOf(const SpanRecord& task) {
  const size_t bracket = task.name.rfind('[');
  if (bracket == std::string::npos) return task.category;
  const size_t colon = task.name.rfind(':', bracket);
  if (colon == std::string::npos || colon + 1 >= bracket) {
    return task.category;
  }
  return task.name.substr(colon + 1, bracket - colon - 1);
}

void Accumulate(MetricsSnapshot* into, const MetricsSnapshot& from) {
  // Sum everything, then repair the one gauge a sum is wrong for.
  const uint64_t peak =
      std::max(into->peak_resident_bytes, from.peak_resident_bytes);
#define SAC_METRICS_APPLY(name) into->name += from.name;
  SAC_METRICS_FOR_EACH_COUNTER(SAC_METRICS_APPLY)
#undef SAC_METRICS_APPLY
  into->peak_resident_bytes = peak;
}

void AppendF(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

void AppendCounters(std::string* out, const MetricsSnapshot& c) {
  *out += "{";
  bool first = true;
  c.ForEachCounter([&](const char* name, uint64_t value) {
    if (!first) *out += ",";
    first = false;
    *out += "\"";
    *out += name;
    *out += "\":" + std::to_string(value);
  });
  *out += "}";
}

}  // namespace

Profile BuildProfile(ProfileInputs in) {
  Profile p;
  p.query = std::move(in.query);
  p.dropped_trace_events = in.dropped_trace_events;
  p.totals = in.totals;

  // Split the event stream: counter samples ride along as the
  // time-series, instants (recompute/evict/retry markers) carry no
  // duration, real spans feed the tree.
  std::vector<const SpanRecord*> spans;
  spans.reserve(in.spans.size());
  for (const SpanRecord& s : in.spans) {
    if (s.counter) {
      p.samples.push_back(Sample{s.start_us, s.args});
      continue;
    }
    if (s.instant) continue;
    spans.push_back(&s);
  }
  if (spans.empty()) {
    p.wall_ms = in.wall_ms_hint;
    return p;
  }

  std::unordered_map<uint64_t, const SpanRecord*> by_id;
  by_id.reserve(spans.size());
  for (const SpanRecord* s : spans) by_id.emplace(s->id, s);

  // Roots = spans with no surviving parent (parent 0, or the parent was
  // drained before this snapshot). Everything else hangs off one.
  std::unordered_map<uint64_t, std::vector<const SpanRecord*>> children;
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord* s : spans) {
    if (s->parent != 0 && by_id.count(s->parent) > 0) {
      children[s->parent].push_back(s);
    } else {
      roots.push_back(s);
    }
  }

  uint64_t t0 = UINT64_MAX, t1 = 0;
  for (const SpanRecord* s : spans) {
    t0 = std::min(t0, s->start_us);
    t1 = std::max(t1, s->start_us + s->dur_us);
  }
  p.trace_extent_ms = static_cast<double>(t1 - t0) / 1000.0;
  p.wall_ms = in.wall_ms_hint > 0 ? in.wall_ms_hint : p.trace_extent_ms;

  struct PhaseAgg {
    uint64_t count = 0;
    uint64_t task_time = 0;
    uint64_t longest = 0;
    std::vector<std::pair<uint64_t, uint64_t>> ivals;
  };
  struct Agg {
    StageProfile sp;
    trace::Histogram task_us;
    std::map<std::string, PhaseAgg> phases;
  };
  // Ordered map: aggregation (and thus JSON output) is deterministic.
  std::map<std::pair<std::string, std::string>, Agg> aggs;
  auto agg_for = [&aggs](const SpanRecord* root) -> Agg& {
    Agg& a = aggs[{root->name, root->category}];
    if (a.sp.count == 0) {
      a.sp.name = root->name;
      a.sp.category = root->category;
    }
    return a;
  };

  for (const SpanRecord* root : roots) {
    Agg& a = agg_for(root);
    a.sp.count += 1;
    a.sp.total_us += root->dur_us;
    if (a.sp.stage_id < 0) {
      for (const trace::SpanArg& arg : root->args) {
        if (arg.key == "stage") {
          a.sp.stage_id = static_cast<int>(arg.value);
          break;
        }
      }
    }

    // Self time: the root's duration not covered by its direct children
    // (clipped to the root's interval).
    const uint64_t root_end = root->start_us + root->dur_us;
    std::vector<std::pair<uint64_t, uint64_t>> child_ivals;
    auto cit = children.find(root->id);
    if (cit != children.end()) {
      for (const SpanRecord* c : cit->second) {
        const uint64_t lo = std::max(c->start_us, root->start_us);
        const uint64_t hi =
            std::min(c->start_us + c->dur_us, root_end);
        if (hi > lo) child_ivals.emplace_back(lo, hi);
      }
    }
    const uint64_t covered = UnionCoverage(&child_ivals);
    a.sp.self_us += root->dur_us > covered ? root->dur_us - covered : 0;

    // Task rollup over the whole subtree (in practice tasks are direct
    // children, but recovery can nest one level deeper).
    std::vector<const SpanRecord*> stack{root};
    while (!stack.empty()) {
      const SpanRecord* cur = stack.back();
      stack.pop_back();
      auto it = children.find(cur->id);
      if (it != children.end()) {
        for (const SpanRecord* c : it->second) stack.push_back(c);
      }
      if (cur == root || cur->category != "task") continue;
      a.sp.task_time_us += cur->dur_us;
      a.sp.longest_task_us = std::max(a.sp.longest_task_us, cur->dur_us);
      a.task_us.Record(cur->dur_us);
      PhaseAgg& ph = a.phases[PhaseOf(*cur)];
      ph.count += 1;
      ph.task_time += cur->dur_us;
      ph.longest = std::max(ph.longest, cur->dur_us);
      ph.ivals.emplace_back(cur->start_us, cur->start_us + cur->dur_us);
    }
  }

  // Critical path: the driver runs root spans sequentially, so sweep the
  // roots in start order and credit each only with the time it is the
  // earliest-started span to cover -- overlap (concurrent roots, nested
  // recovers surfacing as roots) is never double counted, and the sum
  // can't exceed the trace extent.
  std::sort(roots.begin(), roots.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->start_us != b->start_us ? a->start_us < b->start_us
                                                : a->id < b->id;
            });
  uint64_t cursor = t0;
  uint64_t exclusive_total = 0;
  for (const SpanRecord* root : roots) {
    const uint64_t end = root->start_us + root->dur_us;
    if (end > cursor) {
      const uint64_t excl = end - std::max(root->start_us, cursor);
      agg_for(root).sp.exclusive_us += excl;
      exclusive_total += excl;
      cursor = end;
    }
  }
  p.coverage_pct = p.wall_ms > 0 ? static_cast<double>(exclusive_total) /
                                       1000.0 / p.wall_ms * 100.0
                                 : 0;

  // Join per-stage counters from the registry by label. Each registry
  // stage's label equals its stage span's name, so every stage lands in
  // exactly one aggregate (":recover"/":checkpoint" span variants and
  // action spans match no label and carry no counters).
  for (auto& [key, agg] : aggs) {
    for (const StageStatsSnapshot& ss : in.stage_stats) {
      if (ss.label != agg.sp.name) continue;
      Accumulate(&agg.sp.counters, ss.counters);
      agg.sp.has_counters = true;
    }
  }

  for (auto& [key, agg] : aggs) {
    StageProfile& sp = agg.sp;
    sp.wall_pct = p.wall_ms > 0 ? static_cast<double>(sp.exclusive_us) /
                                      1000.0 / p.wall_ms * 100.0
                                : 0;
    const trace::HistogramSnapshot h = agg.task_us.Snapshot();
    sp.task_p50_us = h.Percentile(0.5);
    sp.task_p95_us = h.Percentile(0.95);
    for (auto& [phase, pa] : agg.phases) {
      PhaseProfile pp;
      pp.phase = phase;
      pp.task_count = pa.count;
      pp.task_time_us = pa.task_time;
      pp.longest_task_us = pa.longest;
      pp.busy_us = UnionCoverage(&pa.ivals);
      sp.phases.push_back(std::move(pp));
    }
    std::sort(sp.phases.begin(), sp.phases.end(),
              [](const PhaseProfile& a, const PhaseProfile& b) {
                return a.task_time_us != b.task_time_us
                           ? a.task_time_us > b.task_time_us
                           : a.phase < b.phase;
              });
    p.stages.push_back(std::move(sp));
  }
  std::sort(p.stages.begin(), p.stages.end(),
            [](const StageProfile& a, const StageProfile& b) {
              return a.total_us != b.total_us ? a.total_us > b.total_us
                                              : a.name < b.name;
            });
  for (int i = 0; i < static_cast<int>(p.stages.size()); ++i) {
    if (p.stages[i].exclusive_us > 0) p.critical_path.push_back(i);
  }
  std::sort(p.critical_path.begin(), p.critical_path.end(),
            [&p](int a, int b) {
              return p.stages[a].exclusive_us != p.stages[b].exclusive_us
                         ? p.stages[a].exclusive_us > p.stages[b].exclusive_us
                         : p.stages[a].name < p.stages[b].name;
            });
  return p;
}

std::string Profile::ToJson() const {
  std::string out;
  out.reserve(4096);
  out += "{\"profile_version\":" + std::to_string(version);
  out += ",\"query\":\"" + trace::JsonEscape(query) + "\"";
  out += ",\"wall_ms\":";
  AppendF(&out, wall_ms);
  out += ",\"trace_extent_ms\":";
  AppendF(&out, trace_extent_ms);
  out += ",\"coverage_pct\":";
  AppendF(&out, coverage_pct);
  out += ",\"dropped_trace_events\":" + std::to_string(dropped_trace_events);
  out += ",\"totals\":";
  AppendCounters(&out, totals);
  out += ",\"stages\":[";
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageProfile& s = stages[i];
    if (i > 0) out += ",";
    out += "\n{\"name\":\"" + trace::JsonEscape(s.name) + "\"";
    out += ",\"category\":\"" + trace::JsonEscape(s.category) + "\"";
    if (s.stage_id >= 0) {
      out += ",\"stage_id\":" + std::to_string(s.stage_id);
    }
    out += ",\"count\":" + std::to_string(s.count);
    out += ",\"total_us\":" + std::to_string(s.total_us);
    out += ",\"self_us\":" + std::to_string(s.self_us);
    out += ",\"task_time_us\":" + std::to_string(s.task_time_us);
    out += ",\"exclusive_us\":" + std::to_string(s.exclusive_us);
    out += ",\"wall_pct\":";
    AppendF(&out, s.wall_pct);
    out += ",\"task_p50_us\":" + std::to_string(s.task_p50_us);
    out += ",\"task_p95_us\":" + std::to_string(s.task_p95_us);
    out += ",\"longest_task_us\":" + std::to_string(s.longest_task_us);
    if (s.has_counters) {
      out += ",\"counters\":";
      AppendCounters(&out, s.counters);
    }
    out += ",\"phases\":[";
    for (size_t j = 0; j < s.phases.size(); ++j) {
      const PhaseProfile& ph = s.phases[j];
      if (j > 0) out += ",";
      out += "{\"phase\":\"" + trace::JsonEscape(ph.phase) + "\"";
      out += ",\"task_count\":" + std::to_string(ph.task_count);
      out += ",\"busy_us\":" + std::to_string(ph.busy_us);
      out += ",\"task_time_us\":" + std::to_string(ph.task_time_us);
      out += ",\"longest_task_us\":" + std::to_string(ph.longest_task_us);
      out += "}";
    }
    out += "]}";
  }
  out += "],\"critical_path\":[";
  for (size_t i = 0; i < critical_path.size(); ++i) {
    const StageProfile& s = stages[static_cast<size_t>(critical_path[i])];
    if (i > 0) out += ",";
    out += "\n{\"stage\":\"" + trace::JsonEscape(s.name) + "\"";
    out += ",\"category\":\"" + trace::JsonEscape(s.category) + "\"";
    out += ",\"exclusive_us\":" + std::to_string(s.exclusive_us);
    out += ",\"wall_pct\":";
    AppendF(&out, s.wall_pct);
    out += "}";
  }
  out += "],\"samples\":[";
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    if (i > 0) out += ",";
    out += "\n{\"t_us\":" + std::to_string(s.t_us) + ",\"values\":{";
    for (size_t j = 0; j < s.values.size(); ++j) {
      if (j > 0) out += ",";
      out += "\"" + trace::JsonEscape(s.values[j].key) +
             "\":" + std::to_string(s.values[j].value);
    }
    out += "}}";
  }
  out += "]}\n";
  return out;
}

Result<Profile> ParseProfile(const std::string& json_text) {
  json::Value doc;
  SAC_RETURN_NOT_OK(json::Parse(json_text, &doc));
  if (!doc.is_object() || !doc.Has("profile_version")) {
    return Status::InvalidArgument(
        "not a profile.json document (missing profile_version)");
  }
  Profile p;
  p.version = static_cast<int>(doc.GetInt("profile_version"));
  if (p.version > kProfileVersion) {
    return Status::InvalidArgument(
        "profile version " + std::to_string(p.version) +
        " is newer than this reader (" + std::to_string(kProfileVersion) +
        ")");
  }
  p.query = doc.GetStr("query");
  p.wall_ms = doc.GetNum("wall_ms");
  p.trace_extent_ms = doc.GetNum("trace_extent_ms");
  p.coverage_pct = doc.GetNum("coverage_pct");
  p.dropped_trace_events = doc.GetUInt("dropped_trace_events");
  const auto parse_counters = [](const json::Value& v, MetricsSnapshot* c) {
    c->ForEachCounter([&v](const char* name, uint64_t& field) {
      field = v.GetUInt(name);
    });
  };
  parse_counters(doc.At("totals"), &p.totals);

  for (const json::Value& sv : doc.At("stages").array) {
    StageProfile s;
    s.name = sv.GetStr("name");
    s.category = sv.GetStr("category");
    s.stage_id = static_cast<int>(sv.GetInt("stage_id", -1));
    s.count = sv.GetUInt("count");
    s.total_us = sv.GetUInt("total_us");
    s.self_us = sv.GetUInt("self_us");
    s.task_time_us = sv.GetUInt("task_time_us");
    s.exclusive_us = sv.GetUInt("exclusive_us");
    s.wall_pct = sv.GetNum("wall_pct");
    s.task_p50_us = sv.GetUInt("task_p50_us");
    s.task_p95_us = sv.GetUInt("task_p95_us");
    s.longest_task_us = sv.GetUInt("longest_task_us");
    if (sv.Has("counters")) {
      s.has_counters = true;
      parse_counters(sv.At("counters"), &s.counters);
    }
    for (const json::Value& pv : sv.At("phases").array) {
      PhaseProfile ph;
      ph.phase = pv.GetStr("phase");
      ph.task_count = pv.GetUInt("task_count");
      ph.busy_us = pv.GetUInt("busy_us");
      ph.task_time_us = pv.GetUInt("task_time_us");
      ph.longest_task_us = pv.GetUInt("longest_task_us");
      s.phases.push_back(std::move(ph));
    }
    p.stages.push_back(std::move(s));
  }

  // Rebuild critical-path indices from the serialized entries; (name,
  // category) is the aggregation key, so the match is unique.
  for (const json::Value& cv : doc.At("critical_path").array) {
    const std::string name = cv.GetStr("stage");
    const std::string category = cv.GetStr("category");
    for (int i = 0; i < static_cast<int>(p.stages.size()); ++i) {
      if (p.stages[i].name == name && p.stages[i].category == category) {
        p.critical_path.push_back(i);
        break;
      }
    }
  }

  for (const json::Value& sv : doc.At("samples").array) {
    Sample s;
    s.t_us = sv.GetUInt("t_us");
    for (const auto& [k, v] : sv.At("values").object) {
      s.values.push_back(trace::SpanArg{k, v.Int()});
    }
    p.samples.push_back(std::move(s));
  }
  return p;
}

// ---------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------

bool IsRegression(double base, double cur, double rel_pct, double abs_floor) {
  const double delta = cur - base;
  if (delta <= 0 || delta < abs_floor) return false;
  if (base <= 0) return true;  // something appeared out of nothing
  return delta / base * 100.0 >= rel_pct;
}

DiffResult DiffProfiles(const Profile& base, const Profile& cur,
                        const DiffThresholds& t) {
  DiffResult r;
  const auto add = [&r](const std::string& metric, double b, double c,
                        double rel_pct, double abs_floor) {
    DiffEntry e;
    e.metric = metric;
    e.base = b;
    e.cur = c;
    e.delta_pct = b > 0 ? (c - b) / b * 100.0 : (c > 0 ? 100.0 : 0.0);
    e.regression = IsRegression(b, c, rel_pct, abs_floor);
    if (e.regression) ++r.regressions;
    r.entries.push_back(std::move(e));
  };

  add("wall_ms", base.wall_ms, cur.wall_ms, t.time_pct, t.time_abs_ms);
  // Total shuffle volume (local + remote) is route-independent; the
  // cross-executor subset is the "network" cost the paper's plans
  // optimize for. Both are deterministic per plan, as are task counts
  // and eviction traffic under a fixed budget.
  add("shuffle_bytes_total",
      static_cast<double>(base.totals.shuffle_bytes +
                          base.totals.local_shuffle_bytes),
      static_cast<double>(cur.totals.shuffle_bytes +
                          cur.totals.local_shuffle_bytes),
      t.bytes_pct, t.bytes_abs);
  add("cross_executor_bytes",
      static_cast<double>(base.totals.cross_executor_bytes),
      static_cast<double>(cur.totals.cross_executor_bytes), t.bytes_pct,
      t.bytes_abs);
  add("shuffle_records", static_cast<double>(base.totals.shuffle_records),
      static_cast<double>(cur.totals.shuffle_records), t.count_pct,
      t.count_abs);
  add("tasks_run", static_cast<double>(base.totals.tasks_run),
      static_cast<double>(cur.totals.tasks_run), t.count_pct, t.count_abs);
  add("bytes_evicted", static_cast<double>(base.totals.bytes_evicted),
      static_cast<double>(cur.totals.bytes_evicted), t.bytes_pct,
      t.bytes_abs);
  return r;
}

std::string DiffResult::ToString() const {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-22s %14s %14s %9s\n", "metric", "base",
                "current", "delta");
  os << buf;
  for (const DiffEntry& e : entries) {
    std::snprintf(buf, sizeof(buf), "%-22s %14.3f %14.3f %+8.1f%%%s\n",
                  e.metric.c_str(), e.base, e.cur, e.delta_pct,
                  e.regression ? "  REGRESSION" : "");
    os << buf;
  }
  os << (regressions == 0
             ? "no regressions\n"
             : std::to_string(regressions) + " regression(s)\n");
  return os.str();
}

}  // namespace sac::profile
