#include "src/common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <unordered_map>

namespace sac::trace {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point ProcessEpoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

/// Small dense thread ids (stable per thread, process-wide).
uint32_t CurrentTid() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t tid = next.fetch_add(1) + 1;
  return tid;
}

std::atomic<uint64_t> g_tracer_uid{0};

}  // namespace

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            ProcessEpoch())
          .count());
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

namespace {
/// Bucket 0 holds v == 0; bucket i >= 1 holds 2^(i-1) <= v < 2^i.
/// Values >= 2^63 saturate into bucket 63 (64 - clz would index past
/// the array).
int BucketOf(uint64_t v) {
  if (v == 0) return 0;
  const int b = 64 - __builtin_clzll(v);
  return b > 63 ? 63 : b;
}
}  // namespace

void Histogram::Record(uint64_t v) {
  buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v)) {
  }
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  const uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min = (s.count == 0) ? 0 : mn;
  for (size_t i = 0; i < s.buckets.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const uint64_t rank = static_cast<uint64_t>(p * (count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      if (i == 0) return 0;
      // Bucket upper bound, clamped to the observed max: tighter for the
      // bucket the max lives in, and the top bucket holds saturated
      // values >= 2^63 whose nominal bound would overflow the shift.
      const uint64_t bound = i >= 63 ? max : (uint64_t{1} << i) - 1;
      return std::min(bound, max);
    }
  }
  return max;
}

std::string HistogramSnapshot::ToString() const {
  std::ostringstream os;
  os << "count=" << count << " mean=" << static_cast<uint64_t>(Mean())
     << " p50<=" << Percentile(0.5) << " p95<=" << Percentile(0.95)
     << " max=" << max;
  return os.str();
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

Tracer::Tracer() : uid_(g_tracer_uid.fetch_add(1) + 1) {}

Tracer::Buffer* Tracer::ThreadBuffer() {
  // Per-thread cache keyed by tracer uid. Uids are never reused, so a
  // stale entry for a destroyed tracer can never be looked up again.
  thread_local std::unordered_map<uint64_t, Buffer*> cache;
  auto it = cache.find(uid_);
  if (it != cache.end()) return it->second;
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<Buffer>());
  Buffer* buf = buffers_.back().get();
  cache.emplace(uid_, buf);
  return buf;
}

void Tracer::Record(SpanRecord rec) {
  if (!enabled()) return;
  Buffer* buf = ThreadBuffer();
  const size_t cap = buffer_capacity_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(buf->mu);
  if (buf->records.size() >= cap) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf->records.push_back(std::move(rec));
}

void Tracer::Instant(std::string name, std::string category, uint64_t parent,
                     std::vector<SpanArg> args) {
  if (!enabled()) return;
  SpanRecord rec;
  rec.id = NextId();
  rec.parent = parent;
  rec.name = std::move(name);
  rec.category = std::move(category);
  rec.start_us = NowMicros();
  rec.dur_us = 0;
  rec.tid = CurrentTid();
  rec.instant = true;
  rec.args = std::move(args);
  Record(std::move(rec));
}

void Tracer::Counter(std::string name, std::vector<SpanArg> args) {
  if (!enabled()) return;
  SpanRecord rec;
  rec.id = NextId();
  rec.name = std::move(name);
  rec.category = "counter";
  rec.start_us = NowMicros();
  rec.tid = CurrentTid();
  rec.counter = true;
  rec.args = std::move(args);
  Record(std::move(rec));
}

std::vector<SpanRecord> Tracer::Drain() {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& buf : buffers_) {
      std::lock_guard<std::mutex> blk(buf->mu);
      out.insert(out.end(), std::make_move_iterator(buf->records.begin()),
                 std::make_move_iterator(buf->records.end()));
      buf->records.clear();
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us != b.start_us ? a.start_us < b.start_us
                                              : a.id < b.id;
            });
  return out;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> blk(buf->mu);
      out.insert(out.end(), buf->records.begin(), buf->records.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us != b.start_us ? a.start_us < b.start_us
                                              : a.id < b.id;
            });
  return out;
}

void Tracer::Reset() {
  (void)Drain();
  dropped_.store(0, std::memory_order_relaxed);
}

size_t Tracer::size() const {
  size_t n = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> blk(buf->mu);
    n += buf->records.size();
  }
  return n;
}

std::string Tracer::ToChromeJson(const std::vector<SpanRecord>& spans,
                                 uint64_t dropped_events) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) os << ",";
    first = false;
    const char* ph = s.counter ? "C" : (s.instant ? "i" : "X");
    os << "\n{\"name\":\"" << JsonEscape(s.name) << "\",\"cat\":\""
       << JsonEscape(s.category) << "\",\"ph\":\"" << ph
       << "\",\"ts\":" << s.start_us;
    if (!s.instant && !s.counter) os << ",\"dur\":" << s.dur_us;
    if (s.instant) os << ",\"s\":\"t\"";  // thread-scoped instant
    os << ",\"pid\":1,\"tid\":" << s.tid << ",\"args\":{";
    bool first_arg = true;
    if (!s.counter) {
      // Counter tracks render every arg as a series; id/parent would
      // pollute the plot, so they are span/instant-only.
      os << "\"id\":" << s.id;
      if (s.parent != 0) os << ",\"parent\":" << s.parent;
      first_arg = false;
    }
    for (const SpanArg& a : s.args) {
      if (!first_arg) os << ",";
      first_arg = false;
      os << "\"" << JsonEscape(a.key) << "\":" << a.value;
    }
    os << "}}";
  }
  if (dropped_events > 0) {
    if (!first) os << ",";
    os << "\n{\"name\":\"trace:dropped_events\",\"cat\":\"meta\",\"ph\":\"C\""
       << ",\"ts\":" << NowMicros() << ",\"pid\":1,\"tid\":0"
       << ",\"args\":{\"dropped_events\":" << dropped_events << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

// ---------------------------------------------------------------------
// ScopedSpan
// ---------------------------------------------------------------------

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name, std::string category,
                       uint64_t parent)
    : tracer_(tracer && tracer->enabled() ? tracer : nullptr) {
  if (!tracer_) return;
  rec_.id = tracer_->NextId();
  rec_.parent = parent;
  rec_.name = std::move(name);
  rec_.category = std::move(category);
  rec_.start_us = NowMicros();
  rec_.tid = CurrentTid();
}

ScopedSpan::~ScopedSpan() {
  if (!tracer_) return;
  rec_.dur_us = NowMicros() - rec_.start_us;
  tracer_->Record(std::move(rec_));
}

void ScopedSpan::AddArg(std::string key, int64_t value) {
  if (!tracer_) return;
  rec_.args.push_back(SpanArg{std::move(key), value});
}

}  // namespace sac::trace
