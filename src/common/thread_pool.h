// Fixed-size thread pool with a ParallelFor helper. This is the substrate
// for both levels of parallelism in the paper's generated code: Spark's
// task-per-partition parallelism and Scala's `.par` multicore loops inside
// a tile operation.
#ifndef SAC_COMMON_THREAD_POOL_H_
#define SAC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sac {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Tasks currently executing plus tasks still queued -- the engine
  /// sampler's in-flight gauge. Takes the pool mutex; cheap at
  /// millisecond-scale sampling intervals.
  size_t in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return active_ + queue_.size();
  }

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n), splitting work across the pool and
  /// blocking until done. Safe to call from outside the pool only.
  ///
  /// Scheduling is skew-aware: workers claim chunks off a shared atomic
  /// cursor instead of being striped statically, so one fat index (a
  /// skewed partition) occupies one worker while the rest drain the
  /// remaining indices -- the stage is never serialized behind the
  /// heaviest element. `chunk` overrides the claim granularity; 0 picks
  /// one index per claim when n is within a small multiple of the pool
  /// width (partition-task workloads) and an amortizing chunk otherwise
  /// (fine-grained elementwise loops).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t chunk = 0);

  /// Process-wide default pool sized from hardware_concurrency (min 2, so
  /// concurrency bugs surface even on single-core hosts).
  static ThreadPool& Default();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        // wakes workers
  std::condition_variable idle_cv_;   // wakes Wait()
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace sac

#endif  // SAC_COMMON_THREAD_POOL_H_
