// Fixed-size thread pool with a ParallelFor helper. This is the substrate
// for both levels of parallelism in the paper's generated code: Spark's
// task-per-partition parallelism and Scala's `.par` multicore loops inside
// a tile operation.
//
// Fair multi-queue scheduling (docs/SERVICE.md): the pool holds one task
// queue per open session plus a default queue (id 0). Workers drain the
// queues round-robin at task granularity, so a giant stage submitted by
// one session cannot starve a small query from another -- each live queue
// gets one task per scheduling round. ParallelFor submits one task per
// claim-chunk (popping a chunk off the queue IS the dynamic claim), which
// keeps the skew-aware rebalancing of the old shared-cursor scheme while
// letting the round-robin interleave stages from different queues.
#ifndef SAC_COMMON_THREAD_POOL_H_
#define SAC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace sac {

class ThreadPool {
 public:
  /// Identifies one fair-scheduled task queue. Queue 0 is the default
  /// queue: always open, used by work not attributed to any session.
  using QueueId = uint64_t;
  static constexpr QueueId kDefaultQueue = 0;

  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Tasks currently executing plus tasks still queued on any queue --
  /// the engine sampler's in-flight gauge. Takes the pool mutex; cheap
  /// at millisecond-scale sampling intervals.
  size_t in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return active_ + queued_;
  }

  /// Opens a new fair-scheduled queue and returns its id (never 0).
  QueueId OpenQueue();

  /// Closes a queue. Tasks still pending on it migrate to the default
  /// queue (they run; they just lose their fairness slot). Closing an
  /// unknown id or the default queue is a no-op.
  void CloseQueue(QueueId id);

  /// Enqueues a task on `queue`. Tasks must not throw. Submitting to a
  /// closed or unknown queue falls back to the default queue, so a
  /// dataset outliving its session still computes.
  void Submit(QueueId queue, std::function<void()> task);
  void Submit(std::function<void()> task) {
    Submit(kDefaultQueue, std::move(task));
  }

  /// Blocks until every submitted task (on every queue) has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n), splitting work across the pool and
  /// blocking until done. Safe to call from outside the pool only.
  ///
  /// Scheduling is skew-aware: the range is cut into claim-chunks and
  /// each chunk is one pool task, so one fat index (a skewed partition)
  /// occupies one worker while the rest drain the remaining chunks --
  /// the stage is never serialized behind the heaviest element. `chunk`
  /// overrides the claim granularity; 0 picks one index per chunk when n
  /// is within a small multiple of the pool width (partition-task
  /// workloads) and an amortizing chunk otherwise (fine-grained
  /// elementwise loops). `queue` places the chunks on a fair-scheduled
  /// session queue (see OpenQueue).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t chunk = 0, QueueId queue = kDefaultQueue);

  /// Process-wide default pool sized from hardware_concurrency (min 2, so
  /// concurrency bugs surface even on single-core hosts).
  static ThreadPool& Default();

 private:
  void WorkerLoop();
  /// Picks the next task round-robin across non-empty queues. Caller
  /// holds mu_ and has checked queued_ > 0.
  std::function<void()> PopLocked();

  std::vector<std::thread> workers_;
  // Queue 0 (default) is created in the constructor and never erased;
  // session queues come and go via OpenQueue/CloseQueue. std::map keeps
  // ids ordered so the round-robin cursor can wrap deterministically.
  std::map<QueueId, std::deque<std::function<void()>>> queues_;
  QueueId next_queue_id_ = 1;
  QueueId rr_next_ = 0;  // round-robin cursor: next queue id to serve
  size_t queued_ = 0;    // total tasks across all queues
  mutable std::mutex mu_;
  std::condition_variable cv_;        // wakes workers
  std::condition_variable idle_cv_;   // wakes Wait()
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace sac

#endif  // SAC_COMMON_THREAD_POOL_H_
