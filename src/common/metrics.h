// Runtime metrics: shuffle traffic, record counts, and stage timings.
// Benchmarks report these next to wall time so the causal story behind a
// speedup (e.g. "SUMMA shuffles 8x fewer bytes") is auditable.
//
// Two layers:
//  * Metrics       -- engine-wide cumulative totals.
//  * StageRegistry -- one StageStats per plan stage (= per DISC operator
//    invocation, keyed by the dataset node's label). Every stage-level
//    increment forwards to the totals, so the registry is a strict
//    refinement of Metrics: summing any counter over all stages
//    reproduces the engine-wide value. Exception: the kernel-layer
//    counters (flops_* and tile_allocs) are metered engine-wide from the
//    planner's run closures, which execute outside any single stage's
//    scope, so their per-stage values stay zero.
//
// Concurrency: Metrics is sharded. Writers land on a per-thread shard
// (cache-line padded, relaxed atomics within the shard since several
// threads may hash to one), so the per-record hot path never contends on
// a shared cache line. Readers fold the shards: Snapshot() and the
// counter getters sum across shards, which is exact only when no writer
// is concurrently mid-increment -- the same "not during a query" contract
// Reset() always had. Shuffle byte counters distinguish three views:
// shuffle_bytes (serialized bytes that crossed partitions),
// cross_executor_bytes (the subset that crossed executors) and
// local_shuffle_bytes (bytes routed executor-locally by the zero-copy
// fast path, metered via Value::SerializedSize so fast-path and
// forced-serialize runs account identically; see DESIGN.md section 8).
#ifndef SAC_COMMON_METRICS_H_
#define SAC_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/trace.h"

namespace sac {

/// Every MetricsSnapshot counter, in declaration order. Single source of
/// truth for serialized counter names: bench report JSON, profile.json,
/// and the docs glossary drift check (scripts/check_metrics_glossary.sh)
/// all key off these strings. Extend this when adding a field.
#define SAC_METRICS_FOR_EACH_COUNTER(X) \
  X(shuffle_bytes)                      \
  X(shuffle_records)                    \
  X(cross_executor_bytes)               \
  X(local_shuffle_bytes)                \
  X(tasks_run)                          \
  X(tasks_recomputed)                   \
  X(records_processed)                  \
  X(tasks_retried)                      \
  X(retry_wait_us)                      \
  X(faults_injected)                    \
  X(checkpoint_bytes)                   \
  X(checkpoint_restore_bytes)           \
  X(evictions)                          \
  X(bytes_evicted)                      \
  X(bytes_reloaded)                     \
  X(reload_recomputes)                  \
  X(peak_resident_bytes)                \
  X(flops_generic)                      \
  X(flops_packed)                       \
  X(flops_jvmlike)                      \
  X(tile_allocs)                        \
  X(queries_admitted)                   \
  X(queries_queued)                     \
  X(plan_cache_hits)                    \
  X(plan_cache_misses)                  \
  X(plan_cache_evictions)               \
  X(dist_bytes_sent)                    \
  X(dist_bytes_received)                \
  X(workers_lost)                       \
  X(partitions_reexecuted)

/// Plain, copyable view of the counters, folded once across shards --
/// use this instead of reading individual getters non-atomically mid-run.
struct MetricsSnapshot {
  uint64_t shuffle_bytes = 0;
  uint64_t shuffle_records = 0;
  uint64_t cross_executor_bytes = 0;
  uint64_t local_shuffle_bytes = 0;
  uint64_t tasks_run = 0;
  uint64_t tasks_recomputed = 0;
  uint64_t records_processed = 0;
  // Recovery subsystem (docs/FAULT_MODEL.md): attempts beyond the first,
  // time slept in backoff before them, faults the FaultPlan injected, and
  // checkpoint spill-file traffic in both directions.
  uint64_t tasks_retried = 0;
  uint64_t retry_wait_us = 0;
  uint64_t faults_injected = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t checkpoint_restore_bytes = 0;
  // Memory subsystem (docs/MEMORY_MODEL.md): partitions pushed out to
  // spill files by budget pressure, bytes written out / read back by
  // eviction+reload, reloads that had to fall back to lineage
  // recomputation (unreadable spill), and the high-water mark of
  // resident partition bytes (engine-wide gauge, not per-stage).
  uint64_t evictions = 0;
  uint64_t bytes_evicted = 0;
  uint64_t bytes_reloaded = 0;
  uint64_t reload_recomputes = 0;
  uint64_t peak_resident_bytes = 0;
  // Kernel layer (docs/KERNELS.md): floating-point operations credited to
  // each kernel backend by the tile kernels the planner dispatched, and
  // output/temporary tiles allocated by elementwise plan stages (the
  // counter the fusion gate in bench_abl_backend watches).
  uint64_t flops_generic = 0;
  uint64_t flops_packed = 0;
  uint64_t flops_jvmlike = 0;
  uint64_t tile_allocs = 0;
  // Query service (docs/SERVICE.md): queries granted an admission ticket,
  // queries that had to wait for one (max_concurrent_queries reached),
  // and compiled-plan cache traffic (a hit skips parse->rewrite->plan).
  uint64_t queries_admitted = 0;
  uint64_t queries_queued = 0;
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_cache_evictions = 0;
  // Distributed runtime (docs/DISTRIBUTED.md): framed wire bytes in each
  // direction between the driver and its workers (headers included),
  // workers declared dead by the coordinator, and map-side partitions
  // re-executed from lineage because their buckets died with a worker.
  uint64_t dist_bytes_sent = 0;
  uint64_t dist_bytes_received = 0;
  uint64_t workers_lost = 0;
  uint64_t partitions_reexecuted = 0;

  /// Invokes fn(name, value) for every counter, in declaration order
  /// (names from SAC_METRICS_FOR_EACH_COUNTER). The mutable overload
  /// passes the field by reference -- used by the profile JSON parser.
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
#define SAC_METRICS_APPLY(name) fn(#name, name);
    SAC_METRICS_FOR_EACH_COUNTER(SAC_METRICS_APPLY)
#undef SAC_METRICS_APPLY
  }
  template <typename Fn>
  void ForEachCounter(Fn&& fn) {
#define SAC_METRICS_APPLY(name) fn(#name, name);
    SAC_METRICS_FOR_EACH_COUNTER(SAC_METRICS_APPLY)
#undef SAC_METRICS_APPLY
  }

  std::string ToString() const;
};

/// Counters for one engine/session. All counters are cumulative;
/// call Reset() between measured runs (never concurrently with a query --
/// Engine::ResetStats enforces this with an in-flight check).
class Metrics {
 public:
  void Reset() {
    for (Shard& s : shards_) {
      s.shuffle_bytes = 0;
      s.shuffle_records = 0;
      s.cross_executor_bytes = 0;
      s.local_shuffle_bytes = 0;
      s.tasks_run = 0;
      s.tasks_recomputed = 0;
      s.records_processed = 0;
      s.tasks_retried = 0;
      s.retry_wait_us = 0;
      s.faults_injected = 0;
      s.checkpoint_bytes = 0;
      s.checkpoint_restore_bytes = 0;
      s.evictions = 0;
      s.bytes_evicted = 0;
      s.bytes_reloaded = 0;
      s.reload_recomputes = 0;
      s.flops_generic = 0;
      s.flops_packed = 0;
      s.flops_jvmlike = 0;
      s.tile_allocs = 0;
      s.queries_admitted = 0;
      s.queries_queued = 0;
      s.plan_cache_hits = 0;
      s.plan_cache_misses = 0;
      s.plan_cache_evictions = 0;
      s.dist_bytes_sent = 0;
      s.dist_bytes_received = 0;
      s.workers_lost = 0;
      s.partitions_reexecuted = 0;
    }
    peak_resident_bytes_.store(0, std::memory_order_relaxed);
  }

  void AddShuffle(uint64_t bytes, uint64_t records, bool cross_executor) {
    Shard& s = Local();
    Bump(s.shuffle_bytes, bytes);
    Bump(s.shuffle_records, records);
    if (cross_executor) Bump(s.cross_executor_bytes, bytes);
  }
  /// Bytes moved by the executor-local zero-copy path (no serialization;
  /// volume computed via Value::SerializedSize).
  void AddLocalShuffle(uint64_t bytes) {
    Bump(Local().local_shuffle_bytes, bytes);
  }
  void AddTask() { Bump(Local().tasks_run, 1); }
  void AddRecompute() { Bump(Local().tasks_recomputed, 1); }
  void AddRecords(uint64_t n) { Bump(Local().records_processed, n); }
  /// One extra attempt of a task, after sleeping `wait_us` of backoff.
  void AddRetry(uint64_t wait_us) {
    Shard& s = Local();
    Bump(s.tasks_retried, 1);
    Bump(s.retry_wait_us, wait_us);
  }
  void AddFault() { Bump(Local().faults_injected, 1); }
  void AddCheckpointWrite(uint64_t bytes) {
    Bump(Local().checkpoint_bytes, bytes);
  }
  void AddCheckpointRestore(uint64_t bytes) {
    Bump(Local().checkpoint_restore_bytes, bytes);
  }
  /// One partition evicted to a spill file under budget pressure.
  void AddEviction(uint64_t bytes) {
    Shard& s = Local();
    Bump(s.evictions, 1);
    Bump(s.bytes_evicted, bytes);
  }
  /// One evicted partition reloaded from its spill file.
  void AddReload(uint64_t bytes) { Bump(Local().bytes_reloaded, bytes); }
  /// One reload whose spill file was unreadable, forcing recomputation.
  void AddReloadRecompute() { Bump(Local().reload_recomputes, 1); }
  /// Flops executed by the named kernel backend (docs/KERNELS.md).
  void AddFlopsGeneric(uint64_t flops) { Bump(Local().flops_generic, flops); }
  void AddFlopsPacked(uint64_t flops) { Bump(Local().flops_packed, flops); }
  void AddFlopsJvmlike(uint64_t flops) { Bump(Local().flops_jvmlike, flops); }
  /// One tile (output or temporary) allocated by an elementwise stage.
  void AddTileAllocs(uint64_t n) { Bump(Local().tile_allocs, n); }
  /// One query granted an admission ticket; `queued` marks whether it had
  /// to wait for a slot first (docs/SERVICE.md).
  void AddQueryAdmitted(bool queued) {
    Shard& s = Local();
    Bump(s.queries_admitted, 1);
    if (queued) Bump(s.queries_queued, 1);
  }
  /// Plan-cache traffic: a hit serves a compiled plan without
  /// parse->rewrite->plan; evictions count entries displaced by capacity.
  void AddPlanCacheHit() { Bump(Local().plan_cache_hits, 1); }
  void AddPlanCacheMiss() { Bump(Local().plan_cache_misses, 1); }
  void AddPlanCacheEvictions(uint64_t n) {
    Bump(Local().plan_cache_evictions, n);
  }
  /// Framed wire bytes sent to / received from workers (dist transport).
  void AddDistSent(uint64_t bytes) { Bump(Local().dist_bytes_sent, bytes); }
  void AddDistReceived(uint64_t bytes) {
    Bump(Local().dist_bytes_received, bytes);
  }
  /// One worker declared dead by the coordinator.
  void AddWorkerLost() { Bump(Local().workers_lost, 1); }
  /// One map-side partition re-executed from lineage to rebuild buckets
  /// lost with a dead worker.
  void AddReexecutedPartition() {
    Bump(Local().partitions_reexecuted, 1);
  }
  /// Monotone max-update of the resident-partition-bytes high-water mark.
  void UpdatePeakResident(uint64_t resident_bytes) {
    uint64_t prev = peak_resident_bytes_.load(std::memory_order_relaxed);
    while (prev < resident_bytes &&
           !peak_resident_bytes_.compare_exchange_weak(
               prev, resident_bytes, std::memory_order_relaxed)) {
    }
  }

  uint64_t shuffle_bytes() const { return Fold(&Shard::shuffle_bytes); }
  uint64_t shuffle_records() const { return Fold(&Shard::shuffle_records); }
  uint64_t cross_executor_bytes() const {
    return Fold(&Shard::cross_executor_bytes);
  }
  uint64_t local_shuffle_bytes() const {
    return Fold(&Shard::local_shuffle_bytes);
  }
  uint64_t tasks_run() const { return Fold(&Shard::tasks_run); }
  uint64_t tasks_recomputed() const { return Fold(&Shard::tasks_recomputed); }
  uint64_t records_processed() const {
    return Fold(&Shard::records_processed);
  }
  uint64_t tasks_retried() const { return Fold(&Shard::tasks_retried); }
  uint64_t retry_wait_us() const { return Fold(&Shard::retry_wait_us); }
  uint64_t faults_injected() const { return Fold(&Shard::faults_injected); }
  uint64_t checkpoint_bytes() const { return Fold(&Shard::checkpoint_bytes); }
  uint64_t checkpoint_restore_bytes() const {
    return Fold(&Shard::checkpoint_restore_bytes);
  }
  uint64_t evictions() const { return Fold(&Shard::evictions); }
  uint64_t bytes_evicted() const { return Fold(&Shard::bytes_evicted); }
  uint64_t bytes_reloaded() const { return Fold(&Shard::bytes_reloaded); }
  uint64_t reload_recomputes() const {
    return Fold(&Shard::reload_recomputes);
  }
  uint64_t peak_resident_bytes() const {
    return peak_resident_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t flops_generic() const { return Fold(&Shard::flops_generic); }
  uint64_t flops_packed() const { return Fold(&Shard::flops_packed); }
  uint64_t flops_jvmlike() const { return Fold(&Shard::flops_jvmlike); }
  uint64_t tile_allocs() const { return Fold(&Shard::tile_allocs); }
  uint64_t queries_admitted() const {
    return Fold(&Shard::queries_admitted);
  }
  uint64_t queries_queued() const { return Fold(&Shard::queries_queued); }
  uint64_t plan_cache_hits() const { return Fold(&Shard::plan_cache_hits); }
  uint64_t plan_cache_misses() const {
    return Fold(&Shard::plan_cache_misses);
  }
  uint64_t plan_cache_evictions() const {
    return Fold(&Shard::plan_cache_evictions);
  }
  uint64_t dist_bytes_sent() const { return Fold(&Shard::dist_bytes_sent); }
  uint64_t dist_bytes_received() const {
    return Fold(&Shard::dist_bytes_received);
  }
  uint64_t workers_lost() const { return Fold(&Shard::workers_lost); }
  uint64_t partitions_reexecuted() const {
    return Fold(&Shard::partitions_reexecuted);
  }

  MetricsSnapshot Snapshot() const;
  std::string ToString() const;

 private:
  // Power of two so the thread->shard map is a mask, sized to cover
  // typical pool widths without making StageStats objects huge.
  static constexpr size_t kShards = 16;

  struct alignas(64) Shard {
    std::atomic<uint64_t> shuffle_bytes{0};
    std::atomic<uint64_t> shuffle_records{0};
    std::atomic<uint64_t> cross_executor_bytes{0};
    std::atomic<uint64_t> local_shuffle_bytes{0};
    std::atomic<uint64_t> tasks_run{0};
    std::atomic<uint64_t> tasks_recomputed{0};
    std::atomic<uint64_t> records_processed{0};
    std::atomic<uint64_t> tasks_retried{0};
    std::atomic<uint64_t> retry_wait_us{0};
    std::atomic<uint64_t> faults_injected{0};
    std::atomic<uint64_t> checkpoint_bytes{0};
    std::atomic<uint64_t> checkpoint_restore_bytes{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> bytes_evicted{0};
    std::atomic<uint64_t> bytes_reloaded{0};
    std::atomic<uint64_t> reload_recomputes{0};
    std::atomic<uint64_t> flops_generic{0};
    std::atomic<uint64_t> flops_packed{0};
    std::atomic<uint64_t> flops_jvmlike{0};
    std::atomic<uint64_t> tile_allocs{0};
    std::atomic<uint64_t> queries_admitted{0};
    std::atomic<uint64_t> queries_queued{0};
    std::atomic<uint64_t> plan_cache_hits{0};
    std::atomic<uint64_t> plan_cache_misses{0};
    std::atomic<uint64_t> plan_cache_evictions{0};
    std::atomic<uint64_t> dist_bytes_sent{0};
    std::atomic<uint64_t> dist_bytes_received{0};
    std::atomic<uint64_t> workers_lost{0};
    std::atomic<uint64_t> partitions_reexecuted{0};
  };

  static void Bump(std::atomic<uint64_t>& c, uint64_t v) {
    c.fetch_add(v, std::memory_order_relaxed);
  }

  /// Shard owned by the calling thread (threads may share a shard; the
  /// relaxed atomics keep sharing correct, just slower).
  Shard& Local();

  uint64_t Fold(std::atomic<uint64_t> Shard::* counter) const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += (s.*counter).load(std::memory_order_relaxed);
    }
    return total;
  }

  Shard shards_[kShards];
  // Gauge high-water mark, not a sharded counter: a max cannot be folded
  // by summation, so it lives outside the shards (writes are rare --
  // once per publish/reload, not per record).
  std::atomic<uint64_t> peak_resident_bytes_{0};
};

/// Copyable per-stage view (see StageStats).
struct StageStatsSnapshot {
  int id = -1;
  std::string label;
  std::string kind;  // "source" | "narrow" | "shuffle" | "coshuffle" | ...
  MetricsSnapshot counters;
  double wall_ms = 0;
  trace::HistogramSnapshot task_us;  // per-task duration histogram

  std::string ToString() const;
};

/// Counters for one plan stage. Every Add* forwards to the engine-wide
/// totals so the global Metrics stays the roll-up of all stages. When
/// the stage belongs to a session (docs/SERVICE.md), a second sink
/// receives the same increments, giving per-session attribution without
/// touching any metering call site.
class StageStats {
 public:
  StageStats(int id, std::string label, std::string kind, Metrics* totals,
             Metrics* session = nullptr)
      : id_(id), label_(std::move(label)), kind_(std::move(kind)),
        totals_(totals), session_(session) {}

  StageStats(const StageStats&) = delete;
  StageStats& operator=(const StageStats&) = delete;

  int id() const { return id_; }
  const std::string& label() const { return label_; }
  const std::string& kind() const { return kind_; }
  const Metrics& counters() const { return local_; }

  void AddShuffle(uint64_t bytes, uint64_t records, bool cross_executor) {
    local_.AddShuffle(bytes, records, cross_executor);
    if (totals_) totals_->AddShuffle(bytes, records, cross_executor);
    if (session_) session_->AddShuffle(bytes, records, cross_executor);
  }
  void AddLocalShuffle(uint64_t bytes) {
    local_.AddLocalShuffle(bytes);
    if (totals_) totals_->AddLocalShuffle(bytes);
    if (session_) session_->AddLocalShuffle(bytes);
  }
  void AddTask() {
    local_.AddTask();
    if (totals_) totals_->AddTask();
    if (session_) session_->AddTask();
  }
  void AddRecompute() {
    local_.AddRecompute();
    if (totals_) totals_->AddRecompute();
    if (session_) session_->AddRecompute();
  }
  void AddRecords(uint64_t n) {
    local_.AddRecords(n);
    if (totals_) totals_->AddRecords(n);
    if (session_) session_->AddRecords(n);
  }
  void AddRetry(uint64_t wait_us) {
    local_.AddRetry(wait_us);
    if (totals_) totals_->AddRetry(wait_us);
    if (session_) session_->AddRetry(wait_us);
  }
  void AddFault() {
    local_.AddFault();
    if (totals_) totals_->AddFault();
    if (session_) session_->AddFault();
  }
  void AddCheckpointWrite(uint64_t bytes) {
    local_.AddCheckpointWrite(bytes);
    if (totals_) totals_->AddCheckpointWrite(bytes);
    if (session_) session_->AddCheckpointWrite(bytes);
  }
  void AddCheckpointRestore(uint64_t bytes) {
    local_.AddCheckpointRestore(bytes);
    if (totals_) totals_->AddCheckpointRestore(bytes);
    if (session_) session_->AddCheckpointRestore(bytes);
  }
  void AddEviction(uint64_t bytes) {
    local_.AddEviction(bytes);
    if (totals_) totals_->AddEviction(bytes);
    if (session_) session_->AddEviction(bytes);
  }
  void AddReload(uint64_t bytes) {
    local_.AddReload(bytes);
    if (totals_) totals_->AddReload(bytes);
    if (session_) session_->AddReload(bytes);
  }
  void AddReloadRecompute() {
    local_.AddReloadRecompute();
    if (totals_) totals_->AddReloadRecompute();
    if (session_) session_->AddReloadRecompute();
  }
  void AddFlopsGeneric(uint64_t flops) {
    local_.AddFlopsGeneric(flops);
    if (totals_) totals_->AddFlopsGeneric(flops);
    if (session_) session_->AddFlopsGeneric(flops);
  }
  void AddFlopsPacked(uint64_t flops) {
    local_.AddFlopsPacked(flops);
    if (totals_) totals_->AddFlopsPacked(flops);
    if (session_) session_->AddFlopsPacked(flops);
  }
  void AddFlopsJvmlike(uint64_t flops) {
    local_.AddFlopsJvmlike(flops);
    if (totals_) totals_->AddFlopsJvmlike(flops);
    if (session_) session_->AddFlopsJvmlike(flops);
  }
  void AddTileAllocs(uint64_t n) {
    local_.AddTileAllocs(n);
    if (totals_) totals_->AddTileAllocs(n);
    if (session_) session_->AddTileAllocs(n);
  }
  void AddDistSent(uint64_t bytes) {
    local_.AddDistSent(bytes);
    if (totals_) totals_->AddDistSent(bytes);
    if (session_) session_->AddDistSent(bytes);
  }
  void AddDistReceived(uint64_t bytes) {
    local_.AddDistReceived(bytes);
    if (totals_) totals_->AddDistReceived(bytes);
    if (session_) session_->AddDistReceived(bytes);
  }
  void AddReexecutedPartition() {
    local_.AddReexecutedPartition();
    if (totals_) totals_->AddReexecutedPartition();
    if (session_) session_->AddReexecutedPartition();
  }
  void RecordTaskMicros(uint64_t us) { task_us_.Record(us); }
  void AddWallMicros(uint64_t us) {
    wall_us_.fetch_add(us, std::memory_order_relaxed);
  }

  StageStatsSnapshot Snapshot() const;

 private:
  const int id_;
  const std::string label_;
  const std::string kind_;
  Metrics local_;
  Metrics* totals_;
  Metrics* session_;
  trace::Histogram task_us_;
  std::atomic<uint64_t> wall_us_{0};
};

/// Reference to a stage that stays valid across StageRegistry::Reset():
/// the generation tag makes stale references resolve to nullptr instead
/// of aliasing a new stage.
struct StageRef {
  uint64_t gen = 0;
  int id = -1;
};

/// Owns the per-stage stats of one engine. Stage objects have stable
/// addresses until Reset(); Reset() must not race with query execution
/// (same contract as Metrics::Reset()).
class StageRegistry {
 public:
  explicit StageRegistry(Metrics* totals) : totals_(totals) {}

  /// Creates a stage and returns a generation-tagged reference to it.
  /// When `session` is non-null the stage's counters additionally
  /// forward to that per-session Metrics sink (docs/SERVICE.md); the
  /// caller must keep the sink alive until the registry is Reset().
  StageRef NewStage(const std::string& label, const std::string& kind,
                    Metrics* session = nullptr);

  /// Resolves a reference; nullptr when the ref predates the last
  /// Reset() (or was never assigned).
  StageStats* Get(const StageRef& ref);

  /// Current generation tag (bumped by Reset()); a StageRef with this gen
  /// must resolve via Get() -- the invariant Engine::VerifyLineage checks.
  uint64_t generation() const {
    std::lock_guard<std::mutex> lock(mu_);
    return gen_;
  }

  std::vector<StageStatsSnapshot> Snapshot() const;

  /// Drops all stages (totals are reset separately).
  void Reset();

  size_t size() const;

  /// Human-readable table, one row per stage.
  std::string ReportString() const;

 private:
  mutable std::mutex mu_;
  uint64_t gen_ = 1;
  std::deque<StageStats> stages_;  // deque: stable addresses on growth
  Metrics* totals_;
};

/// Wall-clock stopwatch in milliseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void Restart() { start_ = Clock::now(); }
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sac

#endif  // SAC_COMMON_METRICS_H_
