// Runtime metrics: shuffle traffic, record counts, and stage timings.
// Benchmarks report these next to wall time so the causal story behind a
// speedup (e.g. "SUMMA shuffles 8x fewer bytes") is auditable.
//
// Two layers:
//  * Metrics       -- engine-wide cumulative totals (atomics).
//  * StageRegistry -- one StageStats per plan stage (= per DISC operator
//    invocation, keyed by the dataset node's label). Every stage-level
//    increment forwards to the totals, so the registry is a strict
//    refinement of Metrics: summing any counter over all stages
//    reproduces the engine-wide value.
#ifndef SAC_COMMON_METRICS_H_
#define SAC_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/trace.h"

namespace sac {

/// Plain, copyable view of the counters, read once each -- use this
/// instead of reading the six atomics non-atomically mid-run.
struct MetricsSnapshot {
  uint64_t shuffle_bytes = 0;
  uint64_t shuffle_records = 0;
  uint64_t cross_executor_bytes = 0;
  uint64_t tasks_run = 0;
  uint64_t tasks_recomputed = 0;
  uint64_t records_processed = 0;

  std::string ToString() const;
};

/// Counters for one engine/session. All counters are cumulative;
/// call Reset() between measured runs (never concurrently with a query).
class Metrics {
 public:
  void Reset() {
    shuffle_bytes_ = 0;
    shuffle_records_ = 0;
    cross_executor_bytes_ = 0;
    tasks_run_ = 0;
    tasks_recomputed_ = 0;
    records_processed_ = 0;
  }

  void AddShuffle(uint64_t bytes, uint64_t records, bool cross_executor) {
    shuffle_bytes_ += bytes;
    shuffle_records_ += records;
    if (cross_executor) cross_executor_bytes_ += bytes;
  }
  void AddTask() { ++tasks_run_; }
  void AddRecompute() { ++tasks_recomputed_; }
  void AddRecords(uint64_t n) { records_processed_ += n; }

  uint64_t shuffle_bytes() const { return shuffle_bytes_; }
  uint64_t shuffle_records() const { return shuffle_records_; }
  uint64_t cross_executor_bytes() const { return cross_executor_bytes_; }
  uint64_t tasks_run() const { return tasks_run_; }
  uint64_t tasks_recomputed() const { return tasks_recomputed_; }
  uint64_t records_processed() const { return records_processed_; }

  MetricsSnapshot Snapshot() const;
  std::string ToString() const;

 private:
  std::atomic<uint64_t> shuffle_bytes_{0};
  std::atomic<uint64_t> shuffle_records_{0};
  std::atomic<uint64_t> cross_executor_bytes_{0};
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> tasks_recomputed_{0};
  std::atomic<uint64_t> records_processed_{0};
};

/// Copyable per-stage view (see StageStats).
struct StageStatsSnapshot {
  int id = -1;
  std::string label;
  std::string kind;  // "source" | "narrow" | "shuffle" | "coshuffle" | ...
  MetricsSnapshot counters;
  double wall_ms = 0;
  trace::HistogramSnapshot task_us;  // per-task duration histogram

  std::string ToString() const;
};

/// Counters for one plan stage. Every Add* forwards to the engine-wide
/// totals so the global Metrics stays the roll-up of all stages.
class StageStats {
 public:
  StageStats(int id, std::string label, std::string kind, Metrics* totals)
      : id_(id), label_(std::move(label)), kind_(std::move(kind)),
        totals_(totals) {}

  StageStats(const StageStats&) = delete;
  StageStats& operator=(const StageStats&) = delete;

  int id() const { return id_; }
  const std::string& label() const { return label_; }
  const std::string& kind() const { return kind_; }
  const Metrics& counters() const { return local_; }

  void AddShuffle(uint64_t bytes, uint64_t records, bool cross_executor) {
    local_.AddShuffle(bytes, records, cross_executor);
    if (totals_) totals_->AddShuffle(bytes, records, cross_executor);
  }
  void AddTask() {
    local_.AddTask();
    if (totals_) totals_->AddTask();
  }
  void AddRecompute() {
    local_.AddRecompute();
    if (totals_) totals_->AddRecompute();
  }
  void AddRecords(uint64_t n) {
    local_.AddRecords(n);
    if (totals_) totals_->AddRecords(n);
  }
  void RecordTaskMicros(uint64_t us) { task_us_.Record(us); }
  void AddWallMicros(uint64_t us) {
    wall_us_.fetch_add(us, std::memory_order_relaxed);
  }

  StageStatsSnapshot Snapshot() const;

 private:
  const int id_;
  const std::string label_;
  const std::string kind_;
  Metrics local_;
  Metrics* totals_;
  trace::Histogram task_us_;
  std::atomic<uint64_t> wall_us_{0};
};

/// Reference to a stage that stays valid across StageRegistry::Reset():
/// the generation tag makes stale references resolve to nullptr instead
/// of aliasing a new stage.
struct StageRef {
  uint64_t gen = 0;
  int id = -1;
};

/// Owns the per-stage stats of one engine. Stage objects have stable
/// addresses until Reset(); Reset() must not race with query execution
/// (same contract as Metrics::Reset()).
class StageRegistry {
 public:
  explicit StageRegistry(Metrics* totals) : totals_(totals) {}

  /// Creates a stage and returns a generation-tagged reference to it.
  StageRef NewStage(const std::string& label, const std::string& kind);

  /// Resolves a reference; nullptr when the ref predates the last
  /// Reset() (or was never assigned).
  StageStats* Get(const StageRef& ref);

  /// Current generation tag (bumped by Reset()); a StageRef with this gen
  /// must resolve via Get() -- the invariant Engine::VerifyLineage checks.
  uint64_t generation() const {
    std::lock_guard<std::mutex> lock(mu_);
    return gen_;
  }

  std::vector<StageStatsSnapshot> Snapshot() const;

  /// Drops all stages (totals are reset separately).
  void Reset();

  size_t size() const;

  /// Human-readable table, one row per stage.
  std::string ReportString() const;

 private:
  mutable std::mutex mu_;
  uint64_t gen_ = 1;
  std::deque<StageStats> stages_;  // deque: stable addresses on growth
  Metrics* totals_;
};

/// Wall-clock stopwatch in milliseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void Restart() { start_ = Clock::now(); }
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sac

#endif  // SAC_COMMON_METRICS_H_
