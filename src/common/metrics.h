// Runtime metrics: shuffle traffic, record counts, and stage timings.
// Benchmarks report these next to wall time so the causal story behind a
// speedup (e.g. "SUMMA shuffles 8x fewer bytes") is auditable.
#ifndef SAC_COMMON_METRICS_H_
#define SAC_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace sac {

/// Counters for one engine/session. All counters are cumulative;
/// call Reset() between measured runs.
class Metrics {
 public:
  void Reset() {
    shuffle_bytes_ = 0;
    shuffle_records_ = 0;
    cross_executor_bytes_ = 0;
    tasks_run_ = 0;
    tasks_recomputed_ = 0;
    records_processed_ = 0;
  }

  void AddShuffle(uint64_t bytes, uint64_t records, bool cross_executor) {
    shuffle_bytes_ += bytes;
    shuffle_records_ += records;
    if (cross_executor) cross_executor_bytes_ += bytes;
  }
  void AddTask() { ++tasks_run_; }
  void AddRecompute() { ++tasks_recomputed_; }
  void AddRecords(uint64_t n) { records_processed_ += n; }

  uint64_t shuffle_bytes() const { return shuffle_bytes_; }
  uint64_t shuffle_records() const { return shuffle_records_; }
  uint64_t cross_executor_bytes() const { return cross_executor_bytes_; }
  uint64_t tasks_run() const { return tasks_run_; }
  uint64_t tasks_recomputed() const { return tasks_recomputed_; }
  uint64_t records_processed() const { return records_processed_; }

  std::string ToString() const;

 private:
  std::atomic<uint64_t> shuffle_bytes_{0};
  std::atomic<uint64_t> shuffle_records_{0};
  std::atomic<uint64_t> cross_executor_bytes_{0};
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> tasks_recomputed_{0};
  std::atomic<uint64_t> records_processed_{0};
};

/// Wall-clock stopwatch in milliseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void Restart() { start_ = Clock::now(); }
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sac

#endif  // SAC_COMMON_METRICS_H_
