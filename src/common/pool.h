// Reusable-vector pools for the shuffle hot path. Steady-state iterative
// workloads (e.g. the fig4c factorization loop) run the same shuffle
// shape hundreds of times; without pooling, every map-side task allocates
// fresh per-destination byte buffers and scratch row vectors, then frees
// them at the end of the stage -- pure allocator churn. A VectorPool keeps
// the freed vectors (capacity intact) on a freelist so the next stage's
// checkouts are recycled allocations.
//
// Checkouts are RAII (PooledVec): the vector returns to the pool when the
// handle dies, including on error paths, so a failed task cannot leak
// pool capacity. Thread safety: Acquire/Release take one uncontended
// mutex; pool-side bookkeeping is never on the per-record path.
#ifndef SAC_COMMON_POOL_H_
#define SAC_COMMON_POOL_H_

#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace sac {

/// Pool of std::vector<T> buffers. Released vectors are cleared (size 0)
/// but keep their heap capacity; Acquire() pops one from the freelist or
/// default-constructs. The freelist is capped so a one-off wide stage
/// cannot pin unbounded memory.
template <typename T>
class VectorPool {
 public:
  explicit VectorPool(size_t max_free = 256) : max_free_(max_free) {}

  VectorPool(const VectorPool&) = delete;
  VectorPool& operator=(const VectorPool&) = delete;

  std::vector<T> Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    ++acquires_;
    ++outstanding_;
    if (free_.empty()) return {};
    ++reuses_;
    std::vector<T> v = std::move(free_.back());
    free_.pop_back();
    free_bytes_ -= v.capacity() * sizeof(T);
    return v;
  }

  /// Returns a vector to the pool. Contents are destroyed; capacity is
  /// kept unless the freelist is full.
  void Release(std::vector<T> v) {
    v.clear();
    std::lock_guard<std::mutex> lock(mu_);
    if (outstanding_ > 0) --outstanding_;
    if (free_.size() < max_free_) {
      free_bytes_ += v.capacity() * sizeof(T);
      free_.push_back(std::move(v));
    }
  }

  // ---- introspection (tests / reports) --------------------------------
  /// Total Acquire() calls.
  size_t acquires() const { return Locked(acquires_); }
  /// Acquires served from the freelist (i.e. recycled allocations).
  size_t reuses() const { return Locked(reuses_); }
  /// Checkouts not yet returned; 0 when no task is in flight.
  size_t outstanding() const { return Locked(outstanding_); }
  /// Vectors currently parked on the freelist.
  size_t free_count() const { return Locked(free_.size()); }
  /// Heap bytes pinned by the freelist (sum of parked capacities). The
  /// memory budget counts these as reclaimable: BlockStore trims pools
  /// before evicting partitions (docs/MEMORY_MODEL.md).
  size_t free_bytes() const { return Locked(free_bytes_); }

  /// Drops the freelist and zeroes the stats (not the outstanding count:
  /// live checkouts still return here afterwards).
  void Trim() {
    std::lock_guard<std::mutex> lock(mu_);
    free_.clear();
    free_bytes_ = 0;
    acquires_ = 0;
    reuses_ = 0;
  }

 private:
  template <typename V>
  size_t Locked(const V& v) const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<size_t>(v);
  }

  mutable std::mutex mu_;
  const size_t max_free_;
  std::vector<std::vector<T>> free_;
  size_t acquires_ = 0;
  size_t reuses_ = 0;
  size_t outstanding_ = 0;
  size_t free_bytes_ = 0;
};

/// RAII checkout of a pooled vector. Movable, not copyable; the wrapped
/// vector is returned to its pool on destruction (error paths included).
/// A default-constructed or moved-from handle owns nothing.
template <typename T>
class PooledVec {
 public:
  PooledVec() = default;
  PooledVec(VectorPool<T>* pool, std::vector<T> v)
      : pool_(pool), v_(std::move(v)) {}
  ~PooledVec() {
    if (pool_) pool_->Release(std::move(v_));
  }

  PooledVec(PooledVec&& o) noexcept : pool_(o.pool_), v_(std::move(o.v_)) {
    o.pool_ = nullptr;
  }
  PooledVec& operator=(PooledVec&& o) noexcept {
    if (this != &o) {
      if (pool_) pool_->Release(std::move(v_));
      pool_ = o.pool_;
      v_ = std::move(o.v_);
      o.pool_ = nullptr;
    }
    return *this;
  }
  PooledVec(const PooledVec&) = delete;
  PooledVec& operator=(const PooledVec&) = delete;

  /// True iff this handle holds a live checkout (shuffle buckets use this
  /// to tell a routed-local bucket from an untouched default handle).
  explicit operator bool() const { return pool_ != nullptr; }

  std::vector<T>& operator*() { return v_; }
  const std::vector<T>& operator*() const { return v_; }
  std::vector<T>* operator->() { return &v_; }
  const std::vector<T>* operator->() const { return &v_; }
  std::vector<T>& get() { return v_; }
  const std::vector<T>& get() const { return v_; }

 private:
  VectorPool<T>* pool_ = nullptr;
  std::vector<T> v_;
};

/// Acquires from `pool` as an RAII handle (nullptr pool => plain vector
/// that is simply destroyed, so call sites need no branching).
template <typename T>
PooledVec<T> AcquirePooled(VectorPool<T>* pool) {
  if (!pool) return PooledVec<T>(nullptr, {});
  return PooledVec<T>(pool, pool->Acquire());
}

}  // namespace sac

#endif  // SAC_COMMON_POOL_H_
