// Status and Result<T>: exception-free error propagation in the style of
// Apache Arrow / RocksDB. Every fallible public API in this project returns
// either a Status (no payload) or a Result<T> (payload or error).
#ifndef SAC_COMMON_STATUS_H_
#define SAC_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace sac {

enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,   // caller passed something malformed
  kParseError = 2,        // comprehension source text is not well-formed
  kTypeError = 3,         // scope/type analysis rejected the program
  kPlanError = 4,         // no translation rule applies / planner bug guard
  kRuntimeError = 5,      // failure while executing a physical plan
  kNotImplemented = 6,    // feature documented as future work
  kIoError = 7,           // (de)serialization failure
  kCancelled = 8,         // task killed by fault injection
  kDataLoss = 9,          // stored bytes unreadable (truncated/corrupt spill)
  kUnavailable = 10,      // remote peer unreachable / worker lost
};

/// Human-readable name of a StatusCode ("OK", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// An immutable (ok | code+message) pair. Cheap to copy when OK.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ParseError: unexpected token ']' at 3:14" or "OK".
  std::string ToString() const;

  /// Prefix the message with more context, keeping the code.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    return Status(code_, context + ": " + message_);
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after
/// arrow::Result. T must be movable.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}                // NOLINT
  Result(Status status) : status_(std::move(status)) {}        // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Accessing the value of a failed Result aborts.
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate an error Status from an expression, Arrow-style.
#define SAC_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::sac::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define SAC_CONCAT_IMPL(x, y) x##y
#define SAC_CONCAT(x, y) SAC_CONCAT_IMPL(x, y)

// Evaluate a Result-returning expression; on error return the Status, on
// success bind the value to `lhs`.
#define SAC_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  auto SAC_CONCAT(_res_, __LINE__) = (rexpr);                    \
  if (!SAC_CONCAT(_res_, __LINE__).ok())                         \
    return SAC_CONCAT(_res_, __LINE__).status();                 \
  lhs = std::move(SAC_CONCAT(_res_, __LINE__)).value()

}  // namespace sac

#endif  // SAC_COMMON_STATUS_H_
