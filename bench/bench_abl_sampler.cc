// Ablation -- runtime sampler overhead: the fig4b-shaped SAC GBJ
// multiply with the engine time-series sampler off (default) vs on at
// the recommended 1 ms interval (docs/PROFILING.md).
//
// The sampler is one background thread writing one counter event per
// tick, so its cost must be noise-level. `--smoke` runs one tiny size
// and fails if the sampled series is more than 3% slower than
// sampler-off (with a small absolute floor so sub-millisecond jitter on
// a fast query cannot trip the gate) -- the CI gate wired into
// scripts/check.sh. Every sampled pass must also actually produce
// counter samples, so the gate cannot pass vacuously with a dead
// sampler thread.
#include "bench/bench_common.h"

#include "src/api/algorithms.h"

int main(int argc, char** argv) {
  using namespace sac;           // NOLINT
  using namespace sac::bench;    // NOLINT

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }

  std::vector<int64_t> sizes;
  const int64_t block = 64;
  const int interval_us = 1000;
  const std::string scale = Scale();
  if (smoke || scale == "tiny") {
    sizes = {192};
  } else if (scale == "full") {
    sizes = {128, 256, 384, 512};
  } else {
    sizes = {128, 256, 384};
  }

  PrintHeader(
      "Ablation: engine time-series sampler off vs on (1 ms interval), "
      "SAC GBJ multiply");
  BenchReporter reporter("abl_sampler", argc, argv);

  uint64_t counter_samples = 0;
  auto measure = [&](int64_t n, bool sampled) {
    runtime::ClusterConfig cfg = BenchCluster();
    cfg.sample_interval_us = sampled ? interval_us : 0;
    // Pin the GBJ plan (the series name promises it); the sampler
    // overhead ratio must not be confounded by a strategy switch.
    planner::PlannerOptions opts;
    opts.auto_strategy = false;
    Sac ctx(cfg, opts);
    auto a = ctx.RandomMatrix(n, n, block, 401, 0.0, 10.0).value();
    auto b = ctx.RandomMatrix(n, n, block, 402, 0.0, 10.0).value();
    Row row = TimeQuery(&ctx, "abl", sampled ? "sampler" : "off", n, n * n,
                        [&] {
                          SAC_BENCH_CHECK(algo::Multiply(&ctx, a, b));
                        });
    if (sampled) {
      for (const trace::SpanRecord& s : ctx.tracer().Snapshot()) {
        if (s.counter) ++counter_samples;
      }
    }
    reporter.CaptureProfile(&ctx, row);
    reporter.CaptureTrace(&ctx);
    return row;
  };

  bool ok = true;
  double off_ms = 0, samp_ms = 0;
  // A 3% bound on a multi-threaded query needs noise shedding: best of
  // three interleaved passes per series, summed over sizes.
  const int passes = 3;
  for (int64_t n : sizes) {
    Row off_row = measure(n, false);
    Row samp_row = measure(n, true);
    for (int p = 1; p < passes; ++p) {
      Row o2 = measure(n, false);
      Row s2 = measure(n, true);
      if (o2.time_ms < off_row.time_ms) off_row = o2;
      if (s2.time_ms < samp_row.time_ms) samp_row = s2;
    }
    reporter.Report(off_row);
    reporter.Report(samp_row);
    off_ms += off_row.time_ms;
    samp_ms += samp_row.time_ms;
  }

  if (counter_samples == 0) {
    std::fprintf(stderr,
                 "FAIL: sampler enabled but produced no counter samples\n");
    ok = false;
  }
  if (smoke) {
    if (samp_ms > 1.03 * off_ms && samp_ms - off_ms > 2.0) {
      std::fprintf(stderr,
                   "FAIL perf-smoke: sampler %.1fms > 1.03 x off %.1fms\n",
                   samp_ms, off_ms);
      ok = false;
    } else {
      std::fprintf(stderr,
                   "perf-smoke ok: sampler %.1fms vs off %.1fms "
                   "(%llu samples)\n",
                   samp_ms, off_ms,
                   static_cast<unsigned long long>(counter_samples));
    }
  }
  return ok ? 0 : 1;
}
