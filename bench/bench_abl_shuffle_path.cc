// Ablation -- shuffle routing path: executor-local zero-copy fast path
// vs the old serialize-everything path, on the fig4b-shaped plain SAC
// multiply (join + group-by, GBJ disabled: it materializes and shuffles
// every partial product tile, so it is the shuffle-heaviest figure
// workload and isolates routing cost from kernel compute).
//
//   fastpath   -- executor-local records move as Values (default engine)
//   serialize  -- SAC_SHUFFLE_FAST_PATH=off behavior (forced)
//
// Both series must produce the same shuffle-record counts, and the fast
// path's local_shuffle_bytes + shuffle_bytes must equal the serialize
// path's shuffle_bytes (metering fidelity); the bench exits nonzero if
// either identity breaks. `--smoke` runs one tiny size and additionally
// fails if the fast path is >10% slower than the serialize path -- the
// CI perf-smoke gate (scripts/check.sh).
#include "bench/bench_common.h"

#include "src/api/algorithms.h"
#include "src/planner/planner.h"

int main(int argc, char** argv) {
  using namespace sac;           // NOLINT
  using namespace sac::bench;    // NOLINT

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }

  std::vector<int64_t> sizes;
  const int64_t block = 64;
  const std::string scale = Scale();
  if (smoke || scale == "tiny") {
    sizes = {192};
  } else if (scale == "full") {
    sizes = {128, 256, 384, 512};
  } else {
    sizes = {128, 256, 384};
  }

  PrintHeader(
      "Ablation: shuffle routing path (executor-local zero-copy vs "
      "serialize-everything), SAC GBJ multiply");
  BenchReporter reporter("abl_shuffle_path", argc, argv);

  planner::PlannerOptions no_gbj;
  no_gbj.enable_group_by_join = false;

  auto measure = [&](int64_t n, bool fast) {
    Sac ctx(BenchCluster(), no_gbj);
    ctx.engine().set_shuffle_fast_path(fast);
    auto a = ctx.RandomMatrix(n, n, block, 201, 0.0, 10.0).value();
    auto b = ctx.RandomMatrix(n, n, block, 202, 0.0, 10.0).value();
    Row row = TimeQuery(&ctx, "abl", fast ? "fastpath" : "serialize", n,
                        n * n, [&] {
                          SAC_BENCH_CHECK(algo::Multiply(&ctx, a, b));
                        });
    reporter.CaptureTrace(&ctx);
    return row;
  };

  bool ok = true;
  double fast_ms = 0, ser_ms = 0;
  // The routing difference is a few percent of a compute-heavy query, so
  // take the best of two interleaved passes per series to shed scheduler
  // noise (the accounting identity is checked on every pass's totals).
  const int passes = 2;
  for (int64_t n : sizes) {
    Row fast_row = measure(n, true);
    Row ser_row = measure(n, false);
    for (int p = 1; p < passes; ++p) {
      Row f2 = measure(n, true);
      Row s2 = measure(n, false);
      if (f2.time_ms < fast_row.time_ms) fast_row = f2;
      if (s2.time_ms < ser_row.time_ms) ser_row = s2;
    }
    reporter.Report(fast_row);
    reporter.Report(ser_row);
    fast_ms += fast_row.time_ms;
    ser_ms += ser_row.time_ms;

    // Metering fidelity: the fast path splits the serialize path's byte
    // total into local + remote without changing it, and routes the same
    // number of records.
    const uint64_t fast_total = fast_row.totals.shuffle_bytes +
                                fast_row.totals.local_shuffle_bytes;
    if (fast_total != ser_row.totals.shuffle_bytes) {
      std::fprintf(stderr,
                   "FAIL n=%lld: fastpath local+remote bytes %llu != "
                   "serialize bytes %llu\n",
                   static_cast<long long>(n),
                   static_cast<unsigned long long>(fast_total),
                   static_cast<unsigned long long>(
                       ser_row.totals.shuffle_bytes));
      ok = false;
    }
    if (fast_row.totals.shuffle_records != ser_row.totals.shuffle_records) {
      std::fprintf(stderr,
                   "FAIL n=%lld: shuffle_records differ (%llu vs %llu)\n",
                   static_cast<long long>(n),
                   static_cast<unsigned long long>(
                       fast_row.totals.shuffle_records),
                   static_cast<unsigned long long>(
                       ser_row.totals.shuffle_records));
      ok = false;
    }
  }

  if (smoke) {
    // Perf gate: the fast path must not lose to the path it replaces.
    if (fast_ms > 1.10 * ser_ms) {
      std::fprintf(stderr,
                   "FAIL perf-smoke: fastpath %.1fms > 1.10 x serialize "
                   "%.1fms\n",
                   fast_ms, ser_ms);
      ok = false;
    } else {
      std::fprintf(stderr, "perf-smoke ok: fastpath %.1fms vs serialize %.1fms\n",
                   fast_ms, ser_ms);
    }
  }
  return ok ? 0 : 1;
}
