// Ablation 3 -- tile-size sweep for the group-by-join multiply: the paper
// fixes 1000x1000 tiles; this bench shows the tradeoff between per-tile
// kernel efficiency (large tiles) and scheduling/shuffle granularity
// (small tiles).
#include "bench/bench_common.h"

#include "src/api/algorithms.h"

int main() {
  using namespace sac;           // NOLINT
  using namespace sac::bench;    // NOLINT

  const int64_t n = Scale() == "tiny" ? 128 : 512;
  std::vector<int64_t> blocks = {16, 32, 64, 128, 256};

  PrintHeader("Ablation 3: tile-size sweep, SAC GBJ multiply");
  for (int64_t blk : blocks) {
    if (blk > n) continue;
    Sac ctx(BenchCluster());
    auto a = ctx.RandomMatrix(n, n, blk, 601).value();
    auto b = ctx.RandomMatrix(n, n, blk, 602).value();
    PrintRow(TimeQuery(&ctx, "abl3", "N=" + std::to_string(blk), n, n * n,
                       [&] { SAC_BENCH_CHECK(algo::Multiply(&ctx, a, b)); }));
  }
  return 0;
}
