// Figure 4.B -- Matrix multiplication: total time vs number of elements,
// three series:
//   MLlib    -- BlockMatrix.multiply (simulateMultiply replication +
//               cogroup) with pure-JVM-style kernels
//   SAC      -- the paper's plain translation: tile join on the shared
//               index + group-by (Section 5.3), i.e. GBJ disabled
//   SAC GBJ  -- the Section 5.4 group-by-join (SUMMA)
//
// Paper shape: SAC GBJ fastest; MLlib up to ~6x slower than SAC GBJ
// (kernel efficiency); plain SAC slowest on the cluster (it materializes
// and shuffles every partial product tile). See EXPERIMENTS.md for which
// parts of the shape transfer to this in-memory substrate.
#include "bench/bench_common.h"

#include "src/api/algorithms.h"
#include "src/baseline/block_matrix.h"

int main(int argc, char** argv) {
  using namespace sac;           // NOLINT
  using namespace sac::bench;    // NOLINT

  std::vector<int64_t> sizes;
  int64_t block = 64;
  const std::string scale = Scale();
  if (scale == "tiny") {
    sizes = {128, 192};
  } else if (scale == "full") {
    sizes = {128, 256, 384, 512, 640};
  } else {
    sizes = {128, 256, 384, 512};
  }

  PrintHeader(
      "Figure 4.B: matrix multiplication, MLlib vs SAC (join+group-by) vs "
      "SAC GBJ (5.4)");
  BenchReporter reporter("fig4b", argc, argv);

  // Both SAC series pin their strategy: the whole point of the figure is
  // comparing forced 5.3 against forced 5.4, so the cost model must not
  // silently switch either plan (and the committed baselines stay
  // comparable across runs).
  planner::PlannerOptions with_gbj;
  with_gbj.auto_strategy = false;
  planner::PlannerOptions no_gbj;
  no_gbj.enable_group_by_join = false;
  no_gbj.auto_strategy = false;

  for (int64_t n : sizes) {
    // MLlib baseline.
    {
      Sac ctx(BenchCluster());
      auto a = ctx.RandomMatrix(n, n, block, 201, 0.0, 10.0).value();
      auto b = ctx.RandomMatrix(n, n, block, 202, 0.0, 10.0).value();
      auto ml_a = baseline::BlockMatrix::FromTiled(a);
      auto ml_b = baseline::BlockMatrix::FromTiled(b);
      const Row row = TimeQuery(&ctx, "fig4b", "MLlib", n, n * n, [&] {
        SAC_BENCH_CHECK(ml_a.Multiply(&ctx.engine(), ml_b));
      });
      reporter.Report(row);
      reporter.CaptureProfile(&ctx, row);
      reporter.CaptureTrace(&ctx);
    }
    // SAC without the group-by-join rule: join + group-by (5.3).
    {
      Sac ctx(BenchCluster(), no_gbj);
      auto a = ctx.RandomMatrix(n, n, block, 201, 0.0, 10.0).value();
      auto b = ctx.RandomMatrix(n, n, block, 202, 0.0, 10.0).value();
      const Row row = TimeQuery(&ctx, "fig4b", "SAC", n, n * n, [&] {
        SAC_BENCH_CHECK(algo::Multiply(&ctx, a, b));
      });
      reporter.Report(row);
      reporter.CaptureProfile(&ctx, row);
      reporter.CaptureTrace(&ctx);
    }
    // SAC with the group-by-join (SUMMA).
    {
      Sac ctx(BenchCluster(), with_gbj);
      auto a = ctx.RandomMatrix(n, n, block, 201, 0.0, 10.0).value();
      auto b = ctx.RandomMatrix(n, n, block, 202, 0.0, 10.0).value();
      const Row row = TimeQuery(&ctx, "fig4b", "SAC GBJ", n, n * n, [&] {
        SAC_BENCH_CHECK(algo::Multiply(&ctx, a, b));
      });
      reporter.Report(row);
      reporter.CaptureProfile(&ctx, row);
      reporter.CaptureTrace(&ctx);
    }
  }
  return 0;
}
