// Ablation 5 -- compressed sparse tiles (the Section 8 extension):
// matrix-vector products and sparse-dense multiplies against the dense
// tiled execution of the same data, plus the shuffle-volume savings.
#include "bench/bench_common.h"

#include "src/api/algorithms.h"
#include "src/storage/sparse_tiled.h"

int main() {
  using namespace sac;           // NOLINT
  using namespace sac::bench;    // NOLINT

  const int64_t n = Scale() == "tiny" ? 256 : 1024;
  const int64_t block = 128;

  PrintHeader("Ablation 5: CSR sparse tiles vs dense tiles (Section 8)");
  for (double density : {0.01, 0.05, 0.20}) {
    Sac ctx(BenchCluster());
    auto dense =
        ctx.RandomSparseMatrix(n, n, block, 801, density, 5).value();
    auto sparse = storage::Compress(&ctx.engine(), dense).value();
    auto x = ctx.RandomVector(n, block, 802).value();
    const std::string tag = "d=" + std::to_string(density).substr(0, 4);

    PrintRow(TimeQuery(&ctx, "abl5mv", "dense/" + tag, n, n * n, [&] {
      SAC_BENCH_CHECK(algo::MatVec(&ctx, dense, x));
    }));
    PrintRow(TimeQuery(&ctx, "abl5mv", "sparse/" + tag, n, n * n, [&] {
      SAC_BENCH_CHECK(storage::SpMatVec(&ctx.engine(), sparse, x));
    }));
  }

  // Sparse-dense product at 5% density (the factorization R x Q shape).
  {
    Sac ctx(BenchCluster());
    const int64_t m = Scale() == "tiny" ? 128 : 384, k = 64;
    auto dense = ctx.RandomSparseMatrix(m, m, 64, 803, 0.05, 5).value();
    auto sparse = storage::Compress(&ctx.engine(), dense).value();
    auto q = ctx.RandomMatrix(m, k, 64, 804).value();
    PrintRow(TimeQuery(&ctx, "abl5mm", "dense", m, m * m, [&] {
      SAC_BENCH_CHECK(algo::Multiply(&ctx, dense, q));
    }));
    PrintRow(TimeQuery(&ctx, "abl5mm", "sparse", m, m * m, [&] {
      SAC_BENCH_CHECK(storage::SpMultiply(&ctx.engine(), sparse, q));
    }));
  }
  return 0;
}
