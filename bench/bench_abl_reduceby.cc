// Ablation 1 -- reduceByKey vs groupByKey (the Section 4 motivation for
// translating group-by comprehensions to reduceByKey): the same row-sums
// aggregation over element records, once with map-side combining and once
// collecting full per-key lists.
#include "bench/bench_common.h"

#include "src/storage/tiled.h"

int main() {
  using namespace sac;           // NOLINT
  using namespace sac::bench;    // NOLINT
  using runtime::Dataset;
  using runtime::Value;
  using runtime::ValueVec;

  std::vector<int64_t> sizes = Scale() == "tiny"
                                   ? std::vector<int64_t>{128}
                                   : std::vector<int64_t>{256, 512, 1024};

  PrintHeader("Ablation 1: reduceByKey vs groupByKey row aggregation");
  for (int64_t n : sizes) {
    Sac ctx(BenchCluster());
    auto m = ctx.RandomMatrix(n, n, 64, 401, 0.0, 1.0).value();
    auto coo = storage::ToCoo(&ctx.engine(), m).value();
    // (i, v) element records.
    auto keyed = ctx.engine()
                     .Map(coo.entries,
                          [](const Value& row) {
                            return runtime::VPair(row.At(0).At(0),
                                                  row.At(1));
                          })
                     .value();

    PrintRow(TimeQuery(&ctx, "abl1", "reduceByKey", n, n * n, [&] {
      SAC_BENCH_CHECK(ctx.engine().ReduceByKey(
          keyed, [](const Value& a, const Value& b) {
            return Value::Double(a.AsDouble() + b.AsDouble());
          }));
    }));

    PrintRow(TimeQuery(&ctx, "abl1", "groupByKey", n, n * n, [&] {
      auto grouped = ctx.engine().GroupByKey(keyed);
      SAC_BENCH_CHECK(grouped);
      SAC_BENCH_CHECK(ctx.engine().Map(
          grouped.value(), [](const Value& row) {
            double s = 0;
            for (const Value& v : row.At(1).AsList()) s += v.AsDouble();
            return runtime::VPair(row.At(0), Value::Double(s));
          }));
    }));
  }
  return 0;
}
