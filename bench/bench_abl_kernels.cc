// Ablation 4 -- kernel dispatch vs generic library kernels inside the
// *same* distributed plan: runs the SAC GBJ multiply once with the
// compiled fast kernels (the macro-generated-code stand-in) and once with
// the jvmlike layer (use_jvmlike_kernels). The gap isolates how much of
// the Figure 4.B MLlib-vs-SAC difference is kernel efficiency rather than
// plan shape.
#include "bench/bench_common.h"

#include "src/api/algorithms.h"

int main() {
  using namespace sac;           // NOLINT
  using namespace sac::bench;    // NOLINT

  std::vector<int64_t> sizes = Scale() == "tiny"
                                   ? std::vector<int64_t>{128}
                                   : std::vector<int64_t>{256, 512};
  const int64_t block = 64;

  PrintHeader("Ablation 4: generated kernels vs jvm-like kernels (same plan)");
  for (int64_t n : sizes) {
    {
      Sac ctx(BenchCluster());
      auto a = ctx.RandomMatrix(n, n, block, 701).value();
      auto b = ctx.RandomMatrix(n, n, block, 702).value();
      PrintRow(TimeQuery(&ctx, "abl4", "generated", n, n * n, [&] {
        SAC_BENCH_CHECK(algo::Multiply(&ctx, a, b));
      }));
    }
    {
      planner::PlannerOptions jvm;
      jvm.use_jvmlike_kernels = true;
      Sac ctx(BenchCluster(), jvm);
      auto a = ctx.RandomMatrix(n, n, block, 701).value();
      auto b = ctx.RandomMatrix(n, n, block, 702).value();
      PrintRow(TimeQuery(&ctx, "abl4", "jvmlike", n, n * n, [&] {
        SAC_BENCH_CHECK(algo::Multiply(&ctx, a, b));
      }));
    }
  }
  return 0;
}
