// Ablation -- cost-driven multiply strategy selection (docs/COST_MODEL.md).
//
// Three series over the Figure 4.B matmul sizes:
//   forced-5.3  -- tile join + reduceByKey (group-by-join rule disabled)
//   forced-5.4  -- group-by-join / SUMMA pinned on
//   auto        -- PlannerOptions.auto_strategy (the default): the cost
//                  model compares both synthesized plans per query and
//                  keeps the cheaper one
//
// Unlike the figure benches this binary is a GATE, not just a report: at
// every size the strategy auto picked (identified by its shuffle volume,
// which fingerprints the plan exactly) must be one whose FORCED run lands
// within 5% (plus a small absolute jitter floor) of the better forced
// plan, otherwise the advisor picked the wrong strategy and the run exits
// non-zero. Judging the choice through the forced runs keeps run-to-run
// timer noise between identical plans out of the gate. scripts/bench.sh
// runs it alongside the figures; scripts/check.sh smoke-runs it at tiny
// scale.
#include "bench/bench_common.h"

#include "src/api/algorithms.h"

int main(int argc, char** argv) {
  using namespace sac;           // NOLINT
  using namespace sac::bench;    // NOLINT

  std::vector<int64_t> sizes;
  int64_t block = 64;
  const std::string scale = Scale();
  if (scale == "tiny") {
    sizes = {128, 192};
  } else if (scale == "full") {
    sizes = {128, 256, 384, 512, 640};
  } else {
    sizes = {128, 256, 384, 512};
  }

  PrintHeader(
      "Ablation: multiply strategy -- forced 5.3 vs forced 5.4 vs "
      "cost-model auto");
  BenchReporter reporter("abl_strategy", argc, argv);

  planner::PlannerOptions forced53;
  forced53.enable_group_by_join = false;
  forced53.auto_strategy = false;
  planner::PlannerOptions forced54;
  forced54.auto_strategy = false;
  planner::PlannerOptions autosel;  // defaults: auto_strategy = true

  // The chosen strategy's forced time may trail the best forced time by
  // up to 5% before the choice counts as wrong; the absolute floor
  // absorbs timer jitter at tiny sizes.
  const double kRelSlack = 1.05;
  const double kAbsSlackMs = 2.0;

  auto moved_bytes = [](const Row& r) {
    return static_cast<double>(r.totals.shuffle_bytes +
                               r.totals.local_shuffle_bytes);
  };

  int violations = 0;
  for (int64_t n : sizes) {
    auto run = [&](const char* series,
                   const planner::PlannerOptions& opts) -> Row {
      Sac ctx(BenchCluster(), opts);
      auto a = ctx.RandomMatrix(n, n, block, 201, 0.0, 10.0).value();
      auto b = ctx.RandomMatrix(n, n, block, 202, 0.0, 10.0).value();
      const Row row = TimeQuery(&ctx, "abl_strategy", series, n, n * n, [&] {
        SAC_BENCH_CHECK(algo::Multiply(&ctx, a, b));
      });
      reporter.Report(row);
      reporter.CaptureProfile(&ctx, row);
      reporter.CaptureTrace(&ctx);
      return row;
    };
    const Row r53 = run("forced-5.3", forced53);
    const Row r54 = run("forced-5.4", forced54);
    const Row rauto = run("auto", autosel);

    // The shuffle volume fingerprints the plan: auto ran whichever forced
    // plan it matches byte-for-byte.
    const bool picked_53 = std::abs(moved_bytes(rauto) - moved_bytes(r53)) <=
                           std::abs(moved_bytes(rauto) - moved_bytes(r54));
    const double picked_ms = picked_53 ? r53.time_ms : r54.time_ms;
    const double best = std::min(r53.time_ms, r54.time_ms);
    if (picked_ms > best * kRelSlack + kAbsSlackMs) {
      std::fprintf(stderr,
                   "GATE FAIL: n=%lld auto picked %s (forced %.1f ms) but "
                   "the best forced plan took %.1f ms (bound %.1f ms) -- "
                   "cost model picked the wrong strategy\n",
                   static_cast<long long>(n), picked_53 ? "5.3" : "5.4",
                   picked_ms, best, best * kRelSlack + kAbsSlackMs);
      ++violations;
    }
  }
  if (violations == 0) {
    std::printf("gate: auto's choice within 5%% of the best forced "
                "strategy at every size\n");
  }
  return violations == 0 ? 0 : 1;
}
