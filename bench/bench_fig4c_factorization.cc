// Figure 4.C -- One gradient-descent iteration of matrix factorization
// (Koren et al.):
//   E = R - P Q^T;  P += gamma (2 E Q - lambda P);
//   Q += gamma (2 E^T P - lambda Q)
// with gamma = 0.002, lambda = 0.02, R an n x n sparse rating matrix (10%
// nonzero integers 0..5), and rank k (the paper used k = 1000 at
// n = 20000; we scale both down together).
//
// Series: MLlib (BlockMatrix algebra, jvm-like kernels) vs SAC GBJ (every
// step a comprehension compiled through Sections 5.1/5.3/5.4).
// Paper shape: SAC GBJ up to ~3x faster than MLlib.
#include "bench/bench_common.h"

#include "src/api/algorithms.h"
#include "src/baseline/block_matrix.h"

int main(int argc, char** argv) {
  using namespace sac;           // NOLINT
  using namespace sac::bench;    // NOLINT

  std::vector<int64_t> sizes;
  int64_t block = 64;
  int64_t k = 64;
  const std::string scale = Scale();
  if (scale == "tiny") {
    sizes = {128};
  } else if (scale == "full") {
    sizes = {128, 256, 384, 512, 640};
  } else {
    sizes = {128, 256, 384};
  }
  const double gamma = 0.002, lambda = 0.02;

  PrintHeader(
      "Figure 4.C: matrix factorization (1 GD iteration), MLlib vs SAC GBJ");
  BenchReporter reporter("fig4c", argc, argv);

  for (int64_t n : sizes) {
    {
      Sac ctx(BenchCluster());
      auto r = ctx.RandomSparseMatrix(n, n, block, 301, 0.1, 5).value();
      auto p = ctx.RandomMatrix(n, k, block, 302, 0.0, 1.0).value();
      auto q = ctx.RandomMatrix(n, k, block, 303, 0.0, 1.0).value();
      baseline::FactorizationState st{baseline::BlockMatrix::FromTiled(p),
                                      baseline::BlockMatrix::FromTiled(q)};
      auto ml_r = baseline::BlockMatrix::FromTiled(r);
      const Row row = TimeQuery(&ctx, "fig4c", "MLlib", n, n * n, [&] {
        SAC_BENCH_CHECK(
            baseline::FactorizationStep(&ctx.engine(), ml_r, st, gamma,
                                        lambda));
      });
      reporter.Report(row);
      reporter.CaptureProfile(&ctx, row);
      reporter.CaptureTrace(&ctx);
    }
    {
      // Pin the 5.4 strategy: this series is "SAC GBJ" by name, so the
      // cost model must not switch it to 5.3 at small sizes.
      planner::PlannerOptions gbj;
      gbj.auto_strategy = false;
      Sac ctx(BenchCluster(), gbj);
      auto r = ctx.RandomSparseMatrix(n, n, block, 301, 0.1, 5).value();
      auto p = ctx.RandomMatrix(n, k, block, 302, 0.0, 1.0).value();
      auto q = ctx.RandomMatrix(n, k, block, 303, 0.0, 1.0).value();
      algo::Factorization st{p, q};
      const Row row = TimeQuery(&ctx, "fig4c", "SAC GBJ", n, n * n, [&] {
        SAC_BENCH_CHECK(
            algo::FactorizationStep(&ctx, r, st, gamma, lambda));
      });
      reporter.Report(row);
      reporter.CaptureProfile(&ctx, row);
      reporter.CaptureTrace(&ctx);
    }
  }
  return 0;
}
