// Multi-tenant service ablation / gate (docs/SERVICE.md): the same
// 4-client workload run under two admission policies --
//
//   serialized    max_concurrent_queries = 1 (the pre-service behavior:
//                 one query at a time; later clients park at the gate)
//   concurrent4   max_concurrent_queries = 4 (every client admitted)
//
// Each client is one session evaluating a fig4a-shaped matrix product
// whose tasks are stalled by an injected-fault retry plan
// (pre-run@*:count=2 + large retry backoff). The stalls model the
// wait-heavy phases of a real cluster query (network, stragglers,
// speculative retries): a worker sleeping in backoff holds no CPU, so
// overlapping queries reclaim that wall time even on a 1-CPU host.
//
// The gate FAILS (nonzero exit) unless: every product is byte-identical
// across the two arms, the stalls actually fired (faults/retries > 0),
// serialized admission queued at least one client, the concurrent batch
// is >= 2x faster than the serialized batch, and the plan cache shows
// measurable compile savings (K repeat compiles: 1 miss + K-1 hits, and
// the hit path beats the cold path). `--smoke` shrinks sizes and stall
// delays for CI.
#include "bench/bench_common.h"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/runtime/recovery.h"

namespace {

constexpr const char* kMatmul =
    "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]";

bool SameTile(const sac::la::Tile& a, const sac::la::Tile& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.vec().data(), b.vec().data(),
                     a.vec().size() * sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sac;         // NOLINT
  using namespace sac::bench;  // NOLINT

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  constexpr int kClients = 4;
  const int64_t n = smoke ? 48 : 64;
  const int64_t block = 16;
  const int stall_base_us = smoke ? 6000 : 25000;

  PrintHeader(
      "Service ablation: 4 sessions, serialized vs concurrent admission, "
      "plan cache on/off");
  BenchReporter reporter("abl_service", argc, argv);

  int violations = 0;
  auto expect = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "SERVICE GATE VIOLATION: %s\n", what);
      ++violations;
    }
  };
  if (std::getenv("SAC_MAX_CONCURRENT") != nullptr) {
    std::fprintf(stderr,
                 "SERVICE GATE VIOLATION: SAC_MAX_CONCURRENT is set; it "
                 "would override both admission arms\n");
    return 1;
  }

  struct BatchResult {
    Row row;
    std::vector<la::Tile> products;
  };

  // One 4-client batch under the given admission limit. Inputs are
  // seeded identically in both arms; the stall plan is installed only
  // around the timed queries so data generation and verification read
  // at full speed.
  auto run_batch = [&](const std::string& series,
                       int max_concurrent) -> BatchResult {
    runtime::ClusterConfig cfg = BenchCluster();
    // Parallelism 2 on an 8-worker pool: a single query's stall tasks
    // occupy 2 workers, so the concurrent arm has room to overlap all
    // four clients while the serialized arm must take turns.
    cfg.default_parallelism = 2;
    cfg.max_concurrent_queries = max_concurrent;
    cfg.retry_base_delay_us = stall_base_us;
    cfg.retry_max_delay_us = 2 * stall_base_us;
    Sac ctx(cfg);

    std::vector<std::unique_ptr<Session>> sessions;
    for (int i = 0; i < kClients; ++i) {
      auto s = ctx.OpenSession("client-" + std::to_string(i));
      s->Bind("A", s->RandomMatrix(n, n, block, 301 + 2 * i).value());
      s->Bind("B", s->RandomMatrix(n, n, block, 302 + 2 * i).value());
      s->BindScalar("n", n);
      sessions.push_back(std::move(s));
    }

    // Every task attempt at every point fails twice before succeeding,
    // sleeping the retry backoff in between -- the stall.
    auto plan = runtime::recovery::FaultPlan::Parse("pre-run@*:count=2");
    SAC_BENCH_CHECK(plan);
    ctx.engine().set_fault_plan(std::move(plan).value());

    std::vector<storage::TiledMatrix> results(kClients);
    std::vector<Status> status(kClients);
    BatchResult out;
    out.row = TimeQuery(&ctx, "abl_service", series, n,
                        kClients * n * n, [&] {
      std::vector<std::thread> threads;
      for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
          auto r = sessions[i]->EvalTiled(kMatmul);
          status[i] = r.status();
          if (r.ok()) results[i] = std::move(r).value();
        });
      }
      for (auto& t : threads) t.join();
    });
    for (int i = 0; i < kClients; ++i) SAC_BENCH_CHECK(Result<int>(status[i]));

    // Verification reads run unstalled.
    ctx.engine().set_fault_plan(runtime::recovery::FaultPlan());
    for (int i = 0; i < kClients; ++i) {
      out.products.push_back(sessions[i]->ToLocal(results[i]).value());
    }
    reporter.Report(out.row);
    reporter.CaptureTrace(&ctx);
    return out;
  };

  const BatchResult serialized = run_batch("serialized", 1);
  const BatchResult concurrent = run_batch("concurrent4", kClients);

  for (int i = 0; i < kClients; ++i) {
    expect(SameTile(serialized.products[i], concurrent.products[i]),
           "concurrent product differs from the serialized run");
  }
  expect(serialized.row.totals.faults_injected > 0,
         "no faults fired; the stall plan never bit");
  expect(serialized.row.totals.tasks_retried > 0,
         "no task retried; the stall plan never bit");
  expect(serialized.row.totals.queries_admitted == kClients,
         "serialized arm admitted a wrong query count");
  expect(serialized.row.totals.queries_queued > 0,
         "serialized admission never queued a client");
  expect(concurrent.row.totals.queries_admitted == kClients,
         "concurrent arm admitted a wrong query count");
  // The headline gate: overlapping the stalls must reclaim at least
  // half the serialized batch's wall clock.
  expect(serialized.row.time_ms >= 2.0 * concurrent.row.time_ms,
         "concurrent admission is not >= 2x faster than serialized");

  // ---- plan cache: K repeat compiles, cold vs cached -----------------------
  const int kCompiles = smoke ? 50 : 200;
  double off_ms = 0, on_ms = 0;
  {
    Sac ctx(BenchCluster());
    ctx.Bind("A", ctx.RandomMatrix(n, n, block, 401).value());
    ctx.Bind("B", ctx.RandomMatrix(n, n, block, 402).value());
    ctx.BindScalar("n", n);

    ctx.plan_cache().set_capacity(0);  // cold path every time
    Stopwatch off;
    for (int i = 0; i < kCompiles; ++i) SAC_BENCH_CHECK(ctx.CompileCached(kMatmul));
    off_ms = off.ElapsedMillis();
    Row off_row{};
    off_row.figure = "abl_service";
    off_row.series = "cache_off";
    off_row.n = n;
    off_row.elements = kCompiles;
    off_row.time_ms = off_ms;
    off_row.totals = ctx.metrics().Snapshot();
    reporter.Report(off_row);

    ctx.ResetStats();
    ctx.plan_cache().set_capacity(planner::PlanCache::kDefaultCapacity);
    Stopwatch on;
    for (int i = 0; i < kCompiles; ++i) SAC_BENCH_CHECK(ctx.CompileCached(kMatmul));
    on_ms = on.ElapsedMillis();
    Row on_row{};
    on_row.figure = "abl_service";
    on_row.series = "cache_on";
    on_row.n = n;
    on_row.elements = kCompiles;
    on_row.time_ms = on_ms;
    on_row.totals = ctx.metrics().Snapshot();
    reporter.Report(on_row);

    expect(on_row.totals.plan_cache_misses == 1,
           "cached arm should compile exactly once");
    expect(on_row.totals.plan_cache_hits ==
               static_cast<uint64_t>(kCompiles - 1),
           "cached arm should hit on every repeat compile");
    expect(off_row.totals.plan_cache_hits == 0 &&
               off_row.totals.plan_cache_misses == 0,
           "disabled cache must not meter hits or misses");
    // The hit path skips parse -> normalize -> plan entirely; demand a
    // measurable saving, not parity.
    expect(on_ms < 0.8 * off_ms,
           "plan cache shows no measurable compile-time saving");
  }

  if (violations > 0) {
    std::fprintf(stderr, "service gate: %d violation(s)\n", violations);
    return 1;
  }
  std::printf(
      "service gate: ok (serialized %.1f ms, concurrent %.1f ms, %.2fx; "
      "compile %d reps: cold %.1f ms, cached %.1f ms)\n",
      serialized.row.time_ms, concurrent.row.time_ms,
      serialized.row.time_ms / concurrent.row.time_ms, kCompiles, off_ms,
      on_ms);
  return 0;
}
