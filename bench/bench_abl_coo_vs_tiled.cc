// Ablation 2 -- tiled block arrays vs the coordinate format (the
// Section 4 / DIABLO comparison): the same queries compiled with the
// block rules and with force_coo. The headline is the shuffle volume
// column: COO ships an index pair with every element.
#include "bench/bench_common.h"

#include "src/api/algorithms.h"

int main() {
  using namespace sac;           // NOLINT
  using namespace sac::bench;    // NOLINT

  PrintHeader("Ablation 2: tiled vs coordinate format (shuffle volume)");

  planner::PlannerOptions coo;
  coo.force_coo = true;
  const int64_t block = 64;

  // Addition at a few sizes.
  std::vector<int64_t> sizes = Scale() == "tiny"
                                   ? std::vector<int64_t>{128}
                                   : std::vector<int64_t>{256, 512};
  for (int64_t n : sizes) {
    {
      Sac ctx(BenchCluster());
      auto a = ctx.RandomMatrix(n, n, block, 501).value();
      auto b = ctx.RandomMatrix(n, n, block, 502).value();
      PrintRow(TimeQuery(&ctx, "abl2add", "tiled", n, n * n, [&] {
        SAC_BENCH_CHECK(algo::Add(&ctx, a, b));
      }));
    }
    {
      Sac ctx(BenchCluster(), coo);
      auto a = ctx.RandomMatrix(n, n, block, 501).value();
      auto b = ctx.RandomMatrix(n, n, block, 502).value();
      PrintRow(TimeQuery(&ctx, "abl2add", "coordinate", n, n * n, [&] {
        SAC_BENCH_CHECK(algo::Add(&ctx, a, b));
      }));
    }
  }

  // Multiplication at a deliberately small size: the coordinate plan
  // shuffles one record per scalar product (n^3 of them).
  const int64_t nm = Scale() == "tiny" ? 32 : 64;
  {
    Sac ctx(BenchCluster());
    auto a = ctx.RandomMatrix(nm, nm, 16, 503).value();
    auto b = ctx.RandomMatrix(nm, nm, 16, 504).value();
    PrintRow(TimeQuery(&ctx, "abl2mul", "tiled", nm, nm * nm, [&] {
      SAC_BENCH_CHECK(algo::Multiply(&ctx, a, b));
    }));
  }
  {
    Sac ctx(BenchCluster(), coo);
    auto a = ctx.RandomMatrix(nm, nm, 16, 503).value();
    auto b = ctx.RandomMatrix(nm, nm, 16, 504).value();
    PrintRow(TimeQuery(&ctx, "abl2mul", "coordinate", nm, nm * nm, [&] {
      SAC_BENCH_CHECK(algo::Multiply(&ctx, a, b));
    }));
  }
  return 0;
}
