// Out-of-core ablation / memory gate: the Figure 4.B multiply run twice
// from identical seeds --
//
//   unlimited   no memory budget (the baseline); records the peak
//               resident footprint P of the whole run
//   budget-25%  a fresh context whose memory budget is P/4, forcing the
//               block store to spill and reload roughly three quarters
//               of the working set through LRU eviction
//
// The gate FAILS (nonzero exit) unless: the budgeted run's product is
// byte-identical to the unlimited run's, evictions and reloaded bytes
// are both nonzero (the budget actually bit), residency stayed within
// the working set, and the slowdown stays within a loose multiple of the
// unlimited run (spilling must not devolve into thrashing the same
// block in and out per access). `--smoke` shrinks the matrix for CI.
//
// NOTE: run with SAC_MEM_BUDGET unset -- the env var overrides both
// contexts' budgets, including the "unlimited" baseline.
#include "bench/bench_common.h"

#include <cstdlib>
#include <cstring>

#include "src/api/algorithms.h"

namespace {

/// Byte-exact product comparison: eviction/reload must round-trip the
/// exact bytes and lineage recomputation is deterministic, so any drift
/// is a block-store bug, not rounding.
bool SameTile(const sac::la::Tile& a, const sac::la::Tile& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.vec().data(), b.vec().data(),
                     a.vec().size() * sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sac;         // NOLINT
  using namespace sac::bench;  // NOLINT

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int64_t n = smoke ? 128 : 256;
  const int64_t block = 64;

  PrintHeader(
      "Out-of-core ablation: fig4b multiply, unlimited vs 25% memory "
      "budget");
  BenchReporter reporter("abl_memory", argc, argv);

  int violations = 0;
  auto expect = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "MEMORY GATE VIOLATION: %s\n", what);
      ++violations;
    }
  };
  if (std::getenv("SAC_MEM_BUDGET") != nullptr) {
    std::fprintf(stderr,
                 "MEMORY GATE VIOLATION: SAC_MEM_BUDGET is set; it would "
                 "override the unlimited baseline\n");
    return 1;
  }

  struct RunResult {
    Row row;
    la::Tile product{0, 0};
    uint64_t peak = 0;
  };

  auto run = [&](const std::string& series, uint64_t budget) -> RunResult {
    runtime::ClusterConfig cfg = BenchCluster();
    cfg.memory_budget_bytes = budget;
    // Pin the GBJ plan: this ablation stresses the block store with a
    // large working set, and the cost model's auto strategy would swap
    // the plan (and the budget shape) out from under the baseline.
    planner::PlannerOptions opts;
    opts.auto_strategy = false;
    Sac ctx(cfg, opts);
    auto a = ctx.RandomMatrix(n, n, block, 201, 0.0, 10.0).value();
    auto b = ctx.RandomMatrix(n, n, block, 202, 0.0, 10.0).value();
    RunResult out;
    storage::TiledMatrix c;
    out.row = TimeQuery(&ctx, "abl_memory", series, n, n * n, [&] {
      auto r = algo::Multiply(&ctx, a, b);
      SAC_BENCH_CHECK(r);
      c = std::move(r).value();
    });
    reporter.Report(out.row);
    reporter.CaptureTrace(&ctx);
    out.product = ctx.ToLocal(c).value();
    out.peak = ctx.engine().block_store().peak_resident_bytes();
    return out;
  };

  const RunResult unlimited = run("unlimited", 0);
  expect(unlimited.peak > 0, "unlimited run recorded no peak residency");
  expect(unlimited.row.totals.evictions == 0,
         "unlimited run evicted partitions");
  const uint64_t budget = unlimited.peak / 4;
  const RunResult budgeted = run("budget-25pct", budget);

  expect(SameTile(budgeted.product, unlimited.product),
         "budgeted product is not byte-identical to the unlimited run");
  expect(budgeted.row.totals.evictions > 0,
         "budgeted run evicted nothing; the budget never bit");
  expect(budgeted.row.totals.bytes_evicted > 0,
         "budgeted run metered no evicted bytes");
  expect(budgeted.row.totals.bytes_reloaded > 0,
         "budgeted run reloaded no spilled bytes");
  expect(budgeted.row.totals.peak_resident_bytes <= unlimited.peak,
         "budgeted peak residency exceeds the unlimited working set");
  // Loose overhead bound: eviction adds serialize + disk round-trips per
  // cold block, not per access; a pathological policy (evicting the hot
  // block every pin) would blow far past this.
  expect(budgeted.row.time_ms <= unlimited.row.time_ms * 10.0 + 2000.0,
         "budgeted slowdown exceeds 10x unlimited + 2s");

  if (violations > 0) {
    std::fprintf(stderr, "memory gate: %d violation(s)\n", violations);
    return 1;
  }
  std::printf(
      "memory gate: ok (peak %.1f MB, budget %.1f MB, %llu evictions, "
      "%.1f MB reloaded)\n",
      unlimited.peak / 1048576.0, budget / 1048576.0,
      static_cast<unsigned long long>(budgeted.row.totals.evictions),
      budgeted.row.totals.bytes_reloaded / 1048576.0);
  return 0;
}
