// Shared helpers for the figure-reproduction benches. Each bench binary
// prints one row per (series, size) point in a fixed column format:
//
//   figure  series  n  elements  time_ms  shuffle_MB
//
// matching the series of the paper's Figure 4 plots (x = number of matrix
// elements, y = total time). SAC_BENCH_REPS (default 2) controls how many
// timed repetitions are averaged; SAC_BENCH_SCALE in {tiny,small,full}
// controls the size sweep so `ctest`-adjacent runs stay fast.
#ifndef SAC_BENCH_BENCH_COMMON_H_
#define SAC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/api/sac.h"
#include "src/common/metrics.h"

namespace sac::bench {

inline int Reps() {
  const char* r = std::getenv("SAC_BENCH_REPS");
  return r ? std::max(1, atoi(r)) : 2;
}

inline std::string Scale() {
  const char* s = std::getenv("SAC_BENCH_SCALE");
  return s ? s : "small";
}

/// The benchmark cluster shape: 4 simulated executors. (The paper used 8
/// executors of 11 cores; shuffle accounting scales the same way.)
inline runtime::ClusterConfig BenchCluster() {
  runtime::ClusterConfig c;
  c.num_executors = 4;
  c.cores_per_executor = 2;
  c.default_parallelism = 8;
  return c;
}

struct Row {
  std::string figure;
  std::string series;
  int64_t n;
  int64_t elements;
  double time_ms;
  double shuffle_mb;
};

inline void PrintHeader(const char* title) {
  std::printf("# %s\n", title);
  std::printf("%-8s %-12s %8s %12s %12s %12s\n", "figure", "series", "n",
              "elements", "time_ms", "shuffle_MB");
}

inline void PrintRow(const Row& r) {
  std::printf("%-8s %-12s %8lld %12lld %12.1f %12.2f\n", r.figure.c_str(),
              r.series.c_str(), static_cast<long long>(r.n),
              static_cast<long long>(r.elements), r.time_ms, r.shuffle_mb);
  std::fflush(stdout);
}

/// Times `fn` Reps() times (after metrics reset), returning mean wall
/// milliseconds and the last run's shuffle megabytes.
template <typename Fn>
Row TimeQuery(sac::Sac* ctx, const std::string& figure,
              const std::string& series, int64_t n, int64_t elements,
              Fn&& fn) {
  double total_ms = 0;
  double mb = 0;
  const int reps = Reps();
  for (int rep = 0; rep < reps; ++rep) {
    ctx->metrics().Reset();
    Stopwatch sw;
    fn();
    total_ms += sw.ElapsedMillis();
    mb = static_cast<double>(ctx->metrics().shuffle_bytes()) /
         (1024.0 * 1024.0);
  }
  return Row{figure, series, n, elements, total_ms / reps, mb};
}

#define SAC_BENCH_CHECK(expr)                                           \
  do {                                                                  \
    auto _st = (expr);                                                  \
    if (!_st.ok()) {                                                    \
      std::fprintf(stderr, "bench failure: %s\n",                       \
                   _st.status().ToString().c_str());                    \
      std::exit(1);                                                     \
    }                                                                   \
  } while (false)

}  // namespace sac::bench

#endif  // SAC_BENCH_BENCH_COMMON_H_
